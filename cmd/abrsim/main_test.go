package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunFixedBandwidth(t *testing.T) {
	tl := filepath.Join(t.TempDir(), "tl.csv")
	if err := run("bestpractice", 900, "", "", "drama", "hsub", "", tl, "", "", faultOpts{}, transportOpts{}, liveOpts{}, shapingOpts{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "t_s,playpos_s,video,audio") {
		t.Errorf("timeline header wrong: %q", strings.SplitN(string(data), "\n", 2)[0])
	}
	if strings.Count(string(data), "\n") < 100 {
		t.Errorf("timeline too short: %d lines", strings.Count(string(data), "\n"))
	}
}

func TestRunTraceFile(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "trace.csv")
	if err := os.WriteFile(traceFile, []byte("0,900\n30,300\n#cycle,60\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("shaka", 0, traceFile, "", "drama", "hall", "", "", "", "", faultOpts{}, transportOpts{}, liveOpts{}, shapingOpts{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAudioFirst(t *testing.T) {
	if err := run("exoplayer-hls", 2000, "", "", "drama", "hsub", "A3", "", "", "", faultOpts{}, transportOpts{}, liveOpts{}, shapingOpts{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunContentVariants(t *testing.T) {
	for _, c := range []string{"drama-low-audio", "drama-high-audio"} {
		if err := run("exoplayer-dash", 900, "", "", c, "hsub", "", "", "", "", faultOpts{}, transportOpts{}, liveOpts{}, shapingOpts{}); err != nil {
			t.Fatalf("%s: %v", c, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name                                                    string
		player, content, manifest, audioFirst, traceF, timeline string
		kbps                                                    float64
	}{
		{name: "bad player", player: "vlc", content: "drama", manifest: "hsub", kbps: 100},
		{name: "bad content", player: "shaka", content: "nope", manifest: "hsub", kbps: 100},
		{name: "bad manifest", player: "shaka", content: "drama", manifest: "x", kbps: 100},
		{name: "bad audio", player: "shaka", content: "drama", manifest: "hsub", audioFirst: "Z9", kbps: 100},
		{name: "no bandwidth", player: "shaka", content: "drama", manifest: "hsub"},
		{name: "missing trace", player: "shaka", content: "drama", manifest: "hsub", traceF: "/nonexistent.csv"},
	}
	for _, tc := range cases {
		if err := run(tc.player, tc.kbps, tc.traceF, "", tc.content, tc.manifest, tc.audioFirst, tc.timeline, "", "", faultOpts{}, transportOpts{}, liveOpts{}, shapingOpts{}); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestRunJSONExport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "session.json")
	if err := run("mpc-joint", 1300, "", "", "drama", "hsub", "", "", "", out, faultOpts{}, transportOpts{}, liveOpts{}, shapingOpts{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"model": "mpc-joint"`) {
		t.Errorf("JSON export missing model field")
	}
	if !strings.Contains(string(data), `"qoe_score"`) {
		t.Errorf("JSON export missing metrics")
	}
}

func TestRunNamedProfile(t *testing.T) {
	if err := run("shaka", 0, "", "fig4a", "drama", "hall", "", "", "", "", faultOpts{}, transportOpts{}, liveOpts{}, shapingOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := run("shaka", 0, "", "bogus", "drama", "hall", "", "", "", "", faultOpts{}, transportOpts{}, liveOpts{}, shapingOpts{}); err == nil {
		t.Error("unknown profile should fail")
	}
}

func TestPlayOnceFaultFlags(t *testing.T) {
	fo := faultOpts{rate: 0.01, seed: 1009}
	on, err := playOnce("bestpractice", 0, "", "fig3", "drama", "hsub", "", nil, fo, transportOpts{}, liveOpts{}, shapingOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if on.Result.Aborted {
		t.Fatalf("policy-on run aborted: %s", on.Result.AbortReason)
	}
	if len(on.Result.Faults) == 0 {
		t.Fatal("fault injection flags had no effect: no faults recorded")
	}
	fo.noRetry = true
	off, err := playOnce("bestpractice", 0, "", "fig3", "drama", "hsub", "", nil, fo, transportOpts{}, liveOpts{}, shapingOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !off.Result.Aborted {
		t.Error("-no-retry run survived a fault sequence that should abort it")
	}
}

func TestRunFleetDeterministicJSON(t *testing.T) {
	render := func() []byte {
		out := filepath.Join(t.TempDir(), "fleet.json")
		if err := runFleet(4, 10*time.Second, "bestpractice,bola-joint", "bestpractice",
			12000, "", "", "drama", "hsub", "", out, "", 17, 0, 0, 0, faultOpts{}, transportOpts{}, liveOpts{}, shapingOpts{}); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first := render()
	if !strings.Contains(string(first), `"jain_video_kbps"`) {
		t.Error("fleet JSON missing jain_video_kbps")
	}
	if !strings.Contains(string(first), `"sessions": 4`) {
		t.Error("fleet JSON missing session count")
	}
	if !strings.Contains(string(first), `"model": "bola-joint"`) {
		t.Error("fleet JSON missing round-robin model assignment")
	}
	if again := render(); string(first) != string(again) {
		t.Fatal("fleet JSON not byte-identical across runs")
	}
}

func TestRunFleetErrors(t *testing.T) {
	if err := runFleet(4, 0, "bestpractice,vlc", "bestpractice",
		12000, "", "", "drama", "hsub", "", "", "", 17, 0, 0, 0, faultOpts{}, transportOpts{}, liveOpts{}, shapingOpts{}); err == nil {
		t.Error("bad mix entry: expected error")
	}
	if err := runFleet(4, 0, "", "bestpractice",
		0, "", "", "drama", "hsub", "", "", "", 17, 0, 0, 0, faultOpts{}, transportOpts{}, liveOpts{}, shapingOpts{}); err == nil {
		t.Error("no bandwidth: expected error")
	}
}

func TestRunCompare(t *testing.T) {
	if err := runCompare(900, "", "", "drama", "hsub", "", 0, "", faultOpts{}, transportOpts{}, liveOpts{}, shapingOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := runCompare(0, "", "", "drama", "hsub", "", 1, "", faultOpts{}, transportOpts{}, liveOpts{}, shapingOpts{}); err == nil {
		t.Error("compare without bandwidth should fail")
	}
}

func TestRunTimelineDir(t *testing.T) {
	dir := t.TempDir()
	fo := faultOpts{rate: 0.01, seed: 1009}
	if err := run("bestpractice", 0, "", "fig3", "drama", "hsub", "", "", dir, "", fo, transportOpts{}, liveOpts{}, shapingOpts{}); err != nil {
		t.Fatal(err)
	}
	jsonl, err := os.ReadFile(filepath.Join(dir, "session.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{`"decision"`, `"request-done"`, `"retry"`} {
		if !strings.Contains(string(jsonl), kind) {
			t.Errorf("session.jsonl missing %s events", kind)
		}
	}
	traceJSON, err := os.ReadFile(filepath.Join(dir, "session.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(traceJSON) {
		t.Error("session.trace.json is not valid JSON")
	}
}

// TestTimelineCompareParallelEquivalence is the acceptance gate for the
// flight recorder's determinism: the exported timelines must be
// byte-identical between a serial run and a fully parallel one.
func TestTimelineCompareParallelEquivalence(t *testing.T) {
	render := func(parallel int) (jsonl, traceJSON []byte) {
		dir := t.TempDir()
		fo := faultOpts{rate: 0.01, seed: 1009}
		if err := runCompare(0, "", "fig3", "drama", "hsub", "", parallel, dir, fo, transportOpts{}, liveOpts{}, shapingOpts{}); err != nil {
			t.Fatal(err)
		}
		jsonl, err := os.ReadFile(filepath.Join(dir, "compare.jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		traceJSON, err = os.ReadFile(filepath.Join(dir, "compare.trace.json"))
		if err != nil {
			t.Fatal(err)
		}
		return jsonl, traceJSON
	}
	serialJSONL, serialTrace := render(1)
	parallelJSONL, parallelTrace := render(8)
	if string(serialJSONL) != string(parallelJSONL) {
		t.Error("compare.jsonl differs between -parallel 1 and -parallel 8")
	}
	if string(serialTrace) != string(parallelTrace) {
		t.Error("compare.trace.json differs between -parallel 1 and -parallel 8")
	}
	if !json.Valid(serialTrace) {
		t.Error("compare.trace.json is not valid JSON")
	}
}

// TestRunShaped exercises the -shaping preparation: per-type players play
// the shaped (misaligned) title, joint players refuse it, and the flag is
// validated.
func TestRunShaped(t *testing.T) {
	if err := run("dashjs", 900, "", "", "drama", "hsub", "", "", "", "", faultOpts{}, transportOpts{}, liveOpts{}, shapingOpts{mode: "chunks", seed: 21}); err != nil {
		t.Fatal(err)
	}
	if err := run("bestpractice", 900, "", "", "drama", "hsub", "", "", "", "", faultOpts{}, transportOpts{}, liveOpts{}, shapingOpts{mode: "chunks", seed: 21}); err == nil {
		t.Error("joint player on misaligned shaped content: expected error")
	} else if !strings.Contains(err.Error(), "aligned") {
		t.Errorf("joint-player error %q does not explain the alignment requirement", err)
	}
	if err := run("dashjs", 900, "", "", "music-show", "hsub", "", "", "", "", faultOpts{}, transportOpts{}, liveOpts{}, shapingOpts{mode: "chunks", seed: 21}); err == nil {
		t.Error("-shaping with non-drama content: expected error")
	}
	if err := run("dashjs", 900, "", "", "drama", "hsub", "", "", "", "", faultOpts{}, transportOpts{}, liveOpts{}, shapingOpts{mode: "bogus", seed: 21}); err == nil {
		t.Error("unknown -shaping mode: expected error")
	}
}
