// Command abrsim runs a single ABR streaming session in the simulator and
// prints the QoE summary, optionally dumping the timeline as CSV. With
// -sessions > 1 it co-simulates a fleet: N players sharing the given
// bandwidth as an edge uplink behind one shared CDN cache, with staggered
// arrivals.
//
// Usage:
//
//	abrsim -player bestpractice -kbps 700 [-content drama] [-timeline-csv out.csv] [-timeline dir]
//	abrsim -player shaka -trace profile.csv [-manifest hall] [-audio-first A3]
//	abrsim -compare -kbps 700 [-parallel n]
//	abrsim -sessions 8 -kbps 24000 [-arrival-spread 30s] [-mix bestpractice,bola-joint] [-json fleet.json]
//	abrsim -sessions 100000 -cell 16 -shards 4 [-sample-timelines 1000] [-json fleet.json]
//	abrsim -player ll-lolp -kbps 2000 -live [-latency-target 4s] [-part-target 1s]
//
// Large fleets partition into contention cells of -cell sessions (each cell
// shares one uplink and edge cache) executed across -shards worker engines;
// the aggregate output is byte-identical for any shard count. Beyond 4096
// sessions the report switches to streaming sketch aggregation and the
// per-session table shows a reservoir sample.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"text/tabwriter"
	"time"

	"demuxabr/internal/cdnsim"
	"demuxabr/internal/core"
	"demuxabr/internal/faults"
	"demuxabr/internal/fleet"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/report"
	"demuxabr/internal/runpool"
	"demuxabr/internal/shaping"
	"demuxabr/internal/timeline"
	"demuxabr/internal/trace"
)

func main() {
	playerName := flag.String("player", "bestpractice", "player model: exoplayer-dash, exoplayer-hls, shaka, dashjs, bestpractice, bestpractice-independent, ll-default, ll-l2a, ll-lolp")
	kbps := flag.Float64("kbps", 0, "fixed link bandwidth in Kbps")
	traceFile := flag.String("trace", "", "bandwidth trace CSV (seconds,kbps rows; overrides -kbps)")
	profileName := flag.String("profile", "", "named bandwidth profile (fig2, fig3, fig4a, fig4b, fig5, exohls-5m, lte); overrides -kbps")
	contentName := flag.String("content", "drama", "content: drama, drama-low-audio, drama-high-audio, music-show, action-movie")
	shapingSeed := flag.Int64("shaping-seed", 21, "seed for -shaping (scene model and ladder search)")
	shapingMode := flag.String("shaping", "", "offline content preparation: chunks (shaped per-type boundaries, authored ladder), full (boundaries + searched per-title ladder), or fixed (uniform chunks but the same scene signal); drama content only")
	manifest := flag.String("manifest", "hsub", "HLS manifest combinations: hsub (curated) or hall (all)")
	audioFirst := flag.String("audio-first", "", "audio track listed first in the HLS manifest (e.g. A3)")
	timelineCSV := flag.String("timeline-csv", "", "write the session timeline as CSV to this file")
	timelineDir := flag.String("timeline", "", "write flight-recorder timelines (JSONL + Chrome trace) into this directory")
	jsonOut := flag.String("json", "", "write the full session (or fleet) report as JSON to this file")
	compare := flag.Bool("compare", false, "run every player model and print a comparison table (ignores -player)")
	parallel := flag.Int("parallel", 0, "worker count for -compare (0 = GOMAXPROCS, 1 = serial)")
	faultRate := flag.Float64("fault-rate", 0, "per-segment-request fault injection probability in [0,1]")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the fault plan (same seed = same failure sequence)")
	noRetry := flag.Bool("no-retry", false, "disable the download robustness policy (fail fast on the first fault)")
	transport := flag.String("transport", "", "transport connection model: h1, h2, or h3 (default: off — requests ride the bare link)")
	rtt := flag.Duration("rtt", 80*time.Millisecond, "access round-trip time that prices -transport handshakes (ignored without -transport)")
	live := flag.Bool("live", false, "live mode: availability-gated chunks, join-at-edge, latency-target playback-rate control")
	latencyTarget := flag.Duration("latency-target", 4*time.Second, "live-edge latency the catch-up controller holds (ignored without -live)")
	partTarget := flag.Duration("part-target", time.Second, "CMAF part duration advertised by the live origin; 0 = whole-segment availability (ignored without -live)")
	sessions := flag.Int("sessions", 1, "fleet size; >1 co-simulates N sessions sharing the bandwidth as an edge uplink behind one shared cache")
	arrivalSpread := flag.Duration("arrival-spread", 30*time.Second, "fleet arrival window: session starts are staggered (seeded) over [0, spread)")
	mix := flag.String("mix", "", "comma-separated player kinds assigned round-robin across fleet sessions (default: -player for every session)")
	seed := flag.Int64("seed", 17, "fleet seed: drives arrival draws and per-session fault plan derivation")
	cell := flag.Int("cell", 0, "fleet contention-cell size: sessions per shared uplink+cache (0 = one cell for the whole fleet)")
	shards := flag.Int("shards", 0, "fleet worker engines; cells are distributed round-robin, output is identical for any value (0 = GOMAXPROCS)")
	sampleTimelines := flag.Int("sample-timelines", 0, "with -timeline, record every k-th session only (0 or 1 = all sessions)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "abrsim:", err)
		os.Exit(1)
	}

	fo := faultOpts{rate: *faultRate, seed: *faultSeed, noRetry: *noRetry}
	to := transportOpts{proto: *transport, rtt: *rtt, seed: *faultSeed}
	lo := liveOpts{enabled: *live, latencyTarget: *latencyTarget, partTarget: *partTarget}
	so := shapingOpts{mode: *shapingMode, seed: *shapingSeed}
	switch {
	case *compare:
		err = runCompare(*kbps, *traceFile, *profileName, *contentName, *manifest, *audioFirst, *parallel, *timelineDir, fo, to, lo, so)
	case *sessions > 1:
		err = runFleet(*sessions, *arrivalSpread, *mix, *playerName, *kbps, *traceFile, *profileName, *contentName, *manifest, *audioFirst, *jsonOut, *timelineDir, *seed, *cell, *shards, *sampleTimelines, fo, to, lo, so)
	default:
		err = run(*playerName, *kbps, *traceFile, *profileName, *contentName, *manifest, *audioFirst, *timelineCSV, *timelineDir, *jsonOut, fo, to, lo, so)
	}
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "abrsim:", err)
		os.Exit(1)
	}
}

// startProfiles arms the pprof outputs; the returned stop function flushes
// them and must run before exit (the dispatch above keeps os.Exit after it).
func startProfiles(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // materialize final live-heap numbers
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}

// faultOpts carries the fault-injection CLI flags into core.Spec. A zero
// rate means no plan at all; -no-retry reverts to the legacy fail-fast
// error handling.
type faultOpts struct {
	rate    float64
	seed    int64
	noRetry bool
}

func (fo faultOpts) plan() *faults.Plan {
	if fo.rate <= 0 {
		return nil
	}
	return &faults.Plan{Seed: fo.seed, Rate: fo.rate}
}

// policy is the default robustness policy whenever faults are injected;
// -no-retry (or a clean run) keeps the legacy fail-fast behaviour.
func (fo faultOpts) policy() *faults.Policy {
	if fo.noRetry || fo.rate <= 0 {
		return nil
	}
	pol := faults.DefaultPolicy()
	return &pol
}

// runCompare runs every player kind under the same conditions. Sessions
// fan out across parallel workers (each on its own simulation engine);
// collection is in PlayerKinds order, so the table is identical at any
// worker count.
// transportOpts carries the -transport/-rtt flags. An empty protocol
// means the transport layer is off: requests ride the bare link and rtt
// is ignored, keeping default runs byte-identical to transport-less
// builds.
type transportOpts struct {
	proto string
	rtt   time.Duration
	seed  int64
}

// config resolves the flags into a transport config (nil when off). The
// keep-alive window matches the transport experiment family (700 ms, a
// mobile radio/NAT idle teardown); the loss axis stays on the -fault-rate
// machinery rather than transport loss draws.
func (to transportOpts) config() (*netsim.TransportConfig, error) {
	if to.proto == "" {
		return nil, nil
	}
	p, err := netsim.ParseProtocol(to.proto)
	if err != nil {
		return nil, err
	}
	tc := netsim.DefaultTransport(p)
	tc.IdleTimeout = 700 * time.Millisecond
	tc.Seed = to.seed
	return &tc, nil
}

// linkRTT is the access RTT to apply — only meaningful with a transport.
func (to transportOpts) linkRTT() time.Duration {
	if to.proto == "" {
		return 0
	}
	return to.rtt
}

// liveOpts carries the -live/-latency-target/-part-target flags. Disabled
// live mode resolves to a nil config, keeping VOD runs byte-identical to
// pre-live builds.
type liveOpts struct {
	enabled       bool
	latencyTarget time.Duration
	partTarget    time.Duration
}

func (lo liveOpts) config() *player.LiveConfig {
	if !lo.enabled {
		return nil
	}
	return &player.LiveConfig{
		LatencyTarget: lo.latencyTarget,
		PartTarget:    lo.partTarget,
	}
}

func runCompare(kbps float64, traceFile, profileName, contentName, manifest, audioFirst string, parallel int, timelineDir string, fo faultOpts, to transportOpts, lo liveOpts, so shapingOpts) error {
	kinds := core.PlayerKinds()
	// Recorders are pre-created in kind order: each worker appends only to
	// its own, so the exported timeline is byte-identical at any -parallel.
	var recs []*timeline.Recorder
	if timelineDir != "" {
		recs = make([]*timeline.Recorder, len(kinds))
		for i := range recs {
			recs[i] = timeline.New(i, string(kinds[i]))
		}
	}
	sessions, err := runpool.Map(parallel, len(kinds), func(i int) (*core.Session, error) {
		sess, err := playOnce(string(kinds[i]), kbps, traceFile, profileName, contentName, manifest, audioFirst, recFor(recs, i), fo, to, lo, so)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", kinds[i], err)
		}
		return sess, nil
	})
	if err != nil {
		return err
	}
	if timelineDir != "" {
		if err := timeline.WriteFiles(timelineDir, "compare", recs); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Model\tVideo\tAudio\tStalls\tRebuffer\tSwitches\tOff-manifest\tQoE")
	for _, sess := range sessions {
		m := sess.Metrics
		qoeCell := fmt.Sprintf("%.2f", m.Score)
		if sess.Result.Aborted {
			qoeCell = "abort"
		}
		fmt.Fprintf(tw, "%s\t%.0fK\t%.0fK\t%d\t%.1fs\t%d/%d\t%d\t%s\n",
			sess.Model, m.AvgVideoBitrate.Kbps(), m.AvgAudioBitrate.Kbps(),
			m.StallCount, m.RebufferTime.Seconds(),
			m.VideoSwitches, m.AudioSwitches, m.OffManifest, qoeCell)
	}
	return tw.Flush()
}

// shapingOpts carries the -shaping/-shaping-seed flags. An empty mode
// means no offline preparation: content comes straight from the preset,
// byte-identical to pre-shaping builds.
type shapingOpts struct {
	mode string
	seed int64
}

// content resolves -content, applying the offline shaping stage when
// requested. Shaping re-synthesizes the drama title from a seeded scene
// signal, so it is restricted to the drama content whose encoding spec it
// reconstructs; the shaped modes misalign the A/V timelines on purpose, so
// joint and muxed players will refuse them.
func (so shapingOpts) content(contentName string) (*media.Content, error) {
	if so.mode == "" {
		return parseContent(contentName)
	}
	if contentName != "drama" {
		return nil, fmt.Errorf("-shaping supports only -content drama, not %q", contentName)
	}
	base := media.ContentSpec{
		Name:          "drama-show",
		Duration:      media.DramaDuration,
		ChunkDuration: media.DramaChunkDuration,
		VideoTracks:   media.DramaVideoLadder(),
		AudioTracks:   media.DramaAudioLadder(),
		Model:         media.DefaultChunkModel(),
	}
	plan, err := shaping.Optimize(base, shaping.Config{Seed: so.seed, Workers: 1})
	if err != nil {
		return nil, err
	}
	var spec media.ContentSpec
	switch so.mode {
	case "fixed":
		spec = plan.FixedSpec(base)
	case "chunks":
		spec = plan.FixedSpec(base)
		spec.VideoChunks = plan.VideoChunks
		spec.AudioChunks = plan.AudioChunks
	case "full":
		spec = plan.Spec(base)
	default:
		return nil, fmt.Errorf("unknown -shaping mode %q (chunks, full, or fixed)", so.mode)
	}
	return media.NewContent(spec)
}

// parseContent resolves the -content flag.
func parseContent(contentName string) (*media.Content, error) {
	switch contentName {
	case "drama":
		return media.DramaShow(), nil
	case "drama-low-audio":
		return media.DramaShowLowAudio(), nil
	case "drama-high-audio":
		return media.DramaShowHighAudio(), nil
	case "music-show":
		return media.MusicShow(), nil
	case "action-movie":
		return media.ActionMovie(), nil
	default:
		return nil, fmt.Errorf("unknown content %q", contentName)
	}
}

// parseProfile resolves the bandwidth flags (-profile beats -trace beats
// -kbps).
func parseProfile(kbps float64, traceFile, profileName string) (trace.Profile, error) {
	switch {
	case profileName != "":
		return trace.Named(profileName)
	case traceFile != "":
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		profile, err := trace.ReadCSV(f)
		f.Close()
		return profile, err
	case kbps > 0:
		return trace.Fixed(media.Kbps(kbps)), nil
	default:
		return nil, fmt.Errorf("need -kbps, -trace, or -profile")
	}
}

// parseManifest resolves -manifest and -audio-first into manifest options.
func parseManifest(content *media.Content, manifest, audioFirst string) (core.ManifestOptions, error) {
	mo := core.ManifestOptions{}
	switch manifest {
	case "hsub":
		mo.Combos = media.HSub(content)
	case "hall":
		mo.Combos = media.HAll(content)
	default:
		return mo, fmt.Errorf("unknown manifest %q", manifest)
	}
	if audioFirst != "" {
		first := content.TrackByID(audioFirst)
		if first == nil || first.Type != media.Audio {
			return mo, fmt.Errorf("unknown audio track %q", audioFirst)
		}
		mo.AudioOrder = []*media.Track{first}
		for _, a := range content.AudioTracks {
			if a != first {
				mo.AudioOrder = append(mo.AudioOrder, a)
			}
		}
	}
	return mo, nil
}

// recFor indexes a recorder slice that may be nil (timelines disabled).
func recFor(recs []*timeline.Recorder, i int) *timeline.Recorder {
	if recs == nil {
		return nil
	}
	return recs[i]
}

// playOnce builds content, profile and manifest options from the CLI flags
// and runs one session, attaching rec (may be nil) as its flight recorder.
func playOnce(playerName string, kbps float64, traceFile, profileName, contentName, manifest, audioFirst string, rec *timeline.Recorder, fo faultOpts, to transportOpts, lo liveOpts, so shapingOpts) (*core.Session, error) {
	kind, err := core.ParsePlayerKind(playerName)
	if err != nil {
		return nil, err
	}
	content, err := so.content(contentName)
	if err != nil {
		return nil, err
	}
	profile, err := parseProfile(kbps, traceFile, profileName)
	if err != nil {
		return nil, err
	}
	mo, err := parseManifest(content, manifest, audioFirst)
	if err != nil {
		return nil, err
	}
	tc, err := to.config()
	if err != nil {
		return nil, err
	}
	return core.Play(core.Spec{
		Content:    content,
		Profile:    profile,
		Player:     kind,
		Manifest:   mo,
		Faults:     fo.plan(),
		Robustness: fo.policy(),
		Recorder:   rec,
		RTT:        to.linkRTT(),
		Transport:  tc,
		Live:       lo.config(),
	})
}

// parseMix resolves -mix (comma-separated kinds, round-robin) falling back
// to -player for a homogeneous fleet.
func parseMix(mixStr, playerName string) ([]core.PlayerKind, error) {
	names := []string{playerName}
	if mixStr != "" {
		names = strings.Split(mixStr, ",")
	}
	kinds := make([]core.PlayerKind, 0, len(names))
	for _, name := range names {
		kind, err := core.ParsePlayerKind(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, kind)
	}
	return kinds, nil
}

// runFleet co-simulates N sessions: the flag-selected bandwidth becomes the
// shared edge uplink, every client gets a generous access link behind it,
// and all sessions hit one shared edge cache. Output is a per-session table
// plus the fleet aggregates; -json writes the full fleet report.
func runFleet(n int, spread time.Duration, mixStr, playerName string, kbps float64, traceFile, profileName, contentName, manifest, audioFirst, jsonOut, timelineDir string, seed int64, cell, shards, sampleTimelines int, fo faultOpts, to transportOpts, lo liveOpts, so shapingOpts) error {
	content, err := so.content(contentName)
	if err != nil {
		return err
	}
	profile, err := parseProfile(kbps, traceFile, profileName)
	if err != nil {
		return err
	}
	mo, err := parseManifest(content, manifest, audioFirst)
	if err != nil {
		return err
	}
	kinds, err := parseMix(mixStr, playerName)
	if err != nil {
		return err
	}
	tc, err := to.config()
	if err != nil {
		return err
	}
	res, err := fleet.Run(fleet.Config{
		Content:         content,
		Sessions:        n,
		Mix:             kinds,
		Manifest:        mo,
		UplinkProfile:   profile,
		ArrivalSpread:   spread,
		MissPenalty:     60 * time.Millisecond,
		Seed:            seed,
		FaultPlan:       fo.plan(),
		Robustness:      fo.policy(),
		Timeline:        timelineDir != "",
		CellSessions:    cell,
		Shards:          shards,
		SampleTimelines: sampleTimelines,
		Transport:       tc,
		AccessRTT:       to.linkRTT(),
		Live:            lo.config(),
	})
	if err != nil {
		return err
	}
	if timelineDir != "" {
		if err := timeline.WriteFiles(timelineDir, "fleet", res.Recorders); err != nil {
			return err
		}
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tModel\tArrival\tVideo\tAudio\tStalls\tRebuffer\tCache hit\tQoE")
	row := func(id int, kind core.PlayerKind, arrival time.Duration, ended bool, m qoe.Metrics, cache cdnsim.Stats) {
		qoeCell := fmt.Sprintf("%.2f", m.Score)
		if !ended {
			qoeCell += " (aborted)"
		}
		fmt.Fprintf(tw, "%d\t%s\t%.1fs\t%.0fK\t%.0fK\t%d\t%.1fs\t%.2f\t%s\n",
			id, kind, arrival.Seconds(),
			m.AvgVideoBitrate.Kbps(), m.AvgAudioBitrate.Kbps(),
			m.StallCount, m.RebufferTime.Seconds(), cache.HitRatio(), qoeCell)
	}
	if res.Streamed {
		fmt.Fprintf(tw, "(streaming aggregation: showing a %d-session reservoir sample)\n", len(res.Sampled))
		for _, s := range res.Sampled {
			row(s.ID, s.Kind, s.Arrival, s.Ended, s.Metrics, s.Cache)
		}
	} else {
		for _, s := range res.Sessions {
			row(s.ID, s.Kind, s.Arrival, s.Result.Ended, s.Metrics, s.Cache)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Printf("fleet:  %d/%d completed, QoE median %.2f (p10 %.2f), Jain fairness %.3f\n",
		res.Completed, res.Fleet.Sessions, res.Fleet.Score.Median, res.Fleet.Score.P10, res.Fleet.JainVideoKbps)
	fmt.Printf("cache:  %d requests, hit ratio %.3f, byte hit ratio %.3f (origin offload)\n",
		res.Cache.Requests, res.Cache.HitRatio(), res.Cache.ByteHitRatio())

	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		if err := res.Report(contentName).WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

func run(playerName string, kbps float64, traceFile, profileName, contentName, manifest, audioFirst, timelineCSV, timelineDir, jsonOut string, fo faultOpts, to transportOpts, lo liveOpts, so shapingOpts) error {
	var rec *timeline.Recorder
	if timelineDir != "" {
		rec = timeline.New(0, playerName)
	}
	sess, err := playOnce(playerName, kbps, traceFile, profileName, contentName, manifest, audioFirst, rec, fo, to, lo, so)
	if err != nil {
		return err
	}
	m := sess.Metrics
	fmt.Printf("model:           %s\n", sess.Model)
	fmt.Printf("startup delay:   %.2f s\n", m.StartupDelay.Seconds())
	fmt.Printf("stalls:          %d (%.1f s rebuffering, ratio %.3f)\n", m.StallCount, m.RebufferTime.Seconds(), m.RebufferRatio)
	fmt.Printf("avg video:       %.0f Kbps (quality %.2f, %d switches)\n", m.AvgVideoBitrate.Kbps(), m.AvgVideoQuality, m.VideoSwitches)
	fmt.Printf("avg audio:       %.0f Kbps (quality %.2f, %d switches)\n", m.AvgAudioBitrate.Kbps(), m.AvgAudioQuality, m.AudioSwitches)
	fmt.Printf("combos used:     %v (off-manifest chunks: %d)\n", sess.Result.CombosSelected(), m.OffManifest)
	fmt.Printf("buffer imbalance: max %.1f s, mean %.1f s\n", m.MaxImbalance.Seconds(), m.MeanImbalance.Seconds())
	fmt.Printf("QoE score:       %.2f\n", m.Score)
	if fo.rate > 0 || len(sess.Result.Faults) > 0 {
		fmt.Printf("faults:          %d (%d retries, %d failovers, %.1f KB wasted)\n",
			len(sess.Result.Faults), sess.Result.Retries, len(sess.Result.Failovers),
			float64(sess.Result.WastedFaultBytes())/1000)
	}
	if t := sess.Result.Transport; t != nil {
		fmt.Printf("transport:       %s — %d handshakes, %d resumes, %d hol stalls (%.1f s handshake wait, %.1f s hol wait)\n",
			t.Protocol, t.Handshakes, t.Resumes, t.HoLStalls,
			t.HandshakeWait.Seconds(), t.HoLWait.Seconds())
	}
	if l := sess.Result.Live; l != nil {
		fmt.Printf("live:            latency target %.1f s — join %.1f s, mean %.2f s, max %.2f s, final %.2f s\n",
			l.LatencyTarget.Seconds(), l.JoinLatency.Seconds(),
			l.MeanLatency.Seconds(), l.MaxLatency.Seconds(), l.FinalLatency.Seconds())
		fmt.Printf("catch-up:        mean rate %.3fx (%d changes, %.1f s sped up, %.1f s slowed), %d resyncs skipping %.1f s\n",
			l.MeanRate, l.RateChanges, l.CatchupTime.Seconds(), l.SlowdownTime.Seconds(),
			l.Resyncs, l.SkippedTime.Seconds())
	}
	if sess.Result.Aborted {
		fmt.Printf("ABORTED:         %s\n", sess.Result.AbortReason)
	}
	if rec != nil {
		c := rec.Counters()
		fmt.Printf("timeline:        %d events (%d decisions, %d requests, %d retries, %d stalls)\n",
			c.Events, c.Decisions, c.Requests, c.Retries, c.Stalls)
		if err := timeline.WriteFiles(timelineDir, "session", []*timeline.Recorder{rec}); err != nil {
			return err
		}
	}

	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		doc := report.FromResult(contentName, sess.Result, sess.Metrics)
		if rec != nil {
			doc.TimelineCounters = report.CountersFrom(rec.Counters())
		}
		if err := doc.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	if timelineCSV != "" {
		f, err := os.Create(timelineCSV)
		if err != nil {
			return err
		}
		defer f.Close()
		w := csv.NewWriter(f)
		defer w.Flush()
		if err := w.Write([]string{"t_s", "playpos_s", "video", "audio", "vbuf_s", "abuf_s", "est_kbps", "stalled"}); err != nil {
			return err
		}
		for _, s := range sess.Result.Timeline {
			video, audio := "", ""
			if s.Video != nil {
				video = s.Video.ID
			}
			if s.Audio != nil {
				audio = s.Audio.ID
			}
			rec := []string{
				fmt.Sprintf("%.3f", s.At.Seconds()),
				fmt.Sprintf("%.3f", s.PlayPos.Seconds()),
				video, audio,
				fmt.Sprintf("%.3f", s.VideoBuffer.Seconds()),
				fmt.Sprintf("%.3f", s.AudioBuffer.Seconds()),
				fmt.Sprintf("%.1f", s.Estimate.Kbps()),
				fmt.Sprintf("%v", s.Stalled),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	return nil
}
