package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// trivialWorkloads keep the measurement plumbing test fast.
func trivialWorkloads(calls *int) []workload {
	return []workload{
		{"counting", func(parallel int) error {
			*calls++
			return nil
		}},
		{"allocating", func(parallel int) error {
			s := make([]byte, 1<<10)
			_ = s
			return nil
		}},
	}
}

func TestRunWritesParsableDoc(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	calls := 0
	if err := run(out, "2026-08-05", 2, 1, trivialWorkloads(&calls), nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var d doc
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if d.Date != "2026-08-05" {
		t.Errorf("date = %q", d.Date)
	}
	if d.GoMaxProcs < 1 {
		t.Errorf("gomaxprocs = %d", d.GoMaxProcs)
	}
	// parallel=1 equals the serial run, so each workload appears once.
	if len(d.Results) != 2 {
		t.Fatalf("results = %+v, want one per workload", d.Results)
	}
	for _, r := range d.Results {
		if r.Reps != 2 || r.Parallel != 1 {
			t.Errorf("result %+v: want reps 2, parallel 1", r)
		}
		if r.NsPerOp < 0 {
			t.Errorf("result %+v: negative ns/op", r)
		}
	}
	// warm-up + reps per measured run
	if calls != 3 {
		t.Errorf("counting workload ran %d times, want 3 (1 warm-up + 2 reps)", calls)
	}
}

func TestMeasureReportsAllocations(t *testing.T) {
	r, err := measure("allocating", 1, 4, func(parallel int) error {
		s := make([]byte, 1<<20)
		_ = s
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.BytesPerOp < 1<<20 {
		t.Errorf("bytes/op = %d, want >= 1MiB", r.BytesPerOp)
	}
	if r.AllocsPerOp == 0 {
		t.Error("allocs/op = 0 for an allocating workload")
	}
}

func TestRunPropagatesWorkloadError(t *testing.T) {
	boom := errors.New("boom")
	out := filepath.Join(t.TempDir(), "bench.json")
	err := run(out, "2026-08-05", 1, 1, []workload{
		{"failing", func(parallel int) error { return boom }},
	}, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if _, statErr := os.Stat(out); !os.IsNotExist(statErr) {
		t.Error("output file written despite workload failure")
	}
}

func TestScaleLabel(t *testing.T) {
	cases := map[int]string{1000: "1e3", 10000: "1e4", 100000: "1e5", 10: "1e1", 96: "96", 1: "1", 1200: "1200"}
	for n, want := range cases {
		if got := scaleLabel(n); got != want {
			t.Errorf("scaleLabel(%d) = %q, want %q", n, got, want)
		}
	}
	for _, n := range []int{1000, 10000, 100000} {
		name := "fleet-" + scaleLabel(n)
		if name != map[int]string{1000: "fleet-1e3", 10000: "fleet-1e4", 100000: "fleet-1e5"}[n] {
			t.Errorf("unexpected scale row name %q", name)
		}
	}
}

// TestScaleRowsMeasureOnce runs the scale plumbing end to end on a tiny
// fleet: one measureOnce per row, no warm-up, appended after the paired
// workloads in the output doc.
func TestScaleRowsMeasureOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (small) fleet")
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	calls := 0
	scale := fleetScaleWorkloads([]int{96})
	if len(scale) != 1 || scale[0].name != "fleet-96" {
		t.Fatalf("scale workloads = %+v", scale)
	}
	if err := run(out, "2026-08-05", 2, 1, trivialWorkloads(&calls), scale); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var d doc
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatal(err)
	}
	last := d.Results[len(d.Results)-1]
	if last.Name != "fleet-96" || last.Reps != 1 {
		t.Errorf("scale row = %+v, want fleet-96 with reps 1", last)
	}
	if last.NsPerOp <= 0 {
		t.Errorf("scale row ns/op = %d, want > 0", last.NsPerOp)
	}
}

func TestFleetWorkloadsRunSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet workloads are slow")
	}
	for _, w := range fleetWorkloads() {
		if err := w.fn(1); err != nil {
			t.Errorf("%s: %v", w.name, err)
		}
	}
}
