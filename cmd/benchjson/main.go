// Command benchjson measures the repo's fleet workloads and writes a
// BENCH_<date>.json of ns/op, allocs/op and bytes/op, so successive PRs
// can track the performance trajectory without parsing `go test -bench`
// text output.
//
// Usage:
//
//	benchjson [-out path] [-reps n] [-parallel n]
//
// The default output path is BENCH_<today>.json in the working directory.
// Each workload is measured twice: once serial (-parallel 1) and once with
// the runpool fan-out (-parallel value, default GOMAXPROCS), so the JSON
// also records the fleet speedup on the machine that produced it.
//
// The fleet-1e3/1e4/1e5 rows measure one sharded co-simulation each at
// N=1,000/10,000/100,000 sessions (16-session contention cells, streaming
// sketch aggregation): a single timed run with no warm-up and no
// serial/parallel pair, because at N=1e5 one run is minutes of wall clock.
// -scale=false skips them for a quick trajectory check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"demuxabr/internal/cdnsim"
	"demuxabr/internal/core"
	"demuxabr/internal/experiments"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/runpool"
	"demuxabr/internal/timeline"
	"demuxabr/internal/trace"
)

// result is one measured workload.
type result struct {
	Name        string `json:"name"`
	Parallel    int    `json:"parallel"`
	Reps        int    `json:"reps"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
}

// doc is the emitted file.
type doc struct {
	Date       string   `json:"date"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Results    []result `json:"results"`
}

// workload is one named fleet run, parameterized by worker count.
type workload struct {
	name string
	fn   func(parallel int) error
}

// fleetWorkloads are the multi-session runners the PR-over-PR trajectory
// tracks.
func fleetWorkloads() []workload {
	return []workload{
		{"bandwidth-sweep", func(p int) error {
			_, err := experiments.BandwidthSweepParallel(experiments.DefaultSweepKbps(), p)
			return err
		}},
		{"seed-sweep-5", func(p int) error {
			_, err := experiments.SeedSweepParallel(5, p)
			return err
		}},
		{"compare-fig3", func(p int) error {
			_, err := experiments.CompareParallel(experiments.Scenarios()[1], p)
			return err
		}},
		// One full shaping pipeline (scene model, per-type boundary DPs,
		// ladder search) plus the six cross-product sessions it feeds.
		{"ladder-cross", func(p int) error {
			_, _, err := experiments.LadderCross(p)
			return err
		}},
		{"cdn-cache-sweep", func(p int) error {
			content := media.DramaShow()
			pop := cdnsim.Population{Viewers: 60, VideoZipf: 1.2, AudioSpread: 3, Seed: 11}
			cdnsim.CacheSweepParallel(content, pop, []int64{32 << 20, 128 << 20, 512 << 20}, p)
			return nil
		}},
		// The recorder-off/on pair exposes the flight recorder's overhead:
		// the off row must track the pre-recorder baseline (the recorder is
		// a nil pointer, every emit a no-op), the on row prices event
		// collection. Single-session, so worker count is irrelevant.
		{"session-recorder-off", func(int) error {
			_, err := core.Play(core.Spec{Profile: trace.Fig3VaryingAvg600(), Player: core.BestPractice})
			return err
		}},
		{"session-recorder-on", func(int) error {
			_, err := core.Play(core.Spec{
				Profile:  trace.Fig3VaryingAvg600(),
				Player:   core.BestPractice,
				Recorder: timeline.New(0, "bench"),
			})
			return err
		}},
	}
}

// fleetScaleWorkloads are the large sharded-fleet rows (fleet-1e3,
// fleet-1e4, fleet-1e5 for the default sizes): each runs one
// experiments.FleetAtScale co-simulation on the streaming sketch path.
// They are kept out of fleetWorkloads so the serial/parallel pairing and
// warm-up logic never multiplies their cost.
func fleetScaleWorkloads(ns []int) []workload {
	ws := make([]workload, 0, len(ns))
	for _, n := range ns {
		n := n
		ws = append(ws, workload{"fleet-" + scaleLabel(n), func(p int) error {
			_, err := experiments.FleetAtScale(n, p)
			return err
		}})
	}
	return ws
}

// transportWorkloads are the transport-pricing rows: one sharded fleet at
// N=1,000 per protocol, so BENCH_*.json prices the per-session connection
// bookkeeping (handshake events, keep-alive clocks, loss draws) against
// the transport-less fleet-1e3 row.
func transportWorkloads() []workload {
	ws := make([]workload, 0, 3)
	for _, proto := range []netsim.Protocol{netsim.H1, netsim.H2, netsim.H3} {
		proto := proto
		ws = append(ws, workload{"transport-" + proto.String(), func(p int) error {
			_, err := experiments.FleetAtScaleTransport(1000, p, proto)
			return err
		}})
	}
	return ws
}

// liveWorkloads are the live-fleet rows: one sharded fleet of latency-
// target sessions (LL-ABR trio mix, availability gating, catch-up
// controller) at N=1,000, so BENCH_*.json prices the live machinery
// against the VOD fleet-1e3 row.
func liveWorkloads() []workload {
	return []workload{{"live-1e3", func(p int) error {
		_, err := experiments.FleetAtScaleLive(1000, p)
		return err
	}}}
}

// scaleLabel renders powers of ten as "1e3"-style exponents and anything
// else as the plain decimal.
func scaleLabel(n int) string {
	e, m := 0, n
	for m >= 10 && m%10 == 0 {
		m /= 10
		e++
	}
	if m == 1 && e > 0 {
		return fmt.Sprintf("1e%d", e)
	}
	return fmt.Sprintf("%d", n)
}

// measure runs fn reps times and reports per-op wall time and allocation
// deltas. Not a sim package: wall clock here times real execution.
func measure(name string, parallel, reps int, fn func(parallel int) error) (result, error) {
	// One untimed warm-up fills the lazy caches (preset contents, combo
	// expansions) so the steady state is what gets recorded.
	if err := fn(parallel); err != nil {
		return result{}, fmt.Errorf("%s: %w", name, err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := fn(parallel); err != nil {
			return result{}, fmt.Errorf("%s: %w", name, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return result{
		Name:        name,
		Parallel:    runpool.Workers(parallel),
		Reps:        reps,
		NsPerOp:     elapsed.Nanoseconds() / int64(reps),
		AllocsPerOp: (after.Mallocs - before.Mallocs) / uint64(reps),
		BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / uint64(reps),
	}, nil
}

// measureOnce times a single run of fn with no warm-up: the scale rows
// are too expensive for warm-up plus repetition, and a one-shot wall-clock
// figure is what the BENCH trajectory compares for them.
func measureOnce(name string, parallel int, fn func(parallel int) error) (result, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := fn(parallel); err != nil {
		return result{}, fmt.Errorf("%s: %w", name, err)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return result{
		Name:        name,
		Parallel:    runpool.Workers(parallel),
		Reps:        1,
		NsPerOp:     elapsed.Nanoseconds(),
		AllocsPerOp: after.Mallocs - before.Mallocs,
		BytesPerOp:  after.TotalAlloc - before.TotalAlloc,
	}, nil
}

// run measures every workload serial and parallel, then each scale
// workload once at the requested parallelism, and writes the JSON doc.
func run(out string, date string, reps, parallel int, workloads, scale []workload) error {
	d := doc{Date: date, GoMaxProcs: runtime.GOMAXPROCS(0)}
	ps := []int{1}
	if runpool.Workers(parallel) > 1 {
		ps = append(ps, parallel) // on a single core the fan-out run would just duplicate serial
	}
	for _, w := range workloads {
		for _, p := range ps {
			r, err := measure(w.name, p, reps, w.fn)
			if err != nil {
				return err
			}
			d.Results = append(d.Results, r)
		}
	}
	for _, w := range scale {
		r, err := measureOnce(w.name, parallel, w.fn)
		if err != nil {
			return err
		}
		d.Results = append(d.Results, r)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	date := time.Now().Format("2006-01-02")
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	reps := flag.Int("reps", 3, "repetitions per workload")
	parallel := flag.Int("parallel", 0, "fleet worker count for the parallel runs (0 = GOMAXPROCS)")
	withScale := flag.Bool("scale", true, "include the fleet-1e3/1e4/1e5 sharded-fleet rows (minutes of wall clock)")
	flag.Parse()
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", date)
	}
	var scale []workload
	if *withScale {
		scale = append(fleetScaleWorkloads(experiments.DefaultFleetScaleNs()), transportWorkloads()...)
		scale = append(scale, liveWorkloads()...)
	}
	if err := run(path, date, *reps, *parallel, fleetWorkloads(), scale); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}
