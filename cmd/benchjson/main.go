// Command benchjson measures the repo's fleet workloads and writes a
// BENCH_<date>.json of ns/op, allocs/op and bytes/op, so successive PRs
// can track the performance trajectory without parsing `go test -bench`
// text output.
//
// Usage:
//
//	benchjson [-out path] [-reps n] [-parallel n]
//
// The default output path is BENCH_<today>.json in the working directory.
// Each workload is measured twice: once serial (-parallel 1) and once with
// the runpool fan-out (-parallel value, default GOMAXPROCS), so the JSON
// also records the fleet speedup on the machine that produced it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"demuxabr/internal/cdnsim"
	"demuxabr/internal/core"
	"demuxabr/internal/experiments"
	"demuxabr/internal/media"
	"demuxabr/internal/runpool"
	"demuxabr/internal/timeline"
	"demuxabr/internal/trace"
)

// result is one measured workload.
type result struct {
	Name        string `json:"name"`
	Parallel    int    `json:"parallel"`
	Reps        int    `json:"reps"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
}

// doc is the emitted file.
type doc struct {
	Date       string   `json:"date"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Results    []result `json:"results"`
}

// workload is one named fleet run, parameterized by worker count.
type workload struct {
	name string
	fn   func(parallel int) error
}

// fleetWorkloads are the multi-session runners the PR-over-PR trajectory
// tracks.
func fleetWorkloads() []workload {
	return []workload{
		{"bandwidth-sweep", func(p int) error {
			_, err := experiments.BandwidthSweepParallel(experiments.DefaultSweepKbps(), p)
			return err
		}},
		{"seed-sweep-5", func(p int) error {
			_, err := experiments.SeedSweepParallel(5, p)
			return err
		}},
		{"compare-fig3", func(p int) error {
			_, err := experiments.CompareParallel(experiments.Scenarios()[1], p)
			return err
		}},
		{"cdn-cache-sweep", func(p int) error {
			content := media.DramaShow()
			pop := cdnsim.Population{Viewers: 60, VideoZipf: 1.2, AudioSpread: 3, Seed: 11}
			cdnsim.CacheSweepParallel(content, pop, []int64{32 << 20, 128 << 20, 512 << 20}, p)
			return nil
		}},
		// The recorder-off/on pair exposes the flight recorder's overhead:
		// the off row must track the pre-recorder baseline (the recorder is
		// a nil pointer, every emit a no-op), the on row prices event
		// collection. Single-session, so worker count is irrelevant.
		{"session-recorder-off", func(int) error {
			_, err := core.Play(core.Spec{Profile: trace.Fig3VaryingAvg600(), Player: core.BestPractice})
			return err
		}},
		{"session-recorder-on", func(int) error {
			_, err := core.Play(core.Spec{
				Profile:  trace.Fig3VaryingAvg600(),
				Player:   core.BestPractice,
				Recorder: timeline.New(0, "bench"),
			})
			return err
		}},
	}
}

// measure runs fn reps times and reports per-op wall time and allocation
// deltas. Not a sim package: wall clock here times real execution.
func measure(name string, parallel, reps int, fn func(parallel int) error) (result, error) {
	// One untimed warm-up fills the lazy caches (preset contents, combo
	// expansions) so the steady state is what gets recorded.
	if err := fn(parallel); err != nil {
		return result{}, fmt.Errorf("%s: %w", name, err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := fn(parallel); err != nil {
			return result{}, fmt.Errorf("%s: %w", name, err)
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return result{
		Name:        name,
		Parallel:    runpool.Workers(parallel),
		Reps:        reps,
		NsPerOp:     elapsed.Nanoseconds() / int64(reps),
		AllocsPerOp: (after.Mallocs - before.Mallocs) / uint64(reps),
		BytesPerOp:  (after.TotalAlloc - before.TotalAlloc) / uint64(reps),
	}, nil
}

// run measures every workload serial and parallel and writes the JSON doc.
func run(out string, date string, reps, parallel int, workloads []workload) error {
	d := doc{Date: date, GoMaxProcs: runtime.GOMAXPROCS(0)}
	ps := []int{1}
	if runpool.Workers(parallel) > 1 {
		ps = append(ps, parallel) // on a single core the fan-out run would just duplicate serial
	}
	for _, w := range workloads {
		for _, p := range ps {
			r, err := measure(w.name, p, reps, w.fn)
			if err != nil {
				return err
			}
			d.Results = append(d.Results, r)
		}
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	date := time.Now().Format("2006-01-02")
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	reps := flag.Int("reps", 3, "repetitions per workload")
	parallel := flag.Int("parallel", 0, "fleet worker count for the parallel runs (0 = GOMAXPROCS)")
	flag.Parse()
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", date)
	}
	if err := run(path, date, *reps, *parallel, fleetWorkloads()); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}
