// Command replay renders a saved session report (abrsim -json) as ASCII
// charts in the terminal: buffer levels with stall shading, the bandwidth
// estimate, and the track-selection steps — the same views as the paper's
// figures.
//
// Usage:
//
//	abrsim -player shaka -profile fig4b -manifest hall -json s.json
//	replay s.json
package main

import (
	"fmt"
	"os"
	"sort"

	"demuxabr/internal/plot"
	"demuxabr/internal/report"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: replay <session.json>")
		os.Exit(2)
	}
	if err := run(os.Args[1], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
}

func run(path string, out *os.File) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := report.ReadJSON(f)
	if err != nil {
		return err
	}
	return render(s, out)
}

func render(s *report.Session, out *os.File) error {
	fmt.Fprintf(out, "session: %s on %s — %.0f s content, %d stalls, %.1f s rebuffer, QoE %.2f\n\n",
		s.Model, s.Content, s.ContentDuration, s.Metrics.StallCount,
		s.Metrics.RebufferSecs, s.Metrics.Score)

	if len(s.Timeline) == 0 {
		return fmt.Errorf("report has no timeline")
	}
	xMax := s.Timeline[len(s.Timeline)-1].At

	vbuf := make([]float64, len(s.Timeline))
	abuf := make([]float64, len(s.Timeline))
	est := make([]float64, 0, len(s.Timeline))
	for i, p := range s.Timeline {
		vbuf[i] = p.VideoBuffer
		abuf[i] = p.AudioBuffer
		if p.EstimateKbps > 0 {
			est = append(est, p.EstimateKbps)
		}
	}
	if err := plot.Chart(out, "buffer levels (s)", 72, 10, xMax,
		plot.Series{Name: "video", Values: vbuf},
		plot.Series{Name: "audio", Values: abuf},
	); err != nil {
		return err
	}
	fmt.Fprintln(out)

	if len(est) > 1 {
		if err := plot.Chart(out, "bandwidth estimate (Kbps)", 72, 8, xMax,
			plot.Series{Name: "estimate", Values: est}); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	// Track-selection steps per type, from the timeline samples.
	for _, typ := range []struct {
		name string
		get  func(report.Point) string
	}{
		{"video track", func(p report.Point) string { return p.Video }},
		{"audio track", func(p report.Point) string { return p.Audio }},
	} {
		var values []string
		seen := map[string]bool{}
		for _, p := range s.Timeline {
			v := typ.get(p)
			if v == "" {
				continue
			}
			values = append(values, v)
			seen[v] = true
		}
		if len(values) == 0 {
			continue
		}
		cats := make([]string, 0, len(seen))
		for c := range seen {
			cats = append(cats, c)
		}
		sort.Strings(cats)
		if err := plot.Steps(out, typ.name, 72, xMax, cats, values); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	if len(s.Stalls) > 0 {
		fmt.Fprint(out, "stalls:")
		for _, st := range s.Stalls {
			fmt.Fprintf(out, "  %.1f-%.1fs", st.Start, st.End)
		}
		fmt.Fprintln(out)
	}
	return nil
}
