package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"demuxabr/internal/abr/shaka"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/report"
	"demuxabr/internal/trace"
)

func TestRenderSession(t *testing.T) {
	c := media.DramaShow()
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fig4bBimodal600())
	model := shaka.NewHLS(media.HAll(c))
	res, err := player.Run(link, player.Config{Content: c, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	doc := report.FromResult(c.Name, res, qoe.Compute(res, c, nil, qoe.DefaultWeights()))
	path := filepath.Join(t.TempDir(), "s.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := run(path, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"buffer levels", "bandwidth estimate", "video track", "audio track", "shaka"} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
	// The Fig 4(b) signature: the selection chart includes V3 (the
	// overestimate-driven climb).
	if !strings.Contains(text, "V3 |") {
		t.Errorf("selection chart missing V3 row:\n%s", text)
	}
	var buf bytes.Buffer
	_ = buf
}

func TestRunErrors(t *testing.T) {
	if err := run("/nonexistent.json", os.Stdout); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{}"), 0o644)
	if err := run(bad, os.Stdout); err == nil {
		t.Error("model-less report should fail")
	}
}
