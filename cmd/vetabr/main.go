// Command vetabr runs the project's static-analysis suite
// (internal/analysis) over the repository's own source, enforcing the
// simulator-determinism and unit-safety invariants every regenerated
// figure depends on: simclock, globalrand, maporder, rangeleak,
// sharedcapture, recmut, floateq, units.
//
// Usage:
//
//	vetabr [-json] [-fix] [-sarif file] [-baseline file [-write-baseline]] [dir ...]
//
// Each dir is a module root or package tree ("./..." suffixes are
// accepted and stripped; the walk always recurses). With no argument the
// current directory's module is analyzed.
//
// -fix applies the mechanical rewrites attached to findings (inserting
// the missing sort after a map range, substituting a constant seed for a
// wall-clock one) and re-analyzes; -sarif writes a SARIF 2.1.0 log for
// CI annotation surfaces; -baseline tolerates (but still reports)
// findings grandfathered in the given file, failing on stale entries so
// the baseline only ever burns down; -write-baseline regenerates that
// file from the current findings instead of gating on it.
//
// Exit status 1 when any unsuppressed, unbaselined warning fires (or a
// baseline entry is stale), 2 on load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"demuxabr/internal/analysis"
)

func main() {
	var opts options
	flag.BoolVar(&opts.jsonOut, "json", false, "emit findings as JSON")
	flag.BoolVar(&opts.fix, "fix", false, "apply mechanical fixes to the source tree, then re-analyze")
	flag.StringVar(&opts.sarifPath, "sarif", "", "write findings as SARIF 2.1.0 to `file`")
	flag.StringVar(&opts.baselinePath, "baseline", "", "tolerate findings grandfathered in `file`; fail on stale entries")
	flag.BoolVar(&opts.writeBaseline, "write-baseline", false, "regenerate the -baseline file from current findings and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: vetabr [-json] [-fix] [-sarif file] [-baseline file [-write-baseline]] [dir ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	opts.roots = flag.Args()
	code, err := run(opts, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetabr:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// options collects the command line.
type options struct {
	roots         []string
	jsonOut       bool
	fix           bool
	sarifPath     string
	baselinePath  string
	writeBaseline bool
}

// jsonFinding is the machine-readable finding schema (-json), shared in
// shape with cmd/lintmanifest.
type jsonFinding struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Severity  string `json:"severity"`
	Rule      string `json:"rule"`
	Message   string `json:"message"`
	Baselined bool   `json:"baselined,omitempty"`
}

// run analyzes each root and renders findings; it returns the exit code.
func run(opts options, out io.Writer) (int, error) {
	roots := opts.roots
	if len(roots) == 0 {
		roots = []string{"."}
	}
	if opts.writeBaseline && opts.baselinePath == "" {
		return 2, fmt.Errorf("-write-baseline needs -baseline to name the file")
	}
	var all []analysis.Finding
	for _, root := range roots {
		root = strings.TrimSuffix(root, "...")
		root = strings.TrimSuffix(root, string(filepath.Separator))
		if root == "" {
			root = "."
		}
		findings, err := analysis.RunDir(root, analysis.DefaultAnalyzers())
		if err != nil {
			return 2, err
		}
		if opts.fix {
			n, files, err := applyFixes(findings)
			if err != nil {
				return 2, err
			}
			if n > 0 {
				fmt.Fprintf(out, "vetabr: applied %d fix(es) across %d file(s) under %s\n", n, files, root)
				if findings, err = analysis.RunDir(root, analysis.DefaultAnalyzers()); err != nil {
					return 2, err
				}
			}
		}
		analysis.RelFindings(root, findings)
		all = append(all, findings...)
	}

	if opts.writeBaseline {
		var warn []analysis.Finding
		for _, f := range all {
			if f.Severity == analysis.Warning {
				warn = append(warn, f)
			}
		}
		if err := os.WriteFile(opts.baselinePath, analysis.FormatBaseline(warn), 0o644); err != nil {
			return 2, err
		}
		fmt.Fprintf(out, "vetabr: wrote %d finding(s) to %s\n", len(warn), opts.baselinePath)
		return 0, nil
	}

	baselined := map[int]bool{}
	var stale []string
	if opts.baselinePath != "" {
		base, err := analysis.LoadBaseline(opts.baselinePath)
		if err != nil {
			return 2, err
		}
		for i, f := range all {
			if f.Severity == analysis.Warning && base.Take(f) {
				baselined[i] = true
			}
		}
		stale = base.Stale()
	}
	warnings := 0
	for i, f := range all {
		if f.Severity == analysis.Warning && !baselined[i] {
			warnings++
		}
	}

	if opts.sarifPath != "" {
		doc, err := analysis.SARIF(all, analysis.DefaultAnalyzers())
		if err != nil {
			return 2, err
		}
		if err := os.WriteFile(opts.sarifPath, append(doc, '\n'), 0o644); err != nil {
			return 2, err
		}
	}

	if opts.jsonOut {
		doc := struct {
			Findings []jsonFinding `json:"findings"`
			Stale    []string      `json:"stale_baseline,omitempty"`
		}{Findings: []jsonFinding{}, Stale: stale}
		for i, f := range all {
			doc.Findings = append(doc.Findings, jsonFinding{
				File:      f.Pos.Filename,
				Line:      f.Pos.Line,
				Severity:  f.Severity.String(),
				Rule:      f.Rule,
				Message:   f.Message,
				Baselined: baselined[i],
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return 2, err
		}
	} else {
		for i, f := range all {
			if baselined[i] {
				fmt.Fprintf(out, "%s (baselined)\n", f)
			} else {
				fmt.Fprintln(out, f)
			}
		}
		for _, key := range stale {
			fmt.Fprintf(out, "stale baseline entry (finding fixed — delete the line): %s\n", strings.ReplaceAll(key, "\t", " "))
		}
		if len(all) == 0 && len(stale) == 0 {
			fmt.Fprintln(out, "vetabr: ok")
		}
	}
	if warnings > 0 || len(stale) > 0 {
		return 1, nil
	}
	return 0, nil
}

// applyFixes loads every file a finding's fixes touch, splices the edits
// in, and writes the results back preserving file modes. It returns the
// number of findings fixed and files rewritten.
func applyFixes(findings []analysis.Finding) (fixed, files int, err error) {
	src := map[string][]byte{}
	for _, f := range findings {
		for _, e := range f.Fixes {
			if _, ok := src[e.Filename]; ok {
				continue
			}
			data, err := os.ReadFile(e.Filename)
			if err != nil {
				return 0, 0, err
			}
			src[e.Filename] = data
		}
	}
	out, fixed, err := analysis.ApplyFixes(findings, src)
	if err != nil {
		return 0, 0, err
	}
	for name, data := range out {
		mode := os.FileMode(0o644)
		if st, err := os.Stat(name); err == nil {
			mode = st.Mode().Perm()
		}
		if err := os.WriteFile(name, data, mode); err != nil {
			return 0, 0, err
		}
	}
	return fixed, len(out), nil
}
