// Command vetabr runs the project's static-analysis suite
// (internal/analysis) over the repository's own source, enforcing the
// simulator-determinism and unit-safety invariants every regenerated
// figure depends on: simclock, maporder, floateq, units.
//
// Usage:
//
//	vetabr [-json] [dir ...]
//
// Each dir is a module root or package tree ("./..." suffixes are
// accepted and stripped; the walk always recurses). With no argument the
// current directory's module is analyzed. Exit status 1 when any
// unsuppressed warning fires, 2 on load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"demuxabr/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: vetabr [-json] [dir ...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	code, err := run(flag.Args(), *jsonOut, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetabr:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// jsonFinding is the machine-readable finding schema (-json), shared in
// shape with cmd/lintmanifest.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Severity string `json:"severity"`
	Rule     string `json:"rule"`
	Message  string `json:"message"`
}

// run analyzes each root and renders findings; it returns the exit code.
func run(roots []string, jsonOut bool, out io.Writer) (int, error) {
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var all []analysis.Finding
	for _, root := range roots {
		root = strings.TrimSuffix(root, "...")
		root = strings.TrimSuffix(root, string(filepath.Separator))
		if root == "" {
			root = "."
		}
		findings, err := analysis.RunDir(root, analysis.DefaultAnalyzers())
		if err != nil {
			return 2, err
		}
		all = append(all, findings...)
	}
	warnings := 0
	for _, f := range all {
		if f.Severity == analysis.Warning {
			warnings++
		}
	}
	if jsonOut {
		doc := struct {
			Findings []jsonFinding `json:"findings"`
		}{Findings: []jsonFinding{}}
		for _, f := range all {
			doc.Findings = append(doc.Findings, jsonFinding{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Severity: f.Severity.String(),
				Rule:     f.Rule,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return 2, err
		}
	} else {
		for _, f := range all {
			fmt.Fprintln(out, f)
		}
		if len(all) == 0 {
			fmt.Fprintln(out, "vetabr: ok")
		}
	}
	if warnings > 0 {
		return 1, nil
	}
	return 0, nil
}
