package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module with one simulation file that
// violates simclock (the tree reuses the real module path so the default
// sim-package scoping applies).
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module demuxabr\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgDir := filepath.Join(dir, "internal", "netsim")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkgDir, "clock.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

const violatingSrc = `package netsim

import "time"

func now() time.Time { return time.Now() }
`

const cleanSrc = `package netsim

import "time"

func tick(d time.Duration) time.Duration { return d + time.Second }
`

func TestRunFlagsViolation(t *testing.T) {
	dir := writeModule(t, violatingSrc)
	var out bytes.Buffer
	code, err := run([]string{dir}, false, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "[simclock]") || !strings.Contains(out.String(), "time.Now") {
		t.Errorf("output missing simclock finding:\n%s", out.String())
	}
}

func TestRunCleanTree(t *testing.T) {
	dir := writeModule(t, cleanSrc)
	var out bytes.Buffer
	code, err := run([]string{dir + string(filepath.Separator) + "..."}, false, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0; output:\n%s", code, out.String())
	}
}

func TestRunJSON(t *testing.T) {
	dir := writeModule(t, violatingSrc)
	var out bytes.Buffer
	code, err := run([]string{dir}, true, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	var doc struct {
		Findings []jsonFinding `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(doc.Findings) != 1 {
		t.Fatalf("findings = %+v, want 1", doc.Findings)
	}
	f := doc.Findings[0]
	if f.Rule != "simclock" || f.Severity != "WARN" || f.Line != 5 || !strings.HasSuffix(f.File, "clock.go") {
		t.Errorf("finding = %+v", f)
	}
}

func TestRunMissingModule(t *testing.T) {
	if _, err := run([]string{t.TempDir()}, false, os.Stdout); err == nil {
		t.Error("directory without go.mod should error")
	}
}
