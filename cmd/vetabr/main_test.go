package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module with one simulation file that
// violates simclock (the tree reuses the real module path so the default
// sim-package scoping applies).
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module demuxabr\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgDir := filepath.Join(dir, "internal", "netsim")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkgDir, "clock.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

const violatingSrc = `package netsim

import "time"

func now() time.Time { return time.Now() }
`

const cleanSrc = `package netsim

import "time"

func tick(d time.Duration) time.Duration { return d + time.Second }
`

// fixableSrc carries a globalrand finding with an attached rewrite: the
// wall-clock seed becomes the constant 1 and the time import goes away.
const fixableSrc = `package netsim

import (
	"math/rand"
	"time"
)

func rng() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}
`

func TestRunFlagsViolation(t *testing.T) {
	dir := writeModule(t, violatingSrc)
	var out bytes.Buffer
	code, err := run(options{roots: []string{dir}}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	if !strings.Contains(out.String(), "[simclock]") || !strings.Contains(out.String(), "time.Now") {
		t.Errorf("output missing simclock finding:\n%s", out.String())
	}
}

func TestRunCleanTree(t *testing.T) {
	dir := writeModule(t, cleanSrc)
	var out bytes.Buffer
	code, err := run(options{roots: []string{dir + string(filepath.Separator) + "..."}}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0; output:\n%s", code, out.String())
	}
}

func TestRunJSON(t *testing.T) {
	dir := writeModule(t, violatingSrc)
	var out bytes.Buffer
	code, err := run(options{roots: []string{dir}, jsonOut: true}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	var doc struct {
		Findings []jsonFinding `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(doc.Findings) != 1 {
		t.Fatalf("findings = %+v, want 1", doc.Findings)
	}
	f := doc.Findings[0]
	if f.Rule != "simclock" || f.Severity != "WARN" || f.Line != 5 || !strings.HasSuffix(f.File, "clock.go") {
		t.Errorf("finding = %+v", f)
	}
	if !strings.HasPrefix(f.File, "internal/") {
		t.Errorf("finding file = %q, want root-relative path", f.File)
	}
}

func TestRunMissingModule(t *testing.T) {
	if _, err := run(options{roots: []string{t.TempDir()}}, os.Stdout); err == nil {
		t.Error("directory without go.mod should error")
	}
}

// TestBaselineGate pins the burn-down cycle: -write-baseline grandfathers
// the current findings, a gated rerun passes, and fixing the finding
// without deleting its baseline line fails as stale.
func TestBaselineGate(t *testing.T) {
	dir := writeModule(t, violatingSrc)
	basePath := filepath.Join(dir, "vetabr.baseline")

	var out bytes.Buffer
	code, err := run(options{roots: []string{dir}, baselinePath: basePath, writeBaseline: true}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("write-baseline exit = %d, want 0:\n%s", code, out.String())
	}
	data, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "internal/netsim/clock.go\tsimclock\t") {
		t.Fatalf("baseline missing root-relative entry:\n%s", data)
	}

	out.Reset()
	code, err = run(options{roots: []string{dir}, baselinePath: basePath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("baselined run exit = %d, want 0:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "(baselined)") {
		t.Errorf("baselined finding should still be reported:\n%s", out.String())
	}

	// Fix the finding; the stale baseline entry must now fail the run.
	if err := os.WriteFile(filepath.Join(dir, "internal", "netsim", "clock.go"), []byte(cleanSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	code, err = run(options{roots: []string{dir}, baselinePath: basePath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("stale baseline exit = %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "stale baseline entry") {
		t.Errorf("missing stale-entry report:\n%s", out.String())
	}
}

// TestMissingBaselineIsEmpty: gating against a nonexistent file behaves
// like an empty baseline rather than erroring, so clean repos need no
// baseline file at all.
func TestMissingBaselineIsEmpty(t *testing.T) {
	dir := writeModule(t, cleanSrc)
	var out bytes.Buffer
	code, err := run(options{roots: []string{dir}, baselinePath: filepath.Join(dir, "no-such-baseline")}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit = %d, want 0:\n%s", code, out.String())
	}
}

func TestSARIFOutput(t *testing.T) {
	dir := writeModule(t, violatingSrc)
	sarifPath := filepath.Join(dir, "vetabr.sarif")
	var out bytes.Buffer
	code, err := run(options{roots: []string{dir}, sarifPath: sarifPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("bad SARIF: %v\n%s", err, data)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	run0 := doc.Runs[0]
	if run0.Tool.Driver.Name != "vetabr" || len(run0.Tool.Driver.Rules) < 8 {
		t.Errorf("driver = %+v, want vetabr with the full rule set", run0.Tool.Driver)
	}
	if len(run0.Results) != 1 {
		t.Fatalf("results = %+v, want 1", run0.Results)
	}
	res := run0.Results[0]
	loc := res.Locations[0].PhysicalLocation
	if res.RuleID != "simclock" || res.Level != "warning" ||
		loc.ArtifactLocation.URI != "internal/netsim/clock.go" || loc.Region.StartLine != 5 {
		t.Errorf("result = %+v", res)
	}
}

// TestFixRewritesTree pins the -fix acceptance criterion end to end: the
// wall-clock seed is rewritten, the orphaned time import removed, the
// result is gofmt-clean, and a re-run passes.
func TestFixRewritesTree(t *testing.T) {
	dir := writeModule(t, fixableSrc)
	var out bytes.Buffer
	code, err := run(options{roots: []string{dir}, fix: true}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit after fix = %d, want 0:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "applied 1 fix(es)") {
		t.Errorf("missing fix report:\n%s", out.String())
	}
	fixed, err := os.ReadFile(filepath.Join(dir, "internal", "netsim", "clock.go"))
	if err != nil {
		t.Fatal(err)
	}
	got := string(fixed)
	if !strings.Contains(got, "rand.NewSource(1)") {
		t.Errorf("seed not substituted:\n%s", got)
	}
	if strings.Contains(got, `"time"`) {
		t.Errorf("orphaned time import kept:\n%s", got)
	}
	var rerun bytes.Buffer
	code, err = run(options{roots: []string{dir}}, &rerun)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("re-run exit = %d, want 0:\n%s", code, rerun.String())
	}
}
