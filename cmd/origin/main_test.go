package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestNewServerServes(t *testing.T) {
	srv, content, err := newServer(":0", 0, "drama", "hall")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()
	for _, path := range []string{"/manifest.mpd", "/master.m3u8", "/video/V1/seg-0.m4s"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(body) == 0 {
			t.Errorf("%s: status %d, %d bytes", path, resp.StatusCode, len(body))
		}
	}
	if content == nil || content.Name != "drama-show" {
		t.Errorf("content = %v", content)
	}
}

func TestNewServerErrors(t *testing.T) {
	if _, _, err := newServer(":0", 0, "bogus", "hall"); err == nil {
		t.Error("unknown content should fail")
	}
	if _, _, err := newServer(":0", 0, "drama", "bogus"); err == nil {
		t.Error("unknown manifest should fail")
	}
}
