// Command origin runs the real HTTP origin server: generated DASH/HLS
// manifests plus synthetic chunk payloads, with optional token-bucket
// shaping standing in for tc.
//
// Usage:
//
//	origin -addr :8080 [-kbps 900] [-content drama] [-manifest hsub]
//
// Then stream from it, e.g. with the httpclient package or:
//
//	curl http://localhost:8080/manifest.mpd
//	curl http://localhost:8080/master.m3u8
//	curl http://localhost:8080/video/V3/seg-0.m4s -o /dev/null
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"demuxabr/internal/media"
	"demuxabr/internal/originserver"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	kbps := flag.Float64("kbps", 0, "egress shaping in Kbps (0 = unlimited)")
	contentName := flag.String("content", "drama", "content: drama, drama-low-audio, drama-high-audio, music-show, action-movie")
	manifest := flag.String("manifest", "hsub", "HLS master variants: hsub or hall")
	flag.Parse()
	if err := run(*addr, *kbps, *contentName, *manifest); err != nil {
		fmt.Fprintln(os.Stderr, "origin:", err)
		os.Exit(1)
	}
}

// newServer builds the configured HTTP server (separated from run for
// testability).
func newServer(addr string, kbps float64, contentName, manifest string) (*http.Server, *media.Content, error) {
	var content *media.Content
	switch contentName {
	case "drama":
		content = media.DramaShow()
	case "drama-low-audio":
		content = media.DramaShowLowAudio()
	case "drama-high-audio":
		content = media.DramaShowHighAudio()
	case "music-show":
		content = media.MusicShow()
	case "action-movie":
		content = media.ActionMovie()
	default:
		return nil, nil, fmt.Errorf("unknown content %q", contentName)
	}
	opts := originserver.Options{}
	switch manifest {
	case "hsub":
		opts.Combos = media.HSub(content)
	case "hall":
		opts.Combos = media.HAll(content)
	default:
		return nil, nil, fmt.Errorf("unknown manifest %q", manifest)
	}
	if kbps > 0 {
		opts.Shaper = originserver.NewTokenBucket(media.Kbps(kbps), 32*1024)
	}
	return &http.Server{
		Addr:              addr,
		Handler:           originserver.New(content, opts).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}, content, nil
}

func run(addr string, kbps float64, contentName, manifest string) error {
	srv, content, err := newServer(addr, kbps, contentName, manifest)
	if err != nil {
		return err
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("origin serving %q on %s (shaping: %.0f Kbps)\n", content.Name, addr, kbps)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Println("origin stopped")
	return nil
}
