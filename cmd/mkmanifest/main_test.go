package main

import (
	"os"
	"path/filepath"
	"testing"

	"demuxabr/internal/manifest/dash"
	"demuxabr/internal/manifest/hls"
)

func TestMkManifestWritesEverything(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "drama"); err != nil {
		t.Fatal(err)
	}
	// The MPD parses and yields the full ladders.
	f, err := os.Open(filepath.Join(dir, "manifest.mpd"))
	if err != nil {
		t.Fatal(err)
	}
	mpd, err := dash.Parse(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	v, a, err := dash.Ladders(mpd)
	if err != nil || len(v) != 6 || len(a) != 3 {
		t.Fatalf("ladders %d/%d (%v)", len(v), len(a), err)
	}
	// Both master playlists parse with the right variant counts.
	for name, want := range map[string]int{"master_hall.m3u8": 18, "master_hsub.m3u8": 6} {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		m, err := hls.ParseMaster(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(m.Variants) != want {
			t.Errorf("%s: %d variants, want %d", name, len(m.Variants), want)
		}
	}
	// Every track has a media playlist carrying bitrate information.
	for _, id := range []string{"V1", "V6", "A1", "A3"} {
		sub := "video"
		if id[0] == 'A' {
			sub = "audio"
		}
		f, err := os.Open(filepath.Join(dir, sub, id+".m3u8"))
		if err != nil {
			t.Fatal(err)
		}
		pl, err := hls.ParseMedia(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if _, _, err := hls.TrackBitrate(pl); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

func TestMkManifestBadContent(t *testing.T) {
	if err := run(t.TempDir(), "bogus"); err == nil {
		t.Error("unknown content should fail")
	}
}
