// Command mkmanifest generates the paper's manifests for a content preset:
// the DASH MPD, the HLS master playlists H_all and H_sub, and per-track HLS
// media playlists (single-file byte-range packaging with EXT-X-BITRATE, per
// the paper's §4.1 recommendations).
//
// Usage:
//
//	mkmanifest -out dir [-content drama]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"demuxabr/internal/manifest/dash"
	"demuxabr/internal/manifest/hls"
	"demuxabr/internal/media"
)

func main() {
	out := flag.String("out", "manifests", "output directory")
	contentName := flag.String("content", "drama", "content: drama, drama-low-audio, drama-high-audio, music-show, action-movie")
	flag.Parse()
	if err := run(*out, *contentName); err != nil {
		fmt.Fprintln(os.Stderr, "mkmanifest:", err)
		os.Exit(1)
	}
}

func run(out, contentName string) error {
	var content *media.Content
	switch contentName {
	case "drama":
		content = media.DramaShow()
	case "drama-low-audio":
		content = media.DramaShowLowAudio()
	case "drama-high-audio":
		content = media.DramaShowHighAudio()
	case "music-show":
		content = media.MusicShow()
	case "action-movie":
		content = media.ActionMovie()
	default:
		return fmt.Errorf("unknown content %q", contentName)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	write := func(name string, enc func(f *os.File) error) error {
		path := filepath.Join(out, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := enc(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println("wrote", path)
		return f.Close()
	}

	if err := write("manifest.mpd", func(f *os.File) error {
		return dash.Generate(content).Encode(f)
	}); err != nil {
		return err
	}
	if err := write("master_hall.m3u8", func(f *os.File) error {
		return hls.GenerateMaster(content, media.HAll(content), nil).Encode(f)
	}); err != nil {
		return err
	}
	if err := write("master_hsub.m3u8", func(f *os.File) error {
		return hls.GenerateMaster(content, media.HSub(content), nil).Encode(f)
	}); err != nil {
		return err
	}
	for _, tr := range content.Tracks() {
		tr := tr
		name := fmt.Sprintf("%s/%s.m3u8", tr.Type, tr.ID)
		if err := write(name, func(f *os.File) error {
			return hls.GenerateMedia(content, tr, hls.SingleFile, true).Encode(f)
		}); err != nil {
			return err
		}
	}
	return nil
}
