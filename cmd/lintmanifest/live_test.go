package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"demuxabr/internal/manifest/hls"
	"demuxabr/internal/media"
)

// writeRefresh writes one refresh of a live media playlist under
// dir/refresh-<i>/<name>, the layout the CLI treats as an ordered refresh
// sequence of a single playlist.
func writeRefresh(t *testing.T, dir string, i int, name string, p *hls.MediaPlaylist) string {
	t.Helper()
	sub := filepath.Join(dir, "refresh-"+string(rune('0'+i)))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	return writeFile(t, sub, name, func(f *os.File) error { return p.Encode(f) })
}

// TestLintLiveRefreshRegression pins the CLI end of the live rules: media
// playlists sharing a base name are linted as one refresh sequence, and a
// media-sequence regression fires hls-media-sequence-regression.
func TestLintLiveRefreshRegression(t *testing.T) {
	dir := t.TempDir()
	c := media.DramaShow()
	lw := &hls.LiveWindow{Content: c, Track: c.VideoTracks[0], WindowSize: 4, PartsPerSegment: 5}
	first := writeRefresh(t, dir, 0, "v1.m3u8", lw.At(8))
	second := writeRefresh(t, dir, 1, "v1.m3u8", lw.At(5)) // regresses the window

	var out bytes.Buffer
	warnings, errs := run([]string{first, second}, false, &out, io.Discard)
	if errs != 0 {
		t.Fatalf("errs = %d\n%s", errs, out.String())
	}
	if warnings == 0 {
		t.Fatalf("regressing refresh sequence linted clean:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "hls-media-sequence-regression") {
		t.Errorf("output does not name hls-media-sequence-regression:\n%s", out.String())
	}
}

// TestLintLiveRefreshClean: a well-formed sliding window lints clean
// across refreshes, parts and all.
func TestLintLiveRefreshClean(t *testing.T) {
	dir := t.TempDir()
	c := media.DramaShow()
	lw := &hls.LiveWindow{Content: c, Track: c.AudioTracks[0], WindowSize: 4, PartsPerSegment: 5, WithBitrateTag: true}
	var paths []string
	for i, complete := range []int{3, 5, 8, 9} {
		paths = append(paths, writeRefresh(t, dir, i, "a1.m3u8", lw.At(complete)))
	}
	var out bytes.Buffer
	warnings, errs := run(paths, false, &out, io.Discard)
	if errs != 0 {
		t.Fatalf("errs = %d\n%s", errs, out.String())
	}
	if warnings != 0 {
		t.Errorf("clean live refreshes produced warnings:\n%s", out.String())
	}
}

// TestLintLivePartExceedsPartInf pins the per-file LL-HLS part rule
// through the CLI: an EXT-X-PART longer than the declared PART-TARGET
// fires hls-part-exceeds-part-inf.
func TestLintLivePartExceedsPartInf(t *testing.T) {
	dir := t.TempDir()
	p := &hls.MediaPlaylist{
		Version:        6,
		TargetDuration: 4 * time.Second,
		PartTarget:     time.Second,
		Segments: []hls.Segment{{
			Duration: 4 * time.Second,
			URI:      "video/V1/seg-0.m4s",
			Parts: []hls.Part{
				{Duration: time.Second, URI: "video/V1/seg-0.part-0.m4s", Independent: true},
				{Duration: 3 * time.Second, URI: "video/V1/seg-0.part-1.m4s"},
			},
		}},
	}
	bad := writeFile(t, dir, "v1.m3u8", func(f *os.File) error { return p.Encode(f) })
	var out bytes.Buffer
	warnings, errs := run([]string{bad}, false, &out, io.Discard)
	if errs != 0 {
		t.Fatalf("errs = %d\n%s", errs, out.String())
	}
	if warnings == 0 || !strings.Contains(out.String(), "hls-part-exceeds-part-inf") {
		t.Errorf("oversized part not flagged through the CLI:\n%s", out.String())
	}
}
