package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	dashpkg "demuxabr/internal/manifest/dash"
	"demuxabr/internal/manifest/hls"
	"demuxabr/internal/media"
)

func writeFile(t *testing.T, dir, name string, enc func(f *os.File) error) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLintFiles(t *testing.T) {
	dir := t.TempDir()
	c := media.DramaShow()
	hall := writeFile(t, dir, "hall.m3u8", func(f *os.File) error {
		return hls.GenerateMaster(c, media.HAll(c), nil).Encode(f)
	})
	hsub := writeFile(t, dir, "hsub.m3u8", func(f *os.File) error {
		return hls.GenerateMaster(c, media.HSub(c), nil).Encode(f)
	})
	badMedia := writeFile(t, dir, "v1.m3u8", func(f *os.File) error {
		return hls.GenerateMedia(c, c.TrackByID("V1"), hls.SegmentFiles, false).Encode(f)
	})
	goodMedia := writeFile(t, dir, "a1.m3u8", func(f *os.File) error {
		return hls.GenerateMedia(c, c.TrackByID("A1"), hls.SingleFile, false).Encode(f)
	})

	warnings, errs := run([]string{hall, badMedia}, false, io.Discard, io.Discard)
	if errs != 0 {
		t.Fatalf("errs = %d", errs)
	}
	if warnings < 2 {
		t.Errorf("warnings = %d, want >= 2 (H_all + unrecoverable media)", warnings)
	}
	warnings, errs = run([]string{hsub, goodMedia}, false, io.Discard, io.Discard)
	if errs != 0 {
		t.Fatalf("errs = %d", errs)
	}
	if warnings != 0 {
		t.Errorf("curated manifests should lint clean, got %d warnings", warnings)
	}
}

func TestLintMPD(t *testing.T) {
	dir := t.TempDir()
	mpd := writeFile(t, dir, "manifest.mpd", func(f *os.File) error {
		return dashGenerate(f)
	})
	warnings, errs := run([]string{mpd}, false, io.Discard, io.Discard)
	if errs != 0 {
		t.Fatalf("errs = %d", errs)
	}
	if warnings != 0 {
		t.Errorf("MPD findings are informational; warnings = %d", warnings)
	}
}

func TestLintMPDMissingBandwidth(t *testing.T) {
	dir := t.TempDir()
	mpd := writeFile(t, dir, "manifest.mpd", func(f *os.File) error {
		m := dashpkg.Generate(media.DramaShow())
		m.Periods[0].AdaptationSets[0].Representations[0].Bandwidth = 0
		return m.Encode(f)
	})
	var out bytes.Buffer
	warnings, errs := run([]string{mpd}, false, &out, io.Discard)
	if errs != 0 {
		t.Fatalf("errs = %d", errs)
	}
	if warnings == 0 || !strings.Contains(out.String(), "dash-missing-bandwidth") {
		t.Errorf("missing @bandwidth not flagged; warnings=%d output:\n%s", warnings, out.String())
	}
}

// TestLintContinuesPastErrors is the regression test for the early-return
// bug: a parse failure must not skip the remaining files.
func TestLintContinuesPastErrors(t *testing.T) {
	dir := t.TempDir()
	c := media.DramaShow()
	broken := filepath.Join(dir, "broken.m3u8")
	os.WriteFile(broken, []byte("#EXT-X-STREAM-INF:BANDWIDTH=1"), 0o644)
	badMedia := writeFile(t, dir, "v1.m3u8", func(f *os.File) error {
		return hls.GenerateMedia(c, c.TrackByID("V1"), hls.SegmentFiles, false).Encode(f)
	})
	var out, errOut bytes.Buffer
	warnings, errs := run([]string{broken, badMedia}, false, &out, &errOut)
	if errs != 1 {
		t.Errorf("errs = %d, want 1", errs)
	}
	if warnings == 0 {
		t.Errorf("file after the broken one was not linted; output:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "broken.m3u8") {
		t.Errorf("error output missing broken file: %q", errOut.String())
	}
}

// TestLintBandwidthCrossCheck feeds a master whose BANDWIDTH understates
// the peaks recoverable from its media playlists.
func TestLintBandwidthCrossCheck(t *testing.T) {
	dir := t.TempDir()
	c := media.DramaShow()
	combos := media.HSub(c)
	lying := writeFile(t, dir, "master.m3u8", func(f *os.File) error {
		m := hls.GenerateMaster(c, combos, nil)
		for i := range m.Variants {
			m.Variants[i].Bandwidth /= 2
		}
		return m.Encode(f)
	})
	files := []string{lying}
	for _, tr := range []*media.Track{combos[0].Video, combos[0].Audio} {
		files = append(files, writeFile(t, dir, tr.ID+".m3u8", func(f *os.File) error {
			return hls.GenerateMedia(c, tr, hls.SingleFile, false).Encode(f)
		}))
	}
	var out bytes.Buffer
	warnings, errs := run(files, false, &out, io.Discard)
	if errs != 0 {
		t.Fatalf("errs = %d", errs)
	}
	if warnings == 0 || !strings.Contains(out.String(), "hls-bandwidth-below-track-sum") {
		t.Errorf("understated BANDWIDTH not flagged; output:\n%s", out.String())
	}
}

// TestLintDirectory expands a directory argument into the manifest files
// beneath it — the mkmanifest output layout (nested video/ and audio/
// subdirectories) must lint without "is a directory" errors.
func TestLintDirectory(t *testing.T) {
	dir := t.TempDir()
	c := media.DramaShow()
	if err := os.MkdirAll(filepath.Join(dir, "video"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, dir, "hsub.m3u8", func(f *os.File) error {
		return hls.GenerateMaster(c, media.HSub(c), nil).Encode(f)
	})
	writeFile(t, filepath.Join(dir, "video"), "V1.m3u8", func(f *os.File) error {
		return hls.GenerateMedia(c, c.TrackByID("V1"), hls.SingleFile, false).Encode(f)
	})
	writeFile(t, dir, "notes.txt", func(f *os.File) error { return nil })
	var out bytes.Buffer
	warnings, errs := run([]string{dir}, false, &out, io.Discard)
	if errs != 0 {
		t.Fatalf("errs = %d, output:\n%s", errs, out.String())
	}
	if warnings != 0 {
		t.Errorf("warnings = %d, output:\n%s", warnings, out.String())
	}
	for _, want := range []string{"hsub.m3u8", "V1.m3u8"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("directory expansion missed %s; output:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "notes.txt") {
		t.Errorf("non-manifest file should be skipped; output:\n%s", out.String())
	}
	// A directory with nothing lintable is still a per-path error.
	if _, errs := run([]string{t.TempDir()}, false, io.Discard, io.Discard); errs != 1 {
		t.Error("empty directory should error")
	}
}

func TestLintJSON(t *testing.T) {
	dir := t.TempDir()
	c := media.DramaShow()
	hall := writeFile(t, dir, "hall.m3u8", func(f *os.File) error {
		return hls.GenerateMaster(c, media.HAll(c), nil).Encode(f)
	})
	broken := filepath.Join(dir, "broken.m3u8")
	os.WriteFile(broken, []byte("#EXT-X-STREAM-INF:BANDWIDTH=1"), 0o644)
	var out bytes.Buffer
	warnings, errs := run([]string{hall, broken}, true, &out, io.Discard)
	if warnings == 0 || errs != 1 {
		t.Fatalf("warnings = %d, errs = %d", warnings, errs)
	}
	var doc struct {
		Findings []jsonFinding `json:"findings"`
		Errors   []jsonError   `json:"errors"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(doc.Findings) == 0 || doc.Findings[0].Rule == "" || doc.Findings[0].Severity == "" {
		t.Errorf("findings = %+v", doc.Findings)
	}
	if len(doc.Errors) != 1 || !strings.HasSuffix(doc.Errors[0].File, "broken.m3u8") {
		t.Errorf("errors = %+v", doc.Errors)
	}
}

func TestLintErrors(t *testing.T) {
	if _, errs := run([]string{"/nonexistent.mpd"}, false, io.Discard, io.Discard); errs != 1 {
		t.Error("missing file should error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "x.txt")
	os.WriteFile(bad, []byte("?"), 0o644)
	if _, errs := run([]string{bad}, false, io.Discard, io.Discard); errs != 1 {
		t.Error("unknown extension should error")
	}
	garbled := filepath.Join(dir, "x.m3u8")
	os.WriteFile(garbled, []byte("#EXT-X-STREAM-INF:BANDWIDTH=1"), 0o644)
	if _, errs := run([]string{garbled}, false, io.Discard, io.Discard); errs != 1 {
		t.Error("unparseable playlist should error")
	}
}

func dashGenerate(f *os.File) error {
	return dashpkg.Generate(media.DramaShow()).Encode(f)
}

// TestLintMasterAlignment lints a master alongside its video and audio
// media playlists whose segment boundaries drift apart — the wiring that
// pairs each variant with its audio rendition by base name.
func TestLintMasterAlignment(t *testing.T) {
	dir := t.TempDir()
	const s = time.Second
	mediaPlaylist := func(durs ...time.Duration) *hls.MediaPlaylist {
		p := &hls.MediaPlaylist{TargetDuration: 4 * s, EndList: true}
		var off int64
		for _, d := range durs {
			p.Segments = append(p.Segments, hls.Segment{
				Duration: d, URI: "data.m4s", ByteRangeLength: 1000, ByteRangeOffset: off,
			})
			off += 1000
		}
		return p
	}
	master := writeFile(t, dir, "master.m3u8", func(f *os.File) error {
		m := &hls.MasterPlaylist{
			Renditions: []hls.Rendition{{
				Type: "AUDIO", GroupID: "aud", Name: "A1", URI: "audio/A1.m3u8", Default: true,
			}},
			Variants: []hls.Variant{{
				Bandwidth: 10_000_000, AverageBandwidth: 8_000_000,
				AudioGroup: "aud", URI: "video/V1.m3u8",
			}},
		}
		return m.Encode(f)
	})
	video := writeFile(t, dir, "V1.m3u8", func(f *os.File) error {
		return mediaPlaylist(4*s, 4*s, 4*s, 2*s).Encode(f)
	})
	audio := writeFile(t, dir, "A1.m3u8", func(f *os.File) error {
		// Same total length, but every boundary sits 1 s early.
		return mediaPlaylist(3*s, 4*s, 4*s, 3*s).Encode(f)
	})
	var out bytes.Buffer
	warnings, errs := run([]string{master, video, audio}, false, &out, io.Discard)
	if errs != 0 {
		t.Fatalf("errs = %d, output:\n%s", errs, out.String())
	}
	if warnings == 0 || !strings.Contains(out.String(), "hls-av-misaligned-segments") {
		t.Errorf("misaligned pair not flagged; warnings=%d output:\n%s", warnings, out.String())
	}
	// Realigned audio lints clean end to end.
	aligned := writeFile(t, dir, "A1.m3u8", func(f *os.File) error {
		return mediaPlaylist(4*s, 4*s, 4*s, 2*s).Encode(f)
	})
	out.Reset()
	warnings, errs = run([]string{master, video, aligned}, false, &out, io.Discard)
	if warnings != 0 || errs != 0 {
		t.Errorf("aligned pair should lint clean; warnings=%d errs=%d output:\n%s", warnings, errs, out.String())
	}
}
