package main

import (
	"os"
	"path/filepath"
	"testing"

	dashpkg "demuxabr/internal/manifest/dash"
	"demuxabr/internal/manifest/hls"
	"demuxabr/internal/media"
)

func writeFile(t *testing.T, dir, name string, enc func(f *os.File) error) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLintFiles(t *testing.T) {
	dir := t.TempDir()
	c := media.DramaShow()
	hall := writeFile(t, dir, "hall.m3u8", func(f *os.File) error {
		return hls.GenerateMaster(c, media.HAll(c), nil).Encode(f)
	})
	hsub := writeFile(t, dir, "hsub.m3u8", func(f *os.File) error {
		return hls.GenerateMaster(c, media.HSub(c), nil).Encode(f)
	})
	badMedia := writeFile(t, dir, "v1.m3u8", func(f *os.File) error {
		return hls.GenerateMedia(c, c.TrackByID("V1"), hls.SegmentFiles, false).Encode(f)
	})
	goodMedia := writeFile(t, dir, "a1.m3u8", func(f *os.File) error {
		return hls.GenerateMedia(c, c.TrackByID("A1"), hls.SingleFile, false).Encode(f)
	})

	warnings, err := run([]string{hall, badMedia}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if warnings < 2 {
		t.Errorf("warnings = %d, want >= 2 (H_all + unrecoverable media)", warnings)
	}
	warnings, err = run([]string{hsub, goodMedia}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if warnings != 0 {
		t.Errorf("curated manifests should lint clean, got %d warnings", warnings)
	}
}

func TestLintMPD(t *testing.T) {
	dir := t.TempDir()
	mpd := writeFile(t, dir, "manifest.mpd", func(f *os.File) error {
		return dashGenerate(f)
	})
	warnings, err := run([]string{mpd}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	if warnings != 0 {
		t.Errorf("MPD findings are informational; warnings = %d", warnings)
	}
}

func TestLintErrors(t *testing.T) {
	if _, err := run([]string{"/nonexistent.mpd"}, os.Stdout); err == nil {
		t.Error("missing file should error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "x.txt")
	os.WriteFile(bad, []byte("?"), 0o644)
	if _, err := run([]string{bad}, os.Stdout); err == nil {
		t.Error("unknown extension should error")
	}
	garbled := filepath.Join(dir, "x.m3u8")
	os.WriteFile(garbled, []byte("#EXT-X-STREAM-INF:BANDWIDTH=1"), 0o644)
	if _, err := run([]string{garbled}, os.Stdout); err == nil {
		t.Error("unparseable playlist should error")
	}
}

func dashGenerate(f *os.File) error {
	return dashpkg.Generate(media.DramaShow()).Encode(f)
}
