// Command lintmanifest checks DASH MPDs and HLS playlists against the
// paper's §4.1 server-side best practices for demuxed audio/video content.
//
// Usage:
//
//	lintmanifest manifest.mpd master.m3u8 audio/A1.m3u8 ...
//
// File type is detected from the extension (.mpd vs .m3u8) and, for m3u8,
// from the content (master vs media playlist). Exit status 1 when any
// warning fires, 2 on usage or parse errors.
package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"demuxabr/internal/manifest/dash"
	"demuxabr/internal/manifest/hls"
	"demuxabr/internal/manifest/lint"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lintmanifest <manifest files...>")
		os.Exit(2)
	}
	warnings, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintmanifest:", err)
		os.Exit(2)
	}
	if warnings > 0 {
		os.Exit(1)
	}
}

// run lints each file, printing findings; it returns the warning count.
func run(paths []string, out *os.File) (int, error) {
	warnings := 0
	for _, path := range paths {
		findings, err := lintFile(path)
		if err != nil {
			return warnings, fmt.Errorf("%s: %w", path, err)
		}
		if len(findings) == 0 {
			fmt.Fprintf(out, "%s: ok\n", path)
			continue
		}
		for _, f := range findings {
			fmt.Fprintf(out, "%s: %s\n", path, f)
			if f.Severity == lint.Warning {
				warnings++
			}
		}
	}
	return warnings, nil
}

func lintFile(path string) ([]lint.Finding, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	switch filepath.Ext(path) {
	case ".mpd":
		m, err := dash.Parse(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return lint.MPD(m), nil
	case ".m3u8":
		if isMaster(data) {
			m, err := hls.ParseMaster(bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			return lint.Master(m), nil
		}
		p, err := hls.ParseMedia(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return lint.MediaPlaylist(filepath.Base(path), p), nil
	default:
		return nil, fmt.Errorf("unknown manifest type (want .mpd or .m3u8)")
	}
}

// isMaster distinguishes master from media playlists by their defining tags.
func isMaster(data []byte) bool {
	s := string(data)
	return strings.Contains(s, "#EXT-X-STREAM-INF") || strings.Contains(s, "#EXT-X-MEDIA:")
}
