// Command lintmanifest checks DASH MPDs and HLS playlists against the
// paper's §4.1 server-side best practices for demuxed audio/video content.
//
// Usage:
//
//	lintmanifest [-json] manifest.mpd master.m3u8 audio/A1.m3u8 ...
//
// File type is detected from the extension (.mpd vs .m3u8) and, for m3u8,
// from the content (master vs media playlist). A directory argument is
// expanded to every .mpd/.m3u8 under it, so `lintmanifest manifests/`
// lints a whole mkmanifest output tree. When media playlists are passed
// alongside a master, their recovered peak bitrates cross-check the
// master's declared BANDWIDTH values (matching URIs by base name). Media
// playlists sharing a base name (refresh-0/a.m3u8 refresh-1/a.m3u8 ...)
// are treated as ordered refreshes of one live playlist and cross-checked
// for sliding-window invariants (media-sequence monotonicity, no
// resurrected segments). Every file is linted even when earlier files
// fail to parse. Exit status 1 when any warning fires, 2 on usage or
// parse errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"path/filepath"
	"strings"

	"demuxabr/internal/manifest/dash"
	"demuxabr/internal/manifest/hls"
	"demuxabr/internal/manifest/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings and errors as JSON")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: lintmanifest [-json] <manifest files...>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	warnings, errs := run(flag.Args(), *jsonOut, os.Stdout, os.Stderr)
	switch {
	case errs > 0:
		os.Exit(2)
	case warnings > 0:
		os.Exit(1)
	}
}

// parsed is one input file after type detection and parsing.
type parsed struct {
	path   string
	master *hls.MasterPlaylist
	media  *hls.MediaPlaylist
	mpd    *dash.MPD
	err    error
}

// jsonFinding is the machine-readable finding schema (-json), shared in
// shape with cmd/vetabr.
type jsonFinding struct {
	File     string `json:"file"`
	Severity string `json:"severity"`
	Rule     string `json:"rule"`
	Message  string `json:"message"`
}

// jsonError is one unparseable input in the -json document.
type jsonError struct {
	File  string `json:"file"`
	Error string `json:"error"`
}

// run lints every file — parse failures are reported per file, never
// aborting the rest — and renders text or JSON. It returns the warning
// and error counts.
func run(paths []string, jsonOut bool, out, errOut io.Writer) (warnings, errs int) {
	var inputs []parsed
	peaks := lint.TrackPeaks{}
	medias := map[string]*hls.MediaPlaylist{}
	refreshes := map[string][]*hls.MediaPlaylist{}
	var refreshOrder []string
	for _, p := range expandDirs(paths) {
		inputs = append(inputs, parseFile(p))
		i := len(inputs) - 1
		// Media playlists feed the master BANDWIDTH cross-check and the
		// A/V segment-alignment check, keyed by base name to match however
		// the master spells the URI.
		if mp := inputs[i].media; mp != nil {
			base := filepath.Base(p)
			medias[base] = mp
			if peak, _, err := hls.TrackBitrate(mp); err == nil {
				peaks[base] = peak
			}
			// Repeated base names are ordered refreshes of one live
			// playlist (lintmanifest refresh-0/a.m3u8 refresh-1/a.m3u8 ...),
			// cross-checked for sliding-window invariants after the
			// per-file pass.
			if len(refreshes[base]) == 0 {
				refreshOrder = append(refreshOrder, base)
			}
			refreshes[base] = append(refreshes[base], mp)
		}
	}
	doc := struct {
		Findings []jsonFinding `json:"findings"`
		Errors   []jsonError   `json:"errors,omitempty"`
	}{Findings: []jsonFinding{}}
	for _, in := range inputs {
		if in.err != nil {
			errs++
			if jsonOut {
				doc.Errors = append(doc.Errors, jsonError{File: in.path, Error: in.err.Error()})
			} else {
				fmt.Fprintf(errOut, "lintmanifest: %s: %v\n", in.path, in.err)
			}
			continue
		}
		findings := lintParsed(in, peaks, medias)
		for _, f := range findings {
			if f.Severity == lint.Warning {
				warnings++
			}
			if jsonOut {
				doc.Findings = append(doc.Findings, jsonFinding{
					File:     in.path,
					Severity: f.Severity.String(),
					Rule:     f.Rule,
					Message:  f.Message,
				})
			} else {
				fmt.Fprintf(out, "%s: %s\n", in.path, f)
			}
		}
		if len(findings) == 0 && !jsonOut {
			fmt.Fprintf(out, "%s: ok\n", in.path)
		}
	}
	for _, base := range refreshOrder {
		seq := refreshes[base]
		if len(seq) < 2 {
			continue
		}
		for _, f := range lint.RefreshSequence(base, seq) {
			if f.Severity == lint.Warning {
				warnings++
			}
			if jsonOut {
				doc.Findings = append(doc.Findings, jsonFinding{
					File:     base,
					Severity: f.Severity.String(),
					Rule:     f.Rule,
					Message:  f.Message,
				})
			} else {
				fmt.Fprintf(out, "%s: %s\n", base, f)
			}
		}
	}
	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(errOut, "lintmanifest:", err)
			errs++
		}
	}
	return warnings, errs
}

// lintParsed applies every applicable rule set to one parsed file.
func lintParsed(in parsed, peaks lint.TrackPeaks, medias map[string]*hls.MediaPlaylist) []lint.Finding {
	switch {
	case in.mpd != nil:
		return append(lint.MPD(in.mpd), lint.MPDTimeline(in.mpd)...)
	case in.master != nil:
		findings := lint.Master(in.master)
		findings = append(findings, lint.MasterBandwidth(in.master, resolvePeaks(in.master, peaks))...)
		return append(findings, masterAlignment(in.master, medias)...)
	case in.media != nil:
		name := filepath.Base(in.path)
		findings := append(lint.MediaPlaylist(name, in.media), lint.MediaTimeline(name, in.media)...)
		return append(findings, lint.LiveMedia(name, in.media)...)
	}
	return nil
}

// masterAlignment cross-checks segment boundaries for every distinct
// video/audio playlist pair a master's variants reference, for the pairs
// whose media playlists were passed in the same invocation.
func masterAlignment(m *hls.MasterPlaylist, medias map[string]*hls.MediaPlaylist) []lint.Finding {
	renditionURI := map[string]string{}
	for _, r := range m.Renditions {
		if r.Type == "AUDIO" {
			renditionURI[r.GroupID] = r.URI
		}
	}
	seen := map[string]bool{}
	var out []lint.Finding
	for _, v := range m.Variants {
		audioURI := renditionURI[v.AudioGroup]
		if audioURI == "" {
			continue
		}
		videoName, audioName := path.Base(v.URI), path.Base(audioURI)
		key := videoName + "\x00" + audioName
		vp, ap := medias[videoName], medias[audioName]
		if vp == nil || ap == nil || seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, lint.SegmentAlignment(videoName, audioName, vp, ap)...)
	}
	return out
}

// resolvePeaks rekeys base-name peaks onto the URIs the master uses.
func resolvePeaks(m *hls.MasterPlaylist, byBase lint.TrackPeaks) lint.TrackPeaks {
	out := lint.TrackPeaks{}
	add := func(uri string) {
		if peak, ok := byBase[path.Base(uri)]; ok {
			out[uri] = peak
		}
	}
	for _, r := range m.Renditions {
		add(r.URI)
	}
	for _, v := range m.Variants {
		add(v.URI)
	}
	return out
}

// expandDirs replaces each directory argument with the manifest files
// (.mpd, .m3u8) beneath it, in lexical walk order so output stays
// deterministic. Non-directories pass through unchanged; an unwalkable
// directory passes through too and is reported as a per-file error later.
func expandDirs(paths []string) []string {
	var out []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil || !info.IsDir() {
			out = append(out, p)
			continue
		}
		expanded := false
		walkErr := filepath.WalkDir(p, func(sub string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if ext := filepath.Ext(sub); !d.IsDir() && (ext == ".mpd" || ext == ".m3u8") {
				out = append(out, sub)
				expanded = true
			}
			return nil
		})
		if walkErr != nil || !expanded {
			out = append(out, p)
		}
	}
	return out
}

// parseFile reads and type-detects one manifest.
func parseFile(p string) parsed {
	in := parsed{path: p}
	data, err := os.ReadFile(p)
	if err != nil {
		in.err = err
		return in
	}
	switch filepath.Ext(p) {
	case ".mpd":
		in.mpd, in.err = dash.Parse(bytes.NewReader(data))
	case ".m3u8":
		if isMaster(data) {
			in.master, in.err = hls.ParseMaster(bytes.NewReader(data))
		} else {
			in.media, in.err = hls.ParseMedia(bytes.NewReader(data))
		}
	default:
		in.err = fmt.Errorf("unknown manifest type (want .mpd or .m3u8)")
	}
	return in
}

// isMaster distinguishes master from media playlists by their defining tags.
func isMaster(data []byte) bool {
	s := string(data)
	return strings.Contains(s, "#EXT-X-STREAM-INF") || strings.Contains(s, "#EXT-X-MEDIA:")
}
