// Command paperfigs regenerates every table and figure of the paper "ABR
// Streaming with Separate Audio and Video Tracks" (CoNEXT 2019) from the
// library's simulator, printing the paper's reported values next to the
// measured ones.
//
// Usage:
//
//	paperfigs [-only id] [-csv dir] [-parallel n]
//
// where id is one of: table1 table2 table3 fig2a fig2b fig3 fig4a fig4b
// fig5 compare ablate cdn sweep live ... fleet fleetscale. With -csv, figure
// timelines are written as CSV
// files into the directory for external plotting. -parallel sets the
// worker count for the fleet experiments (sweeps, comparisons, the CDN
// sweep); the default 0 means GOMAXPROCS, and -parallel 1 runs the exact
// serial path. Output is byte-identical at any worker count (see
// docs/PERFORMANCE.md). fleetscale runs one large sharded fleet of
// -fleet-n sessions (16-session contention cells, streaming sketch
// aggregation); e.g. `paperfigs -only fleetscale -fleet-n 100000`.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"demuxabr/internal/cdnsim"
	"demuxabr/internal/experiments"
	"demuxabr/internal/media"
	"demuxabr/internal/plot"
	"demuxabr/internal/timeline"
)

// parallelN is the worker count for fleet experiments; 0 = GOMAXPROCS.
var parallelN int

// fleetN is the session count for the fleetscale experiment.
var fleetN int

// timelineDir, when set, writes flight-recorder exports (currently the fig3
// walkthrough) into the directory.
var timelineDir string

func main() {
	// realMain carries the deferred profile flushes; os.Exit here would
	// skip them, so the exit code travels back as a return value.
	os.Exit(realMain())
}

func realMain() int {
	only := flag.String("only", "", "run a single experiment (table1..fig5, compare, ablate, cdn, transport, live, ladder, fleetscale)")
	csvDir := flag.String("csv", "", "write figure timelines as CSV into this directory")
	flag.IntVar(&parallelN, "parallel", 0, "fleet worker count (0 = GOMAXPROCS, 1 = serial)")
	flag.IntVar(&fleetN, "fleet-n", 1000, "fleet size for -only fleetscale (cells of 16 sessions, streaming aggregation)")
	flag.StringVar(&timelineDir, "timeline", "", "write flight-recorder timelines (JSONL + Chrome trace) into this directory")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "paperfigs:", err)
			f.Close()
			return 1
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperfigs:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "paperfigs:", err)
			}
		}()
	}

	runs := []struct {
		id string
		fn func(csvDir string) error
	}{
		{"table1", table1}, {"table2", table2}, {"table3", table3},
		{"fig2a", fig2a}, {"fig2b", fig2b}, {"fig3", fig3},
		{"fig4a", fig4a}, {"fig4b", fig4b}, {"fig5", fig5},
		{"compare", compare}, {"ablate", ablate}, {"cdn", cdn},
		{"sweep", sweep}, {"repair", repair}, {"splitpath", splitpath},
		{"curation", curation}, {"syncwindow", syncwindow},
		{"chunkdur", chunkdur}, {"crosstraffic", crosstraffic}, {"muxed", muxed},
		{"verify", verify}, {"language", language},
		{"seeds", seeds}, {"startup", startup}, {"pareto", pareto},
		{"resilience", resilience}, {"transport", transport},
		{"live", live}, {"ladder", ladder},
		{"fleet", fleet}, {"fleetscale", fleetscale},
	}
	ran := 0
	for _, r := range runs {
		if *only != "" && *only != r.id {
			continue
		}
		fmt.Printf("\n===== %s =====\n", r.id)
		if err := r.fn(*csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.id, err)
			return 1
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		return 2
	}
	return 0
}

func table1(string) error {
	experiments.PrintTable1(os.Stdout, media.DramaShow())
	return nil
}

func table2(string) error {
	experiments.PrintComboTable(os.Stdout, "Table 2: all 18 combinations (H_all)", media.HAll(media.DramaShow()))
	return nil
}

func table3(string) error {
	experiments.PrintComboTable(os.Stdout, "Table 3: curated subset (H_sub)", media.HSub(media.DramaShow()))
	return nil
}

func writeTimeline(dir, name string, tl []experiments.TimelinePoint) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"t_s", "video", "audio", "video_buffer_s", "audio_buffer_s", "estimate_kbps", "stalled"}); err != nil {
		return err
	}
	for _, p := range tl {
		rec := []string{
			fmt.Sprintf("%.3f", p.At.Seconds()),
			p.Video, p.Audio,
			fmt.Sprintf("%.3f", p.VideoBuffer.Seconds()),
			fmt.Sprintf("%.3f", p.AudioBuffer.Seconds()),
			fmt.Sprintf("%.1f", p.Estimate.Kbps()),
			fmt.Sprintf("%v", p.Stalled),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

func fig2a(string) error {
	r, err := experiments.Fig2a()
	if err != nil {
		return err
	}
	fmt.Println("ExoPlayer DASH, low-rate audio ladder (B), fixed 900 Kbps")
	fmt.Printf("  predetermined combos: %v\n", r.Predetermined)
	fmt.Printf("  paper:    selects V3+B2; V3+B3 (601 Kbps) fits but is excluded\n")
	fmt.Printf("  measured: selects %s; %s fits=%v, predetermined=%v\n",
		r.Dominant, r.BetterExcluded, r.BetterFits, r.BetterPredetermined)
	return nil
}

func fig2b(string) error {
	r, err := experiments.Fig2b()
	if err != nil {
		return err
	}
	fmt.Println("ExoPlayer DASH, high-rate audio ladder (C), fixed 900 Kbps")
	fmt.Printf("  paper:    selects V2+C2 (low video + high audio); V3+C1 (669 Kbps) fits but is excluded\n")
	fmt.Printf("  measured: selects %s; %s fits=%v, predetermined=%v\n",
		r.Dominant, r.BetterExcluded, r.BetterFits, r.BetterPredetermined)
	return nil
}

// chartTimeline renders a figure's buffer/estimate series as ASCII charts.
func chartTimeline(tl []experiments.TimelinePoint, withEstimate bool) {
	if len(tl) == 0 {
		return
	}
	xMax := tl[len(tl)-1].At.Seconds()
	vbuf := make([]float64, len(tl))
	abuf := make([]float64, len(tl))
	var est []float64
	for i, p := range tl {
		vbuf[i] = p.VideoBuffer.Seconds()
		abuf[i] = p.AudioBuffer.Seconds()
		if p.Estimate > 0 {
			est = append(est, p.Estimate.Kbps())
		}
	}
	_ = plot.Chart(os.Stdout, "  buffer levels (s)", 72, 8, xMax,
		plot.Series{Name: "video", Values: vbuf},
		plot.Series{Name: "audio", Values: abuf})
	if withEstimate && len(est) > 1 {
		_ = plot.Chart(os.Stdout, "  bandwidth estimate (Kbps)", 72, 6, xMax,
			plot.Series{Name: "estimate", Values: est})
	}
}

func fig3(csvDir string) error {
	var rec *timeline.Recorder
	if timelineDir != "" {
		rec = timeline.New(0, "fig3 exoplayer-hls")
	}
	r, err := experiments.Fig3Traced(rec)
	if err != nil {
		return err
	}
	if rec != nil {
		if err := timeline.WriteFiles(timelineDir, "fig3", []*timeline.Recorder{rec}); err != nil {
			return err
		}
	}
	m := r.Outcome.Metrics
	fmt.Println("ExoPlayer HLS, H_sub with A3 listed first, time-varying avg 600 Kbps")
	fmt.Printf("  paper:    audio pinned at A3, 5 stalls, 36.9 s rebuffering, off-manifest combos selected\n")
	fmt.Printf("  measured: audio pinned at %s (switches=%d), %d stalls, %.1f s rebuffering, %d off-manifest chunks\n",
		r.FixedAudio, r.AudioTrackChanges, m.StallCount, m.RebufferTime.Seconds(), r.OffManifestChunks)
	lf, err := experiments.ExoHLSLowFirst()
	if err != nil {
		return err
	}
	fmt.Printf("  companion (A1 first, 5 Mbps): audio pinned at %s, avg audio %.0f Kbps despite ample bandwidth\n",
		lf.FixedAudio, lf.Outcome.Metrics.AvgAudioBitrate.Kbps())
	chartTimeline(r.Timeline, false)
	return writeTimeline(csvDir, "fig3.csv", r.Timeline)
}

func fig4a(csvDir string) error {
	r, err := experiments.Fig4a()
	if err != nil {
		return err
	}
	fmt.Println("Shaka HLS, H_all, fixed 1 Mbps")
	fmt.Printf("  paper:    estimate stuck at the 500 Kbps default (no interval reaches 16 KB); selects V2+A2\n")
	fmt.Printf("  measured: estimate %v -> %v, valid samples=%v; selects %s\n",
		r.EstimateStart, r.EstimateEnd, r.AnyValidSample, r.Dominant)
	chartTimeline(r.Timeline, true)
	return writeTimeline(csvDir, "fig4a.csv", r.Timeline)
}

func fig4b(csvDir string) error {
	r, err := experiments.Fig4b()
	if err != nil {
		return err
	}
	m := r.Outcome.Metrics
	fmt.Println("Shaka HLS, H_all, bimodal avg 600 Kbps")
	fmt.Printf("  paper:    under- then over-estimates; V2+A2 then V3+A3; ~39 s rebuffering\n")
	fmt.Printf("  measured: estimate %v -> %v; combos %v; %.1f s rebuffering\n",
		r.EstimateStart, r.EstimateEnd, r.Outcome.Result.CombosSelected(), m.RebufferTime.Seconds())
	chartTimeline(r.Timeline, true)
	return writeTimeline(csvDir, "fig4b.csv", r.Timeline)
}

func fig5(csvDir string) error {
	r, err := experiments.Fig5()
	if err != nil {
		return err
	}
	fmt.Println("dash.js, DASH, fixed 700 Kbps, independent per-type DYNAMIC")
	fmt.Printf("  paper:    fluctuates across combos incl. undesirable V2+A3; unbalanced A/V buffers\n")
	fmt.Printf("  measured: combos %v; undesirable %v; max buffer imbalance %.1f s\n",
		r.Combos, r.UndesirablePairings, r.MaxImbalance.Seconds())
	chartTimeline(r.Timeline, false)
	return writeTimeline(csvDir, "fig5.csv", r.Timeline)
}

func compare(string) error {
	for _, s := range experiments.Scenarios() {
		out, err := experiments.CompareParallel(s, parallelN)
		if err != nil {
			return err
		}
		experiments.PrintOutcomes(os.Stdout, "Scenario "+s.Name, out)
		fmt.Println()
	}
	return nil
}

func ablate(string) error {
	for _, s := range experiments.Scenarios() {
		out, err := experiments.AblateParallel(s, parallelN)
		if err != nil {
			return err
		}
		var list []experiments.Outcome
		for _, v := range experiments.AblationVariants(s.Content) {
			o := out[v.Name]
			o.Model = v.Name
			list = append(list, o)
		}
		experiments.PrintOutcomes(os.Stdout, "Best-practice ablations, scenario "+s.Name, list)
		fmt.Println()
	}
	return nil
}

func sweep(string) error {
	points, err := experiments.BandwidthSweepParallel(experiments.DefaultSweepKbps(), parallelN)
	if err != nil {
		return err
	}
	experiments.PrintSweep(os.Stdout, points)
	return nil
}

func repair(string) error {
	r, err := experiments.Fig3Repaired()
	if err != nil {
		return err
	}
	fmt.Println("§4.1 repair: read second-level media playlists before adapting (Fig 3 conditions)")
	fmt.Printf("  recovered per-track bitrates within %.1f%% of truth\n", r.RecoveredBitrateErr*100)
	fmt.Printf("  broken:   audio fixed (%d switches), %d stalls, %.1f s rebuffer, %d off-manifest chunks\n",
		r.Broken.Metrics.AudioSwitches, r.Broken.Metrics.StallCount,
		r.Broken.Metrics.RebufferTime.Seconds(), r.Broken.Metrics.OffManifest)
	fmt.Printf("  repaired: audio adapts (%d switches), %d stalls, %.1f s rebuffer, %d off-manifest chunks\n",
		r.Repaired.Metrics.AudioSwitches, r.Repaired.Metrics.StallCount,
		r.Repaired.Metrics.RebufferTime.Seconds(), r.Repaired.Metrics.OffManifest)
	return nil
}

func splitpath(string) error {
	r, err := experiments.SplitPath()
	if err != nil {
		return err
	}
	fmt.Printf("§4.1 different servers: video path %.0f Kbps, audio path %.0f Kbps\n",
		r.VideoPathKbps, r.AudioPathKbps)
	fmt.Printf("  aggregate budget: video %.0f Kbps, audio %.0f Kbps, %.1f s rebuffer (video path starved)\n",
		r.Shared.Metrics.AvgVideoBitrate.Kbps(), r.Shared.Metrics.AvgAudioBitrate.Kbps(),
		r.Shared.Metrics.RebufferTime.Seconds())
	fmt.Printf("  per-path budget:  video %.0f Kbps, audio %.0f Kbps, %.1f s rebuffer\n",
		r.PathAware.Metrics.AvgVideoBitrate.Kbps(), r.PathAware.Metrics.AvgAudioBitrate.Kbps(),
		r.PathAware.Metrics.RebufferTime.Seconds())
	return nil
}

func curation(string) error {
	results, err := experiments.ContentCuration()
	if err != nil {
		return err
	}
	fmt.Println("§2.1 content-aware combination curation (same player, same 1.3 Mbps link):")
	for _, r := range results {
		fmt.Printf("  %-14s generic: video %4.0fK audio %3.0fK qoe %5.2f | curated: video %4.0fK audio %3.0fK qoe %5.2f\n",
			r.Content,
			r.Generic.Metrics.AvgVideoBitrate.Kbps(), r.Generic.Metrics.AvgAudioBitrate.Kbps(), r.Generic.Metrics.Score,
			r.Curated.Metrics.AvgVideoBitrate.Kbps(), r.Curated.Metrics.AvgAudioBitrate.Kbps(), r.Curated.Metrics.Score)
	}
	return nil
}

func syncwindow(string) error {
	points, err := experiments.SyncGranularity([]int{0, 1, 2, 4, 8})
	if err != nil {
		return err
	}
	fmt.Println("§4.2 synchronization granularity (best practice, Fig 3 link):")
	for _, p := range points {
		m := p.Outcome.Metrics
		fmt.Printf("  window %d chunks: max imbalance %5.1f s, %d stalls, %.1f s rebuffer, qoe %.2f\n",
			p.Window, m.MaxImbalance.Seconds(), m.StallCount, m.RebufferTime.Seconds(), m.Score)
	}
	return nil
}

func chunkdur(string) error {
	points, err := experiments.ChunkDurationSweep([]float64{1, 2, 5, 10})
	if err != nil {
		return err
	}
	fmt.Println("chunk-duration trade-off (best practice, 900 Kbps, 100 ms RTT):")
	for _, p := range points {
		m := p.Outcome.Metrics
		fmt.Printf("  %4.0fs chunks: startup %4.2fs, video %4.0fK, %d stalls, imbalance %4.1fs, qoe %5.2f\n",
			p.ChunkSeconds, m.StartupDelay.Seconds(), m.AvgVideoBitrate.Kbps(),
			m.StallCount, m.MaxImbalance.Seconds(), m.Score)
	}
	return nil
}

func verify(string) error {
	checks, err := experiments.VerifyAll()
	if err != nil {
		return err
	}
	if failures := experiments.PrintChecks(os.Stdout, checks); failures > 0 {
		return fmt.Errorf("%d paper checks failed", failures)
	}
	return nil
}

func language(string) error {
	r, err := experiments.LanguageSwitch()
	if err != nil {
		return err
	}
	fmt.Println("mid-session audio language switch (en -> es at t=120s, 2 Mbps):")
	fmt.Printf("  demuxed: %5.1f MB discarded (audio only), %d stalls, qoe %.2f\n",
		float64(r.DemuxedDiscarded)/(1<<20), r.Demuxed.Metrics.StallCount, r.Demuxed.Metrics.Score)
	fmt.Printf("  muxed:   %5.1f MB discarded (audio AND video), %d stalls, qoe %.2f\n",
		float64(r.MuxedDiscarded)/(1<<20), r.Muxed.Metrics.StallCount, r.Muxed.Metrics.Score)
	return nil
}

func seeds(string) error {
	summaries, err := experiments.SeedSweepParallel(10, parallelN)
	if err != nil {
		return err
	}
	fmt.Println("QoE across 10 random-walk traces (400-2500 Kbps):")
	experiments.PrintSeedSummaries(os.Stdout, summaries)
	return nil
}

func pareto(string) error {
	points, err := experiments.SafetyFactorSweepParallel([]float64{0.6, 0.7, 0.8, 0.9, 0.95}, parallelN)
	if err != nil {
		return err
	}
	fmt.Println("best-practice safety-factor frontier (Fig 3 link):")
	for _, p := range points {
		m := p.Outcome.Metrics
		fmt.Printf("  factor %.2f: video %4.0fK, %d stalls %5.1fs rebuffer, qoe %6.2f\n",
			p.SafetyFactor, m.AvgVideoBitrate.Kbps(), m.StallCount, m.RebufferTime.Seconds(), m.Score)
	}
	return nil
}

func startup(string) error {
	for _, kbps := range []float64{400, 900, 3000} {
		points, err := experiments.StartupDelaysParallel(kbps, parallelN)
		if err != nil {
			return err
		}
		fmt.Printf("time to first frame at %.0f Kbps:\n", kbps)
		for _, p := range points {
			fmt.Printf("  %-16s %6.2f s\n", p.Model, p.StartupDelay.Seconds())
		}
	}
	return nil
}

func crosstraffic(string) error {
	results, err := experiments.CrossTraffic()
	if err != nil {
		return err
	}
	fmt.Println("competing flow on a 2.5 Mbps link between t=100s and t=200s:")
	for _, name := range []string{"exoplayer-dash", "exoplayer-hls", "shaka", "dashjs", "bestpractice", "bola-joint", "mpc-joint"} {
		r, ok := results[name]
		if !ok {
			continue
		}
		m := r.Outcome.Metrics
		fmt.Printf("  %-16s video %4.0fK -> %4.0fK under contention, %d stalls %5.1fs rebuffer, qoe %6.2f\n",
			name, r.BeforeKbps, r.DuringKbps, m.StallCount, m.RebufferTime.Seconds(), m.Score)
	}
	return nil
}

func muxed(string) error {
	r, err := experiments.MuxedBaseline()
	if err != nil {
		return err
	}
	fmt.Println("muxed vs demuxed packaging, same player, Fig 3 link:")
	fmt.Printf("  demuxed: imbalance %.1f s max, %.1f s rebuffer, qoe %.2f\n",
		r.Demuxed.Metrics.MaxImbalance.Seconds(), r.Demuxed.Metrics.RebufferTime.Seconds(), r.Demuxed.Metrics.Score)
	fmt.Printf("  muxed:   imbalance %.1f s max, %.1f s rebuffer, qoe %.2f — at %.2fx the origin storage (H_sub)\n",
		r.Muxed.Metrics.MaxImbalance.Seconds(), r.Muxed.Metrics.RebufferTime.Seconds(), r.Muxed.Metrics.Score, r.StorageRatio)
	return nil
}

func cdn(string) error {
	content := media.DramaShow()
	demuxed := cdnsim.OriginStorage(content, cdnsim.Demuxed, nil)
	muxed := cdnsim.OriginStorage(content, cdnsim.Muxed, media.HAll(content))
	fmt.Printf("Origin storage (§1): demuxed %d MB vs muxed %d MB (%.2fx)\n",
		demuxed>>20, muxed>>20, float64(muxed)/float64(demuxed))
	v1 := content.VideoTracks[0]
	sessions := []cdnsim.Session{
		{Combo: media.Combo{Video: v1, Audio: content.AudioTracks[1]}},
		{Combo: media.Combo{Video: v1, Audio: content.AudioTracks[0]}},
	}
	const cap = 1 << 30
	d := cdnsim.Workload(cdnsim.NewCache(cap), cdnsim.Demuxed, content, sessions)
	mx := cdnsim.Workload(cdnsim.NewCache(cap), cdnsim.Muxed, content, sessions)
	fmt.Printf("Two viewers sharing V1 (§1): demuxed hit ratio %.2f vs muxed %.2f\n",
		d.HitRatio(), mx.HitRatio())
	pop := cdnsim.Population{Viewers: 60, VideoZipf: 1.2, AudioSpread: 3, Seed: 11}
	fmt.Println("Byte hit ratio vs cache size (staggered Zipf audience):")
	for _, p := range cdnsim.CacheSweepParallel(content, pop, []int64{32 << 20, 128 << 20, 512 << 20}, parallelN) {
		fmt.Printf("  %4d MB %s: %.3f\n", p.CacheBytes>>20, p.Mode, p.Stats.ByteHitRatio())
	}
	return nil
}

func fleet(string) error {
	points, err := experiments.FleetScaleParallel(experiments.DefaultFleetSizes(), parallelN)
	if err != nil {
		return err
	}
	experiments.PrintFleetScale(os.Stdout, points)
	fmt.Println()
	mixes, err := experiments.FleetMixesParallel(8, parallelN)
	if err != nil {
		return err
	}
	experiments.PrintFleetMixes(os.Stdout, mixes)
	return nil
}

// fleetscale runs one large sharded fleet (-fleet-n sessions in 16-session
// contention cells, streaming sketch aggregation) across -parallel worker
// engines; the printed aggregates are identical at any worker count.
func fleetscale(string) error {
	res, err := experiments.FleetAtScale(fleetN, parallelN)
	if err != nil {
		return err
	}
	experiments.PrintFleetAtScale(os.Stdout, res)
	return nil
}

func transport(string) error {
	cells, err := experiments.TransportComparisonParallel(parallelN)
	if err != nil {
		return err
	}
	experiments.PrintTransport(os.Stdout, cells)
	fmt.Println()
	points, err := experiments.TransportResilienceParallel(parallelN)
	if err != nil {
		return err
	}
	experiments.PrintTransportResilience(os.Stdout, points)
	return nil
}

// live runs the low-latency family: the LL-ABR trio (dash.js Default,
// L2A, LoLP) holding a latency target over seeded random walks, then the
// demuxed-vs-muxed live penalty across the h1/h2/h3 transport axis.
func live(string) error {
	cells, err := experiments.LiveComparisonParallel(parallelN)
	if err != nil {
		return err
	}
	tcells, err := experiments.LiveTransportParallel(parallelN)
	if err != nil {
		return err
	}
	experiments.PrintLive(os.Stdout, cells, tcells)
	return nil
}

// ladder runs the offline-chunking × online-ABR cross-product: one title
// prepared with uniform chunks, shaped per-type chunks, and shaped chunks
// plus a searched per-title ladder — each streamed by the per-type players
// over an RTT-priced link.
func ladder(string) error {
	cells, plan, err := experiments.LadderCross(parallelN)
	if err != nil {
		return err
	}
	experiments.PrintLadder(os.Stdout, cells, plan)
	return nil
}

func resilience(string) error {
	points, err := experiments.ResilienceSweepParallel(experiments.DefaultFaultRates(), parallelN)
	if err != nil {
		return err
	}
	fmt.Printf("Fault resilience on the varying-600 trace (seed %d, default policy):\n", experiments.ResilienceSeed)
	experiments.PrintResilience(os.Stdout, points)
	fmt.Println()
	on, off, err := experiments.PolicyResilience()
	if err != nil {
		return err
	}
	experiments.PrintPolicyResilience(os.Stdout, on, off)
	return nil
}
