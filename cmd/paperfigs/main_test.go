package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEveryExperimentRuns(t *testing.T) {
	dir := t.TempDir()
	fns := map[string]func(string) error{
		"table1": table1, "table2": table2, "table3": table3,
		"fig2a": fig2a, "fig2b": fig2b, "fig3": fig3,
		"fig4a": fig4a, "fig4b": fig4b, "fig5": fig5,
		"cdn": cdn, "repair": repair, "splitpath": splitpath,
		"curation": curation, "syncwindow": syncwindow, "chunkdur": chunkdur,
		"muxed": muxed, "language": language, "startup": startup,
		"pareto": pareto, "verify": verify,
	}
	for name, fn := range fns {
		if err := fn(dir); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCSVTimelinesWritten(t *testing.T) {
	dir := t.TempDir()
	if err := fig4a(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig4a.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 100 {
		t.Fatalf("fig4a.csv has %d lines, want a full timeline", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t_s,video,audio") {
		t.Errorf("header = %q", lines[0])
	}
	// The Fig 4(a) signature visible in the CSV: estimate pinned at 500.
	if !strings.Contains(lines[len(lines)-1], ",500.0,") {
		t.Errorf("final row lacks the 500 Kbps estimate: %q", lines[len(lines)-1])
	}
}
