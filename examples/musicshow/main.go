// Musicshow demonstrates the paper's §2.1/§4.1 server-side best practice:
// the content provider curates the allowed audio/video combinations per
// content type. For a music show, sound quality outranks picture quality,
// so high audio pairs with low/medium video; for an action movie the
// preference is reversed. The same player, the same ladder, the same
// 900 Kbps link — only the server-declared combination list differs, and
// with it what the viewer experiences.
package main

import (
	"fmt"
	"log"

	"demuxabr/internal/core"
	"demuxabr/internal/media"
	"demuxabr/internal/trace"
)

// musicShowCombos prefers audio: every video rung pairs with the best
// audio the pair's budget can carry.
func musicShowCombos(c *media.Content) []media.Combo {
	a := c.AudioTracks
	v := c.VideoTracks
	return []media.Combo{
		{Video: v[0], Audio: a[1]}, // V1+A2
		{Video: v[0], Audio: a[2]}, // V1+A3: top audio before more pixels
		{Video: v[1], Audio: a[2]}, // V2+A3
		{Video: v[2], Audio: a[2]}, // V3+A3
		{Video: v[3], Audio: a[2]}, // V4+A3
		{Video: v[4], Audio: a[2]}, // V5+A3
		{Video: v[5], Audio: a[2]}, // V6+A3
	}
}

// actionMovieCombos prefers video: audio stays modest until video is high.
func actionMovieCombos(c *media.Content) []media.Combo {
	a := c.AudioTracks
	v := c.VideoTracks
	return []media.Combo{
		{Video: v[0], Audio: a[0]}, // V1+A1
		{Video: v[1], Audio: a[0]}, // V2+A1
		{Video: v[2], Audio: a[0]}, // V3+A1: pixels before channels
		{Video: v[3], Audio: a[0]}, // V4+A1
		{Video: v[4], Audio: a[1]}, // V5+A2
		{Video: v[5], Audio: a[2]}, // V6+A3
	}
}

func main() {
	content := media.DramaShow()
	link := trace.Fixed(media.Kbps(900))

	for _, tc := range []struct {
		name   string
		combos []media.Combo
	}{
		{"music show (audio-first pairing)", musicShowCombos(content)},
		{"action movie (video-first pairing)", actionMovieCombos(content)},
		{"default H_sub pairing", media.HSub(content)},
	} {
		sess, err := core.Play(core.Spec{
			Content:  content,
			Profile:  link,
			Player:   core.BestPractice,
			Manifest: core.ManifestOptions{Combos: tc.combos},
		})
		if err != nil {
			log.Fatal(err)
		}
		m := sess.Metrics
		fmt.Printf("%-36s video %4.0f Kbps | audio %4.0f Kbps | stalls %d | combos %v\n",
			tc.name, m.AvgVideoBitrate.Kbps(), m.AvgAudioBitrate.Kbps(), m.StallCount,
			sess.Result.CombosSelected())
	}
	fmt.Println("\nSame player, same link: the manifest's combination list decides where")
	fmt.Println("the bits go — that is why the server must curate it per content (§4.1).")
}
