// Quickstart: stream the paper's drama show with the best-practice joint
// audio/video player over a fluctuating link, and print the QoE summary.
package main

import (
	"fmt"
	"log"
	"time"

	"demuxabr/internal/core"
	"demuxabr/internal/media"
	"demuxabr/internal/trace"
)

func main() {
	// A link that re-draws its rate every 5 s between 300 and 2000 Kbps.
	profile := trace.RandomWalk(7, media.Kbps(300), media.Kbps(2000), 5*time.Second, 5*time.Minute)

	sess, err := core.Play(core.Spec{
		Profile: profile,           // network condition
		Player:  core.BestPractice, // §4 joint A/V adaptation
		Content: media.DramaShow(), // Table 1 content (the default)
	})
	if err != nil {
		log.Fatal(err)
	}

	m := sess.Metrics
	fmt.Printf("streamed %q with %s\n", "drama-show", sess.Model)
	fmt.Printf("  startup:   %.2f s\n", m.StartupDelay.Seconds())
	fmt.Printf("  stalls:    %d (%.1f s rebuffering)\n", m.StallCount, m.RebufferTime.Seconds())
	fmt.Printf("  video:     %.0f Kbps average, %d switches\n", m.AvgVideoBitrate.Kbps(), m.VideoSwitches)
	fmt.Printf("  audio:     %.0f Kbps average, %d switches\n", m.AvgAudioBitrate.Kbps(), m.AudioSwitches)
	fmt.Printf("  combos:    %v\n", sess.Result.CombosSelected())
	fmt.Printf("  imbalance: %.1f s max (chunk-synced prefetching keeps it within one chunk)\n",
		m.MaxImbalance.Seconds())
	fmt.Printf("  QoE score: %.2f\n", m.Score)
}
