// Dramashow reruns the paper's head-to-head: the three studied player
// models (ExoPlayer in both protocol modes, Shaka, dash.js) and the §4
// best-practice design all stream the Table 1 content under each of the
// paper's network conditions, printing one comparison table per scenario.
//
// This is the summary view of Figures 2-5: every pathology shows up as a
// row — pinned audio, off-manifest selections, stalls from bandwidth
// mis-estimation, selection churn, and buffer imbalance.
package main

import (
	"fmt"
	"log"
	"os"

	"demuxabr/internal/experiments"
)

func main() {
	for _, s := range experiments.Scenarios() {
		outcomes, err := experiments.Compare(s)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintOutcomes(os.Stdout, "Scenario: "+s.Name, outcomes)
		fmt.Println()
	}
	fmt.Println("Reading the tables:")
	fmt.Println("  - exoplayer-hls pins audio (A switches = 0) and strays off-manifest;")
	fmt.Println("  - shaka under/over-estimates on links its 16 KB filter cannot sample;")
	fmt.Println("  - dashjs churns selections and lets the A/V buffers diverge;")
	fmt.Println("  - bestpractice stays on the allowed pairings with balanced buffers.")
}
