// Httpdemo runs the full stack over real HTTP on localhost: it starts the
// origin server (with token-bucket shaping standing in for tc), fetches the
// DASH manifest and the HLS playlists like real clients do, and streams a
// short asset with two players — showing the §4.1 difference between a
// client that only reads the top-level HLS playlist and one that reads the
// media playlists first.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"demuxabr/internal/abr/exoplayer"
	"demuxabr/internal/httpclient"
	"demuxabr/internal/media"
	"demuxabr/internal/originserver"
)

func main() {
	// A 30-second asset with 1-second chunks streams quickly on localhost.
	content := media.MustNewContent(media.ContentSpec{
		Name:          "demo",
		Duration:      30 * time.Second,
		ChunkDuration: time.Second,
		VideoTracks:   media.DramaVideoLadder(),
		AudioTracks:   media.DramaAudioLadder(),
		Model:         media.DefaultChunkModel(),
	})

	// Shape the origin to 3 Mbps — a mid-ladder link.
	shaper := originserver.NewTokenBucket(media.Kbps(3000), 64*1024)
	srv := httptest.NewServer(originserver.New(content, originserver.Options{Shaper: shaper}).Handler())
	defer srv.Close()
	fmt.Println("origin at", srv.URL, "(shaped to 3 Mbps)")

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Player 1: DASH — per-track bitrates come straight from the MPD.
	mpd, err := httpclient.FetchManifest(ctx, srv.Client(), srv.URL)
	if err != nil {
		log.Fatal(err)
	}
	dashRep, err := httpclient.Stream(ctx, mpd, httpclient.Config{
		BaseURL:    srv.URL,
		Model:      exoplayer.NewDASH(mpd.Video, mpd.Audio),
		HTTPClient: srv.Client(),
	})
	if err != nil {
		log.Fatal(err)
	}
	report("exoplayer-dash (MPD)", dashRep)

	// Player 2: HLS the §4.1 way — media playlists fetched up front, so
	// per-track bitrates are known and audio adapts.
	hls, err := httpclient.FetchHLS(ctx, srv.Client(), srv.URL)
	if err != nil {
		log.Fatal(err)
	}
	hlsRep, err := httpclient.Stream(ctx, hls, httpclient.Config{
		BaseURL:    srv.URL,
		Model:      exoplayer.NewHLSRepaired(hls.Variants),
		HTTPClient: srv.Client(),
	})
	if err != nil {
		log.Fatal(err)
	}
	report("exoplayer-hls-repaired (§4.1)", hlsRep)
}

func report(name string, rep *httpclient.Report) {
	first := rep.Chunks[0].Combo
	last := rep.Chunks[len(rep.Chunks)-1].Combo
	fmt.Printf("%-30s %2d chunks, %5.1f MB in %5.1fs, startup %4.0fms, rebuffered %4.0fms, %s -> %s\n",
		name, len(rep.Chunks), float64(rep.TotalBytes)/(1<<20), rep.Elapsed.Seconds(),
		float64(rep.StartupDelay.Milliseconds()), float64(rep.Rebuffered.Milliseconds()),
		first, last)
}
