// Languages demonstrates the paper's §1 multi-language motivation end to
// end: a two-language asset (shared video ladder, per-language audio
// tiers), a viewer who switches from English to Spanish mid-session, and
// the packaging consequence — demuxed throws away only the buffered audio,
// muxed throws away the video with it.
package main

import (
	"fmt"
	"log"

	"demuxabr/internal/experiments"
	"demuxabr/internal/media"
)

func main() {
	content := media.MultiLanguageShow()
	fmt.Printf("asset %q: %d shared video tracks, audio per language:\n", content.Name, len(content.VideoTracks))
	for _, lang := range []string{"en", "es"} {
		ladder := media.LanguageLadder(content.AudioTracks, lang)
		fmt.Printf("  %s: %v\n", lang, ladder.IDs())
	}

	r, err := experiments.LanguageSwitch()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nviewer switches en -> es at t=120 s on a 2 Mbps link:")
	fmt.Printf("  demuxed: discards %5.1f MB (buffered audio only), %d stalls, QoE %.2f\n",
		float64(r.DemuxedDiscarded)/(1<<20), r.Demuxed.Metrics.StallCount, r.Demuxed.Metrics.Score)
	fmt.Printf("  muxed:   discards %5.1f MB (audio AND buffered video), %d stalls, QoE %.2f\n",
		float64(r.MuxedDiscarded)/(1<<20), r.Muxed.Metrics.StallCount, r.Muxed.Metrics.Score)

	// What actually played after the switch.
	langs := map[string]int{}
	for _, ch := range r.Demuxed.Result.ChunksOf(media.Audio) {
		langs[ch.Track.Language]++
	}
	fmt.Printf("\ndemuxed session audio chunks by language: %v\n", langs)
	fmt.Println("(the video buffer built before the switch kept playing — only")
	fmt.Println(" demuxed packaging makes a language change this cheap, §1)")
}
