// Cdncache quantifies the paper's §1 motivation for demuxed tracks: origin
// storage (M+N track objects vs M×N muxed combinations) and CDN cache
// effectiveness when viewers share video variants but differ in audio
// (languages, quality tiers).
package main

import (
	"fmt"

	"demuxabr/internal/cdnsim"
	"demuxabr/internal/media"
)

func main() {
	content := media.DramaShow()

	// Storage: the §1 M+N vs M×N argument with the real Table 1 sizes.
	demuxed := cdnsim.OriginStorage(content, cdnsim.Demuxed, nil)
	muxed := cdnsim.OriginStorage(content, cdnsim.Muxed, media.HAll(content))
	fmt.Printf("origin storage for 6 video x 3 audio tracks of a 5-minute asset:\n")
	fmt.Printf("  demuxed (9 track objects):        %6.1f MB\n", float64(demuxed)/(1<<20))
	fmt.Printf("  muxed   (18 combination objects): %6.1f MB  (%.2fx)\n\n",
		float64(muxed)/(1<<20), float64(muxed)/float64(demuxed))

	// Cache hits: the §1 two-viewer scenario, then a population of viewers
	// spread across audio languages/tiers while concentrating on a few
	// video rungs.
	v := content.VideoTracks
	a := content.AudioTracks
	var sessions []cdnsim.Session
	for _, combo := range []media.Combo{
		{Video: v[2], Audio: a[0]}, {Video: v[2], Audio: a[1]}, {Video: v[2], Audio: a[2]},
		{Video: v[3], Audio: a[0]}, {Video: v[3], Audio: a[1]}, {Video: v[3], Audio: a[2]},
		{Video: v[2], Audio: a[0]}, {Video: v[3], Audio: a[1]},
	} {
		sessions = append(sessions, cdnsim.Session{Combo: combo})
	}
	const cacheBytes = 1 << 30
	d := cdnsim.Workload(cdnsim.NewCache(cacheBytes), cdnsim.Demuxed, content, sessions)
	m := cdnsim.Workload(cdnsim.NewCache(cacheBytes), cdnsim.Muxed, content, sessions)
	fmt.Printf("8 viewers, 2 video rungs x 3 audio variants:\n")
	fmt.Printf("  demuxed: hit ratio %.2f, byte hit ratio %.2f, origin traffic %6.1f MB\n",
		d.HitRatio(), d.ByteHitRatio(), float64(d.BytesOrigin)/(1<<20))
	fmt.Printf("  muxed:   hit ratio %.2f, byte hit ratio %.2f, origin traffic %6.1f MB\n",
		m.HitRatio(), m.ByteHitRatio(), float64(m.BytesOrigin)/(1<<20))
	fmt.Println("\nDemuxed packaging lets viewers who differ only in audio share every")
	fmt.Println("cached video chunk — the cache-hit advantage the paper's §1 describes.")

	// Cache-size sweep with a Zipf-skewed audience (popularity concentrated
	// on mid-ladder rungs, viewers spread across 3 audio variants).
	pop := cdnsim.Population{Viewers: 60, VideoZipf: 1.2, AudioSpread: 3, Seed: 11}
	fmt.Println("\nbyte hit ratio vs cache size (60 Zipf viewers, 3 audio variants):")
	fmt.Println("  cache      demuxed  muxed")
	for _, p := range cdnsim.CacheSweep(content, pop, []int64{32 << 20, 128 << 20, 512 << 20, 2 << 30}) {
		if p.Mode == cdnsim.Demuxed {
			fmt.Printf("  %5d MB   %6.3f", p.CacheBytes>>20, p.Stats.ByteHitRatio())
		} else {
			fmt.Printf("   %6.3f\n", p.Stats.ByteHitRatio())
		}
	}
}
