#!/bin/sh
# check.sh — the full verification gate, run before every merge:
#
#   1. go vet        standard suspicious-construct checks
#   2. go build      every package compiles
#   3. go test -race full test suite (includes TestVetABR and the
#                    determinism regression test) under the race detector
#   4. vetabr        project-specific static analysis: simclock, maporder,
#                    floateq, units (see docs/STATIC_ANALYSIS.md)
#   5. equivalence   fleet runners must be byte-identical serial vs
#                    GOMAXPROCS-parallel (see docs/PERFORMANCE.md)
#   6. timeline      flight-recorder exports must be byte-identical
#                    across repeat runs and worker counts
#   7. benchmem      fleet benchmarks compile and run once, so the
#                    allocs/op trajectory is always measurable
#
# Exits non-zero on the first failing step.
set -eu
cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== go run ./cmd/vetabr ./..."
go run ./cmd/vetabr ./...

echo "== parallel-vs-serial equivalence (incl. fault-injection and fleet determinism)"
go test -race -count=1 \
	-run 'TestParallelEquivalence|TestCacheSweepParallelMatchesSerial|TestMapCollectsInSubmissionOrder|TestResilienceSweepDeterministic|TestResilienceSweepParallelEquivalence|TestFleetScaleParallelEquivalence|TestFleetDeterministic' \
	./internal/experiments ./internal/cdnsim ./internal/runpool ./internal/fleet

echo "== timeline determinism (flight-recorder exports byte-identical across runs and worker counts)"
go test -race -count=1 -run 'TestTimeline' \
	./internal/timeline ./internal/fleet ./cmd/abrsim

echo "== benchmem smoke (1 iteration per fleet benchmark)"
go test -run=NONE -bench 'BenchmarkBandwidthSweep|BenchmarkSeedSweep|BenchmarkCDNCacheSweep|BenchmarkFleet' \
	-benchtime=1x -benchmem .

echo "check.sh: all gates passed"
