#!/bin/sh
# check.sh — the full verification gate, run before every merge:
#
#   1. go vet        standard suspicious-construct checks
#   2. go build      every package compiles
#   3. go test -race full test suite (includes TestVetABR and the
#                    determinism regression test) under the race detector
#   4. vetabr        project-specific static analysis: simclock, globalrand,
#                    maporder, rangeleak, sharedcapture, recmut, floateq,
#                    units (see docs/STATIC_ANALYSIS.md) — gated by
#                    vetabr.baseline, with a SARIF artifact written to
#                    artifacts/vetabr.sarif
#   5. suppressions  every //lint:ignore in the tree must be rule-scoped
#                    (a blanket ignore would silence future analyzers too)
#   6. equivalence   fleet runners must be byte-identical serial vs
#                    GOMAXPROCS-parallel (see docs/PERFORMANCE.md)
#   7. shards        sharded fleet aggregation must be byte-identical for
#                    any shard count (-shards 1 vs 2/4/32 fleet JSON at
#                    N=32, exact and streaming paths, under -race)
#   8. timeline      flight-recorder exports must be byte-identical
#                    across repeat runs and worker counts
#   9. transport     the transport layer's two contracts: zero-cost
#                    transport is byte-identical to no transport at every
#                    level (session, timeline golden, fleet JSON), and the
#                    transport comparison is byte-identical across worker
#                    counts and repeats with the documented delta ordering
#  10. live          the live subsystem's two contracts: zero-cost live
#                    (nil config) is byte-identical to pre-live output at
#                    every level (session stats, timeline golden, fleet
#                    JSON, shard equivalence), and the LL-ABR comparison
#                    is deterministic with the documented orderings
#  11. shaping       the offline-chunking stage's two contracts: the same
#                    seed yields a byte-identical plan at any worker count
#                    (shaping-determinism), and content without shaping
#                    keeps byte-identical manifests and chunk sizes
#                    (uniform zero-cost, pinned by the golden manifests)
#  12. benchmem      fleet benchmarks compile and run once, so the
#                    allocs/op trajectory is always measurable
#
# Exits non-zero on the first failing step.
set -eu
cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== go run ./cmd/vetabr -baseline vetabr.baseline -sarif artifacts/vetabr.sarif ./..."
mkdir -p artifacts
go run ./cmd/vetabr -baseline vetabr.baseline -sarif artifacts/vetabr.sarif ./...

echo "== suppression scope (no unscoped //lint:ignore)"
# Every directive must name its rule(s): '//lint:ignore <rule>[,rule] <reason>'.
# The engine already rejects missing reasons (bad-suppression); this guards
# the other half — a bare or 'all'-scoped ignore that would also silence
# analyzers added later.
if grep -rn --include='*.go' -E '//lint:ignore([[:space:]]+all([[:space:]]|$)|[[:space:]]*$)' cmd internal; then
	echo "check.sh: unscoped //lint:ignore directive(s) above — scope each to a rule with a reason" >&2
	exit 1
fi

echo "== parallel-vs-serial equivalence (incl. fault-injection and fleet determinism)"
go test -race -count=1 \
	-run 'TestParallelEquivalence|TestCacheSweepParallelMatchesSerial|TestMapCollectsInSubmissionOrder|TestResilienceSweepDeterministic|TestResilienceSweepParallelEquivalence|TestFleetScaleParallelEquivalence|TestFleetDeterministic' \
	./internal/experiments ./internal/cdnsim ./internal/runpool ./internal/fleet

echo "== shard equivalence (-shards 1 vs -shards 4 byte-identical fleet JSON at N=32)"
go test -race -count=1 -run 'TestFleetShardEquivalence' ./internal/fleet

echo "== timeline determinism (flight-recorder exports byte-identical across runs and worker counts)"
go test -race -count=1 -run 'TestTimeline' \
	./internal/timeline ./internal/fleet ./cmd/abrsim

echo "== transport gates (zero-cost off-equivalence + deterministic delta ordering)"
go test -race -count=1 \
	-run 'TestZeroCostTransport|TestConnZeroCostTransport|TestTimelineZeroCostTransport|TestFleetZeroCostTransport|TestFleetShardEquivalenceWithTransport|TestTransportComparisonDeterminism|TestTransportDeltaOrdering' \
	./internal/netsim ./internal/player ./internal/timeline ./internal/fleet ./internal/experiments

echo "== live gates (zero-cost off-equivalence + deterministic LL orderings)"
go test -race -count=1 \
	-run 'TestLiveOffLeavesNoStats|TestFleetZeroCostLive|TestFleetShardEquivalenceLive|TestFleetLiveAggregates|TestLiveComparisonDeterminism|TestLiveModelOrdering|TestLiveDeltaOrdering|TestTimelineGoldenLive' \
	./internal/player ./internal/fleet ./internal/experiments ./internal/timeline

echo "== shaping gates (seeded plan determinism + uniform zero-cost contract)"
go test -race -count=1 \
	-run 'TestShapingDeterminism|TestLadderParallelDeterminism|TestFixedSpecKeepsUniformContract|TestGoldenMPD|TestGoldenMaster|TestGoldenMediaPlaylist' \
	./internal/shaping ./internal/experiments ./internal/manifest/dash ./internal/manifest/hls

echo "== benchmem smoke (1 iteration per fleet benchmark)"
go test -run=NONE -bench 'BenchmarkBandwidthSweep|BenchmarkSeedSweep|BenchmarkCDNCacheSweep|BenchmarkFleet|BenchmarkLiveSession' \
	-benchtime=1x -benchmem .

echo "check.sh: all gates passed"
