// Package demuxabr_test is the paper's benchmark harness: one benchmark per
// table and figure of "ABR Streaming with Separate Audio and Video Tracks"
// (CoNEXT 2019), plus ablation benches for the §4 best-practice design
// choices. Each benchmark runs the corresponding experiment end-to-end
// (content synthesis → manifest round trip → player model → discrete-event
// session) and reports the figure's headline quantities as custom metrics,
// so `go test -bench=. -benchmem` regenerates the paper's evaluation.
package demuxabr_test

import (
	"fmt"
	"runtime"
	"testing"

	"demuxabr/internal/cdnsim"
	"demuxabr/internal/core"
	"demuxabr/internal/experiments"
	"demuxabr/internal/fleet"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/trace"
)

// --- Tables -------------------------------------------------------------

// BenchmarkTable1Ladder regenerates Table 1: the drama show's audio/video
// ladder with its average, peak and declared bitrates.
func BenchmarkTable1Ladder(b *testing.B) {
	var c *media.Content
	for i := 0; i < b.N; i++ {
		c = media.DramaShow()
	}
	b.ReportMetric(float64(len(c.VideoTracks)), "video-tracks")
	b.ReportMetric(float64(len(c.AudioTracks)), "audio-tracks")
	b.ReportMetric(c.VideoTracks[5].DeclaredBitrate.Kbps(), "V6-declared-kbps")
	b.ReportMetric(c.AudioTracks[2].DeclaredBitrate.Kbps(), "A3-declared-kbps")
}

// BenchmarkTable2AllCombinations regenerates Table 2: the 18 combinations
// of manifest H_all sorted by peak bitrate.
func BenchmarkTable2AllCombinations(b *testing.B) {
	c := media.DramaShow()
	var combos []media.Combo
	for i := 0; i < b.N; i++ {
		combos = media.HAll(c)
	}
	b.ReportMetric(float64(len(combos)), "combinations")
	b.ReportMetric(combos[0].PeakBitrate().Kbps(), "min-peak-kbps")  // paper: 253 (V1+A1)
	b.ReportMetric(combos[17].PeakBitrate().Kbps(), "max-peak-kbps") // paper: 4838 (V6+A3)
	b.ReportMetric(combos[17].AvgBitrate().Kbps(), "max-avg-kbps")   // paper: 3112
}

// BenchmarkTable3SubsetCombinations regenerates Table 3: the curated H_sub.
func BenchmarkTable3SubsetCombinations(b *testing.B) {
	c := media.DramaShow()
	var combos []media.Combo
	for i := 0; i < b.N; i++ {
		combos = media.HSub(c)
	}
	b.ReportMetric(float64(len(combos)), "combinations")             // paper: 6
	b.ReportMetric(combos[2].PeakBitrate().Kbps(), "V3A2-peak-kbps") // paper: 840
	b.ReportMetric(combos[2].AvgBitrate().Kbps(), "V3A2-avg-kbps")   // paper: 558
}

// --- Figures ------------------------------------------------------------

// BenchmarkFig2aExoDASHLowAudio regenerates Fig. 2(a): ExoPlayer DASH with
// the B audio ladder at 900 Kbps settles on V3+B2; V3+B3 fits but is
// excluded by the predetermined combinations.
func BenchmarkFig2aExoDASHLowAudio(b *testing.B) {
	var r experiments.Fig2Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig2a()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Outcome.Metrics.AvgVideoBitrate.Kbps(), "avg-video-kbps") // paper: V3 (362)
	b.ReportMetric(r.Outcome.Metrics.AvgAudioBitrate.Kbps(), "avg-audio-kbps") // paper: B2 (~62)
	b.ReportMetric(boolMetric(r.Dominant.String() == "V3+B2"), "selects-V3B2")
	b.ReportMetric(boolMetric(r.BetterFits && !r.BetterPredetermined), "V3B3-feasible-but-excluded")
}

// BenchmarkFig2bExoDASHHighAudio regenerates Fig. 2(b): the C audio ladder
// yields V2+C2 — very low video with high audio — while V3+C1 fits.
func BenchmarkFig2bExoDASHHighAudio(b *testing.B) {
	var r experiments.Fig2Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig2b()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Outcome.Metrics.AvgVideoBitrate.Kbps(), "avg-video-kbps") // paper: V2 (246)
	b.ReportMetric(r.Outcome.Metrics.AvgAudioBitrate.Kbps(), "avg-audio-kbps") // paper: C2 (~376)
	b.ReportMetric(boolMetric(r.Dominant.String() == "V2+C2"), "selects-V2C2")
	b.ReportMetric(boolMetric(r.BetterFits && !r.BetterPredetermined), "V3C1-feasible-but-excluded")
}

// BenchmarkFig3aExoHLSTracks regenerates Fig. 3(a): audio pinned at A3 (the
// first listed rendition) and off-manifest video/audio pairs.
func BenchmarkFig3aExoHLSTracks(b *testing.B) {
	var r experiments.Fig3Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(boolMetric(r.FixedAudio == "A3"), "audio-pinned-A3")
	b.ReportMetric(float64(r.AudioTrackChanges), "audio-switches")      // paper: 0
	b.ReportMetric(float64(r.OffManifestChunks), "off-manifest-chunks") // paper: >0
}

// BenchmarkFig3bExoHLSBuffers regenerates Fig. 3(b): the stall count and
// rebuffering total of the pinned-audio session (paper: 5 stalls, 36.9 s).
func BenchmarkFig3bExoHLSBuffers(b *testing.B) {
	var r experiments.Fig3Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Outcome.Metrics.StallCount), "stalls")        // paper: 5
	b.ReportMetric(r.Outcome.Metrics.RebufferTime.Seconds(), "rebuffer-s") // paper: 36.9
	b.ReportMetric(r.Outcome.Metrics.MaxImbalance.Seconds(), "max-buffer-imbalance-s")
}

// BenchmarkFig4aShakaFixed regenerates Fig. 4(a): at a constant 1 Mbps no
// interval passes the 16 KB filter, the estimate sticks at the 500 Kbps
// default, and V2+A2 streams throughout.
func BenchmarkFig4aShakaFixed(b *testing.B) {
	var r experiments.Fig4Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig4a()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.EstimateEnd.Kbps(), "estimate-kbps") // paper: 500 throughout
	b.ReportMetric(boolMetric(!r.AnyValidSample), "all-samples-filtered")
	b.ReportMetric(boolMetric(r.Dominant.String() == "V2+A2"), "selects-V2A2")
}

// BenchmarkFig4bShakaVarying regenerates Fig. 4(b): under- then
// over-estimation on the bimodal average-600 Kbps link (paper: V2+A2 then
// V3+A3, ~39 s of rebuffering).
func BenchmarkFig4bShakaVarying(b *testing.B) {
	var r experiments.Fig4Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig4b()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.EstimateEnd.Kbps(), "final-estimate-kbps")            // paper: ~2x the true average
	b.ReportMetric(r.Outcome.Metrics.RebufferTime.Seconds(), "rebuffer-s") // paper: 39
	b.ReportMetric(boolMetric(r.Dominant.String() == "V3+A3"), "selects-V3A3")
}

// BenchmarkFig5aDashjsTracks regenerates Fig. 5(a): selection fluctuation
// across nearby combinations including the undesirable V2+A3.
func BenchmarkFig5aDashjsTracks(b *testing.B) {
	var r experiments.Fig5Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig5()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(r.Combos)), "distinct-combos")
	b.ReportMetric(float64(len(r.UndesirablePairings)), "undesirable-combos") // paper: V2+A3 etc.
	b.ReportMetric(float64(r.Outcome.Metrics.VideoSwitches), "video-switches")
}

// BenchmarkFig5bDashjsBuffers regenerates Fig. 5(b): unbalanced audio and
// video buffers under independent per-type scheduling.
func BenchmarkFig5bDashjsBuffers(b *testing.B) {
	var r experiments.Fig5Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig5()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MaxImbalance.Seconds(), "max-buffer-imbalance-s")
	b.ReportMetric(r.Outcome.Metrics.MeanImbalance.Seconds(), "mean-buffer-imbalance-s")
}

// BenchmarkShakaFluctuation covers the §3.3 textual example: with the
// estimate wandering between 300 and 700 Kbps, the rate-based rule visits
// several closely spaced H_all combinations (paper: V1+A2, V2+A1, V2+A2,
// V1+A3, V2+A3 at 318/395/460/510/652 Kbps).
func BenchmarkShakaFluctuation(b *testing.B) {
	c := media.DramaShow()
	combos := media.HAll(c)
	var distinct int
	for i := 0; i < b.N; i++ {
		seen := map[string]bool{}
		for estKbps := 300; estKbps <= 700; estKbps += 25 {
			budget := media.Kbps(float64(estKbps) * shakaDowngradeTarget)
			pick := combos[0]
			for _, cb := range combos {
				if cb.PeakBitrate() <= budget {
					pick = cb
				}
			}
			seen[pick.String()] = true
		}
		distinct = len(seen)
	}
	b.ReportMetric(float64(distinct), "distinct-combos") // paper: 5
}

// shakaDowngradeTarget mirrors shaka.DefaultDowngradeTarget for the
// fluctuation sweep.
const shakaDowngradeTarget = 0.95

// --- Motivation (§1) -----------------------------------------------------

// BenchmarkCDNMotivation regenerates the §1 storage and cache-hit
// arguments: M+N vs M×N origin storage and the shared-video cache
// advantage of demuxed packaging.
func BenchmarkCDNMotivation(b *testing.B) {
	content := media.DramaShow()
	var ratio float64
	var dHit, mHit float64
	for i := 0; i < b.N; i++ {
		demuxed := cdnsim.OriginStorage(content, cdnsim.Demuxed, nil)
		muxed := cdnsim.OriginStorage(content, cdnsim.Muxed, media.HAll(content))
		ratio = float64(muxed) / float64(demuxed)
		sessions := []cdnsim.Session{
			{Combo: media.Combo{Video: content.VideoTracks[0], Audio: content.AudioTracks[1]}},
			{Combo: media.Combo{Video: content.VideoTracks[0], Audio: content.AudioTracks[0]}},
		}
		d := cdnsim.Workload(cdnsim.NewCache(1<<30), cdnsim.Demuxed, content, sessions)
		m := cdnsim.Workload(cdnsim.NewCache(1<<30), cdnsim.Muxed, content, sessions)
		dHit, mHit = d.HitRatio(), m.HitRatio()
	}
	b.ReportMetric(ratio, "muxed-over-demuxed-storage")
	b.ReportMetric(dHit, "demuxed-hit-ratio")
	b.ReportMetric(mHit, "muxed-hit-ratio")
}

// BenchmarkCDNCacheSweep extends the §1 cache argument across cache sizes
// with a staggered Zipf audience: demuxed packaging reaches a given byte
// hit ratio with a fraction of the cache muxed packaging needs.
func BenchmarkCDNCacheSweep(b *testing.B) {
	content := media.DramaShow()
	pop := cdnsim.Population{Viewers: 60, VideoZipf: 1.2, AudioSpread: 3, Seed: 11}
	var points []cdnsim.CacheSweepPoint
	for i := 0; i < b.N; i++ {
		points = cdnsim.CacheSweep(content, pop, []int64{32 << 20, 128 << 20, 512 << 20})
	}
	for _, p := range points {
		b.ReportMetric(p.Stats.ByteHitRatio(), fmt.Sprintf("%s-%dMB-byte-hit", p.Mode, p.CacheBytes>>20))
	}
}

// --- Best-practice comparison and ablations (§4) --------------------------

// BenchmarkBestPracticeVsPlayers runs all five player models under each
// paper scenario and reports the best-practice QoE advantage.
func BenchmarkBestPracticeVsPlayers(b *testing.B) {
	for _, s := range experiments.Scenarios() {
		s := s
		b.Run(s.Name, func(b *testing.B) {
			var outcomes []experiments.Outcome
			var err error
			for i := 0; i < b.N; i++ {
				outcomes, err = experiments.Compare(s)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, o := range outcomes {
				b.ReportMetric(o.Metrics.Score, o.Model+"-qoe")
			}
		})
	}
}

// BenchmarkAblations quantifies each §4 design choice by switching it off.
func BenchmarkAblations(b *testing.B) {
	scenario := experiments.Scenarios()[1] // varying-avg-600k: the hard one
	b.Run(scenario.Name, func(b *testing.B) {
		var out map[string]experiments.Outcome
		var err error
		for i := 0; i < b.N; i++ {
			out, err = experiments.Ablate(scenario)
			if err != nil {
				b.Fatal(err)
			}
		}
		for name, o := range out {
			b.ReportMetric(o.Metrics.Score, name+"-qoe")
			b.ReportMetric(o.Metrics.RebufferTime.Seconds(), name+"-rebuffer-s")
		}
	})
	b.Run("imbalance:fixed-700k", func(b *testing.B) {
		s := experiments.Scenarios()[4]
		var out map[string]experiments.Outcome
		var err error
		for i := 0; i < b.N; i++ {
			out, err = experiments.Ablate(s)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(out["full"].Metrics.MaxImbalance.Seconds(), "synced-imbalance-s")
		b.ReportMetric(out["independent-scheduling"].Metrics.MaxImbalance.Seconds(), "independent-imbalance-s")
	})
}

// BenchmarkFig3Repaired quantifies the §4.1 media-playlist repair of the
// ExoPlayer HLS degradation under the Fig. 3 conditions.
func BenchmarkFig3Repaired(b *testing.B) {
	var r experiments.RepairResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig3Repaired()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Broken.Metrics.RebufferTime.Seconds(), "broken-rebuffer-s")
	b.ReportMetric(r.Repaired.Metrics.RebufferTime.Seconds(), "repaired-rebuffer-s")
	b.ReportMetric(float64(r.Repaired.Metrics.OffManifest), "repaired-off-manifest")
	b.ReportMetric(r.RecoveredBitrateErr, "bitrate-recovery-err")
}

// BenchmarkSplitPath quantifies the §4.1 different-servers scenario:
// aggregate vs per-path bandwidth budgeting.
func BenchmarkSplitPath(b *testing.B) {
	var r experiments.SplitPathResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.SplitPath()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Shared.Metrics.AvgVideoBitrate.Kbps(), "aggregate-video-kbps")
	b.ReportMetric(r.PathAware.Metrics.AvgVideoBitrate.Kbps(), "pathaware-video-kbps")
	b.ReportMetric(r.PathAware.Metrics.Score-r.Shared.Metrics.Score, "pathaware-qoe-gain")
}

// BenchmarkSafetyFactorFrontier reports the quality/rebuffer trade-off of
// the best-practice player's safety factor.
func BenchmarkSafetyFactorFrontier(b *testing.B) {
	var points []experiments.ParetoPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiments.SafetyFactorSweep([]float64{0.6, 0.8, 0.95})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(p.Outcome.Metrics.AvgVideoBitrate.Kbps(), fmt.Sprintf("sf%.2f-video-kbps", p.SafetyFactor))
		b.ReportMetric(p.Outcome.Metrics.RebufferTime.Seconds(), fmt.Sprintf("sf%.2f-rebuffer-s", p.SafetyFactor))
	}
}

// BenchmarkSeedSweep reports QoE distributions across random traces —
// the statistical view of the head-to-head comparison.
func BenchmarkSeedSweep(b *testing.B) {
	var summaries []experiments.SeedSummary
	var err error
	for i := 0; i < b.N; i++ {
		summaries, err = experiments.SeedSweep(5)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range summaries {
		b.ReportMetric(s.QoE.Median, s.Model+"-qoe-median")
	}
}

// BenchmarkStartupDelay reports time to first frame per player at 900 Kbps.
func BenchmarkStartupDelay(b *testing.B) {
	var points []experiments.StartupPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiments.StartupDelays(900)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(p.StartupDelay.Seconds(), p.Model+"-startup-s")
	}
}

// BenchmarkLanguageSwitch quantifies the §1 multi-language motivation: a
// mid-session language change discards only the audio buffer with demuxed
// packaging, but the whole buffer with muxed packaging.
func BenchmarkLanguageSwitch(b *testing.B) {
	var r experiments.LanguageSwitchResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.LanguageSwitch()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.DemuxedDiscarded)/(1<<20), "demuxed-discarded-MB")
	b.ReportMetric(float64(r.MuxedDiscarded)/(1<<20), "muxed-discarded-MB")
}

// BenchmarkVBRAwareness contrasts declared-average budgeting with actual
// per-chunk-byte budgeting (§4.1 byte ranges) on the spiky action-movie
// content at a tight rate.
func BenchmarkVBRAwareness(b *testing.B) {
	content := media.ActionMovie()
	var vbr, avg *core.Session
	for i := 0; i < b.N; i++ {
		var err error
		vbr, err = core.Play(core.Spec{
			Content: content,
			Profile: trace.Fixed(media.Kbps(1100)),
			Player:  core.VBRJoint,
		})
		if err != nil {
			b.Fatal(err)
		}
		avg, err = core.Play(core.Spec{
			Content: content,
			Profile: trace.Fixed(media.Kbps(1100)),
			Player:  core.BestPractice,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(vbr.Metrics.AvgVideoBitrate.Kbps(), "vbr-video-kbps")
	b.ReportMetric(avg.Metrics.AvgVideoBitrate.Kbps(), "declared-video-kbps")
	b.ReportMetric(vbr.Metrics.RebufferTime.Seconds(), "vbr-rebuffer-s")
	b.ReportMetric(avg.Metrics.RebufferTime.Seconds(), "declared-rebuffer-s")
}

// BenchmarkCrossTraffic measures how each player responds to a competing
// flow seizing most of the bottleneck mid-session.
func BenchmarkCrossTraffic(b *testing.B) {
	var results map[string]experiments.CrossTrafficResult
	var err error
	for i := 0; i < b.N; i++ {
		results, err = experiments.CrossTraffic()
		if err != nil {
			b.Fatal(err)
		}
	}
	for name, r := range results {
		b.ReportMetric(r.BeforeKbps-r.DuringKbps, name+"-shed-kbps")
		b.ReportMetric(r.Outcome.Metrics.RebufferTime.Seconds(), name+"-rebuffer-s")
	}
}

// BenchmarkMuxedBaseline contrasts muxed and demuxed packaging with the
// same player: the balance problem disappears, the storage cost appears.
func BenchmarkMuxedBaseline(b *testing.B) {
	var r experiments.MuxedBaselineResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.MuxedBaseline()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Demuxed.Metrics.MaxImbalance.Seconds(), "demuxed-imbalance-s")
	b.ReportMetric(r.Muxed.Metrics.MaxImbalance.Seconds(), "muxed-imbalance-s")
	b.ReportMetric(r.StorageRatio, "muxed-storage-ratio")
}

// BenchmarkChunkDuration quantifies the chunking trade-off under a 100 ms
// request RTT: per-request overhead vs startup delay and sync granularity.
func BenchmarkChunkDuration(b *testing.B) {
	var points []experiments.ChunkDurationPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiments.ChunkDurationSweep([]float64{2, 5, 10})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(p.Outcome.Metrics.StartupDelay.Seconds(), fmt.Sprintf("%gs-startup-s", p.ChunkSeconds))
		b.ReportMetric(p.Outcome.Metrics.Score, fmt.Sprintf("%gs-qoe", p.ChunkSeconds))
	}
}

// BenchmarkContentCuration quantifies §2.1's content-aware curation: the
// same player and link, with generic vs content-appropriate combination
// lists, scored with content-appropriate QoE weights.
func BenchmarkContentCuration(b *testing.B) {
	var results []experiments.CurationResult
	var err error
	for i := 0; i < b.N; i++ {
		results, err = experiments.ContentCuration()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		b.ReportMetric(r.Curated.Metrics.Score-r.Generic.Metrics.Score, r.Content+"-curation-qoe-gain")
	}
}

// BenchmarkSyncGranularity quantifies §4.2's synchronization granularity:
// buffer imbalance and QoE for increasing audio/video skew bounds.
func BenchmarkSyncGranularity(b *testing.B) {
	var points []experiments.SyncGranularityPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiments.SyncGranularity([]int{0, 1, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(p.Outcome.Metrics.MaxImbalance.Seconds(), fmt.Sprintf("window%d-imbalance-s", p.Window))
		b.ReportMetric(p.Outcome.Metrics.Score, fmt.Sprintf("window%d-qoe", p.Window))
	}
}

// BenchmarkBandwidthSweep runs the crossover analysis: every player model
// at each bandwidth of the operating range, reporting where the
// best-practice design's QoE lead is largest.
func BenchmarkBandwidthSweep(b *testing.B) {
	var points []experiments.SweepPoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiments.BandwidthSweep([]float64{600, 1300, 3000})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(p.Outcome.Metrics.Score, fmt.Sprintf("%s@%.0fK-qoe", p.Outcome.Model, p.Kbps))
	}
}

// BenchmarkFleet measures the session-fleet fan-out itself: the same
// bandwidth sweep (7 bandwidths × 8 models = 56 sessions) run serially
// and across GOMAXPROCS runpool workers. The output is byte-identical
// either way (TestParallelEquivalence* in internal/experiments); this
// benchmark tracks the wall-clock speedup.
func BenchmarkFleet(b *testing.B) {
	kbps := experiments.DefaultSweepKbps()
	for _, bc := range []struct {
		name     string
		parallel int
	}{
		{"serial", 1},
		{fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.BandwidthSweepParallel(kbps, bc.parallel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFleetScale measures the multi-session co-simulation: fleets of
// mixed joint players on a shared 24 Mbps uplink hitting one edge cache,
// at increasing scale. Reported metrics track the tentpole claims: QoE
// median, Jain fairness, and the demuxed byte hit ratio at each N.
func BenchmarkFleetScale(b *testing.B) {
	ns := []int{2, 8, 16}
	var points []experiments.FleetScalePoint
	var err error
	for i := 0; i < b.N; i++ {
		points, err = experiments.FleetScale(ns)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		if p.Mode != cdnsim.Demuxed {
			continue
		}
		b.ReportMetric(p.Fleet.Score.Median, fmt.Sprintf("N%d-qoe-median", p.N))
		b.ReportMetric(p.Fleet.JainVideoKbps, fmt.Sprintf("N%d-jain", p.N))
		b.ReportMetric(p.Cache.ByteHitRatio(), fmt.Sprintf("N%d-byte-hit", p.N))
	}
}

// BenchmarkFleetStream measures the sharded streaming path that takes the
// co-simulation to N=100k: 16-session contention cells, calendar-queue
// engines, sketch aggregation (memory O(shards + sketch), no per-session
// retention). N here is kept small enough for the benchmem smoke; the
// fleet-1e3/1e4/1e5 wall-clock rows live in BENCH_*.json via benchjson.
func BenchmarkFleetStream(b *testing.B) {
	const n = 96
	var res *fleet.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.FleetAtScale(n, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Cells), "cells")
	b.ReportMetric(res.Fleet.Score.Median, "qoe-median")
	b.ReportMetric(res.Fleet.JainVideoKbps, "jain")
	b.ReportMetric(float64(len(res.Sampled)), "sampled-rows")
}

// BenchmarkFleetTransport prices the transport layer's connection
// bookkeeping on the same streaming fleet as BenchmarkFleetStream: every
// session runs its requests through H1 connections (the most stateful
// protocol — two conns per session, keep-alive clocks, resume pricing).
// Compare against BenchmarkFleetStream for the overhead; the
// transport-h1/h2/h3 N=1e3 wall-clock rows live in BENCH_*.json.
func BenchmarkFleetTransport(b *testing.B) {
	const n = 96
	var res *fleet.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.FleetAtScaleTransport(n, 0, netsim.H1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Cells), "cells")
	b.ReportMetric(res.Fleet.Score.Median, "qoe-median")
}

// BenchmarkLiveSession prices the live machinery on one latency-target
// session: availability gating, the 500 ms controller cadence, and the
// LoL+ low-latency rule, on the varying-600 link. Compare against the
// session-recorder-off row in BENCH_*.json for the live overhead; the
// live-1e3 fleet wall-clock row lives there too via benchjson.
func BenchmarkLiveSession(b *testing.B) {
	var sess *core.Session
	for i := 0; i < b.N; i++ {
		var err error
		sess, err = core.Play(core.Spec{
			Profile: trace.Fig3VaryingAvg600(),
			Player:  core.LLLoLP,
			Live:    experiments.LiveConfig(),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sess.Result.Live.MeanLatency.Seconds(), "mean-latency-s")
	b.ReportMetric(float64(sess.Result.Live.RateChanges), "rate-changes")
	b.ReportMetric(float64(sess.Metrics.StallCount), "stalls")
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
