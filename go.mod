module demuxabr

go 1.22
