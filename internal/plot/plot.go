// Package plot renders time series as ASCII charts — a dependency-free way
// to look at the paper's figures (buffer levels, bandwidth estimates, track
// selections) straight in the terminal.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	// Name labels the series in the legend.
	Name string
	// Values are uniform samples left to right.
	Values []float64
	// Marker is the glyph used for this series (assigned from a default
	// cycle when zero).
	Marker byte
}

var defaultMarkers = []byte{'*', '+', 'o', 'x', '#'}

// Chart renders the series into a width×height character grid with a
// y-axis, an x-range footer and a legend. Series are downsampled (mean per
// column) to the chart width.
func Chart(w io.Writer, title string, width, height int, xMax float64, series ...Series) error {
	if width < 10 || height < 3 {
		return fmt.Errorf("plot: chart too small (%dx%d)", width, height)
	}
	if len(series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return fmt.Errorf("plot: empty series")
	}
	if hi <= lo {
		hi = lo + 1
	}
	if lo > 0 && lo < hi/4 {
		lo = 0 // anchor near-zero ranges at zero for readability
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		cols := downsample(s.Values, width)
		for x, v := range cols {
			if math.IsNaN(v) {
				continue
			}
			y := int(math.Round((v - lo) / (hi - lo) * float64(height-1)))
			if y < 0 {
				y = 0
			}
			if y >= height {
				y = height - 1
			}
			grid[height-1-y][x] = marker
		}
	}

	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	for i, row := range grid {
		label := ""
		switch i {
		case 0:
			label = fmt.Sprintf("%8.1f", hi)
		case height - 1:
			label = fmt.Sprintf("%8.1f", lo)
		default:
			label = strings.Repeat(" ", 8)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, row); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width)); err != nil {
		return err
	}
	var legend []string
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		legend = append(legend, fmt.Sprintf("%c %s", marker, s.Name))
	}
	_, err := fmt.Fprintf(w, "%s 0 .. %.1f   %s\n", strings.Repeat(" ", 8), xMax, strings.Join(legend, "   "))
	return err
}

// downsample reduces values to n columns by averaging; empty buckets are
// NaN.
func downsample(values []float64, n int) []float64 {
	out := make([]float64, n)
	if len(values) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	for i := 0; i < n; i++ {
		loIdx := i * len(values) / n
		hiIdx := (i + 1) * len(values) / n
		if hiIdx <= loIdx {
			hiIdx = loIdx + 1
		}
		if hiIdx > len(values) {
			hiIdx = len(values)
		}
		if loIdx >= len(values) {
			out[i] = math.NaN()
			continue
		}
		var sum float64
		for _, v := range values[loIdx:hiIdx] {
			sum += v
		}
		out[i] = sum / float64(hiIdx-loIdx)
	}
	return out
}

// Steps renders a categorical step chart: one row per category, a mark in
// every column where the series is in that category — the shape of the
// paper's track-selection figures.
func Steps(w io.Writer, title string, width int, xMax float64, categories []string, values []string) error {
	if len(categories) == 0 {
		return fmt.Errorf("plot: no categories")
	}
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	// Downsample by majority per column.
	cols := make([]string, width)
	for i := 0; i < width; i++ {
		loIdx := i * len(values) / width
		hiIdx := (i + 1) * len(values) / width
		if hiIdx <= loIdx {
			hiIdx = loIdx + 1
		}
		if hiIdx > len(values) {
			hiIdx = len(values)
		}
		if loIdx >= len(values) {
			continue
		}
		counts := map[string]int{}
		best, bestN := "", 0
		for _, v := range values[loIdx:hiIdx] {
			counts[v]++
			if counts[v] > bestN {
				best, bestN = v, counts[v]
			}
		}
		cols[i] = best
	}
	width = len(cols)
	maxName := 0
	for _, c := range categories {
		if len(c) > maxName {
			maxName = len(c)
		}
	}
	for i := len(categories) - 1; i >= 0; i-- {
		cat := categories[i]
		row := make([]byte, width)
		for x := range row {
			if cols[x] == cat {
				row[x] = '#'
			} else {
				row[x] = ' '
			}
		}
		if _, err := fmt.Fprintf(w, "%*s |%s\n", maxName, cat, row); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%*s +%s\n", maxName, "", strings.Repeat("-", width)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%*s 0 .. %.1f\n", maxName, "", xMax)
	return err
}
