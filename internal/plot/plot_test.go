package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	var buf bytes.Buffer
	err := Chart(&buf, "buffers", 40, 8, 300,
		Series{Name: "video", Values: []float64{0, 5, 10, 20, 30, 30, 25, 10, 0}},
		Series{Name: "audio", Values: []float64{0, 8, 16, 24, 30, 28, 20, 8, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "buffers") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* video") || !strings.Contains(out, "+ audio") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "30.0") || !strings.Contains(out, "0.0") {
		t.Errorf("missing y labels:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + footer
	if len(lines) != 1+8+1+1 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "0 .. 300.0") {
		t.Errorf("missing x range:\n%s", out)
	}
}

func TestChartErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Chart(&buf, "", 5, 2, 1, Series{Values: []float64{1}}); err == nil {
		t.Error("tiny chart should fail")
	}
	if err := Chart(&buf, "", 40, 8, 1); err == nil {
		t.Error("no series should fail")
	}
	if err := Chart(&buf, "", 40, 8, 1, Series{Name: "x"}); err == nil {
		t.Error("empty series should fail")
	}
}

func TestChartFlatSeries(t *testing.T) {
	// The Fig 4(a) flat estimate: constant values must render mid-range
	// without dividing by zero.
	var buf bytes.Buffer
	if err := Chart(&buf, "", 30, 5, 300, Series{Name: "est", Values: []float64{500, 500, 500}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Error("flat series not drawn")
	}
}

func TestDownsample(t *testing.T) {
	got := downsample([]float64{1, 1, 3, 3}, 2)
	if got[0] != 1 || got[1] != 3 {
		t.Errorf("downsample = %v", got)
	}
	got = downsample(nil, 3)
	for _, v := range got {
		if !math.IsNaN(v) {
			t.Errorf("empty input should give NaN columns: %v", got)
		}
	}
	// Upsampling (fewer values than columns) must not panic and must keep
	// values in range.
	got = downsample([]float64{2, 4}, 5)
	for _, v := range got {
		if !math.IsNaN(v) && (v < 2 || v > 4) {
			t.Errorf("upsample out of range: %v", got)
		}
	}
}

func TestSteps(t *testing.T) {
	var buf bytes.Buffer
	values := []string{"V1", "V1", "V2", "V2", "V3", "V3", "V2", "V2"}
	err := Steps(&buf, "video track", 16, 300, []string{"V1", "V2", "V3"}, values)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, cat := range []string{"V1", "V2", "V3"} {
		if !strings.Contains(out, cat+" |") {
			t.Errorf("missing category row %s:\n%s", cat, out)
		}
	}
	// The top row (V3) must have marks only in the middle region.
	lines := strings.Split(out, "\n")
	var v3row, v1row string
	for _, l := range lines {
		if strings.HasPrefix(l, "V3 |") {
			v3row = l
		}
		if strings.HasPrefix(l, "V1 |") {
			v1row = l
		}
	}
	if !strings.Contains(v3row, "#") || !strings.Contains(v1row, "#") {
		t.Errorf("rows missing marks:\n%s", out)
	}
	if strings.HasPrefix(strings.TrimPrefix(v3row, "V3 |"), "#") {
		t.Errorf("V3 marked at t=0:\n%s", out)
	}
}

func TestStepsErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Steps(&buf, "", 10, 1, nil, nil); err == nil {
		t.Error("no categories should fail")
	}
}
