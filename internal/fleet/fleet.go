// Package fleet co-simulates many adaptive streaming sessions on one
// discrete-event engine: each client gets its own access link behind a
// shared edge uplink (two-tier topology, weighted max-min fair), every
// session's chunk requests pass through one shared CDN edge cache, and
// arrivals are staggered over a seeded window — the multi-client regime
// where the paper's best practices (demuxed packaging, joint adaptation)
// meet contention and cache sharing.
//
// A fleet run is fully deterministic in its Config: the engine orders all
// events, arrivals are drawn from a seeded generator, and per-session
// fault plans derive from the fleet seed — so fleets can be fanned out
// across runpool workers and still reproduce byte-identical reports.
package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"demuxabr/internal/cdnsim"
	"demuxabr/internal/core"
	"demuxabr/internal/faults"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/report"
	"demuxabr/internal/stats"
	"demuxabr/internal/timeline"
	"demuxabr/internal/trace"
)

// Config parameterizes one fleet co-simulation.
type Config struct {
	// Content is the asset every session streams (default: the paper's
	// drama show).
	Content *media.Content
	// Sessions is the fleet size (required, > 0).
	Sessions int
	// Mix assigns player models round-robin across sessions (session i
	// runs Mix[i % len(Mix)]). Default: every session runs BestPractice.
	Mix []core.PlayerKind
	// Manifest controls the server-side declarations each model sees.
	Manifest core.ManifestOptions
	// Mode is the packaging at the shared edge: demuxed track objects or
	// muxed combination objects. Muxed requires every Mix entry to be a
	// joint model.
	Mode cdnsim.Mode
	// CacheBytes sizes the shared edge cache (default 256 MiB).
	CacheBytes int64
	// MissPenalty is the extra first-byte delay a session pays when its
	// request misses the edge cache and the edge fetches from the origin.
	// Zero keeps the cache accounting without the latency coupling.
	MissPenalty time.Duration
	// UplinkProfile is the shared edge uplink capacity (required).
	UplinkProfile trace.Profile
	// AccessProfile is each client's access-link capacity (default: a
	// generous 100 Mbps, making the shared uplink the bottleneck).
	AccessProfile trace.Profile
	// ArrivalSpread staggers session starts uniformly (seeded) over
	// [0, ArrivalSpread). Zero starts everyone at once.
	ArrivalSpread time.Duration
	// Seed drives the arrival draws and offsets per-session fault plans.
	Seed int64
	// FaultPlan, when set, injects per-session download faults: session i
	// runs a copy of the plan reseeded with the fleet seed and its ID, so
	// different clients see different (but reproducible) faults. Demuxed
	// mode only.
	FaultPlan *faults.Plan
	// Robustness is the per-session retry/failover policy.
	Robustness *faults.Policy
	// MaxBuffer overrides the player buffer cap when non-zero.
	MaxBuffer time.Duration
	// Deadline overrides the per-session abort deadline when non-zero.
	Deadline time.Duration
	// MaxEvents bounds the whole co-simulation (default 20 million plus
	// 2 million per session).
	MaxEvents int
	// Timeline attaches a flight recorder to every session (plus one for
	// the shared uplink and cache): the Result carries the recorders for
	// JSONL / Chrome-trace export and the Report gains aggregate counters.
	Timeline bool
}

// SessionResult is one session's outcome within a fleet.
type SessionResult struct {
	// ID is the session's index (also its arrival rank).
	ID int
	// Kind is the player model the session ran.
	Kind core.PlayerKind
	// Arrival is the engine time the session started.
	Arrival time.Duration
	// Result is the session's full recorded timeline (session-relative
	// times, as a solo run would produce).
	Result *player.Result
	// Metrics are the session's QoE numbers.
	Metrics qoe.Metrics
	// Cache is the session's slice of the shared-edge accounting.
	Cache cdnsim.Stats
}

// Result is one finished fleet co-simulation.
type Result struct {
	// Mode is the packaging the shared edge served.
	Mode cdnsim.Mode
	// Sessions holds per-session outcomes, in session-ID order.
	Sessions []SessionResult
	// Completed counts sessions that played to the end.
	Completed int
	// Cache is the shared edge cache's aggregate accounting.
	Cache cdnsim.Stats
	// Fleet aggregates the per-session metrics (distributions, Jain).
	Fleet qoe.FleetMetrics
	// Recorders holds the flight recorders when Config.Timeline was set:
	// one per session in ID order, then the shared uplink's. Nil otherwise.
	Recorders []*timeline.Recorder
}

func (c *Config) setDefaults() error {
	if c.Sessions <= 0 {
		return fmt.Errorf("fleet: session count %d, want > 0", c.Sessions)
	}
	if c.UplinkProfile == nil {
		return errors.New("fleet: nil uplink profile")
	}
	if c.Content == nil {
		c.Content = media.DramaShow()
	}
	if len(c.Mix) == 0 {
		c.Mix = []core.PlayerKind{core.BestPractice}
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.AccessProfile == nil {
		c.AccessProfile = trace.Fixed(media.Kbps(100_000))
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 20_000_000 + 2_000_000*c.Sessions
	}
	if c.Mode == cdnsim.Muxed && c.FaultPlan != nil {
		return errors.New("fleet: fault injection requires demuxed mode")
	}
	if c.ArrivalSpread < 0 {
		return fmt.Errorf("fleet: negative arrival spread %v", c.ArrivalSpread)
	}
	return nil
}

// arrivals draws the fleet's seeded start times: Sessions uniform draws
// over [0, ArrivalSpread), sorted so session ID equals arrival rank.
func (c *Config) arrivals() []time.Duration {
	at := make([]time.Duration, c.Sessions)
	if c.ArrivalSpread <= 0 {
		return at
	}
	rng := rand.New(rand.NewSource(c.Seed))
	for i := range at {
		at[i] = time.Duration(rng.Int63n(int64(c.ArrivalSpread)))
	}
	sort.Slice(at, func(i, j int) bool { return at[i] < at[j] })
	return at
}

// sessionPlan derives session i's fault plan from the fleet plan: same
// knobs, a seed offset by the session ID so clients fail independently but
// reproducibly.
func (c *Config) sessionPlan(i int) *faults.Plan {
	if c.FaultPlan == nil {
		return nil
	}
	plan := *c.FaultPlan
	plan.Seed = c.FaultPlan.Seed + int64(i+1)*1_000_003
	return &plan
}

// Run executes the co-simulation: N sessions share one engine, a two-tier
// bottleneck (per-session access leaves behind one uplink) and one edge
// cache, arriving per the seeded schedule. It returns when every session
// has finished or aborted.
func Run(cfg Config) (*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	eng := netsim.NewEngine()
	up := netsim.NewUplink(eng, cfg.UplinkProfile)
	edge := cdnsim.NewEdge(cdnsim.NewCache(cfg.CacheBytes), cfg.Mode, cfg.Content, cfg.Sessions)
	arrive := cfg.arrivals()

	var recs []*timeline.Recorder
	var upRec *timeline.Recorder
	if cfg.Timeline {
		recs = make([]*timeline.Recorder, cfg.Sessions)
		for i := range recs {
			recs[i] = timeline.New(i, fmt.Sprintf("s%d %s", i, cfg.Mix[i%len(cfg.Mix)]))
		}
		upRec = timeline.New(cfg.Sessions, "uplink")
		up.SetRecorder(upRec, "uplink")
		// Cache outcomes land in the requesting session's recorder; the
		// edge calls the observer from inside the engine loop, so ordering
		// is deterministic.
		edge.Observer = func(session int, key string, size int64, hit bool) {
			kind := timeline.CacheMiss
			if hit {
				kind = timeline.CacheHit
			}
			recs[session].Emit(timeline.Event{
				At: eng.Now(), Kind: kind, Index: -1, Detail: key, Bytes: size,
			})
		}
	}

	kinds := make([]core.PlayerKind, cfg.Sessions)
	sessions := make([]*player.Session, cfg.Sessions)
	allowed := make([][]media.Combo, cfg.Sessions)
	errs := make([]error, cfg.Sessions)

	for i := 0; i < cfg.Sessions; i++ {
		i := i
		kinds[i] = cfg.Mix[i%len(cfg.Mix)]
		model, combos, err := core.BuildModel(kinds[i], cfg.Content, cfg.Manifest)
		if err != nil {
			return nil, fmt.Errorf("fleet: session %d (%s): %w", i, kinds[i], err)
		}
		allowed[i] = combos
		leaf := up.NewLeaf(cfg.AccessProfile)
		pcfg := player.Config{
			Content:    cfg.Content,
			Model:      model,
			Muxed:      cfg.Mode == cdnsim.Muxed,
			MaxBuffer:  cfg.MaxBuffer,
			Deadline:   cfg.Deadline,
			MaxEvents:  cfg.MaxEvents,
			FaultPlan:  cfg.sessionPlan(i),
			Robustness: cfg.Robustness,
			Recorder:   recFor(recs, i),
			OnRequest: func(req player.ChunkRequest) time.Duration {
				var hit bool
				if req.MuxedWith != nil {
					hit = edge.RequestMuxed(i, req.Track, req.MuxedWith, req.Index)
				} else {
					hit = edge.RequestTrack(i, req.Track, req.Index)
				}
				if hit {
					return 0
				}
				return cfg.MissPenalty
			},
		}
		eng.Schedule(arrive[i], func() {
			s, err := player.Start(leaf, leaf, pcfg)
			if err != nil {
				errs[i] = err
				return
			}
			sessions[i] = s
		})
	}

	if err := eng.Run(cfg.MaxEvents); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fleet: session %d (%s): %w", i, kinds[i], err)
		}
	}

	res := &Result{Mode: cfg.Mode, Cache: edge.Aggregate()}
	metrics := make([]qoe.Metrics, cfg.Sessions)
	for i := 0; i < cfg.Sessions; i++ {
		s := sessions[i]
		if s == nil || !s.Done() {
			return nil, fmt.Errorf("fleet: session %d (%s) never finished (event budget too small?)", i, kinds[i])
		}
		r := s.Result()
		metrics[i] = qoe.Compute(r, cfg.Content, allowed[i], qoe.DefaultWeights())
		if r.Ended {
			res.Completed++
		}
		res.Sessions = append(res.Sessions, SessionResult{
			ID:      i,
			Kind:    kinds[i],
			Arrival: arrive[i],
			Result:  r,
			Metrics: metrics[i],
			Cache:   edge.SessionStats(i),
		})
	}
	res.Fleet = qoe.ComputeFleet(metrics)
	if cfg.Timeline {
		res.Recorders = append(append([]*timeline.Recorder(nil), recs...), upRec)
	}
	return res, nil
}

// recFor returns session i's recorder, or nil when recording is off.
func recFor(recs []*timeline.Recorder, i int) *timeline.Recorder {
	if recs == nil {
		return nil
	}
	return recs[i]
}

// Report flattens the fleet result into the stable JSON export schema.
func (r *Result) Report(contentName string) *report.Fleet {
	f := &report.Fleet{
		Content:   contentName,
		Mode:      r.Mode.String(),
		Completed: r.Completed,
		Cache: report.CacheStats{
			Requests:      r.Cache.Requests,
			Hits:          r.Cache.Hits,
			HitRatio:      r.Cache.HitRatio(),
			ByteHitRatio:  r.Cache.ByteHitRatio(),
			BytesServed:   r.Cache.BytesServed,
			BytesOrigin:   r.Cache.BytesOrigin,
			OriginOffload: r.Cache.ByteHitRatio(),
		},
	}
	f.ApplyFleetMetrics(r.Fleet)
	var completed []float64
	for _, s := range r.Sessions {
		if s.Result.Ended {
			completed = append(completed, s.Metrics.Score)
		}
	}
	f.ScoreCompleted = report.FromSummary(stats.Summarize(completed))
	if len(r.Recorders) > 0 {
		var c timeline.Counters
		for _, rec := range r.Recorders {
			c = c.Merge(rec.Counters())
		}
		f.TimelineCounters = report.CountersFrom(c)
	}
	for _, s := range r.Sessions {
		f.PerSession = append(f.PerSession, report.FleetSession{
			ID:            s.ID,
			Model:         string(s.Kind),
			ArrivalS:      s.Arrival.Seconds(),
			Ended:         s.Result.Ended,
			Metrics:       report.MetricsFrom(s.Metrics),
			CacheHitRatio: s.Cache.HitRatio(),
		})
	}
	return f
}
