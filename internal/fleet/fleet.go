// Package fleet co-simulates many adaptive streaming sessions on one
// discrete-event engine: each client gets its own access link behind a
// shared edge uplink (two-tier topology, weighted max-min fair), every
// session's chunk requests pass through one shared CDN edge cache, and
// arrivals are staggered over a seeded window — the multi-client regime
// where the paper's best practices (demuxed packaging, joint adaptation)
// meet contention and cache sharing.
//
// A fleet run is fully deterministic in its Config: the engine orders all
// events, arrivals are drawn from a seeded generator, and per-session
// fault plans derive from the fleet seed — so fleets can be fanned out
// across runpool workers and still reproduce byte-identical reports.
package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"demuxabr/internal/cdnsim"
	"demuxabr/internal/core"
	"demuxabr/internal/faults"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/report"
	"demuxabr/internal/runpool"
	"demuxabr/internal/stats"
	"demuxabr/internal/timeline"
	"demuxabr/internal/trace"
)

// Config parameterizes one fleet co-simulation.
type Config struct {
	// Content is the asset every session streams (default: the paper's
	// drama show).
	Content *media.Content
	// Sessions is the fleet size (required, > 0).
	Sessions int
	// Mix assigns player models round-robin across sessions (session i
	// runs Mix[i % len(Mix)]). Default: every session runs BestPractice.
	Mix []core.PlayerKind
	// Manifest controls the server-side declarations each model sees.
	Manifest core.ManifestOptions
	// Mode is the packaging at the shared edge: demuxed track objects or
	// muxed combination objects. Muxed requires every Mix entry to be a
	// joint model.
	Mode cdnsim.Mode
	// CacheBytes sizes the shared edge cache (default 256 MiB).
	CacheBytes int64
	// MissPenalty is the extra first-byte delay a session pays when its
	// request misses the edge cache and the edge fetches from the origin.
	// Zero keeps the cache accounting without the latency coupling.
	MissPenalty time.Duration
	// UplinkProfile is the shared edge uplink capacity (required).
	UplinkProfile trace.Profile
	// AccessProfile is each client's access-link capacity (default: a
	// generous 100 Mbps, making the shared uplink the bottleneck).
	AccessProfile trace.Profile
	// ArrivalSpread staggers session starts uniformly (seeded) over
	// [0, ArrivalSpread). Zero starts everyone at once.
	ArrivalSpread time.Duration
	// Seed drives the arrival draws and offsets per-session fault plans.
	Seed int64
	// FaultPlan, when set, injects per-session download faults: session i
	// runs a copy of the plan reseeded with the fleet seed and its ID, so
	// different clients see different (but reproducible) faults. Demuxed
	// mode only.
	FaultPlan *faults.Plan
	// Robustness is the per-session retry/failover policy.
	Robustness *faults.Policy
	// Transport, when non-nil, routes every session's requests through
	// transport connections (handshakes, stream caps, HoL coupling; see
	// netsim.Conn). Session i runs a copy reseeded with its ID so loss
	// draws are independent but reproducible. Nil keeps requests directly
	// on the access links.
	Transport *netsim.TransportConfig
	// AccessRTT sets each access link's request round trip; zero keeps
	// the paper's negligible-RTT testbed. Transport costs scale with it.
	AccessRTT time.Duration
	// Live, when non-nil, runs every session in latency-target live mode
	// (availability gating, catch-up rate control, live-edge resync; see
	// player.LiveConfig). Nil keeps the exact VOD behaviour.
	Live *player.LiveConfig
	// MaxBuffer overrides the player buffer cap when non-zero.
	MaxBuffer time.Duration
	// Deadline overrides the per-session abort deadline when non-zero.
	Deadline time.Duration
	// MaxEvents bounds the whole co-simulation (default 20 million plus
	// 2 million per session).
	MaxEvents int
	// Timeline attaches a flight recorder to every session (plus one for
	// the shared uplink and cache): the Result carries the recorders for
	// JSONL / Chrome-trace export and the Report gains aggregate counters.
	Timeline bool
	// CellSessions partitions the fleet into independent contention cells
	// of this many sessions: each cell gets its own engine, uplink, and
	// edge cache (the paper's edge serving one neighborhood), and sessions
	// are assigned to cells by a seeded permutation — a pure function of
	// (Seed, Sessions, CellSessions), never of how the cells are executed.
	// Zero keeps today's behavior: one cell holding the whole fleet.
	CellSessions int
	// Shards caps how many worker engines execute cells concurrently.
	// Sharding is purely an execution knob: cells are dealt round-robin to
	// shards and every aggregate is either merge-order independent or
	// folded in cell-index order, so any Shards value (including the
	// GOMAXPROCS default of 0) produces byte-identical output.
	Shards int
	// SampleTimelines thins the flight recorder at scale: with k > 1 only
	// every k-th session records (session IDs congruent to Seed mod k),
	// plus the uplink recorder of any cell containing a sampled session.
	// Report timeline counters then cover only the sampled sessions.
	// 0 or 1 records everyone, as before.
	SampleTimelines int
	// MaxRetained bounds whole-Result retention: fleets larger than this
	// stream per-session metrics into mergeable sketches (memory O(shards)
	// instead of O(sessions)) and keep only a seeded reservoir sample of
	// session rows. Zero means DefaultMaxRetained; negative forces
	// streaming at any size.
	MaxRetained int
}

// DefaultMaxRetained is the fleet size beyond which Run switches from exact
// per-session retention to streaming sketch aggregation.
const DefaultMaxRetained = 4096

// sampledRows is how many per-session rows the streaming path retains (a
// deterministic uniform reservoir sample) for the report's per_session
// table.
const sampledRows = 64

// SessionResult is one session's outcome within a fleet.
type SessionResult struct {
	// ID is the session's index (also its arrival rank).
	ID int
	// Kind is the player model the session ran.
	Kind core.PlayerKind
	// Arrival is the engine time the session started.
	Arrival time.Duration
	// Result is the session's full recorded timeline (session-relative
	// times, as a solo run would produce).
	Result *player.Result
	// Metrics are the session's QoE numbers.
	Metrics qoe.Metrics
	// Cache is the session's slice of the shared-edge accounting.
	Cache cdnsim.Stats
}

// SessionSample is the compact per-session row the streaming path retains
// for its reservoir sample: the metrics, not the full Result.
type SessionSample struct {
	ID      int
	Kind    core.PlayerKind
	Arrival time.Duration
	Ended   bool
	Metrics qoe.Metrics
	Cache   cdnsim.Stats
}

// Result is one finished fleet co-simulation.
type Result struct {
	// Mode is the packaging the shared edge served.
	Mode cdnsim.Mode
	// Sessions holds per-session outcomes, in session-ID order. Nil when
	// Streamed: see Sampled.
	Sessions []SessionResult
	// Completed counts sessions that played to the end.
	Completed int
	// Cache is the edge caches' aggregate accounting (summed across cells).
	Cache cdnsim.Stats
	// Fleet aggregates the per-session metrics (distributions, Jain).
	Fleet qoe.FleetMetrics
	// Recorders holds the flight recorders when Config.Timeline was set:
	// sampled sessions in ID order, then the uplink recorder of each cell
	// that contains a sampled session, in cell order. Nil otherwise.
	Recorders []*timeline.Recorder
	// Streamed reports that the run aggregated via sketches instead of
	// retaining every session (Sessions nil, Sampled/CompletedScore set).
	Streamed bool
	// Cells is how many contention cells the fleet was partitioned into.
	Cells int
	// Sampled is the streaming path's deterministic reservoir sample of
	// session rows, in ID order. Nil on the exact path.
	Sampled []SessionSample
	// CompletedScore summarizes completed sessions' scores when Streamed
	// (the exact path recomputes it from Sessions).
	CompletedScore stats.Summary
}

func (c *Config) setDefaults() error {
	if c.Sessions <= 0 {
		return fmt.Errorf("fleet: session count %d, want > 0", c.Sessions)
	}
	if c.UplinkProfile == nil {
		return errors.New("fleet: nil uplink profile")
	}
	if c.Content == nil {
		c.Content = media.DramaShow()
	}
	if len(c.Mix) == 0 {
		c.Mix = []core.PlayerKind{core.BestPractice}
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.AccessProfile == nil {
		c.AccessProfile = trace.Fixed(media.Kbps(100_000))
	}
	if c.Mode == cdnsim.Muxed && c.FaultPlan != nil {
		return errors.New("fleet: fault injection requires demuxed mode")
	}
	if c.ArrivalSpread < 0 {
		return fmt.Errorf("fleet: negative arrival spread %v", c.ArrivalSpread)
	}
	if c.CellSessions < 0 {
		return fmt.Errorf("fleet: negative cell size %d", c.CellSessions)
	}
	if c.CellSessions == 0 || c.CellSessions > c.Sessions {
		c.CellSessions = c.Sessions
	}
	if c.Shards < 0 {
		return fmt.Errorf("fleet: negative shard count %d", c.Shards)
	}
	if c.SampleTimelines < 0 {
		return fmt.Errorf("fleet: negative timeline sampling interval %d", c.SampleTimelines)
	}
	if c.MaxRetained == 0 {
		c.MaxRetained = DefaultMaxRetained
	}
	return nil
}

// cellBudget is the per-cell event budget: the configured MaxEvents, or the
// historical default scaled to the cell's population.
func (c *Config) cellBudget(cellSessions int) int {
	if c.MaxEvents != 0 {
		return c.MaxEvents
	}
	return 20_000_000 + 2_000_000*cellSessions
}

// streaming reports whether this fleet aggregates via sketches.
func (c *Config) streaming() bool { return c.Sessions > c.MaxRetained }

// sampledTimeline reports whether session id records a timeline under the
// sampling interval (every k-th ID, phase derived from the seed).
func (c *Config) sampledTimeline(id int) bool {
	k := c.SampleTimelines
	if k <= 1 {
		return true
	}
	off := int(((c.Seed % int64(k)) + int64(k)) % int64(k))
	return id%k == off
}

// cells assigns session IDs to contention cells: a seeded permutation of
// the fleet is cut into CellSessions-sized chunks, each sorted ascending.
// The assignment is a pure function of (Seed, Sessions, CellSessions) —
// execution order, shard count, and parallelism cannot perturb it. The
// permutation (rather than contiguous ID blocks) mixes player kinds and
// arrival ranks across cells, so every cell is a random sub-population.
func (c *Config) cells() [][]int {
	n, size := c.Sessions, c.CellSessions
	if size >= n {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		return [][]int{ids}
	}
	// A distinct derived seed: the arrival draws consume the raw Seed
	// stream and must stay byte-identical to the pre-cell implementation.
	rng := rand.New(rand.NewSource(c.Seed ^ 0x5eed_ce11))
	perm := rng.Perm(n)
	ncells := (n + size - 1) / size
	cells := make([][]int, ncells)
	for j := range cells {
		lo, hi := j*size, (j+1)*size
		if hi > n {
			hi = n
		}
		cell := perm[lo:hi]
		sort.Ints(cell)
		cells[j] = cell
	}
	return cells
}

// arrivals draws the fleet's seeded start times: Sessions uniform draws
// over [0, ArrivalSpread), sorted so session ID equals arrival rank.
func (c *Config) arrivals() []time.Duration {
	at := make([]time.Duration, c.Sessions)
	if c.ArrivalSpread <= 0 {
		return at
	}
	rng := rand.New(rand.NewSource(c.Seed))
	for i := range at {
		at[i] = time.Duration(rng.Int63n(int64(c.ArrivalSpread)))
	}
	sort.Slice(at, func(i, j int) bool { return at[i] < at[j] })
	return at
}

// sessionPlan derives session i's fault plan from the fleet plan: same
// knobs, a seed offset by the session ID so clients fail independently but
// reproducibly.
func (c *Config) sessionPlan(i int) *faults.Plan {
	if c.FaultPlan == nil {
		return nil
	}
	plan := *c.FaultPlan
	plan.Seed = c.FaultPlan.Seed + int64(i+1)*1_000_003
	return &plan
}

// sessionTransport derives session i's transport config: same knobs, a
// seed offset by the session ID so connection loss draws are independent
// across clients but a pure function of (fleet seed, session ID).
func (c *Config) sessionTransport(i int) *netsim.TransportConfig {
	if c.Transport == nil {
		return nil
	}
	tc := *c.Transport
	tc.Seed = c.Transport.Seed + c.Seed + int64(i+1)*1_000_003
	return &tc
}

// Run executes the co-simulation: sessions are partitioned into contention
// cells (each cell an engine, a two-tier bottleneck, and an edge cache —
// one cell covering the whole fleet by default), cells are dealt
// round-robin to shard workers, and per-shard aggregates are merged in a
// fixed order. It returns when every session has finished or aborted.
// Output is byte-identical for any Shards value; with the default single
// cell it is byte-identical to the original single-engine implementation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	arrive := cfg.arrivals()
	cells := cfg.cells()
	stream := cfg.streaming()

	shards := cfg.Shards
	if shards <= 0 {
		shards = runpool.Workers(0)
	}
	if shards > len(cells) {
		shards = len(cells)
	}

	aggs, err := runpool.Map(shards, shards, func(sh int) (*shardAgg, error) {
		agg := newShardAgg(&cfg, stream)
		for ci := sh; ci < len(cells); ci += shards {
			if err := runCell(&cfg, ci, len(cells), cells[ci], arrive, agg); err != nil {
				return nil, err
			}
		}
		return agg, nil
	})
	if err != nil {
		return nil, err
	}
	return mergeShards(&cfg, stream, len(cells), aggs)
}

// Report flattens the fleet result into the stable JSON export schema.
func (r *Result) Report(contentName string) *report.Fleet {
	f := &report.Fleet{
		Content:   contentName,
		Mode:      r.Mode.String(),
		Completed: r.Completed,
		Cache: report.CacheStats{
			Requests:      r.Cache.Requests,
			Hits:          r.Cache.Hits,
			HitRatio:      r.Cache.HitRatio(),
			ByteHitRatio:  r.Cache.ByteHitRatio(),
			BytesServed:   r.Cache.BytesServed,
			BytesOrigin:   r.Cache.BytesOrigin,
			OriginOffload: r.Cache.ByteHitRatio(),
		},
	}
	f.ApplyFleetMetrics(r.Fleet)
	if r.Streamed {
		// Streaming path: distributions come from the sketches already in
		// r.Fleet; the per-session table is the reservoir sample.
		f.Aggregation = "sketch"
		f.SampledSessions = len(r.Sampled)
		f.ScoreCompleted = report.FromSummary(r.CompletedScore)
		for _, s := range r.Sampled {
			f.PerSession = append(f.PerSession, report.FleetSession{
				ID:            s.ID,
				Model:         string(s.Kind),
				ArrivalS:      s.Arrival.Seconds(),
				Ended:         s.Ended,
				Metrics:       report.MetricsFrom(s.Metrics),
				CacheHitRatio: s.Cache.HitRatio(),
			})
		}
	} else {
		var completed []float64
		for _, s := range r.Sessions {
			if s.Result.Ended {
				completed = append(completed, s.Metrics.Score)
			}
		}
		f.ScoreCompleted = report.FromSummary(stats.Summarize(completed))
		for _, s := range r.Sessions {
			f.PerSession = append(f.PerSession, report.FleetSession{
				ID:            s.ID,
				Model:         string(s.Kind),
				ArrivalS:      s.Arrival.Seconds(),
				Ended:         s.Result.Ended,
				Metrics:       report.MetricsFrom(s.Metrics),
				CacheHitRatio: s.Cache.HitRatio(),
			})
		}
	}
	if r.Cells > 1 {
		f.Cells = r.Cells
	}
	if len(r.Recorders) > 0 {
		var c timeline.Counters
		for _, rec := range r.Recorders {
			c = c.Merge(rec.Counters())
		}
		f.TimelineCounters = report.CountersFrom(c)
	}
	return f
}
