package fleet

import (
	"fmt"
	"sort"
	"time"

	"demuxabr/internal/cdnsim"
	"demuxabr/internal/core"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/stats"
	"demuxabr/internal/timeline"
)

// shardAgg accumulates one shard worker's share of the fleet. Each shard
// runs its cells sequentially, so nothing here is touched concurrently; the
// merge across shards happens after runpool.Map returns them in submission
// order. Everything a shard carries is either merge-order independent
// (sketches, integer counters, the bottom-k reservoir) or tagged with its
// cell index so mergeShards can fold it in cell order — the two properties
// that make the final output independent of the shard count.
type shardAgg struct {
	stream bool

	// Exact path: full per-session rows, sorted by ID at merge time.
	sessions []SessionResult

	// Streaming path: sketches, per-cell Jain partials, reservoir rows.
	acc       *qoe.FleetAccumulator
	jain      []cellJain
	reservoir *stats.Reservoir[SessionSample]

	completed int
	cache     cdnsim.Stats

	// Flight recorders (sampled sessions + per-cell uplinks), each keyed
	// by a globally-unique recorder session index.
	recs   []*timeline.Recorder
	upRecs []*timeline.Recorder

	// jainCur collects the cell currently running.
	jainCur  qoe.JainPartial
	jainCell int
}

type cellJain struct {
	cell    int
	partial qoe.JainPartial
}

func newShardAgg(cfg *Config, stream bool) *shardAgg {
	a := &shardAgg{stream: stream}
	if stream {
		a.acc = qoe.NewFleetAccumulator()
		a.reservoir = stats.NewReservoir[SessionSample](sampledRows, cfg.Seed)
	}
	return a
}

func (a *shardAgg) beginCell(cell int) {
	a.jainCur = qoe.JainPartial{}
	a.jainCell = cell
}

func (a *shardAgg) endCell(cell int, edgeStats cdnsim.Stats) {
	a.cache = a.cache.Plus(edgeStats)
	if a.stream {
		a.jain = append(a.jain, cellJain{cell: a.jainCell, partial: a.jainCur})
	}
}

// addSession records one finished session. On the exact path the full row
// is retained; on the streaming path only the sketches, the cell's Jain
// partial, and (if the seeded reservoir selects it) a compact sample row.
func (a *shardAgg) addSession(s SessionResult) {
	if s.Result.Ended {
		a.completed++
	}
	if !a.stream {
		a.sessions = append(a.sessions, s)
		return
	}
	a.acc.Add(s.Metrics, s.Result.Ended)
	a.jainCur.Observe(s.Metrics.AvgVideoBitrate.Kbps())
	a.reservoir.Add(s.ID, SessionSample{
		ID:      s.ID,
		Kind:    s.Kind,
		Arrival: s.Arrival,
		Ended:   s.Result.Ended,
		Metrics: s.Metrics,
		Cache:   s.Cache,
	})
}

// runCell simulates one contention cell: its own engine, shared uplink, and
// edge cache, populated by the cell's sessions starting at their global
// arrival times. For the default single cell this is, step for step, the
// original whole-fleet loop — the equivalence the shard tests pin.
func runCell(cfg *Config, cellIdx, numCells int, ids []int, arrive []time.Duration, agg *shardAgg) error {
	eng := netsim.NewEngine()
	up := netsim.NewUplink(eng, cfg.UplinkProfile)
	edge := cdnsim.NewEdge(cdnsim.NewCache(cfg.CacheBytes), cfg.Mode, cfg.Content, len(ids))
	budget := cfg.cellBudget(len(ids))
	agg.beginCell(cellIdx)

	var recs []*timeline.Recorder
	var upRec *timeline.Recorder
	if cfg.Timeline {
		anySampled := false
		recs = make([]*timeline.Recorder, len(ids))
		for li, id := range ids {
			if !cfg.sampledTimeline(id) {
				continue // unsampled sessions never allocate a recorder
			}
			recs[li] = timeline.New(id, fmt.Sprintf("s%d %s", id, cfg.Mix[id%len(cfg.Mix)]))
			anySampled = true
		}
		if anySampled {
			label := "uplink"
			if numCells > 1 {
				label = fmt.Sprintf("uplink-c%d", cellIdx)
			}
			// Uplink recorders index after every session ID, in cell order.
			upRec = timeline.New(cfg.Sessions+cellIdx, label)
			up.SetRecorder(upRec, label)
		}
		// Cache outcomes land in the requesting session's recorder; the
		// edge calls the observer from inside the engine loop, so ordering
		// is deterministic.
		edge.Observer = func(session int, key string, size int64, hit bool) {
			rec := recs[session]
			if rec == nil {
				return
			}
			kind := timeline.CacheMiss
			if hit {
				kind = timeline.CacheHit
			}
			rec.Emit(timeline.Event{
				At: eng.Now(), Kind: kind, Index: -1, Detail: key, Bytes: size,
			})
		}
	}

	finished := make([]bool, len(ids))
	errs := make([]error, len(ids))

	for li, id := range ids {
		li, id := li, id
		kind := cfg.Mix[id%len(cfg.Mix)]
		model, combos, err := core.BuildModel(kind, cfg.Content, cfg.Manifest)
		if err != nil {
			return fmt.Errorf("fleet: session %d (%s): %w", id, kind, err)
		}
		leaf := up.NewLeaf(cfg.AccessProfile)
		leaf.RTT = cfg.AccessRTT
		pcfg := player.Config{
			Content:    cfg.Content,
			Model:      model,
			Muxed:      cfg.Mode == cdnsim.Muxed,
			MaxBuffer:  cfg.MaxBuffer,
			Deadline:   cfg.Deadline,
			MaxEvents:  budget,
			FaultPlan:  cfg.sessionPlan(id),
			Robustness: cfg.Robustness,
			Transport:  cfg.sessionTransport(id),
			Live:       cfg.Live,
			Recorder:   recFor(recs, li),
			OnRequest: func(req player.ChunkRequest) time.Duration {
				var hit bool
				if req.MuxedWith != nil {
					hit = edge.RequestMuxed(li, req.Track, req.MuxedWith, req.Index)
				} else {
					hit = edge.RequestTrack(li, req.Track, req.Index)
				}
				if hit {
					return 0
				}
				return cfg.MissPenalty
			},
			// OnDone fires once per session, inside the engine loop, after
			// the Result is final: the streaming path aggregates here and
			// retains nothing, so cell memory tracks the in-flight
			// population rather than the cell total.
			OnDone: func(s *player.Session) {
				finished[li] = true
				r := s.Result()
				agg.addSession(SessionResult{
					ID:      id,
					Kind:    kind,
					Arrival: arrive[id],
					Result:  r,
					Metrics: qoe.Compute(r, cfg.Content, combos, qoe.DefaultWeights()),
					Cache:   edge.SessionStats(li),
				})
			},
		}
		eng.Schedule(arrive[id], func() {
			if _, err := player.Start(leaf, leaf, pcfg); err != nil {
				errs[li] = err
			}
		})
	}

	if err := eng.Run(budget); err != nil {
		return err
	}
	for li, err := range errs {
		if err != nil {
			return fmt.Errorf("fleet: session %d (%s): %w", ids[li], cfg.Mix[ids[li]%len(cfg.Mix)], err)
		}
	}
	for li := range ids {
		if !finished[li] {
			return fmt.Errorf("fleet: session %d (%s) never finished (event budget too small?)",
				ids[li], cfg.Mix[ids[li]%len(cfg.Mix)])
		}
	}

	agg.endCell(cellIdx, edge.Aggregate())
	if cfg.Timeline {
		for _, rec := range recs {
			if rec != nil {
				agg.recs = append(agg.recs, rec)
			}
		}
		if upRec != nil {
			agg.upRecs = append(agg.upRecs, upRec)
		}
	}
	return nil
}

// recFor returns session li's recorder, or nil when recording is off.
func recFor(recs []*timeline.Recorder, li int) *timeline.Recorder {
	if recs == nil {
		return nil
	}
	return recs[li]
}

// mergeShards folds per-shard aggregates into the final Result. Shards are
// visited in submission order; within that, anything order-sensitive is
// re-sorted by session ID or cell index, so the outcome is a pure function
// of the cell results.
func mergeShards(cfg *Config, stream bool, numCells int, aggs []*shardAgg) (*Result, error) {
	res := &Result{Mode: cfg.Mode, Streamed: stream, Cells: numCells}
	for _, a := range aggs {
		res.Completed += a.completed
		res.Cache = res.Cache.Plus(a.cache)
	}

	if stream {
		acc := qoe.NewFleetAccumulator()
		reservoir := stats.NewReservoir[SessionSample](sampledRows, cfg.Seed)
		var jains []cellJain
		for _, a := range aggs {
			acc.Merge(a.acc)
			reservoir.Merge(a.reservoir)
			jains = append(jains, a.jain...)
		}
		// Jain partials are float sums: fold them in cell-index order so
		// the total is identical no matter which shard ran which cell.
		sort.Slice(jains, func(i, j int) bool { return jains[i].cell < jains[j].cell })
		var jain qoe.JainPartial
		for _, cj := range jains {
			jain = jain.Plus(cj.partial)
		}
		res.Fleet = acc.FleetMetrics(jain.Index())
		res.CompletedScore = acc.ScoreCompleted.Summary()
		res.Sampled = reservoir.Items()
	} else {
		var all []SessionResult
		for _, a := range aggs {
			all = append(all, a.sessions...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
		res.Sessions = all
		metrics := make([]qoe.Metrics, len(all))
		for i, s := range all {
			metrics[i] = s.Metrics
		}
		res.Fleet = qoe.ComputeFleet(metrics)
	}

	if cfg.Timeline {
		var recs, upRecs []*timeline.Recorder
		for _, a := range aggs {
			recs = append(recs, a.recs...)
			upRecs = append(upRecs, a.upRecs...)
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].Session() < recs[j].Session() })
		sort.Slice(upRecs, func(i, j int) bool { return upRecs[i].Session() < upRecs[j].Session() })
		res.Recorders = append(recs, upRecs...)
	}
	return res, nil
}
