package fleet

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"demuxabr/internal/cdnsim"
	"demuxabr/internal/core"
	"demuxabr/internal/faults"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/timeline"
	"demuxabr/internal/trace"
)

func baseConfig(n int) Config {
	return Config{
		Sessions:      n,
		Mode:          cdnsim.Demuxed,
		UplinkProfile: trace.Fixed(media.Kbps(float64(6000 * n))),
		AccessProfile: trace.Fixed(media.Kbps(6000)),
		ArrivalSpread: 20 * time.Second,
		MissPenalty:   60 * time.Millisecond,
		Seed:          17,
	}
}

func fleetJSON(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Report("drama-show").WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

// Same config, same seed → byte-identical fleet reports.
func TestFleetDeterministic(t *testing.T) {
	cfg := baseConfig(4)
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	ja, jb := fleetJSON(t, a), fleetJSON(t, b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("same seed produced different fleet reports:\n%s\n---\n%s", ja, jb)
	}
	if a.Completed != 4 {
		t.Fatalf("Completed = %d, want 4", a.Completed)
	}
}

// A solo fleet over a non-binding uplink behaves exactly like the same
// session on a standalone link: the Session API and two-tier topology must
// not perturb single-player results.
func TestFleetSoloMatchesStandaloneRun(t *testing.T) {
	content := media.DramaShow()
	access := trace.Fixed(media.Kbps(4000))

	res, err := Run(Config{
		Sessions:      1,
		Content:       content,
		Mode:          cdnsim.Demuxed,
		UplinkProfile: trace.Fixed(media.Kbps(1_000_000)),
		AccessProfile: access,
	})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	fs := res.Sessions[0]

	model, combos, err := core.BuildModel(core.BestPractice, content, core.ManifestOptions{})
	if err != nil {
		t.Fatalf("BuildModel: %v", err)
	}
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, access)
	solo, err := player.RunSplit(link, link, player.Config{Content: content, Model: model})
	if err != nil {
		t.Fatalf("solo run: %v", err)
	}
	sm := qoe.Compute(solo, content, combos, qoe.DefaultWeights())

	if fs.Metrics != sm {
		t.Errorf("fleet metrics differ from solo run:\nfleet: %+v\nsolo:  %+v", fs.Metrics, sm)
	}
	if fs.Result.EndedAt != solo.EndedAt || fs.Result.StartupDelay != solo.StartupDelay {
		t.Errorf("timing differs: fleet ended %v startup %v, solo ended %v startup %v",
			fs.Result.EndedAt, fs.Result.StartupDelay, solo.EndedAt, solo.StartupDelay)
	}
	if len(fs.Result.Chunks) != len(solo.Chunks) {
		t.Errorf("chunk counts differ: fleet %d, solo %d", len(fs.Result.Chunks), len(solo.Chunks))
	}
}

// Demuxed packaging at a shared edge: the second session's video requests
// hit the chunks the first session already pulled in, so the fleet's hit
// ratio must exceed a solo run's.
func TestFleetSharedCacheAmplification(t *testing.T) {
	solo := baseConfig(1)
	solo.ArrivalSpread = 0
	one, err := Run(solo)
	if err != nil {
		t.Fatalf("solo: %v", err)
	}
	pair := baseConfig(2)
	two, err := Run(pair)
	if err != nil {
		t.Fatalf("pair: %v", err)
	}
	if two.Cache.Hits <= one.Cache.Hits {
		t.Errorf("shared cache hits did not grow: solo %d, pair %d", one.Cache.Hits, two.Cache.Hits)
	}
	if two.Cache.HitRatio() <= one.Cache.HitRatio() {
		t.Errorf("hit ratio did not amplify: solo %.3f, pair %.3f",
			one.Cache.HitRatio(), two.Cache.HitRatio())
	}
	// Per-session accounting must sum to the aggregate.
	var req, hits int64
	for _, s := range two.Sessions {
		req += s.Cache.Requests
		hits += s.Cache.Hits
	}
	if req != two.Cache.Requests || hits != two.Cache.Hits {
		t.Errorf("per-session sums (%d req, %d hits) != aggregate (%d, %d)",
			req, hits, two.Cache.Requests, two.Cache.Hits)
	}
}

// Mix assigns models round-robin by session index.
func TestFleetMixRoundRobin(t *testing.T) {
	cfg := baseConfig(4)
	cfg.Mix = []core.PlayerKind{core.BestPractice, core.BolaJoint}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []core.PlayerKind{core.BestPractice, core.BolaJoint, core.BestPractice, core.BolaJoint}
	for i, s := range res.Sessions {
		if s.Kind != want[i] {
			t.Errorf("session %d kind = %s, want %s", i, s.Kind, want[i])
		}
	}
	if res.Fleet.Sessions != 4 {
		t.Errorf("Fleet.Sessions = %d, want 4", res.Fleet.Sessions)
	}
	if res.Fleet.JainVideoKbps <= 0 || res.Fleet.JainVideoKbps > 1 {
		t.Errorf("JainVideoKbps = %g outside (0, 1]", res.Fleet.JainVideoKbps)
	}
}

// Staggered arrivals must be sorted and within the spread window; session
// results carry session-relative times regardless of arrival.
func TestFleetArrivalsSortedAndRebased(t *testing.T) {
	cfg := baseConfig(8)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var prev time.Duration = -1
	for _, s := range res.Sessions {
		if s.Arrival < prev {
			t.Fatalf("arrivals not sorted: session %d at %v after %v", s.ID, s.Arrival, prev)
		}
		if s.Arrival < 0 || s.Arrival >= cfg.ArrivalSpread {
			t.Fatalf("session %d arrival %v outside [0, %v)", s.ID, s.Arrival, cfg.ArrivalSpread)
		}
		prev = s.Arrival
		// Session-relative timelines start near zero even for late arrivals.
		if len(s.Result.Timeline) > 0 && s.Result.Timeline[0].At > 2*time.Second {
			t.Errorf("session %d timeline starts at %v: not rebased", s.ID, s.Result.Timeline[0].At)
		}
	}
}

func TestFleetConfigGuards(t *testing.T) {
	if _, err := Run(Config{Sessions: 0, UplinkProfile: trace.Fixed(media.Kbps(1000))}); err == nil {
		t.Error("zero sessions: want error")
	}
	if _, err := Run(Config{Sessions: 2}); err == nil {
		t.Error("nil uplink profile: want error")
	}
	cfg := baseConfig(2)
	cfg.Mode = cdnsim.Muxed
	cfg.FaultPlan = &faults.Plan{Seed: 1, Rate: 0.1}
	if _, err := Run(cfg); err == nil {
		t.Error("muxed + faults: want error")
	}
}

// Per-session fault plans derive from the fleet seed: the fleet stays
// deterministic under injection, and robustness keeps sessions alive.
func TestFleetFaultInjectionDeterministic(t *testing.T) {
	cfg := baseConfig(3)
	cfg.FaultPlan = &faults.Plan{Seed: 5, Rate: 0.05}
	pol := faults.DefaultPolicy()
	cfg.Robustness = &pol
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	if !bytes.Equal(fleetJSON(t, a), fleetJSON(t, b)) {
		t.Fatal("fault-injected fleet not deterministic")
	}
	if a.Completed != 3 {
		t.Fatalf("Completed = %d, want 3 (robust sessions should survive 5%% loss)", a.Completed)
	}
}

// TestTimelineFleetDeterministic pins the fleet flight recorder: with
// Timeline on, two identical runs export byte-identical JSONL and Chrome
// traces, and the recording covers the shared-infrastructure kinds (cache
// outcomes, uplink rate changes) alongside per-session fault handling.
func TestTimelineFleetDeterministic(t *testing.T) {
	cfg := baseConfig(4)
	cfg.Timeline = true
	cfg.FaultPlan = &faults.Plan{Seed: 5, Rate: 0.02}
	pol := faults.DefaultPolicy()
	cfg.Robustness = &pol

	export := func() (jsonl, chrome []byte, res *Result) {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var jb, cb bytes.Buffer
		if err := timeline.WriteJSONL(&jb, res.Recorders); err != nil {
			t.Fatal(err)
		}
		if err := timeline.WriteChromeTrace(&cb, res.Recorders); err != nil {
			t.Fatal(err)
		}
		return jb.Bytes(), cb.Bytes(), res
	}
	ja, ca, res := export()
	jb, cb, _ := export()
	if !bytes.Equal(ja, jb) {
		t.Error("fleet JSONL export differs between identical runs")
	}
	if !bytes.Equal(ca, cb) {
		t.Error("fleet Chrome trace differs between identical runs")
	}
	if !json.Valid(ca) {
		t.Error("fleet Chrome trace is not valid JSON")
	}

	if len(res.Recorders) != cfg.Sessions+1 {
		t.Fatalf("recorders = %d, want %d sessions + uplink", len(res.Recorders), cfg.Sessions+1)
	}
	if got := res.Recorders[cfg.Sessions].Label(); got != "uplink" {
		t.Errorf("last recorder label = %q, want uplink", got)
	}
	kinds := map[timeline.Kind]int{}
	for _, rec := range res.Recorders {
		for _, ev := range rec.Events() {
			kinds[ev.Kind]++
		}
	}
	for _, kind := range []timeline.Kind{
		timeline.Decision, timeline.Request, timeline.RequestDone,
		timeline.CacheHit, timeline.CacheMiss, timeline.FaultInjected,
		timeline.Retry, timeline.LinkRate,
	} {
		if kinds[kind] == 0 {
			t.Errorf("fleet recorded no %s events", kind)
		}
	}
	// The report surfaces the merged counters.
	doc := res.Report("drama-show")
	if doc.TimelineCounters == nil || doc.TimelineCounters.Events == 0 {
		t.Error("fleet report missing timeline counters")
	}
	if doc.TimelineCounters != nil && doc.TimelineCounters.CacheHits == 0 {
		t.Error("fleet counters missing cache hits")
	}
}

// TestTimelineOffLeavesNoRecorders guards the default path: without
// Timeline, the result carries no recorders and the report no counters —
// and with sampled timelines, unsampled sessions never allocate one either.
func TestTimelineOffLeavesNoRecorders(t *testing.T) {
	res, err := Run(baseConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorders != nil {
		t.Error("recorders attached without Timeline")
	}
	if res.Report("drama-show").TimelineCounters != nil {
		t.Error("report has counters without Timeline")
	}

	// Sampled case: with k larger than the fleet and a phase that selects
	// only session (Seed mod k), exactly one session records; the other
	// sessions must skip recorder allocation entirely, not carry empty
	// recorders.
	cfg := baseConfig(4)
	cfg.Timeline = true
	cfg.SampleTimelines = 4
	sampledID := int(cfg.Seed % 4)
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recorders) != 2 { // one sampled session + its cell's uplink
		t.Fatalf("%d recorders with 1-in-4 sampling over 4 sessions, want 2", len(res.Recorders))
	}
	if got := res.Recorders[0].Session(); got != sampledID {
		t.Errorf("sampled session %d, want %d (seed-derived phase)", got, sampledID)
	}
	if res.Recorders[1].Label() != "uplink" {
		t.Errorf("second recorder %q, want the uplink", res.Recorders[1].Label())
	}
	if res.Report("drama-show").TimelineCounters == nil {
		t.Error("sampled run lost its counters")
	}
}

// TestAllAbortFleetExport is the regression test for the NaN export bug: a
// fleet where every session aborts has an empty completed-score
// distribution, whose NaN summary used to kill the whole JSON export.
func TestAllAbortFleetExport(t *testing.T) {
	cfg := baseConfig(2)
	cfg.UplinkProfile = trace.Fixed(media.Kbps(80)) // starve everyone
	cfg.AccessProfile = trace.Fixed(media.Kbps(80))
	cfg.ArrivalSpread = 0
	cfg.Deadline = 30 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 0 {
		t.Fatalf("Completed = %d, want 0 (config no longer starves the fleet)", res.Completed)
	}
	data := fleetJSON(t, res)
	if !json.Valid(data) {
		t.Fatalf("all-abort fleet report is not valid JSON:\n%s", data)
	}
	if !bytes.Contains(data, []byte(`"qoe_score_completed"`)) {
		t.Error("report missing qoe_score_completed distribution")
	}
	if !bytes.Contains(data, []byte(`"median": null`)) && !bytes.Contains(data, []byte(`"median":null`)) {
		t.Error("empty distribution's NaN median not exported as null")
	}
}
