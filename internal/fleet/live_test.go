package fleet

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"demuxabr/internal/core"
	"demuxabr/internal/player"
)

// liveConfig is cellConfig with every session in latency-target live mode
// running the low-latency trio.
func liveConfig(n int) Config {
	cfg := cellConfig(n)
	cfg.Mix = []core.PlayerKind{core.LLDefault, core.LLL2A, core.LLLoLP}
	cfg.Live = &player.LiveConfig{
		LatencyTarget: 4 * time.Second,
		PartTarget:    time.Second,
	}
	return cfg
}

// TestFleetShardEquivalenceLive re-pins the shard-count contract with live
// mode on: the latency aggregates ride a mergeable sketch and an integer
// resync total, so -shards 1 and -shards 4 must stay byte-identical on both
// the exact and the streaming aggregation paths.
func TestFleetShardEquivalenceLive(t *testing.T) {
	for _, tc := range []struct {
		name     string
		retained int
	}{
		{"exact", 0},
		{"streaming", -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var ref []byte
			for _, shards := range []int{1, 2, 4} {
				cfg := liveConfig(32)
				cfg.MaxRetained = tc.retained
				cfg.Shards = shards
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if res.Fleet.Live == nil {
					t.Fatalf("shards=%d: live fleet carried no live aggregates", shards)
				}
				got := fleetJSON(t, res)
				if ref == nil {
					ref = got
					continue
				}
				if !bytes.Equal(ref, got) {
					t.Fatalf("shards=%d live fleet JSON differs from shards=1 (%d vs %d bytes)",
						shards, len(got), len(ref))
				}
			}
		})
	}
}

// TestFleetLiveAggregates checks the live fleet report carries the latency
// distribution and that every session produced live accounting.
func TestFleetLiveAggregates(t *testing.T) {
	res, err := Run(liveConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fleet.Live == nil {
		t.Fatal("live fleet has no live aggregates")
	}
	if got := res.Fleet.Live.LatencySeconds.Mean; got <= 0 {
		t.Fatalf("mean live-edge latency %v, want > 0", got)
	}
	for _, s := range res.Sessions {
		if s.Metrics.Live == nil {
			t.Fatalf("session %d (%s) carried no live metrics", s.ID, s.Kind)
		}
		if s.Metrics.Live.MeanLatency <= 0 {
			t.Fatalf("session %d: mean latency %v, want > 0", s.ID, s.Metrics.Live.MeanLatency)
		}
	}
	var doc map[string]any
	if err := json.Unmarshal(fleetJSON(t, res), &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["live"]; !ok {
		t.Fatal(`live fleet JSON has no "live" key`)
	}
}

// TestFleetZeroCostLive is the fleet half of the live-off contract: a VOD
// fleet must serialize without any live key — the document shape cannot
// change for existing users when the subsystem is off.
func TestFleetZeroCostLive(t *testing.T) {
	res, err := Run(cellConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fleet.Live != nil {
		t.Fatal("VOD fleet unexpectedly carried live aggregates")
	}
	raw := fleetJSON(t, res)
	if bytes.Contains(raw, []byte(`"live"`)) {
		t.Fatal(`VOD fleet JSON contains a "live" key`)
	}
	for _, s := range res.Sessions {
		if s.Metrics.Live != nil {
			t.Fatalf("VOD session %d carried live metrics", s.ID)
		}
	}
}
