package fleet

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/trace"
)

// cellConfig is baseConfig cut into 8-session contention cells: each cell
// gets a bottleneck sized like an 8-session baseConfig fleet, so the cells
// genuinely contend internally.
func cellConfig(n int) Config {
	cfg := baseConfig(n)
	cfg.CellSessions = 8
	cfg.UplinkProfile = trace.Fixed(media.Kbps(6000 * 8))
	return cfg
}

// TestFleetShardEquivalence is the tentpole's determinism pin (and the
// check.sh gate): at N=32 with 8-session cells, -shards 1 and -shards 4
// must produce byte-identical fleet JSON, on both the exact-retention path
// and the streaming sketch path.
func TestFleetShardEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name     string
		retained int
	}{
		{"exact", 0},      // default threshold: 32 sessions are retained
		{"streaming", -1}, // force the sketch path at N=32
	} {
		t.Run(tc.name, func(t *testing.T) {
			var ref []byte
			for _, shards := range []int{1, 2, 4, 32} {
				cfg := cellConfig(32)
				cfg.MaxRetained = tc.retained
				cfg.Shards = shards
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				got := fleetJSON(t, res)
				if ref == nil {
					ref = got
					continue
				}
				if !bytes.Equal(ref, got) {
					t.Fatalf("shards=%d fleet JSON differs from shards=1 (%d vs %d bytes)",
						shards, len(got), len(ref))
				}
			}
		})
	}
}

// TestFleetCellAssignmentPure pins that cell assignment depends only on
// (Seed, Sessions, CellSessions): a permutation cut into sorted chunks that
// partitions exactly the ID set, reproducibly.
func TestFleetCellAssignmentPure(t *testing.T) {
	cfg := cellConfig(50)
	if err := cfg.setDefaults(); err != nil {
		t.Fatal(err)
	}
	a, b := cfg.cells(), cfg.cells()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("cell assignment not reproducible")
	}
	seen := map[int]bool{}
	for _, cell := range a {
		for i := 1; i < len(cell); i++ {
			if cell[i] <= cell[i-1] {
				t.Fatalf("cell %v not strictly ascending", cell)
			}
		}
		for _, id := range cell {
			if seen[id] {
				t.Fatalf("session %d assigned twice", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != 50 {
		t.Fatalf("%d sessions assigned, want 50", len(seen))
	}
	other := cellConfig(50)
	other.Seed = 99
	if err := other.setDefaults(); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, other.cells()) {
		t.Fatal("different seeds produced identical cell permutations")
	}
}

// TestFleetStreamingMatchesExactWithinError runs the same fleet on both
// aggregation paths and checks the sketch distributions stay within their
// documented error of the exact ones (Jain and the integer counters must be
// exact, minus float fold-order noise in Jain).
func TestFleetStreamingMatchesExactWithinError(t *testing.T) {
	cfg := cellConfig(32)
	exact, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgS := cellConfig(32)
	cfgS.MaxRetained = -1
	streamed, err := Run(cfgS)
	if err != nil {
		t.Fatal(err)
	}
	if !streamed.Streamed || streamed.Sessions != nil {
		t.Fatal("forced streaming run still retained sessions")
	}
	if exact.Completed != streamed.Completed {
		t.Fatalf("completed %d vs %d", exact.Completed, streamed.Completed)
	}
	if exact.Cache != streamed.Cache {
		t.Fatalf("cache stats diverged: %+v vs %+v", exact.Cache, streamed.Cache)
	}
	if d := math.Abs(exact.Fleet.JainVideoKbps - streamed.Fleet.JainVideoKbps); d > 1e-9 {
		t.Fatalf("jain diverged by %v", d)
	}
	// Sketch bin widths: 2.5e-3 score, 2.5 kbps, 0.5 s rebuffer, 50 ms startup.
	checks := []struct {
		name       string
		exact, got float64
		bound      float64
	}{
		{"score median", exact.Fleet.Score.Median, streamed.Fleet.Score.Median, 2.5e-3},
		{"score p90", exact.Fleet.Score.P90, streamed.Fleet.Score.P90, 2.5e-3},
		{"video median", exact.Fleet.VideoKbps.Median, streamed.Fleet.VideoKbps.Median, 2.5},
		{"audio median", exact.Fleet.AudioKbps.Median, streamed.Fleet.AudioKbps.Median, 2.5},
		{"rebuffer p90", exact.Fleet.RebufferSeconds.P90, streamed.Fleet.RebufferSeconds.P90, 0.5},
		{"startup median", exact.Fleet.StartupSeconds.Median, streamed.Fleet.StartupSeconds.Median, 0.05},
	}
	for _, c := range checks {
		if d := math.Abs(c.exact - c.got); d > c.bound+1e-9 {
			t.Errorf("%s: exact %.4f sketch %.4f, error %.4f > bound %.4f", c.name, c.exact, c.got, d, c.bound)
		}
	}
	// Exact extremes survive sketching bit-for-bit.
	if exact.Fleet.VideoKbps.Min != streamed.Fleet.VideoKbps.Min ||
		exact.Fleet.VideoKbps.Max != streamed.Fleet.VideoKbps.Max {
		t.Error("sketch min/max not exact")
	}
	// The reservoir rows must be real sessions: every sampled ID's metrics
	// must equal the exact run's row for that ID.
	byID := map[int]SessionResult{}
	for _, s := range exact.Sessions {
		byID[s.ID] = s
	}
	if len(streamed.Sampled) != 32 {
		t.Fatalf("sampled %d rows, want all 32 (fleet smaller than reservoir)", len(streamed.Sampled))
	}
	for _, s := range streamed.Sampled {
		ref, ok := byID[s.ID]
		if !ok {
			t.Fatalf("sampled unknown session %d", s.ID)
		}
		if s.Metrics != ref.Metrics || s.Kind != ref.Kind || s.Ended != ref.Result.Ended {
			t.Fatalf("sampled row %d diverges from exact run", s.ID)
		}
	}
}

// TestFleetMultiCellSoloEquivalence pins the cell decomposition itself:
// with CellSessions=1 and no cache/uplink sharing possible, each session
// must match its own standalone single-session fleet exactly.
func TestFleetMultiCellSoloEquivalence(t *testing.T) {
	cfg := baseConfig(3)
	cfg.ArrivalSpread = 0
	cfg.CellSessions = 1
	cfg.UplinkProfile = trace.Fixed(media.Kbps(6000))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != 3 {
		t.Fatalf("cells=%d, want 3", res.Cells)
	}
	solo := baseConfig(1)
	solo.ArrivalSpread = 0
	solo.UplinkProfile = trace.Fixed(media.Kbps(6000))
	ref, err := Run(solo)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Sessions {
		if s.Metrics != ref.Sessions[0].Metrics {
			t.Fatalf("session %d in 1-session cells diverges from standalone run", s.ID)
		}
	}
}

// TestFleetRepeatRunsByteIdentical re-runs the same sharded streaming
// config and compares full JSON — the repeat-run half of the acceptance
// criterion.
func TestFleetRepeatRunsByteIdentical(t *testing.T) {
	mk := func() []byte {
		cfg := cellConfig(24)
		cfg.MaxRetained = -1
		cfg.Shards = 3
		cfg.Timeline = true
		cfg.SampleTimelines = 4
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fleetJSON(t, res)
	}
	a, b := mk(), mk()
	if !bytes.Equal(a, b) {
		t.Fatal("repeat streaming runs produced different JSON")
	}
}

// TestFleetSampledTimelines is the sampled-recorder satellite: only every
// k-th session allocates a recorder, uplink recorders appear only for cells
// containing a sampled session, and ordering is sessions-then-uplinks.
func TestFleetSampledTimelines(t *testing.T) {
	cfg := cellConfig(32)
	cfg.Timeline = true
	cfg.SampleTimelines = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for id := 0; id < 32; id++ {
		if cfg.sampledTimeline(id) {
			want++
		}
	}
	if want != 4 {
		t.Fatalf("sampling phase broken: %d of 32 sampled with k=8", want)
	}
	var sessionRecs, uplinkRecs int
	for _, rec := range res.Recorders {
		if rec.Session() < cfg.Sessions {
			sessionRecs++
			if !cfg.sampledTimeline(rec.Session()) {
				t.Errorf("unsampled session %d has a recorder", rec.Session())
			}
			if uplinkRecs > 0 {
				t.Error("session recorder after an uplink recorder")
			}
			if len(rec.Events()) == 0 {
				t.Errorf("sampled session %d recorded nothing", rec.Session())
			}
		} else {
			uplinkRecs++
		}
	}
	if sessionRecs != want {
		t.Errorf("%d session recorders, want %d", sessionRecs, want)
	}
	if uplinkRecs == 0 || uplinkRecs > res.Cells {
		t.Errorf("%d uplink recorders for %d cells", uplinkRecs, res.Cells)
	}
	// k=1 keeps the legacy everyone-records layout.
	cfg1 := cellConfig(16)
	cfg1.Timeline = true
	cfg1.SampleTimelines = 1
	res1, err := Run(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Recorders) != 16+res1.Cells {
		t.Errorf("k=1: %d recorders, want %d sessions + %d uplinks", len(res1.Recorders), 16, res1.Cells)
	}
}

// TestFleetConfigGuardsSharding extends the config guards to the new knobs.
func TestFleetConfigGuardsSharding(t *testing.T) {
	for _, mut := range []func(*Config){
		func(c *Config) { c.CellSessions = -1 },
		func(c *Config) { c.Shards = -2 },
		func(c *Config) { c.SampleTimelines = -3 },
	} {
		cfg := baseConfig(2)
		mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Error("negative knob accepted")
		}
	}
	// Oversized cells clamp to the fleet: one cell, exact path.
	cfg := baseConfig(2)
	cfg.CellSessions = 100
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != 1 || res.Streamed {
		t.Fatalf("cells=%d streamed=%v, want single exact cell", res.Cells, res.Streamed)
	}
}

// TestFleetStreamedReportShape checks the sketch-path report: aggregation
// marker, sampled per_session table, and a completed-score distribution.
func TestFleetStreamedReportShape(t *testing.T) {
	cfg := cellConfig(24)
	cfg.MaxRetained = -1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Report("drama-show")
	if f.Aggregation != "sketch" {
		t.Fatalf("aggregation %q, want sketch", f.Aggregation)
	}
	if f.Cells != 3 {
		t.Fatalf("cells %d, want 3", f.Cells)
	}
	if f.SampledSessions != len(f.PerSession) || f.SampledSessions == 0 {
		t.Fatalf("sampled_sessions %d vs %d rows", f.SampledSessions, len(f.PerSession))
	}
	if f.Sessions != 24 {
		t.Fatalf("sessions %d, want 24", f.Sessions)
	}
	if res.Completed > 0 && f.ScoreCompleted.Mean == 0 {
		t.Error("completed-score distribution empty despite completions")
	}
	// Exact path emits none of the new fields (golden compatibility).
	exact, err := Run(baseConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	fe := exact.Report("drama-show")
	if fe.Aggregation != "" || fe.Cells != 0 || fe.SampledSessions != 0 {
		t.Fatalf("exact single-cell report leaked new fields: %q %d %d", fe.Aggregation, fe.Cells, fe.SampledSessions)
	}
}

// TestFleetDefaultShardsMatchExplicit pins that the Shards=0 default (one
// worker per core) cannot change output relative to any explicit value.
func TestFleetDefaultShardsMatchExplicit(t *testing.T) {
	auto := cellConfig(16)
	res, err := Run(auto)
	if err != nil {
		t.Fatal(err)
	}
	expl := cellConfig(16)
	expl.Shards = 2
	res2, err := Run(expl)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fleetJSON(t, res), fleetJSON(t, res2)) {
		t.Fatal("default and explicit shard counts diverge")
	}
}

// TestFleetShardEquivalenceWithTransport re-pins the shard-count contract
// with the transport layer on: per-session connections (reseeded loss
// draws, access RTT, keep-alive bookkeeping) must stay a pure function of
// the session ID, so the aggregate JSON cannot depend on which shard ran
// which cell.
func TestFleetShardEquivalenceWithTransport(t *testing.T) {
	var ref []byte
	for _, shards := range []int{1, 2, 4} {
		cfg := cellConfig(32)
		cfg.Shards = shards
		tc := netsim.DefaultTransport(netsim.H1)
		tc.IdleTimeout = 700 * time.Millisecond
		tc.LossRate = 0.02
		tc.Seed = 4099
		cfg.Transport = &tc
		cfg.AccessRTT = 40 * time.Millisecond
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		got := fleetJSON(t, res)
		if ref == nil {
			ref = got
			continue
		}
		if !bytes.Equal(ref, got) {
			t.Fatalf("shards=%d transport fleet JSON differs from shards=1 (%d vs %d bytes)",
				shards, len(got), len(ref))
		}
	}
}

// TestFleetZeroCostTransportEquivalence is the fleet half of the
// transport-off contract: a fleet run through all-zero-cost H1 transport
// (free setup, no keep-alive expiry, no loss) must produce JSON
// byte-identical to the same fleet with no transport at all.
func TestFleetZeroCostTransportEquivalence(t *testing.T) {
	run := func(tc *netsim.TransportConfig) []byte {
		cfg := cellConfig(16)
		cfg.Transport = tc
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fleetJSON(t, res)
	}
	bare := run(nil)
	zeroed := run(&netsim.TransportConfig{Protocol: netsim.H1, MaxStreams: 1})
	if !bytes.Equal(bare, zeroed) {
		t.Fatal("zero-cost transport fleet diverged from the bare fleet")
	}
}
