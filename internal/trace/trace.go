// Package trace provides deterministic network-bandwidth profiles for the
// streaming simulator — the role played by tc(8) shaping in the paper's
// testbed. Profiles are piecewise-constant functions of time and expose
// their breakpoints so an event-driven simulator can integrate them exactly.
package trace

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"demuxabr/internal/media"
)

// Profile is a deterministic, piecewise-constant bandwidth-over-time
// function. Implementations must be pure: RateAt(t) always returns the same
// value for the same t.
type Profile interface {
	// RateAt returns the link capacity at time t.
	RateAt(t time.Duration) media.Bps
	// NextChange returns the first instant strictly after t at which the
	// rate changes. ok is false if the rate never changes again.
	NextChange(t time.Duration) (next time.Duration, ok bool)
}

// Fixed is a constant-bandwidth profile.
type Fixed media.Bps

// RateAt implements Profile.
func (f Fixed) RateAt(time.Duration) media.Bps { return media.Bps(f) }

// NextChange implements Profile; a fixed profile never changes.
func (f Fixed) NextChange(time.Duration) (time.Duration, bool) { return 0, false }

// String describes the profile.
func (f Fixed) String() string { return fmt.Sprintf("fixed(%v)", media.Bps(f)) }

// Step is one segment of a Steps profile: the rate that applies from At
// (inclusive) until the next step.
type Step struct {
	At   time.Duration
	Rate media.Bps
}

// Steps is a piecewise-constant profile given by explicit breakpoints.
// If Cycle > 0 the step pattern repeats with that period; otherwise the
// final rate holds forever. The first step must be at time zero.
type Steps struct {
	Seq   []Step
	Cycle time.Duration
}

// NewSteps validates and constructs a Steps profile.
func NewSteps(seq []Step, cycle time.Duration) (*Steps, error) {
	if len(seq) == 0 {
		return nil, fmt.Errorf("trace: empty step sequence")
	}
	if seq[0].At != 0 {
		return nil, fmt.Errorf("trace: first step must be at t=0, got %v", seq[0].At)
	}
	for i := 1; i < len(seq); i++ {
		if seq[i].At <= seq[i-1].At {
			return nil, fmt.Errorf("trace: steps not strictly increasing at index %d", i)
		}
	}
	if cycle < 0 {
		return nil, fmt.Errorf("trace: negative cycle %v", cycle)
	}
	if cycle > 0 && seq[len(seq)-1].At >= cycle {
		return nil, fmt.Errorf("trace: last step %v not inside cycle %v", seq[len(seq)-1].At, cycle)
	}
	return &Steps{Seq: seq, Cycle: cycle}, nil
}

// MustSteps is NewSteps that panics on error; for presets and tests.
func MustSteps(seq []Step, cycle time.Duration) *Steps {
	s, err := NewSteps(seq, cycle)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Steps) fold(t time.Duration) time.Duration {
	if s.Cycle > 0 {
		t %= s.Cycle
	}
	return t
}

// RateAt implements Profile.
func (s *Steps) RateAt(t time.Duration) media.Bps {
	if t < 0 {
		t = 0
	}
	t = s.fold(t)
	// Binary search for the last step with At <= t.
	i := sort.Search(len(s.Seq), func(i int) bool { return s.Seq[i].At > t })
	return s.Seq[i-1].Rate
}

// NextChange implements Profile.
func (s *Steps) NextChange(t time.Duration) (time.Duration, bool) {
	if len(s.Seq) == 1 && s.Cycle == 0 {
		return 0, false
	}
	if t < 0 {
		t = -1 // so a step at 0 counts as "after t"
	}
	if s.Cycle == 0 {
		for _, st := range s.Seq {
			if st.At > t {
				return st.At, true
			}
		}
		return 0, false
	}
	base := t - s.fold(t)
	local := s.fold(t)
	for _, st := range s.Seq {
		if st.At > local {
			return base + st.At, true
		}
	}
	return base + s.Cycle, true
}

// SquareWave builds a cyclic two-level profile: `high` for highDur, then
// `low` for lowDur, repeating.
func SquareWave(high, low media.Bps, highDur, lowDur time.Duration) *Steps {
	return MustSteps([]Step{{0, high}, {highDur, low}}, highDur+lowDur)
}

// RandomWalk builds a profile that re-draws a rate uniformly in [min, max]
// every interval, for the given horizon, then cycles. The draw sequence is
// fully determined by seed.
func RandomWalk(seed int64, min, max media.Bps, interval, horizon time.Duration) *Steps {
	if max < min {
		min, max = max, min
	}
	rng := rand.New(rand.NewSource(seed))
	var seq []Step
	for at := time.Duration(0); at < horizon; at += interval {
		r := min + media.Bps(rng.Int63n(int64(max-min)+1))
		seq = append(seq, Step{At: at, Rate: r})
	}
	return MustSteps(seq, horizon)
}

// Average integrates the profile over [0, horizon] and returns the mean rate.
func Average(p Profile, horizon time.Duration) media.Bps {
	if horizon <= 0 {
		return 0
	}
	var bits float64
	t := time.Duration(0)
	for t < horizon {
		end := horizon
		if next, ok := p.NextChange(t); ok && next < horizon {
			end = next
		}
		bits += float64(p.RateAt(t)) * (end - t).Seconds()
		t = end
	}
	return media.Bps(bits / horizon.Seconds())
}

// Scale wraps a profile, multiplying every rate by factor.
func Scale(p Profile, factor float64) Profile { return scaled{p, factor} }

type scaled struct {
	p Profile
	f float64
}

func (s scaled) RateAt(t time.Duration) media.Bps {
	return media.Bps(float64(s.p.RateAt(t)) * s.f)
}

func (s scaled) NextChange(t time.Duration) (time.Duration, bool) { return s.p.NextChange(t) }
