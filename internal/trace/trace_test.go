package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"

	"demuxabr/internal/media"
)

func TestFixedProfile(t *testing.T) {
	p := Fixed(media.Kbps(900))
	if p.RateAt(0) != media.Kbps(900) || p.RateAt(time.Hour) != media.Kbps(900) {
		t.Error("fixed rate wrong")
	}
	if _, ok := p.NextChange(0); ok {
		t.Error("fixed profile should never change")
	}
}

func TestStepsBasic(t *testing.T) {
	s := MustSteps([]Step{{0, 100}, {10 * time.Second, 200}, {20 * time.Second, 50}}, 0)
	cases := []struct {
		at   time.Duration
		want media.Bps
	}{
		{0, 100}, {9 * time.Second, 100}, {10 * time.Second, 200},
		{15 * time.Second, 200}, {20 * time.Second, 50}, {time.Hour, 50},
		{-time.Second, 100},
	}
	for _, tc := range cases {
		if got := s.RateAt(tc.at); got != tc.want {
			t.Errorf("RateAt(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	if next, ok := s.NextChange(0); !ok || next != 10*time.Second {
		t.Errorf("NextChange(0) = %v,%v", next, ok)
	}
	if next, ok := s.NextChange(10 * time.Second); !ok || next != 20*time.Second {
		t.Errorf("NextChange(10s) = %v,%v", next, ok)
	}
	if _, ok := s.NextChange(20 * time.Second); ok {
		t.Error("no change expected after last step")
	}
}

func TestStepsCyclic(t *testing.T) {
	s := SquareWave(1000, 500, 4*time.Second, 8*time.Second) // cycle 12s
	cases := []struct {
		at   time.Duration
		want media.Bps
	}{
		{0, 1000}, {3 * time.Second, 1000}, {4 * time.Second, 500},
		{11 * time.Second, 500}, {12 * time.Second, 1000}, {16 * time.Second, 500},
		{24 * time.Second, 1000},
	}
	for _, tc := range cases {
		if got := s.RateAt(tc.at); got != tc.want {
			t.Errorf("RateAt(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	if next, ok := s.NextChange(0); !ok || next != 4*time.Second {
		t.Errorf("NextChange(0) = %v,%v", next, ok)
	}
	if next, ok := s.NextChange(5 * time.Second); !ok || next != 12*time.Second {
		t.Errorf("NextChange(5s) = %v,%v", next, ok)
	}
	if next, ok := s.NextChange(12 * time.Second); !ok || next != 16*time.Second {
		t.Errorf("NextChange(12s) = %v,%v", next, ok)
	}
}

func TestNewStepsValidation(t *testing.T) {
	if _, err := NewSteps(nil, 0); err == nil {
		t.Error("empty sequence should fail")
	}
	if _, err := NewSteps([]Step{{time.Second, 1}}, 0); err == nil {
		t.Error("first step not at 0 should fail")
	}
	if _, err := NewSteps([]Step{{0, 1}, {0, 2}}, 0); err == nil {
		t.Error("non-increasing steps should fail")
	}
	if _, err := NewSteps([]Step{{0, 1}, {5 * time.Second, 2}}, 5*time.Second); err == nil {
		t.Error("step at cycle boundary should fail")
	}
	if _, err := NewSteps([]Step{{0, 1}}, -time.Second); err == nil {
		t.Error("negative cycle should fail")
	}
}

func TestAverage(t *testing.T) {
	sq := SquareWave(media.Kbps(1500), media.Kbps(150), 4*time.Second, 8*time.Second)
	avg := Average(sq, 12*time.Second)
	if got := avg.Kbps(); math.Abs(got-600) > 1 {
		t.Errorf("square wave average = %.1f Kbps, want 600", got)
	}
	// Over many cycles the average must stay put.
	avg = Average(sq, 10*12*time.Second)
	if got := avg.Kbps(); math.Abs(got-600) > 1 {
		t.Errorf("multi-cycle average = %.1f Kbps, want 600", got)
	}
	if got := Average(Fixed(media.Kbps(700)), time.Minute); got != media.Kbps(700) {
		t.Errorf("fixed average = %v", got)
	}
	if got := Average(Fixed(1), 0); got != 0 {
		t.Errorf("zero-horizon average = %v", got)
	}
}

func TestPaperPresetAverages(t *testing.T) {
	if got := Average(Fig3VaryingAvg600(), 5*time.Minute).Kbps(); math.Abs(got-600) > 60 {
		t.Errorf("Fig3 profile average = %.1f Kbps, want ~600", got)
	}
	if got := Average(Fig4bBimodal600(), 12*time.Second).Kbps(); math.Abs(got-600) > 1 {
		t.Errorf("Fig4b profile average = %.1f Kbps, want 600", got)
	}
	// The Fig 4(a) point: 1 Mbps delivers under 16 KB per 0.125 s.
	bytesPerInterval := float64(Fig4aBandwidth().RateAt(0)) * 0.125 / 8
	if bytesPerInterval >= 16*1024 {
		t.Errorf("1 Mbps delivers %.0f B per interval; must be < 16 KiB for the Fig 4(a) pathology", bytesPerInterval)
	}
}

func TestRandomWalkDeterministicAndBounded(t *testing.T) {
	a := RandomWalk(7, media.Kbps(250), media.Kbps(950), 5*time.Second, time.Minute)
	b := RandomWalk(7, media.Kbps(250), media.Kbps(950), 5*time.Second, time.Minute)
	for ts := time.Duration(0); ts < 3*time.Minute; ts += time.Second {
		ra, rb := a.RateAt(ts), b.RateAt(ts)
		if ra != rb {
			t.Fatalf("random walk not deterministic at %v", ts)
		}
		if ra < media.Kbps(250) || ra > media.Kbps(950) {
			t.Fatalf("rate %v out of bounds at %v", ra, ts)
		}
	}
	c := RandomWalk(8, media.Kbps(250), media.Kbps(950), 5*time.Second, time.Minute)
	same := true
	for ts := time.Duration(0); ts < time.Minute; ts += 5 * time.Second {
		if a.RateAt(ts) != c.RateAt(ts) {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different walks")
	}
}

func TestRandomWalkSwappedBounds(t *testing.T) {
	p := RandomWalk(1, media.Kbps(900), media.Kbps(100), time.Second, 10*time.Second)
	for ts := time.Duration(0); ts < 10*time.Second; ts += time.Second {
		if r := p.RateAt(ts); r < media.Kbps(100) || r > media.Kbps(900) {
			t.Fatalf("rate %v out of swapped bounds", r)
		}
	}
}

func TestScale(t *testing.T) {
	p := Scale(Fixed(media.Kbps(1000)), 0.5)
	if got := p.RateAt(0); got != media.Kbps(500) {
		t.Errorf("scaled rate = %v", got)
	}
	if _, ok := p.NextChange(0); ok {
		t.Error("scaled fixed profile should not change")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := SquareWave(media.Kbps(1500), media.Kbps(150), 4*time.Second, 8*time.Second)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycle != orig.Cycle || len(got.Seq) != len(orig.Seq) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, orig)
	}
	for ts := time.Duration(0); ts < 30*time.Second; ts += 500 * time.Millisecond {
		if got.RateAt(ts) != orig.RateAt(ts) {
			t.Fatalf("rate mismatch at %v", ts)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	bad := []string{
		"nonsense",
		"1.0,abc",
		"abc,100",
		"#cycle,xyz",
		"0,100\n0,200", // duplicate timestamps
	}
	for _, in := range bad {
		if _, err := ReadCSV(bytes.NewBufferString(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
	// Comments and blank lines are fine.
	good := "# a comment\n0,100\n\n5.0,200\n"
	s, err := ReadCSV(bytes.NewBufferString(good))
	if err != nil {
		t.Fatalf("good input failed: %v", err)
	}
	if s.RateAt(6*time.Second) != media.Kbps(200) {
		t.Error("parsed profile wrong")
	}
}

// Property: for any Steps profile, integrating RateAt between consecutive
// NextChange breakpoints over one cycle reproduces Average exactly, and
// NextChange is strictly increasing.
func TestNextChangeMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		p := RandomWalk(seed, media.Kbps(100), media.Kbps(2000), time.Second, 20*time.Second)
		prev := time.Duration(-1)
		tcur := time.Duration(0)
		for i := 0; i < 100; i++ {
			next, ok := p.NextChange(tcur)
			if !ok {
				return false // cyclic profile always has a next change
			}
			if next <= prev || next <= tcur {
				return false
			}
			prev, tcur = next, next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNamedRegistry(t *testing.T) {
	for _, name := range Names() {
		p, err := Named(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if p.RateAt(0) < 0 {
			t.Errorf("%s: negative rate", name)
		}
	}
	if _, err := Named("bogus"); err == nil {
		t.Error("unknown name should fail")
	}
}
