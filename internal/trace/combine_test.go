package trace

import (
	"testing"
	"time"

	"demuxabr/internal/media"
)

func TestSequenceComposition(t *testing.T) {
	s, err := Sequence(false,
		Part{Profile: Fixed(media.Kbps(1000)), For: 10 * time.Second},
		Part{Profile: Fixed(media.Kbps(200)), For: 5 * time.Second},
	)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		at   time.Duration
		want media.Bps
	}{
		{0, media.Kbps(1000)},
		{9 * time.Second, media.Kbps(1000)},
		{10 * time.Second, media.Kbps(200)},
		{14 * time.Second, media.Kbps(200)},
		{time.Hour, media.Kbps(200)}, // final rate holds
	}
	for _, tc := range cases {
		if got := s.RateAt(tc.at); got != tc.want {
			t.Errorf("RateAt(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestSequenceCyclic(t *testing.T) {
	s := MustSequence(true,
		Part{Profile: Fixed(100), For: 2 * time.Second},
		Part{Profile: Fixed(300), For: 3 * time.Second},
	)
	if s.Cycle != 5*time.Second {
		t.Fatalf("cycle = %v, want 5s", s.Cycle)
	}
	if got := s.RateAt(6 * time.Second); got != 100 {
		t.Errorf("RateAt(6s) = %v, want 100 (cycled)", got)
	}
	if got := s.RateAt(9 * time.Second); got != 300 {
		t.Errorf("RateAt(9s) = %v, want 300 (cycled)", got)
	}
}

func TestSequenceNestedSteps(t *testing.T) {
	// A square wave truncated at 10 s inside a sequence must carry its
	// inner breakpoints through.
	inner := SquareWave(media.Kbps(800), media.Kbps(200), 2*time.Second, 2*time.Second)
	s := MustSequence(false,
		Part{Profile: inner, For: 10 * time.Second},
		Part{Profile: Fixed(media.Kbps(50)), For: 5 * time.Second},
	)
	wants := []struct {
		at   time.Duration
		want media.Bps
	}{
		{0, media.Kbps(800)}, {2 * time.Second, media.Kbps(200)},
		{4 * time.Second, media.Kbps(800)}, {9 * time.Second, media.Kbps(800)},
		{10 * time.Second, media.Kbps(50)},
	}
	for _, tc := range wants {
		if got := s.RateAt(tc.at); got != tc.want {
			t.Errorf("RateAt(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestSequenceErrors(t *testing.T) {
	if _, err := Sequence(false); err == nil {
		t.Error("empty sequence should fail")
	}
	if _, err := Sequence(false, Part{Profile: Fixed(1), For: 0}); err == nil {
		t.Error("zero-duration part should fail")
	}
	if _, err := Sequence(false, Part{Profile: nil, For: time.Second}); err == nil {
		t.Error("nil profile should fail")
	}
}

func TestFlattenMatchesOriginal(t *testing.T) {
	orig := Fig4bBimodal600()
	flat, err := Flatten(orig, 12*time.Second, true)
	if err != nil {
		t.Fatal(err)
	}
	for at := time.Duration(0); at < time.Minute; at += 250 * time.Millisecond {
		if flat.RateAt(at) != orig.RateAt(at) {
			t.Fatalf("flattened mismatch at %v: %v vs %v", at, flat.RateAt(at), orig.RateAt(at))
		}
	}
	if _, err := Flatten(orig, 0, false); err == nil {
		t.Error("zero horizon should fail")
	}
}

func TestLTEProfile(t *testing.T) {
	p := LTEProfile(3, 4*time.Second, time.Minute)
	sawZero, sawHigh := false, false
	for at := time.Duration(0); at < 2*time.Minute; at += time.Second {
		r := p.RateAt(at)
		if r == 0 {
			sawZero = true
		}
		if r > media.Kbps(400) {
			sawHigh = true
		}
		if r != 0 && (r < 400_000 || r > 3_000_000) {
			t.Fatalf("rate %v outside LTE envelope", r)
		}
	}
	if !sawZero || !sawHigh {
		t.Errorf("LTE profile should include outages (%v) and fast periods (%v)", sawZero, sawHigh)
	}
	defer func() {
		if recover() == nil {
			t.Error("outage >= horizon should panic")
		}
	}()
	LTEProfile(1, time.Minute, time.Minute)
}
