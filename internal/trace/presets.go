package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"demuxabr/internal/media"
)

// Presets matching the network conditions of the paper's experiments.

// Fig2Bandwidth is the fixed 900 Kbps link of the ExoPlayer DASH
// experiments (Fig. 2).
func Fig2Bandwidth() Profile { return Fixed(media.Kbps(900)) }

// Fig3VaryingAvg600 is the time-varying profile of the ExoPlayer HLS
// experiment (Fig. 3): average exactly 600 Kbps with sustained lows.
//
// The paper does not publish its trace, only "time-varying, with the
// average as 600 Kbps" and the consequence: with audio pinned at A3
// (384 Kbps), even V1+A3 consumes 495 Kbps, so low-bandwidth periods must
// drain the buffer faster than high periods can refill it (the buffer is
// capped), producing the ~5 stalls / ~37 s of rebuffering of Fig. 3(b). A
// 20 s/1.6 Mbps + 40 s/100 Kbps cycle has that property: each 40 s low
// drains slightly more than a full 30 s buffer of V1+A3 content, yielding
// one stall per cycle (5 cycles over the 5-minute session).
func Fig3VaryingAvg600() Profile {
	return SquareWave(media.Kbps(1600), media.Kbps(100), 20*time.Second, 40*time.Second)
}

// Fig4aBandwidth is the constant 1 Mbps link of the first Shaka experiment
// (Fig. 4(a)). 1 Mbps delivers 15.6 KB per 0.125 s interval — below Shaka's
// 16 KB validity filter, so no throughput sample is ever accepted.
func Fig4aBandwidth() Profile { return Fixed(media.Kbps(1000)) }

// Fig4bBimodal600 is the dynamic profile of the second Shaka experiment
// (Fig. 4(b)): alternating 1.1 Mbps for 4 s and 350 Kbps for 8 s (average
// exactly 600 Kbps). Only solo-transfer intervals of the high phase move
// at least 16 KB per 0.125 s (1.1 Mbps ⇒ 17.2 KB), so Shaka's estimate
// converges toward 1.1 Mbps while the true average is 600 Kbps — and
// 0.95 × 1.1 Mbps lands exactly in the V3+A3 (1032 Kbps) selection band
// the paper reports.
func Fig4bBimodal600() Profile {
	return SquareWave(media.Kbps(1100), media.Kbps(350), 4*time.Second, 8*time.Second)
}

// Fig5Bandwidth is the fixed 700 Kbps link of the dash.js experiment (Fig 5).
func Fig5Bandwidth() Profile { return Fixed(media.Kbps(700)) }

// ExoHLSFixedBandwidth is the 5 Mbps link of the second ExoPlayer HLS
// experiment (audio pinned to lowest-quality A1 despite ample bandwidth).
func ExoHLSFixedBandwidth() Profile { return Fixed(media.Kbps(5000)) }

// WriteCSV serializes a Steps profile as "seconds,kbps" rows. A trailing
// "#cycle,<seconds>" comment records the cycle period.
func WriteCSV(w io.Writer, s *Steps) error {
	bw := bufio.NewWriter(w)
	for _, st := range s.Seq {
		if _, err := fmt.Fprintf(bw, "%.6f,%.3f\n", st.At.Seconds(), st.Rate.Kbps()); err != nil {
			return err
		}
	}
	if s.Cycle > 0 {
		if _, err := fmt.Fprintf(bw, "#cycle,%.6f\n", s.Cycle.Seconds()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a profile written by WriteCSV (or hand-authored rows of
// "seconds,kbps"). Blank lines are skipped.
func ReadCSV(r io.Reader) (*Steps, error) {
	sc := bufio.NewScanner(r)
	var seq []Step
	var cycle time.Duration
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(text, "#cycle,"); ok {
			secs, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad cycle: %w", line, err)
			}
			cycle = time.Duration(secs * float64(time.Second))
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue
		}
		at, rate, ok := strings.Cut(text, ",")
		if !ok {
			return nil, fmt.Errorf("trace: line %d: want 'seconds,kbps', got %q", line, text)
		}
		secs, err := strconv.ParseFloat(strings.TrimSpace(at), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time: %w", line, err)
		}
		kbps, err := strconv.ParseFloat(strings.TrimSpace(rate), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad rate: %w", line, err)
		}
		seq = append(seq, Step{At: time.Duration(secs * float64(time.Second)), Rate: media.Kbps(kbps)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewSteps(seq, cycle)
}

// Named returns a preset profile by name — the registry behind CLI flags.
// Available names: fig2 (fixed 900 Kbps), fig3 (varying avg 600), fig4a
// (fixed 1 Mbps), fig4b (bimodal avg 600), fig5 (fixed 700), exohls-5m
// (fixed 5 Mbps), lte (mobile walk with outages).
func Named(name string) (Profile, error) {
	switch name {
	case "fig2":
		return Fig2Bandwidth(), nil
	case "fig3":
		return Fig3VaryingAvg600(), nil
	case "fig4a":
		return Fig4aBandwidth(), nil
	case "fig4b":
		return Fig4bBimodal600(), nil
	case "fig5":
		return Fig5Bandwidth(), nil
	case "exohls-5m":
		return ExoHLSFixedBandwidth(), nil
	case "lte":
		return LTEProfile(42, 4*time.Second, time.Minute), nil
	default:
		return nil, fmt.Errorf("trace: unknown profile %q (have %v)", name, Names())
	}
}

// Names lists the preset profile names.
func Names() []string {
	return []string{"fig2", "fig3", "fig4a", "fig4b", "fig5", "exohls-5m", "lte"}
}
