package trace

import (
	"fmt"
	"time"
)

// Part is one phase of a composed profile.
type Part struct {
	Profile Profile
	For     time.Duration
}

// Sequence composes profiles in time: each part plays for its duration
// (evaluated from its own time zero), then the next begins. With cycle
// true the whole sequence repeats; otherwise the final part's behaviour at
// its end time holds forever. The composition is flattened into a Steps
// profile, so it exports to CSV like any other.
func Sequence(cycle bool, parts ...Part) (*Steps, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("trace: empty sequence")
	}
	var seq []Step
	var offset time.Duration
	for i, part := range parts {
		if part.For <= 0 {
			return nil, fmt.Errorf("trace: part %d has non-positive duration", i)
		}
		if part.Profile == nil {
			return nil, fmt.Errorf("trace: part %d has nil profile", i)
		}
		local := time.Duration(0)
		for local < part.For {
			rate := part.Profile.RateAt(local)
			if len(seq) == 0 || seq[len(seq)-1].Rate != rate {
				seq = append(seq, Step{At: offset + local, Rate: rate})
			}
			next, ok := part.Profile.NextChange(local)
			if !ok || next >= part.For {
				break
			}
			local = next
		}
		offset += part.For
	}
	if seq[0].At != 0 {
		return nil, fmt.Errorf("trace: internal error: sequence does not start at zero")
	}
	var cyclePeriod time.Duration
	if cycle {
		cyclePeriod = offset
	}
	return NewSteps(seq, cyclePeriod)
}

// MustSequence is Sequence that panics on error.
func MustSequence(cycle bool, parts ...Part) *Steps {
	s, err := Sequence(cycle, parts...)
	if err != nil {
		panic(err)
	}
	return s
}

// Flatten renders any profile over [0, horizon) as an explicit Steps
// profile (cycling with period horizon when cycle is true) — useful for
// exporting presets to CSV.
func Flatten(p Profile, horizon time.Duration, cycle bool) (*Steps, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("trace: non-positive horizon")
	}
	return Sequence(cycle, Part{Profile: p, For: horizon})
}

// LTEProfile approximates a mobile link: a seeded random walk between 400
// Kbps and 3 Mbps re-drawn every 2 s, with an outage ("tunnel") of the
// given length inserted once per cycle. Horizon is the cycle length.
func LTEProfile(seed int64, outage, horizon time.Duration) *Steps {
	if outage >= horizon {
		panic("trace: outage longer than horizon")
	}
	walk := RandomWalk(seed, 400_000, 3_000_000, 2*time.Second, horizon-outage)
	return MustSequence(true,
		Part{Profile: walk, For: horizon - outage},
		Part{Profile: Fixed(0), For: outage},
	)
}
