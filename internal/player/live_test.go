package player

import (
	"reflect"
	"testing"
	"time"

	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/trace"
)

// runLive plays content through a fixed-combo model with live mode on.
func runLive(t *testing.T, c *media.Content, p trace.Profile, lc *LiveConfig) *Result {
	t.Helper()
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, p)
	res, err := Run(link, Config{Content: c, Model: &fixedJoint{combo: lowestCombo(c)}, Live: lc})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// VOD sessions must carry no live accounting at all — the nil pointer is
// the zero-cost contract the reports build on.
func TestLiveOffLeavesNoStats(t *testing.T) {
	c := media.DramaShow()
	res := runFixed(t, c, media.Kbps(10000), lowestCombo(c))
	if res.Live != nil {
		t.Fatalf("VOD session carried live stats: %+v", res.Live)
	}
}

// A live session joins LatencyTarget behind the edge, snapped down to a
// chunk boundary: join latency lands in [target, target + chunk).
func TestLiveJoinAtEdge(t *testing.T) {
	c := media.DramaShow()
	lc := &LiveConfig{LatencyTarget: 4 * time.Second, PartTarget: time.Second}
	res := runLive(t, c, trace.Fixed(media.Kbps(10000)), lc)
	if res.Live == nil {
		t.Fatal("live session carried no live stats")
	}
	if jl := res.Live.JoinLatency; jl < lc.LatencyTarget || jl >= lc.LatencyTarget+c.ChunkDuration {
		t.Errorf("join latency %v outside [%v, %v)", jl, lc.LatencyTarget, lc.LatencyTarget+c.ChunkDuration)
	}
	if res.Live.LatencyTarget != lc.LatencyTarget {
		t.Errorf("latency target %v, want %v", res.Live.LatencyTarget, lc.LatencyTarget)
	}
}

// Availability gating: even with ample bandwidth a live session cannot
// outrun the encoder, so the session's wall clock is pinned to real time —
// it ends no earlier than the stream's own remaining duration.
func TestLiveAvailabilityGatesRealTime(t *testing.T) {
	c := media.DramaShow()
	lc := &LiveConfig{LatencyTarget: 4 * time.Second, PartTarget: time.Second, EdgeAtJoin: 60 * time.Second}
	res := runLive(t, c, trace.Fixed(media.Kbps(50000)), lc)
	if !res.Ended {
		t.Fatal("live session did not end")
	}
	remaining := c.Duration - 60*time.Second
	if res.EndedAt < remaining {
		t.Errorf("session ended at %v, before the stream could produce its remaining %v", res.EndedAt, remaining)
	}
	if res.Live.Samples == 0 {
		t.Error("controller never sampled latency")
	}
}

// With bandwidth headroom the controller holds latency near the target:
// no resyncs, max latency well inside the resync threshold, and a mean
// close to the target.
func TestLiveLatencyHeldNearTarget(t *testing.T) {
	c := media.DramaShow()
	lc := &LiveConfig{LatencyTarget: 4 * time.Second, PartTarget: time.Second}
	res := runLive(t, c, trace.Fixed(media.Kbps(10000)), lc)
	l := res.Live
	if l.Resyncs != 0 {
		t.Errorf("unexpected resyncs: %d", l.Resyncs)
	}
	if err := l.MeanLatency - lc.LatencyTarget; err < -time.Second || err > 2*time.Second {
		t.Errorf("mean latency %v strays from target %v", l.MeanLatency, lc.LatencyTarget)
	}
	if l.MaxLatency >= 4*lc.LatencyTarget {
		t.Errorf("max latency %v reached the resync threshold", l.MaxLatency)
	}
	if l.MeanRate < 0.92 || l.MeanRate > 1.08 {
		t.Errorf("mean rate %.4f outside the configured envelope", l.MeanRate)
	}
}

// CMAF parts lower the achievable latency floor: the same session without
// parts (whole-segment availability) must sit measurably further behind
// the edge, and stall more on the availability gate.
func TestLivePartsLowerLatencyFloor(t *testing.T) {
	c := media.DramaShow()
	parts := runLive(t, c, trace.Fixed(media.Kbps(10000)),
		&LiveConfig{LatencyTarget: 3 * time.Second, PartTarget: time.Second})
	whole := runLive(t, c, trace.Fixed(media.Kbps(10000)),
		&LiveConfig{LatencyTarget: 3 * time.Second})
	if parts.Live.MeanLatency >= whole.Live.MeanLatency {
		t.Errorf("parts did not lower latency: %v (parts) vs %v (whole-segment)",
			parts.Live.MeanLatency, whole.Live.MeanLatency)
	}
	if len(parts.Stalls) >= len(whole.Stalls) {
		t.Errorf("parts did not reduce availability stalls: %d (parts) vs %d (whole-segment)",
			len(parts.Stalls), len(whole.Stalls))
	}
}

// The catch-up controller must actually work the rate: under latency
// pressure the session spends time above 1.0x and records rate changes.
func TestLiveRateAdaptation(t *testing.T) {
	c := media.DramaShow()
	// A modest trough builds some latency to catch up from afterwards.
	p := trace.SquareWave(media.Kbps(5000), media.Kbps(300), 40*time.Second, 10*time.Second)
	res := runLive(t, c, p, &LiveConfig{LatencyTarget: 4 * time.Second, PartTarget: time.Second})
	l := res.Live
	if l.RateChanges == 0 {
		t.Error("controller never changed the playback rate")
	}
	if l.CatchupTime == 0 {
		t.Error("session under latency pressure never played above 1.0x")
	}
	if l.MeanRate <= 1.0 {
		t.Errorf("mean rate %.4f not above 1.0 despite latency pressure", l.MeanRate)
	}
}

// A bandwidth collapse deep enough to blow past the resync threshold must
// trigger the live-edge jump: the player discards the backlog, re-acquires
// the edge, and still finishes the session.
func TestLiveResyncOnOverrun(t *testing.T) {
	c := media.DramaShow()
	// 30 s at 50 Kbps: even the lowest combo cannot move, latency grows by
	// ~30 s, far past the 8 s threshold (4x the 2 s target).
	p := trace.SquareWave(media.Kbps(8000), media.Kbps(50), 60*time.Second, 30*time.Second)
	res := runLive(t, c, p, &LiveConfig{LatencyTarget: 2 * time.Second, PartTarget: time.Second})
	l := res.Live
	if l.Resyncs == 0 {
		t.Fatal("no resync despite a 30 s outage against an 8 s threshold")
	}
	if l.SkippedTime <= 0 {
		t.Errorf("resync discarded no media: skipped %v", l.SkippedTime)
	}
	if !res.Ended {
		t.Errorf("session did not recover: aborted=%v reason=%q", res.Aborted, res.AbortReason)
	}
	if l.MaxLatency < 8*time.Second {
		t.Errorf("max latency %v never reached the resync threshold", l.MaxLatency)
	}
	// The skipped media is gone: played chunks must be fewer than the
	// content total on at least one track.
	if got := len(res.Chunks); got >= 2*c.NumChunks() {
		t.Errorf("resync session still fetched all %d chunks", got)
	}
}

// Live sessions are as deterministic as VOD ones: identical configs produce
// identical results.
func TestLiveDeterministic(t *testing.T) {
	c := media.DramaShow()
	p := trace.SquareWave(media.Kbps(5000), media.Kbps(300), 40*time.Second, 10*time.Second)
	lc := &LiveConfig{LatencyTarget: 4 * time.Second, PartTarget: time.Second}
	a := runLive(t, c, p, lc)
	b := runLive(t, c, p, lc)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical live runs produced different results")
	}
}

// Config validation: malformed live configs must fail Start, not corrupt a
// session.
func TestLiveConfigValidation(t *testing.T) {
	c := media.DramaShow()
	for name, lc := range map[string]*LiveConfig{
		"negative target":       {LatencyTarget: -time.Second},
		"part exceeds chunk":    {PartTarget: c.ChunkDuration + time.Second},
		"negative part":         {PartTarget: -time.Second},
		"rate bounds above one": {MinRate: 1.5, MaxRate: 2},
		"rate bounds inverted":  {MinRate: 1, MaxRate: 0.9},
		"max rate below one":    {MinRate: 0.9, MaxRate: 0.95},
	} {
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, trace.Fixed(media.Kbps(5000)))
		_, err := Start(link, link, Config{Content: c, Model: &fixedJoint{combo: lowestCombo(c)}, Live: lc})
		if err == nil {
			t.Errorf("%s: Start accepted an invalid live config", name)
		}
	}
}
