// Package player is the streaming session engine: it drives an ABR
// algorithm against a simulated bottleneck link, maintaining separate audio
// and video playback buffers, and records the timeline the paper's figures
// are drawn from.
//
// Two download scheduling disciplines are provided, matching the behaviours
// the paper contrasts in §3.5:
//
//   - chunk-synced (ExoPlayer, Shaka, best practice): audio and video chunk
//     i are requested together and chunk i+1 waits for both — audio and
//     video prefetching stays balanced at chunk granularity;
//   - independent (dash.js): each type runs its own free-running loop
//     against its own buffer target — buffers can diverge arbitrarily.
//
// The discipline is chosen by the algorithm's interface: a
// abr.JointAlgorithm runs chunk-synced, a abr.PerTypeAlgorithm runs
// independent loops.
package player

import (
	"errors"
	"fmt"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/faults"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/timeline"
)

// Config parameterizes a streaming session.
type Config struct {
	// Content is the asset to stream.
	Content *media.Content
	// Model is the adaptation algorithm; it must implement either
	// abr.JointAlgorithm or abr.PerTypeAlgorithm.
	Model abr.Algorithm
	// Muxed streams each combination as one combined object (the paper's
	// muxed packaging baseline): a single download per chunk position
	// carries both components, so the audio/video balance problem cannot
	// arise — at the §1 storage and CDN costs. Requires a JointAlgorithm.
	Muxed bool
	// AudioResets schedules mid-session audio stream resets (e.g. the
	// viewer switches audio language): at each instant, buffered audio
	// beyond the playhead is discarded and refetched from the playback
	// position. Buffered video survives — a property only demuxed
	// packaging has; in Muxed mode the whole buffer is discarded.
	// Requires a per-type model or SyncWindow > 0 (strict chunk pairing
	// cannot express the audio catch-up), or Muxed mode.
	AudioResets []time.Duration
	// SyncWindow loosens joint scheduling from strict chunk pairing to
	// bounded skew: each stream may run up to SyncWindow chunk positions
	// ahead of the other, with the combination still decided jointly per
	// position. This is §4.2's "synchronize ... at the chunk level or in
	// terms of a small number of chunks" dial. 0 (default) keeps strict
	// pairing. Ignored for per-type models and in muxed mode.
	SyncWindow int
	// MaxBuffer caps each buffer; fetching pauses while a gate buffer is at
	// or above it. Default 30 s.
	MaxBuffer time.Duration
	// StartupBuffer is the buffered duration (per type) required before the
	// first frame plays. Default: one chunk.
	StartupBuffer time.Duration
	// ResumeBuffer is the buffered duration required to resume after a
	// stall. Default: one chunk.
	ResumeBuffer time.Duration
	// SampleInterval is the δ-interval of progress events to the algorithm.
	// Byte-flow meters (ExoPlayer's, the best-practice shared meter) and
	// Shaka's sampler both consume these. Zero selects the default 125 ms;
	// negative disables progress events.
	SampleInterval time.Duration
	// LogInterval is the timeline sampling period. Default 500 ms.
	LogInterval time.Duration
	// Deadline aborts the session (Ended == false) if playback has not
	// finished by this virtual time — e.g. a link too slow to ever drain
	// the content. Default: 5× content duration + 5 minutes.
	Deadline time.Duration
	// MaxEvents bounds the simulation (safety). Default 20 million.
	MaxEvents int
	// FaultPlan injects deterministic per-segment download failures and
	// applies the plan's blackout windows to the links. Nil injects
	// nothing. Requires demuxed mode.
	FaultPlan *faults.Plan
	// Robustness is the download retry/failover policy: per-request
	// timeout, seeded backoff, blacklisting, failover. Nil keeps the
	// legacy fail-fast behaviour — the first download failure aborts the
	// session (Result.Aborted). Requires demuxed mode.
	Robustness *faults.Policy
	// OnDone fires exactly once when the session finishes or aborts, after
	// the result is final and the session's in-flight transfers have been
	// torn down. Sessions started via Run/RunSplit stop the engine here;
	// fleet sessions sharing an engine let it keep running.
	OnDone func(*Session)
	// OnRequest observes every chunk request that puts bytes on the wire
	// and returns an extra first-byte delay — the hook a CDN edge uses to
	// serve from cache (zero) or charge an origin round trip (miss
	// penalty). Fail-fast faults (404/503, hung responses) never reach it.
	// The returned delay must be non-negative; a negative value is clamped
	// to zero at the network layer (the discrete-event engine cannot
	// schedule into the past).
	OnRequest func(ChunkRequest) time.Duration
	// Recorder, when non-nil, receives the session's flight-recorder
	// events: ABR decisions, request lifecycle, buffer samples, stalls,
	// faults (see internal/timeline). Events carry absolute engine time.
	// Nil disables recording at zero cost.
	Recorder *timeline.Recorder
	// Transport, when non-nil, routes every request through transport
	// connections (netsim.Conn): handshake round trips before the first
	// request and after idle timeouts or resets, per-connection stream
	// caps, and loss-driven HoL stalls. Demuxed H2/H3 sessions on a
	// shared bottleneck multiplex audio and video on one connection;
	// HTTP/1.1 (or split hosts) opens one connection per stream — the
	// demux request-doubling pathology at the transport layer. Nil keeps
	// requests directly on the links.
	Transport *netsim.TransportConfig
	// Live, when non-nil, runs the session in latency-target live mode:
	// the content plays the role of a live stream whose edge advances in
	// real time, the session joins near the edge, chunk availability is
	// gated on the encoder (segment or CMAF-part granularity), playback
	// rate adapts to hold the latency target, and latency overruns resync
	// by jumping forward. Nil keeps the VOD behaviour at zero cost.
	Live *LiveConfig
}

// ChunkRequest identifies one wire request to the delivery path.
type ChunkRequest struct {
	// Index is the chunk position.
	Index int
	// Type is the component being fetched (Video for muxed objects).
	Type media.Type
	// Track is the requested track (the video component for muxed objects).
	Track *media.Track
	// MuxedWith is the audio component when the request is one muxed
	// object; nil for demuxed requests.
	MuxedWith *media.Track
	// Attempt counts retries of this chunk on this track, from 0.
	Attempt int
}

func (c *Config) setDefaults() error {
	if c.Content == nil {
		return errors.New("player: nil content")
	}
	if c.Model == nil {
		return errors.New("player: nil model")
	}
	if c.MaxBuffer == 0 {
		c.MaxBuffer = 30 * time.Second
	}
	if c.StartupBuffer == 0 {
		c.StartupBuffer = c.Content.ChunkDuration
	}
	if c.ResumeBuffer == 0 {
		c.ResumeBuffer = c.Content.ChunkDuration
	}
	if c.LogInterval == 0 {
		c.LogInterval = 500 * time.Millisecond
	}
	switch {
	case c.SampleInterval == 0:
		c.SampleInterval = 125 * time.Millisecond
	case c.SampleInterval < 0:
		c.SampleInterval = 0
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 20_000_000
	}
	if c.Deadline == 0 {
		c.Deadline = 5*c.Content.Duration + 5*time.Minute
	}
	if c.StartupBuffer > c.MaxBuffer || c.ResumeBuffer > c.MaxBuffer {
		return fmt.Errorf("player: startup/resume buffer exceeds max buffer %v", c.MaxBuffer)
	}
	return nil
}

// supportsAudioReset reports whether the configured scheduler can express
// an audio-only catch-up.
func (c *Config) supportsAudioReset(joint bool) bool {
	return c.Muxed || !joint || c.SyncWindow > 0
}

// Session is the live state of one streaming run. A Session attaches to
// its links' engine without owning the run loop, so any number of sessions
// can share one engine (and, through it, shared bottlenecks and a shared
// CDN edge). Start creates and schedules one; Run/RunSplit wrap a single
// session with its own engine run loop.
//
// All times recorded in the Result, and all times reported to the ABR
// model, are session-relative (zero at Start), so a session's behaviour is
// invariant to its arrival time in a fleet.
type Session struct {
	cfg     Config
	eng     *netsim.Engine
	links   [2]*netsim.Link // per media.Type; both entries equal on a shared bottleneck
	content *media.Content
	t0      time.Duration // engine time at Start; all recorded times are relative to it

	joint     abr.JointAlgorithm
	perType   abr.PerTypeAlgorithm
	abandoner abr.Abandoner

	// Per-type chunk timelines, indexed by media.Type. For content without
	// boundary tables both entries are identical; shaped content can give
	// audio and video different chunk counts and edges (the misalignment
	// regime of §4), which is why every index computation below is typed.
	numChunks   [2]int
	chunkStarts [2][]time.Duration // start offset of each chunk; [n] = duration

	// Per-type download state, indexed by media.Type.
	next     [2]int           // next chunk index to fetch
	frontier [2]time.Duration // contiguous downloaded content end
	lastSel  [2]*media.Track

	// Joint scheduling state.
	jointPending int                 // transfers in flight for the current chunk
	comboFor     map[int]media.Combo // windowed mode: joint decision per position
	inflight     [2]bool             // windowed mode: per-type transfer in flight
	transfers    [2]*netsim.Transfer // most recent in-flight transfer per type
	conns        [2]*netsim.Conn     // transport connections; both entries equal when multiplexed

	// Robustness state.
	pol       *faults.Policy // normalized policy; nil = fail fast
	blacklist *faults.Blacklist
	gen       [2]int // per-type generation; bumped on reset to void stale retry timers

	// plan is the effective fault plan: cfg.FaultPlan, or (when recording)
	// a copy of it with the flight recorder's Observe hook attached.
	plan *faults.Plan
	// rec is the flight recorder; nil when disabled.
	rec *timeline.Recorder

	// Playback state.
	started  bool
	playing  bool
	ended    bool
	playPos  time.Duration
	lastTick time.Duration
	underrun *netsim.Event
	stallAt  time.Duration

	// live is the latency-target controller state; nil for VOD sessions
	// (every live hook on the playback clock and the fetch loops is
	// guarded on it, so VOD behaviour is bit-identical to pre-live code).
	live *liveState

	res Result
}

// Run executes a full streaming session of cfg.Content over the link and
// returns the recorded result. A session that cannot finish (e.g. the link
// is dead forever) returns a result with Ended == false and a nil error;
// exhausting the event budget returns an error.
func Run(link *netsim.Link, cfg Config) (*Result, error) {
	return RunSplit(link, link, cfg)
}

// RunSplit executes a session with the video and audio streams on separate
// links — the §4.1 scenario where the demuxed tracks live on different
// servers and do not share a bottleneck. Both links must be driven by the
// same engine. It is a thin wrapper over Start that owns the engine's run
// loop and stops it when the session ends.
func RunSplit(videoLink, audioLink *netsim.Link, cfg Config) (*Result, error) {
	inner := cfg.OnDone
	cfg.OnDone = func(s *Session) {
		if inner != nil {
			inner(s)
		}
		s.eng.Stop()
	}
	s, err := Start(videoLink, audioLink, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.eng.Run(s.cfg.MaxEvents); err != nil {
		return nil, err
	}
	return &s.res, nil
}

// Start validates the configuration and schedules a session on the links'
// (possibly shared) engine, beginning at the engine's current time. The
// caller drives the engine; the session reports completion via
// Config.OnDone and Done. Deadline and MaxBuffer et al. are interpreted in
// session time, so staggered arrivals need no config adjustments.
func Start(videoLink, audioLink *netsim.Link, cfg Config) (*Session, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if videoLink.Engine() != audioLink.Engine() {
		return nil, errors.New("player: video and audio links use different engines")
	}
	s := &Session{
		cfg:     cfg,
		eng:     videoLink.Engine(),
		content: cfg.Content,
	}
	s.t0 = s.eng.Now()
	s.links[media.Video] = videoLink
	s.links[media.Audio] = audioLink
	switch m := cfg.Model.(type) {
	case abr.JointAlgorithm:
		s.joint = m
	case abr.PerTypeAlgorithm:
		s.perType = m
	default:
		return nil, fmt.Errorf("player: model %q implements neither JointAlgorithm nor PerTypeAlgorithm", cfg.Model.Name())
	}
	s.abandoner, _ = cfg.Model.(abr.Abandoner)
	if cfg.Muxed && s.joint == nil {
		return nil, errors.New("player: muxed mode requires a JointAlgorithm")
	}
	if cfg.Muxed && (cfg.FaultPlan != nil || cfg.Robustness != nil) {
		return nil, errors.New("player: fault injection and robustness policy require demuxed mode")
	}
	if cfg.Robustness != nil {
		pol := cfg.Robustness.WithDefaults()
		s.pol = &pol
		s.blacklist = faults.NewBlacklist()
	}
	s.rec = cfg.Recorder
	s.plan = cfg.FaultPlan
	if s.rec.Enabled() && cfg.FaultPlan != nil {
		// Observe positive fault decisions through a session-local copy so
		// shared plans stay untouched; the copy draws identically.
		plan := *cfg.FaultPlan
		plan.Observe = func(trackID string, idx, attempt int, f faults.Fault) {
			s.rec.Emit(timeline.Event{
				At:      s.eng.Now(),
				Kind:    timeline.FaultInjected,
				Track:   trackID,
				Index:   idx,
				Attempt: attempt,
				Detail:  f.Kind.String(),
			})
		}
		s.plan = &plan
	}
	if cfg.FaultPlan != nil {
		for _, w := range cfg.FaultPlan.Blackouts {
			videoLink.AddOutage(s.t0+w.Start, s.t0+w.End)
			if audioLink != videoLink {
				audioLink.AddOutage(s.t0+w.Start, s.t0+w.End)
			}
		}
	}
	if len(cfg.AudioResets) > 0 && !cfg.supportsAudioReset(s.joint != nil) {
		return nil, errors.New("player: AudioResets require a per-type model, SyncWindow > 0, or Muxed mode")
	}
	if cfg.Transport != nil {
		tc := *cfg.Transport
		mk := func(l *netsim.Link, label string) *netsim.Conn {
			c := netsim.NewConn(l, tc, label)
			c.SetRecorder(s.rec)
			return c
		}
		switch {
		case cfg.Muxed:
			// One combined object per chunk: a single connection carries
			// the whole session regardless of protocol.
			c := mk(videoLink, "conn")
			s.conns[media.Video], s.conns[media.Audio] = c, c
		case tc.Protocol != netsim.H1 && videoLink == audioLink:
			// H2/H3 multiplex both streams on one connection — the shared
			// congestion window the HoL coupling models.
			c := mk(videoLink, "conn")
			s.conns[media.Video], s.conns[media.Audio] = c, c
		default:
			// HTTP/1.1 serializes requests per connection (and split hosts
			// cannot share one): each stream owns a connection that pays
			// its own handshakes and idles out on its own — the demux
			// request-doubling pathology at the transport layer.
			s.conns[media.Video] = mk(videoLink, "conn-v")
			s.conns[media.Audio] = mk(audioLink, "conn-a")
		}
	}
	if (s.joint != nil || cfg.Muxed) && !s.content.Aligned() {
		// Joint scheduling and muxed packaging pair audio with video by
		// chunk index; that is only meaningful when both timelines share
		// their boundaries. Per-type models handle misaligned content.
		return nil, errors.New("player: joint scheduling and muxed mode require aligned audio/video chunk timelines")
	}
	for _, t := range []media.Type{media.Video, media.Audio} {
		s.numChunks[t] = s.content.NumChunksOf(t)
		s.chunkStarts[t] = make([]time.Duration, s.numChunks[t]+1)
		for i := 0; i < s.numChunks[t]; i++ {
			s.chunkStarts[t][i+1] = s.chunkStarts[t][i] + s.content.ChunkDurationOf(t, i)
		}
	}
	s.res = Result{
		ModelName:       cfg.Model.Name(),
		ContentDuration: s.content.Duration,
	}
	if cfg.Live != nil {
		if err := s.initLive(); err != nil {
			return nil, err
		}
	}

	// Kick off downloading and timeline logging.
	if s.joint != nil {
		if cfg.SyncWindow > 0 && !cfg.Muxed {
			s.comboFor = make(map[int]media.Combo)
			s.eng.Schedule(s.eng.Now(), func() { s.fetchWindowed(media.Video) })
			s.eng.Schedule(s.eng.Now(), func() { s.fetchWindowed(media.Audio) })
		} else {
			s.eng.Schedule(s.eng.Now(), s.fetchJoint)
		}
	} else {
		s.eng.Schedule(s.eng.Now(), func() { s.fetchIndependent(media.Video) })
		s.eng.Schedule(s.eng.Now(), func() { s.fetchIndependent(media.Audio) })
	}
	s.scheduleLog()
	for _, at := range cfg.AudioResets {
		at := at
		s.eng.Schedule(s.t0+at, func() { s.resetAudio(at) })
	}
	return s, nil
}

// Result returns the session's recorded timeline; complete once Done.
func (s *Session) Result() *Result { return &s.res }

// Done reports whether the session has finished or aborted.
func (s *Session) Done() bool { return s.ended }

// rel converts an absolute engine time to session time.
func (s *Session) rel(t time.Duration) time.Duration { return t - s.t0 }

// --- Playback ---------------------------------------------------------

// playPosAt returns the playback position at time now. Live sessions play
// at the catch-up controller's rate; VOD always at 1.0 (the branch is
// guarded so the VOD path computes exactly what it always did).
func (s *Session) playPosAt(now time.Duration) time.Duration {
	if s.playing {
		elapsed := now - s.lastTick
		if s.live != nil && s.live.rate != 100 {
			elapsed = time.Duration(float64(elapsed) * s.live.rateF())
		}
		return s.playPos + elapsed
	}
	return s.playPos
}

// syncPlay folds elapsed playing time into playPos.
func (s *Session) syncPlay(now time.Duration) {
	s.playPos = s.playPosAt(now)
	s.lastTick = now
}

func (s *Session) minFrontier() time.Duration {
	if s.frontier[media.Video] < s.frontier[media.Audio] {
		return s.frontier[media.Video]
	}
	return s.frontier[media.Audio]
}

// bufferOf returns the buffered duration of one type at time now.
func (s *Session) bufferOf(t media.Type, now time.Duration) time.Duration {
	b := s.frontier[t] - s.playPosAt(now)
	if b < 0 {
		b = 0
	}
	return b
}

// onFrontierAdvance reacts to new downloaded content: start playback, resume
// from a stall, and keep the underrun alarm accurate.
func (s *Session) onFrontierAdvance() {
	now := s.eng.Now()
	needed := func(threshold time.Duration) time.Duration {
		// Near the end of the content the full threshold may exceed what
		// remains; require only the remainder.
		remaining := s.content.Duration - s.playPosAt(now)
		if threshold > remaining {
			return remaining
		}
		return threshold
	}
	if !s.started {
		if s.minFrontier()-s.playPos >= needed(s.cfg.StartupBuffer) {
			s.started = true
			s.playing = true
			s.lastTick = now
			s.res.StartupDelay = s.rel(now)
			s.rec.Emit(timeline.Event{
				At: now, Dur: s.rel(now), Kind: timeline.Startup, Index: -1,
				VideoBuf: s.bufferOf(media.Video, now),
				AudioBuf: s.bufferOf(media.Audio, now),
			})
			s.rescheduleUnderrun()
		}
		return
	}
	if !s.playing && !s.ended {
		if s.minFrontier()-s.playPos >= needed(s.cfg.ResumeBuffer) {
			if now > s.stallAt {
				s.res.Stalls = append(s.res.Stalls, Stall{Start: s.rel(s.stallAt), End: s.rel(now)})
				s.rec.Emit(timeline.Event{
					At: now, Dur: now - s.stallAt, Kind: timeline.StallEnd, Index: -1,
					VideoBuf: s.bufferOf(media.Video, now),
					AudioBuf: s.bufferOf(media.Audio, now),
				})
			}
			s.playing = true
			s.lastTick = now
			s.rescheduleUnderrun()
		}
		return
	}
	if s.playing {
		s.rescheduleUnderrun()
	}
}

// rescheduleUnderrun arms the alarm for the instant playback catches up with
// the downloaded frontier (a stall) or reaches the end of the content.
func (s *Session) rescheduleUnderrun() {
	if s.underrun != nil {
		s.eng.Cancel(s.underrun)
		s.underrun = nil
	}
	if !s.playing || s.ended {
		return
	}
	now := s.eng.Now()
	target := s.minFrontier()
	if target > s.content.Duration {
		target = s.content.Duration
	}
	remaining := target - s.playPosAt(now)
	if s.live != nil && s.live.rate != 100 {
		// Wall time to play the remaining media at the current rate.
		remaining = time.Duration(float64(remaining) / s.live.rateF())
	}
	at := now + remaining
	if at < now {
		at = now
	}
	s.underrun = s.eng.Schedule(at, s.onUnderrun)
}

func (s *Session) onUnderrun() {
	s.underrun = nil
	now := s.eng.Now()
	s.syncPlay(now)
	if s.live != nil && s.content.Duration-s.playPos < time.Microsecond {
		// Rate-scaled clock arithmetic rounds at nanosecond granularity;
		// snap sub-microsecond remainders so a live session's final alarm
		// still reaches the end of the content.
		s.playPos = s.content.Duration
	}
	if s.playPos >= s.content.Duration {
		s.finish(now)
		return
	}
	// Ran out of one (or both) buffers: stall.
	s.playing = false
	s.stallAt = now
	s.rec.Emit(timeline.Event{
		At: now, Kind: timeline.StallStart, Index: -1,
		VideoBuf: s.bufferOf(media.Video, now),
		AudioBuf: s.bufferOf(media.Audio, now),
	})
}

func (s *Session) finish(now time.Duration) {
	s.ended = true
	s.playing = false
	s.res.Ended = true
	s.res.EndedAt = s.rel(now)
	s.logSample(now)
	s.rec.Emit(timeline.Event{At: now, Kind: timeline.SessionEnd, Index: -1, Detail: "ended"})
	s.teardown()
	if s.cfg.OnDone != nil {
		s.cfg.OnDone(s)
	}
}

// teardown releases everything the session holds on the shared engine and
// links: in-flight transfers are cancelled (freeing bottleneck capacity
// for other sessions), pending per-type timers are voided via the
// generation counters, and the underrun alarm is disarmed. After teardown
// the session schedules nothing further.
func (s *Session) teardown() {
	for t := range s.transfers {
		s.gen[t]++
		if tr := s.transfers[t]; tr != nil && !tr.Completed() {
			s.links[t].Cancel(tr)
		}
		s.transfers[t] = nil
	}
	if s.underrun != nil {
		s.eng.Cancel(s.underrun)
		s.underrun = nil
	}
	s.collectTransport()
	s.collectLive()
}

// collectTransport folds the connections' accounting into the result. An
// all-zero accounting — a transport that never charged anything, e.g.
// handshakes zeroed for the transport-off equivalence gate — reports
// nothing, keeping transport-inert runs byte-identical to transport-free
// ones.
func (s *Session) collectTransport() {
	cv, ca := s.conns[media.Video], s.conns[media.Audio]
	if cv == nil && ca == nil {
		return
	}
	var st netsim.ConnStats
	var proto netsim.Protocol
	if cv != nil {
		st.Add(cv.Stats())
		proto = cv.Protocol()
	}
	if ca != nil && ca != cv {
		st.Add(ca.Stats())
		proto = ca.Protocol()
	}
	if st == (netsim.ConnStats{}) {
		return
	}
	s.res.Transport = &TransportStats{
		Protocol:         proto.String(),
		Handshakes:       st.Handshakes,
		Resumes:          st.Resumes,
		FailedHandshakes: st.FailedHandshakes,
		Migrations:       st.Migrations,
		HoLStalls:        st.HoLStalls,
		HandshakeWait:    st.HandshakeWait,
		HoLWait:          st.HoLWait,
	}
}

// --- Timeline logging --------------------------------------------------

func (s *Session) scheduleLog() {
	s.eng.After(s.cfg.LogInterval, func() {
		if s.ended {
			return
		}
		now := s.eng.Now()
		if s.rel(now) >= s.cfg.Deadline {
			// Session is not making it to the end; abort without marking
			// playback complete.
			s.abort(fmt.Sprintf("deadline %v reached before playback finished", s.cfg.Deadline))
			return
		}
		s.logSample(now)
		s.scheduleLog()
	})
}

func (s *Session) logSample(now time.Duration) {
	sample := Sample{
		At:          s.rel(now),
		PlayPos:     s.playPosAt(now),
		VideoBuffer: s.bufferOf(media.Video, now),
		AudioBuffer: s.bufferOf(media.Audio, now),
		Video:       s.lastSel[media.Video],
		Audio:       s.lastSel[media.Audio],
		Stalled:     s.started && !s.playing && !s.ended,
	}
	if br, ok := s.cfg.Model.(abr.BandwidthReporter); ok {
		sample.Estimate, sample.EstimateOK = br.BandwidthEstimate()
	}
	s.res.Timeline = append(s.res.Timeline, sample)
	if s.rec.Enabled() {
		ev := timeline.Event{
			At: now, Kind: timeline.Buffer, Index: -1,
			VideoBuf: sample.VideoBuffer,
			AudioBuf: sample.AudioBuffer,
		}
		if sample.EstimateOK {
			ev.Rate = sample.Estimate.Kbps()
		}
		s.rec.Emit(ev)
	}
}

// --- Decision state ----------------------------------------------------

// emitDecision records one ABR selection with the buffer levels and
// bandwidth estimate that drove it. Callers guard with s.rec.Enabled()
// before building the track string.
func (s *Session) emitDecision(typ, track string, idx int, now time.Duration) {
	ev := timeline.Event{
		At:       now,
		Kind:     timeline.Decision,
		Type:     typ,
		Track:    track,
		Index:    idx,
		VideoBuf: s.bufferOf(media.Video, now),
		AudioBuf: s.bufferOf(media.Audio, now),
	}
	if br, ok := s.cfg.Model.(abr.BandwidthReporter); ok {
		if est, estOK := br.BandwidthEstimate(); estOK {
			ev.Rate = est.Kbps()
		}
	}
	s.rec.Emit(ev)
}

func (s *Session) state(chunkIdx int) abr.State {
	now := s.eng.Now()
	st := abr.State{
		Now:           s.rel(now),
		PlayPos:       s.playPosAt(now),
		VideoBuffer:   s.bufferOf(media.Video, now),
		AudioBuffer:   s.bufferOf(media.Audio, now),
		ChunkIndex:    chunkIdx,
		ChunkDuration: s.content.ChunkDuration,
		Startup:       !s.started,
		LastVideo:     s.lastSel[media.Video],
		LastAudio:     s.lastSel[media.Audio],
	}
	if s.live != nil {
		st.Latency = s.liveLatency(now)
		st.LatencyTarget = s.live.cfg.LatencyTarget
		st.PlaybackRate = s.live.rateF()
	}
	return st
}

// --- Downloading: joint (chunk-synced) ----------------------------------

// fetchJoint drives the chunk-synced loop: decide a combination for chunk
// `next`, download audio and video together, then advance.
func (s *Session) fetchJoint() {
	if s.ended || s.jointPending > 0 {
		return
	}
	idx := s.next[media.Video] // both types share the index in joint mode
	if idx >= s.numChunks[media.Video] {
		return
	}
	now := s.eng.Now()
	if s.live != nil {
		if at := s.chunkAvailableAt(media.Video, idx); at > now {
			s.liveWakeAt(liveWakeJoint, at, s.fetchJoint)
			return
		}
	}
	// Gate on the fuller buffer: in synced mode both buffers advance
	// together, but the playhead drains them equally, so min==max except
	// for in-flight skew.
	gate := s.bufferOf(media.Video, now)
	if b := s.bufferOf(media.Audio, now); b > gate {
		gate = b
	}
	if gate >= s.cfg.MaxBuffer {
		// Wake when the buffer has drained just below the cap.
		s.eng.Schedule(now+(gate-s.cfg.MaxBuffer)+time.Millisecond, s.fetchJoint)
		return
	}
	combo := s.joint.SelectCombo(s.state(idx))
	if combo.Video == nil || combo.Audio == nil {
		panic(fmt.Sprintf("player: model %q returned incomplete combo %v", s.joint.Name(), combo))
	}
	if s.rec.Enabled() {
		s.emitDecision("combo", combo.Video.ID+"+"+combo.Audio.ID, idx, now)
	}
	s.lastSel[media.Video] = combo.Video
	s.lastSel[media.Audio] = combo.Audio
	if s.cfg.Muxed {
		s.jointPending = 1
		s.startMuxedChunk(idx, combo, func() { s.jointChunkDone() })
		return
	}
	s.jointPending = 2
	s.startChunk(media.Video, idx, combo.Video, 0, func() { s.jointChunkDone() })
	s.startChunk(media.Audio, idx, combo.Audio, 0, func() { s.jointChunkDone() })
}

// startMuxedChunk downloads one combined audio+video object. Observer
// events carry the video type (the muxed stream is one flow).
func (s *Session) startMuxedChunk(idx int, combo media.Combo, then func()) {
	size := s.content.ChunkSize(combo.Video, idx) + s.content.ChunkSize(combo.Audio, idx)
	now := s.eng.Now()
	decidedAt := now
	link := s.links[media.Video]
	s.cfg.Model.OnStart(abr.TransferInfo{
		Type:       media.Video,
		At:         s.rel(now),
		Concurrent: link.ActiveTransfers() + 1,
	})
	opts := netsim.StartOptions{
		Label: "muxed",
		OnComplete: func(tr *netsim.Transfer) {
			if s.ended {
				return // teardown raced this completion on a shared engine
			}
			done := s.eng.Now()
			if s.rec.Enabled() {
				s.rec.Emit(timeline.Event{
					At:    done,
					Dur:   done - tr.Started(),
					Kind:  timeline.RequestDone,
					Type:  "muxed",
					Track: combo.Video.ID + "+" + combo.Audio.ID,
					Index: idx,
					Bytes: tr.Size(),
				})
			}
			s.frontier[media.Video] = s.chunkStarts[media.Video][idx+1]
			s.frontier[media.Audio] = s.chunkStarts[media.Video][idx+1] // muxed requires aligned timelines
			s.res.Chunks = append(s.res.Chunks,
				ChunkDecision{Index: idx, Type: media.Video, Track: combo.Video, DecidedAt: s.rel(decidedAt), CompletedAt: s.rel(done), Bytes: s.content.ChunkSize(combo.Video, idx)},
				ChunkDecision{Index: idx, Type: media.Audio, Track: combo.Audio, DecidedAt: s.rel(decidedAt), CompletedAt: s.rel(done), Bytes: s.content.ChunkSize(combo.Audio, idx)},
			)
			s.cfg.Model.OnComplete(abr.TransferInfo{
				Type:       media.Video,
				Bytes:      float64(tr.Size()),
				Duration:   tr.Duration(),
				At:         s.rel(done),
				Concurrent: link.ActiveTransfers() + 1,
			})
			s.onFrontierAdvance()
			then()
		},
	}
	if s.cfg.SampleInterval > 0 {
		opts.SampleEvery = s.cfg.SampleInterval
		opts.OnSample = func(tr *netsim.Transfer, bytes float64, interval time.Duration) {
			if s.ended {
				return
			}
			s.cfg.Model.OnProgress(abr.TransferInfo{
				Type:       media.Video,
				Bytes:      bytes,
				Duration:   interval,
				At:         s.rel(s.eng.Now()),
				Concurrent: link.ActiveTransfers(),
			})
		}
	}
	if s.cfg.OnRequest != nil {
		opts.ExtraDelay = s.cfg.OnRequest(ChunkRequest{
			Index: idx, Type: media.Video, Track: combo.Video, MuxedWith: combo.Audio,
		})
	}
	if s.rec.Enabled() {
		s.rec.Emit(timeline.Event{
			At:    now,
			Kind:  timeline.Request,
			Type:  "muxed",
			Track: combo.Video.ID + "+" + combo.Audio.ID,
			Index: idx,
			Bytes: size,
		})
	}
	s.transfers[media.Video] = s.startWire(media.Video, size, opts)
}

func (s *Session) jointChunkDone() {
	s.jointPending--
	if s.jointPending == 0 {
		s.next[media.Video]++
		s.next[media.Audio]++
		s.fetchJoint()
	}
}

// --- Mid-session audio reset (language switch) ---------------------------

// resetAudio discards the buffered audio (or, in muxed mode, both streams)
// beyond the playback position and restarts fetching from there, recording
// the waste.
func (s *Session) resetAudio(at time.Duration) {
	if s.ended {
		return
	}
	now := s.eng.Now()
	playPos := s.playPosAt(now)
	// First chunk whose start is at or past the playhead: the partially
	// played chunk keeps playing; everything after it is refetched. Each
	// type resolves the position on its own timeline (shaped content can
	// have misaligned audio/video boundaries).
	refetchFrom := func(t media.Type) int {
		idx := 0
		for idx < s.numChunks[t] && s.chunkStarts[t][idx] < playPos {
			idx++
		}
		return idx
	}
	idx := refetchFrom(media.Audio)
	rec := AudioReset{At: s.rel(now), RefetchFrom: idx}

	discard := func(t media.Type) {
		tIdx := refetchFrom(t)
		// Void pending retry/timeout timers for this stream: they refer to
		// chunks the reset may be discarding.
		s.gen[t]++
		if tr := s.transfers[t]; tr != nil && !tr.Completed() {
			rec.DiscardedBytes += int64(tr.Done())
			s.links[t].Cancel(tr)
			s.transfers[t] = nil
			s.inflight[t] = false
		}
		for _, ch := range s.res.Chunks {
			if ch.Type == t && ch.Index >= tIdx {
				rec.DiscardedBytes += ch.Bytes
				rec.DiscardedSeconds += s.content.ChunkDurationOf(t, ch.Index)
			}
		}
		if s.next[t] > tIdx {
			s.next[t] = tIdx
		}
		if s.frontier[t] > s.chunkStarts[t][tIdx] {
			s.frontier[t] = s.chunkStarts[t][tIdx]
		}
	}

	if s.cfg.Muxed {
		discard(media.Audio)
		discard(media.Video)
		s.jointPending = 0
		s.res.AudioResets = append(s.res.AudioResets, rec)
		s.rec.Emit(timeline.Event{
			At: now, Kind: timeline.AudioReset, Index: rec.RefetchFrom,
			Bytes: rec.DiscardedBytes,
		})
		s.rescheduleUnderrun()
		s.fetchJoint()
		return
	}
	discard(media.Audio)
	// Drop cached joint decisions for refetched positions so the model
	// re-decides them (a language switch changes the allowed pairings).
	for k := range s.comboFor {
		if k >= idx {
			delete(s.comboFor, k)
		}
	}
	s.res.AudioResets = append(s.res.AudioResets, rec)
	s.rec.Emit(timeline.Event{
		At: now, Kind: timeline.AudioReset, Index: rec.RefetchFrom,
		Bytes: rec.DiscardedBytes,
	})
	s.rescheduleUnderrun()
	if s.perType != nil {
		s.fetchIndependent(media.Audio)
	} else {
		s.fetchWindowed(media.Audio)
		s.fetchWindowed(media.Video) // skew bound may have shifted
	}
}

// --- Downloading: joint with bounded skew (SyncWindow > 0) ---------------

// fetchWindowed runs one stream's loop under the skew bound: a stream may
// lead the other by at most SyncWindow chunk positions. The combination is
// still decided jointly, once per position, by whichever stream reaches it
// first.
func (s *Session) fetchWindowed(t media.Type) {
	if s.ended || s.inflight[t] {
		return
	}
	idx := s.next[t]
	if idx >= s.numChunks[t] {
		return
	}
	other := media.Audio
	if t == media.Audio {
		other = media.Video
	}
	// Skew bound: wait for the other stream (its completion re-kicks us).
	if idx-s.next[other] > s.cfg.SyncWindow {
		return
	}
	now := s.eng.Now()
	if s.live != nil {
		if at := s.chunkAvailableAt(t, idx); at > now {
			s.liveWakeAt(liveWakeSlot(t), at, func() { s.fetchWindowed(t) })
			return
		}
	}
	if b := s.bufferOf(t, now); b >= s.cfg.MaxBuffer {
		s.eng.Schedule(now+(b-s.cfg.MaxBuffer)+time.Millisecond, func() { s.fetchWindowed(t) })
		return
	}
	combo, ok := s.comboFor[idx]
	if !ok {
		combo = s.joint.SelectCombo(s.state(idx))
		if combo.Video == nil || combo.Audio == nil {
			panic(fmt.Sprintf("player: model %q returned incomplete combo %v", s.joint.Name(), combo))
		}
		if s.rec.Enabled() {
			s.emitDecision("combo", combo.Video.ID+"+"+combo.Audio.ID, idx, now)
		}
		s.comboFor[idx] = combo
		delete(s.comboFor, idx-2*s.cfg.SyncWindow-2) // bound the map
	}
	track := combo.Video
	if t == media.Audio {
		track = combo.Audio
	}
	s.lastSel[t] = track
	s.inflight[t] = true
	s.startChunk(t, idx, track, 0, func() {
		s.inflight[t] = false
		s.next[t]++
		s.fetchWindowed(t)
		s.fetchWindowed(other) // it may have been skew-blocked on us
	})
}

// --- Downloading: independent per-type loops ----------------------------

func (s *Session) fetchIndependent(t media.Type) {
	if s.ended {
		return
	}
	idx := s.next[t]
	if idx >= s.numChunks[t] {
		return
	}
	now := s.eng.Now()
	if s.live != nil {
		if at := s.chunkAvailableAt(t, idx); at > now {
			s.liveWakeAt(liveWakeSlot(t), at, func() { s.fetchIndependent(t) })
			return
		}
	}
	if b := s.bufferOf(t, now); b >= s.cfg.MaxBuffer {
		s.eng.Schedule(now+(b-s.cfg.MaxBuffer)+time.Millisecond, func() { s.fetchIndependent(t) })
		return
	}
	track := s.perType.SelectTrack(t, s.state(idx))
	if track == nil || track.Type != t {
		panic(fmt.Sprintf("player: model %q returned bad track for %s", s.perType.Name(), t))
	}
	if s.rec.Enabled() {
		s.emitDecision(t.String(), track.ID, idx, now)
	}
	s.lastSel[t] = track
	s.startChunk(t, idx, track, 0, func() {
		s.next[t]++
		s.fetchIndependent(t)
	})
}

// --- Transfer plumbing ---------------------------------------------------

// startWire puts one request on the wire, through the stream's transport
// connection when one is configured.
func (s *Session) startWire(t media.Type, size int64, opts netsim.StartOptions) *netsim.Transfer {
	if c := s.conns[t]; c != nil {
		return c.Start(size, opts)
	}
	return s.links[t].Start(size, opts)
}

func (s *Session) startChunk(t media.Type, idx int, track *media.Track, attempt int, then func()) {
	if s.ended {
		return
	}
	now := s.eng.Now()
	// A robust client never issues a request to a blacklisted track: the
	// model's selection is substituted with the nearest healthy neighbour.
	if s.pol != nil && s.blacklist.Blocked(track.ID, now) {
		if repl := s.failoverTrack(t, track); repl != nil && repl != track {
			s.res.Failovers = append(s.res.Failovers, Failover{Index: idx, Type: t, From: track, To: repl, At: s.rel(now)})
			if s.rec.Enabled() {
				s.rec.Emit(timeline.Event{
					At: now, Kind: timeline.Failover, Type: t.String(),
					Track: repl.ID, Index: idx, Detail: track.ID,
				})
			}
			s.lastSel[t] = repl
			track = repl
			attempt = 0
		}
	}
	if s.rec.Enabled() {
		s.rec.Emit(timeline.Event{
			At: now, Kind: timeline.Request, Type: t.String(),
			Track: track.ID, Index: idx, Attempt: attempt,
			Bytes: s.content.ChunkSize(track, idx),
		})
	}
	var fault faults.Fault
	faulted := false
	if s.plan != nil {
		fault, faulted = s.plan.SegmentFault(track.ID, idx, attempt)
	}
	// transportDelay is extra pre-byte latency charged by the transport
	// (currently only QUIC path validation after a migration fault).
	var transportDelay time.Duration
	if faulted {
		switch fault.Kind {
		case faults.HTTP404, faults.HTTP503:
			// Fail fast after the request round trip; no bytes move, so
			// the model's estimator sees nothing.
			s.afterGuarded(t, s.links[t].RTT, func() {
				s.failChunk(t, idx, track, attempt, fault.Kind, 0, then)
			})
			return
		case faults.Timeout:
			// The response never arrives. With no timeout policy the
			// request hangs until the session Deadline kills the run;
			// with one, it fails at RequestTimeout.
			if s.pol == nil {
				s.recordFault(t, idx, track, attempt, fault.Kind, 0)
				return
			}
			s.afterGuarded(t, s.pol.RequestTimeout, func() {
				s.failChunk(t, idx, track, attempt, fault.Kind, 0, then)
			})
			return
		case faults.HandshakeFail:
			// The connection attempt dies in setup: its round trips are
			// wasted, no bytes move, and the next attempt starts on a
			// cold connection. Without a transport the cost degenerates
			// to the bare request round trip.
			d := s.links[t].RTT
			if c := s.conns[t]; c != nil {
				d = c.FailHandshake()
			}
			s.afterGuarded(t, d, func() {
				s.failChunk(t, idx, track, attempt, fault.Kind, 0, then)
			})
			return
		case faults.Migration:
			// Not a failure: the network path changed under the client.
			// QUIC keeps the connection and pays one path-validation
			// round trip on this request; TCP tears down and reconnects
			// (the handshake is charged when the request dispatches).
			// The body arrives intact.
			if c := s.conns[t]; c != nil {
				transportDelay = c.Migrate()
			}
			faulted = false
		}
		// Reset / Truncate: a fraction of the body arrives, then the
		// connection dies — a partial transfer whose completion is the
		// failure instant. The arrived bytes still inform the estimator.
	}
	size := s.content.ChunkSize(track, idx)
	wireSize := size
	if faulted {
		wireSize = int64(float64(size) * fault.Fraction)
	}
	decidedAt := now
	var transfer *netsim.Transfer
	var timeoutEv *netsim.Event
	link := s.links[t]
	info := abr.TransferInfo{
		Type:       t,
		At:         s.rel(now),
		Concurrent: link.ActiveTransfers() + 1,
	}
	s.cfg.Model.OnStart(info)
	opts := netsim.StartOptions{
		Label: t.String(),
		OnComplete: func(tr *netsim.Transfer) {
			if s.ended {
				return // teardown raced this completion on a shared engine
			}
			if timeoutEv != nil {
				s.eng.Cancel(timeoutEv)
				timeoutEv = nil
			}
			done := s.eng.Now()
			if faulted {
				s.cfg.Model.OnComplete(abr.TransferInfo{
					Type:       t,
					Bytes:      tr.Done(),
					Duration:   done - tr.Started(),
					At:         s.rel(done),
					Concurrent: link.ActiveTransfers() + 1,
				})
				// The connection died with the body (RST or early close):
				// tear it down so the retry pays a fresh setup — full
				// handshake on H1/H2, 0-RTT resumption on H3.
				if fault.Kind == faults.Reset || fault.Kind == faults.Truncate {
					if c := s.conns[t]; c != nil {
						c.Reset()
					}
				}
				s.failChunk(t, idx, track, attempt, fault.Kind, int64(tr.Done()), then)
				return
			}
			if s.pol != nil {
				s.blacklist.Clear(track.ID)
			}
			if s.rec.Enabled() {
				s.rec.Emit(timeline.Event{
					At: done, Dur: done - tr.Started(), Kind: timeline.RequestDone,
					Type: t.String(), Track: track.ID, Index: idx,
					Attempt: attempt, Bytes: tr.Size(),
				})
			}
			s.frontier[t] = s.chunkStarts[t][idx+1]
			s.res.Chunks = append(s.res.Chunks, ChunkDecision{
				Index:       idx,
				Type:        t,
				Track:       track,
				DecidedAt:   s.rel(decidedAt),
				CompletedAt: s.rel(done),
				Bytes:       tr.Size(),
			})
			s.cfg.Model.OnComplete(abr.TransferInfo{
				Type:       t,
				Bytes:      float64(tr.Size()),
				Duration:   tr.Duration(),
				At:         s.rel(done),
				Concurrent: link.ActiveTransfers() + 1,
			})
			s.onFrontierAdvance()
			then()
		},
	}
	if s.cfg.SampleInterval > 0 {
		opts.SampleEvery = s.cfg.SampleInterval
		opts.OnSample = func(tr *netsim.Transfer, bytes float64, interval time.Duration) {
			if s.ended {
				return
			}
			s.cfg.Model.OnProgress(abr.TransferInfo{
				Type:       t,
				Bytes:      bytes,
				Duration:   interval,
				At:         s.rel(s.eng.Now()),
				Concurrent: link.ActiveTransfers(),
			})
			if !faulted {
				s.maybeAbandon(tr, t, idx, track, attempt, then)
			}
		}
	}
	if s.cfg.OnRequest != nil {
		opts.ExtraDelay = s.cfg.OnRequest(ChunkRequest{
			Index: idx, Type: t, Track: track, Attempt: attempt,
		})
	}
	opts.ExtraDelay += transportDelay
	transfer = s.startWire(t, wireSize, opts)
	s.transfers[t] = transfer
	// Per-request timeout: a transfer stuck behind an outage (or just too
	// slow) is cancelled and handed to the failure path.
	if s.pol != nil && s.pol.RequestTimeout > 0 {
		gen := s.gen[t]
		timeoutEv = s.eng.After(s.pol.RequestTimeout, func() {
			timeoutEv = nil
			// Drop if the session ended, an audio reset discarded the
			// stream, the transfer was abandoned-and-replaced (it is no
			// longer the type's current transfer), it completed, or it
			// was cancelled. The Cancelled check is load-bearing: an
			// abandoned transfer's replacement request can fail fast
			// (404/503/hung response) without starting a transfer, which
			// leaves s.transfers[t] still pointing at the abandoned one —
			// without the check this stale timer would time out the
			// abandoned attempt and fork a second retry chain for the
			// same chunk, double-counting the retry and eventually
			// calling the chunk's completion continuation twice.
			if s.ended || s.gen[t] != gen || s.transfers[t] != transfer ||
				transfer.Completed() || transfer.Cancelled() {
				return
			}
			link.Cancel(transfer)
			if transfer.Completed() {
				return // the last byte arrived at this very instant
			}
			done := s.eng.Now()
			s.cfg.Model.OnComplete(abr.TransferInfo{
				Type:       t,
				Bytes:      transfer.Done(),
				Duration:   done - transfer.Started(),
				At:         s.rel(done),
				Concurrent: link.ActiveTransfers() + 1,
			})
			if s.rec.Enabled() {
				s.rec.Emit(timeline.Event{
					At: done, Kind: timeline.RequestTimeout, Type: t.String(),
					Track: track.ID, Index: idx, Attempt: attempt,
					Bytes: int64(transfer.Done()),
				})
			}
			s.failChunk(t, idx, track, attempt, faults.Timeout, int64(transfer.Done()), then)
		})
	}
}

// --- Failure handling: retries, blacklisting, failover -------------------

// afterGuarded schedules fn after d, dropping it if the session ended or
// the stream's generation moved (an audio reset discarded the chunk the
// callback refers to).
func (s *Session) afterGuarded(t media.Type, d time.Duration, fn func()) {
	gen := s.gen[t]
	s.eng.After(d, func() {
		if s.ended || s.gen[t] != gen {
			return
		}
		fn()
	})
}

// recordFault appends one failure event to the result.
func (s *Session) recordFault(t media.Type, idx int, track *media.Track, attempt int, kind faults.Kind, wasted int64) {
	s.res.Faults = append(s.res.Faults, FaultEvent{
		Index: idx, Type: t, Track: track, Kind: kind,
		Attempt: attempt, At: s.rel(s.eng.Now()), WastedBytes: wasted,
	})
	if s.rec.Enabled() {
		s.rec.Emit(timeline.Event{
			At: s.eng.Now(), Kind: timeline.RequestFailed, Type: t.String(),
			Track: track.ID, Index: idx, Attempt: attempt,
			Detail: kind.String(), Bytes: wasted,
		})
	}
}

// failChunk is the load-error handler. Without a policy the session
// aborts (the pre-robustness behaviour). With one, the failed track is
// struck, the download retried with seeded exponential backoff while the
// attempt budget lasts, and failed over to the nearest healthy track once
// it is spent — the other media type keeps streaming throughout.
func (s *Session) failChunk(t media.Type, idx int, track *media.Track, attempt int, kind faults.Kind, wasted int64, then func()) {
	if s.ended {
		return
	}
	s.recordFault(t, idx, track, attempt, kind, wasted)
	if s.pol == nil {
		s.abort(fmt.Sprintf("chunk %d %s %s failed (%s) with no retry policy", idx, t, track.ID, kind))
		return
	}
	now := s.eng.Now()
	key := faults.Key(s.retrySeed(), track.ID, idx)
	blocked := s.blacklist.Strike(track.ID, now, *s.pol)
	if blocked && s.rec.Enabled() {
		s.rec.Emit(timeline.Event{
			At: now, Kind: timeline.Blacklist, Type: t.String(),
			Track: track.ID, Index: idx,
		})
	}
	if !blocked && attempt+1 < s.pol.MaxAttempts {
		s.res.Retries++
		if s.rec.Enabled() {
			s.rec.Emit(timeline.Event{
				At: now, Kind: timeline.Retry, Type: t.String(),
				Track: track.ID, Index: idx, Attempt: attempt + 1,
			})
		}
		s.afterGuarded(t, s.pol.Backoff(attempt, key), func() {
			s.startChunk(t, idx, track, attempt+1, then)
		})
		return
	}
	repl := s.failoverTrack(t, track)
	if repl == nil {
		// Single-track ladder: the only option is the one that failed.
		repl = track
	}
	if repl != track {
		s.res.Failovers = append(s.res.Failovers, Failover{Index: idx, Type: t, From: track, To: repl, At: s.rel(now)})
		if s.rec.Enabled() {
			s.rec.Emit(timeline.Event{
				At: now, Kind: timeline.Failover, Type: t.String(),
				Track: repl.ID, Index: idx, Detail: track.ID,
			})
		}
		s.lastSel[t] = repl
	}
	s.res.Retries++
	if s.rec.Enabled() {
		s.rec.Emit(timeline.Event{
			At: now, Kind: timeline.Retry, Type: t.String(),
			Track: repl.ID, Index: idx,
		})
	}
	s.afterGuarded(t, s.pol.Backoff(attempt, key), func() {
		s.startChunk(t, idx, repl, 0, then)
	})
}

// failoverTrack picks the substitute for a failing track: the highest
// non-blacklisted track at or below the failed bitrate, else the cheapest
// non-blacklisted track, else (everything exiled) the cheapest track of
// the type — a robust client keeps trying rather than giving up.
func (s *Session) failoverTrack(t media.Type, failed *media.Track) *media.Track {
	ladder := s.content.VideoTracks
	if t == media.Audio {
		ladder = s.content.AudioTracks
	}
	now := s.eng.Now()
	var lower, lowest, cheapest *media.Track
	for _, tr := range ladder {
		if cheapest == nil || tr.AvgBitrate < cheapest.AvgBitrate {
			cheapest = tr
		}
		if tr == failed || s.blacklist.Blocked(tr.ID, now) {
			continue
		}
		if lowest == nil || tr.AvgBitrate < lowest.AvgBitrate {
			lowest = tr
		}
		if tr.AvgBitrate <= failed.AvgBitrate && (lower == nil || tr.AvgBitrate > lower.AvgBitrate) {
			lower = tr
		}
	}
	switch {
	case lower != nil:
		return lower
	case lowest != nil:
		return lowest
	default:
		return cheapest
	}
}

// retrySeed keys the backoff jitter; sharing the fault plan's seed keeps
// one knob controlling all injected randomness.
func (s *Session) retrySeed() int64 {
	if s.plan != nil {
		return s.plan.Seed
	}
	return 1
}

// abort ends the session without marking playback complete.
func (s *Session) abort(reason string) {
	s.res.Aborted = true
	s.res.AbortReason = reason
	s.ended = true
	s.playing = false
	s.logSample(s.eng.Now())
	s.rec.Emit(timeline.Event{At: s.eng.Now(), Kind: timeline.SessionEnd, Index: -1, Detail: reason})
	s.teardown()
	if s.cfg.OnDone != nil {
		s.cfg.OnDone(s)
	}
}

// maybeAbandon consults the model's abandonment rule for an in-flight
// chunk; a replacement track cancels the transfer and refetches the chunk.
func (s *Session) maybeAbandon(tr *netsim.Transfer, t media.Type, idx int, track *media.Track, attempt int, then func()) {
	if s.abandoner == nil || tr.Completed() {
		return
	}
	now := s.eng.Now()
	repl := s.abandoner.Abandon(abr.DownloadProgress{
		Type:       t,
		Track:      track,
		ChunkIndex: idx,
		BytesDone:  tr.Done(),
		BytesTotal: tr.Size(),
		Elapsed:    now - tr.Started(),
		Buffer:     s.bufferOf(t, now),
		Attempt:    attempt,
	})
	if repl == nil || repl == track {
		return
	}
	if repl.Type != t {
		panic(fmt.Sprintf("player: model %q abandoned to a %s track for a %s download", s.cfg.Model.Name(), repl.Type, t))
	}
	s.links[t].Cancel(tr)
	// Close the observer's view of the aborted transfer with what actually
	// moved, then record and refetch.
	s.cfg.Model.OnComplete(abr.TransferInfo{
		Type:       t,
		Bytes:      tr.Done(),
		Duration:   now - tr.Started(),
		At:         s.rel(now),
		Concurrent: s.links[t].ActiveTransfers() + 1,
	})
	s.res.Abandonments = append(s.res.Abandonments, Abandonment{
		Index: idx, Type: t, From: track, To: repl, At: s.rel(now),
	})
	if s.rec.Enabled() {
		s.rec.Emit(timeline.Event{
			At: now, Kind: timeline.Abandon, Type: t.String(),
			Track: repl.ID, Index: idx, Detail: track.ID,
			Bytes: int64(tr.Done()),
		})
	}
	s.lastSel[t] = repl
	s.startChunk(t, idx, repl, attempt+1, then)
}
