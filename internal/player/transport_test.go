package player

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/faults"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/timeline"
	"demuxabr/internal/trace"
)

// abandonOnce is a fixed joint selector that abandons the first video
// download it sees progress on, switching to the given replacement track.
type abandonOnce struct {
	abr.NopObserver
	combo media.Combo
	to    *media.Track
	fired bool
}

func (a *abandonOnce) Name() string                      { return "abandon-once" }
func (a *abandonOnce) SelectCombo(abr.State) media.Combo { return a.combo }
func (a *abandonOnce) Abandon(p abr.DownloadProgress) *media.Track {
	if a.fired || p.Type != media.Video {
		return nil
	}
	a.fired = true
	return a.to
}

// Regression test for the stale-RequestTimeout double-fail. The window:
// an in-flight download is abandoned (cancelled and replaced), and the
// replacement request hits a fail-fast fault (404 here) — which returns
// without putting a transfer on the wire, so s.transfers[t] still points
// at the abandoned transfer when the abandoned attempt's timeout timer
// fires. Without the Cancelled() guard the stale timer would "time out"
// the abandoned attempt: a bogus Timeout fault on a plan that only
// injects 404s, plus a second retry chain for the same chunk. The fault
// plan and policy are seeded/shaped to pin that exact event sequence:
// abandon at the first progress sample (~125ms), replacement 404s
// immediately, and the first retry backoff (>= 3.75s) strands the 2s
// timeout timer inside a transfer-less window.
func TestStaleTimeoutAfterAbandonToFaultedTrack(t *testing.T) {
	c := media.DramaShow()
	from, to := c.VideoTracks[0], c.VideoTracks[1]
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(media.Kbps(4000)))
	pol := faults.Policy{
		MaxAttempts:    4,
		RequestTimeout: 2 * time.Second,
		BaseBackoff:    5 * time.Second,
		MaxBackoff:     5 * time.Second,
		BackoffFactor:  1,
	}
	res, err := Run(link, Config{
		Content: c,
		Model:   &abandonOnce{combo: media.Combo{Video: from, Audio: c.AudioTracks[0]}, to: to},
		FaultPlan: &faults.Plan{
			Seed:           11,
			Rate:           1,
			Kinds:          []faults.Kind{faults.HTTP404},
			Targets:        []string{to.ID},
			MaxPersistence: -1, // the replacement track is simply gone
		},
		Robustness: &pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Abandonments) != 1 {
		t.Fatalf("abandonments = %d, want exactly 1", len(res.Abandonments))
	}
	if len(res.Faults) == 0 {
		t.Fatal("the 404-target plan injected no faults; the repro did not arm")
	}
	for _, f := range res.Faults {
		if f.Kind == faults.Timeout {
			t.Fatalf("stale timeout fired for the abandoned attempt: %+v (plan injects only 404s)", f)
		}
	}
	// The double-fail's other symptom: the forked retry chain completes
	// the chunk twice.
	seen := map[int]int{}
	for _, ch := range res.ChunksOf(media.Video) {
		seen[ch.Index]++
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("video chunk %d completed %d times, want once", idx, n)
		}
	}
	if !res.Ended || res.Aborted {
		t.Fatalf("session did not finish: Ended=%v Aborted=%v (%s)", res.Ended, res.Aborted, res.AbortReason)
	}
}

// Regression test for retries paying no reconnect cost. A Reset fault
// kills the connection mid-body; the retry must find the connection torn
// down and pay a fresh setup — the resume price on a warm H1 connection.
// Without the conn.Reset() call on the faulted-completion path the retry
// reuses the supposedly-dead connection for free: no resumes, no
// handshake events beyond the two initial ones.
func TestResetFaultForcesReconnectOnRetry(t *testing.T) {
	c := media.DramaShow()
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(media.Kbps(10000)))
	link.RTT = 50 * time.Millisecond
	rec := timeline.New(0, "test")
	pol := faults.DefaultPolicy()
	tc := netsim.DefaultTransport(netsim.H1)
	res, err := Run(link, Config{
		Content: c,
		Model:   &fixedJoint{combo: lowestCombo(c)},
		FaultPlan: &faults.Plan{
			Seed:           21,
			Rate:           1,
			Kinds:          []faults.Kind{faults.Reset},
			Targets:        []string{c.VideoTracks[0].ID},
			MaxPersistence: 1, // every first attempt resets, every retry succeeds
		},
		Robustness: &pol,
		Transport:  &tc,
		Recorder:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ended || res.Aborted {
		t.Fatalf("session did not finish: Ended=%v Aborted=%v (%s)", res.Ended, res.Aborted, res.AbortReason)
	}
	resets := 0
	for _, f := range res.Faults {
		if f.Kind == faults.Reset {
			resets++
		}
	}
	if resets == 0 {
		t.Fatal("the rate-1 reset plan injected no faults; the repro did not arm")
	}
	if res.Transport == nil {
		t.Fatal("transport stats missing on a session that paid handshakes")
	}
	if res.Transport.Resumes < resets {
		t.Errorf("resumes = %d for %d resets — retries are reusing the dead connection", res.Transport.Resumes, resets)
	}
	resumeEvents := 0
	for _, ev := range rec.Events() {
		if ev.Kind == timeline.Handshake && strings.HasSuffix(ev.Detail, "-resume") {
			resumeEvents++
		}
	}
	if resumeEvents == 0 {
		t.Error("retry timeline contains no resume handshake event")
	}
}

// TestZeroCostTransportSessionEquivalence is the session-level half of
// the transport-off equivalence contract: a session run through an
// all-zero-cost H1 transport must produce a Result deep-equal to the
// same session run with no transport at all — including a nil Transport
// rollup, since an inert transport reports nothing.
func TestZeroCostTransportSessionEquivalence(t *testing.T) {
	c := media.DramaShow()
	pol := faults.DefaultPolicy()
	run := func(tc *netsim.TransportConfig) *Result {
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, trace.Fig3VaryingAvg600())
		link.RTT = 30 * time.Millisecond
		res, err := Run(link, Config{
			Content:    c,
			Model:      &fixedJoint{combo: lowestCombo(c)},
			FaultPlan:  &faults.Plan{Seed: 7, Rate: 0.1},
			Robustness: &pol,
			Transport:  tc,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bare := run(nil)
	zeroed := run(&netsim.TransportConfig{Protocol: netsim.H1, MaxStreams: 1})
	if zeroed.Transport != nil {
		t.Fatalf("inert transport reported stats: %+v", zeroed.Transport)
	}
	if !reflect.DeepEqual(bare, zeroed) {
		t.Error("zero-cost transport session diverged from the bare-link session")
	}
}
