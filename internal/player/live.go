package player

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"demuxabr/internal/media"
	"demuxabr/internal/timeline"
)

// Live mode: the content plays the role of a live stream whose edge
// advances in real (engine) time. Three mechanisms distinguish it from
// VOD, all guarded on Session.live so VOD sessions execute the exact
// pre-live code paths:
//
//   - availability gating: chunk i cannot be requested before the encoder
//     has produced it. With CMAF parts (LiveConfig.PartTarget > 0) the
//     fetch may start once the first part exists — the LL-HLS blocking
//     part request / LL-DASH availabilityTimeOffset model — otherwise it
//     waits for the whole segment;
//   - a latency-target controller: playback rate nudges up/down (dash.js
//     catch-up mechanism) to hold live-edge latency at the target, and a
//     latency overrun beyond the resync threshold jumps the playhead
//     forward to re-acquire the edge, discarding the backlog;
//   - join-at-edge: the session starts LatencyTarget behind the current
//     edge instead of at position zero.

// LiveConfig parameterizes a latency-target live session. The zero value
// of every field selects a documented default, so &LiveConfig{} is a
// valid "live with defaults" switch.
type LiveConfig struct {
	// LatencyTarget is the live-edge latency the controller holds.
	// Default 3 s (the dash.js low-latency default neighbourhood).
	LatencyTarget time.Duration
	// PartTarget is the CMAF partial-segment duration the origin
	// publishes while a segment is still encoding: a chunk becomes
	// fetchable PartTarget after its encode starts instead of at its end.
	// 0 disables parts (whole-segment availability).
	PartTarget time.Duration
	// EdgeAtJoin is how much stream history exists when the session
	// starts; the session joins LatencyTarget behind that edge. Clamped
	// to the content duration. Default 60 s.
	EdgeAtJoin time.Duration
	// MinRate and MaxRate bound the catch-up controller's playback rate.
	// Defaults 0.92 and 1.08 (the conservative dash.js-style envelope).
	MinRate float64
	// MaxRate is documented with MinRate.
	MaxRate float64
	// RateGain is the proportional controller gain: rate deviates from
	// 1.0 by RateGain per second of latency error. Default 0.05.
	RateGain float64
	// ResyncThreshold is the latency beyond which the player stops
	// trickling and jumps forward to LatencyTarget behind the edge.
	// Default 4x LatencyTarget.
	ResyncThreshold time.Duration
	// SampleInterval is the latency-sampling and rate-control cadence.
	// Default 500 ms.
	SampleInterval time.Duration
}

// withDefaults returns the config with zero fields resolved.
func (lc LiveConfig) withDefaults() LiveConfig {
	if lc.LatencyTarget == 0 {
		lc.LatencyTarget = 3 * time.Second
	}
	if lc.EdgeAtJoin == 0 {
		lc.EdgeAtJoin = 60 * time.Second
	}
	//lint:ignore floateq exact zero detects the unset zero value, not a computed quantity
	if lc.MinRate == 0 {
		lc.MinRate = 0.92
	}
	//lint:ignore floateq exact zero detects the unset zero value, not a computed quantity
	if lc.MaxRate == 0 {
		lc.MaxRate = 1.08
	}
	//lint:ignore floateq exact zero detects the unset zero value, not a computed quantity
	if lc.RateGain == 0 {
		lc.RateGain = 0.05
	}
	if lc.ResyncThreshold == 0 {
		lc.ResyncThreshold = 4 * lc.LatencyTarget
	}
	if lc.SampleInterval == 0 {
		lc.SampleInterval = 500 * time.Millisecond
	}
	return lc
}

// LiveStats is the latency/rate accounting of one live session, attached
// to Result.Live (nil for VOD sessions, keeping VOD reports byte-
// identical to pre-live output).
type LiveStats struct {
	// LatencyTarget echoes the configured target.
	LatencyTarget time.Duration `json:"latency_target"`
	// JoinLatency is the live-edge latency at join (target, unless the
	// stream was younger than the target).
	JoinLatency time.Duration `json:"join_latency"`
	// MeanLatency and MaxLatency summarize the periodic latency samples.
	MeanLatency time.Duration `json:"mean_latency"`
	// MaxLatency is documented with MeanLatency.
	MaxLatency time.Duration `json:"max_latency"`
	// FinalLatency is the last latency sampled while the stream was still
	// live (before the edge hit the end of the content) — the drift a
	// viewer would observe in steady state.
	FinalLatency time.Duration `json:"final_latency"`
	// Samples counts latency samples.
	Samples int `json:"samples"`
	// RateChanges counts catch-up controller rate adjustments.
	RateChanges int `json:"rate_changes"`
	// Resyncs counts live-edge resync jumps.
	Resyncs int `json:"resyncs"`
	// SkippedTime is the media time discarded by resync jumps.
	SkippedTime time.Duration `json:"skipped_time"`
	// CatchupTime and SlowdownTime are the played wall time spent above
	// and below 1.0x, sampled at the controller cadence.
	CatchupTime time.Duration `json:"catchup_time"`
	// SlowdownTime is documented with CatchupTime.
	SlowdownTime time.Duration `json:"slowdown_time"`
	// MeanRate is the time-weighted mean playback rate while playing.
	MeanRate float64 `json:"mean_rate"`
}

// liveWake slots deduplicate availability wake-ups: one per fetch loop.
const (
	liveWakeVideo = iota // also the joint video-side windowed loop
	liveWakeAudio
	liveWakeJoint
	numLiveWakes
)

// liveWakeSlot maps a media type to its wake slot.
func liveWakeSlot(t media.Type) int {
	if t == media.Audio {
		return liveWakeAudio
	}
	return liveWakeVideo
}

// liveState is the per-session live controller state.
type liveState struct {
	cfg LiveConfig
	// edge0 is the stream history at session start (engine-time anchored:
	// the edge at absolute time now is edge0 + rel(now), capped at the
	// content duration).
	edge0 time.Duration
	// rate is the current playback rate in centirate units (100 = 1.0x).
	// The controller quantizes to 0.01x steps anyway; integer storage makes
	// change detection exact.
	rate int
	// wakeAt deduplicates scheduled availability wake-ups per fetch loop.
	wakeAt [numLiveWakes]time.Duration
	// lastTickAt is the previous controller tick (absolute engine time),
	// for time-weighted rate accounting.
	lastTickAt time.Duration
	// latencySum accumulates sampled latency for the mean.
	latencySum time.Duration
	// rateSeconds and playSeconds accumulate rate*dt and dt while playing.
	rateSeconds float64
	playSeconds float64

	stats LiveStats
}

// rateF is the playback rate as a float multiplier.
func (ls *liveState) rateF() float64 { return float64(ls.rate) / 100 }

// initLive validates and installs live mode; called from Start after the
// chunk table is built and before the fetch loops are scheduled.
func (s *Session) initLive() error {
	cfg := s.cfg.Live.withDefaults()
	if cfg.LatencyTarget <= 0 {
		return errors.New("player: live latency target must be positive")
	}
	if cfg.PartTarget < 0 || cfg.PartTarget > s.content.ChunkDuration {
		return fmt.Errorf("player: live part target %v outside (0, chunk duration %v]", cfg.PartTarget, s.content.ChunkDuration)
	}
	if cfg.MinRate <= 0 || cfg.MaxRate < cfg.MinRate || cfg.MinRate > 1 || cfg.MaxRate < 1 {
		return fmt.Errorf("player: live rate bounds [%v, %v] must straddle 1.0", cfg.MinRate, cfg.MaxRate)
	}
	ls := &liveState{cfg: cfg, rate: 100}
	ls.edge0 = cfg.EdgeAtJoin
	if ls.edge0 > s.content.Duration {
		ls.edge0 = s.content.Duration
	}
	// Join LatencyTarget behind the edge, snapped down to a video chunk
	// boundary (a client can only start on a segment or part boundary; we
	// model segment joins, and the video keyframe boundary governs where
	// playback can begin). Audio joins at its own chunk covering that
	// position — on shaped content with misaligned timelines that chunk may
	// start earlier, so the join refetches a little already-past audio,
	// exactly as a real player must.
	joinPos := ls.edge0 - cfg.LatencyTarget
	if joinPos < 0 {
		joinPos = 0
	}
	joinIdx := s.chunkIndexAt(media.Video, joinPos)
	joinPos = s.chunkStarts[media.Video][joinIdx]
	s.playPos = joinPos
	s.next[media.Video] = joinIdx
	s.next[media.Audio] = s.chunkIndexAt(media.Audio, joinPos)
	s.frontier[media.Video], s.frontier[media.Audio] = joinPos, joinPos
	ls.stats.LatencyTarget = cfg.LatencyTarget
	ls.stats.JoinLatency = ls.edge0 - joinPos
	ls.lastTickAt = s.eng.Now()
	s.live = ls
	s.scheduleLiveTick()
	return nil
}

// liveEdgeAt returns the stream edge (media time produced so far) at
// absolute engine time now.
func (s *Session) liveEdgeAt(now time.Duration) time.Duration {
	edge := s.live.edge0 + s.rel(now)
	if edge > s.content.Duration {
		edge = s.content.Duration
	}
	return edge
}

// liveLatency is the live-edge latency: how far the playhead trails the
// edge.
func (s *Session) liveLatency(now time.Duration) time.Duration {
	lat := s.liveEdgeAt(now) - s.playPosAt(now)
	if lat < 0 {
		lat = 0
	}
	return lat
}

// chunkIndexAt returns the index of the chunk of t's timeline covering
// position pos (clamped to the last chunk).
func (s *Session) chunkIndexAt(t media.Type, pos time.Duration) int {
	starts := s.chunkStarts[t]
	idx := sort.Search(s.numChunks[t], func(i int) bool { return starts[i+1] > pos })
	if idx >= s.numChunks[t] {
		idx = s.numChunks[t] - 1
	}
	return idx
}

// chunkAvailableAt returns the absolute engine time chunk idx of t's
// timeline becomes requestable. Without parts that is its encode-completion
// instant; with CMAF parts it is the instant the first part exists —
// PartTarget after the chunk's encode starts, never before the chunk's own
// encode completes for chunks shorter than a part. Deriving the offset from
// each chunk's actual edges (rather than a single nominal-ChunkDuration
// offset) is what keeps availability correct on variable-duration
// timelines. Chunks behind the join edge are available immediately.
func (s *Session) chunkAvailableAt(t media.Type, idx int) time.Duration {
	avail := s.chunkStarts[t][idx+1]
	if pt := s.live.cfg.PartTarget; pt > 0 {
		if first := s.chunkStarts[t][idx] + pt; first < avail {
			avail = first
		}
	}
	at := s.t0 + avail - s.live.edge0
	if at < s.t0 {
		return s.t0
	}
	return at
}

// liveWakeAt schedules a fetch-loop wake at the availability instant,
// deduplicating repeated requests for the same instant (every buffer or
// completion event re-enters the fetch loop while it is availability-
// blocked).
func (s *Session) liveWakeAt(slot int, at time.Duration, fn func()) {
	if s.live.wakeAt[slot] == at {
		return
	}
	s.live.wakeAt[slot] = at
	s.eng.Schedule(at, func() {
		if s.ended {
			return
		}
		fn()
	})
}

// scheduleLiveTick runs the latency-target controller at its cadence.
func (s *Session) scheduleLiveTick() {
	s.eng.After(s.live.cfg.SampleInterval, func() {
		if s.ended {
			return
		}
		s.liveTick()
		if !s.ended {
			s.scheduleLiveTick()
		}
	})
}

// liveTick samples latency, accounts rate time, and runs the catch-up
// controller: proportional rate adaptation inside the resync threshold, a
// forward jump beyond it.
func (s *Session) liveTick() {
	ls := s.live
	now := s.eng.Now()
	lat := s.liveLatency(now)
	ls.stats.Samples++
	ls.latencySum += lat
	if lat > ls.stats.MaxLatency {
		ls.stats.MaxLatency = lat
	}
	if s.liveEdgeAt(now) < s.content.Duration {
		ls.stats.FinalLatency = lat
	}
	dt := now - ls.lastTickAt
	ls.lastTickAt = now
	if s.playing {
		ls.rateSeconds += ls.rateF() * dt.Seconds()
		ls.playSeconds += dt.Seconds()
		if ls.rate > 100 {
			ls.stats.CatchupTime += dt
		} else if ls.rate < 100 {
			ls.stats.SlowdownTime += dt
		}
	}
	if s.rec.Enabled() {
		s.rec.Emit(timeline.Event{
			At: now, Dur: lat, Kind: timeline.LatencySample, Index: -1,
			Rate:     ls.rateF(),
			VideoBuf: s.bufferOf(media.Video, now),
			AudioBuf: s.bufferOf(media.Audio, now),
		})
	}
	if !s.started {
		return
	}
	if lat >= ls.cfg.ResyncThreshold {
		s.liveResync(now)
		return
	}
	if !s.playing {
		return
	}
	err := (lat - ls.cfg.LatencyTarget).Seconds()
	r := 1 + ls.cfg.RateGain*err
	if r < ls.cfg.MinRate {
		r = ls.cfg.MinRate
	}
	if r > ls.cfg.MaxRate {
		r = ls.cfg.MaxRate
	}
	// Quantize to centirate steps so the controller settles instead of
	// chattering on nanosecond latency noise.
	rc := int(math.Round(r * 100))
	if rc != ls.rate {
		s.setLiveRate(now, rc)
	}
}

// setLiveRate switches the playback clock to a new centirate: elapsed time
// is folded in at the old rate first, then the underrun alarm is re-derived.
func (s *Session) setLiveRate(now time.Duration, rc int) {
	s.syncPlay(now)
	prev := s.live.rateF()
	s.live.rate = rc
	s.live.stats.RateChanges++
	if s.rec.Enabled() {
		s.rec.Emit(timeline.Event{
			At: now, Kind: timeline.RateChange, Index: -1,
			Rate: s.live.rateF(), Detail: fmt.Sprintf("%.2fx", prev),
		})
	}
	s.rescheduleUnderrun()
}

// liveResync jumps the playhead forward to LatencyTarget behind the edge,
// discarding the backlog — the overrun recovery every live player ships
// (dash.js liveCatchup seek, hls.js liveSyncPosition jump). Download
// state behind the jump target is cancelled and refetched from the
// target chunk; downloads already at or past it survive.
func (s *Session) liveResync(now time.Duration) {
	ls := s.live
	s.syncPlay(now)
	edge := s.liveEdgeAt(now)
	target := edge - ls.cfg.LatencyTarget
	if target < 0 {
		target = 0
	}
	// The jump lands on a video chunk boundary; each type resolves its own
	// refetch index on its own timeline (misaligned audio rejoins at the
	// chunk covering the target position).
	idx := s.chunkIndexAt(media.Video, target)
	targetPos := s.chunkStarts[media.Video][idx]
	if targetPos <= s.playPos {
		return
	}
	skipped := targetPos - s.playPos

	discard := func(t media.Type, tIdx int) {
		if s.next[t] >= tIdx {
			// Downloads already reached the jump target; the frontier is at
			// or past it and survives.
			return
		}
		// Void pending retry/timeout timers: they refer to backlog chunks.
		s.gen[t]++
		if tr := s.transfers[t]; tr != nil && !tr.Completed() {
			s.links[t].Cancel(tr)
			s.transfers[t] = nil
			s.inflight[t] = false
		}
		s.next[t] = tIdx
		s.frontier[t] = targetPos
	}
	jointStrict := s.joint != nil && (s.cfg.SyncWindow == 0 || s.cfg.Muxed)
	discard(media.Video, idx)
	discard(media.Audio, s.chunkIndexAt(media.Audio, targetPos))
	if jointStrict {
		s.jointPending = 0
	}
	for k := range s.comboFor {
		if k < idx {
			delete(s.comboFor, k)
		}
	}
	s.playPos = targetPos
	ls.stats.Resyncs++
	ls.stats.SkippedTime += skipped
	if s.rec.Enabled() {
		s.rec.Emit(timeline.Event{
			At: now, Dur: skipped, Kind: timeline.LiveResync, Index: idx,
			Rate: ls.rateF(),
		})
	}
	// Catch-up is done: settle the clock back to 1.0x at the new position.
	if ls.rate != 100 {
		s.setLiveRate(now, 100)
	}
	// The jump usually lands past the frontier: playback stalls until the
	// target chunk arrives, through the normal stall/resume machinery.
	if s.playing && s.minFrontier() <= s.playPos {
		s.playing = false
		s.stallAt = now
		s.rec.Emit(timeline.Event{
			At: now, Kind: timeline.StallStart, Index: -1,
			VideoBuf: s.bufferOf(media.Video, now),
			AudioBuf: s.bufferOf(media.Audio, now),
		})
	}
	s.rescheduleUnderrun()
	switch {
	case s.joint != nil && s.cfg.SyncWindow > 0 && !s.cfg.Muxed:
		s.fetchWindowed(media.Video)
		s.fetchWindowed(media.Audio)
	case s.joint != nil:
		s.fetchJoint()
	default:
		s.fetchIndependent(media.Video)
		s.fetchIndependent(media.Audio)
	}
}

// collectLive folds the controller's accounting into the result; nil for
// VOD sessions.
func (s *Session) collectLive() {
	ls := s.live
	if ls == nil {
		return
	}
	st := ls.stats
	if st.Samples > 0 {
		st.MeanLatency = ls.latencySum / time.Duration(st.Samples)
	}
	if ls.playSeconds > 0 {
		st.MeanRate = ls.rateSeconds / ls.playSeconds
	} else {
		st.MeanRate = 1
	}
	s.res.Live = &st
}
