package player

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/trace"
)

// fixedJoint always selects the same combination.
type fixedJoint struct {
	abr.NopObserver
	combo media.Combo
}

func (f *fixedJoint) Name() string                      { return "fixed-joint" }
func (f *fixedJoint) SelectCombo(abr.State) media.Combo { return f.combo }

// fixedPerType always selects the given per-type tracks.
type fixedPerType struct {
	abr.NopObserver
	video, audio *media.Track
}

func (f *fixedPerType) Name() string { return "fixed-pertype" }
func (f *fixedPerType) SelectTrack(t media.Type, _ abr.State) *media.Track {
	if t == media.Video {
		return f.video
	}
	return f.audio
}

func lowestCombo(c *media.Content) media.Combo {
	return media.Combo{Video: c.VideoTracks[0], Audio: c.AudioTracks[0]}
}

func runFixed(t *testing.T, c *media.Content, rate media.Bps, combo media.Combo) *Result {
	t.Helper()
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(rate))
	res, err := Run(link, Config{Content: c, Model: &fixedJoint{combo: combo}})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSmoothPlaybackNoStalls(t *testing.T) {
	c := media.DramaShow()
	res := runFixed(t, c, media.Kbps(10000), lowestCombo(c)) // ample bandwidth
	if !res.Ended {
		t.Fatal("playback did not end")
	}
	if len(res.Stalls) != 0 {
		t.Errorf("unexpected stalls: %v", res.Stalls)
	}
	if res.StartupDelay <= 0 || res.StartupDelay > 2*time.Second {
		t.Errorf("startup delay = %v, want small positive", res.StartupDelay)
	}
	wantChunks := 2 * c.NumChunks()
	if len(res.Chunks) != wantChunks {
		t.Errorf("chunks = %d, want %d", len(res.Chunks), wantChunks)
	}
}

// The fundamental session-time identity: wall time at playback end equals
// startup delay + content duration + total rebuffering.
func checkTimeIdentity(t *testing.T, res *Result) {
	t.Helper()
	if !res.Ended {
		t.Fatal("playback did not end")
	}
	want := res.StartupDelay + res.ContentDuration + res.RebufferTime()
	if diff := (res.EndedAt - want).Abs(); diff > time.Millisecond {
		t.Errorf("EndedAt = %v, want %v (startup %v + duration %v + rebuffer %v)",
			res.EndedAt, want, res.StartupDelay, res.ContentDuration, res.RebufferTime())
	}
}

func TestTimeIdentityNoStalls(t *testing.T) {
	c := media.DramaShow()
	checkTimeIdentity(t, runFixed(t, c, media.Kbps(10000), lowestCombo(c)))
}

func TestStallsWhenBandwidthInsufficient(t *testing.T) {
	c := media.DramaShow()
	// V6+A3 averages ~3.1 Mbps; a 1.5 Mbps link must stall, repeatedly.
	top := media.Combo{Video: c.VideoTracks[5], Audio: c.AudioTracks[2]}
	res := runFixed(t, c, media.Kbps(1500), top)
	if len(res.Stalls) == 0 {
		t.Fatal("expected stalls")
	}
	if res.RebufferTime() < 30*time.Second {
		t.Errorf("rebuffer = %v, want substantial (content needs ~2x link rate)", res.RebufferTime())
	}
	checkTimeIdentity(t, res)
	// Stalls must be disjoint and ordered.
	for i := 1; i < len(res.Stalls); i++ {
		if res.Stalls[i].Start < res.Stalls[i-1].End {
			t.Errorf("stalls overlap: %v then %v", res.Stalls[i-1], res.Stalls[i])
		}
	}
}

func TestDeadLinkAborts(t *testing.T) {
	c := media.DramaShow()
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(0))
	res, err := Run(link, Config{Content: c, Model: &fixedJoint{combo: lowestCombo(c)}, Deadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ended {
		t.Error("dead link should not finish playback")
	}
}

func TestBufferCapRespected(t *testing.T) {
	c := media.DramaShow()
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(media.Kbps(50000)))
	maxBuf := 20 * time.Second
	res, err := Run(link, Config{Content: c, Model: &fixedJoint{combo: lowestCombo(c)}, MaxBuffer: maxBuf})
	if err != nil {
		t.Fatal(err)
	}
	cap := maxBuf + c.ChunkDuration + time.Second
	for _, s := range res.Timeline {
		if s.VideoBuffer > cap || s.AudioBuffer > cap {
			t.Fatalf("buffer exceeded cap at %v: video %v audio %v", s.At, s.VideoBuffer, s.AudioBuffer)
		}
	}
	checkTimeIdentity(t, res)
}

func TestIndependentSchedulerCompletes(t *testing.T) {
	c := media.DramaShow()
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(media.Kbps(5000)))
	model := &fixedPerType{video: c.VideoTracks[1], audio: c.AudioTracks[1]}
	res, err := Run(link, Config{Content: c, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	checkTimeIdentity(t, res)
	if got := len(res.ChunksOf(media.Video)); got != c.NumChunks() {
		t.Errorf("video chunks = %d, want %d", got, c.NumChunks())
	}
	if got := len(res.ChunksOf(media.Audio)); got != c.NumChunks() {
		t.Errorf("audio chunks = %d, want %d", got, c.NumChunks())
	}
}

func TestIndependentBuffersCanDiverge(t *testing.T) {
	// Audio is far cheaper than video: with independent loops on a tight
	// link, the audio buffer must run ahead of the video buffer (the
	// Fig 5(b) imbalance).
	c := media.DramaShow()
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(media.Kbps(900)))
	model := &fixedPerType{video: c.VideoTracks[2], audio: c.AudioTracks[2]}
	res, err := Run(link, Config{Content: c, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxBufferImbalance() < 3*time.Second {
		t.Errorf("imbalance = %v, want > 3s", res.MaxBufferImbalance())
	}
}

func TestSyncedBuffersStayBalanced(t *testing.T) {
	// Chunk-synced scheduling keeps the two buffers within one chunk of
	// each other — the §4 best-practice property.
	c := media.DramaShow()
	res := runFixed(t, c, media.Kbps(1200),
		media.Combo{Video: c.VideoTracks[2], Audio: c.AudioTracks[2]})
	if imb := res.MaxBufferImbalance(); imb > c.ChunkDuration {
		t.Errorf("synced imbalance = %v, want <= one chunk (%v)", imb, c.ChunkDuration)
	}
}

func TestConfigValidation(t *testing.T) {
	c := media.DramaShow()
	link := netsim.NewLink(netsim.NewEngine(), trace.Fixed(1))
	if _, err := Run(link, Config{Model: &fixedJoint{combo: lowestCombo(c)}}); err == nil {
		t.Error("nil content should fail")
	}
	if _, err := Run(link, Config{Content: c}); err == nil {
		t.Error("nil model should fail")
	}
	if _, err := Run(link, Config{Content: c, Model: &fixedJoint{combo: lowestCombo(c)}, StartupBuffer: time.Hour}); err == nil {
		t.Error("startup > max buffer should fail")
	}
}

type badModel struct{ abr.NopObserver }

func (badModel) Name() string { return "bad" }

func TestModelMustImplementADecisionInterface(t *testing.T) {
	c := media.DramaShow()
	link := netsim.NewLink(netsim.NewEngine(), trace.Fixed(1))
	if _, err := Run(link, Config{Content: c, Model: badModel{}}); err == nil {
		t.Error("model lacking decision interface should fail")
	}
}

func TestResultHelpers(t *testing.T) {
	c := media.DramaShow()
	res := runFixed(t, c, media.Kbps(10000),
		media.Combo{Video: c.VideoTracks[3], Audio: c.AudioTracks[1]})
	if got := res.Switches(media.Video); got != 0 {
		t.Errorf("switches = %d, want 0 for a fixed model", got)
	}
	combos := res.CombosSelected()
	if len(combos) != 1 || combos[0].String() != "V4+A2" {
		t.Errorf("combos = %v, want [V4+A2]", combos)
	}
	avg := res.AvgSelectedBitrate(media.Video, c.ChunkDurationAt)
	if math.Abs(avg.Kbps()-734) > 1 {
		t.Errorf("avg selected video bitrate = %v, want 734 Kbps", avg)
	}
	tt := res.TrackTime(media.Audio, c.ChunkDurationAt)
	if tt["A2"] != c.Duration {
		t.Errorf("A2 play time = %v, want %v", tt["A2"], c.Duration)
	}
}

func TestObserverSeesTransfers(t *testing.T) {
	c := media.DramaShow()
	obs := &countingModel{combo: lowestCombo(c)}
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(media.Kbps(2000)))
	res, err := Run(link, Config{
		Content:        c,
		Model:          obs,
		SampleInterval: 125 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCompletes := len(res.Chunks)
	if obs.completes != wantCompletes {
		t.Errorf("OnComplete count = %d, want %d", obs.completes, wantCompletes)
	}
	if obs.starts != wantCompletes {
		t.Errorf("OnStart count = %d, want %d", obs.starts, wantCompletes)
	}
	if obs.progress == 0 {
		t.Error("expected progress samples with SampleInterval set")
	}
}

type countingModel struct {
	combo                       media.Combo
	starts, progress, completes int
}

func (m *countingModel) Name() string                      { return "counting" }
func (m *countingModel) SelectCombo(abr.State) media.Combo { return m.combo }
func (m *countingModel) OnStart(abr.TransferInfo)          { m.starts++ }
func (m *countingModel) OnProgress(abr.TransferInfo)       { m.progress++ }
func (m *countingModel) OnComplete(abr.TransferInfo)       { m.completes++ }

// Property: across random bandwidth walks the time identity holds, the
// timeline is monotone, and every chunk index is downloaded exactly once per
// type.
func TestSessionInvariantsProperty(t *testing.T) {
	c := media.DramaShow()
	f := func(seed int64) bool {
		profile := trace.RandomWalk(seed, media.Kbps(400), media.Kbps(3000), 4*time.Second, time.Minute)
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, profile)
		combo := media.Combo{Video: c.VideoTracks[1], Audio: c.AudioTracks[0]}
		res, err := Run(link, Config{Content: c, Model: &fixedJoint{combo: combo}})
		if err != nil || !res.Ended {
			return false
		}
		want := res.StartupDelay + res.ContentDuration + res.RebufferTime()
		if diff := (res.EndedAt - want).Abs(); diff > time.Millisecond {
			return false
		}
		for i := 1; i < len(res.Timeline); i++ {
			if res.Timeline[i].At < res.Timeline[i-1].At ||
				res.Timeline[i].PlayPos < res.Timeline[i-1].PlayPos {
				return false
			}
		}
		seen := map[media.Type]map[int]int{media.Video: {}, media.Audio: {}}
		for _, ch := range res.Chunks {
			seen[ch.Type][ch.Index]++
		}
		for _, m := range seen {
			if len(m) != c.NumChunks() {
				return false
			}
			for _, n := range m {
				if n != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestMuxedModeZeroImbalance(t *testing.T) {
	c := media.DramaShow()
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(media.Kbps(1200)))
	combo := media.Combo{Video: c.VideoTracks[2], Audio: c.AudioTracks[1]}
	res, err := Run(link, Config{Content: c, Model: &fixedJoint{combo: combo}, Muxed: true})
	if err != nil {
		t.Fatal(err)
	}
	checkTimeIdentity(t, res)
	// Muxed packaging: the two frontiers advance together, so imbalance is
	// structurally zero.
	if imb := res.MaxBufferImbalance(); imb != 0 {
		t.Errorf("muxed imbalance = %v, want 0", imb)
	}
	if got := len(res.Chunks); got != 2*c.NumChunks() {
		t.Errorf("chunk log entries = %d, want %d", got, 2*c.NumChunks())
	}
}

func TestMuxedModeRequiresJoint(t *testing.T) {
	c := media.DramaShow()
	link := netsim.NewLink(netsim.NewEngine(), trace.Fixed(1))
	model := &fixedPerType{video: c.VideoTracks[0], audio: c.AudioTracks[0]}
	if _, err := Run(link, Config{Content: c, Model: model, Muxed: true}); err == nil {
		t.Error("muxed mode with a per-type model should fail")
	}
}

func TestSplitLinksRequireSameEngine(t *testing.T) {
	c := media.DramaShow()
	l1 := netsim.NewLink(netsim.NewEngine(), trace.Fixed(1))
	l2 := netsim.NewLink(netsim.NewEngine(), trace.Fixed(1))
	model := &fixedJoint{combo: lowestCombo(c)}
	if _, err := RunSplit(l1, l2, Config{Content: c, Model: model}); err == nil {
		t.Error("links on different engines should fail")
	}
}

func TestSplitLinksIsolateContention(t *testing.T) {
	// On split paths the audio stream does not steal video bandwidth: a
	// V5+A3 session over (2 Mbps video + 0.5 Mbps audio) plays clean,
	// while the same 2.5 Mbps as a single shared link is tighter because
	// concurrent transfers halve each other's rate mid-chunk.
	c := media.DramaShow()
	combo := media.Combo{Video: c.VideoTracks[4], Audio: c.AudioTracks[2]}
	eng := netsim.NewEngine()
	v := netsim.NewLink(eng, trace.Fixed(media.Kbps(2000)))
	a := netsim.NewLink(eng, trace.Fixed(media.Kbps(500)))
	res, err := RunSplit(v, a, Config{Content: c, Model: &fixedJoint{combo: combo}})
	if err != nil {
		t.Fatal(err)
	}
	checkTimeIdentity(t, res)
	if res.RebufferTime() > 2*time.Second {
		t.Errorf("split-path rebuffer = %v, want ~0 (V5 fits 2 Mbps, A3 fits 0.5 Mbps)", res.RebufferTime())
	}
}

func TestSyncWindowBoundsImbalance(t *testing.T) {
	// §4.2: synchronization "at the chunk level or in terms of a small
	// number of chunks". The skew bound must cap the buffer imbalance at
	// roughly window+1 chunks, and the imbalance must grow with the window.
	c := media.DramaShow()
	combo := media.Combo{Video: c.VideoTracks[2], Audio: c.AudioTracks[2]}
	runWin := func(w int) *Result {
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, trace.Fixed(media.Kbps(900)))
		res, err := Run(link, Config{Content: c, Model: &fixedJoint{combo: combo}, SyncWindow: w})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ended {
			t.Fatal("did not finish")
		}
		return res
	}
	imb1 := runWin(1).MaxBufferImbalance()
	imb4 := runWin(4).MaxBufferImbalance()
	if imb1 > 2*c.ChunkDuration+time.Second {
		t.Errorf("window 1 imbalance = %v, want <= ~2 chunks", imb1)
	}
	if imb4 > 5*c.ChunkDuration+time.Second {
		t.Errorf("window 4 imbalance = %v, want <= ~5 chunks", imb4)
	}
	if imb4 <= imb1 {
		t.Errorf("imbalance should grow with the window: w1=%v w4=%v", imb1, imb4)
	}
}

func TestSyncWindowCompletesAllChunks(t *testing.T) {
	c := media.DramaShow()
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(media.Kbps(1500)))
	res, err := Run(link, Config{
		Content:    c,
		Model:      &fixedJoint{combo: media.Combo{Video: c.VideoTracks[1], Audio: c.AudioTracks[1]}},
		SyncWindow: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkTimeIdentity(t, res)
	for _, typ := range []media.Type{media.Video, media.Audio} {
		if got := len(res.ChunksOf(typ)); got != c.NumChunks() {
			t.Errorf("%s chunks = %d, want %d", typ, got, c.NumChunks())
		}
	}
}

func TestAudioResetDiscardsOnlyAudio(t *testing.T) {
	c := media.DramaShow()
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(media.Kbps(3000)))
	combo := media.Combo{Video: c.VideoTracks[2], Audio: c.AudioTracks[1]}
	res, err := Run(link, Config{
		Content:     c,
		Model:       &fixedJoint{combo: combo},
		SyncWindow:  1,
		AudioResets: []time.Duration{100 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkTimeIdentity(t, res)
	if len(res.AudioResets) != 1 {
		t.Fatalf("resets = %d, want 1", len(res.AudioResets))
	}
	r := res.AudioResets[0]
	if r.DiscardedBytes == 0 || r.DiscardedSeconds == 0 {
		t.Errorf("reset recorded no waste: %+v", r)
	}
	// The audio buffer was ~full (30 s); the discard must be in that
	// ballpark and the refetch must start near the playhead.
	if r.DiscardedSeconds < 15*time.Second || r.DiscardedSeconds > 36*time.Second {
		t.Errorf("discarded %v of audio, want roughly a full buffer", r.DiscardedSeconds)
	}
	playAt := 100*time.Second - res.StartupDelay
	refetchStart := time.Duration(r.RefetchFrom) * c.ChunkDuration
	if refetchStart < playAt-c.ChunkDuration || refetchStart > playAt+2*c.ChunkDuration {
		t.Errorf("refetch from %v, playhead was ~%v", refetchStart, playAt)
	}
	// Audio chunks from RefetchFrom on appear twice in the log.
	counts := map[int]int{}
	for _, ch := range res.ChunksOf(media.Audio) {
		counts[ch.Index]++
	}
	if counts[r.RefetchFrom+1] != 2 {
		t.Errorf("chunk %d fetched %d times, want 2", r.RefetchFrom+1, counts[r.RefetchFrom+1])
	}
	if counts[0] != 1 {
		t.Errorf("chunk 0 fetched %d times, want 1", counts[0])
	}
}

func TestAudioResetRequiresCapableScheduler(t *testing.T) {
	c := media.DramaShow()
	link := netsim.NewLink(netsim.NewEngine(), trace.Fixed(media.Kbps(1000)))
	_, err := Run(link, Config{
		Content:     c,
		Model:       &fixedJoint{combo: lowestCombo(c)},
		AudioResets: []time.Duration{10 * time.Second},
	})
	if err == nil {
		t.Error("strict joint scheduling with AudioResets should fail")
	}
}

func TestAudioResetMuxedDiscardsBoth(t *testing.T) {
	c := media.DramaShow()
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(media.Kbps(3000)))
	combo := media.Combo{Video: c.VideoTracks[2], Audio: c.AudioTracks[1]}
	res, err := Run(link, Config{
		Content:     c,
		Model:       &fixedJoint{combo: combo},
		Muxed:       true,
		AudioResets: []time.Duration{100 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkTimeIdentity(t, res)
	if len(res.AudioResets) != 1 {
		t.Fatalf("resets = %d", len(res.AudioResets))
	}
	// Muxed discard carries video bytes too: far larger than the audio-only
	// equivalent (V3 avg is ~1.8x A2).
	eng2 := netsim.NewEngine()
	link2 := netsim.NewLink(eng2, trace.Fixed(media.Kbps(3000)))
	demuxed, err := Run(link2, Config{
		Content:     c,
		Model:       &fixedJoint{combo: combo},
		SyncWindow:  1,
		AudioResets: []time.Duration{100 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AudioResets[0].DiscardedBytes <= demuxed.AudioResets[0].DiscardedBytes {
		t.Errorf("muxed discard %d <= demuxed %d",
			res.AudioResets[0].DiscardedBytes, demuxed.AudioResets[0].DiscardedBytes)
	}
}

func TestAudioResetInIndependentMode(t *testing.T) {
	c := media.DramaShow()
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(media.Kbps(3000)))
	model := &fixedPerType{video: c.VideoTracks[1], audio: c.AudioTracks[1]}
	res, err := Run(link, Config{
		Content:     c,
		Model:       model,
		AudioResets: []time.Duration{60 * time.Second, 180 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkTimeIdentity(t, res)
	if len(res.AudioResets) != 2 {
		t.Errorf("resets = %d, want 2", len(res.AudioResets))
	}
}

// Property: the session invariants hold for every scheduling discipline —
// strict pairing, bounded skew, and muxed — across random traces.
func TestSchedulerInvariantsProperty(t *testing.T) {
	c := media.DramaShow()
	combo := media.Combo{Video: c.VideoTracks[1], Audio: c.AudioTracks[1]}
	f := func(seed int64, mode uint8) bool {
		profile := trace.RandomWalk(seed, media.Kbps(500), media.Kbps(2500), 4*time.Second, time.Minute)
		cfg := Config{Content: c, Model: &fixedJoint{combo: combo}}
		switch mode % 3 {
		case 1:
			cfg.SyncWindow = int(mode)%4 + 1
		case 2:
			cfg.Muxed = true
		}
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, profile)
		res, err := Run(link, cfg)
		if err != nil || !res.Ended {
			return false
		}
		want := res.StartupDelay + res.ContentDuration + res.RebufferTime()
		if diff := (res.EndedAt - want).Abs(); diff > time.Millisecond {
			return false
		}
		for _, typ := range []media.Type{media.Video, media.Audio} {
			if len(res.ChunksOf(typ)) != c.NumChunks() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
