package player

import (
	"strings"
	"testing"
	"time"

	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/trace"
)

// Regression tests for the fixed-chunk-assumption sweep: every index↔time
// conversion in the session used to be a division or multiplication by the
// nominal ChunkDuration, which is wrong on shaped (variable-duration)
// timelines — chunk counts came out too high, frontiers advanced by the
// wrong amount (breaking the session-time identity), and live joins landed
// between boundaries.

// shapedSpec is a 60 s title with a variable video timeline and a uniform
// 6 s audio timeline — misaligned with video on purpose (per-type shaping).
func shapedSpec() media.ContentSpec {
	sec := func(n int) time.Duration { return time.Duration(n) * time.Second }
	return media.ContentSpec{
		Name:          "shaped-test",
		Duration:      60 * time.Second,
		ChunkDuration: 5 * time.Second,
		VideoTracks:   media.DramaVideoLadder(),
		AudioTracks:   media.DramaAudioLadder(),
		Model:         media.DefaultChunkModel(),
		VideoChunks:   []time.Duration{sec(5), sec(7), sec(8), sec(6), sec(4), sec(7), sec(5), sec(8), sec(6), sec(4)},
		AudioChunks:   []time.Duration{sec(6), sec(6), sec(6), sec(6), sec(6), sec(6), sec(6), sec(6), sec(6), sec(6)},
	}
}

func shapedContent(t *testing.T) *media.Content {
	t.Helper()
	c, err := media.NewContent(shapedSpec())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// Misaligned per-type timelines play to completion under the independent
// scheduler, fetching each type's own chunk count. Pre-fix, the session
// derived 12 chunks (60s / 5s nominal) for both types and the time identity
// broke on the first non-nominal chunk.
func TestShapedIndependentCompletes(t *testing.T) {
	c := shapedContent(t)
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(media.Kbps(5000)))
	model := &fixedPerType{video: c.VideoTracks[1], audio: c.AudioTracks[1]}
	res, err := Run(link, Config{Content: c, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	checkTimeIdentity(t, res)
	if got := len(res.ChunksOf(media.Video)); got != c.NumChunksOf(media.Video) {
		t.Errorf("video chunks = %d, want %d", got, c.NumChunksOf(media.Video))
	}
	if got := len(res.ChunksOf(media.Audio)); got != c.NumChunksOf(media.Audio) {
		t.Errorf("audio chunks = %d, want %d", got, c.NumChunksOf(media.Audio))
	}
}

// Joint scheduling and muxed packaging pair tracks by shared chunk index;
// on misaligned timelines that pairing is meaningless and Start must say so
// instead of silently mispairing.
func TestShapedJointRequiresAlignedTimelines(t *testing.T) {
	c := shapedContent(t)
	for name, cfg := range map[string]Config{
		"joint": {Content: c, Model: &fixedJoint{combo: lowestCombo(c)}},
		"muxed": {Content: c, Model: &fixedJoint{combo: lowestCombo(c)}, Muxed: true},
	} {
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, trace.Fixed(media.Kbps(5000)))
		_, err := Start(link, link, cfg)
		if err == nil {
			t.Errorf("%s: Start accepted misaligned timelines", name)
		} else if !strings.Contains(err.Error(), "aligned") {
			t.Errorf("%s: error %q does not explain the alignment requirement", name, err)
		}
	}
}

// A variable timeline shared by both types (shaped-aligned) keeps every
// scheduling mode available; frontier advancement must use actual chunk
// durations or the session-time identity fails.
func TestShapedAlignedVariableJointCompletes(t *testing.T) {
	spec := shapedSpec()
	spec.AudioChunks = append([]time.Duration(nil), spec.VideoChunks...)
	c, err := media.NewContent(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Aligned() {
		t.Fatal("equal chunk tables must be aligned")
	}
	for _, muxed := range []bool{false, true} {
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, trace.Fixed(media.Kbps(5000)))
		res, err := Run(link, Config{Content: c, Model: &fixedJoint{combo: lowestCombo(c)}, Muxed: muxed})
		if err != nil {
			t.Fatalf("muxed=%v: %v", muxed, err)
		}
		checkTimeIdentity(t, res)
		if got := len(res.ChunksOf(media.Video)); got != c.NumChunks() {
			t.Errorf("muxed=%v: video chunks = %d, want %d", muxed, got, c.NumChunks())
		}
	}
}

// A live join on shaped content must snap to an actual video boundary (not
// a nominal multiple) and start the audio loop at the chunk covering that
// instant. Pre-fix, joinPos = floor(pos/nominal)·nominal landed mid-chunk.
func TestShapedLiveJoinSnapsToVideoBoundary(t *testing.T) {
	c := shapedContent(t)
	lc := &LiveConfig{LatencyTarget: 3 * time.Second, PartTarget: time.Second, EdgeAtJoin: 30 * time.Second}
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(media.Kbps(10000)))
	model := &fixedPerType{video: c.VideoTracks[0], audio: c.AudioTracks[0]}
	res, err := Run(link, Config{Content: c, Model: model, Live: lc})
	if err != nil {
		t.Fatal(err)
	}
	if res.Live == nil {
		t.Fatal("live session carried no live stats")
	}
	joinPos := lc.EdgeAtJoin - res.Live.JoinLatency
	onBoundary := false
	for _, b := range c.ChunkTimeline(media.Video) {
		if b == joinPos {
			onBoundary = true
			break
		}
	}
	if !onBoundary {
		t.Errorf("join position %v is not a video chunk boundary (timeline %v)",
			joinPos, c.ChunkTimeline(media.Video))
	}
	// The snap-down distance is bounded by the boundary's own chunk, whose
	// duration can exceed the nominal on shaped content.
	if jl := res.Live.JoinLatency; jl < lc.LatencyTarget || jl >= lc.LatencyTarget+c.MaxChunkDurationOf(media.Video) {
		t.Errorf("join latency %v outside [%v, %v)", jl, lc.LatencyTarget,
			lc.LatencyTarget+c.MaxChunkDurationOf(media.Video))
	}
	if !res.Ended {
		t.Errorf("shaped live session did not end: aborted=%v reason=%q", res.Aborted, res.AbortReason)
	}
	// Without resyncs the session fetches exactly the chunks from the join
	// boundary to the end, per type — the per-type index accounting.
	if res.Live.Resyncs == 0 {
		wantV := c.NumChunksOf(media.Video) - c.ChunkIndexAt(media.Video, joinPos)
		if got := len(res.ChunksOf(media.Video)); got != wantV {
			t.Errorf("video chunks = %d, want %d (join at %v)", got, wantV, joinPos)
		}
		wantA := c.NumChunksOf(media.Audio) - c.ChunkIndexAt(media.Audio, joinPos)
		if got := len(res.ChunksOf(media.Audio)); got != wantA {
			t.Errorf("audio chunks = %d, want %d (join at %v)", got, wantA, joinPos)
		}
	}
}

// Per-chunk availability on shaped content: with ample bandwidth the
// session still cannot outrun the encoder, whose chunks complete at their
// actual (variable) boundaries.
func TestShapedLiveAvailabilityGatesRealTime(t *testing.T) {
	c := shapedContent(t)
	lc := &LiveConfig{LatencyTarget: 3 * time.Second, PartTarget: time.Second, EdgeAtJoin: 30 * time.Second}
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(media.Kbps(50000)))
	model := &fixedPerType{video: c.VideoTracks[0], audio: c.AudioTracks[0]}
	res, err := Run(link, Config{Content: c, Model: model, Live: lc})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ended {
		t.Fatal("live session did not end")
	}
	if remaining := c.Duration - lc.EdgeAtJoin; res.EndedAt < remaining {
		t.Errorf("session ended at %v, before the stream could produce its remaining %v", res.EndedAt, remaining)
	}
}
