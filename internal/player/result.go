package player

import (
	"time"

	"demuxabr/internal/faults"
	"demuxabr/internal/media"
)

// Sample is one row of the session timeline, logged every LogInterval — the
// raw material of the paper's figures (track selections, buffer levels and
// bandwidth estimates over time).
type Sample struct {
	At          time.Duration
	PlayPos     time.Duration
	VideoBuffer time.Duration
	AudioBuffer time.Duration
	// Video and Audio are the most recently selected tracks (nil before the
	// first decision).
	Video *media.Track
	Audio *media.Track
	// Estimate is the algorithm's bandwidth estimate at the sample, if the
	// algorithm exposes one.
	Estimate   media.Bps
	EstimateOK bool
	// Stalled is true while playback is rebuffering (after startup).
	Stalled bool
}

// Stall is one rebuffering event.
type Stall struct {
	Start time.Duration
	End   time.Duration
}

// Duration returns the stall length.
func (s Stall) Duration() time.Duration { return s.End - s.Start }

// ChunkDecision records one downloaded chunk and the track chosen for it.
type ChunkDecision struct {
	// Index is the chunk position.
	Index int
	// Type is the media type of this download.
	Type media.Type
	// Track is the selected track.
	Track *media.Track
	// DecidedAt is when the download was issued; CompletedAt when it
	// finished.
	DecidedAt   time.Duration
	CompletedAt time.Duration
	// Bytes is the chunk size.
	Bytes int64
}

// Abandonment records one cancelled-and-replaced chunk download (an
// abandonment-capable model decided the in-flight track was too expensive).
type Abandonment struct {
	Index int
	Type  media.Type
	From  *media.Track
	To    *media.Track
	At    time.Duration
}

// AudioReset records a mid-session audio stream reset (language switch):
// how much already-downloaded content was thrown away to honor it.
type AudioReset struct {
	// At is when the reset fired.
	At time.Duration
	// RefetchFrom is the first chunk index refetched.
	RefetchFrom int
	// DiscardedBytes counts downloaded bytes thrown away (both streams in
	// muxed mode, audio only in demuxed mode).
	DiscardedBytes int64
	// DiscardedSeconds counts the buffered content duration thrown away.
	DiscardedSeconds time.Duration
}

// FaultEvent records one download failure: injected by the fault plan, or
// detected by the robustness policy's request timeout.
type FaultEvent struct {
	// Index is the chunk position; Type and Track identify the download.
	Index int
	Type  media.Type
	Track *media.Track
	// Kind is the failure mode.
	Kind faults.Kind
	// Attempt is which try failed (0 = the first request).
	Attempt int
	// At is when the failure was detected.
	At time.Duration
	// WastedBytes is how much of the body arrived before the failure —
	// downloaded, paid for, and thrown away.
	WastedBytes int64
}

// Failover records the robustness policy substituting a failing track.
type Failover struct {
	Index int
	Type  media.Type
	From  *media.Track
	To    *media.Track
	At    time.Duration
}

// Result is the complete outcome of a streaming session.
type Result struct {
	// ModelName identifies the algorithm that ran.
	ModelName string
	// ContentDuration is the length of the asset.
	ContentDuration time.Duration
	// StartupDelay is the time from session start to first frame.
	StartupDelay time.Duration
	// Ended reports whether playback reached the end of the content.
	Ended bool
	// EndedAt is the virtual time playback finished.
	EndedAt time.Duration
	// Stalls lists every rebuffering event.
	Stalls []Stall
	// Timeline holds periodic samples.
	Timeline []Sample
	// Chunks holds one entry per downloaded chunk per type, in completion
	// order.
	Chunks []ChunkDecision
	// Abandonments lists cancelled-and-replaced downloads, in order.
	Abandonments []Abandonment
	// AudioResets lists mid-session audio resets (language switches).
	AudioResets []AudioReset
	// Faults lists every download failure, in detection order.
	Faults []FaultEvent
	// Failovers lists robustness-policy track substitutions, in order.
	Failovers []Failover
	// Retries counts re-issued downloads (same track or failover).
	Retries int
	// Transport summarizes connection-level accounting when the session
	// ran with a transport configured and the transport charged anything
	// observable; nil otherwise (including for inert, zero-cost
	// transports — the transport-off equivalence contract).
	Transport *TransportStats
	// Live summarizes the latency-target controller's accounting when the
	// session ran in live mode; nil for VOD sessions (the live-off
	// equivalence contract: VOD results carry no live fields at all).
	Live *LiveStats
	// Aborted reports that the session was cut short: a failure with no
	// retry policy, or the Deadline. AbortReason says why.
	Aborted     bool
	AbortReason string
}

// TransportStats is the session-level rollup of its connections'
// accounting (two connections under demuxed HTTP/1.1 or split hosts, one
// otherwise).
type TransportStats struct {
	// Protocol is the configured transport ("h1", "h2", "h3").
	Protocol string
	// Handshakes counts full connection setups; Resumes counts
	// reconnections priced at the resume cost (0-RTT for H3).
	Handshakes int
	Resumes    int
	// FailedHandshakes counts fault-injected setup failures.
	FailedHandshakes int
	// Migrations counts network path changes observed.
	Migrations int
	// HoLStalls counts stream stalls charged by transport loss; HoLWait
	// is the stream-seconds they froze.
	HoLStalls int
	// HandshakeWait is total time requests spent waiting on setups.
	HandshakeWait time.Duration
	HoLWait       time.Duration
}

// WastedFaultBytes sums the bytes downloaded by requests that then failed
// (reset, truncation, timeout) — transferred but never played.
func (r *Result) WastedFaultBytes() int64 {
	var total int64
	for _, f := range r.Faults {
		total += f.WastedBytes
	}
	return total
}

// RebufferTime returns the total stall duration (excluding startup).
func (r *Result) RebufferTime() time.Duration {
	var total time.Duration
	for _, s := range r.Stalls {
		total += s.Duration()
	}
	return total
}

// ChunksOf returns the chunk decisions of one media type, in index order.
func (r *Result) ChunksOf(t media.Type) []ChunkDecision {
	var out []ChunkDecision
	for _, c := range r.Chunks {
		if c.Type == t {
			out = append(out, c)
		}
	}
	return out
}

// TrackTime returns, per track ID, the played duration attributed to each
// selected track of the given type (chunk durations summed by selection).
func (r *Result) TrackTime(t media.Type, chunkDur func(int) time.Duration) map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, c := range r.ChunksOf(t) {
		out[c.Track.ID] += chunkDur(c.Index)
	}
	return out
}

// Switches counts selection changes of the given type across consecutive
// chunk indexes.
func (r *Result) Switches(t media.Type) int {
	chunks := r.ChunksOf(t)
	n := 0
	for i := 1; i < len(chunks); i++ {
		if chunks[i].Track != chunks[i-1].Track {
			n++
		}
	}
	return n
}

// CombosSelected returns the distinct audio/video combinations selected
// across chunk positions, in first-use order. It pairs the video and audio
// decisions of equal chunk index.
func (r *Result) CombosSelected() []media.Combo {
	video := map[int]*media.Track{}
	audio := map[int]*media.Track{}
	maxIdx := -1
	for _, c := range r.Chunks {
		if c.Type == media.Video {
			video[c.Index] = c.Track
		} else {
			audio[c.Index] = c.Track
		}
		if c.Index > maxIdx {
			maxIdx = c.Index
		}
	}
	var out []media.Combo
	seen := map[string]bool{}
	for i := 0; i <= maxIdx; i++ {
		v, a := video[i], audio[i]
		if v == nil || a == nil {
			continue
		}
		cb := media.Combo{Video: v, Audio: a}
		if !seen[cb.String()] {
			seen[cb.String()] = true
			out = append(out, cb)
		}
	}
	return out
}

// AvgSelectedBitrate returns the mean average-bitrate of the selected tracks
// of a type, weighted by chunk duration — the y-axis of Fig. 2.
func (r *Result) AvgSelectedBitrate(t media.Type, chunkDur func(int) time.Duration) media.Bps {
	var bitSeconds, seconds float64
	for _, c := range r.ChunksOf(t) {
		d := chunkDur(c.Index).Seconds()
		bitSeconds += float64(c.Track.AvgBitrate) * d
		seconds += d
	}
	if seconds <= 0 {
		return 0
	}
	return media.Bps(bitSeconds / seconds)
}

// MaxBufferImbalance returns the largest |audio buffer − video buffer|
// observed on the timeline — the Fig. 5(b) quantity.
func (r *Result) MaxBufferImbalance() time.Duration {
	var max time.Duration
	for _, s := range r.Timeline {
		d := s.AudioBuffer - s.VideoBuffer
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}
