package player

import (
	"fmt"
	"testing"
	"time"

	"demuxabr/internal/faults"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/trace"
)

// runFaulted runs a fixed-combo session with the given plan and policy on
// an ample fixed link.
func runFaulted(t *testing.T, c *media.Content, plan *faults.Plan, pol *faults.Policy) *Result {
	t.Helper()
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(media.Kbps(10000)))
	res, err := Run(link, Config{
		Content:    c,
		Model:      &fixedJoint{combo: lowestCombo(c)},
		FaultPlan:  plan,
		Robustness: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFaultWithoutPolicyAborts(t *testing.T) {
	c := media.DramaShow()
	plan := &faults.Plan{Seed: 1, Rate: 1, Kinds: []faults.Kind{faults.HTTP404}}
	res := runFaulted(t, c, plan, nil)
	if !res.Aborted || res.Ended {
		t.Fatalf("rate-1 faults with no policy must abort: Aborted=%v Ended=%v", res.Aborted, res.Ended)
	}
	if res.AbortReason == "" {
		t.Error("abort reason missing")
	}
	if len(res.Faults) != 1 {
		t.Errorf("fail-fast session recorded %d faults, want exactly 1", len(res.Faults))
	}
}

func TestPolicyRetriesThroughTransientFaults(t *testing.T) {
	c := media.DramaShow()
	plan := &faults.Plan{Seed: 7, Rate: 0.2}
	pol := faults.DefaultPolicy()
	res := runFaulted(t, c, plan, &pol)
	if !res.Ended || res.Aborted {
		t.Fatalf("robust session did not finish: Ended=%v Aborted=%v (%s)", res.Ended, res.Aborted, res.AbortReason)
	}
	if len(res.Faults) == 0 || res.Retries == 0 {
		t.Fatalf("20%% fault rate produced faults=%d retries=%d, want both > 0", len(res.Faults), res.Retries)
	}
	// Every chunk position of both types must still be present.
	for _, typ := range []media.Type{media.Video, media.Audio} {
		got := map[int]bool{}
		for _, ch := range res.ChunksOf(typ) {
			got[ch.Index] = true
		}
		for i := 0; i < c.NumChunks(); i++ {
			if !got[i] {
				t.Fatalf("%s chunk %d never completed", typ, i)
			}
		}
	}
}

func TestTimeoutFaultDetectedByRequestTimeout(t *testing.T) {
	c := media.DramaShow()
	plan := &faults.Plan{Seed: 3, Rate: 1, Kinds: []faults.Kind{faults.Timeout}, MaxPersistence: 1}
	pol := faults.DefaultPolicy()
	pol.RequestTimeout = time.Second
	res := runFaulted(t, c, plan, &pol)
	if !res.Ended || res.Aborted {
		t.Fatalf("session did not finish: Ended=%v Aborted=%v (%s)", res.Ended, res.Aborted, res.AbortReason)
	}
	if len(res.Faults) == 0 {
		t.Fatal("no timeout faults recorded")
	}
	for _, f := range res.Faults {
		if f.Kind != faults.Timeout {
			t.Fatalf("unexpected fault kind %v", f.Kind)
		}
	}
}

func TestPersistentTrackFailureFailsOver(t *testing.T) {
	c := media.DramaShow()
	plan := &faults.Plan{
		Seed: 5, Rate: 1,
		Kinds:          []faults.Kind{faults.HTTP404},
		Targets:        []string{c.AudioTracks[0].ID},
		MaxPersistence: -1, // the track is simply gone
	}
	pol := faults.DefaultPolicy()
	res := runFaulted(t, c, plan, &pol)
	if !res.Ended || res.Aborted {
		t.Fatalf("session did not finish: Ended=%v Aborted=%v (%s)", res.Ended, res.Aborted, res.AbortReason)
	}
	if len(res.Failovers) == 0 {
		t.Fatal("no failover recorded for a permanently dead track")
	}
	dead := c.AudioTracks[0].ID
	for _, ch := range res.Chunks {
		if ch.Track.ID == dead {
			t.Fatalf("chunk %d completed on the dead track %s", ch.Index, dead)
		}
	}
}

func TestBlackoutWindowTriggersTimeoutsAndRecovery(t *testing.T) {
	c := media.DramaShow()
	plan := &faults.Plan{
		Seed:      2,
		Blackouts: []faults.Window{{Start: 10 * time.Second, End: 40 * time.Second}},
	}
	pol := faults.DefaultPolicy()
	pol.RequestTimeout = 2 * time.Second
	res := runFaulted(t, c, plan, &pol)
	if !res.Ended || res.Aborted {
		t.Fatalf("session did not survive the blackout: Ended=%v Aborted=%v (%s)", res.Ended, res.Aborted, res.AbortReason)
	}
	sawTimeout := false
	for _, f := range res.Faults {
		if f.Kind == faults.Timeout {
			sawTimeout = true
			break
		}
	}
	if !sawTimeout {
		t.Fatal("a 30s blackout with a 2s request timeout produced no timeout faults")
	}
}

// faultSummary flattens the robustness-relevant outcome into a comparable
// string (track identity by ID, not pointer).
func faultSummary(res *Result) string {
	s := fmt.Sprintf("ended=%v aborted=%v endedAt=%v startup=%v stalls=%d chunks=%d retries=%d wasted=%d\n",
		res.Ended, res.Aborted, res.EndedAt, res.StartupDelay, len(res.Stalls), len(res.Chunks), res.Retries, res.WastedFaultBytes())
	for _, f := range res.Faults {
		s += fmt.Sprintf("fault %d %s %s %s a%d @%v w%d\n", f.Index, f.Type, f.Track.ID, f.Kind, f.Attempt, f.At, f.WastedBytes)
	}
	for _, f := range res.Failovers {
		s += fmt.Sprintf("failover %d %s %s->%s @%v\n", f.Index, f.Type, f.From.ID, f.To.ID, f.At)
	}
	return s
}

func TestFaultInjectionDeterministic(t *testing.T) {
	c := media.DramaShow()
	run := func() string {
		plan := &faults.Plan{Seed: 11, Rate: 0.3}
		pol := faults.DefaultPolicy()
		return faultSummary(runFaulted(t, c, plan, &pol))
	}
	first := run()
	for i := 0; i < 2; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", i+2, got, first)
		}
	}
}

func TestMuxedModeRejectsFaultPlan(t *testing.T) {
	c := media.DramaShow()
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(media.Kbps(10000)))
	_, err := Run(link, Config{
		Content:   c,
		Model:     &fixedJoint{combo: lowestCombo(c)},
		Muxed:     true,
		FaultPlan: &faults.Plan{Seed: 1, Rate: 0.1},
	})
	if err == nil {
		t.Fatal("muxed mode accepted a fault plan")
	}
}

func TestDeadlineAbortSetsAborted(t *testing.T) {
	c := media.DramaShow()
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(0))
	res, err := Run(link, Config{Content: c, Model: &fixedJoint{combo: lowestCombo(c)}, Deadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ended || !res.Aborted || res.AbortReason == "" {
		t.Fatalf("dead link session: Ended=%v Aborted=%v reason=%q", res.Ended, res.Aborted, res.AbortReason)
	}
}
