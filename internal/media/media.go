// Package media models ABR media content with separate (demuxed) audio and
// video tracks: bitrate ladders, per-chunk sizes, and audio/video track
// combinations.
//
// The package ships the exact content used in the paper "ABR Streaming with
// Separate Audio and Video Tracks" (CoNEXT 2019): the YouTube drama show of
// Table 1 with its three audio ladders (A, B, C) and the combination sets of
// Tables 2 and 3.
package media

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Type distinguishes audio from video tracks.
type Type int

const (
	// Video is a video track or stream.
	Video Type = iota
	// Audio is an audio track or stream.
	Audio
)

// String returns "video" or "audio".
func (t Type) String() string {
	switch t {
	case Video:
		return "video"
	case Audio:
		return "audio"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Bps is a bitrate in bits per second.
type Bps int64

// Kbps constructs a bitrate from a value in kilobits per second.
func Kbps(v float64) Bps { return Bps(v * 1000) }

// Kbps reports the bitrate in kilobits per second.
func (b Bps) Kbps() float64 { return float64(b) / 1000 }

// String renders the bitrate in human units.
func (b Bps) String() string {
	switch {
	case b >= 1_000_000:
		return fmt.Sprintf("%.2fMbps", float64(b)/1e6)
	case b >= 1_000:
		return fmt.Sprintf("%.0fKbps", float64(b)/1e3)
	default:
		return fmt.Sprintf("%dbps", int64(b))
	}
}

// Track describes one encoded variant of the audio or the video component.
type Track struct {
	// ID is the short name used throughout the paper, e.g. "V3" or "A2".
	ID string
	// Type is Audio or Video.
	Type Type
	// AvgBitrate is the measured average encoding bitrate.
	AvgBitrate Bps
	// PeakBitrate is the measured peak encoding bitrate.
	PeakBitrate Bps
	// DeclaredBitrate is the bandwidth the manifest declares for the track
	// (the DASH @bandwidth attribute; close to the peak bitrate).
	DeclaredBitrate Bps

	// Resolution is the video resolution label (e.g. "480p"); video only.
	Resolution string
	// Channels is the audio channel count; audio only.
	Channels int
	// SampleRateHz is the audio sampling rate; audio only.
	SampleRateHz int
	// Language is the audio language tag (e.g. "en", "es"); empty when the
	// content has a single language. One §1 motivation for demuxed tracks
	// is exactly this: audio variants multiply across languages while the
	// video tracks are shared.
	Language string
}

// String returns the track ID.
func (t *Track) String() string { return t.ID }

// Ladder is an ordered list of tracks of one type, lowest bitrate first.
type Ladder []*Track

// IDs returns the track IDs in ladder order.
func (l Ladder) IDs() []string {
	ids := make([]string, len(l))
	for i, t := range l {
		ids[i] = t.ID
	}
	return ids
}

// ByID returns the track with the given ID, or nil.
func (l Ladder) ByID(id string) *Track {
	for _, t := range l {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Index returns the position of tr in the ladder, or -1.
func (l Ladder) Index(tr *Track) int {
	for i, t := range l {
		if t == tr {
			return i
		}
	}
	return -1
}

// Validate checks that the ladder is non-empty, homogeneous in type, and
// sorted by increasing declared bitrate.
func (l Ladder) Validate() error {
	if len(l) == 0 {
		return fmt.Errorf("media: empty ladder")
	}
	typ := l[0].Type
	for i, t := range l {
		if t == nil {
			return fmt.Errorf("media: nil track at index %d", i)
		}
		if t.Type != typ {
			return fmt.Errorf("media: mixed track types in ladder (%s is %s, want %s)", t.ID, t.Type, typ)
		}
		if t.DeclaredBitrate <= 0 {
			return fmt.Errorf("media: track %s has non-positive declared bitrate", t.ID)
		}
		if i > 0 && l[i-1].DeclaredBitrate > t.DeclaredBitrate {
			return fmt.Errorf("media: ladder not sorted by declared bitrate at %s", t.ID)
		}
	}
	return nil
}

// Combo is a pairing of one video track with one audio track — the unit of
// selection for joint audio/video adaptation.
type Combo struct {
	Video *Track
	Audio *Track
}

// AvgBitrate is the sum of the tracks' average bitrates.
func (c Combo) AvgBitrate() Bps { return c.Video.AvgBitrate + c.Audio.AvgBitrate }

// PeakBitrate is the sum of the tracks' peak bitrates (the HLS BANDWIDTH
// attribute of the variant).
func (c Combo) PeakBitrate() Bps { return c.Video.PeakBitrate + c.Audio.PeakBitrate }

// DeclaredBitrate is the sum of the tracks' declared bitrates (the bandwidth
// requirement a DASH client computes for the pair).
func (c Combo) DeclaredBitrate() Bps { return c.Video.DeclaredBitrate + c.Audio.DeclaredBitrate }

// String renders the combination as in the paper, e.g. "V3+A2".
func (c Combo) String() string {
	v, a := "?", "?"
	if c.Video != nil {
		v = c.Video.ID
	}
	if c.Audio != nil {
		a = c.Audio.ID
	}
	return v + "+" + a
}

// AllCombos returns the full cross product of the video and audio ladders,
// sorted by increasing peak bitrate (the order of Table 2 / manifest H_all).
func AllCombos(video, audio Ladder) []Combo {
	combos := make([]Combo, 0, len(video)*len(audio))
	for _, v := range video {
		for _, a := range audio {
			combos = append(combos, Combo{Video: v, Audio: a})
		}
	}
	sort.SliceStable(combos, func(i, j int) bool {
		return combos[i].PeakBitrate() < combos[j].PeakBitrate()
	})
	return combos
}

// PairCombos builds a curated combination list by pairing video track i with
// the audio track whose ladder position proportionally matches, associating
// high-quality video with high-quality audio (the construction of manifest
// H_sub: V1+A1, V2+A1, V3+A2, V4+A2, V5+A3, V6+A3 for a 6x3 ladder).
func PairCombos(video, audio Ladder) []Combo {
	m, n := len(video), len(audio)
	combos := make([]Combo, m)
	for i, v := range video {
		// Audio index interpolates the ladder positions: the lowest video
		// pairs with the lowest audio, the highest with the highest.
		j := n - 1
		if m > 1 {
			j = (i*(n-1)*2 + (m - 1)) / ((m - 1) * 2) // round(i*(n-1)/(m-1))
		}
		combos[i] = Combo{Video: v, Audio: audio[j]}
	}
	return combos
}

// Content is a complete demuxed media asset: its ladders, chunking, and
// deterministic per-chunk sizes.
//
// Chunking comes in two regimes. Uniform content tiles Duration with
// ChunkDuration-long chunks (the final chunk may be short) and carries no
// boundary tables — every index↔time conversion is pure arithmetic, exactly
// as before boundary tables existed. Shaped content (built from a spec with
// explicit per-chunk durations, e.g. by internal/shaping) carries one
// boundary table per track type, so audio and video timelines may disagree
// in both chunk count and chunk edges.
type Content struct {
	// Name identifies the asset (e.g. "drama-show").
	Name string
	// Duration is the total playback duration.
	Duration time.Duration
	// ChunkDuration is the nominal chunk duration. For uniform content it is
	// the duration of every chunk (last chunk may be short); for shaped
	// content it remains the nominal value buffers and part targets are
	// derived from, while actual chunk edges come from the boundary tables.
	ChunkDuration time.Duration
	// VideoTracks and AudioTracks are the ladders, lowest bitrate first.
	VideoTracks Ladder
	AudioTracks Ladder

	// starts holds the per-type chunk boundary tables: starts[t] is the
	// cumulative start offset of each chunk plus a final entry equal to
	// Duration (len = chunks+1). nil means the type's timeline is uniform —
	// derived from ChunkDuration with arithmetic identical to the
	// pre-boundary-table code, which is what keeps unshaped content
	// byte-identical everywhere.
	starts [2][]time.Duration

	sizes map[string][]int64 // track ID -> per-chunk sizes in bytes

	// Cached combination expansions (HAll/HSub); built on first use.
	// Everything else in Content is immutable after construction, so the
	// once-guards are the only synchronization content sharing needs.
	hallOnce sync.Once
	hall     []Combo
	hsubOnce sync.Once
	hsub     []Combo
}

// NumChunks returns the number of chunks in the video timeline (for content
// without per-type boundary tables, the chunk count of every track). Shaped
// content can have a different audio chunk count; use NumChunksOf.
func (c *Content) NumChunks() int {
	if s := c.starts[Video]; s != nil {
		return len(s) - 1
	}
	n := int(c.Duration / c.ChunkDuration)
	if c.Duration%c.ChunkDuration != 0 {
		n++
	}
	return n
}

// NumChunksOf returns the number of chunks in the given type's timeline.
func (c *Content) NumChunksOf(t Type) int {
	if s := c.starts[t]; s != nil {
		return len(s) - 1
	}
	n := int(c.Duration / c.ChunkDuration)
	if c.Duration%c.ChunkDuration != 0 {
		n++
	}
	return n
}

// ChunkDurationAt returns the duration of chunk i of the video timeline
// (the final chunk may be shorter than ChunkDuration). Shaped content can
// have a different audio timeline; use ChunkDurationOf.
func (c *Content) ChunkDurationAt(i int) time.Duration {
	return c.ChunkDurationOf(Video, i)
}

// ChunkDurationOf returns the duration of chunk i of the given type's
// timeline, or 0 when i is out of range.
func (c *Content) ChunkDurationOf(t Type, i int) time.Duration {
	if s := c.starts[t]; s != nil {
		if i < 0 || i >= len(s)-1 {
			return 0
		}
		return s[i+1] - s[i]
	}
	n := c.NumChunksOf(t)
	if i < 0 || i >= n {
		return 0
	}
	if i == n-1 {
		if rem := c.Duration % c.ChunkDuration; rem != 0 {
			return rem
		}
	}
	return c.ChunkDuration
}

// ChunkStartOf returns the playback offset at which chunk i of the given
// type's timeline begins. i may equal the chunk count, in which case the
// result is Duration (the exclusive end of the last chunk).
func (c *Content) ChunkStartOf(t Type, i int) time.Duration {
	if s := c.starts[t]; s != nil {
		if i < 0 {
			return 0
		}
		if i >= len(s) {
			return c.Duration
		}
		return s[i]
	}
	if i < 0 {
		return 0
	}
	if start := time.Duration(i) * c.ChunkDuration; start < c.Duration {
		return start
	}
	return c.Duration
}

// ChunkIndexAt returns the index of the chunk of the given type's timeline
// that covers playback position pos (clamped into [0, Duration)). Uniform
// timelines use division; boundary tables use binary search.
func (c *Content) ChunkIndexAt(t Type, pos time.Duration) int {
	n := c.NumChunksOf(t)
	if pos <= 0 || n == 0 {
		return 0
	}
	if s := c.starts[t]; s != nil {
		// First chunk whose end lies beyond pos.
		idx := sort.Search(n, func(i int) bool { return s[i+1] > pos })
		if idx >= n {
			idx = n - 1
		}
		return idx
	}
	idx := int(pos / c.ChunkDuration)
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// ChunkTimeline returns the cumulative boundary table of the given type's
// timeline: entry i is the start of chunk i, with a final entry equal to
// Duration (len = chunks+1). For shaped content this is the content's own
// table — callers must treat it as read-only.
func (c *Content) ChunkTimeline(t Type) []time.Duration {
	if s := c.starts[t]; s != nil {
		return s
	}
	n := c.NumChunksOf(t)
	out := make([]time.Duration, n+1)
	for i := 0; i < n; i++ {
		out[i+1] = out[i] + c.ChunkDurationOf(t, i)
	}
	return out
}

// Irregular reports whether the given type's timeline carries an explicit
// boundary table (shaped content) rather than uniform nominal chunking.
func (c *Content) Irregular(t Type) bool { return c.starts[t] != nil }

// Aligned reports whether the audio and video timelines share identical
// chunk boundaries — the regime every shared-chunk-index consumer (joint
// scheduling, muxed packaging, index-paired combination accounting)
// requires. Uniform content is trivially aligned.
func (c *Content) Aligned() bool {
	if c.starts[Video] == nil && c.starts[Audio] == nil {
		return true
	}
	n := c.NumChunksOf(Video)
	if c.NumChunksOf(Audio) != n {
		return false
	}
	for i := 0; i < n; i++ {
		if c.ChunkDurationOf(Video, i) != c.ChunkDurationOf(Audio, i) {
			return false
		}
	}
	return true
}

// MaxChunkDurationOf returns the longest chunk duration in the given type's
// timeline — what RFC 8216 requires EXT-X-TARGETDURATION to cover. Uniform
// timelines return the nominal ChunkDuration.
func (c *Content) MaxChunkDurationOf(t Type) time.Duration {
	s := c.starts[t]
	if s == nil {
		return c.ChunkDuration
	}
	var max time.Duration
	for i := 0; i+1 < len(s); i++ {
		if d := s[i+1] - s[i]; d > max {
			max = d
		}
	}
	return max
}

// ChunkSize returns the size in bytes of chunk i of the given track.
func (c *Content) ChunkSize(tr *Track, i int) int64 {
	s, ok := c.sizes[tr.ID]
	if !ok || i < 0 || i >= len(s) {
		return 0
	}
	return s[i]
}

// TrackSizes returns the precomputed per-chunk byte sizes of a track, or
// nil for an unknown track. The slice is the content's own table — callers
// must treat it as read-only. Hot loops (the CDN workloads) index it
// directly instead of paying ChunkSize's map lookup per chunk.
func (c *Content) TrackSizes(tr *Track) []int64 { return c.sizes[tr.ID] }

// TrackBytes returns the total size of a track across all chunks.
func (c *Content) TrackBytes(tr *Track) int64 {
	var total int64
	for _, s := range c.sizes[tr.ID] {
		total += s
	}
	return total
}

// Tracks returns all tracks, video first.
func (c *Content) Tracks() []*Track {
	out := make([]*Track, 0, len(c.VideoTracks)+len(c.AudioTracks))
	out = append(out, c.VideoTracks...)
	out = append(out, c.AudioTracks...)
	return out
}

// TrackByID finds a track in either ladder, or returns nil.
func (c *Content) TrackByID(id string) *Track {
	if t := c.VideoTracks.ByID(id); t != nil {
		return t
	}
	return c.AudioTracks.ByID(id)
}

// Validate checks ladders and chunk-size completeness.
func (c *Content) Validate() error {
	if err := c.VideoTracks.Validate(); err != nil {
		return fmt.Errorf("video: %w", err)
	}
	if err := c.AudioTracks.Validate(); err != nil {
		return fmt.Errorf("audio: %w", err)
	}
	if c.VideoTracks[0].Type != Video {
		return fmt.Errorf("media: video ladder holds %s tracks", c.VideoTracks[0].Type)
	}
	if c.AudioTracks[0].Type != Audio {
		return fmt.Errorf("media: audio ladder holds %s tracks", c.AudioTracks[0].Type)
	}
	if c.ChunkDuration <= 0 || c.Duration <= 0 {
		return fmt.Errorf("media: non-positive duration")
	}
	for _, typ := range []Type{Video, Audio} {
		if s := c.starts[typ]; s != nil {
			if len(s) < 2 || s[0] != 0 {
				return fmt.Errorf("media: %s boundary table must start at 0 with at least one chunk", typ)
			}
			for i := 1; i < len(s); i++ {
				if s[i] <= s[i-1] {
					return fmt.Errorf("media: %s boundary table not strictly increasing at entry %d", typ, i)
				}
			}
			if last := s[len(s)-1]; last != c.Duration {
				return fmt.Errorf("media: %s boundary table ends at %v, want %v", typ, last, c.Duration)
			}
		}
	}
	for _, t := range c.Tracks() {
		n := c.NumChunksOf(t.Type)
		if got := len(c.sizes[t.ID]); got != n {
			return fmt.Errorf("media: track %s has %d chunk sizes, want %d", t.ID, got, n)
		}
	}
	return nil
}
