package media

import "testing"

// TestPresetContentCached pins the preset cache: every preset accessor
// must hand back the one shared immutable instance, not re-synthesize the
// chunk tables per call.
func TestPresetContentCached(t *testing.T) {
	if DramaShow() != DramaShow() {
		t.Error("DramaShow re-synthesizes per call")
	}
	if MusicShow() != MusicShow() {
		t.Error("MusicShow re-synthesizes per call")
	}
	if ActionMovie() != ActionMovie() {
		t.Error("ActionMovie re-synthesizes per call")
	}
	if MultiLanguageShow() != MultiLanguageShow() {
		t.Error("MultiLanguageShow re-synthesizes per call")
	}
	if DramaShowLowAudio() != DramaShowLowAudio() || DramaShowHighAudio() != DramaShowHighAudio() {
		t.Error("Fig. 2 drama variants re-synthesize per call")
	}
	allocs := testing.AllocsPerRun(100, func() { _ = DramaShow() })
	if allocs != 0 {
		t.Errorf("DramaShow allocates %.2f objects per call after first, want 0", allocs)
	}
}

// TestComboCacheAllocs pins the H_all/H_sub caches: after the first call
// the only allocation left is the defensive copy handed to the caller.
func TestComboCacheAllocs(t *testing.T) {
	c := DramaShow()
	HAll(c)
	HSub(c)
	if allocs := testing.AllocsPerRun(100, func() { _ = HAll(c) }); allocs > 1 {
		t.Errorf("HAll allocates %.2f objects per call, want <= 1 (the copy): cross product or sort is back on the hot path", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = HSub(c) }); allocs > 1 {
		t.Errorf("HSub allocates %.2f objects per call, want <= 1 (the copy)", allocs)
	}
}

// TestComboCacheReturnsCopies: callers re-sort combination lists (HLS
// master ordering, ladder recovery), so the cache must never leak its
// backing array.
func TestComboCacheReturnsCopies(t *testing.T) {
	c := DramaShow()
	a := HAll(c)
	b := HAll(c)
	a[0], a[1] = a[1], a[0]
	if a[0] == b[0] {
		t.Fatal("HAll returned aliased slices: caller mutation corrupts the cache")
	}
	want := HAll(c)
	for i := range want {
		if want[i] != b[i] {
			t.Fatalf("cache content changed after caller mutation at index %d", i)
		}
	}
}

// TestChunkSizeAllocFree keeps the per-chunk size lookup off the allocator
// entirely, and TrackSizes aligned with it.
func TestChunkSizeAllocFree(t *testing.T) {
	c := DramaShow()
	tr := c.VideoTracks[3]
	if allocs := testing.AllocsPerRun(100, func() { _ = c.ChunkSize(tr, 7) }); allocs != 0 {
		t.Errorf("ChunkSize allocates %.2f objects per call, want 0", allocs)
	}
	sizes := c.TrackSizes(tr)
	if len(sizes) != c.NumChunks() {
		t.Fatalf("TrackSizes returned %d entries, want %d", len(sizes), c.NumChunks())
	}
	for i, s := range sizes {
		if got := c.ChunkSize(tr, i); got != s {
			t.Fatalf("TrackSizes[%d] = %d but ChunkSize = %d", i, s, got)
		}
	}
}
