package media

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// ChunkModel controls how per-chunk sizes are synthesized for a track.
//
// Real ABR content is VBR: chunk bitrates scatter around the track average
// with occasional excursions toward the peak. The model draws deterministic
// per-chunk multipliers from a seeded source, normalizes them so the track's
// realized average bitrate matches AvgBitrate closely, and clamps every chunk
// at the track's peak bitrate.
type ChunkModel struct {
	// Seed makes chunk sizes reproducible. Tracks derive per-track streams
	// from Seed and the track ID, so two contents built with equal seeds and
	// ladders have identical chunks.
	Seed int64
	// Spread is the relative standard deviation of chunk bitrates around the
	// average, before clamping (0 gives CBR chunks). Typical video: 0.3.
	Spread float64
	// PeakEvery inserts a near-peak chunk every PeakEvery chunks (0 disables),
	// modelling scene-complexity spikes that define the track peak bitrate.
	PeakEvery int
}

// DefaultChunkModel is the model used by the content presets: moderately
// variable video chunks with a peak excursion every 8 chunks.
func DefaultChunkModel() ChunkModel {
	return ChunkModel{Seed: 1, Spread: 0.25, PeakEvery: 8}
}

// CBRChunkModel produces constant-bitrate chunks at the track average.
func CBRChunkModel() ChunkModel { return ChunkModel{} }

// trackSeed derives a stable per-track seed from the model seed and track ID.
func (m ChunkModel) trackSeed(id string) int64 {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return m.Seed ^ int64(h&math.MaxInt64)
}

// sizes generates the per-chunk byte sizes of one track.
func (m ChunkModel) sizes(tr *Track, n int, chunkDur func(int) time.Duration) []int64 {
	rng := rand.New(rand.NewSource(m.trackSeed(tr.ID)))
	avg := float64(tr.AvgBitrate)
	peak := float64(tr.PeakBitrate)
	if peak < avg {
		peak = avg
	}
	mult := make([]float64, n)
	var sum float64
	for i := range mult {
		f := 1.0
		if m.Spread > 0 {
			f += m.Spread * rng.NormFloat64()
		}
		// Keep chunks within a plausible envelope before normalization.
		f = math.Max(0.4, math.Min(f, peak/avg))
		if m.PeakEvery > 0 && (i+1)%m.PeakEvery == 0 {
			f = peak / avg
		}
		mult[i] = f
		sum += f
	}
	// Normalize so the mean multiplier is 1 (realized average == AvgBitrate),
	// then clamp at the peak. Clamping can pull the mean slightly below 1;
	// acceptable since the peak rows are rare.
	norm := float64(n) / sum
	out := make([]int64, n)
	for i := range mult {
		f := math.Min(mult[i]*norm, peak/avg)
		secs := chunkDur(i).Seconds()
		bits := avg * f * secs
		out[i] = int64(bits / 8)
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out
}

// ContentSpec describes a content asset to synthesize.
type ContentSpec struct {
	Name          string
	Duration      time.Duration
	ChunkDuration time.Duration
	VideoTracks   Ladder
	AudioTracks   Ladder
	Model         ChunkModel
}

// NewContent synthesizes a Content from the spec, generating deterministic
// chunk sizes for every track.
func NewContent(spec ContentSpec) (*Content, error) {
	c := &Content{
		Name:          spec.Name,
		Duration:      spec.Duration,
		ChunkDuration: spec.ChunkDuration,
		VideoTracks:   spec.VideoTracks,
		AudioTracks:   spec.AudioTracks,
		sizes:         make(map[string][]int64),
	}
	if c.ChunkDuration <= 0 {
		return nil, fmt.Errorf("media: chunk duration must be positive")
	}
	if c.Duration < c.ChunkDuration {
		return nil, fmt.Errorf("media: duration %v shorter than one chunk %v", c.Duration, c.ChunkDuration)
	}
	n := c.NumChunks()
	for _, tr := range c.Tracks() {
		model := spec.Model
		if tr.Type == Audio {
			// Audio is near-CBR: tight spread, no scene spikes.
			model.Spread = math.Min(model.Spread, 0.02)
			model.PeakEvery = 0
		}
		c.sizes[tr.ID] = model.sizes(tr, n, c.ChunkDurationAt)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// MustNewContent is NewContent that panics on error; for presets and tests.
func MustNewContent(spec ContentSpec) *Content {
	c, err := NewContent(spec)
	if err != nil {
		panic(err)
	}
	return c
}
