package media

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// ChunkModel controls how per-chunk sizes are synthesized for a track.
//
// Real ABR content is VBR: chunk bitrates scatter around the track average
// with occasional excursions toward the peak. The model draws deterministic
// per-chunk multipliers from a seeded source, normalizes them so the track's
// realized average bitrate matches AvgBitrate closely, and clamps every chunk
// at the track's peak bitrate.
type ChunkModel struct {
	// Seed makes chunk sizes reproducible. Tracks derive per-track streams
	// from Seed and the track ID, so two contents built with equal seeds and
	// ladders have identical chunks.
	Seed int64
	// Spread is the relative standard deviation of chunk bitrates around the
	// average, before clamping (0 gives CBR chunks). Typical video: 0.3.
	Spread float64
	// PeakEvery inserts a near-peak chunk every PeakEvery chunks (0 disables),
	// modelling scene-complexity spikes that define the track peak bitrate.
	// Ignored when Scenes is set.
	PeakEvery int
	// Scenes, when non-empty, anchors complexity to media TIME instead of
	// chunk index: each chunk's multiplier is the time-weighted mean scene
	// complexity over the chunk's own interval (still normalized to mean 1
	// and clamped at the peak). This is what makes offline chunking a real
	// optimization target — re-chunking the same title re-integrates the
	// same underlying signal, instead of redrawing unrelated per-index
	// noise. Empty (the default everywhere outside the shaping stage)
	// keeps the index-based draw byte-identical to pre-scene code.
	Scenes []Scene
}

// Scene is one piecewise-constant span of the scene-anchored complexity
// signal: Complexity multiplies the track's average bitrate for Duration.
type Scene struct {
	Duration   time.Duration
	Complexity float64
}

// DefaultChunkModel is the model used by the content presets: moderately
// variable video chunks with a peak excursion every 8 chunks.
func DefaultChunkModel() ChunkModel {
	return ChunkModel{Seed: 1, Spread: 0.25, PeakEvery: 8}
}

// CBRChunkModel produces constant-bitrate chunks at the track average.
func CBRChunkModel() ChunkModel { return ChunkModel{} }

// trackSeed derives a stable per-track seed from the model seed and track ID.
func (m ChunkModel) trackSeed(id string) int64 {
	h := uint64(1469598103934665603) // FNV-1a offset basis
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return m.Seed ^ int64(h&math.MaxInt64)
}

// meanComplexity returns the time-weighted mean complexity of scenes over
// [from, to).
func meanComplexity(scenes []Scene, from, to time.Duration) float64 {
	if to <= from {
		return 1
	}
	var weighted float64
	var at time.Duration
	for _, sc := range scenes {
		end := at + sc.Duration
		lo, hi := from, to
		if at > lo {
			lo = at
		}
		if end < hi {
			hi = end
		}
		if hi > lo {
			weighted += sc.Complexity * (hi - lo).Seconds()
		}
		at = end
		if at >= to {
			break
		}
	}
	return weighted / (to - from).Seconds()
}

// sizes generates the per-chunk byte sizes of one track.
func (m ChunkModel) sizes(tr *Track, n int, chunkDur func(int) time.Duration) []int64 {
	rng := rand.New(rand.NewSource(m.trackSeed(tr.ID)))
	avg := float64(tr.AvgBitrate)
	peak := float64(tr.PeakBitrate)
	if peak < avg {
		peak = avg
	}
	mult := make([]float64, n)
	var sum float64
	var start time.Duration
	for i := range mult {
		f := 1.0
		if m.Spread > 0 {
			f += m.Spread * rng.NormFloat64()
		}
		if len(m.Scenes) > 0 {
			// Time-anchored complexity: integrate the scene signal over the
			// chunk's interval (noise above still adds encoder-level texture).
			d := chunkDur(i)
			f += meanComplexity(m.Scenes, start, start+d) - 1
			start += d
		}
		// Keep chunks within a plausible envelope before normalization.
		f = math.Max(0.4, math.Min(f, peak/avg))
		if len(m.Scenes) == 0 && m.PeakEvery > 0 && (i+1)%m.PeakEvery == 0 {
			f = peak / avg
		}
		mult[i] = f
		sum += f
	}
	// Normalize so the mean multiplier is 1 (realized average == AvgBitrate),
	// then clamp at the peak. Clamping can pull the mean slightly below 1;
	// acceptable since the peak rows are rare.
	norm := float64(n) / sum
	out := make([]int64, n)
	for i := range mult {
		f := math.Min(mult[i]*norm, peak/avg)
		secs := chunkDur(i).Seconds()
		bits := avg * f * secs
		out[i] = int64(bits / 8)
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out
}

// ContentSpec describes a content asset to synthesize.
type ContentSpec struct {
	Name          string
	Duration      time.Duration
	ChunkDuration time.Duration
	VideoTracks   Ladder
	AudioTracks   Ladder
	Model         ChunkModel

	// VideoChunks / AudioChunks, when non-nil, give explicit per-chunk
	// durations for the type's timeline (they must sum exactly to Duration).
	// nil keeps the type on uniform ChunkDuration tiling — the default, and
	// the path whose output is byte-identical to content built before
	// variable-duration chunking existed. Offline shaping (internal/shaping)
	// is the intended producer of these tables.
	VideoChunks []time.Duration
	AudioChunks []time.Duration
}

// boundaryTable converts explicit per-chunk durations into a cumulative
// start table (len = chunks+1, last entry == total).
func boundaryTable(durs []time.Duration, total time.Duration) ([]time.Duration, error) {
	starts := make([]time.Duration, len(durs)+1)
	for i, d := range durs {
		if d <= 0 {
			return nil, fmt.Errorf("media: chunk %d has non-positive duration %v", i, d)
		}
		starts[i+1] = starts[i] + d
	}
	if got := starts[len(starts)-1]; got != total {
		return nil, fmt.Errorf("media: chunk durations sum to %v, want %v", got, total)
	}
	return starts, nil
}

// NewContent synthesizes a Content from the spec, generating deterministic
// chunk sizes for every track.
func NewContent(spec ContentSpec) (*Content, error) {
	c := &Content{
		Name:          spec.Name,
		Duration:      spec.Duration,
		ChunkDuration: spec.ChunkDuration,
		VideoTracks:   spec.VideoTracks,
		AudioTracks:   spec.AudioTracks,
		sizes:         make(map[string][]int64),
	}
	if c.ChunkDuration <= 0 {
		return nil, fmt.Errorf("media: chunk duration must be positive")
	}
	if c.Duration < c.ChunkDuration {
		return nil, fmt.Errorf("media: duration %v shorter than one chunk %v", c.Duration, c.ChunkDuration)
	}
	for _, e := range []struct {
		typ  Type
		durs []time.Duration
	}{{Video, spec.VideoChunks}, {Audio, spec.AudioChunks}} {
		if e.durs == nil {
			continue
		}
		starts, err := boundaryTable(e.durs, spec.Duration)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.typ, err)
		}
		c.starts[e.typ] = starts
	}
	for _, tr := range c.Tracks() {
		model := spec.Model
		if tr.Type == Audio {
			// Audio is near-CBR: tight spread, no scene spikes.
			model.Spread = math.Min(model.Spread, 0.02)
			model.PeakEvery = 0
			model.Scenes = nil
		}
		typ := tr.Type
		c.sizes[tr.ID] = model.sizes(tr, c.NumChunksOf(typ), func(i int) time.Duration {
			return c.ChunkDurationOf(typ, i)
		})
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// MustNewContent is NewContent that panics on error; for presets and tests.
func MustNewContent(spec ContentSpec) *Content {
	c, err := NewContent(spec)
	if err != nil {
		panic(err)
	}
	return c
}
