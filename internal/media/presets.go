package media

import (
	"sync"
	"time"
)

// This file defines the exact content of the paper's experiments: the
// YouTube drama show of Table 1, and the two alternative audio ladders (B
// and C) used in the ExoPlayer DASH experiments of Fig. 2.

// DramaVideoLadder returns the six video tracks of Table 1.
func DramaVideoLadder() Ladder {
	return Ladder{
		{ID: "V1", Type: Video, AvgBitrate: Kbps(111), PeakBitrate: Kbps(119), DeclaredBitrate: Kbps(111), Resolution: "144p"},
		{ID: "V2", Type: Video, AvgBitrate: Kbps(246), PeakBitrate: Kbps(261), DeclaredBitrate: Kbps(246), Resolution: "240p"},
		{ID: "V3", Type: Video, AvgBitrate: Kbps(362), PeakBitrate: Kbps(641), DeclaredBitrate: Kbps(473), Resolution: "360p"},
		{ID: "V4", Type: Video, AvgBitrate: Kbps(734), PeakBitrate: Kbps(1190), DeclaredBitrate: Kbps(914), Resolution: "480p"},
		{ID: "V5", Type: Video, AvgBitrate: Kbps(1421), PeakBitrate: Kbps(2382), DeclaredBitrate: Kbps(1852), Resolution: "720p"},
		{ID: "V6", Type: Video, AvgBitrate: Kbps(2728), PeakBitrate: Kbps(4447), DeclaredBitrate: Kbps(3746), Resolution: "1080p"},
	}
}

// DramaAudioLadder returns the three audio tracks of Table 1 (ladder "A").
func DramaAudioLadder() Ladder {
	return Ladder{
		{ID: "A1", Type: Audio, AvgBitrate: Kbps(128), PeakBitrate: Kbps(134), DeclaredBitrate: Kbps(128), Channels: 2, SampleRateHz: 44000},
		{ID: "A2", Type: Audio, AvgBitrate: Kbps(196), PeakBitrate: Kbps(199), DeclaredBitrate: Kbps(196), Channels: 6, SampleRateHz: 48000},
		{ID: "A3", Type: Audio, AvgBitrate: Kbps(384), PeakBitrate: Kbps(391), DeclaredBitrate: Kbps(384), Channels: 6, SampleRateHz: 48000},
	}
}

// LowAudioLadder returns the low-bitrate audio adaptation set of the first
// Fig. 2 experiment (tracks B1/B2/B3, declared 32/64/128 Kbps).
func LowAudioLadder() Ladder {
	return Ladder{
		{ID: "B1", Type: Audio, AvgBitrate: Kbps(31), PeakBitrate: Kbps(33), DeclaredBitrate: Kbps(32), Channels: 2, SampleRateHz: 44000},
		{ID: "B2", Type: Audio, AvgBitrate: Kbps(62), PeakBitrate: Kbps(66), DeclaredBitrate: Kbps(64), Channels: 2, SampleRateHz: 44000},
		{ID: "B3", Type: Audio, AvgBitrate: Kbps(125), PeakBitrate: Kbps(131), DeclaredBitrate: Kbps(128), Channels: 2, SampleRateHz: 44000},
	}
}

// HighAudioLadder returns the high-bitrate audio adaptation set of the second
// Fig. 2 experiment (tracks C1/C2/C3, declared 196/384/768 Kbps).
func HighAudioLadder() Ladder {
	return Ladder{
		{ID: "C1", Type: Audio, AvgBitrate: Kbps(192), PeakBitrate: Kbps(199), DeclaredBitrate: Kbps(196), Channels: 2, SampleRateHz: 48000},
		{ID: "C2", Type: Audio, AvgBitrate: Kbps(376), PeakBitrate: Kbps(391), DeclaredBitrate: Kbps(384), Channels: 6, SampleRateHz: 48000},
		{ID: "C3", Type: Audio, AvgBitrate: Kbps(752), PeakBitrate: Kbps(781), DeclaredBitrate: Kbps(768), Channels: 6, SampleRateHz: 48000},
	}
}

// DramaDuration is the playback duration of the paper's test asset
// ("around 5 minutes long").
const DramaDuration = 5 * time.Minute

// DramaChunkDuration is the chunk duration used when synthesizing the asset.
// The paper does not state it; 5 s is the common YouTube/DASH segmentation.
const DramaChunkDuration = 5 * time.Second

// Preset content is immutable once synthesized (Content has no mutating
// methods; the chunk-size tables are read-only after NewContent), so each
// preset is built once and shared — including across runpool fleet
// sessions. Synthesizing the VBR chunk tables costs ~60 chunks × ~10
// tracks of seeded draws per call, which used to run once per session.
var (
	dramaShow          = sync.OnceValue(newDramaShow)
	dramaShowLowAudio  = sync.OnceValue(newDramaShowLowAudio)
	dramaShowHighAudio = sync.OnceValue(newDramaShowHighAudio)
	musicShow          = sync.OnceValue(newMusicShow)
	actionMovie        = sync.OnceValue(newActionMovie)
	multiLanguageShow  = sync.OnceValue(newMultiLanguageShow)
)

// DramaShow synthesizes the Table 1 content (A audio ladder).
func DramaShow() *Content { return dramaShow() }

func newDramaShow() *Content {
	return MustNewContent(ContentSpec{
		Name:          "drama-show",
		Duration:      DramaDuration,
		ChunkDuration: DramaChunkDuration,
		VideoTracks:   DramaVideoLadder(),
		AudioTracks:   DramaAudioLadder(),
		Model:         DefaultChunkModel(),
	})
}

// DramaShowLowAudio is the Fig. 2(a) variant: Table 1 video + B audio ladder.
func DramaShowLowAudio() *Content { return dramaShowLowAudio() }

func newDramaShowLowAudio() *Content {
	return MustNewContent(ContentSpec{
		Name:          "drama-show-low-audio",
		Duration:      DramaDuration,
		ChunkDuration: DramaChunkDuration,
		VideoTracks:   DramaVideoLadder(),
		AudioTracks:   LowAudioLadder(),
		Model:         DefaultChunkModel(),
	})
}

// DramaShowHighAudio is the Fig. 2(b) variant: Table 1 video + C audio ladder.
func DramaShowHighAudio() *Content { return dramaShowHighAudio() }

func newDramaShowHighAudio() *Content {
	return MustNewContent(ContentSpec{
		Name:          "drama-show-high-audio",
		Duration:      DramaDuration,
		ChunkDuration: DramaChunkDuration,
		VideoTracks:   DramaVideoLadder(),
		AudioTracks:   HighAudioLadder(),
		Model:         DefaultChunkModel(),
	})
}

// HSub returns the curated subset of 6 combinations of manifest H_sub
// (Table 3): V1+A1, V2+A1, V3+A2, V4+A2, V5+A3, V6+A3. The expansion is
// cached per content; the returned slice is a fresh copy the caller may
// reorder.
func HSub(c *Content) []Combo {
	c.hsubOnce.Do(func() { c.hsub = PairCombos(c.VideoTracks, c.AudioTracks) })
	out := make([]Combo, len(c.hsub))
	copy(out, c.hsub)
	return out
}

// HAll returns the full set of 18 combinations of manifest H_all (Table 2),
// sorted by increasing peak bitrate. The cross product and sort are cached
// per content; the returned slice is a fresh copy the caller may reorder.
func HAll(c *Content) []Combo {
	c.hallOnce.Do(func() { c.hall = AllCombos(c.VideoTracks, c.AudioTracks) })
	out := make([]Combo, len(c.hall))
	copy(out, c.hall)
	return out
}

// MusicShowAudioLadder returns an audio ladder for content where sound
// dominates: stereo AAC up to a Dolby-Atmos-class 768 Kbps top rung (the
// §1 observation that modern audio tracks can rival mid-ladder video).
func MusicShowAudioLadder() Ladder {
	return Ladder{
		{ID: "A1", Type: Audio, AvgBitrate: Kbps(128), PeakBitrate: Kbps(134), DeclaredBitrate: Kbps(128), Channels: 2, SampleRateHz: 44000},
		{ID: "A2", Type: Audio, AvgBitrate: Kbps(256), PeakBitrate: Kbps(262), DeclaredBitrate: Kbps(256), Channels: 2, SampleRateHz: 48000},
		{ID: "A3", Type: Audio, AvgBitrate: Kbps(384), PeakBitrate: Kbps(391), DeclaredBitrate: Kbps(384), Channels: 6, SampleRateHz: 48000},
		{ID: "A4", Type: Audio, AvgBitrate: Kbps(752), PeakBitrate: Kbps(768), DeclaredBitrate: Kbps(768), Channels: 8, SampleRateHz: 48000},
	}
}

// MusicShow synthesizes a concert asset: the Table 1 video ladder with the
// four-rung high-fidelity audio ladder.
func MusicShow() *Content { return musicShow() }

func newMusicShow() *Content {
	return MustNewContent(ContentSpec{
		Name:          "music-show",
		Duration:      DramaDuration,
		ChunkDuration: DramaChunkDuration,
		VideoTracks:   DramaVideoLadder(),
		AudioTracks:   MusicShowAudioLadder(),
		Model:         ChunkModel{Seed: 2, Spread: 0.15, PeakEvery: 12}, // steady stage shots
	})
}

// ActionMovie synthesizes a high-motion asset: the Table 1 ladders with a
// far spikier video chunk-size distribution (scene cuts and action peaks),
// stressing VBR-aware players.
func ActionMovie() *Content { return actionMovie() }

func newActionMovie() *Content {
	return MustNewContent(ContentSpec{
		Name:          "action-movie",
		Duration:      DramaDuration,
		ChunkDuration: DramaChunkDuration,
		VideoTracks:   DramaVideoLadder(),
		AudioTracks:   DramaAudioLadder(),
		Model:         ChunkModel{Seed: 3, Spread: 0.45, PeakEvery: 4},
	})
}

// MultiLanguageAudio returns a two-language audio set — the other §1
// motivation for demuxed tracks: each language carries its own quality
// tiers (here 128 and 384 Kbps), and the video ladder is shared.
func MultiLanguageAudio() Ladder {
	return Ladder{
		{ID: "EN1", Type: Audio, Language: "en", AvgBitrate: Kbps(128), PeakBitrate: Kbps(134), DeclaredBitrate: Kbps(128), Channels: 2, SampleRateHz: 48000},
		{ID: "ES1", Type: Audio, Language: "es", AvgBitrate: Kbps(128), PeakBitrate: Kbps(134), DeclaredBitrate: Kbps(128), Channels: 2, SampleRateHz: 48000},
		{ID: "EN2", Type: Audio, Language: "en", AvgBitrate: Kbps(384), PeakBitrate: Kbps(391), DeclaredBitrate: Kbps(384), Channels: 6, SampleRateHz: 48000},
		{ID: "ES2", Type: Audio, Language: "es", AvgBitrate: Kbps(384), PeakBitrate: Kbps(391), DeclaredBitrate: Kbps(384), Channels: 6, SampleRateHz: 48000},
	}
}

// MultiLanguageShow synthesizes the drama video ladder with the
// two-language audio set.
func MultiLanguageShow() *Content { return multiLanguageShow() }

func newMultiLanguageShow() *Content {
	return MustNewContent(ContentSpec{
		Name:          "multi-language-show",
		Duration:      DramaDuration,
		ChunkDuration: DramaChunkDuration,
		VideoTracks:   DramaVideoLadder(),
		AudioTracks:   MultiLanguageAudio(),
		Model:         DefaultChunkModel(),
	})
}

// LanguageLadder filters an audio ladder to one language (tracks with an
// empty Language always match).
func LanguageLadder(audio Ladder, lang string) Ladder {
	var out Ladder
	for _, t := range audio {
		if t.Language == "" || t.Language == lang {
			out = append(out, t)
		}
	}
	return out
}

// CombosForLanguage filters a combination list to one audio language.
func CombosForLanguage(combos []Combo, lang string) []Combo {
	var out []Combo
	for _, cb := range combos {
		if cb.Audio.Language == "" || cb.Audio.Language == lang {
			out = append(out, cb)
		}
	}
	return out
}
