package media

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTable1Ladder(t *testing.T) {
	v := DramaVideoLadder()
	a := DramaAudioLadder()
	if err := v.Validate(); err != nil {
		t.Fatalf("video ladder invalid: %v", err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("audio ladder invalid: %v", err)
	}
	// Spot-check the exact Table 1 rows.
	cases := []struct {
		id            string
		avg, pk, decl float64
	}{
		{"A1", 128, 134, 128},
		{"A2", 196, 199, 196},
		{"A3", 384, 391, 384},
		{"V1", 111, 119, 111},
		{"V2", 246, 261, 246},
		{"V3", 362, 641, 473},
		{"V4", 734, 1190, 914},
		{"V5", 1421, 2382, 1852},
		{"V6", 2728, 4447, 3746},
	}
	c := DramaShow()
	for _, tc := range cases {
		tr := c.TrackByID(tc.id)
		if tr == nil {
			t.Fatalf("track %s missing", tc.id)
		}
		if tr.AvgBitrate != Kbps(tc.avg) || tr.PeakBitrate != Kbps(tc.pk) || tr.DeclaredBitrate != Kbps(tc.decl) {
			t.Errorf("%s: got avg=%v peak=%v decl=%v, want %v/%v/%v",
				tc.id, tr.AvgBitrate, tr.PeakBitrate, tr.DeclaredBitrate,
				Kbps(tc.avg), Kbps(tc.pk), Kbps(tc.decl))
		}
	}
}

func TestTable2AllCombos(t *testing.T) {
	c := DramaShow()
	combos := HAll(c)
	if len(combos) != 18 {
		t.Fatalf("got %d combos, want 18", len(combos))
	}
	// The exact Table 2 rows in the paper's (peak-sorted) order.
	want := []struct {
		name    string
		avg, pk float64 // Kbps
	}{
		{"V1+A1", 239, 253}, {"V1+A2", 307, 318}, {"V2+A1", 374, 395},
		{"V2+A2", 442, 460}, {"V1+A3", 495, 510}, {"V2+A3", 630, 652},
		{"V3+A1", 490, 775}, {"V3+A2", 558, 840}, {"V3+A3", 746, 1032},
		{"V4+A1", 862, 1324}, {"V4+A2", 930, 1389}, {"V4+A3", 1118, 1581},
		{"V5+A1", 1549, 2516}, {"V5+A2", 1617, 2581}, {"V5+A3", 1805, 2773},
		{"V6+A1", 2856, 4581}, {"V6+A2", 2924, 4646}, {"V6+A3", 3112, 4838},
	}
	for i, w := range want {
		got := combos[i]
		if got.String() != w.name {
			t.Errorf("row %d: got %s, want %s", i, got, w.name)
			continue
		}
		if got.AvgBitrate() != Kbps(w.avg) {
			t.Errorf("%s: avg %v, want %v", w.name, got.AvgBitrate(), Kbps(w.avg))
		}
		if got.PeakBitrate() != Kbps(w.pk) {
			t.Errorf("%s: peak %v, want %v", w.name, got.PeakBitrate(), Kbps(w.pk))
		}
	}
}

func TestTable3SubsetCombos(t *testing.T) {
	c := DramaShow()
	combos := HSub(c)
	want := []struct {
		name    string
		avg, pk float64
	}{
		{"V1+A1", 239, 253}, {"V2+A1", 374, 395}, {"V3+A2", 558, 840},
		{"V4+A2", 930, 1389}, {"V5+A3", 1805, 2773}, {"V6+A3", 3112, 4838},
	}
	if len(combos) != len(want) {
		t.Fatalf("got %d combos, want %d", len(combos), len(want))
	}
	for i, w := range want {
		got := combos[i]
		if got.String() != w.name || got.AvgBitrate() != Kbps(w.avg) || got.PeakBitrate() != Kbps(w.pk) {
			t.Errorf("row %d: got %s avg=%v pk=%v, want %s/%v/%v",
				i, got, got.AvgBitrate(), got.PeakBitrate(), w.name, Kbps(w.avg), Kbps(w.pk))
		}
	}
}

func TestChunkSizesMatchAverageBitrate(t *testing.T) {
	c := DramaShow()
	for _, tr := range c.Tracks() {
		total := c.TrackBytes(tr)
		realized := float64(total) * 8 / c.Duration.Seconds()
		want := float64(tr.AvgBitrate)
		if rel := math.Abs(realized-want) / want; rel > 0.05 {
			t.Errorf("%s: realized avg %.0f bps vs declared %.0f (%.1f%% off)",
				tr.ID, realized, want, rel*100)
		}
	}
}

func TestChunkSizesRespectPeak(t *testing.T) {
	c := DramaShow()
	for _, tr := range c.Tracks() {
		for i := 0; i < c.NumChunks(); i++ {
			sz := c.ChunkSize(tr, i)
			dur := c.ChunkDurationAt(i).Seconds()
			if rate := float64(sz) * 8 / dur; rate > float64(tr.PeakBitrate)*1.001 {
				t.Errorf("%s chunk %d: rate %.0f exceeds peak %d", tr.ID, i, rate, tr.PeakBitrate)
			}
		}
	}
}

func TestChunkSizesDeterministic(t *testing.T) {
	a, b := DramaShow(), DramaShow()
	for _, tr := range a.Tracks() {
		for i := 0; i < a.NumChunks(); i++ {
			if a.ChunkSize(tr, i) != b.ChunkSize(a.TrackByID(tr.ID), i) {
				t.Fatalf("chunk sizes not deterministic at %s[%d]", tr.ID, i)
			}
		}
	}
}

func TestNumChunksAndLastChunk(t *testing.T) {
	c := MustNewContent(ContentSpec{
		Name:          "odd",
		Duration:      17 * time.Second,
		ChunkDuration: 5 * time.Second,
		VideoTracks:   DramaVideoLadder(),
		AudioTracks:   DramaAudioLadder(),
	})
	if got := c.NumChunks(); got != 4 {
		t.Fatalf("NumChunks = %d, want 4", got)
	}
	if got := c.ChunkDurationAt(3); got != 2*time.Second {
		t.Errorf("last chunk duration = %v, want 2s", got)
	}
	if got := c.ChunkDurationAt(0); got != 5*time.Second {
		t.Errorf("first chunk duration = %v, want 5s", got)
	}
	if got := c.ChunkDurationAt(4); got != 0 {
		t.Errorf("out-of-range chunk duration = %v, want 0", got)
	}
}

func TestLadderValidateRejectsBadLadders(t *testing.T) {
	if err := (Ladder{}).Validate(); err == nil {
		t.Error("empty ladder should fail")
	}
	mixed := Ladder{
		{ID: "V1", Type: Video, DeclaredBitrate: 1},
		{ID: "A1", Type: Audio, DeclaredBitrate: 2},
	}
	if err := mixed.Validate(); err == nil {
		t.Error("mixed-type ladder should fail")
	}
	unsorted := Ladder{
		{ID: "V2", Type: Video, DeclaredBitrate: 10},
		{ID: "V1", Type: Video, DeclaredBitrate: 5},
	}
	if err := unsorted.Validate(); err == nil {
		t.Error("unsorted ladder should fail")
	}
}

func TestPairCombosMonotone(t *testing.T) {
	// Property: for any ladder sizes, PairCombos is monotone non-decreasing
	// in both the video and the audio index.
	f := func(nv, na uint8) bool {
		m, n := int(nv)%8+1, int(na)%8+1
		video := make(Ladder, m)
		for i := range video {
			video[i] = &Track{ID: "V", Type: Video, DeclaredBitrate: Bps(100 * (i + 1))}
		}
		audio := make(Ladder, n)
		for i := range audio {
			audio[i] = &Track{ID: "A", Type: Audio, DeclaredBitrate: Bps(10 * (i + 1))}
		}
		combos := PairCombos(video, audio)
		if len(combos) != m {
			return false
		}
		prev := -1
		for i, cb := range combos {
			if video.Index(cb.Video) != i {
				return false
			}
			j := audio.Index(cb.Audio)
			if j < prev {
				return false
			}
			prev = j
		}
		// Highest video must pair with highest audio, and (when there is
		// more than one video) lowest with lowest.
		if combos[m-1].Audio != audio[n-1] {
			return false
		}
		return m == 1 || combos[0].Audio == audio[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllCombosSortedByPeak(t *testing.T) {
	f := func(seed int64) bool {
		c := DramaShow()
		combos := AllCombos(c.VideoTracks, c.AudioTracks)
		for i := 1; i < len(combos); i++ {
			if combos[i-1].PeakBitrate() > combos[i].PeakBitrate() {
				return false
			}
		}
		return len(combos) == len(c.VideoTracks)*len(c.AudioTracks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestBpsHelpers(t *testing.T) {
	if Kbps(128) != 128000 {
		t.Errorf("Kbps(128) = %d", Kbps(128))
	}
	if got := Bps(1500000).String(); got != "1.50Mbps" {
		t.Errorf("String() = %q", got)
	}
	if got := Bps(384000).String(); got != "384Kbps" {
		t.Errorf("String() = %q", got)
	}
	if got := Bps(500).String(); got != "500bps" {
		t.Errorf("String() = %q", got)
	}
	if got := Bps(128000).Kbps(); got != 128 {
		t.Errorf("Kbps() = %v", got)
	}
}

func TestContentValidation(t *testing.T) {
	_, err := NewContent(ContentSpec{
		Name:          "bad",
		Duration:      time.Second,
		ChunkDuration: 5 * time.Second,
		VideoTracks:   DramaVideoLadder(),
		AudioTracks:   DramaAudioLadder(),
	})
	if err == nil {
		t.Error("duration shorter than chunk should fail")
	}
	_, err = NewContent(ContentSpec{
		Name:          "bad2",
		Duration:      time.Minute,
		ChunkDuration: 0,
		VideoTracks:   DramaVideoLadder(),
		AudioTracks:   DramaAudioLadder(),
	})
	if err == nil {
		t.Error("zero chunk duration should fail")
	}
}

func TestTrackLookups(t *testing.T) {
	c := DramaShow()
	if c.TrackByID("V3") == nil || c.TrackByID("A2") == nil {
		t.Fatal("lookup failed")
	}
	if c.TrackByID("X9") != nil {
		t.Fatal("bogus ID found")
	}
	if got := c.VideoTracks.Index(c.TrackByID("V3")); got != 2 {
		t.Errorf("Index(V3) = %d, want 2", got)
	}
	if got := c.VideoTracks.Index(&Track{}); got != -1 {
		t.Errorf("Index(unknown) = %d, want -1", got)
	}
	ids := c.AudioTracks.IDs()
	if len(ids) != 3 || ids[0] != "A1" || ids[2] != "A3" {
		t.Errorf("IDs() = %v", ids)
	}
}

func TestComboStringNil(t *testing.T) {
	var c Combo
	if got := c.String(); got != "?+?" {
		t.Errorf("String() = %q", got)
	}
}

func TestContentPresetsValid(t *testing.T) {
	for _, c := range []*Content{MusicShow(), ActionMovie(), DramaShowLowAudio(), DramaShowHighAudio()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	ms := MusicShow()
	if len(ms.AudioTracks) != 4 || ms.AudioTracks[3].DeclaredBitrate != Kbps(768) {
		t.Errorf("music show audio ladder wrong: %v", ms.AudioTracks.IDs())
	}
	// The §1 point: top audio (768) exceeds the three lowest video rungs'
	// declared bitrates (111, 246, 473).
	if ms.AudioTracks[3].DeclaredBitrate <= ms.VideoTracks[2].DeclaredBitrate {
		t.Error("Atmos-class audio should exceed V3's declared bitrate")
	}
}

func TestActionMovieSpikier(t *testing.T) {
	drama, action := DramaShow(), ActionMovie()
	variance := func(c *Content, id string) float64 {
		tr := c.TrackByID(id)
		n := c.NumChunks()
		var mean float64
		for i := 0; i < n; i++ {
			mean += float64(c.ChunkSize(tr, i))
		}
		mean /= float64(n)
		var v float64
		for i := 0; i < n; i++ {
			d := float64(c.ChunkSize(tr, i)) - mean
			v += d * d / (mean * mean)
		}
		return v / float64(n)
	}
	if variance(action, "V4") <= variance(drama, "V4") {
		t.Errorf("action movie V4 chunk variance %.4f <= drama %.4f",
			variance(action, "V4"), variance(drama, "V4"))
	}
}
