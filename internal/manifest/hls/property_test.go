package hls

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// randomMaster synthesizes a structurally valid master playlist.
func randomMaster(rng *rand.Rand) *MasterPlaylist {
	m := &MasterPlaylist{Version: rng.Intn(7) + 1}
	nAudio := rng.Intn(4) + 1
	for i := 0; i < nAudio; i++ {
		m.Renditions = append(m.Renditions, Rendition{
			Type:    "AUDIO",
			GroupID: fmt.Sprintf("grp-%d", i),
			Name:    fmt.Sprintf("Aud %d", i),
			URI:     fmt.Sprintf("audio/a%d.m3u8", i),
			Default: i == 0 && rng.Intn(2) == 0,
		})
	}
	nVar := rng.Intn(8) + 1
	for i := 0; i < nVar; i++ {
		v := Variant{
			Bandwidth:  int64(rng.Intn(5_000_000) + 1),
			AudioGroup: fmt.Sprintf("grp-%d", rng.Intn(nAudio)),
			URI:        fmt.Sprintf("video/v%d.m3u8", i),
		}
		if rng.Intn(2) == 0 {
			v.AverageBandwidth = int64(rng.Intn(int(v.Bandwidth)) + 1)
		}
		if rng.Intn(2) == 0 {
			v.Resolution = fmt.Sprintf("%dx%d", rng.Intn(3840)+1, rng.Intn(2160)+1)
		}
		if rng.Intn(2) == 0 {
			v.Codecs = "avc1.4d401f,mp4a.40.2"
		}
		m.Variants = append(m.Variants, v)
	}
	return m
}

// Property: any generated master playlist survives encode/parse unchanged.
func TestMasterRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randomMaster(rng)
		var buf bytes.Buffer
		if err := orig.Encode(&buf); err != nil {
			return false
		}
		got, err := ParseMaster(&buf)
		if err != nil {
			return false
		}
		if got.Version != orig.Version || len(got.Renditions) != len(orig.Renditions) || len(got.Variants) != len(orig.Variants) {
			return false
		}
		for i := range orig.Renditions {
			if got.Renditions[i] != orig.Renditions[i] {
				return false
			}
		}
		for i := range orig.Variants {
			if got.Variants[i] != orig.Variants[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// randomMedia synthesizes a structurally valid media playlist.
func randomMedia(rng *rand.Rand) *MediaPlaylist {
	p := &MediaPlaylist{
		Version:        rng.Intn(7) + 1,
		TargetDuration: time.Duration(rng.Intn(10)+1) * time.Second,
		MediaSequence:  int64(rng.Intn(100)),
		EndList:        rng.Intn(2) == 0,
	}
	n := rng.Intn(20) + 1
	var offset int64
	for i := 0; i < n; i++ {
		seg := Segment{
			// EXTINF is encoded with millisecond precision.
			Duration: time.Duration(rng.Intn(10_000)+1) * time.Millisecond,
			URI:      fmt.Sprintf("seg-%d.m4s", i),
		}
		if rng.Intn(2) == 0 {
			seg.ByteRangeLength = int64(rng.Intn(1_000_000) + 1)
			seg.ByteRangeOffset = offset
			offset += seg.ByteRangeLength
		}
		if rng.Intn(2) == 0 {
			seg.Bitrate = int64(rng.Intn(5_000_000) + 1)
		}
		if rng.Intn(3) == 0 {
			// LL-HLS partial segments (encoded at millisecond precision).
			n := rng.Intn(3) + 1
			for k := 0; k < n; k++ {
				seg.Parts = append(seg.Parts, Part{
					Duration:    time.Duration(rng.Intn(2_000)+1) * time.Millisecond,
					URI:         fmt.Sprintf("seg-%d.part-%d.m4s", i, k),
					Independent: k == 0,
				})
			}
		}
		p.Segments = append(p.Segments, seg)
	}
	if rng.Intn(2) == 0 {
		p.PartTarget = time.Duration(rng.Intn(2_000)+1) * time.Millisecond
	}
	return p
}

// segmentsEqual compares two segments field-wise (Segment holds a Part
// slice, so == no longer applies).
func segmentsEqual(a, b Segment) bool {
	if a.Duration != b.Duration || a.URI != b.URI || a.Bitrate != b.Bitrate ||
		a.ByteRangeLength != b.ByteRangeLength || a.ByteRangeOffset != b.ByteRangeOffset ||
		len(a.Parts) != len(b.Parts) {
		return false
	}
	for i := range a.Parts {
		if a.Parts[i] != b.Parts[i] {
			return false
		}
	}
	return true
}

// Property: any generated media playlist survives encode/parse unchanged.
func TestMediaRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := randomMedia(rng)
		var buf bytes.Buffer
		if err := orig.Encode(&buf); err != nil {
			return false
		}
		got, err := ParseMedia(&buf)
		if err != nil {
			return false
		}
		if got.Version != orig.Version || got.MediaSequence != orig.MediaSequence ||
			got.EndList != orig.EndList || len(got.Segments) != len(orig.Segments) {
			return false
		}
		// TargetDuration is rounded up to whole seconds by the encoder.
		if got.TargetDuration < orig.TargetDuration {
			return false
		}
		if got.PartTarget != orig.PartTarget {
			return false
		}
		for i := range orig.Segments {
			if !segmentsEqual(got.Segments[i], orig.Segments[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Parser robustness: arbitrary junk must never panic; it either parses or
// returns an error.
func TestParsersNeverPanic(t *testing.T) {
	f := func(lines []string) bool {
		in := "#EXTM3U\n"
		for _, l := range lines {
			in += l + "\n"
		}
		_, _ = ParseMaster(bytes.NewBufferString(in))
		_, _ = ParseMedia(bytes.NewBufferString(in))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
