package hls

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"demuxabr/internal/media"
)

// liveTestContent is a small synthetic asset for window generation.
func liveTestContent(chunks int) *media.Content {
	return media.MustNewContent(media.ContentSpec{
		Name:          "live-prop",
		Duration:      time.Duration(chunks) * 2 * time.Second,
		ChunkDuration: 2 * time.Second,
		VideoTracks: media.Ladder{
			{ID: "V1", Type: media.Video, AvgBitrate: media.Kbps(300), PeakBitrate: media.Kbps(450), DeclaredBitrate: media.Kbps(450), Resolution: "360p"},
		},
		AudioTracks: media.Ladder{
			{ID: "A1", Type: media.Audio, AvgBitrate: media.Kbps(64), PeakBitrate: media.Kbps(72), DeclaredBitrate: media.Kbps(72), Channels: 2, SampleRateHz: 44100},
		},
		Model: media.ChunkModel{Seed: 11, Spread: 0.25, PeakEvery: 5},
	})
}

// TestLiveWindowProperties drives the sliding-window generator through 1000
// seeded refresh schedules and asserts the invariants every client and the
// lint rules rely on:
//
//   - EXT-X-MEDIA-SEQUENCE never regresses across refreshes;
//   - the window never exceeds WindowSize complete segments (plus at most
//     one in-flight part segment in LL mode);
//   - a URI that slid out of the window never reappears;
//   - every advertised part fits the declared PART-TARGET, parts cover the
//     in-flight segment exactly, and only the first part is independent;
//   - each refresh round-trips through the encoder and parser.
func TestLiveWindowProperties(t *testing.T) {
	for seed := int64(0); seed < 1000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		chunks := rng.Intn(30) + 5
		c := liveTestContent(chunks)
		track := c.VideoTracks[0]
		if rng.Intn(2) == 0 {
			track = c.AudioTracks[0]
		}
		lw := &LiveWindow{
			Content:         c,
			Track:           track,
			WindowSize:      rng.Intn(8) + 1,
			PartsPerSegment: rng.Intn(5), // 0 disables LL mode
			WithBitrateTag:  rng.Intn(2) == 0,
		}
		if rng.Intn(4) == 0 {
			lw.Pack = SingleFile
		}

		// A monotone refresh schedule with stutters (repeat refreshes) and
		// jumps (client missed refreshes), always reaching the end.
		complete := 1
		lastSeq := int64(-1)
		expired := map[string]bool{}
		prev := map[string]bool{}
		for complete <= chunks {
			p := lw.At(complete)

			if lastSeq >= 0 && p.MediaSequence < lastSeq {
				t.Fatalf("seed %d complete %d: media sequence regressed %d -> %d", seed, complete, lastSeq, p.MediaSequence)
			}
			lastSeq = p.MediaSequence

			full := 0
			for _, seg := range p.Segments {
				if len(seg.Parts) == 0 {
					full++
				}
			}
			if full > lw.WindowSize {
				t.Fatalf("seed %d complete %d: %d complete segments exceed window %d", seed, complete, full, lw.WindowSize)
			}
			if got, max := len(p.Segments), lw.WindowSize+1; got > max {
				t.Fatalf("seed %d complete %d: %d segments exceed window+inflight %d", seed, complete, got, max)
			}

			cur := map[string]bool{}
			for _, seg := range p.Segments {
				key := seg.URI
				if lw.Pack == SingleFile && len(seg.Parts) == 0 {
					// Byte-range packaging reuses one URI; key on the range.
					key = segKey(seg)
				}
				cur[key] = true
				if expired[key] {
					t.Fatalf("seed %d complete %d: expired segment %q resurrected", seed, complete, key)
				}
			}
			for uri := range prev {
				if !cur[uri] {
					expired[uri] = true
				}
			}
			prev = cur

			checkParts(t, seed, complete, lw, p)
			checkRoundTrip(t, seed, complete, p)

			if p.EndList {
				break
			}
			if rng.Intn(3) > 0 {
				complete += rng.Intn(3) + 1 // advance, sometimes skipping refreshes
			}
		}
		if !lw.At(chunks).EndList {
			t.Fatalf("seed %d: final refresh is not an ENDLIST playlist", seed)
		}
	}
}

// shapedLiveContent has a variable video timeline and a uniform-but-longer
// audio timeline (misaligned per-type shaping).
func shapedLiveContent() *media.Content {
	sec := func(n int) time.Duration { return time.Duration(n) * time.Second }
	return media.MustNewContent(media.ContentSpec{
		Name:          "live-shaped",
		Duration:      36 * time.Second,
		ChunkDuration: 4 * time.Second,
		VideoTracks: media.Ladder{
			{ID: "V1", Type: media.Video, AvgBitrate: media.Kbps(300), PeakBitrate: media.Kbps(450), DeclaredBitrate: media.Kbps(450), Resolution: "360p"},
		},
		AudioTracks: media.Ladder{
			{ID: "A1", Type: media.Audio, AvgBitrate: media.Kbps(64), PeakBitrate: media.Kbps(72), DeclaredBitrate: media.Kbps(72), Channels: 2, SampleRateHz: 44100},
		},
		Model:       media.ChunkModel{Seed: 11, Spread: 0.25},
		VideoChunks: []time.Duration{sec(4), sec(6), sec(3), sec(7), sec(4), sec(5), sec(7)},
		AudioChunks: []time.Duration{sec(6), sec(6), sec(6), sec(6), sec(6), sec(6)},
	})
}

// TestLiveWindowShapedTimeline is the variable-duration regression for the
// sliding window: EXTINF must carry each chunk's ACTUAL duration,
// TARGETDURATION must cover the longest one, and the in-flight LL parts
// must tile the actual (short or long) chunk — all of which the nominal
// ChunkDuration arithmetic got wrong.
func TestLiveWindowShapedTimeline(t *testing.T) {
	c := shapedLiveContent()
	for _, track := range []*media.Track{c.VideoTracks[0], c.AudioTracks[0]} {
		lw := &LiveWindow{Content: c, Track: track, WindowSize: 3, PartsPerSegment: 3}
		n := c.NumChunksOf(track.Type)
		for complete := 1; complete <= n; complete++ {
			p := lw.At(complete)
			if p.TargetDuration != c.MaxChunkDurationOf(track.Type) {
				t.Fatalf("%s complete %d: TARGETDURATION %v, want max actual %v",
					track.ID, complete, p.TargetDuration, c.MaxChunkDurationOf(track.Type))
			}
			idx := int(p.MediaSequence)
			for _, seg := range p.Segments {
				if want := c.ChunkDurationOf(track.Type, idx); seg.Duration != want {
					t.Fatalf("%s complete %d: segment %d EXTINF %v, want actual %v",
						track.ID, complete, idx, seg.Duration, want)
				}
				if seg.Duration > p.TargetDuration {
					t.Fatalf("%s complete %d: segment %d duration %v exceeds target %v",
						track.ID, complete, idx, seg.Duration, p.TargetDuration)
				}
				idx++
			}
			checkParts(t, -1, complete, lw, p)
			checkRoundTrip(t, -1, complete, p)
		}
		if !lw.At(n).EndList {
			t.Fatalf("%s: final refresh is not an ENDLIST playlist", track.ID)
		}
	}
}

func segKey(seg Segment) string {
	return seg.URI + "#" + strings.Join([]string{
		time.Duration(seg.ByteRangeOffset).String(), time.Duration(seg.ByteRangeLength).String()}, "-")
}

// checkParts validates the LL-HLS part structure of one refresh.
func checkParts(t *testing.T, seed int64, complete int, lw *LiveWindow, p *MediaPlaylist) {
	t.Helper()
	if lw.PartsPerSegment <= 0 {
		if p.PartTarget != 0 {
			t.Fatalf("seed %d complete %d: PART-INF advertised without parts", seed, complete)
		}
		return
	}
	if p.PartTarget != lw.PartTarget() {
		t.Fatalf("seed %d complete %d: PART-TARGET %v, want %v", seed, complete, p.PartTarget, lw.PartTarget())
	}
	for _, seg := range p.Segments {
		var sum time.Duration
		for k, part := range seg.Parts {
			if part.Duration > p.PartTarget {
				t.Fatalf("seed %d complete %d: part %q duration %v exceeds PART-TARGET %v",
					seed, complete, part.URI, part.Duration, p.PartTarget)
			}
			if part.Independent != (k == 0) {
				t.Fatalf("seed %d complete %d: part %d independence %v", seed, complete, k, part.Independent)
			}
			sum += part.Duration
		}
		if len(seg.Parts) > 0 && sum != seg.Duration {
			t.Fatalf("seed %d complete %d: parts sum %v != segment duration %v", seed, complete, sum, seg.Duration)
		}
	}
	if !p.EndList {
		last := p.Segments[len(p.Segments)-1]
		if len(last.Parts) == 0 {
			t.Fatalf("seed %d complete %d: LL refresh has no in-flight part segment", seed, complete)
		}
	}
}

// checkRoundTrip pins encode → parse fidelity for live playlists.
func checkRoundTrip(t *testing.T, seed int64, complete int, p *MediaPlaylist) {
	t.Helper()
	var buf strings.Builder
	if err := p.Encode(&buf); err != nil {
		t.Fatalf("seed %d complete %d: encode: %v", seed, complete, err)
	}
	back, err := ParseMedia(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("seed %d complete %d: reparse: %v\n%s", seed, complete, err, buf.String())
	}
	if back.MediaSequence != p.MediaSequence || back.PartTarget != p.PartTarget ||
		back.EndList != p.EndList || len(back.Segments) != len(p.Segments) {
		t.Fatalf("seed %d complete %d: round-trip drift", seed, complete)
	}
	for i := range p.Segments {
		if !segmentsEqual(back.Segments[i], p.Segments[i]) {
			t.Fatalf("seed %d complete %d: segment %d drifts through round-trip", seed, complete, i)
		}
	}
}
