package hls

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"demuxabr/internal/media"
)

func TestAttrListRoundTrip(t *testing.T) {
	in := `BANDWIDTH=2773000,AVERAGE-BANDWIDTH=1805000,RESOLUTION=1280x720,CODECS="avc1.4d401f,mp4a.40.2",AUDIO="audio-A3"`
	attrs, err := parseAttrList(in)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"BANDWIDTH":         "2773000",
		"AVERAGE-BANDWIDTH": "1805000",
		"RESOLUTION":        "1280x720",
		"CODECS":            "avc1.4d401f,mp4a.40.2", // comma inside quotes
		"AUDIO":             "audio-A3",
	}
	for _, k := range sortedKeys(want) {
		if attrs[k] != want[k] {
			t.Errorf("%s = %q, want %q", k, attrs[k], want[k])
		}
	}
	if len(attrs) != len(want) {
		t.Errorf("got %d attrs, want %d", len(attrs), len(want))
	}
}

func TestAttrListErrors(t *testing.T) {
	for _, in := range []string{"NOVALUE", `KEY="unterminated`, "=nokey"} {
		if _, err := parseAttrList(in); err == nil {
			t.Errorf("parseAttrList(%q) should fail", in)
		}
	}
}

func TestMasterRoundTripHSub(t *testing.T) {
	c := media.DramaShow()
	m := GenerateMaster(c, media.HSub(c), nil)
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMaster(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse failed: %v\n%s", err, buf.String())
	}
	if len(got.Variants) != 6 || len(got.Renditions) != 3 {
		t.Fatalf("got %d variants / %d renditions, want 6/3", len(got.Variants), len(got.Renditions))
	}
	// Table 3's first row: V1+A1 = 253 Kbps peak, 239 average.
	if got.Variants[0].Bandwidth != 253000 || got.Variants[0].AverageBandwidth != 239000 {
		t.Errorf("variant 0 = %d/%d, want 253000/239000",
			got.Variants[0].Bandwidth, got.Variants[0].AverageBandwidth)
	}
	combos, err := CombosFromMaster(got, c)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"V1+A1", "V2+A1", "V3+A2", "V4+A2", "V5+A3", "V6+A3"}
	for i, cb := range combos {
		if cb.String() != wantNames[i] {
			t.Errorf("combo %d = %s, want %s", i, cb, wantNames[i])
		}
	}
}

func TestMasterHAllBandwidths(t *testing.T) {
	// The full Table 2 must round-trip through the master playlist.
	c := media.DramaShow()
	m := GenerateMaster(c, media.HAll(c), nil)
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMaster(&buf)
	if err != nil {
		t.Fatal(err)
	}
	combos, err := CombosFromMaster(got, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) != 18 {
		t.Fatalf("got %d combos, want 18", len(combos))
	}
	for i, v := range got.Variants {
		if v.Bandwidth != int64(combos[i].PeakBitrate()) {
			t.Errorf("variant %d BANDWIDTH %d != combo peak %d", i, v.Bandwidth, combos[i].PeakBitrate())
		}
	}
}

func TestAudioOrderPreserved(t *testing.T) {
	c := media.DramaShow()
	order := []*media.Track{c.AudioTracks[2], c.AudioTracks[0], c.AudioTracks[1]}
	m := GenerateMaster(c, media.HSub(c), order)
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMaster(&buf)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := AudioOrderFromMaster(got, c)
	if err != nil {
		t.Fatal(err)
	}
	if parsed[0].ID != "A3" || parsed[1].ID != "A1" || parsed[2].ID != "A2" {
		t.Errorf("order = %v", parsed)
	}
	if !got.Renditions[0].Default {
		t.Error("first rendition should be DEFAULT=YES")
	}
}

func TestParseMasterErrors(t *testing.T) {
	cases := []string{
		"",                                       // empty
		"not a playlist",                         // missing header
		"#EXTM3U\n#EXT-X-VERSION:x",              // bad version
		"#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=1", // no URI line
		"#EXTM3U\n#EXT-X-STREAM-INF:RESOLUTION=1x1\nuri", // missing BANDWIDTH
		"#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=abc\nuri",  // bad bandwidth
	}
	for _, in := range cases {
		if _, err := ParseMaster(strings.NewReader(in)); err == nil {
			t.Errorf("ParseMaster(%q) should fail", in)
		}
	}
}

func TestMediaRoundTripSingleFile(t *testing.T) {
	c := media.DramaShow()
	tr := c.TrackByID("V3")
	p := GenerateMedia(c, tr, SingleFile, false)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMedia(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Segments) != c.NumChunks() {
		t.Fatalf("got %d segments, want %d", len(got.Segments), c.NumChunks())
	}
	if !got.EndList {
		t.Error("missing ENDLIST")
	}
	// Byte ranges must be contiguous and match the chunk sizes.
	var offset int64
	for i, s := range got.Segments {
		if s.ByteRangeOffset != offset {
			t.Fatalf("segment %d offset %d, want %d", i, s.ByteRangeOffset, offset)
		}
		if s.ByteRangeLength != c.ChunkSize(tr, i) {
			t.Fatalf("segment %d length %d, want %d", i, s.ByteRangeLength, c.ChunkSize(tr, i))
		}
		offset += s.ByteRangeLength
	}
}

func TestTrackBitrateFromByteRanges(t *testing.T) {
	// §4.1 case (i): byte ranges yield the per-track bitrate.
	c := media.DramaShow()
	for _, id := range []string{"V1", "V3", "V6", "A1", "A3"} {
		tr := c.TrackByID(id)
		p := GenerateMedia(c, tr, SingleFile, false)
		peak, avg, err := TrackBitrate(p)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if rel := math.Abs(float64(avg-tr.AvgBitrate)) / float64(tr.AvgBitrate); rel > 0.05 {
			t.Errorf("%s: derived avg %v vs track avg %v", id, avg, tr.AvgBitrate)
		}
		if peak > tr.PeakBitrate+media.Kbps(1) {
			t.Errorf("%s: derived peak %v exceeds track peak %v", id, peak, tr.PeakBitrate)
		}
	}
}

func TestTrackBitrateFromBitrateTags(t *testing.T) {
	// §4.1 case (ii): segment files with EXT-X-BITRATE tags.
	c := media.DramaShow()
	tr := c.TrackByID("V4")
	p := GenerateMedia(c, tr, SegmentFiles, true)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMedia(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_, avg, err := TrackBitrate(got)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(float64(avg-tr.AvgBitrate)) / float64(tr.AvgBitrate); rel > 0.05 {
		t.Errorf("derived avg %v vs track avg %v", avg, tr.AvgBitrate)
	}
}

func TestTrackBitrateUnavailable(t *testing.T) {
	// Segment files without EXT-X-BITRATE: the top-level-only trap.
	c := media.DramaShow()
	p := GenerateMedia(c, c.TrackByID("V2"), SegmentFiles, false)
	if _, _, err := TrackBitrate(p); err == nil {
		t.Error("expected an error without byte ranges or bitrate tags")
	}
}

func TestParseMediaErrors(t *testing.T) {
	cases := []string{
		"",
		"garbage",
		"#EXTM3U\nseg.m4s",                 // URI without EXTINF
		"#EXTM3U\n#EXTINF:abc,\nseg.m4s",   // bad duration
		"#EXTM3U\n#EXTINF:5.0,",            // dangling EXTINF
		"#EXTM3U\n#EXT-X-BYTERANGE:x@0\nu", // bad byterange
		"#EXTM3U\n#EXT-X-TARGETDURATION:x", // bad target duration
	}
	for _, in := range cases {
		if _, err := ParseMedia(strings.NewReader(in)); err == nil {
			t.Errorf("ParseMedia(%q) should fail", in)
		}
	}
}

func TestMediaPlaylistFields(t *testing.T) {
	in := "#EXTM3U\n#EXT-X-VERSION:4\n#EXT-X-TARGETDURATION:5\n#EXT-X-MEDIA-SEQUENCE:3\n" +
		"#EXT-X-BITRATE:473000\n#EXTINF:5.000,\nseg-3.m4s\n#EXT-X-ENDLIST\n"
	p, err := ParseMedia(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.MediaSequence != 3 || p.TargetDuration != 5*time.Second || p.Version != 4 {
		t.Errorf("parsed header wrong: %+v", p)
	}
	if len(p.Segments) != 1 || p.Segments[0].Bitrate != 473000 || p.Segments[0].URI != "seg-3.m4s" {
		t.Errorf("parsed segment wrong: %+v", p.Segments)
	}
}

func TestParseMasterToleratesCRLF(t *testing.T) {
	// Real servers emit CRLF line endings; the parser must not choke.
	c := media.DramaShow()
	var buf bytes.Buffer
	if err := GenerateMaster(c, media.HSub(c), nil).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	crlf := strings.ReplaceAll(buf.String(), "\n", "\r\n")
	m, err := ParseMaster(strings.NewReader(crlf))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Variants) != 6 || len(m.Renditions) != 3 {
		t.Errorf("CRLF parse: %d variants / %d renditions", len(m.Variants), len(m.Renditions))
	}
	if strings.ContainsAny(m.Variants[0].URI, "\r") {
		t.Error("URI retained a carriage return")
	}
}

func TestParseMediaToleratesCRLF(t *testing.T) {
	c := media.DramaShow()
	var buf bytes.Buffer
	if err := GenerateMedia(c, c.TrackByID("A2"), SingleFile, true).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	crlf := strings.ReplaceAll(buf.String(), "\n", "\r\n")
	p, err := ParseMedia(strings.NewReader(crlf))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments) != c.NumChunks() || !p.EndList {
		t.Errorf("CRLF parse: %d segments, endlist=%v", len(p.Segments), p.EndList)
	}
}
