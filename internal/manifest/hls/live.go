package hls

import (
	"fmt"
	"time"

	"demuxabr/internal/media"
)

// Live playlist generation: the sliding-window view a live origin serves.
// Each refresh exposes the newest WindowSize complete segments, advancing
// EXT-X-MEDIA-SEQUENCE as segments leave the head of the window, and — in
// low-latency mode — advertises the in-progress segment's CMAF parts via
// EXT-X-PART/EXT-X-PART-INF so clients can fetch at part granularity.
//
// The generator's contract (checked by the property test and relied on by
// lint's hls-media-sequence-regression rule): across any monotone refresh
// schedule, the media sequence never regresses, the window never exceeds
// its configured size, and a segment that slid out of the window never
// reappears in a later refresh.

// LiveWindow derives successive refreshes of one track's live media
// playlist from content chunk tables. The zero value is not usable; fill
// Content, Track, and WindowSize.
type LiveWindow struct {
	Content *media.Content
	Track   *media.Track
	// WindowSize is the number of complete segments each refresh retains
	// (RFC 8216 requires a server to keep at least three target durations).
	WindowSize int
	// PartsPerSegment > 0 enables LL-HLS: the segment currently being
	// encoded is advertised as that many equal-duration partial segments,
	// and every playlist carries EXT-X-PART-INF with the part target.
	PartsPerSegment int
	// Pack selects byte-range vs segment-file packaging for full segments.
	Pack Packaging
	// WithBitrateTag writes EXT-X-BITRATE on full segments.
	WithBitrateTag bool
}

// PartTarget is the advertised EXT-X-PART-INF PART-TARGET: the nominal
// chunk duration split into PartsPerSegment parts, rounded to the
// millisecond (0 when parts are disabled). Playlist durations encode at
// millisecond precision, so a sub-millisecond target could never
// round-trip — encoders publish ms-aligned part targets for the same
// reason.
func (lw *LiveWindow) PartTarget() time.Duration {
	if lw.PartsPerSegment <= 0 {
		return 0
	}
	t := (lw.Content.ChunkDuration / time.Duration(lw.PartsPerSegment)).Round(time.Millisecond)
	if t < time.Millisecond {
		t = time.Millisecond
	}
	return t
}

// At returns the playlist visible after `complete` segments have finished
// encoding (complete >= 1). The window covers the newest min(complete,
// WindowSize) complete segments; once complete reaches the content's chunk
// count the stream has ended and EXT-X-ENDLIST is written. In LL mode the
// next segment's parts are advertised after the last complete segment,
// except on the final refresh (nothing is in flight once the encoder
// stops).
func (lw *LiveWindow) At(complete int) *MediaPlaylist {
	n := lw.Content.NumChunksOf(lw.Track.Type)
	if complete < 1 {
		complete = 1
	}
	if complete > n {
		complete = n
	}
	first := complete - lw.WindowSize
	if first < 0 {
		first = 0
	}
	p := &MediaPlaylist{
		Version: 6,
		// The target must cover the longest actual segment of this track's
		// timeline (RFC 8216), which on shaped content can exceed the
		// nominal chunk duration.
		TargetDuration: lw.Content.MaxChunkDurationOf(lw.Track.Type),
		MediaSequence:  int64(first),
		PartTarget:     lw.PartTarget(),
		EndList:        complete >= n,
	}
	var offset int64
	for i := 0; i < first; i++ {
		offset += lw.Content.ChunkSize(lw.Track, i)
	}
	for i := first; i < complete; i++ {
		dur := lw.Content.ChunkDurationOf(lw.Track.Type, i)
		size := lw.Content.ChunkSize(lw.Track, i)
		seg := Segment{Duration: dur}
		switch lw.Pack {
		case SingleFile:
			seg.URI = fmt.Sprintf("%s/%s.mp4", lw.Track.Type, lw.Track.ID)
			seg.ByteRangeLength = size
			seg.ByteRangeOffset = offset
		default:
			seg.URI = fmt.Sprintf("%s/%s/seg-%d.m4s", lw.Track.Type, lw.Track.ID, i)
		}
		offset += size
		if lw.WithBitrateTag {
			seg.Bitrate = int64(float64(size*8) / dur.Seconds())
		}
		p.Segments = append(p.Segments, seg)
	}
	if lw.PartsPerSegment > 0 && !p.EndList {
		p.Segments = append(p.Segments, lw.inflightSegment(complete))
	}
	return p
}

// inflightSegment advertises segment idx (still being encoded) as its
// CMAF parts. Every part is written as already published: the simulator
// models part availability in time, not per-refresh part counting, and a
// fully advertised in-flight segment keeps refreshes a pure function of
// the complete-segment count.
func (lw *LiveWindow) inflightSegment(idx int) Segment {
	dur := lw.Content.ChunkDurationOf(lw.Track.Type, idx)
	target := lw.PartTarget()
	seg := Segment{Duration: dur}
	// k-1 full-target parts plus a final part carrying the remainder: every
	// part is at most PART-TARGET and the parts tile the segment exactly,
	// with no degenerate sliver when the target does not divide the
	// duration.
	k := int((dur + target - 1) / target)
	if k < 1 {
		k = 1
	}
	for i := 0; i < k; i++ {
		pd := target
		if i == k-1 {
			pd = dur - time.Duration(k-1)*target
		}
		seg.Parts = append(seg.Parts, Part{
			Duration:    pd,
			URI:         fmt.Sprintf("%s/%s/seg-%d.part-%d.m4s", lw.Track.Type, lw.Track.ID, idx, i),
			Independent: i == 0,
		})
	}
	// The parent segment URI is the full segment a late joiner would fetch.
	seg.URI = fmt.Sprintf("%s/%s/seg-%d.m4s", lw.Track.Type, lw.Track.ID, idx)
	return seg
}
