package hls

import (
	"fmt"
	"sort"
	"strings"
)

// attrList parses and renders the attribute lists of HLS tags
// (EXT-X-STREAM-INF, EXT-X-MEDIA): comma-separated KEY=VALUE pairs where
// values may be quoted strings containing commas.

// parseAttrList splits `KEY=VAL,KEY="quoted,val"` into a map.
func parseAttrList(s string) (map[string]string, error) {
	attrs := make(map[string]string)
	for i := 0; i < len(s); {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("hls: attribute without '=' in %q", s[i:])
		}
		key := strings.TrimSpace(s[i : i+eq])
		if key == "" {
			return nil, fmt.Errorf("hls: empty attribute name in %q", s)
		}
		i += eq + 1
		var val string
		if i < len(s) && s[i] == '"' {
			end := strings.IndexByte(s[i+1:], '"')
			if end < 0 {
				return nil, fmt.Errorf("hls: unterminated quoted value for %s", key)
			}
			val = s[i+1 : i+1+end]
			i += end + 2
			if i < len(s) && s[i] == ',' {
				i++
			}
		} else {
			end := strings.IndexByte(s[i:], ',')
			if end < 0 {
				val = s[i:]
				i = len(s)
			} else {
				val = s[i : i+end]
				i += end + 1
			}
		}
		attrs[key] = val
	}
	return attrs, nil
}

// attrWriter renders attributes in a stable order.
type attrWriter struct {
	parts []string
}

func (w *attrWriter) add(key, val string)       { w.parts = append(w.parts, key+"="+val) }
func (w *attrWriter) addQuoted(key, val string) { w.add(key, `"`+val+`"`) }
func (w *attrWriter) addInt(key string, v int64) {
	w.add(key, fmt.Sprintf("%d", v))
}

func (w *attrWriter) String() string { return strings.Join(w.parts, ",") }

// sortedKeys helps tests compare attribute maps deterministically.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
