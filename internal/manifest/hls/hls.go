// Package hls writes and parses the subset of HTTP Live Streaming playlists
// (RFC 8216) the paper's experiments exercise: master playlists whose
// EXT-X-STREAM-INF variants pair a video stream with an audio rendition
// group (the H_all and H_sub manifests), and media playlists with EXTINF
// segments, optional EXT-X-BYTERANGE single-file packaging, and the
// optional EXT-X-BITRATE per-segment tag whose mandatory use §4.1
// recommends.
//
// The HLS-specific property at the heart of §2.3: the top-level master
// playlist only declares the aggregate BANDWIDTH of each variant
// (video+audio combination); per-track bitrates live in the second-level
// media playlists and can be recovered from byte ranges or EXT-X-BITRATE —
// see TrackBitrate.
package hls

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Rendition is an EXT-X-MEDIA entry (we model audio renditions only).
type Rendition struct {
	// Type is the EXT-X-MEDIA TYPE (always "AUDIO" here).
	Type string
	// GroupID ties the rendition to variants' AUDIO attribute.
	GroupID string
	// Name is the human-readable NAME (the track ID, e.g. "A2").
	Name string
	// Language is the LANGUAGE attribute ("" = absent).
	Language string
	// URI locates the rendition's media playlist.
	URI string
	// Default marks DEFAULT=YES.
	Default bool
}

// Variant is an EXT-X-STREAM-INF entry: one video/audio combination.
type Variant struct {
	// Bandwidth is the mandatory peak BANDWIDTH of the combination in bps.
	Bandwidth int64
	// AverageBandwidth is the optional AVERAGE-BANDWIDTH in bps (0 = absent).
	AverageBandwidth int64
	// Resolution is "WxH" ("" = absent).
	Resolution string
	// Codecs is the CODECS attribute ("" = absent).
	Codecs string
	// AudioGroup references a rendition GroupID ("" = muxed).
	AudioGroup string
	// URI locates the video media playlist (the line after the tag).
	URI string
}

// MasterPlaylist is a top-level HLS playlist.
type MasterPlaylist struct {
	Version    int
	Renditions []Rendition
	Variants   []Variant
}

// Encode writes the playlist in M3U8 form.
func (m *MasterPlaylist) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "#EXTM3U")
	version := m.Version
	if version == 0 {
		version = 4
	}
	fmt.Fprintf(bw, "#EXT-X-VERSION:%d\n", version)
	for _, r := range m.Renditions {
		var a attrWriter
		a.add("TYPE", r.Type)
		a.addQuoted("GROUP-ID", r.GroupID)
		a.addQuoted("NAME", r.Name)
		if r.Language != "" {
			a.addQuoted("LANGUAGE", r.Language)
		}
		if r.Default {
			a.add("DEFAULT", "YES")
		}
		a.addQuoted("URI", r.URI)
		fmt.Fprintf(bw, "#EXT-X-MEDIA:%s\n", a.String())
	}
	for _, v := range m.Variants {
		var a attrWriter
		a.addInt("BANDWIDTH", v.Bandwidth)
		if v.AverageBandwidth > 0 {
			a.addInt("AVERAGE-BANDWIDTH", v.AverageBandwidth)
		}
		if v.Resolution != "" {
			a.add("RESOLUTION", v.Resolution)
		}
		if v.Codecs != "" {
			a.addQuoted("CODECS", v.Codecs)
		}
		if v.AudioGroup != "" {
			a.addQuoted("AUDIO", v.AudioGroup)
		}
		fmt.Fprintf(bw, "#EXT-X-STREAM-INF:%s\n%s\n", a.String(), v.URI)
	}
	return bw.Flush()
}

// ParseMaster reads a master playlist.
func ParseMaster(r io.Reader) (*MasterPlaylist, error) {
	sc := bufio.NewScanner(r)
	m := &MasterPlaylist{}
	var pendingVariant *Variant
	first := true
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if first {
			if text != "#EXTM3U" {
				return nil, fmt.Errorf("hls: line %d: missing #EXTM3U header", line)
			}
			first = false
			continue
		}
		switch {
		case pendingVariant != nil && !strings.HasPrefix(text, "#"):
			pendingVariant.URI = text
			m.Variants = append(m.Variants, *pendingVariant)
			pendingVariant = nil
		case strings.HasPrefix(text, "#EXT-X-VERSION:"):
			v, err := strconv.Atoi(strings.TrimPrefix(text, "#EXT-X-VERSION:"))
			if err != nil {
				return nil, fmt.Errorf("hls: line %d: bad version: %w", line, err)
			}
			m.Version = v
		case strings.HasPrefix(text, "#EXT-X-MEDIA:"):
			attrs, err := parseAttrList(strings.TrimPrefix(text, "#EXT-X-MEDIA:"))
			if err != nil {
				return nil, fmt.Errorf("hls: line %d: %w", line, err)
			}
			m.Renditions = append(m.Renditions, Rendition{
				Type:     attrs["TYPE"],
				GroupID:  attrs["GROUP-ID"],
				Name:     attrs["NAME"],
				Language: attrs["LANGUAGE"],
				URI:      attrs["URI"],
				Default:  attrs["DEFAULT"] == "YES",
			})
		case strings.HasPrefix(text, "#EXT-X-STREAM-INF:"):
			attrs, err := parseAttrList(strings.TrimPrefix(text, "#EXT-X-STREAM-INF:"))
			if err != nil {
				return nil, fmt.Errorf("hls: line %d: %w", line, err)
			}
			v := &Variant{
				Resolution: attrs["RESOLUTION"],
				Codecs:     attrs["CODECS"],
				AudioGroup: attrs["AUDIO"],
			}
			if bw, ok := attrs["BANDWIDTH"]; ok {
				n, err := strconv.ParseInt(bw, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("hls: line %d: bad BANDWIDTH: %w", line, err)
				}
				v.Bandwidth = n
			} else {
				return nil, fmt.Errorf("hls: line %d: EXT-X-STREAM-INF missing BANDWIDTH", line)
			}
			if abw, ok := attrs["AVERAGE-BANDWIDTH"]; ok {
				n, err := strconv.ParseInt(abw, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("hls: line %d: bad AVERAGE-BANDWIDTH: %w", line, err)
				}
				v.AverageBandwidth = n
			}
			pendingVariant = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if pendingVariant != nil {
		return nil, fmt.Errorf("hls: EXT-X-STREAM-INF without a URI line")
	}
	if first {
		return nil, fmt.Errorf("hls: empty playlist")
	}
	return m, nil
}

// Part is one LL-HLS EXT-X-PART entry: a CMAF partial segment published
// before its parent segment completes, so low-latency clients can fetch
// media at part granularity instead of waiting a full segment duration.
type Part struct {
	// Duration is the PART DURATION.
	Duration time.Duration
	// URI locates the partial segment.
	URI string
	// Independent marks INDEPENDENT=YES (the part starts with a keyframe).
	Independent bool
}

// Segment is one media-playlist entry.
type Segment struct {
	// Duration is the EXTINF duration.
	Duration time.Duration
	// URI is the segment address (the single file's URI in byte-range mode).
	URI string
	// ByteRange is the EXT-X-BYTERANGE length/offset; Length 0 = absent.
	ByteRangeLength int64
	ByteRangeOffset int64
	// Bitrate is the EXT-X-BITRATE value in bits/s (0 = absent).
	Bitrate int64
	// Parts are the LL-HLS partial segments of this segment (nil for VOD
	// and for full segments that have left the low-latency window).
	Parts []Part
}

// MediaPlaylist is a second-level playlist of one track.
type MediaPlaylist struct {
	Version        int
	TargetDuration time.Duration
	MediaSequence  int64
	// PartTarget is the EXT-X-PART-INF PART-TARGET (0 = no LL-HLS parts).
	PartTarget time.Duration
	Segments   []Segment
	EndList    bool
}

// Encode writes the media playlist.
func (p *MediaPlaylist) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "#EXTM3U")
	version := p.Version
	if version == 0 {
		version = 4
	}
	fmt.Fprintf(bw, "#EXT-X-VERSION:%d\n", version)
	fmt.Fprintf(bw, "#EXT-X-TARGETDURATION:%d\n", int(p.TargetDuration.Seconds()+0.999))
	fmt.Fprintf(bw, "#EXT-X-MEDIA-SEQUENCE:%d\n", p.MediaSequence)
	if p.PartTarget > 0 {
		fmt.Fprintf(bw, "#EXT-X-PART-INF:PART-TARGET=%.3f\n", p.PartTarget.Seconds())
	}
	for _, s := range p.Segments {
		for _, part := range s.Parts {
			var a attrWriter
			a.add("DURATION", fmt.Sprintf("%.3f", part.Duration.Seconds()))
			a.addQuoted("URI", part.URI)
			if part.Independent {
				a.add("INDEPENDENT", "YES")
			}
			fmt.Fprintf(bw, "#EXT-X-PART:%s\n", a.String())
		}
		if s.Bitrate > 0 {
			fmt.Fprintf(bw, "#EXT-X-BITRATE:%d\n", s.Bitrate)
		}
		fmt.Fprintf(bw, "#EXTINF:%.3f,\n", s.Duration.Seconds())
		if s.ByteRangeLength > 0 {
			fmt.Fprintf(bw, "#EXT-X-BYTERANGE:%d@%d\n", s.ByteRangeLength, s.ByteRangeOffset)
		}
		fmt.Fprintln(bw, s.URI)
	}
	if p.EndList {
		fmt.Fprintln(bw, "#EXT-X-ENDLIST")
	}
	return bw.Flush()
}

// ParseMedia reads a media playlist.
func ParseMedia(r io.Reader) (*MediaPlaylist, error) {
	sc := bufio.NewScanner(r)
	p := &MediaPlaylist{}
	var cur *Segment
	first := true
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if first {
			if text != "#EXTM3U" {
				return nil, fmt.Errorf("hls: line %d: missing #EXTM3U header", line)
			}
			first = false
			continue
		}
		switch {
		case strings.HasPrefix(text, "#EXT-X-VERSION:"):
			v, err := strconv.Atoi(strings.TrimPrefix(text, "#EXT-X-VERSION:"))
			if err != nil {
				return nil, fmt.Errorf("hls: line %d: bad version: %w", line, err)
			}
			p.Version = v
		case strings.HasPrefix(text, "#EXT-X-TARGETDURATION:"):
			v, err := strconv.Atoi(strings.TrimPrefix(text, "#EXT-X-TARGETDURATION:"))
			if err != nil {
				return nil, fmt.Errorf("hls: line %d: bad target duration: %w", line, err)
			}
			p.TargetDuration = time.Duration(v) * time.Second
		case strings.HasPrefix(text, "#EXT-X-MEDIA-SEQUENCE:"):
			v, err := strconv.ParseInt(strings.TrimPrefix(text, "#EXT-X-MEDIA-SEQUENCE:"), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("hls: line %d: bad media sequence: %w", line, err)
			}
			p.MediaSequence = v
		case strings.HasPrefix(text, "#EXT-X-PART-INF:"):
			attrs, err := parseAttrList(strings.TrimPrefix(text, "#EXT-X-PART-INF:"))
			if err != nil {
				return nil, fmt.Errorf("hls: line %d: %w", line, err)
			}
			secs, err := strconv.ParseFloat(attrs["PART-TARGET"], 64)
			if err != nil {
				return nil, fmt.Errorf("hls: line %d: bad PART-TARGET: %w", line, err)
			}
			p.PartTarget = time.Duration(secs*1000+0.5) * time.Millisecond
		case strings.HasPrefix(text, "#EXT-X-PART:"):
			attrs, err := parseAttrList(strings.TrimPrefix(text, "#EXT-X-PART:"))
			if err != nil {
				return nil, fmt.Errorf("hls: line %d: %w", line, err)
			}
			secs, err := strconv.ParseFloat(attrs["DURATION"], 64)
			if err != nil {
				return nil, fmt.Errorf("hls: line %d: bad EXT-X-PART DURATION: %w", line, err)
			}
			if cur == nil {
				cur = &Segment{}
			}
			cur.Parts = append(cur.Parts, Part{
				Duration:    time.Duration(secs*1000+0.5) * time.Millisecond,
				URI:         attrs["URI"],
				Independent: attrs["INDEPENDENT"] == "YES",
			})
		case strings.HasPrefix(text, "#EXT-X-BITRATE:"):
			v, err := strconv.ParseInt(strings.TrimPrefix(text, "#EXT-X-BITRATE:"), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("hls: line %d: bad bitrate: %w", line, err)
			}
			if cur == nil {
				cur = &Segment{}
			}
			cur.Bitrate = v
		case strings.HasPrefix(text, "#EXTINF:"):
			val := strings.TrimSuffix(strings.TrimPrefix(text, "#EXTINF:"), ",")
			if i := strings.IndexByte(val, ','); i >= 0 {
				val = val[:i]
			}
			secs, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("hls: line %d: bad EXTINF: %w", line, err)
			}
			if cur == nil {
				cur = &Segment{}
			}
			// Millisecond precision, computed exactly (the encoder emits
			// three decimals).
			cur.Duration = time.Duration(secs*1000+0.5) * time.Millisecond
		case strings.HasPrefix(text, "#EXT-X-BYTERANGE:"):
			val := strings.TrimPrefix(text, "#EXT-X-BYTERANGE:")
			lenStr, offStr, hasOff := strings.Cut(val, "@")
			n, err := strconv.ParseInt(lenStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("hls: line %d: bad byterange: %w", line, err)
			}
			if cur == nil {
				cur = &Segment{}
			}
			cur.ByteRangeLength = n
			if hasOff {
				off, err := strconv.ParseInt(offStr, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("hls: line %d: bad byterange offset: %w", line, err)
				}
				cur.ByteRangeOffset = off
			}
		case text == "#EXT-X-ENDLIST":
			p.EndList = true
		case !strings.HasPrefix(text, "#"):
			if cur == nil {
				return nil, fmt.Errorf("hls: line %d: segment URI without EXTINF", line)
			}
			cur.URI = text
			p.Segments = append(p.Segments, *cur)
			cur = nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if first {
		return nil, fmt.Errorf("hls: empty playlist")
	}
	if cur != nil {
		return nil, fmt.Errorf("hls: dangling EXTINF without a URI")
	}
	return p, nil
}
