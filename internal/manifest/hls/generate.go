package hls

import (
	"fmt"

	"demuxabr/internal/media"
)

// Packaging selects how media playlists address chunk data.
type Packaging int

const (
	// SegmentFiles packages each chunk as an individual file: no byte-range
	// information, so per-track bitrates are only recoverable if the
	// optional EXT-X-BITRATE tag is written (§4.1 case ii).
	SegmentFiles Packaging = iota
	// SingleFile packages all chunks of a track into one file addressed by
	// EXT-X-BYTERANGE, from which per-track bitrates can always be derived
	// (§4.1 case i).
	SingleFile
)

// resolutionWxH maps the content's resolution labels to RESOLUTION values.
var resolutionWxH = map[string]string{
	"144p":  "256x144",
	"240p":  "426x240",
	"360p":  "640x360",
	"480p":  "854x480",
	"720p":  "1280x720",
	"1080p": "1920x1080",
}

// AudioGroupID returns the rendition group ID used for an audio track.
func AudioGroupID(a *media.Track) string { return "audio-" + a.ID }

// VideoURI and AudioURI are the media playlist addresses the generator uses.
func VideoURI(v *media.Track) string { return "video/" + v.ID + ".m3u8" }

// AudioURI returns the audio rendition playlist address.
func AudioURI(a *media.Track) string { return "audio/" + a.ID + ".m3u8" }

// GenerateMaster builds the master playlist listing exactly the given
// combinations (H_all, H_sub, or any curated list), with audio renditions
// declared in audioOrder (nil = ladder order). Each combination becomes one
// EXT-X-STREAM-INF whose BANDWIDTH is the pair's aggregate peak bitrate and
// AVERAGE-BANDWIDTH the aggregate average — the only bitrate information HLS
// exposes at the top level (§2.3).
func GenerateMaster(c *media.Content, combos []media.Combo, audioOrder []*media.Track) *MasterPlaylist {
	if audioOrder == nil {
		audioOrder = c.AudioTracks
	}
	m := &MasterPlaylist{Version: 4}
	for i, a := range audioOrder {
		m.Renditions = append(m.Renditions, Rendition{
			Type:     "AUDIO",
			GroupID:  AudioGroupID(a),
			Name:     a.ID,
			Language: a.Language,
			URI:      AudioURI(a),
			Default:  i == 0,
		})
	}
	for _, cb := range combos {
		m.Variants = append(m.Variants, Variant{
			Bandwidth:        int64(cb.PeakBitrate()),
			AverageBandwidth: int64(cb.AvgBitrate()),
			Resolution:       resolutionWxH[cb.Video.Resolution],
			Codecs:           "avc1.4d401f,mp4a.40.2",
			AudioGroup:       AudioGroupID(cb.Audio),
			URI:              VideoURI(cb.Video),
		})
	}
	return m
}

// GenerateMedia builds the media playlist of one track with the content's
// real chunk sizes, walking the track type's own timeline (shaped content
// gives audio and video different segmentations). withBitrateTag writes the
// optional EXT-X-BITRATE tag.
//
// EXT-X-TARGETDURATION covers the longest actual segment (RFC 8216 §4.3.3.1
// requires every EXTINF to round to at most the target), not the nominal
// chunk duration — on shaped timelines a long DP-chosen chunk would
// otherwise make the playlist spec-invalid.
func GenerateMedia(c *media.Content, tr *media.Track, pack Packaging, withBitrateTag bool) *MediaPlaylist {
	p := &MediaPlaylist{
		Version:        4,
		TargetDuration: c.MaxChunkDurationOf(tr.Type),
		EndList:        true,
	}
	var offset int64
	for i := 0; i < c.NumChunksOf(tr.Type); i++ {
		dur := c.ChunkDurationOf(tr.Type, i)
		size := c.ChunkSize(tr, i)
		seg := Segment{Duration: dur}
		switch pack {
		case SingleFile:
			seg.URI = fmt.Sprintf("%s/%s.mp4", tr.Type, tr.ID)
			seg.ByteRangeLength = size
			seg.ByteRangeOffset = offset
			offset += size
		default:
			seg.URI = fmt.Sprintf("%s/%s/seg-%d.m4s", tr.Type, tr.ID, i)
		}
		if withBitrateTag {
			seg.Bitrate = int64(float64(size*8) / dur.Seconds())
		}
		p.Segments = append(p.Segments, seg)
	}
	return p
}

// TrackBitrate recovers a track's bitrate from its media playlist — the
// §4.1 client-side procedure: peak per-segment bitrate from EXT-X-BYTERANGE
// sizes when present, else from EXT-X-BITRATE tags. It returns an error if
// the playlist carries neither (the "lazy fetching" dead end the paper
// warns about).
func TrackBitrate(p *MediaPlaylist) (peak, avg media.Bps, err error) {
	var totalBits, totalSecs, peakBps float64
	for i, s := range p.Segments {
		secs := s.Duration.Seconds()
		if secs <= 0 {
			return 0, 0, fmt.Errorf("hls: segment %d has no duration", i)
		}
		var bps float64
		switch {
		case s.ByteRangeLength > 0:
			bps = float64(s.ByteRangeLength*8) / secs
		case s.Bitrate > 0:
			bps = float64(s.Bitrate)
		default:
			return 0, 0, fmt.Errorf("hls: segment %d carries neither EXT-X-BYTERANGE nor EXT-X-BITRATE", i)
		}
		totalBits += bps * secs
		totalSecs += secs
		if bps > peakBps {
			peakBps = bps
		}
	}
	if totalSecs <= 0 {
		return 0, 0, fmt.Errorf("hls: empty playlist")
	}
	return media.Bps(peakBps), media.Bps(totalBits / totalSecs), nil
}

// CombosFromMaster resolves a master playlist's variants back to track
// combinations against known content (matching video by URI and audio by
// rendition group).
func CombosFromMaster(m *MasterPlaylist, c *media.Content) ([]media.Combo, error) {
	audioByGroup := make(map[string]*media.Track)
	for _, r := range m.Renditions {
		if r.Type != "AUDIO" {
			continue
		}
		tr := c.TrackByID(r.Name)
		if tr == nil {
			return nil, fmt.Errorf("hls: rendition %q has no matching track", r.Name)
		}
		audioByGroup[r.GroupID] = tr
	}
	videoByURI := make(map[string]*media.Track)
	for _, v := range c.VideoTracks {
		videoByURI[VideoURI(v)] = v
	}
	var combos []media.Combo
	for i, v := range m.Variants {
		video := videoByURI[v.URI]
		if video == nil {
			return nil, fmt.Errorf("hls: variant %d URI %q has no matching video track", i, v.URI)
		}
		audio := audioByGroup[v.AudioGroup]
		if audio == nil {
			return nil, fmt.Errorf("hls: variant %d references unknown audio group %q", i, v.AudioGroup)
		}
		combos = append(combos, media.Combo{Video: video, Audio: audio})
	}
	return combos, nil
}

// AudioOrderFromMaster returns the audio tracks in rendition-list order —
// the order that determines which track ExoPlayer pins (§3.2).
func AudioOrderFromMaster(m *MasterPlaylist, c *media.Content) ([]*media.Track, error) {
	var order []*media.Track
	for _, r := range m.Renditions {
		if r.Type != "AUDIO" {
			continue
		}
		tr := c.TrackByID(r.Name)
		if tr == nil {
			return nil, fmt.Errorf("hls: rendition %q has no matching track", r.Name)
		}
		order = append(order, tr)
	}
	return order, nil
}
