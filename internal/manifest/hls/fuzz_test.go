package hls

import (
	"bytes"
	"strings"
	"testing"

	"demuxabr/internal/media"
)

// Native fuzz targets: the parsers must never panic and, when they accept
// input, re-encoding must be parseable again (weak idempotence).

func FuzzParseMaster(f *testing.F) {
	c := media.DramaShow()
	var seed bytes.Buffer
	_ = GenerateMaster(c, media.HSub(c), nil).Encode(&seed)
	f.Add(seed.String())
	f.Add("#EXTM3U\n#EXT-X-STREAM-INF:BANDWIDTH=1\nv.m3u8\n")
	f.Add("#EXTM3U\n#EXT-X-MEDIA:TYPE=AUDIO,GROUP-ID=\"g\",NAME=\"A\",URI=\"a.m3u8\"\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ParseMaster(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		if _, err := ParseMaster(&buf); err != nil {
			t.Fatalf("re-encoded playlist failed to parse: %v\n%s", err, buf.String())
		}
	})
}

func FuzzParseMedia(f *testing.F) {
	c := media.DramaShow()
	var seed bytes.Buffer
	_ = GenerateMedia(c, c.TrackByID("V1"), SingleFile, true).Encode(&seed)
	f.Add(seed.String())
	f.Add("#EXTM3U\n#EXTINF:5.000,\nseg.m4s\n#EXT-X-ENDLIST\n")
	f.Add("#EXTM3U\n#EXT-X-BYTERANGE:10@0\n")
	f.Fuzz(func(t *testing.T, input string) {
		p, err := ParseMedia(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := p.Encode(&buf); err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		if _, err := ParseMedia(&buf); err != nil {
			t.Fatalf("re-encoded playlist failed to parse: %v\n%s", err, buf.String())
		}
	})
}

func FuzzParseAttrList(f *testing.F) {
	f.Add(`BANDWIDTH=1,CODECS="a,b"`)
	f.Add(`KEY="`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, input string) {
		_, _ = parseAttrList(input) // must not panic
	})
}
