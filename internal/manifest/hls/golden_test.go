package hls

import (
	"bytes"
	"os"
	"testing"

	"demuxabr/internal/media"
)

func assertGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("generated playlist differs from %s.\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// The golden files pin the exact playlist bytes for the paper's content.

func TestGoldenMasterHAll(t *testing.T) {
	c := media.DramaShow()
	var buf bytes.Buffer
	if err := GenerateMaster(c, media.HAll(c), nil).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	assertGolden(t, "testdata/master_hall.m3u8", buf.Bytes())
}

func TestGoldenMasterHSub(t *testing.T) {
	c := media.DramaShow()
	var buf bytes.Buffer
	if err := GenerateMaster(c, media.HSub(c), nil).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	assertGolden(t, "testdata/master_hsub.m3u8", buf.Bytes())
}

func TestGoldenMediaPlaylist(t *testing.T) {
	c := media.DramaShow()
	var buf bytes.Buffer
	if err := GenerateMedia(c, c.TrackByID("V3"), SingleFile, true).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	assertGolden(t, "testdata/V3_media.m3u8", buf.Bytes())
}

func TestGoldenFilesParse(t *testing.T) {
	for _, name := range []string{"testdata/master_hall.m3u8", "testdata/master_hsub.m3u8"} {
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ParseMaster(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(m.Variants) == 0 || len(m.Renditions) != 3 {
			t.Errorf("%s: %d variants / %d renditions", name, len(m.Variants), len(m.Renditions))
		}
	}
	f, err := os.Open("testdata/V3_media.m3u8")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pl, err := ParseMedia(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := TrackBitrate(pl); err != nil {
		t.Errorf("golden media playlist lacks bitrate info: %v", err)
	}
}

func TestGoldenMultiLanguageMaster(t *testing.T) {
	c := media.MultiLanguageShow()
	combos := media.CombosForLanguage(media.AllCombos(c.VideoTracks, c.AudioTracks), "en")
	var buf bytes.Buffer
	if err := GenerateMaster(c, combos, nil).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	assertGolden(t, "testdata/master_multilang.m3u8", buf.Bytes())
	// The LANGUAGE attribute must survive a parse.
	m, err := ParseMaster(&buf)
	if err != nil {
		t.Fatal(err)
	}
	langs := map[string]int{}
	for _, r := range m.Renditions {
		langs[r.Language]++
	}
	if langs["en"] != 2 || langs["es"] != 2 {
		t.Errorf("languages = %v", langs)
	}
}
