package lint

import (
	"strings"
	"testing"

	"demuxabr/internal/manifest/dash"
	"demuxabr/internal/manifest/hls"
	"demuxabr/internal/media"
)

func ruleSet(fs []Finding) map[string]Finding {
	out := map[string]Finding{}
	for _, f := range fs {
		out[f.Rule] = f
	}
	return out
}

func TestMasterFlagsAllCombinations(t *testing.T) {
	c := media.DramaShow()
	all := hls.GenerateMaster(c, media.HAll(c), nil)
	rules := ruleSet(Master(all))
	if _, ok := rules["hls-all-combinations"]; !ok {
		t.Errorf("H_all should trigger hls-all-combinations; got %v", rules)
	}
	sub := hls.GenerateMaster(c, media.HSub(c), nil)
	rules = ruleSet(Master(sub))
	if _, ok := rules["hls-all-combinations"]; ok {
		t.Errorf("H_sub should not trigger hls-all-combinations")
	}
}

func TestMasterFlagsMissingAverageBandwidth(t *testing.T) {
	m := &hls.MasterPlaylist{
		Renditions: []hls.Rendition{{Type: "AUDIO", GroupID: "g", Name: "A1", URI: "a.m3u8", Default: true}},
		Variants:   []hls.Variant{{Bandwidth: 1000, AudioGroup: "g", URI: "v.m3u8"}},
	}
	rules := ruleSet(Master(m))
	if _, ok := rules["hls-missing-average-bandwidth"]; !ok {
		t.Errorf("missing AVERAGE-BANDWIDTH not flagged: %v", rules)
	}
}

func TestMasterFlagsDanglingGroupAndNoDefault(t *testing.T) {
	m := &hls.MasterPlaylist{
		Renditions: []hls.Rendition{
			{Type: "AUDIO", GroupID: "g1", Name: "A1", URI: "a1.m3u8"},
			{Type: "AUDIO", GroupID: "g2", Name: "A2", URI: "a2.m3u8"},
		},
		Variants: []hls.Variant{
			{Bandwidth: 1000, AverageBandwidth: 900, AudioGroup: "missing", URI: "v.m3u8"},
		},
	}
	rules := ruleSet(Master(m))
	if _, ok := rules["hls-dangling-audio-group"]; !ok {
		t.Errorf("dangling group not flagged: %v", rules)
	}
	if _, ok := rules["hls-no-default-rendition"]; !ok {
		t.Errorf("missing DEFAULT not flagged: %v", rules)
	}
}

func TestMasterBandwidthCrossCheck(t *testing.T) {
	m := &hls.MasterPlaylist{
		Renditions: []hls.Rendition{{Type: "AUDIO", GroupID: "g", Name: "A1", URI: "audio/A1.m3u8", Default: true}},
		Variants: []hls.Variant{
			{Bandwidth: 500_000, AverageBandwidth: 450_000, AudioGroup: "g", URI: "video/V1.m3u8"},
			{Bandwidth: 900_000, AverageBandwidth: 800_000, AudioGroup: "g", URI: "video/V2.m3u8"},
		},
	}
	peaks := TrackPeaks{
		"video/V1.m3u8": 520_000, // 520k + 128k > declared 500k: understated
		"video/V2.m3u8": 700_000, // 700k + 128k < declared 900k: fine
		"audio/A1.m3u8": 128_000,
	}
	fs := MasterBandwidth(m, peaks)
	if len(fs) != 1 || fs[0].Rule != "hls-bandwidth-below-track-sum" {
		t.Fatalf("findings = %v, want one hls-bandwidth-below-track-sum", fs)
	}
	if fs[0].Severity != Warning {
		t.Errorf("severity = %v, want Warning", fs[0].Severity)
	}
	// Unknown peaks: no finding rather than a false positive.
	if fs := MasterBandwidth(m, TrackPeaks{}); len(fs) != 0 {
		t.Errorf("missing peaks should be skipped, got %v", fs)
	}
}

func TestMPDMissingBandwidth(t *testing.T) {
	c := media.DramaShow()
	m := dash.Generate(c)
	m.Periods[0].AdaptationSets[0].Representations[0].Bandwidth = 0
	m.Periods[0].AdaptationSets[1].Representations[0].Bandwidth = 0
	fs := MPD(m)
	if len(fs) != 1 || fs[0].Rule != "dash-missing-bandwidth" {
		t.Fatalf("findings = %v, want one dash-missing-bandwidth", fs)
	}
	if fs[0].Severity != Warning {
		t.Errorf("severity = %v, want Warning", fs[0].Severity)
	}
	if !strings.Contains(fs[0].Message, "2 Representations") {
		t.Errorf("message should count both omissions: %q", fs[0].Message)
	}
}

func TestMediaPlaylistRecoverability(t *testing.T) {
	c := media.DramaShow()
	good := hls.GenerateMedia(c, c.TrackByID("V1"), hls.SingleFile, false)
	if fs := MediaPlaylist("V1", good); len(fs) != 0 {
		t.Errorf("byte-range playlist flagged: %v", fs)
	}
	alsoGood := hls.GenerateMedia(c, c.TrackByID("V1"), hls.SegmentFiles, true)
	if fs := MediaPlaylist("V1", alsoGood); len(fs) != 0 {
		t.Errorf("bitrate-tag playlist flagged: %v", fs)
	}
	bad := hls.GenerateMedia(c, c.TrackByID("V1"), hls.SegmentFiles, false)
	fs := MediaPlaylist("V1", bad)
	if len(fs) != 1 || fs[0].Rule != "hls-unrecoverable-track-bitrate" {
		t.Errorf("unrecoverable playlist not flagged: %v", fs)
	}
	if !strings.Contains(fs[0].String(), "WARN") {
		t.Errorf("finding string = %q", fs[0])
	}
}

func TestMPDFindings(t *testing.T) {
	c := media.DramaShow()
	rules := ruleSet(MPD(dash.Generate(c)))
	if _, ok := rules["dash-no-combination-mechanism"]; !ok {
		t.Errorf("multi-audio MPD should note the combination gap: %v", rules)
	}
	// A3 (384) > V2 (246): the §1 audio-rivals-video condition holds for
	// the drama show.
	if _, ok := rules["dash-audio-rivals-video"]; !ok {
		t.Errorf("audio-rivals-video should fire for Table 1: %v", rules)
	}
	// Single-audio content: neither applies.
	single := media.MustNewContent(media.ContentSpec{
		Name:          "single",
		Duration:      media.DramaDuration,
		ChunkDuration: media.DramaChunkDuration,
		VideoTracks:   media.DramaVideoLadder(),
		AudioTracks:   media.Ladder{media.DramaAudioLadder()[0]},
	})
	rules = ruleSet(MPD(dash.Generate(single)))
	if _, ok := rules["dash-no-combination-mechanism"]; ok {
		t.Errorf("single-audio MPD flagged: %v", rules)
	}
}
