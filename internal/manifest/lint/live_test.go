package lint

import (
	"strings"
	"testing"
	"time"

	"demuxabr/internal/manifest/hls"
	"demuxabr/internal/media"
)

func TestLiveMediaFlagsOversizedPart(t *testing.T) {
	p := &hls.MediaPlaylist{
		PartTarget: time.Second,
		Segments: []hls.Segment{{
			Duration: 4 * time.Second,
			URI:      "video/V1/seg-0.m4s",
			Parts: []hls.Part{
				{Duration: time.Second, URI: "video/V1/seg-0.part-0.m4s", Independent: true},
				{Duration: 3 * time.Second, URI: "video/V1/seg-0.part-1.m4s"},
			},
		}},
	}
	fs := LiveMedia("v1.m3u8", p)
	rules := ruleSet(fs)
	f, ok := rules["hls-part-exceeds-part-inf"]
	if !ok {
		t.Fatalf("oversized part not flagged: %v", fs)
	}
	if !strings.Contains(f.Message, "seg-0.part-1") {
		t.Errorf("finding does not name the worst part: %s", f.Message)
	}
}

func TestLiveMediaToleratesEncoderRounding(t *testing.T) {
	p := &hls.MediaPlaylist{
		PartTarget: time.Second,
		Segments: []hls.Segment{{
			Duration: 2 * time.Second,
			URI:      "video/V1/seg-0.m4s",
			Parts: []hls.Part{
				// One encoding quantum over: inside the documented tolerance.
				{Duration: time.Second + time.Millisecond, URI: "video/V1/seg-0.part-0.m4s", Independent: true},
				{Duration: time.Second - time.Millisecond, URI: "video/V1/seg-0.part-1.m4s"},
			},
		}},
	}
	if fs := LiveMedia("v1.m3u8", p); len(fs) != 0 {
		t.Errorf("ms rounding flagged: %v", fs)
	}
	// No PART-INF at all: the rule must stay silent for non-LL playlists.
	if fs := LiveMedia("vod.m3u8", &hls.MediaPlaylist{}); len(fs) != 0 {
		t.Errorf("non-LL playlist flagged: %v", fs)
	}
}

func TestRefreshSequenceFlagsRegression(t *testing.T) {
	refreshes := []*hls.MediaPlaylist{
		{MediaSequence: 5, Segments: []hls.Segment{{URI: "seg-5.m4s"}}},
		{MediaSequence: 3, Segments: []hls.Segment{{URI: "seg-3.m4s"}}},
	}
	rules := ruleSet(RefreshSequence("v1.m3u8", refreshes))
	f, ok := rules["hls-media-sequence-regression"]
	if !ok {
		t.Fatal("sequence regression not flagged")
	}
	if !strings.Contains(f.Message, "from 5 to 3") {
		t.Errorf("finding does not describe the regression: %s", f.Message)
	}
}

func TestRefreshSequenceFlagsResurrectedSegment(t *testing.T) {
	refreshes := []*hls.MediaPlaylist{
		{MediaSequence: 0, Segments: []hls.Segment{{URI: "seg-0.m4s"}, {URI: "seg-1.m4s"}}},
		{MediaSequence: 1, Segments: []hls.Segment{{URI: "seg-1.m4s"}, {URI: "seg-2.m4s"}}},
		// seg-0 expired after the first refresh; re-listing it is the bug.
		{MediaSequence: 1, Segments: []hls.Segment{{URI: "seg-0.m4s"}, {URI: "seg-2.m4s"}}},
	}
	fs := RefreshSequence("v1.m3u8", refreshes)
	found := false
	for _, f := range fs {
		if f.Rule == "hls-media-sequence-regression" && strings.Contains(f.Message, "re-lists") {
			found = true
		}
	}
	if !found {
		t.Fatalf("resurrected segment not flagged: %v", fs)
	}
}

// A well-formed sliding window (the generator's own output) must lint
// clean under both live rules at every refresh.
func TestLiveRulesPassOnGeneratedWindow(t *testing.T) {
	c := media.DramaShow()
	lw := &hls.LiveWindow{Content: c, Track: c.VideoTracks[0], WindowSize: 4, PartsPerSegment: 5}
	var refreshes []*hls.MediaPlaylist
	for complete := 1; complete <= c.NumChunks(); complete++ {
		p := lw.At(complete)
		if fs := LiveMedia("v1.m3u8", p); len(fs) != 0 {
			t.Fatalf("refresh %d: generated window flagged by LiveMedia: %v", complete, fs)
		}
		refreshes = append(refreshes, p)
	}
	if fs := RefreshSequence("v1.m3u8", refreshes); len(fs) != 0 {
		t.Fatalf("generated window flagged by RefreshSequence: %v", fs)
	}
}
