package lint

import (
	"fmt"
	"time"

	"demuxabr/internal/manifest/hls"
)

// Live-playlist rules: a sliding-window origin that lets its media
// sequence regress, resurrects expired segments, or advertises parts
// longer than its declared PART-TARGET breaks every client that trusts
// the playlist to be an append-only view of the stream — LL-HLS players
// schedule blocking reloads and part fetches off exactly these fields.

// partTolerance absorbs the encoder's millisecond rounding of part
// durations: a part is only flagged when it exceeds PART-TARGET by more
// than one encoding quantum.
const partTolerance = time.Millisecond

// LiveMedia lints one live media playlist's LL-HLS part structure: every
// advertised EXT-X-PART must fit within the declared EXT-X-PART-INF
// PART-TARGET (RFC 8216bis: parts MUST be at most PART-TARGET seconds).
func LiveMedia(name string, p *hls.MediaPlaylist) []Finding {
	if p.PartTarget <= 0 {
		return nil
	}
	over := 0
	worst := time.Duration(0)
	worstURI := ""
	for _, seg := range p.Segments {
		for _, part := range seg.Parts {
			if excess := part.Duration - p.PartTarget; excess > partTolerance {
				over++
				if excess > worst {
					worst, worstURI = excess, part.URI
				}
			}
		}
	}
	if over == 0 {
		return nil
	}
	return []Finding{{Warning, "hls-part-exceeds-part-inf",
		fmt.Sprintf("%s: %d EXT-X-PART entries exceed the declared PART-TARGET %v (worst: %q by %v); clients budget blocking part requests off PART-TARGET, so longer parts stall the low-latency fetch loop",
			name, over, p.PartTarget, worstURI, worst)}}
}

// RefreshSequence lints an ordered series of refreshes of the same live
// media playlist. Two invariants of a sliding window:
//
//   - EXT-X-MEDIA-SEQUENCE must advance monotonically — a regression
//     renumbers segments under the client's feet and desynchronizes every
//     sequence-number-based position computation;
//   - a segment that slid out of the window must never reappear — clients
//     treat the window head as expired and a resurrected URI breaks the
//     append-only timeline (and any downstream cache keyed on it).
func RefreshSequence(name string, refreshes []*hls.MediaPlaylist) []Finding {
	var out []Finding
	expired := map[string]int{} // URI -> refresh index it was last seen before expiring
	prev := map[string]bool{}
	lastSeq := int64(-1)
	for i, p := range refreshes {
		if lastSeq >= 0 && p.MediaSequence < lastSeq {
			out = append(out, Finding{Warning, "hls-media-sequence-regression",
				fmt.Sprintf("%s: refresh %d regresses EXT-X-MEDIA-SEQUENCE from %d to %d; the sliding window must advance monotonically or clients lose their position in the stream",
					name, i, lastSeq, p.MediaSequence)})
		}
		lastSeq = p.MediaSequence
		cur := map[string]bool{}
		for _, seg := range p.Segments {
			if seg.URI == "" {
				continue
			}
			cur[seg.URI] = true
			if at, gone := expired[seg.URI]; gone {
				out = append(out, Finding{Warning, "hls-media-sequence-regression",
					fmt.Sprintf("%s: refresh %d re-lists segment %q that expired from the window after refresh %d; expired segments must never reappear",
						name, i, seg.URI, at)})
				delete(expired, seg.URI)
			}
		}
		for uri := range prev {
			if !cur[uri] {
				expired[uri] = i - 1
			}
		}
		prev = cur
	}
	return out
}
