// Package lint checks manifests against the paper's §4.1 server-side best
// practices for demuxed audio/video content:
//
//   - curate the audio/video combinations (don't list the full cross
//     product, don't list a single variant per video either if multiple
//     audio tracks exist);
//   - declare bandwidth for combinations AND for individual tracks;
//   - make per-track bitrates recoverable from media playlists
//     (EXT-X-BYTERANGE or EXT-X-BITRATE on every segment);
//   - order renditions deliberately (the first listed audio is what a
//     degraded player pins).
//
// Findings are advisory, mirroring how the paper frames its practices.
package lint

import (
	"fmt"
	"sort"
	"strings"

	"demuxabr/internal/manifest/dash"
	"demuxabr/internal/manifest/hls"
	"demuxabr/internal/media"
)

// Severity grades a finding.
type Severity int

const (
	// Warning marks a practice violation with QoE consequences the paper
	// demonstrates.
	Warning Severity = iota
	// Info marks an observation worth reviewing.
	Info
)

// String names the severity.
func (s Severity) String() string {
	if s == Warning {
		return "WARN"
	}
	return "INFO"
}

// Finding is one lint result.
type Finding struct {
	Severity Severity
	// Rule is a short stable identifier (e.g. "hls-all-combinations").
	Rule string
	// Message explains the finding and its paper grounding.
	Message string
}

// String renders the finding.
func (f Finding) String() string {
	return fmt.Sprintf("%s %s: %s", f.Severity, f.Rule, f.Message)
}

// Master lints an HLS master playlist.
func Master(m *hls.MasterPlaylist) []Finding {
	var out []Finding
	audioGroups := map[string]bool{}
	audioCount := 0
	var defaults int
	for _, r := range m.Renditions {
		if r.Type != "AUDIO" {
			continue
		}
		audioCount++
		audioGroups[r.GroupID] = true
		if r.Default {
			defaults++
		}
	}
	videos := map[string]bool{}
	groupsUsed := map[string]bool{}
	missingAvg := 0
	for _, v := range m.Variants {
		videos[v.URI] = true
		groupsUsed[v.AudioGroup] = true
		if v.AverageBandwidth == 0 {
			missingAvg++
		}
	}
	nv, na := len(videos), audioCount

	if na > 1 {
		if len(m.Variants) >= nv*na {
			out = append(out, Finding{Warning, "hls-all-combinations",
				fmt.Sprintf("master lists %d variants for %d videos x %d audio tracks: the full cross product invites undesirable pairings (§3.3); curate a subset (§4.1)", len(m.Variants), nv, na)})
		}
		if defaults == 0 {
			out = append(out, Finding{Info, "hls-no-default-rendition",
				"no audio rendition is marked DEFAULT; players that pin the first listed rendition (§3.2) will pin an arbitrary one"})
		}
	}
	if missingAvg > 0 {
		out = append(out, Finding{Warning, "hls-missing-average-bandwidth",
			fmt.Sprintf("%d variants lack AVERAGE-BANDWIDTH; rate adaptation against peak-only aggregates overestimates demand (§2.3)", missingAvg)})
	}
	// Sorted so finding order does not depend on map iteration order.
	var dangling []string
	for g := range groupsUsed {
		if g != "" && !audioGroups[g] {
			dangling = append(dangling, g)
		}
	}
	sort.Strings(dangling)
	for _, g := range dangling {
		out = append(out, Finding{Warning, "hls-dangling-audio-group",
			fmt.Sprintf("variant references audio group %q with no rendition", g)})
	}
	return out
}

// TrackPeaks maps a media-playlist URI (as written in the master) to the
// track's peak bitrate recovered from that playlist — the §4.1 client-side
// recovery via hls.TrackBitrate.
type TrackPeaks map[string]media.Bps

// MasterBandwidth cross-checks each variant's declared BANDWIDTH against
// the sum of its referenced audio and video track peak bitrates. BANDWIDTH
// below the real aggregate makes every §2.3 rate decision optimistic: the
// player admits combinations the link cannot sustain. Variants whose
// track peaks are not both known are skipped.
func MasterBandwidth(m *hls.MasterPlaylist, peaks TrackPeaks) []Finding {
	renditionURI := map[string]string{}
	for _, r := range m.Renditions {
		if r.Type == "AUDIO" {
			renditionURI[r.GroupID] = r.URI
		}
	}
	var out []Finding
	for i, v := range m.Variants {
		videoPeak, okV := peaks[v.URI]
		audioPeak, okA := peaks[renditionURI[v.AudioGroup]]
		if !okV || !okA {
			continue
		}
		if sum := videoPeak + audioPeak; v.Bandwidth < int64(sum) {
			out = append(out, Finding{Warning, "hls-bandwidth-below-track-sum",
				fmt.Sprintf("variant %d declares BANDWIDTH %d below the %v sum of its tracks' peak bitrates (video %v + audio %v); rate adaptation against it admits unsustainable combinations (§4.1)",
					i, v.Bandwidth, sum, videoPeak, audioPeak)})
		}
	}
	return out
}

// MediaPlaylist lints one second-level playlist for per-track bitrate
// recoverability (§4.1: byte ranges or the EXT-X-BITRATE tag, which the
// paper recommends making mandatory).
func MediaPlaylist(name string, p *hls.MediaPlaylist) []Finding {
	missing := 0
	for _, seg := range p.Segments {
		// An in-flight LL-HLS segment advertised as parts has no final size
		// yet, so its bitrate is unknowable at publish time.
		if len(seg.Parts) > 0 {
			continue
		}
		if seg.ByteRangeLength == 0 && seg.Bitrate == 0 {
			missing++
		}
	}
	if missing == 0 {
		return nil
	}
	return []Finding{{Warning, "hls-unrecoverable-track-bitrate",
		fmt.Sprintf("%s: %d/%d segments carry neither EXT-X-BYTERANGE nor EXT-X-BITRATE; clients cannot recover the per-track bitrate (§4.1)", name, missing, len(p.Segments))}}
}

// MPD lints a DASH manifest.
func MPD(m *dash.MPD) []Finding {
	var out []Finding
	// §4.1: bandwidth must be declared for individual tracks. A
	// Representation without @bandwidth leaves the client no way to budget
	// the pair, so flag it before ladder reconstruction (which needs the
	// very attribute that is missing).
	var missing []string
	for _, p := range m.Periods {
		for _, as := range p.AdaptationSets {
			for _, rep := range as.Representations {
				if rep.Bandwidth <= 0 {
					missing = append(missing, rep.ID)
				}
			}
		}
	}
	if len(missing) > 0 {
		return []Finding{{Warning, "dash-missing-bandwidth",
			fmt.Sprintf("%d Representations omit @bandwidth (%s); clients cannot compute the pair's bandwidth requirement (§4.1)",
				len(missing), strings.Join(missing, ", "))}}
	}
	video, audio, err := dash.Ladders(m)
	if err != nil {
		return []Finding{{Warning, "dash-invalid-ladders", err.Error()}}
	}
	if len(audio) > 1 {
		out = append(out, Finding{Info, "dash-no-combination-mechanism",
			fmt.Sprintf("MPD declares %d video x %d audio Representations; DASH cannot restrict their pairing — publish an out-of-band allowed-combination list (§4.1)", len(video), len(audio))})
	}
	// Audio rivaling low-rung video is exactly when joint adaptation
	// matters (§1): flag it so operators know the stakes.
	if len(audio) > 0 && len(video) > 1 {
		top := audio[len(audio)-1]
		if top.DeclaredBitrate >= video[1].DeclaredBitrate {
			out = append(out, Finding{Info, "dash-audio-rivals-video",
				fmt.Sprintf("top audio track (%v) meets or exceeds the second video rung (%v): audio selection will materially affect video selection (§1)", top.DeclaredBitrate, video[1].DeclaredBitrate)})
		}
	}
	return out
}
