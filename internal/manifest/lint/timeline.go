package lint

import (
	"fmt"
	"strings"
	"time"

	"demuxabr/internal/manifest/dash"
	"demuxabr/internal/manifest/hls"
)

// Segment-timeline regularity and audio/video boundary alignment: the
// manifest-side checks the chunking work needs. Irregular segment
// durations make byte-budget planning (duration x declared bitrate)
// wrong per segment, and misaligned audio/video boundaries force players
// to switch mid-segment and defeat shared-CDN chunk reuse for demuxed
// tracks — the cache-amplification effect the fleet experiments measure
// only holds when both tracks cut at the same instants.

// driftFraction is the tolerated deviation of one segment's duration
// from the declared nominal (HLS EXT-X-TARGETDURATION, DASH @duration):
// a fifth of a segment. The final segment is exempt — a short tail is
// how every encoder closes a stream.
const driftFraction = 5 // denominator: tolerance = nominal/driftFraction

// alignTolerance is how far one track's segment boundary may sit from
// the other track's matching boundary before the pair counts as
// misaligned. Audio encoders quantize to frame sizes (~21 ms for AAC),
// so exact equality is too strict; 100 ms is several frames yet far
// below any plausible chunk duration.
const alignTolerance = 100 * time.Millisecond

// dominantFraction decides when an HLS timeline is nominally uniform: HLS
// has no declared-variable marker (unlike a DASH SegmentTimeline without
// @duration), so a playlist whose modal segment duration covers less than
// 2/3 of its non-final segments is treated as variable by design —
// content-aware chunking, not encoder drift — and exempt from the
// regularity and alignment rules.
const (
	dominantNum = 2
	dominantDen = 3
)

// variableByDesign reports whether an HLS segment-duration list reads as a
// deliberately variable timeline rather than a drifting uniform one.
func variableByDesign(durs []time.Duration) bool {
	if len(durs) < 2 {
		return false
	}
	body := durs[:len(durs)-1] // the final segment is always exempt
	counts := map[time.Duration]int{}
	modal := 0
	for _, d := range body {
		counts[d]++
		if counts[d] > modal {
			modal = counts[d]
		}
	}
	return modal*dominantDen < len(body)*dominantNum
}

// MediaTimeline lints one media playlist's segment durations: regularity
// against the declared target (for nominally-uniform timelines), and the
// RFC 8216 §4.3.3.1 requirement that EXT-X-TARGETDURATION cover every
// segment's rounded duration (for all timelines — a variable-by-design
// playlist still must not undersell its longest segment, or clients
// under-provision buffers and misestimate the live refresh interval).
func MediaTimeline(name string, p *hls.MediaPlaylist) []Finding {
	if p.TargetDuration <= 0 || len(p.Segments) < 2 {
		return nil
	}
	durs := segmentDurations(p)
	var out []Finding
	if !variableByDesign(durs) {
		if irregular, worst, worstAt := driftCount(durs, p.TargetDuration); irregular > 0 {
			out = append(out, Finding{Warning, "hls-irregular-segment-durations",
				fmt.Sprintf("%s: %d/%d segments drift more than 1/%d from the declared %v target (worst: segment %d at %v); irregular chunking breaks duration-based byte budgeting and audio/video boundary alignment (§4.1)",
					name, irregular, len(durs)-1, driftFraction, p.TargetDuration, worstAt, worst)})
		}
	}
	var maxSeg time.Duration
	maxAt := 0
	for i, d := range durs {
		if d > maxSeg {
			maxSeg, maxAt = d, i
		}
	}
	if maxSeg.Round(time.Second) > p.TargetDuration {
		out = append(out, Finding{Warning, "hls-targetduration-below-max-segment",
			fmt.Sprintf("%s: EXT-X-TARGETDURATION %v below segment %d's %v (RFC 8216 §4.3.3.1: every EXTINF rounded to the nearest integer must not exceed it); clients size buffers and playlist-refresh timers from the target",
				name, p.TargetDuration, maxAt, maxSeg)})
	}
	return out
}

// SegmentAlignment compares the cumulative segment boundaries of a video
// media playlist and the audio playlist paired with it in a master. Pairs
// where either side is variable by design are skipped: per-type shaped
// timelines misalign on purpose, and the player-side cost is a measured
// trade (the Ladder experiments), not a packaging mistake.
func SegmentAlignment(videoName, audioName string, video, audio *hls.MediaPlaylist) []Finding {
	vd, ad := segmentDurations(video), segmentDurations(audio)
	if variableByDesign(vd) || variableByDesign(ad) {
		return nil
	}
	return alignFindings("hls-av-misaligned-segments", videoName, audioName, boundaries(vd), boundaries(ad))
}

// MPDTimeline lints every SegmentTemplate in an MPD: explicit timelines
// against the declared nominal duration, and the audio adaptation set's
// boundaries against the video one's.
func MPDTimeline(m *dash.MPD) []Finding {
	total := time.Duration(0)
	if m.MediaPresentationDuration != "" {
		if d, err := dash.ParseDuration(m.MediaPresentationDuration); err == nil {
			total = d
		}
	}
	var out []Finding
	var videoBounds, audioBounds []time.Duration
	haveVideo, haveAudio := false, false
	declaredVariable := false
	for _, p := range m.Periods {
		for _, as := range p.AdaptationSets {
			st := as.SegmentTemplate
			if st == nil {
				continue
			}
			durs, err := st.SegmentDurations(total)
			if err != nil || len(durs) == 0 {
				continue
			}
			// A SegmentTimeline without @duration IS the declaration that the
			// timeline is variable: the durations are authoritative, there is
			// no nominal to drift from, and A/V alignment is not promised.
			if st.Timeline != nil && st.Duration == 0 {
				declaredVariable = true
			}
			kind := contentKind(as)
			// Drift is only checkable when both a nominal @duration and an
			// explicit timeline are declared: the timeline is then the truth
			// the nominal must track.
			if st.Timeline != nil && st.Duration > 0 && st.Timescale > 0 {
				nominal := time.Duration(st.Duration) * time.Second / time.Duration(st.Timescale)
				if irregular, worst, worstAt := driftCount(durs, nominal); irregular > 0 {
					out = append(out, Finding{Warning, "dash-irregular-segment-durations",
						fmt.Sprintf("%s SegmentTimeline: %d/%d segments drift more than 1/%d from the declared %v @duration (worst: segment %d at %v); irregular chunking breaks duration-based byte budgeting and audio/video boundary alignment (§4.1)",
							kind, irregular, len(durs)-1, driftFraction, nominal, worstAt, worst)})
				}
			}
			switch kind {
			case "video":
				if !haveVideo {
					videoBounds, haveVideo = boundaries(durs), true
				}
			case "audio":
				if !haveAudio {
					audioBounds, haveAudio = boundaries(durs), true
				}
			}
		}
	}
	if haveVideo && haveAudio && !declaredVariable {
		out = append(out, alignFindings("dash-av-misaligned-segments", "video", "audio", videoBounds, audioBounds)...)
	}
	return out
}

// contentKind classifies an adaptation set as video, audio, or other.
func contentKind(as dash.AdaptationSet) string {
	switch {
	case as.ContentType == "video" || strings.HasPrefix(as.MimeType, "video/"):
		return "video"
	case as.ContentType == "audio" || strings.HasPrefix(as.MimeType, "audio/"):
		return "audio"
	}
	return "other"
}

// segmentDurations extracts EXTINF durations.
func segmentDurations(p *hls.MediaPlaylist) []time.Duration {
	var durs []time.Duration
	for _, seg := range p.Segments {
		durs = append(durs, seg.Duration)
	}
	return durs
}

// driftCount counts non-final segments deviating from nominal by more
// than nominal/driftFraction, returning the worst offender.
func driftCount(durs []time.Duration, nominal time.Duration) (irregular int, worst time.Duration, worstAt int) {
	tol := nominal / driftFraction
	worstDrift := time.Duration(0)
	for i, d := range durs[:len(durs)-1] {
		drift := d - nominal
		if drift < 0 {
			drift = -drift
		}
		if drift > tol {
			irregular++
			if drift > worstDrift {
				worstDrift, worst, worstAt = drift, d, i
			}
		}
	}
	return irregular, worst, worstAt
}

// boundaries turns per-segment durations into cumulative boundary times
// (excluding the stream end, which legitimately differs between tracks).
func boundaries(durs []time.Duration) []time.Duration {
	var out []time.Duration
	cum := time.Duration(0)
	for _, d := range durs[:max(len(durs)-1, 0)] {
		cum += d
		out = append(out, cum)
	}
	return out
}

// alignFindings compares two boundary sequences pairwise over their
// common prefix.
func alignFindings(rule, videoName, audioName string, vb, ab []time.Duration) []Finding {
	n := min(len(vb), len(ab))
	misaligned := 0
	worst := time.Duration(0)
	worstAt := 0
	for i := 0; i < n; i++ {
		diff := vb[i] - ab[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > alignTolerance {
			misaligned++
			if diff > worst {
				worst, worstAt = diff, i
			}
		}
	}
	if misaligned == 0 {
		return nil
	}
	return []Finding{{Warning, rule,
		fmt.Sprintf("%s and %s segment boundaries diverge at %d/%d points (worst %v at boundary %d); misaligned boundaries force mid-segment switches and defeat shared-cache chunk reuse for demuxed tracks (§4.1)",
			videoName, audioName, misaligned, n, worst, worstAt)}}
}
