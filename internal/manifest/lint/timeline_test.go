package lint

import (
	"strings"
	"testing"
	"time"

	"demuxabr/internal/manifest/dash"
	"demuxabr/internal/manifest/hls"
	"demuxabr/internal/media"
)

// playlist builds a media playlist from segment durations.
func playlist(target time.Duration, durs ...time.Duration) *hls.MediaPlaylist {
	p := &hls.MediaPlaylist{TargetDuration: target, EndList: true}
	for _, d := range durs {
		p.Segments = append(p.Segments, hls.Segment{Duration: d, URI: "s.m4s", ByteRangeLength: 1})
	}
	return p
}

func TestMediaTimelineDrift(t *testing.T) {
	const s = time.Second
	bad := playlist(4*s, 4*s, 4*s, 6*s, 4*s, 1*s)
	rules := ruleSet(MediaTimeline("V1.m3u8", bad))
	f, ok := rules["hls-irregular-segment-durations"]
	if !ok {
		t.Fatalf("irregular playlist not flagged: %v", rules)
	}
	if !strings.Contains(f.Message, "segment 2 at 6s") {
		t.Errorf("worst offender not reported: %s", f.Message)
	}

	// The short final segment is exempt: it is how streams end.
	good := playlist(4*s, 4*s, 4*s, 4*s, 1*s)
	if fs := MediaTimeline("V1.m3u8", good); len(fs) != 0 {
		t.Errorf("regular playlist flagged: %v", fs)
	}
	// Sub-tolerance jitter passes.
	jitter := playlist(4*s, 4*s, 3700*time.Millisecond, 4*s, 2*s)
	if fs := MediaTimeline("V1.m3u8", jitter); len(fs) != 0 {
		t.Errorf("sub-tolerance jitter flagged: %v", fs)
	}
	// No declared target, nothing to check against.
	if fs := MediaTimeline("V1.m3u8", playlist(0, 4*s, 9*s)); len(fs) != 0 {
		t.Errorf("targetless playlist flagged: %v", fs)
	}
}

func TestSegmentAlignment(t *testing.T) {
	const s = time.Second
	video := playlist(4*s, 4*s, 4*s, 4*s, 2*s)
	skewed := playlist(4*s, 3500*time.Millisecond, 4*s, 4*s, 2500*time.Millisecond)
	fs := SegmentAlignment("V1.m3u8", "A1.m3u8", video, skewed)
	if len(fs) != 1 || fs[0].Rule != "hls-av-misaligned-segments" {
		t.Fatalf("misaligned tracks not flagged: %v", fs)
	}
	if !strings.Contains(fs[0].Message, "V1.m3u8") || !strings.Contains(fs[0].Message, "A1.m3u8") {
		t.Errorf("pair not named: %s", fs[0].Message)
	}

	// Audio quantized to frame sizes: tens of milliseconds are fine.
	quantized := playlist(4*s, 3990*time.Millisecond, 4010*time.Millisecond, 4*s, 2*s)
	if fs := SegmentAlignment("V1.m3u8", "A1.m3u8", video, quantized); len(fs) != 0 {
		t.Errorf("frame-quantized audio flagged: %v", fs)
	}
	// Different tails do not misalign the common prefix.
	shorter := playlist(4*s, 4*s, 4*s, 4*s)
	if fs := SegmentAlignment("V1.m3u8", "A1.m3u8", video, shorter); len(fs) != 0 {
		t.Errorf("differing tails flagged: %v", fs)
	}
}

func TestTargetDurationBelowMaxSegment(t *testing.T) {
	const s = time.Second
	// A shaped (variable-by-design) playlist whose target undersells the
	// longest segment: the drift rule stays quiet, the RFC rule fires.
	under := playlist(6*s, 5*s, 7*s, 8*s, 6*s, 4*s, 2*s)
	rules := ruleSet(MediaTimeline("V1.m3u8", under))
	if f, ok := rules["hls-targetduration-below-max-segment"]; !ok {
		t.Fatalf("underselling target not flagged: %v", rules)
	} else if !strings.Contains(f.Message, "8s") {
		t.Errorf("max segment not reported: %s", f.Message)
	}
	if _, ok := rules["hls-irregular-segment-durations"]; ok {
		t.Errorf("variable-by-design playlist flagged as drifting: %v", rules)
	}

	// The same shape with a covering target is clean on both rules.
	covered := playlist(8*s, 5*s, 7*s, 8*s, 6*s, 4*s, 2*s)
	if fs := MediaTimeline("V1.m3u8", covered); len(fs) != 0 {
		t.Errorf("covered variable playlist flagged: %v", fs)
	}
	// Sub-half-second overshoot rounds down (RFC rounds EXTINF to the
	// nearest integer before comparing).
	rounding := playlist(4*s, 4*s, 4400*time.Millisecond, 4*s, 2*s)
	if fs := MediaTimeline("V1.m3u8", rounding); len(fs) != 0 {
		t.Errorf("sub-rounding overshoot flagged: %v", fs)
	}
	// A nominally-uniform playlist with one long drifter trips BOTH rules.
	drifter := playlist(4*s, 4*s, 4*s, 6*s, 4*s, 4*s, 2*s)
	rules = ruleSet(MediaTimeline("V1.m3u8", drifter))
	if _, ok := rules["hls-irregular-segment-durations"]; !ok {
		t.Errorf("uniform playlist with drifter not flagged: %v", rules)
	}
	if _, ok := rules["hls-targetduration-below-max-segment"]; !ok {
		t.Errorf("drifter above target not flagged: %v", rules)
	}
}

func TestVariableByDesignAlignment(t *testing.T) {
	const s = time.Second
	// Shaped per-type timelines: video variable, audio uniform 6s —
	// deliberately misaligned, accepted.
	video := playlist(8*s, 5*s, 7*s, 8*s, 6*s, 4*s, 6*s, 4*s)
	audio := playlist(6*s, 6*s, 6*s, 6*s, 6*s, 6*s, 6*s, 4*s)
	if fs := SegmentAlignment("V1.m3u8", "A1.m3u8", video, audio); len(fs) != 0 {
		t.Errorf("declared-variable pair flagged: %v", fs)
	}
	// Nominally-uniform pairs still flag genuine skew (the pre-shaping
	// behaviour is unchanged).
	uniform := playlist(4*s, 4*s, 4*s, 4*s, 2*s)
	skewed := playlist(4*s, 3500*time.Millisecond, 4*s, 4*s, 2500*time.Millisecond)
	if fs := SegmentAlignment("V1.m3u8", "A1.m3u8", uniform, skewed); len(fs) != 1 {
		t.Errorf("uniform skewed pair not flagged: %v", fs)
	}
}

func TestMPDDeclaredVariableTimeline(t *testing.T) {
	// SegmentTimeline without @duration is the DASH declared-variable form:
	// no drift rule (no nominal to drift from), no alignment rule (the
	// misalignment is the design).
	video := &dash.SegmentTemplate{
		Timescale: 1000,
		Timeline: &dash.SegmentTimeline{S: []dash.S{
			{D: 5000}, {D: 7000}, {D: 8000}, {D: 6000}, {D: 4000, R: 2}, {D: 2000},
		}},
	}
	audio := &dash.SegmentTemplate{
		Timescale: 1000,
		Timeline:  &dash.SegmentTimeline{S: []dash.S{{D: 6000, R: 5}, {D: 4000}}},
	}
	if fs := MPDTimeline(timelineMPD(video, audio)); len(fs) != 0 {
		t.Errorf("declared-variable MPD flagged: %v", fs)
	}
	// With a nominal @duration alongside the same video timeline, the drift
	// is once again a claim the manifest breaks — both rules return.
	video.Duration = 5000
	audioNominal := &dash.SegmentTemplate{Timescale: 1000, Duration: 5000}
	rules := ruleSet(MPDTimeline(timelineMPD(video, audioNominal)))
	if _, ok := rules["dash-irregular-segment-durations"]; !ok {
		t.Errorf("nominal+timeline drift not flagged: %v", rules)
	}
	if _, ok := rules["dash-av-misaligned-segments"]; !ok {
		t.Errorf("nominal+timeline misalignment not flagged: %v", rules)
	}
}

// timelineMPD builds a two-adaptation-set MPD with explicit control of
// each set's segment template.
func timelineMPD(video, audio *dash.SegmentTemplate) *dash.MPD {
	return &dash.MPD{
		MediaPresentationDuration: "PT40S",
		Periods: []dash.Period{{
			AdaptationSets: []dash.AdaptationSet{
				{ContentType: "video", SegmentTemplate: video},
				{ContentType: "audio", SegmentTemplate: audio},
			},
		}},
	}
}

func TestMPDTimelineDrift(t *testing.T) {
	video := &dash.SegmentTemplate{
		Timescale: 1000, Duration: 4000,
		Timeline: &dash.SegmentTimeline{S: []dash.S{
			{D: 4000, R: 2}, {D: 6000}, {D: 4000, R: 5}, {D: 2000},
		}},
	}
	audio := &dash.SegmentTemplate{Timescale: 1000, Duration: 4000}
	rules := ruleSet(MPDTimeline(timelineMPD(video, audio)))
	if f, ok := rules["dash-irregular-segment-durations"]; !ok {
		t.Fatalf("drifting timeline not flagged: %v", rules)
	} else if !strings.Contains(f.Message, "video SegmentTimeline") {
		t.Errorf("adaptation set not named: %s", f.Message)
	}
	// The drifting video timeline also shifts every later boundary away
	// from the audio track's nominal grid.
	if _, ok := rules["dash-av-misaligned-segments"]; !ok {
		t.Errorf("shifted boundaries not flagged: %v", rules)
	}

	regular := &dash.SegmentTemplate{
		Timescale: 1000, Duration: 4000,
		Timeline: &dash.SegmentTimeline{S: []dash.S{{D: 4000, R: 8}, {D: 2000}}},
	}
	if fs := MPDTimeline(timelineMPD(regular, audio)); len(fs) != 0 {
		t.Errorf("regular timeline flagged: %v", fs)
	}
}

func TestMPDTimelineMisalignedNominals(t *testing.T) {
	video := &dash.SegmentTemplate{Timescale: 1000, Duration: 4000}
	audio := &dash.SegmentTemplate{Timescale: 1000, Duration: 3500}
	rules := ruleSet(MPDTimeline(timelineMPD(video, audio)))
	if _, ok := rules["dash-av-misaligned-segments"]; !ok {
		t.Fatalf("3.5s audio vs 4s video chunking not flagged: %v", rules)
	}
	if _, ok := rules["dash-irregular-segment-durations"]; ok {
		t.Errorf("nominal-only templates have no timeline to drift: %v", rules)
	}
}

// TestGeneratedManifestsHaveRegularTimelines pins the repo's own
// generators to the practice the rules enforce.
func TestGeneratedManifestsHaveRegularTimelines(t *testing.T) {
	c := media.DramaShow()
	if fs := MPDTimeline(dash.Generate(c)); len(fs) != 0 {
		t.Errorf("generated MPD flagged: %v", fs)
	}
	v := hls.GenerateMedia(c, c.TrackByID("V1"), hls.SingleFile, false)
	a := hls.GenerateMedia(c, c.TrackByID("A1"), hls.SingleFile, false)
	if fs := MediaTimeline("V1", v); len(fs) != 0 {
		t.Errorf("generated video playlist flagged: %v", fs)
	}
	if fs := SegmentAlignment("V1", "A1", v, a); len(fs) != 0 {
		t.Errorf("generated pair flagged: %v", fs)
	}
}

// TestGeneratedShapedManifestsPassTimelineRules pins the other side: a
// shaped title's manifests declare their variability and must lint clean.
func TestGeneratedShapedManifestsPassTimelineRules(t *testing.T) {
	spec := media.ContentSpec{
		Name:          "shaped",
		Duration:      60 * time.Second,
		ChunkDuration: 5 * time.Second,
		VideoTracks:   media.DramaVideoLadder(),
		AudioTracks:   media.DramaAudioLadder(),
		Model:         media.DefaultChunkModel(),
		VideoChunks: []time.Duration{
			5 * time.Second, 7 * time.Second, 8 * time.Second, 6 * time.Second,
			4 * time.Second, 7 * time.Second, 5 * time.Second, 8 * time.Second,
			6 * time.Second, 4 * time.Second,
		},
		AudioChunks: []time.Duration{
			6 * time.Second, 6 * time.Second, 6 * time.Second, 6 * time.Second,
			6 * time.Second, 6 * time.Second, 6 * time.Second, 6 * time.Second,
			6 * time.Second, 6 * time.Second,
		},
	}
	c := media.MustNewContent(spec)
	if fs := MPDTimeline(dash.Generate(c)); len(fs) != 0 {
		t.Errorf("shaped MPD flagged: %v", fs)
	}
	v := hls.GenerateMedia(c, c.TrackByID("V1"), hls.SingleFile, false)
	a := hls.GenerateMedia(c, c.TrackByID("A1"), hls.SingleFile, false)
	if fs := MediaTimeline("V1", v); len(fs) != 0 {
		t.Errorf("shaped video playlist flagged: %v", fs)
	}
	if fs := SegmentAlignment("V1", "A1", v, a); len(fs) != 0 {
		t.Errorf("shaped pair flagged: %v", fs)
	}
}
