package dash

import (
	"time"

	"demuxabr/internal/media"
)

// GenerateLive builds the dynamic (live) MPD for content: the static
// manifest's two Adaptation Sets re-declared as a low-latency live stream.
// partTarget is the CMAF chunk duration the origin publishes while a
// segment is still encoding; the availabilityTimeOffset it induces —
// segment duration minus one part — is the LL-DASH dual of LL-HLS's
// EXT-X-PART-INF, letting clients request a segment almost a full segment
// duration before its nominal availability instant. window is the
// timeShiftBufferDepth: how much stream history the sliding origin
// retains, the MPD-level mirror of the HLS sliding window.
func GenerateLive(c *media.Content, partTarget, window, presentationDelay time.Duration) *MPD {
	m := Generate(c)
	m.Type = "dynamic"
	// A dynamic MPD describes an unbounded presentation: duration is
	// unknown, availability runs from the epoch of the simulated session.
	m.MediaPresentationDuration = ""
	m.AvailabilityStartTime = "1970-01-01T00:00:00Z"
	m.MinimumUpdatePeriod = FormatDuration(c.ChunkDuration)
	m.TimeShiftBufferDepth = FormatDuration(window)
	m.SuggestedPresentationDelay = FormatDuration(presentationDelay)
	ato := AvailabilityOffset(c.ChunkDuration, partTarget)
	for pi := range m.Periods {
		m.Periods[pi].Duration = ""
		for ai := range m.Periods[pi].AdaptationSets {
			if st := m.Periods[pi].AdaptationSets[ai].SegmentTemplate; st != nil {
				st.AvailabilityTimeOffset = ato.Seconds()
			}
		}
	}
	return m
}

// AvailabilityOffset is how far ahead of a segment's completion it may be
// requested: the whole segment minus the first part, because once the
// first CMAF chunk exists the origin can serve the rest with
// chunked-transfer encoding as it is produced. Zero without parts —
// whole-segment publishing has no early availability.
func AvailabilityOffset(segment, partTarget time.Duration) time.Duration {
	if partTarget <= 0 || partTarget >= segment {
		return 0
	}
	return segment - partTarget
}
