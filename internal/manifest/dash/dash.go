// Package dash writes and parses the subset of MPEG-DASH Media Presentation
// Descriptions (ISO/IEC 23009-1) the paper's experiments exercise: a static
// MPD with one Period holding a video Adaptation Set and an audio Adaptation
// Set, each Representation declaring its @bandwidth.
//
// The DASH-specific properties at the heart of §2.3: per-track bandwidths
// ARE declared (unlike HLS's aggregate-only top level), but there is NO
// mechanism to restrict which audio/video combinations a client may pair —
// every client is free to combine any Representations, which is what forces
// ExoPlayer to predetermine its own subset and lets Shaka build the full
// cross product.
package dash

import (
	"encoding/xml"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
	"time"

	"demuxabr/internal/media"
)

// MPD is the root element.
type MPD struct {
	XMLName                   xml.Name `xml:"MPD"`
	Xmlns                     string   `xml:"xmlns,attr"`
	Profiles                  string   `xml:"profiles,attr"`
	Type                      string   `xml:"type,attr"`
	MediaPresentationDuration string   `xml:"mediaPresentationDuration,attr,omitempty"`
	MinBufferTime             string   `xml:"minBufferTime,attr"`
	// Live (type="dynamic") attributes; all absent on static MPDs.
	AvailabilityStartTime      string   `xml:"availabilityStartTime,attr,omitempty"`
	MinimumUpdatePeriod        string   `xml:"minimumUpdatePeriod,attr,omitempty"`
	TimeShiftBufferDepth       string   `xml:"timeShiftBufferDepth,attr,omitempty"`
	SuggestedPresentationDelay string   `xml:"suggestedPresentationDelay,attr,omitempty"`
	Periods                    []Period `xml:"Period"`
}

// Period is a content period.
type Period struct {
	ID             string          `xml:"id,attr,omitempty"`
	Duration       string          `xml:"duration,attr,omitempty"`
	AdaptationSets []AdaptationSet `xml:"AdaptationSet"`
}

// AdaptationSet groups interchangeable Representations of one component.
type AdaptationSet struct {
	ContentType      string           `xml:"contentType,attr"`
	MimeType         string           `xml:"mimeType,attr"`
	SegmentAlignment bool             `xml:"segmentAlignment,attr"`
	SegmentTemplate  *SegmentTemplate `xml:"SegmentTemplate,omitempty"`
	Representations  []Representation `xml:"Representation"`
}

// SegmentTemplate addresses chunks by number.
type SegmentTemplate struct {
	Media          string `xml:"media,attr"`
	Initialization string `xml:"initialization,attr"`
	// Duration is the nominal segment duration in timescale units; 0 (and
	// absent from the XML) when the timeline is declared variable — then
	// the SegmentTimeline below is the sole, authoritative duration source.
	Duration    int64 `xml:"duration,attr,omitempty"`
	Timescale   int64 `xml:"timescale,attr"`
	StartNumber int64 `xml:"startNumber,attr"`
	// AvailabilityTimeOffset is the low-latency DASH offset in seconds: a
	// segment may be requested that long before its nominal availability
	// instant (the origin serves it chunked-transfer while still encoding).
	AvailabilityTimeOffset float64 `xml:"availabilityTimeOffset,attr,omitempty"`
	// Timeline, when present, carries the authoritative per-segment
	// durations (irregular chunking, e.g. a short final chunk).
	Timeline *SegmentTimeline `xml:"SegmentTimeline,omitempty"`
}

// SegmentTimeline is the explicit duration list.
type SegmentTimeline struct {
	S []S `xml:"S"`
}

// S is one SegmentTimeline entry: a run of 1+Repeat segments of Duration
// timescale units starting at time T (T optional on continuation entries).
type S struct {
	T int64 `xml:"t,attr,omitempty"`
	D int64 `xml:"d,attr"`
	R int64 `xml:"r,attr,omitempty"`
}

// SegmentDurations expands a SegmentTemplate into per-segment durations.
// With a Timeline the expansion is exact; otherwise every segment has the
// nominal @duration and the caller's total bounds the count.
func (st *SegmentTemplate) SegmentDurations(total time.Duration) ([]time.Duration, error) {
	if st.Timescale <= 0 {
		return nil, fmt.Errorf("dash: non-positive timescale")
	}
	toDur := func(units int64) time.Duration {
		return time.Duration(units) * time.Second / time.Duration(st.Timescale)
	}
	if st.Timeline != nil {
		var out []time.Duration
		for i, s := range st.Timeline.S {
			if s.D <= 0 {
				return nil, fmt.Errorf("dash: SegmentTimeline S[%d] has non-positive duration", i)
			}
			if s.R < 0 {
				return nil, fmt.Errorf("dash: SegmentTimeline S[%d] has negative repeat", i)
			}
			for k := int64(0); k <= s.R; k++ {
				out = append(out, toDur(s.D))
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("dash: empty SegmentTimeline")
		}
		return out, nil
	}
	if st.Duration <= 0 {
		return nil, fmt.Errorf("dash: SegmentTemplate has neither @duration nor a SegmentTimeline")
	}
	seg := toDur(st.Duration)
	var out []time.Duration
	for covered := time.Duration(0); covered < total; covered += seg {
		d := seg
		if covered+d > total {
			d = total - covered
		}
		out = append(out, d)
	}
	return out, nil
}

// Representation is one encoded track.
type Representation struct {
	ID        string `xml:"id,attr"`
	Bandwidth int64  `xml:"bandwidth,attr"`
	Codecs    string `xml:"codecs,attr,omitempty"`
	// Video attributes.
	Width  int `xml:"width,attr,omitempty"`
	Height int `xml:"height,attr,omitempty"`
	// Audio attributes.
	AudioSamplingRate         int                        `xml:"audioSamplingRate,attr,omitempty"`
	AudioChannelConfiguration *AudioChannelConfiguration `xml:"AudioChannelConfiguration,omitempty"`
}

// AudioChannelConfiguration declares the channel count.
type AudioChannelConfiguration struct {
	SchemeIDURI string `xml:"schemeIdUri,attr"`
	Value       int    `xml:"value,attr"`
}

// FormatDuration renders a duration as ISO 8601 (e.g. "PT5M0S").
func FormatDuration(d time.Duration) string {
	if d < 0 {
		d = 0
	}
	total := d.Seconds()
	hours := int(total) / 3600
	minutes := (int(total) % 3600) / 60
	seconds := total - float64(hours*3600+minutes*60)
	var b strings.Builder
	b.WriteString("PT")
	if hours > 0 {
		fmt.Fprintf(&b, "%dH", hours)
	}
	if minutes > 0 {
		fmt.Fprintf(&b, "%dM", minutes)
	}
	//lint:ignore floateq exact integrality test only picks the rendering; both branches format correctly
	if seconds == float64(int(seconds)) {
		fmt.Fprintf(&b, "%dS", int(seconds))
	} else {
		fmt.Fprintf(&b, "%.3fS", seconds)
	}
	return b.String()
}

var isoDurationRe = regexp.MustCompile(`^PT(?:(\d+)H)?(?:(\d+)M)?(?:(\d+(?:\.\d+)?)S)?$`)

// ParseDuration parses an ISO 8601 time duration ("PT1H2M3.5S").
func ParseDuration(s string) (time.Duration, error) {
	m := isoDurationRe.FindStringSubmatch(s)
	if m == nil || (m[1] == "" && m[2] == "" && m[3] == "") {
		return 0, fmt.Errorf("dash: bad ISO 8601 duration %q", s)
	}
	var totalMs int64
	if m[1] != "" {
		h, _ := strconv.Atoi(m[1])
		totalMs += int64(h) * 3_600_000
	}
	if m[2] != "" {
		min, _ := strconv.Atoi(m[2])
		totalMs += int64(min) * 60_000
	}
	if m[3] != "" {
		sec, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return 0, fmt.Errorf("dash: bad seconds in %q", s)
		}
		// Millisecond precision, computed exactly (FormatDuration emits at
		// most three decimals).
		totalMs += int64(sec*1000 + 0.5)
	}
	return time.Duration(totalMs) * time.Millisecond, nil
}

var resolutionWH = map[string][2]int{
	"144p":  {256, 144},
	"240p":  {426, 240},
	"360p":  {640, 360},
	"480p":  {854, 480},
	"720p":  {1280, 720},
	"1080p": {1920, 1080},
}

// Generate builds the MPD for content: one video and one audio Adaptation
// Set, Representations declaring the tracks' DeclaredBitrate — exactly the
// information the paper's Table 1 "Declared Bitrate for DASH" column feeds
// to DASH clients.
func Generate(c *media.Content) *MPD {
	videoSet := AdaptationSet{
		ContentType:      "video",
		MimeType:         "video/mp4",
		SegmentAlignment: true,
		SegmentTemplate: &SegmentTemplate{
			Media:          "video/$RepresentationID$/seg-$Number$.m4s",
			Initialization: "video/$RepresentationID$/init.mp4",
			Duration:       nominalDurationFor(c, media.Video),
			Timescale:      1000,
			Timeline:       timelineFor(c, media.Video),
		},
	}
	for _, v := range c.VideoTracks {
		wh := resolutionWH[v.Resolution]
		videoSet.Representations = append(videoSet.Representations, Representation{
			ID:        v.ID,
			Bandwidth: int64(v.DeclaredBitrate),
			Codecs:    "avc1.4d401f",
			Width:     wh[0],
			Height:    wh[1],
		})
	}
	audioSet := AdaptationSet{
		ContentType:      "audio",
		MimeType:         "audio/mp4",
		SegmentAlignment: true,
		SegmentTemplate: &SegmentTemplate{
			Media:          "audio/$RepresentationID$/seg-$Number$.m4s",
			Initialization: "audio/$RepresentationID$/init.mp4",
			Duration:       nominalDurationFor(c, media.Audio),
			Timescale:      1000,
			Timeline:       timelineFor(c, media.Audio),
		},
	}
	for _, a := range c.AudioTracks {
		rep := Representation{
			ID:                a.ID,
			Bandwidth:         int64(a.DeclaredBitrate),
			Codecs:            "mp4a.40.2",
			AudioSamplingRate: a.SampleRateHz,
		}
		if a.Channels > 0 {
			rep.AudioChannelConfiguration = &AudioChannelConfiguration{
				SchemeIDURI: "urn:mpeg:dash:23003:3:audio_channel_configuration:2011",
				Value:       a.Channels,
			}
		}
		audioSet.Representations = append(audioSet.Representations, rep)
	}
	return &MPD{
		Xmlns:                     "urn:mpeg:dash:schema:mpd:2011",
		Profiles:                  "urn:mpeg:dash:profile:isoff-live:2011",
		Type:                      "static",
		MediaPresentationDuration: FormatDuration(c.Duration),
		MinBufferTime:             FormatDuration(2 * time.Second),
		Periods: []Period{{
			ID:             "0",
			Duration:       FormatDuration(c.Duration),
			AdaptationSets: []AdaptationSet{videoSet, audioSet},
		}},
	}
}

// timelineFor emits an explicit SegmentTimeline for one track type when the
// type's timeline cannot be expressed by @duration alone: shaped content
// (full run-length-encoded table) or a final chunk shorter than the nominal
// duration. Uniform exact-multiple content returns nil, keeping those MPDs
// byte-identical to pre-shaping output.
func timelineFor(c *media.Content, t media.Type) *SegmentTimeline {
	n := c.NumChunksOf(t)
	if c.Irregular(t) {
		// Declared-variable timeline: run-length encode the boundary table.
		var ss []S
		for i := 0; i < n; i++ {
			d := int64(c.ChunkDurationOf(t, i) / time.Millisecond)
			if len(ss) > 0 && ss[len(ss)-1].D == d {
				ss[len(ss)-1].R++
				continue
			}
			ss = append(ss, S{D: d})
		}
		return &SegmentTimeline{S: ss}
	}
	last := c.ChunkDurationOf(t, n-1)
	if last == c.ChunkDuration || n < 2 {
		return nil
	}
	full := int64(c.ChunkDuration / time.Millisecond)
	return &SegmentTimeline{S: []S{
		{T: 0, D: full, R: int64(n - 2)},
		{D: int64(last / time.Millisecond)},
	}}
}

// nominalDurationFor returns the @duration attribute value for one track
// type: the nominal chunk duration in ms, or 0 (attribute omitted) for
// shaped timelines, where SegmentTimeline is authoritative and a nominal
// value would invite clients to do exactly the division arithmetic this
// package stopped trusting.
func nominalDurationFor(c *media.Content, t media.Type) int64 {
	if c.Irregular(t) {
		return 0
	}
	return int64(c.ChunkDuration / time.Millisecond)
}

// Encode writes the MPD as indented XML with a declaration header.
func (m *MPD) Encode(w io.Writer) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(m); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Parse reads an MPD document.
func Parse(r io.Reader) (*MPD, error) {
	var m MPD
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("dash: %w", err)
	}
	if len(m.Periods) == 0 {
		return nil, fmt.Errorf("dash: MPD has no Period")
	}
	return &m, nil
}

// Ladders reconstructs track ladders from a parsed MPD. Only the declared
// bandwidth is knowable from a manifest, so AvgBitrate and PeakBitrate are
// set to it — exactly the information position of a real DASH client.
func Ladders(m *MPD) (video, audio media.Ladder, err error) {
	for _, p := range m.Periods {
		for _, as := range p.AdaptationSets {
			for _, rep := range as.Representations {
				tr := &media.Track{
					ID:              rep.ID,
					AvgBitrate:      media.Bps(rep.Bandwidth),
					PeakBitrate:     media.Bps(rep.Bandwidth),
					DeclaredBitrate: media.Bps(rep.Bandwidth),
				}
				switch as.ContentType {
				case "video":
					tr.Type = media.Video
					video = append(video, tr)
				case "audio":
					tr.Type = media.Audio
					tr.SampleRateHz = rep.AudioSamplingRate
					if rep.AudioChannelConfiguration != nil {
						tr.Channels = rep.AudioChannelConfiguration.Value
					}
					audio = append(audio, tr)
				default:
					return nil, nil, fmt.Errorf("dash: unsupported contentType %q", as.ContentType)
				}
			}
		}
	}
	if err := video.Validate(); err != nil {
		return nil, nil, fmt.Errorf("dash: video: %w", err)
	}
	if err := audio.Validate(); err != nil {
		return nil, nil, fmt.Errorf("dash: audio: %w", err)
	}
	return video, audio, nil
}
