package dash

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"demuxabr/internal/media"
)

func TestFormatParseDuration(t *testing.T) {
	cases := []struct {
		d time.Duration
		s string
	}{
		{5 * time.Minute, "PT5M0S"},
		{2 * time.Second, "PT2S"},
		{time.Hour + 2*time.Minute + 3*time.Second, "PT1H2M3S"},
		{1500 * time.Millisecond, "PT1.500S"},
		{0, "PT0S"},
	}
	for _, tc := range cases {
		if got := FormatDuration(tc.d); got != tc.s {
			t.Errorf("FormatDuration(%v) = %q, want %q", tc.d, got, tc.s)
		}
		back, err := ParseDuration(tc.s)
		if err != nil {
			t.Errorf("ParseDuration(%q): %v", tc.s, err)
		}
		if back != tc.d {
			t.Errorf("ParseDuration(%q) = %v, want %v", tc.s, back, tc.d)
		}
	}
	for _, bad := range []string{"", "5M", "PT", "PTxS", "P1D"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q) should fail", bad)
		}
	}
}

func TestDurationRoundTripProperty(t *testing.T) {
	f := func(ms uint32) bool {
		d := time.Duration(ms%86_400_000) * time.Millisecond
		got, err := ParseDuration(FormatDuration(d))
		return err == nil && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateRoundTrip(t *testing.T) {
	c := media.DramaShow()
	m := Generate(c)
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse failed: %v\n%s", err, buf.String())
	}
	if got.Type != "static" {
		t.Errorf("type = %q", got.Type)
	}
	dur, err := ParseDuration(got.MediaPresentationDuration)
	if err != nil || dur != c.Duration {
		t.Errorf("duration = %v (%v), want %v", dur, err, c.Duration)
	}
	video, audio, err := Ladders(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(video) != 6 || len(audio) != 3 {
		t.Fatalf("ladders = %d/%d, want 6/3", len(video), len(audio))
	}
	// Table 1 declared bitrates must survive the round trip.
	wantDecl := map[string]float64{
		"V1": 111, "V2": 246, "V3": 473, "V4": 914, "V5": 1852, "V6": 3746,
		"A1": 128, "A2": 196, "A3": 384,
	}
	for _, tr := range append(video[:len(video):len(video)], audio...) {
		if tr.DeclaredBitrate != media.Kbps(wantDecl[tr.ID]) {
			t.Errorf("%s declared = %v, want %v Kbps", tr.ID, tr.DeclaredBitrate, wantDecl[tr.ID])
		}
	}
	// Audio attributes preserved.
	if audio[1].Channels != 6 || audio[1].SampleRateHz != 48000 {
		t.Errorf("A2 attrs = %d ch %d Hz", audio[1].Channels, audio[1].SampleRateHz)
	}
}

func TestMPDDeclaresPerTrackNotCombos(t *testing.T) {
	// The §2.3 structural point: an MPD has M+N Representations, not M*N
	// variants — no mechanism to restrict pairings.
	c := media.DramaShow()
	m := Generate(c)
	reps := 0
	for _, as := range m.Periods[0].AdaptationSets {
		reps += len(as.Representations)
	}
	if reps != len(c.VideoTracks)+len(c.AudioTracks) {
		t.Errorf("%d representations, want %d", reps, len(c.VideoTracks)+len(c.AudioTracks))
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("not xml")); err == nil {
		t.Error("non-XML should fail")
	}
	if _, err := Parse(strings.NewReader(`<MPD xmlns="urn:mpeg:dash:schema:mpd:2011"></MPD>`)); err == nil {
		t.Error("MPD without Period should fail")
	}
}

func TestLaddersRejectsUnknownContentType(t *testing.T) {
	in := `<MPD xmlns="urn:mpeg:dash:schema:mpd:2011"><Period>
	<AdaptationSet contentType="text"><Representation id="T1" bandwidth="100"/></AdaptationSet>
	</Period></MPD>`
	m, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Ladders(m); err == nil {
		t.Error("unknown contentType should fail")
	}
}

func TestLaddersRequireSortedBitrates(t *testing.T) {
	in := `<MPD xmlns="urn:mpeg:dash:schema:mpd:2011"><Period>
	<AdaptationSet contentType="video"><Representation id="V2" bandwidth="200"/><Representation id="V1" bandwidth="100"/></AdaptationSet>
	<AdaptationSet contentType="audio"><Representation id="A1" bandwidth="50"/></AdaptationSet>
	</Period></MPD>`
	m, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Ladders(m); err == nil {
		t.Error("unsorted representations should fail ladder validation")
	}
}

func TestSegmentTemplate(t *testing.T) {
	c := media.DramaShow()
	m := Generate(c)
	st := m.Periods[0].AdaptationSets[0].SegmentTemplate
	if st == nil {
		t.Fatal("missing SegmentTemplate")
	}
	if st.Duration != 5000 || st.Timescale != 1000 {
		t.Errorf("segment duration = %d/%d, want 5000/1000", st.Duration, st.Timescale)
	}
	if !strings.Contains(st.Media, "$RepresentationID$") || !strings.Contains(st.Media, "$Number$") {
		t.Errorf("media template = %q", st.Media)
	}
}

func TestSegmentTimelineRoundTrip(t *testing.T) {
	// 17 s of 5 s chunks: 3 full + one 2 s chunk, expressible only with a
	// SegmentTimeline.
	c := media.MustNewContent(media.ContentSpec{
		Name:          "odd",
		Duration:      17 * time.Second,
		ChunkDuration: 5 * time.Second,
		VideoTracks:   media.DramaVideoLadder(),
		AudioTracks:   media.DramaAudioLadder(),
	})
	var buf bytes.Buffer
	if err := Generate(c).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Periods[0].AdaptationSets[0].SegmentTemplate
	if st.Timeline == nil {
		t.Fatal("irregular content should emit a SegmentTimeline")
	}
	durs, err := st.SegmentDurations(c.Duration)
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{5 * time.Second, 5 * time.Second, 5 * time.Second, 2 * time.Second}
	if len(durs) != len(want) {
		t.Fatalf("durations = %v", durs)
	}
	for i := range want {
		if durs[i] != want[i] {
			t.Errorf("duration %d = %v, want %v", i, durs[i], want[i])
		}
	}
}

func TestSegmentTimelineOmittedWhenRegular(t *testing.T) {
	m := Generate(media.DramaShow()) // 300 s / 5 s: perfectly regular
	if m.Periods[0].AdaptationSets[0].SegmentTemplate.Timeline != nil {
		t.Error("regular chunking should not emit a timeline")
	}
}

func TestSegmentDurationsFromNominal(t *testing.T) {
	st := &SegmentTemplate{Duration: 5000, Timescale: 1000}
	durs, err := st.SegmentDurations(12 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{5 * time.Second, 5 * time.Second, 2 * time.Second}
	if len(durs) != 3 || durs[2] != want[2] {
		t.Errorf("durations = %v, want %v", durs, want)
	}
}

func TestSegmentDurationsErrors(t *testing.T) {
	cases := []*SegmentTemplate{
		{Duration: 5000, Timescale: 0},
		{Timescale: 1000},
		{Timescale: 1000, Timeline: &SegmentTimeline{S: []S{{D: 0}}}},
		{Timescale: 1000, Timeline: &SegmentTimeline{S: []S{{D: 5, R: -2}}}},
		{Timescale: 1000, Timeline: &SegmentTimeline{}},
	}
	for i, st := range cases {
		if _, err := st.SegmentDurations(10 * time.Second); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}
