package dash

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"demuxabr/internal/media"
)

// randomContent synthesizes a valid demuxed asset with random ladders.
func randomContent(rng *rand.Rand) *media.Content {
	nv, na := rng.Intn(6)+1, rng.Intn(4)+1
	video := make(media.Ladder, nv)
	rate := 100.0 + float64(rng.Intn(200))
	for i := range video {
		video[i] = &media.Track{
			ID: fmt.Sprintf("V%d", i+1), Type: media.Video,
			AvgBitrate: media.Kbps(rate), PeakBitrate: media.Kbps(rate * 1.5),
			DeclaredBitrate: media.Kbps(rate * 1.2),
			Resolution:      "480p",
		}
		rate *= 1.4 + rng.Float64()
	}
	audio := make(media.Ladder, na)
	rate = 32 + float64(rng.Intn(64))
	for i := range audio {
		audio[i] = &media.Track{
			ID: fmt.Sprintf("A%d", i+1), Type: media.Audio,
			AvgBitrate: media.Kbps(rate), PeakBitrate: media.Kbps(rate * 1.05),
			DeclaredBitrate: media.Kbps(rate),
			Channels:        2, SampleRateHz: 48000,
		}
		rate *= 1.5 + rng.Float64()
	}
	return media.MustNewContent(media.ContentSpec{
		Name:          "random",
		Duration:      time.Duration(rng.Intn(120)+10) * time.Second,
		ChunkDuration: time.Duration(rng.Intn(8)+2) * time.Second,
		VideoTracks:   video,
		AudioTracks:   audio,
		Model:         media.CBRChunkModel(),
	})
}

// Property: any random content's MPD round trips: same track count, IDs,
// declared bandwidths, duration, and chunking.
func TestMPDRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomContent(rng)
		var buf bytes.Buffer
		if err := Generate(c).Encode(&buf); err != nil {
			return false
		}
		m, err := Parse(&buf)
		if err != nil {
			return false
		}
		video, audio, err := Ladders(m)
		if err != nil {
			return false
		}
		if len(video) != len(c.VideoTracks) || len(audio) != len(c.AudioTracks) {
			return false
		}
		for i, v := range video {
			if v.ID != c.VideoTracks[i].ID || v.DeclaredBitrate != c.VideoTracks[i].DeclaredBitrate {
				return false
			}
		}
		for i, a := range audio {
			if a.ID != c.AudioTracks[i].ID || a.DeclaredBitrate != c.AudioTracks[i].DeclaredBitrate ||
				a.Channels != c.AudioTracks[i].Channels {
				return false
			}
		}
		dur, err := ParseDuration(m.MediaPresentationDuration)
		return err == nil && dur == c.Duration
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Parser robustness: arbitrary XML-ish junk must never panic.
func TestParseNeverPanics(t *testing.T) {
	f := func(junk string) bool {
		_, _ = Parse(bytes.NewBufferString(junk))
		_, _ = Parse(bytes.NewBufferString("<MPD>" + junk + "</MPD>"))
		_, _ = ParseDuration(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
