package dash

import (
	"bytes"
	"strings"
	"testing"

	"demuxabr/internal/media"
)

func FuzzParse(f *testing.F) {
	var seed bytes.Buffer
	_ = Generate(media.DramaShow()).Encode(&seed)
	f.Add(seed.String())
	f.Add("<MPD></MPD>")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			t.Fatalf("accepted MPD failed to re-encode: %v", err)
		}
		if _, err := Parse(&buf); err != nil {
			t.Fatalf("re-encoded MPD failed to parse: %v", err)
		}
	})
}

func FuzzParseDuration(f *testing.F) {
	f.Add("PT5M0S")
	f.Add("PT1.5S")
	f.Add("P1D")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ParseDuration(input)
		if err != nil {
			return
		}
		// Accepted durations must survive a format/parse round trip.
		back, err := ParseDuration(FormatDuration(d))
		if err != nil || back != d {
			t.Fatalf("round trip failed for %q: %v -> %v (%v)", input, d, back, err)
		}
	})
}
