package dash

import (
	"bytes"
	"os"
	"testing"

	"demuxabr/internal/media"
)

// TestGoldenMPD pins the exact serialized MPD for the paper's content —
// format drift (attribute order, duration rendering, indentation) breaks
// this test deliberately, because downstream parsers key on the bytes.
func TestGoldenMPD(t *testing.T) {
	want, err := os.ReadFile("testdata/drama.mpd")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Generate(media.DramaShow()).Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("generated MPD differs from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.String(), want)
	}
}

// TestGoldenMPDParses double-checks that the golden artifact itself round
// trips through the parser.
func TestGoldenMPDParses(t *testing.T) {
	f, err := os.Open("testdata/drama.mpd")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	video, audio, err := Ladders(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(video) != 6 || len(audio) != 3 {
		t.Errorf("golden ladders %d/%d", len(video), len(audio))
	}
}
