package httpclient

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/faults"
	"demuxabr/internal/manifest/dash"
	"demuxabr/internal/media"
	"demuxabr/internal/originserver"
)

// pinned is a joint model that always selects one combination — fault tests
// need to know exactly which segment paths will be requested.
type pinned struct {
	abr.NopObserver
	combo media.Combo
}

func (p *pinned) Name() string                      { return "pinned" }
func (p *pinned) SelectCombo(abr.State) media.Combo { return p.combo }

// flakyOrigin wraps a faithful origin with a per-path script of misbehaviors
// consumed one entry per request: "404", "503", "reset", "hang", or "ok"
// (pass through). Requests beyond the script pass through.
type flakyOrigin struct {
	inner http.Handler

	mu     sync.Mutex
	script map[string][]string
	hits   map[string]int
}

func newFlakyOrigin(inner http.Handler, script map[string][]string) *flakyOrigin {
	return &flakyOrigin{inner: inner, script: script, hits: make(map[string]int)}
}

func (f *flakyOrigin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	n := f.hits[r.URL.Path]
	f.hits[r.URL.Path] = n + 1
	steps := f.script[r.URL.Path]
	f.mu.Unlock()
	step := "ok"
	if n < len(steps) {
		step = steps[n]
	}
	switch step {
	case "404":
		http.Error(w, "scripted 404", http.StatusNotFound)
	case "503":
		http.Error(w, "scripted 503", http.StatusServiceUnavailable)
	case "reset":
		panic(http.ErrAbortHandler)
	case "hang":
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
		panic(http.ErrAbortHandler)
	default:
		f.inner.ServeHTTP(w, r)
	}
}

// fastPolicy keeps retry latency test-sized.
func fastPolicy() *faults.Policy {
	pol := faults.DefaultPolicy()
	pol.RequestTimeout = 500 * time.Millisecond
	pol.BaseBackoff = 5 * time.Millisecond
	pol.MaxBackoff = 20 * time.Millisecond
	return &pol
}

func lowCombo(m *Manifest) media.Combo {
	return media.Combo{Video: m.Video[0], Audio: m.Audio[0]}
}

func TestManifestFetchFailureSurfacesStatus(t *testing.T) {
	content := tinyContent()
	flaky := newFlakyOrigin(originserver.New(content, originserver.Options{}).Handler(),
		map[string][]string{"/manifest.mpd": {"503"}})
	srv := httptest.NewServer(flaky)
	defer srv.Close()
	_, err := FetchManifest(context.Background(), srv.Client(), srv.URL)
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("want a 503 manifest error, got %v", err)
	}
	// The origin recovered: the next fetch must succeed over the same client.
	if _, err := FetchManifest(context.Background(), srv.Client(), srv.URL); err != nil {
		t.Fatalf("recovered origin still failing: %v", err)
	}
}

func TestMidSessionFailureReturnsPartialReport(t *testing.T) {
	content := tinyContent()
	flaky := newFlakyOrigin(originserver.New(content, originserver.Options{}).Handler(),
		map[string][]string{"/video/V1/seg-2.m4s": {"404"}})
	srv := httptest.NewServer(flaky)
	defer srv.Close()
	m, err := FetchManifest(context.Background(), srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Stream(context.Background(), m, Config{
		BaseURL:      srv.URL,
		Model:        &pinned{combo: lowCombo(m)},
		HTTPClient:   srv.Client(),
		TargetBuffer: 30 * time.Second,
	})
	if err == nil {
		t.Fatal("policy-less session survived a 404")
	}
	if rep == nil {
		t.Fatal("error return discarded the partial report")
	}
	if len(rep.Chunks) != 2 {
		t.Errorf("partial report carries %d chunks, want the 2 fetched before the failure", len(rep.Chunks))
	}
	if rep.Elapsed <= 0 {
		t.Error("partial report missing Elapsed")
	}
	if len(rep.Faults) != 1 || rep.Faults[0].Index != 2 || rep.Faults[0].Type != media.Video {
		t.Errorf("fault log = %+v, want one video fault at index 2", rep.Faults)
	}
}

func TestPolicyRetriesScriptedTransients(t *testing.T) {
	content := tinyContent()
	// Three different transient failure modes, one per early video segment;
	// every retry hits a recovered origin.
	flaky := newFlakyOrigin(originserver.New(content, originserver.Options{}).Handler(),
		map[string][]string{
			"/video/V1/seg-0.m4s": {"503"},
			"/video/V1/seg-1.m4s": {"reset"},
			"/video/V1/seg-2.m4s": {"hang"},
			"/audio/A1/seg-1.m4s": {"404"},
		})
	srv := httptest.NewServer(flaky)
	defer srv.Close()
	// Fresh connections per request: net/http transparently replays a GET
	// whose reused keep-alive connection was reset, which would absorb the
	// scripted reset before the policy ever saw it.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	m, err := FetchManifest(context.Background(), client, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Stream(context.Background(), m, Config{
		BaseURL:      srv.URL,
		Model:        &pinned{combo: lowCombo(m)},
		HTTPClient:   client,
		TargetBuffer: 30 * time.Second,
		MaxChunks:    5,
		Robustness:   fastPolicy(),
	})
	if err != nil {
		t.Fatalf("robust session failed: %v (report %+v)", err, rep)
	}
	if len(rep.Chunks) != 5 {
		t.Fatalf("fetched %d chunks, want 5", len(rep.Chunks))
	}
	if len(rep.Faults) != 4 {
		t.Errorf("recorded %d faults, want 4 (one per scripted failure)", len(rep.Faults))
	}
	if rep.Retries != 4 {
		t.Errorf("retries = %d, want 4", rep.Retries)
	}
	if rep.Failovers != 0 {
		t.Errorf("failovers = %d for transient faults, want 0", rep.Failovers)
	}
}

func TestPersistentTrackFailureFailsOverHTTP(t *testing.T) {
	content := tinyContent()
	// A1 is permanently gone at the origin. The session must finish on a
	// different audio track.
	plan := &faults.Plan{
		Seed: 4, Rate: 1,
		Kinds:          []faults.Kind{faults.HTTP404},
		Targets:        []string{"A1"},
		MaxPersistence: -1,
	}
	srv := httptest.NewServer(originserver.New(content, originserver.Options{Faults: plan}).Handler())
	defer srv.Close()
	m, err := FetchManifest(context.Background(), srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Stream(context.Background(), m, Config{
		BaseURL:      srv.URL,
		Model:        &pinned{combo: lowCombo(m)}, // keeps asking for A1
		HTTPClient:   srv.Client(),
		TargetBuffer: 30 * time.Second,
		MaxChunks:    4,
		Robustness:   fastPolicy(),
	})
	if err != nil {
		t.Fatalf("failover session failed: %v", err)
	}
	if rep.Failovers == 0 {
		t.Fatal("no failover recorded for a dead track")
	}
	for _, ch := range rep.Chunks {
		if ch.Combo.Audio.ID == "A1" {
			t.Fatalf("chunk %d reported as fetched from the dead track", ch.Index)
		}
	}
}

func TestTruncatedBodyDetected(t *testing.T) {
	content := tinyContent()
	plan := &faults.Plan{
		Seed: 8, Rate: 1,
		Kinds:          []faults.Kind{faults.Truncate},
		Targets:        []string{"V1"},
		MaxPersistence: 1,
	}
	srv := httptest.NewServer(originserver.New(content, originserver.Options{Faults: plan}).Handler())
	defer srv.Close()
	m, err := FetchManifest(context.Background(), srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	// Policy off: the first truncated body must fail the session, and the
	// partial report must name the truncation.
	rep, err := Stream(context.Background(), m, Config{
		BaseURL:      srv.URL,
		Model:        &pinned{combo: lowCombo(m)},
		HTTPClient:   srv.Client(),
		TargetBuffer: 30 * time.Second,
		MaxChunks:    2,
	})
	if err == nil {
		t.Fatal("truncated body passed as success")
	}
	// net/http reports the short read as unexpected EOF when it enforces
	// the declared Content-Length itself; the client's own length check
	// catches transports that don't.
	if !strings.Contains(err.Error(), "truncated body") && !strings.Contains(err.Error(), "unexpected EOF") {
		t.Fatalf("error %v does not identify the truncation", err)
	}
	if rep == nil || len(rep.Faults) == 0 {
		t.Fatal("truncation missing from the partial report's fault log")
	}
	// Policy on over a fresh origin (fresh attempt counters): the transient
	// truncation clears on retry and the session completes.
	srv2 := httptest.NewServer(originserver.New(content, originserver.Options{Faults: plan}).Handler())
	defer srv2.Close()
	rep, err = Stream(context.Background(), m, Config{
		BaseURL:      srv2.URL,
		Model:        &pinned{combo: lowCombo(m)},
		HTTPClient:   srv2.Client(),
		TargetBuffer: 30 * time.Second,
		MaxChunks:    2,
		Robustness:   fastPolicy(),
	})
	if err != nil {
		t.Fatalf("robust session failed on transient truncation: %v", err)
	}
	if rep.Retries == 0 {
		t.Error("no retries recorded for transient truncations")
	}
}

func TestStreamSurvivesPlannedFaultMix(t *testing.T) {
	content := tinyContent()
	plan := &faults.Plan{
		Seed: 17, Rate: 0.4,
		Kinds:          []faults.Kind{faults.HTTP404, faults.HTTP503, faults.Reset},
		MaxPersistence: 1,
	}
	srv := httptest.NewServer(originserver.New(content, originserver.Options{Faults: plan}).Handler())
	defer srv.Close()
	m, err := FetchManifest(context.Background(), srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Stream(context.Background(), m, Config{
		BaseURL:      srv.URL,
		Model:        &pinned{combo: lowCombo(m)},
		HTTPClient:   srv.Client(),
		TargetBuffer: 30 * time.Second,
		Robustness:   fastPolicy(),
	})
	if err != nil {
		t.Fatalf("robust session failed under a 40%% transient fault mix: %v", err)
	}
	if len(rep.Chunks) != content.NumChunks() {
		t.Fatalf("fetched %d chunks, want %d", len(rep.Chunks), content.NumChunks())
	}
	if len(rep.Faults) == 0 || rep.Retries == 0 {
		t.Errorf("fault mix produced faults=%d retries=%d, want both > 0", len(rep.Faults), rep.Retries)
	}
}

// mutatedMPDServer serves a Generate'd MPD after fn edits it, plus faithful
// segments from the inner origin.
func mutatedMPDServer(t *testing.T, content *media.Content, fn func(*dash.MPD)) *httptest.Server {
	t.Helper()
	inner := originserver.New(content, originserver.Options{}).Handler()
	mux := http.NewServeMux()
	mux.HandleFunc("/manifest.mpd", func(w http.ResponseWriter, r *http.Request) {
		mpd := dash.Generate(content)
		fn(mpd)
		w.Header().Set("Content-Type", "application/dash+xml")
		if err := mpd.Encode(w); err != nil {
			t.Errorf("encode: %v", err)
		}
	})
	mux.Handle("/", inner)
	return httptest.NewServer(mux)
}

func TestFetchManifestHonorsPerSetTemplates(t *testing.T) {
	// Templates that do NOT start with "<type>/" — the old client rewrote
	// the video template with a "video/" -> "$TYPE$/" substitution, which
	// broke any other layout and silently mis-addressed audio segments.
	content := tinyContent()
	srv := mutatedMPDServer(t, content, func(mpd *dash.MPD) {
		sets := mpd.Periods[0].AdaptationSets
		sets[0].SegmentTemplate.Media = "media/v/$RepresentationID$-$Number$.m4s"
		sets[1].SegmentTemplate.Media = "media/a/$RepresentationID$-$Number$.m4s"
	})
	defer srv.Close()
	m, err := FetchManifest(context.Background(), srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.SegmentPath(m.Video[2], 7); got != "media/v/V3-7.m4s" {
		t.Errorf("video segment path = %q", got)
	}
	if got := m.SegmentPath(m.Audio[1], 0); got != "media/a/A2-0.m4s" {
		t.Errorf("audio segment path = %q", got)
	}
}

func TestFetchManifestRejectsUnaddressableTemplate(t *testing.T) {
	content := tinyContent()
	srv := mutatedMPDServer(t, content, func(mpd *dash.MPD) {
		mpd.Periods[0].AdaptationSets[1].SegmentTemplate.Media = "audio/fixed-name.m4s"
	})
	defer srv.Close()
	_, err := FetchManifest(context.Background(), srv.Client(), srv.URL)
	if err == nil || !strings.Contains(err.Error(), "cannot address segments") {
		t.Fatalf("unaddressable template accepted: %v", err)
	}
}

func TestHLSNumChunksIsMinAcrossTracks(t *testing.T) {
	// An encoder cut one track short: only positions every track can serve
	// are playable. The old implementation returned whichever track the map
	// range visited first.
	m := &HLSManifest{segURIs: map[string][]string{
		"V1": {"a", "b", "c", "d", "e"},
		"V2": {"a", "b", "c"},
		"A1": {"a", "b", "c", "d"},
	}}
	for i := 0; i < 20; i++ { // map order is randomized; exercise it
		if got := m.NumChunks(); got != 3 {
			t.Fatalf("NumChunks = %d, want 3 (shortest track)", got)
		}
	}
	if got := (&HLSManifest{segURIs: map[string][]string{}}).NumChunks(); got != 0 {
		t.Fatalf("empty manifest NumChunks = %d", got)
	}
}
