package httpclient

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"demuxabr/internal/abr/exoplayer"
	"demuxabr/internal/abr/jointabr"
	"demuxabr/internal/media"
	"demuxabr/internal/originserver"
)

func tinyContent() *media.Content {
	// 24 one-second chunks: long enough for the unshaped stream to build a
	// >10 s buffer (ExoPlayer's up-switch hysteresis), short enough to
	// download in well under a second on localhost.
	return media.MustNewContent(media.ContentSpec{
		Name:          "tiny",
		Duration:      24 * time.Second,
		ChunkDuration: time.Second,
		VideoTracks:   media.DramaVideoLadder(),
		AudioTracks:   media.DramaAudioLadder(),
		Model:         media.CBRChunkModel(),
	})
}

func TestFetchManifest(t *testing.T) {
	content := tinyContent()
	srv := httptest.NewServer(originserver.New(content, originserver.Options{}).Handler())
	defer srv.Close()
	m, err := FetchManifest(context.Background(), srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Video) != 6 || len(m.Audio) != 3 {
		t.Fatalf("ladders %d/%d, want 6/3", len(m.Video), len(m.Audio))
	}
	if m.NumChunks() != content.NumChunks() {
		t.Errorf("chunks = %d, want %d", m.NumChunks(), content.NumChunks())
	}
	if m.ChunkDuration != time.Second {
		t.Errorf("chunk duration = %v, want 1s", m.ChunkDuration)
	}
	if got := m.SegmentPath(m.Video[0], 3); got != "video/V1/seg-3.m4s" {
		t.Errorf("segment path = %q", got)
	}
	if got := m.SegmentPath(m.Audio[1], 0); got != "audio/A2/seg-0.m4s" {
		t.Errorf("audio segment path = %q", got)
	}
}

func TestFetchManifestBadURL(t *testing.T) {
	if _, err := FetchManifest(context.Background(), nil, "http://127.0.0.1:1"); err == nil {
		t.Error("unreachable origin should fail")
	}
}

func TestStreamEndToEndExoPlayer(t *testing.T) {
	content := tinyContent()
	srv := httptest.NewServer(originserver.New(content, originserver.Options{}).Handler())
	defer srv.Close()
	m, err := FetchManifest(context.Background(), srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	model := exoplayer.NewDASH(m.Video, m.Audio)
	rep, err := Stream(context.Background(), m, Config{
		BaseURL:      srv.URL,
		Model:        model,
		HTTPClient:   srv.Client(),
		TargetBuffer: 30 * time.Second, // no pacing pauses in tests
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Chunks) != content.NumChunks() {
		t.Fatalf("fetched %d chunks, want %d", len(rep.Chunks), content.NumChunks())
	}
	if rep.TotalBytes == 0 {
		t.Error("no bytes fetched")
	}
	// Unshaped localhost: the estimate should rocket, selections climb the
	// predetermined staircase, and every pair must be predetermined.
	pre := map[string]bool{}
	for _, cb := range model.Combos() {
		pre[cb.String()] = true
	}
	for _, ch := range rep.Chunks {
		if !pre[ch.Combo.String()] {
			t.Errorf("chunk %d: combo %s not predetermined", ch.Index, ch.Combo)
		}
	}
	last := rep.Chunks[len(rep.Chunks)-1].Combo
	if last.DeclaredBitrate() <= rep.Chunks[0].Combo.DeclaredBitrate() {
		t.Errorf("no upswitch on an unshaped link: first %s, last %s", rep.Chunks[0].Combo, last)
	}
}

func TestStreamEndToEndBestPractice(t *testing.T) {
	content := tinyContent()
	// Shape to ~1.5 Mbps: the best-practice player must hold a low-to-mid
	// H_sub combination and finish without error.
	shaper := originserver.NewTokenBucket(media.Kbps(1500), 16*1024)
	srv := httptest.NewServer(originserver.New(content, originserver.Options{Shaper: shaper}).Handler())
	defer srv.Close()
	m, err := FetchManifest(context.Background(), srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	allowed := media.PairCombos(m.Video, m.Audio)
	model := jointabr.New(allowed)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := Stream(ctx, m, Config{
		BaseURL:      srv.URL,
		Model:        model,
		HTTPClient:   srv.Client(),
		TargetBuffer: 30 * time.Second,
		MaxChunks:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Chunks) != 4 {
		t.Fatalf("fetched %d chunks, want 4", len(rep.Chunks))
	}
	inAllowed := func(cb media.Combo) bool {
		for _, a := range allowed {
			if a.String() == cb.String() {
				return true
			}
		}
		return false
	}
	for _, ch := range rep.Chunks {
		if !inAllowed(ch.Combo) {
			t.Errorf("chunk %d: combo %s outside the allowed list", ch.Index, ch.Combo)
		}
	}
}

func TestStreamCancellation(t *testing.T) {
	content := tinyContent()
	shaper := originserver.NewTokenBucket(media.Kbps(100), 1024) // crawl
	srv := httptest.NewServer(originserver.New(content, originserver.Options{Shaper: shaper}).Handler())
	defer srv.Close()
	m, err := FetchManifest(context.Background(), srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	_, err = Stream(ctx, m, Config{
		BaseURL:    srv.URL,
		Model:      exoplayer.NewDASH(m.Video, m.Audio),
		HTTPClient: srv.Client(),
	})
	if err == nil {
		t.Error("expected cancellation error on a crawling link")
	}
}

func TestStreamRequiresModel(t *testing.T) {
	if _, err := Stream(context.Background(), &Manifest{}, Config{}); err == nil {
		t.Error("nil model should fail")
	}
}

func TestFetchHLSRecoversTracks(t *testing.T) {
	content := tinyContent()
	srv := httptest.NewServer(originserver.New(content, originserver.Options{}).Handler())
	defer srv.Close()
	m, err := FetchHLS(context.Background(), srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Variants) != 6 {
		t.Fatalf("variants = %d, want 6 (H_sub)", len(m.Variants))
	}
	if len(m.AudioOrder) != 3 || m.AudioOrder[0].ID != "A1" {
		t.Fatalf("audio order = %v", m.AudioOrder)
	}
	if m.NumChunks() != content.NumChunks() || m.ChunkDur() != time.Second {
		t.Errorf("chunks = %d/%v", m.NumChunks(), m.ChunkDur())
	}
	// Recovered bitrates must be near the true per-track averages — the
	// §4.1 point: the information IS available one level down.
	for _, v := range m.Variants {
		truth := content.TrackByID(v.Video.ID)
		rel := float64(v.Video.AvgBitrate-truth.AvgBitrate) / float64(truth.AvgBitrate)
		if rel < -0.1 || rel > 0.1 {
			t.Errorf("%s recovered avg %v vs true %v", v.Video.ID, v.Video.AvgBitrate, truth.AvgBitrate)
		}
	}
	if got := m.SegmentPath(m.Variants[2].Video, 1); got != "video/V3/seg-1.m4s" {
		t.Errorf("segment path = %q", got)
	}
	if got := m.SegmentPath(m.Variants[0].Video, 999); got != "" {
		t.Errorf("out-of-range segment path = %q", got)
	}
}

func TestStreamHLSRepairedEndToEnd(t *testing.T) {
	// The full §4.1 flow over real HTTP: master playlist -> media
	// playlists -> per-track bitrates -> repaired joint adaptation.
	content := tinyContent()
	srv := httptest.NewServer(originserver.New(content, originserver.Options{}).Handler())
	defer srv.Close()
	m, err := FetchHLS(context.Background(), srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	model := exoplayer.NewHLSRepaired(m.Variants)
	rep, err := Stream(context.Background(), m, Config{
		BaseURL:      srv.URL,
		Model:        model,
		HTTPClient:   srv.Client(),
		TargetBuffer: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Chunks) != content.NumChunks() {
		t.Fatalf("chunks = %d, want %d", len(rep.Chunks), content.NumChunks())
	}
	listed := map[string]bool{}
	for _, v := range m.Variants {
		listed[v.String()] = true
	}
	audioSeen := map[string]bool{}
	for _, ch := range rep.Chunks {
		if !listed[ch.Combo.String()] {
			t.Errorf("chunk %d: %s not a listed variant", ch.Index, ch.Combo)
		}
		audioSeen[ch.Combo.Audio.ID] = true
	}
	// On an unshaped link the repaired player must climb to A3 — audio
	// adaptation works again.
	if !audioSeen["A3"] {
		t.Errorf("audio never reached A3: %v", audioSeen)
	}
}

func TestFetchHLSErrors(t *testing.T) {
	if _, err := FetchHLS(context.Background(), nil, "http://127.0.0.1:1"); err == nil {
		t.Error("unreachable origin should fail")
	}
}

func TestFetchCombinationsOutOfBand(t *testing.T) {
	// §4.1's short-term DASH workaround over real HTTP: the MPD gives the
	// ladders, /combinations.json gives the allowed pairings, and the
	// best-practice player streams strictly within them.
	content := tinyContent()
	srv := httptest.NewServer(originserver.New(content, originserver.Options{}).Handler())
	defer srv.Close()
	m, err := FetchManifest(context.Background(), srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	combos, err := FetchCombinations(context.Background(), srv.Client(), srv.URL, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) != 6 {
		t.Fatalf("combos = %d, want 6 (H_sub default)", len(combos))
	}
	wantNames := []string{"V1+A1", "V2+A1", "V3+A2", "V4+A2", "V5+A3", "V6+A3"}
	for i, cb := range combos {
		if cb.String() != wantNames[i] {
			t.Errorf("combo %d = %s, want %s", i, cb, wantNames[i])
		}
	}
	model := jointabr.New(combos)
	rep, err := Stream(context.Background(), m, Config{
		BaseURL:      srv.URL,
		Model:        model,
		HTTPClient:   srv.Client(),
		TargetBuffer: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	listed := map[string]bool{}
	for _, cb := range combos {
		listed[cb.String()] = true
	}
	for _, ch := range rep.Chunks {
		if !listed[ch.Combo.String()] {
			t.Errorf("chunk %d: %s outside the out-of-band list", ch.Index, ch.Combo)
		}
	}
}

func TestFetchCombinationsErrors(t *testing.T) {
	if _, err := FetchCombinations(context.Background(), nil, "http://127.0.0.1:1", &Manifest{}); err == nil {
		t.Error("unreachable origin should fail")
	}
}
