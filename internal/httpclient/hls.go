package httpclient

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"demuxabr/internal/manifest/hls"
	"demuxabr/internal/media"
)

// HLSManifest is the client's view of an HLS deployment built the §4.1 way:
// the master playlist provides the variant pairings and rendition order,
// and every second-level media playlist is downloaded up front so per-track
// bitrates are known before the first adaptation decision (the paper's
// "avoid lazy fetching" recommendation).
type HLSManifest struct {
	// Variants are the master playlist's combinations with recovered
	// per-track bitrates.
	Variants []media.Combo
	// AudioOrder is the rendition-list order (first = what a degraded
	// player would pin).
	AudioOrder []*media.Track
	// Duration and ChunkDuration come from the media playlists.
	Duration      time.Duration
	ChunkDuration time.Duration

	segURIs map[string][]string // track ID -> per-chunk URIs
	// segDurs is the video timeline's per-segment durations (EXTINF is
	// authoritative per segment; this client pairs A/V by index, so the
	// video timeline drives its playback clock).
	segDurs []time.Duration
}

// NumChunks implements Source. Media playlists can disagree on segment
// count (an encoder cut one track short); only positions every track can
// serve are playable, so the minimum across tracks governs.
func (m *HLSManifest) NumChunks() int {
	n := -1
	for _, uris := range m.segURIs {
		if n < 0 || len(uris) < n {
			n = len(uris)
		}
	}
	if n < 0 {
		return 0
	}
	return n
}

// Tracks implements Source: the distinct tracks of one type in manifest
// order (video from the variant list, audio from the rendition order).
func (m *HLSManifest) Tracks(t media.Type) []*media.Track {
	if t == media.Audio {
		return m.AudioOrder
	}
	var out []*media.Track
	seen := make(map[string]bool)
	for _, v := range m.Variants {
		if v.Video != nil && !seen[v.Video.ID] {
			seen[v.Video.ID] = true
			out = append(out, v.Video)
		}
	}
	return out
}

// ChunkDur implements Source.
func (m *HLSManifest) ChunkDur() time.Duration { return m.ChunkDuration }

// SegmentDurationAt implements Source: the EXTINF duration of segment idx.
func (m *HLSManifest) SegmentDurationAt(idx int) time.Duration {
	if idx < 0 || idx >= len(m.segDurs) {
		return m.ChunkDuration
	}
	return m.segDurs[idx]
}

// SegmentPath implements Source.
func (m *HLSManifest) SegmentPath(tr *media.Track, idx int) string {
	uris := m.segURIs[tr.ID]
	if idx < 0 || idx >= len(uris) {
		return ""
	}
	return uris[idx]
}

// FetchHLS downloads baseURL/master.m3u8 and every referenced media
// playlist, reconstructing tracks with true per-track bitrates from the
// playlists' byte ranges or EXT-X-BITRATE tags.
func FetchHLS(ctx context.Context, client *http.Client, baseURL string) (*HLSManifest, error) {
	if client == nil {
		client = http.DefaultClient
	}
	body, err := get(ctx, client, baseURL+"/master.m3u8")
	if err != nil {
		return nil, err
	}
	master, err := hls.ParseMaster(body)
	body.Close()
	if err != nil {
		return nil, err
	}

	out := &HLSManifest{segURIs: make(map[string][]string)}
	tracks := make(map[string]*media.Track) // by media playlist URI

	// fetchTrack loads one media playlist and synthesizes the track.
	fetchTrack := func(uri, id string, typ media.Type) (*media.Track, error) {
		if tr, ok := tracks[uri]; ok {
			return tr, nil
		}
		body, err := get(ctx, client, baseURL+"/"+uri)
		if err != nil {
			return nil, err
		}
		pl, err := hls.ParseMedia(body)
		body.Close()
		if err != nil {
			return nil, fmt.Errorf("httpclient: %s: %w", uri, err)
		}
		peak, avg, err := hls.TrackBitrate(pl)
		if err != nil {
			return nil, fmt.Errorf("httpclient: %s: %w", uri, err)
		}
		tr := &media.Track{
			ID:              id,
			Type:            typ,
			AvgBitrate:      avg,
			PeakBitrate:     peak,
			DeclaredBitrate: peak,
		}
		tracks[uri] = tr
		var total time.Duration
		for _, seg := range pl.Segments {
			out.segURIs[tr.ID] = append(out.segURIs[tr.ID], seg.URI)
			total += seg.Duration
			if out.ChunkDuration == 0 || seg.Duration > out.ChunkDuration {
				out.ChunkDuration = seg.Duration
			}
		}
		if typ == media.Video && out.segDurs == nil {
			for _, seg := range pl.Segments {
				out.segDurs = append(out.segDurs, seg.Duration)
			}
		}
		if total > out.Duration {
			out.Duration = total
		}
		return tr, nil
	}

	audioByGroup := make(map[string]*media.Track)
	for _, r := range master.Renditions {
		if r.Type != "AUDIO" {
			continue
		}
		tr, err := fetchTrack(r.URI, r.Name, media.Audio)
		if err != nil {
			return nil, err
		}
		audioByGroup[r.GroupID] = tr
		out.AudioOrder = append(out.AudioOrder, tr)
	}
	for i, v := range master.Variants {
		videoID := videoIDFromURI(v.URI)
		video, err := fetchTrack(v.URI, videoID, media.Video)
		if err != nil {
			return nil, err
		}
		audio := audioByGroup[v.AudioGroup]
		if audio == nil {
			return nil, fmt.Errorf("httpclient: variant %d references unknown audio group %q", i, v.AudioGroup)
		}
		out.Variants = append(out.Variants, media.Combo{Video: video, Audio: audio})
	}
	if len(out.Variants) == 0 {
		return nil, fmt.Errorf("httpclient: master playlist lists no variants")
	}
	return out, nil
}

// videoIDFromURI recovers the track name from "video/V3.m3u8".
func videoIDFromURI(uri string) string {
	base := uri
	if i := lastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := lastIndexByte(base, '.'); i >= 0 {
		base = base[:i]
	}
	return base
}

func lastIndexByte(s string, b byte) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// get issues a GET and returns the body for a 200 response.
func get(ctx context.Context, client *http.Client, url string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		drainAndClose(resp.Body)
		return nil, fmt.Errorf("httpclient: %s: %s", url, resp.Status)
	}
	return resp.Body, nil
}

// FetchCombinations retrieves the server's out-of-band allowed-combination
// document (§4.1's short-term workaround for DASH) and resolves it against
// the manifest's ladders.
func FetchCombinations(ctx context.Context, client *http.Client, baseURL string, m *Manifest) ([]media.Combo, error) {
	if client == nil {
		client = http.DefaultClient
	}
	body, err := get(ctx, client, baseURL+"/combinations.json")
	if err != nil {
		return nil, err
	}
	defer body.Close()
	var entries []struct {
		Video string `json:"video"`
		Audio string `json:"audio"`
	}
	if err := json.NewDecoder(body).Decode(&entries); err != nil {
		return nil, fmt.Errorf("httpclient: combinations: %w", err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("httpclient: empty combination list")
	}
	combos := make([]media.Combo, len(entries))
	for i, e := range entries {
		video := m.Video.ByID(e.Video)
		audio := m.Audio.ByID(e.Audio)
		if video == nil || audio == nil {
			return nil, fmt.Errorf("httpclient: combination %s+%s not in the manifest", e.Video, e.Audio)
		}
		combos[i] = media.Combo{Video: video, Audio: audio}
	}
	return combos, nil
}
