// Package httpclient is a real-time streaming client: it fetches a DASH
// manifest from an origin (package originserver or any server with the
// same layout), reconstructs the track ladders, and streams chunks over
// real HTTP while driving one of the library's ABR models — the end-to-end
// integration path complementing the discrete-event simulator.
package httpclient

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/manifest/dash"
	"demuxabr/internal/media"
)

// Manifest is the client's view of the stream, reconstructed from the MPD.
type Manifest struct {
	Video         media.Ladder
	Audio         media.Ladder
	Duration      time.Duration
	ChunkDuration time.Duration
	// segmentTemplate maps (representation ID, index) to a URL path.
	mediaTemplate string
}

// NumChunks returns the chunk count.
func (m *Manifest) NumChunks() int {
	n := int(m.Duration / m.ChunkDuration)
	if m.Duration%m.ChunkDuration != 0 {
		n++
	}
	return n
}

// SegmentPath expands the MPD's SegmentTemplate for a track and index into
// the origin-relative path.
func (m *Manifest) SegmentPath(tr *media.Track, idx int) string {
	p := strings.ReplaceAll(m.mediaTemplate, "$RepresentationID$", tr.ID)
	p = strings.ReplaceAll(p, "$Number$", fmt.Sprintf("%d", idx))
	return strings.ReplaceAll(p, "$TYPE$", tr.Type.String())
}

// ChunkDur implements Source.
func (m *Manifest) ChunkDur() time.Duration { return m.ChunkDuration }

// Source is the client's addressing view of a stream: how many chunks, how
// long each is, and where each track's segments live. Both the DASH
// Manifest and the HLSManifest implement it.
type Source interface {
	NumChunks() int
	ChunkDur() time.Duration
	SegmentPath(tr *media.Track, idx int) string
}

// FetchManifest downloads and parses baseURL/manifest.mpd. A nil client
// uses http.DefaultClient.
func FetchManifest(ctx context.Context, client *http.Client, baseURL string) (*Manifest, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/manifest.mpd", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httpclient: manifest: %s", resp.Status)
	}
	mpd, err := dash.Parse(resp.Body)
	if err != nil {
		return nil, err
	}
	video, audio, err := dash.Ladders(mpd)
	if err != nil {
		return nil, err
	}
	dur, err := dash.ParseDuration(mpd.MediaPresentationDuration)
	if err != nil {
		return nil, err
	}
	st := mpd.Periods[0].AdaptationSets[0].SegmentTemplate
	if st == nil || st.Timescale == 0 {
		return nil, fmt.Errorf("httpclient: MPD lacks a usable SegmentTemplate")
	}
	chunk := time.Duration(st.Duration) * time.Second / time.Duration(st.Timescale)
	if chunk <= 0 {
		return nil, fmt.Errorf("httpclient: non-positive chunk duration")
	}
	tmpl := st.Media
	tmpl = strings.TrimPrefix(tmpl, "video/")
	return &Manifest{
		Video:         video,
		Audio:         audio,
		Duration:      dur,
		ChunkDuration: chunk,
		mediaTemplate: "$TYPE$/" + tmpl,
	}, nil
}

// Config parameterizes a streaming run.
type Config struct {
	// BaseURL is the origin root (no trailing slash).
	BaseURL string
	// Model is the joint adaptation algorithm (e.g. exoplayer.NewDASH or
	// jointabr.New built from the fetched manifest).
	Model abr.JointAlgorithm
	// TargetBuffer pauses fetching while this much content is buffered
	// ahead of playback. Default 10 s.
	TargetBuffer time.Duration
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxChunks limits the session length (0 = whole content).
	MaxChunks int
}

// ChunkFetch records one downloaded chunk.
type ChunkFetch struct {
	Index    int
	Combo    media.Combo
	Bytes    int64
	Duration time.Duration
}

// Report summarizes a real-time streaming session.
type Report struct {
	Chunks     []ChunkFetch
	TotalBytes int64
	Elapsed    time.Duration
	// Rebuffered is wall time during which playback would have been
	// stalled (playback clock caught up with the downloaded frontier).
	Rebuffered   time.Duration
	StartupDelay time.Duration
}

// Stream plays the source's content from the origin in real time.
func Stream(ctx context.Context, m Source, cfg Config) (*Report, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("httpclient: nil model")
	}
	if cfg.TargetBuffer <= 0 {
		cfg.TargetBuffer = 10 * time.Second
	}
	client := cfg.HTTPClient
	if client == nil {
		client = http.DefaultClient
	}
	n := m.NumChunks()
	if cfg.MaxChunks > 0 && cfg.MaxChunks < n {
		n = cfg.MaxChunks
	}
	chunkDur := m.ChunkDur()
	rep := &Report{}
	begin := time.Now()
	var frontier time.Duration // downloaded content
	var playStart time.Time    // set at first chunk
	var stalled time.Duration

	playPos := func(now time.Time) time.Duration {
		if playStart.IsZero() {
			return 0
		}
		pos := now.Sub(playStart) - stalled
		if pos > frontier {
			// The playback clock cannot pass the frontier; the excess is
			// rebuffering.
			stalled += pos - frontier
			pos = frontier
		}
		return pos
	}

	for idx := 0; idx < n; idx++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		now := time.Now()
		pos := playPos(now)
		buffered := frontier - pos
		st := abr.State{
			Now:           now.Sub(begin),
			PlayPos:       pos,
			VideoBuffer:   buffered,
			AudioBuffer:   buffered,
			ChunkIndex:    idx,
			ChunkDuration: chunkDur,
			Startup:       playStart.IsZero(),
		}
		combo := cfg.Model.SelectCombo(st)
		if combo.Video == nil || combo.Audio == nil {
			return nil, fmt.Errorf("httpclient: model returned incomplete combo at chunk %d", idx)
		}
		bytes, dur, err := fetchPair(ctx, client, cfg, m, combo, idx)
		if err != nil {
			return nil, err
		}
		rep.Chunks = append(rep.Chunks, ChunkFetch{Index: idx, Combo: combo, Bytes: bytes, Duration: dur})
		rep.TotalBytes += bytes
		frontier += chunkDur
		if playStart.IsZero() {
			playStart = time.Now()
			rep.StartupDelay = playStart.Sub(begin)
		}
		// Pause fetching while the buffer exceeds the target.
		if excess := (frontier - playPos(time.Now())) - cfg.TargetBuffer; excess > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(excess):
			}
		}
	}
	playPos(time.Now())
	rep.Elapsed = time.Since(begin)
	rep.Rebuffered = stalled
	return rep, nil
}

// fetchPair downloads the audio and video chunk of one position
// concurrently, feeding the model's observer hooks. ABR models are
// intentionally unsynchronized (the simulator is single-threaded), so the
// client serializes every observer call behind one mutex.
func fetchPair(ctx context.Context, client *http.Client, cfg Config, m Source, combo media.Combo, idx int) (int64, time.Duration, error) {
	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var obs sync.Mutex
	var total int64
	var firstErr error
	for _, tr := range []*media.Track{combo.Video, combo.Audio} {
		tr := tr
		wg.Add(1)
		go func() {
			defer wg.Done()
			bytes, err := fetchOne(ctx, client, cfg, m, tr, idx, &obs)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			total += bytes
		}()
	}
	wg.Wait()
	return total, time.Since(start), firstErr
}

func fetchOne(ctx context.Context, client *http.Client, cfg Config, m Source, tr *media.Track, idx int, obs *sync.Mutex) (int64, error) {
	path := m.SegmentPath(tr, idx)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+"/"+path, nil)
	if err != nil {
		return 0, err
	}
	begin := time.Now()
	observe := func(fn func()) {
		obs.Lock()
		defer obs.Unlock()
		fn()
	}
	observe(func() { cfg.Model.OnStart(abr.TransferInfo{Type: tr.Type, At: time.Since(begin)}) })
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("httpclient: %s: %s", path, resp.Status)
	}
	var total int64
	buf := make([]byte, 32*1024)
	lastReport := time.Now()
	for {
		nr, rerr := resp.Body.Read(buf)
		if nr > 0 {
			total += int64(nr)
			now := time.Now()
			observe(func() {
				cfg.Model.OnProgress(abr.TransferInfo{
					Type:     tr.Type,
					Bytes:    float64(nr),
					Duration: now.Sub(lastReport),
					At:       now.Sub(begin),
				})
			})
			lastReport = now
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return total, rerr
		}
	}
	observe(func() {
		cfg.Model.OnComplete(abr.TransferInfo{
			Type:     tr.Type,
			Bytes:    float64(total),
			Duration: time.Since(begin),
			At:       time.Since(begin),
		})
	})
	return total, nil
}
