// Package httpclient is a real-time streaming client: it fetches a DASH
// manifest from an origin (package originserver or any server with the
// same layout), reconstructs the track ladders, and streams chunks over
// real HTTP while driving one of the library's ABR models — the end-to-end
// integration path complementing the discrete-event simulator.
package httpclient

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/faults"
	"demuxabr/internal/manifest/dash"
	"demuxabr/internal/media"
)

// Manifest is the client's view of the stream, reconstructed from the MPD.
type Manifest struct {
	Video         media.Ladder
	Audio         media.Ladder
	Duration      time.Duration
	ChunkDuration time.Duration
	// mediaTemplates holds each AdaptationSet's SegmentTemplate media
	// pattern, indexed by media.Type — segment addressing never assumes
	// anything about the path layout beyond the $…$ substitutions.
	mediaTemplates [2]string
	// segments holds the per-segment durations expanded from the MPD's
	// SegmentTemplate (timeline when declared, nominal tiling otherwise) —
	// the authoritative chunk count and index↔time source. The old
	// Duration/ChunkDuration division over-counted whenever a declared
	// timeline disagreed with the nominal duration.
	segments []time.Duration
}

// NumChunks returns the chunk count.
func (m *Manifest) NumChunks() int {
	if len(m.segments) > 0 {
		return len(m.segments)
	}
	n := int(m.Duration / m.ChunkDuration)
	if m.Duration%m.ChunkDuration != 0 {
		n++
	}
	return n
}

// SegmentDurationAt implements Source: the actual duration of segment idx.
func (m *Manifest) SegmentDurationAt(idx int) time.Duration {
	if idx < 0 || idx >= len(m.segments) {
		return m.ChunkDuration
	}
	return m.segments[idx]
}

// SegmentPath expands the track's SegmentTemplate for an index into the
// origin-relative path.
func (m *Manifest) SegmentPath(tr *media.Track, idx int) string {
	p := strings.ReplaceAll(m.mediaTemplates[tr.Type], "$RepresentationID$", tr.ID)
	return strings.ReplaceAll(p, "$Number$", strconv.Itoa(idx))
}

// ChunkDur implements Source.
func (m *Manifest) ChunkDur() time.Duration { return m.ChunkDuration }

// Tracks implements Source: the ladder of one type, ascending bitrate.
func (m *Manifest) Tracks(t media.Type) []*media.Track {
	if t == media.Video {
		return m.Video
	}
	return m.Audio
}

// Source is the client's addressing view of a stream: how many chunks, how
// long each is, where each track's segments live, and which tracks exist
// (the robustness policy's failover candidates). Both the DASH Manifest
// and the HLSManifest implement it.
type Source interface {
	NumChunks() int
	ChunkDur() time.Duration
	// SegmentDurationAt is the actual duration of segment idx; it equals
	// ChunkDur on uniform content but diverges on declared-variable
	// timelines, where playback-clock arithmetic must use it.
	SegmentDurationAt(idx int) time.Duration
	SegmentPath(tr *media.Track, idx int) string
	Tracks(t media.Type) []*media.Track
}

// equalDurations reports element-wise equality of two duration slices.
func equalDurations(a, b []time.Duration) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// drainAndClose consumes up to 64 KiB of a response body before closing so
// the keep-alive connection can be reused — exactly the error-heavy paths
// where reconnecting hurts most.
func drainAndClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 64<<10))
	body.Close()
}

// FetchManifest downloads and parses baseURL/manifest.mpd. A nil client
// uses http.DefaultClient.
func FetchManifest(ctx context.Context, client *http.Client, baseURL string) (*Manifest, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/manifest.mpd", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		drainAndClose(resp.Body)
		return nil, fmt.Errorf("httpclient: manifest: %s", resp.Status)
	}
	mpd, err := dash.Parse(resp.Body)
	if err != nil {
		return nil, err
	}
	video, audio, err := dash.Ladders(mpd)
	if err != nil {
		return nil, err
	}
	dur, err := dash.ParseDuration(mpd.MediaPresentationDuration)
	if err != nil {
		return nil, err
	}
	m := &Manifest{Video: video, Audio: audio, Duration: dur}
	// Each AdaptationSet carries its own SegmentTemplate; the set's
	// declared content type says which ladder it addresses. No assumption
	// is made about the template's path shape.
	for i, as := range mpd.Periods[0].AdaptationSets {
		var typ media.Type
		switch as.ContentType {
		case "video":
			typ = media.Video
		case "audio":
			typ = media.Audio
		default:
			return nil, fmt.Errorf("httpclient: AdaptationSet %d has unsupported contentType %q", i, as.ContentType)
		}
		st := as.SegmentTemplate
		if st == nil || st.Timescale == 0 {
			return nil, fmt.Errorf("httpclient: %s AdaptationSet lacks a usable SegmentTemplate", as.ContentType)
		}
		if !strings.Contains(st.Media, "$RepresentationID$") || !strings.Contains(st.Media, "$Number$") {
			return nil, fmt.Errorf("httpclient: cannot address segments with media template %q (need $RepresentationID$ and $Number$)", st.Media)
		}
		segs, err := st.SegmentDurations(dur)
		if err != nil {
			return nil, fmt.Errorf("httpclient: %s AdaptationSet: %w", as.ContentType, err)
		}
		// This client fetches audio and video at the same chunk index, so
		// it can only play streams whose timelines agree. Shaped per-type
		// timelines need an index-independent client (the simulator's
		// per-type models); refusing here beats silently pairing chunk i of
		// one timeline with an overlapping-but-different chunk i of the other.
		if m.segments != nil && !equalDurations(m.segments, segs) {
			return nil, fmt.Errorf("httpclient: audio and video segment timelines disagree; this joint-index client requires aligned timelines")
		}
		m.segments = segs
		if m.ChunkDuration == 0 {
			// Nominal chunk duration for ABR state: the declared @duration
			// when present, else the longest declared segment.
			if st.Duration > 0 {
				m.ChunkDuration = time.Duration(st.Duration) * time.Second / time.Duration(st.Timescale)
			} else {
				for _, d := range segs {
					if d > m.ChunkDuration {
						m.ChunkDuration = d
					}
				}
			}
		}
		if m.ChunkDuration <= 0 {
			return nil, fmt.Errorf("httpclient: non-positive chunk duration")
		}
		m.mediaTemplates[typ] = st.Media
	}
	if m.mediaTemplates[media.Video] == "" || m.mediaTemplates[media.Audio] == "" {
		return nil, fmt.Errorf("httpclient: MPD must declare one video and one audio AdaptationSet")
	}
	return m, nil
}

// Config parameterizes a streaming run.
type Config struct {
	// BaseURL is the origin root (no trailing slash).
	BaseURL string
	// Model is the joint adaptation algorithm (e.g. exoplayer.NewDASH or
	// jointabr.New built from the fetched manifest).
	Model abr.JointAlgorithm
	// TargetBuffer pauses fetching while this much content is buffered
	// ahead of playback. Default 10 s.
	TargetBuffer time.Duration
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxChunks limits the session length (0 = whole content).
	MaxChunks int
	// Robustness enables per-request timeouts, seeded-backoff retries,
	// per-track blacklisting and failover. Nil keeps the legacy fail-fast
	// behaviour: the first fetch error ends the session.
	Robustness *faults.Policy
	// RetrySeed keys the backoff jitter (default 1).
	RetrySeed int64
}

// ChunkFetch records one downloaded chunk.
type ChunkFetch struct {
	Index int
	// Combo is the pair actually fetched — after any failover, which may
	// differ from what the model selected.
	Combo    media.Combo
	Bytes    int64
	Duration time.Duration
}

// FaultRecord is one failed segment request on the real HTTP path.
type FaultRecord struct {
	// Path is the segment path that failed; Type and Index locate it.
	Path  string
	Type  media.Type
	Index int
	// Attempt is which try failed (0 = the first request to this track).
	Attempt int
	// At is the offset from session start.
	At time.Duration
	// Err is the failure's error string.
	Err string
}

// Report summarizes a real-time streaming session.
type Report struct {
	Chunks     []ChunkFetch
	TotalBytes int64
	Elapsed    time.Duration
	// Rebuffered is wall time during which playback would have been
	// stalled (playback clock caught up with the downloaded frontier).
	Rebuffered   time.Duration
	StartupDelay time.Duration
	// Faults lists every failed segment request, in detection order.
	Faults []FaultRecord
	// Retries counts re-issued requests; Failovers counts track
	// substitutions after a track's attempt budget was spent.
	Retries   int
	Failovers int
}

// Stream plays the source's content from the origin in real time. On
// error it returns the partial Report accumulated so far (chunks fetched,
// stall time, fault log) alongside the error — never nil with a non-nil
// error once the session has started.
func Stream(ctx context.Context, m Source, cfg Config) (*Report, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("httpclient: nil model")
	}
	if cfg.TargetBuffer <= 0 {
		cfg.TargetBuffer = 10 * time.Second
	}
	client := cfg.HTTPClient
	if client == nil {
		client = http.DefaultClient
	}
	n := m.NumChunks()
	if cfg.MaxChunks > 0 && cfg.MaxChunks < n {
		n = cfg.MaxChunks
	}
	chunkDur := m.ChunkDur()
	rep := &Report{}
	begin := time.Now()
	s := &streamer{cfg: cfg, client: client, src: m, rep: rep, begin: begin}
	if cfg.Robustness != nil {
		pol := cfg.Robustness.WithDefaults()
		s.pol = &pol
		s.bl = faults.NewBlacklist()
	}
	var frontier time.Duration // downloaded content
	var playStart time.Time    // set at first chunk
	var stalled time.Duration

	playPos := func(now time.Time) time.Duration {
		if playStart.IsZero() {
			return 0
		}
		pos := now.Sub(playStart) - stalled
		if pos > frontier {
			// The playback clock cannot pass the frontier; the excess is
			// rebuffering.
			stalled += pos - frontier
			pos = frontier
		}
		return pos
	}
	// finish stamps the totals so even an error return carries the partial
	// session.
	finish := func(err error) (*Report, error) {
		playPos(time.Now())
		rep.Elapsed = time.Since(begin)
		rep.Rebuffered = stalled
		return rep, err
	}

	for idx := 0; idx < n; idx++ {
		if err := ctx.Err(); err != nil {
			return finish(err)
		}
		now := time.Now()
		pos := playPos(now)
		buffered := frontier - pos
		st := abr.State{
			Now:           now.Sub(begin),
			PlayPos:       pos,
			VideoBuffer:   buffered,
			AudioBuffer:   buffered,
			ChunkIndex:    idx,
			ChunkDuration: chunkDur,
			Startup:       playStart.IsZero(),
		}
		combo := cfg.Model.SelectCombo(st)
		if combo.Video == nil || combo.Audio == nil {
			return finish(fmt.Errorf("httpclient: model returned incomplete combo at chunk %d", idx))
		}
		bytes, dur, fetched, err := s.fetchPair(ctx, combo, idx)
		if err != nil {
			return finish(err)
		}
		rep.Chunks = append(rep.Chunks, ChunkFetch{Index: idx, Combo: fetched, Bytes: bytes, Duration: dur})
		rep.TotalBytes += bytes
		// Advance the frontier by the segment's actual duration — on a
		// declared-variable timeline crediting the nominal chunkDur would
		// drift the playback clock off the downloaded media.
		frontier += m.SegmentDurationAt(idx)
		if playStart.IsZero() {
			playStart = time.Now()
			rep.StartupDelay = playStart.Sub(begin)
		}
		// Pause fetching while the buffer exceeds the target.
		if excess := (frontier - playPos(time.Now())) - cfg.TargetBuffer; excess > 0 {
			select {
			case <-ctx.Done():
				return finish(ctx.Err())
			case <-time.After(excess):
			}
		}
	}
	return finish(nil)
}

// streamer carries one session's shared state. ABR models are
// intentionally unsynchronized (the simulator is single-threaded), so
// every observer call is serialized behind obs; mu guards the report
// counters and the blacklist.
type streamer struct {
	cfg    Config
	client *http.Client
	src    Source
	pol    *faults.Policy // normalized; nil = fail fast
	begin  time.Time

	obs sync.Mutex
	mu  sync.Mutex
	bl  *faults.Blacklist
	rep *Report
}

func (s *streamer) retrySeed() int64 {
	if s.cfg.RetrySeed != 0 {
		return s.cfg.RetrySeed
	}
	return 1
}

// fetchPair downloads the audio and video chunk of one position
// concurrently. It returns the combination actually fetched, which may
// differ from the model's selection after a failover.
func (s *streamer) fetchPair(ctx context.Context, combo media.Combo, idx int) (int64, time.Duration, media.Combo, error) {
	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var total int64
	var firstErr error
	fetched := combo
	for _, tr := range []*media.Track{combo.Video, combo.Audio} {
		tr := tr
		wg.Add(1)
		go func() {
			defer wg.Done()
			bytes, used, err := s.fetchTrack(ctx, tr, idx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			total += bytes
			if used != nil {
				if used.Type == media.Video {
					fetched.Video = used
				} else {
					fetched.Audio = used
				}
			}
		}()
	}
	wg.Wait()
	return total, time.Since(start), fetched, firstErr
}

// fetchTrack is the per-track load-error handler: fetch with a per-request
// timeout, retry with seeded backoff while the attempt budget lasts,
// blacklist repeat offenders, and fail over to the nearest healthy track.
// Without a policy the first error is final. The other media type's
// goroutine streams on regardless — one failing track never halts its
// sibling.
func (s *streamer) fetchTrack(ctx context.Context, tr *media.Track, idx int) (int64, *media.Track, error) {
	track := tr
	attempt := 0
	for {
		if s.pol != nil && s.blocked(track.ID) {
			if repl := s.failover(track); repl != nil && repl != track {
				s.count(func(r *Report) { r.Failovers++ })
				track = repl
				attempt = 0
			}
		}
		reqCtx := ctx
		cancel := func() {}
		if s.pol != nil && s.pol.RequestTimeout > 0 {
			reqCtx, cancel = context.WithTimeout(ctx, s.pol.RequestTimeout)
		}
		n, err := s.fetchOne(reqCtx, track, idx)
		cancel()
		if err == nil {
			if s.pol != nil {
				s.mu.Lock()
				s.bl.Clear(track.ID)
				s.mu.Unlock()
			}
			return n, track, nil
		}
		now := time.Since(s.begin)
		s.count(func(r *Report) {
			r.Faults = append(r.Faults, FaultRecord{
				Path: s.src.SegmentPath(track, idx), Type: track.Type, Index: idx,
				Attempt: attempt, At: now, Err: err.Error(),
			})
		})
		if ctx.Err() != nil || s.pol == nil {
			return n, track, err
		}
		s.mu.Lock()
		blocked := s.bl.Strike(track.ID, now, *s.pol)
		s.mu.Unlock()
		key := faults.Key(s.retrySeed(), track.ID, idx)
		if !blocked && attempt+1 < s.pol.MaxAttempts {
			s.count(func(r *Report) { r.Retries++ })
			if serr := sleepCtx(ctx, s.pol.Backoff(attempt, key)); serr != nil {
				return n, track, serr
			}
			attempt++
			continue
		}
		repl := s.failover(track)
		if repl == nil || repl == track {
			return n, track, fmt.Errorf("httpclient: no failover candidate left for %s chunk %d: %w", track.ID, idx, err)
		}
		s.count(func(r *Report) { r.Failovers++; r.Retries++ })
		if serr := sleepCtx(ctx, s.pol.Backoff(attempt, key)); serr != nil {
			return n, track, serr
		}
		track = repl
		attempt = 0
	}
}

// count runs a report mutation under the state lock.
func (s *streamer) count(fn func(*Report)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.rep)
}

func (s *streamer) blocked(trackID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bl.Blocked(trackID, time.Since(s.begin))
}

// failover picks the substitute for a failing track: the highest
// non-blacklisted candidate at or below the failed bitrate, else the
// cheapest non-blacklisted one, else nil.
func (s *streamer) failover(failed *media.Track) *media.Track {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Since(s.begin)
	var lower, lowest *media.Track
	for _, tr := range s.src.Tracks(failed.Type) {
		if tr == failed || s.bl.Blocked(tr.ID, now) {
			continue
		}
		if lowest == nil || tr.AvgBitrate < lowest.AvgBitrate {
			lowest = tr
		}
		if tr.AvgBitrate <= failed.AvgBitrate && (lower == nil || tr.AvgBitrate > lower.AvgBitrate) {
			lower = tr
		}
	}
	if lower != nil {
		return lower
	}
	return lowest
}

// sleepCtx waits d or until the context dies.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (s *streamer) fetchOne(ctx context.Context, tr *media.Track, idx int) (int64, error) {
	path := s.src.SegmentPath(tr, idx)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.cfg.BaseURL+"/"+path, nil)
	if err != nil {
		return 0, err
	}
	begin := time.Now()
	observe := func(fn func()) {
		s.obs.Lock()
		defer s.obs.Unlock()
		fn()
	}
	observe(func() { s.cfg.Model.OnStart(abr.TransferInfo{Type: tr.Type, At: time.Since(begin)}) })
	// closeOut balances the OnStart for every exit path so observers that
	// pair start/complete events stay consistent; failed requests report
	// the bytes that did arrive.
	closeOut := func(total int64) {
		observe(func() {
			s.cfg.Model.OnComplete(abr.TransferInfo{
				Type:     tr.Type,
				Bytes:    float64(total),
				Duration: time.Since(begin),
				At:       time.Since(begin),
			})
		})
	}
	resp, err := s.client.Do(req)
	if err != nil {
		closeOut(0)
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		drainAndClose(resp.Body)
		closeOut(0)
		return 0, fmt.Errorf("httpclient: %s: %s", path, resp.Status)
	}
	var total int64
	buf := make([]byte, 32*1024)
	lastReport := time.Now()
	for {
		nr, rerr := resp.Body.Read(buf)
		if nr > 0 {
			total += int64(nr)
			now := time.Now()
			observe(func() {
				s.cfg.Model.OnProgress(abr.TransferInfo{
					Type:     tr.Type,
					Bytes:    float64(nr),
					Duration: now.Sub(lastReport),
					At:       now.Sub(begin),
				})
			})
			lastReport = now
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			closeOut(total)
			return total, rerr
		}
	}
	// A body shorter than the declared length is a truncated download,
	// not a success — Body.Read returns clean EOF in that case.
	if resp.ContentLength >= 0 && total < resp.ContentLength {
		closeOut(total)
		return total, fmt.Errorf("httpclient: %s: truncated body (%d of %d bytes)", path, total, resp.ContentLength)
	}
	closeOut(total)
	return total, nil
}
