// Package report serializes streaming-session outcomes to a stable JSON
// document for offline analysis and plotting — the machine-readable
// counterpart of the text tables in package experiments.
package report

import (
	"encoding/json"
	"fmt"
	"io"

	"demuxabr/internal/media"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/timeline"
)

// Session is the export schema. Durations are serialized in seconds to be
// directly plottable.
type Session struct {
	Model           string  `json:"model"`
	Content         string  `json:"content"`
	ContentDuration float64 `json:"content_duration_s"`
	StartupDelay    float64 `json:"startup_delay_s"`
	Ended           bool    `json:"ended"`

	Metrics Metrics `json:"metrics"`

	Timeline     []Point       `json:"timeline"`
	Chunks       []Chunk       `json:"chunks"`
	Stalls       []Stall       `json:"stalls"`
	Abandonments []Abandonment `json:"abandonments,omitempty"`

	// TimelineCounters carries the flight-recorder counters registry when
	// the session ran with a recorder attached; nil otherwise.
	TimelineCounters *TimelineCounters `json:"timeline_counters,omitempty"`

	// Transport carries the connection-level accounting when the session
	// ran with a transport configured and the transport charged anything
	// observable; nil otherwise — so transport-free (and zero-cost
	// transport) documents keep their exact pre-transport shape.
	Transport *TransportReport `json:"transport,omitempty"`

	// Live carries the latency-target accounting of live sessions; nil for
	// VOD — so VOD documents keep their exact pre-live shape.
	Live *LiveReport `json:"live,omitempty"`
}

// LiveReport is the export shape of player.LiveStats.
type LiveReport struct {
	LatencyTargetS float64 `json:"latency_target_s"`
	JoinLatencyS   float64 `json:"join_latency_s"`
	MeanLatencyS   float64 `json:"mean_latency_s"`
	MaxLatencyS    float64 `json:"max_latency_s"`
	FinalLatencyS  float64 `json:"final_latency_s"`
	Samples        int     `json:"samples"`
	RateChanges    int     `json:"rate_changes"`
	CatchupS       float64 `json:"catchup_s"`
	SlowdownS      float64 `json:"slowdown_s"`
	MeanRate       float64 `json:"mean_rate"`
	Resyncs        int     `json:"resyncs"`
	SkippedS       float64 `json:"skipped_s"`
}

// TransportReport is the export shape of player.TransportStats.
type TransportReport struct {
	Protocol         string  `json:"protocol"`
	Handshakes       int     `json:"handshakes"`
	Resumes          int     `json:"resumes"`
	FailedHandshakes int     `json:"failed_handshakes"`
	Migrations       int     `json:"migrations"`
	HoLStalls        int     `json:"hol_stalls"`
	HandshakeWaitS   float64 `json:"handshake_wait_s"`
	HoLWaitS         float64 `json:"hol_wait_s"`
}

// TimelineCounters is the export shape of the flight recorder's counters
// registry (see internal/timeline).
type TimelineCounters struct {
	Events          int64 `json:"events"`
	Decisions       int64 `json:"decisions"`
	Requests        int64 `json:"requests"`
	Retries         int64 `json:"retries"`
	Timeouts        int64 `json:"timeouts"`
	Blacklists      int64 `json:"blacklists"`
	Failovers       int64 `json:"failovers"`
	Faults          int64 `json:"faults"`
	Stalls          int64 `json:"stalls"`
	CacheHits       int64 `json:"cache_hits"`
	CacheMisses     int64 `json:"cache_misses"`
	BytesDownloaded int64 `json:"bytes_downloaded"`
	// Handshakes and HoLStalls mirror the transport counters; omitempty
	// keeps transport-free documents byte-identical to their
	// pre-transport shape.
	Handshakes int64 `json:"handshakes,omitempty"`
	HoLStalls  int64 `json:"hol_stalls,omitempty"`
	// LatencySamples, RateChanges and LiveResyncs mirror the live counters;
	// omitempty keeps VOD documents byte-identical to their pre-live shape.
	LatencySamples int64 `json:"latency_samples,omitempty"`
	RateChanges    int64 `json:"rate_changes,omitempty"`
	LiveResyncs    int64 `json:"live_resyncs,omitempty"`
}

// CountersFrom converts a timeline counters registry to the export shape.
func CountersFrom(c timeline.Counters) *TimelineCounters {
	return &TimelineCounters{
		Events:          c.Events,
		Decisions:       c.Decisions,
		Requests:        c.Requests,
		Retries:         c.Retries,
		Timeouts:        c.Timeouts,
		Blacklists:      c.Blacklists,
		Failovers:       c.Failovers,
		Faults:          c.Faults,
		Stalls:          c.Stalls,
		CacheHits:       c.CacheHits,
		CacheMisses:     c.CacheMisses,
		BytesDownloaded: c.BytesDownloaded,
		Handshakes:      c.Handshakes,
		HoLStalls:       c.HoLStalls,
		LatencySamples:  c.LatencySamples,
		RateChanges:     c.RateChanges,
		LiveResyncs:     c.LiveResyncs,
	}
}

// Metrics mirrors qoe.Metrics in plottable units.
type Metrics struct {
	AvgVideoKbps    float64 `json:"avg_video_kbps"`
	AvgAudioKbps    float64 `json:"avg_audio_kbps"`
	VideoQuality    float64 `json:"video_quality"`
	AudioQuality    float64 `json:"audio_quality"`
	VideoSwitches   int     `json:"video_switches"`
	AudioSwitches   int     `json:"audio_switches"`
	DistinctCombos  int     `json:"distinct_combos"`
	OffManifest     int     `json:"off_manifest_chunks"`
	StallCount      int     `json:"stall_count"`
	RebufferSecs    float64 `json:"rebuffer_s"`
	RebufferRatio   float64 `json:"rebuffer_ratio"`
	StartupSecs     float64 `json:"startup_s"`
	MaxImbalanceS   float64 `json:"max_imbalance_s"`
	MeanImbalanceS  float64 `json:"mean_imbalance_s"`
	BufferHealthP10 float64 `json:"buffer_health_p10_s"`
	Score           float64 `json:"qoe_score"`
}

// Point is one timeline sample.
type Point struct {
	At           float64 `json:"t_s"`
	PlayPos      float64 `json:"playpos_s"`
	Video        string  `json:"video,omitempty"`
	Audio        string  `json:"audio,omitempty"`
	VideoBuffer  float64 `json:"vbuf_s"`
	AudioBuffer  float64 `json:"abuf_s"`
	EstimateKbps float64 `json:"estimate_kbps,omitempty"`
	Stalled      bool    `json:"stalled,omitempty"`
}

// Chunk is one downloaded chunk.
type Chunk struct {
	Index     int     `json:"index"`
	Type      string  `json:"type"`
	Track     string  `json:"track"`
	Bytes     int64   `json:"bytes"`
	Decided   float64 `json:"decided_s"`
	Completed float64 `json:"completed_s"`
}

// Stall is one rebuffering event.
type Stall struct {
	Start float64 `json:"start_s"`
	End   float64 `json:"end_s"`
}

// Abandonment is one cancelled-and-replaced download.
type Abandonment struct {
	Index int     `json:"index"`
	Type  string  `json:"type"`
	From  string  `json:"from"`
	To    string  `json:"to"`
	At    float64 `json:"t_s"`
}

// MetricsFrom converts qoe metrics to the plottable export shape.
func MetricsFrom(m qoe.Metrics) Metrics {
	return Metrics{
		AvgVideoKbps:    m.AvgVideoBitrate.Kbps(),
		AvgAudioKbps:    m.AvgAudioBitrate.Kbps(),
		VideoQuality:    m.AvgVideoQuality,
		AudioQuality:    m.AvgAudioQuality,
		VideoSwitches:   m.VideoSwitches,
		AudioSwitches:   m.AudioSwitches,
		DistinctCombos:  m.DistinctCombos,
		OffManifest:     m.OffManifest,
		StallCount:      m.StallCount,
		RebufferSecs:    m.RebufferTime.Seconds(),
		RebufferRatio:   m.RebufferRatio,
		StartupSecs:     m.StartupDelay.Seconds(),
		MaxImbalanceS:   m.MaxImbalance.Seconds(),
		MeanImbalanceS:  m.MeanImbalance.Seconds(),
		BufferHealthP10: m.BufferHealth.P10,
		Score:           m.Score,
	}
}

// FromResult flattens a session result and its metrics into the schema.
func FromResult(contentName string, res *player.Result, m qoe.Metrics) *Session {
	s := &Session{
		Model:           res.ModelName,
		Content:         contentName,
		ContentDuration: res.ContentDuration.Seconds(),
		StartupDelay:    res.StartupDelay.Seconds(),
		Ended:           res.Ended,
		Metrics:         MetricsFrom(m),
	}
	if t := res.Transport; t != nil {
		s.Transport = &TransportReport{
			Protocol:         t.Protocol,
			Handshakes:       t.Handshakes,
			Resumes:          t.Resumes,
			FailedHandshakes: t.FailedHandshakes,
			Migrations:       t.Migrations,
			HoLStalls:        t.HoLStalls,
			HandshakeWaitS:   t.HandshakeWait.Seconds(),
			HoLWaitS:         t.HoLWait.Seconds(),
		}
	}
	if l := res.Live; l != nil {
		s.Live = &LiveReport{
			LatencyTargetS: l.LatencyTarget.Seconds(),
			JoinLatencyS:   l.JoinLatency.Seconds(),
			MeanLatencyS:   l.MeanLatency.Seconds(),
			MaxLatencyS:    l.MaxLatency.Seconds(),
			FinalLatencyS:  l.FinalLatency.Seconds(),
			Samples:        l.Samples,
			RateChanges:    l.RateChanges,
			CatchupS:       l.CatchupTime.Seconds(),
			SlowdownS:      l.SlowdownTime.Seconds(),
			MeanRate:       l.MeanRate,
			Resyncs:        l.Resyncs,
			SkippedS:       l.SkippedTime.Seconds(),
		}
	}
	for _, p := range res.Timeline {
		point := Point{
			At:          p.At.Seconds(),
			PlayPos:     p.PlayPos.Seconds(),
			VideoBuffer: p.VideoBuffer.Seconds(),
			AudioBuffer: p.AudioBuffer.Seconds(),
			Stalled:     p.Stalled,
		}
		if p.Video != nil {
			point.Video = p.Video.ID
		}
		if p.Audio != nil {
			point.Audio = p.Audio.ID
		}
		if p.EstimateOK {
			point.EstimateKbps = p.Estimate.Kbps()
		}
		s.Timeline = append(s.Timeline, point)
	}
	for _, c := range res.Chunks {
		s.Chunks = append(s.Chunks, Chunk{
			Index:     c.Index,
			Type:      c.Type.String(),
			Track:     c.Track.ID,
			Bytes:     c.Bytes,
			Decided:   c.DecidedAt.Seconds(),
			Completed: c.CompletedAt.Seconds(),
		})
	}
	for _, st := range res.Stalls {
		s.Stalls = append(s.Stalls, Stall{Start: st.Start.Seconds(), End: st.End.Seconds()})
	}
	for _, ab := range res.Abandonments {
		s.Abandonments = append(s.Abandonments, Abandonment{
			Index: ab.Index, Type: ab.Type.String(),
			From: ab.From.ID, To: ab.To.ID, At: ab.At.Seconds(),
		})
	}
	return s
}

// WriteJSON serializes the session with indentation.
func (s *Session) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON loads a session document.
func ReadJSON(r io.Reader) (*Session, error) {
	var s Session
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	if s.Model == "" {
		return nil, fmt.Errorf("report: document has no model field")
	}
	return &s, nil
}

// ComboTimeline reduces the chunk log to the per-position combination names
// — the series the paper's track-selection figures plot.
func (s *Session) ComboTimeline() []string {
	video := map[int]string{}
	audio := map[int]string{}
	maxIdx := -1
	for _, c := range s.Chunks {
		if c.Type == media.Video.String() {
			video[c.Index] = c.Track
		} else {
			audio[c.Index] = c.Track
		}
		if c.Index > maxIdx {
			maxIdx = c.Index
		}
	}
	out := make([]string, 0, maxIdx+1)
	for i := 0; i <= maxIdx; i++ {
		if video[i] == "" || audio[i] == "" {
			out = append(out, "")
			continue
		}
		out = append(out, video[i]+"+"+audio[i])
	}
	return out
}
