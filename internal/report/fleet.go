package report

import (
	"encoding/json"
	"fmt"
	"io"

	"demuxabr/internal/qoe"
	"demuxabr/internal/stats"
)

// Fleet is the export schema for a multi-session co-simulation: per-session
// outcomes plus the fleet-level aggregates (QoE distribution, Jain's
// fairness, shared-cache effectiveness). Durations are serialized in
// seconds to be directly plottable.
type Fleet struct {
	Content  string `json:"content"`
	Mode     string `json:"mode"` // packaging: demuxed or muxed
	Sessions int    `json:"sessions"`
	// Completed counts sessions that played the content to the end.
	Completed int `json:"completed"`

	// Aggregation is "sketch" when the distributions below were streamed
	// through fixed-resolution histograms (large fleets) instead of
	// computed exactly from retained sessions. Omitted on the exact path,
	// keeping small-fleet documents byte-identical to earlier versions.
	Aggregation string `json:"aggregation,omitempty"`
	// Cells is the number of independent contention cells the fleet was
	// partitioned into; omitted for the classic single-cell fleet.
	Cells int `json:"cells,omitempty"`
	// SampledSessions is the size of the per_session reservoir sample on
	// the sketch path (per_session then holds a uniform sample, not the
	// whole fleet). Omitted on the exact path.
	SampledSessions int `json:"sampled_sessions,omitempty"`

	JainVideoKbps float64 `json:"jain_video_kbps"`

	Score Distribution `json:"qoe_score"`
	// ScoreCompleted is the QoE distribution over sessions that played to
	// the end only. When every session aborts it is the empty distribution
	// (all-null quantiles, n-free), which must still marshal cleanly.
	ScoreCompleted Distribution `json:"qoe_score_completed"`
	VideoKbps      Distribution `json:"video_kbps"`
	AudioKbps      Distribution `json:"audio_kbps"`
	RebufferS      Distribution `json:"rebuffer_s"`
	StartupS       Distribution `json:"startup_s"`

	// Live carries the fleet-level latency aggregates of live runs; nil for
	// VOD fleets — so VOD documents keep their exact pre-live shape.
	Live *FleetLive `json:"live,omitempty"`

	Cache CacheStats `json:"cache"`

	// TimelineCounters aggregates the flight-recorder counters across all
	// sessions when the run was recorded; nil otherwise.
	TimelineCounters *TimelineCounters `json:"timeline_counters,omitempty"`

	PerSession []FleetSession `json:"per_session"`
}

// Distribution mirrors stats.Summary for JSON export.
type Distribution struct {
	Min    float64 `json:"min"`
	P10    float64 `json:"p10"`
	Median float64 `json:"median"`
	P90    float64 `json:"p90"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
}

// MarshalJSON renders NaN/Inf quantiles (the empty distribution) as null;
// encoding/json rejects them outright, which used to make an all-abort
// fleet's export fail.
func (d Distribution) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Min    stats.NullableFloat `json:"min"`
		P10    stats.NullableFloat `json:"p10"`
		Median stats.NullableFloat `json:"median"`
		P90    stats.NullableFloat `json:"p90"`
		Max    stats.NullableFloat `json:"max"`
		Mean   stats.NullableFloat `json:"mean"`
	}{
		Min:    stats.NullableFloat(d.Min),
		P10:    stats.NullableFloat(d.P10),
		Median: stats.NullableFloat(d.Median),
		P90:    stats.NullableFloat(d.P90),
		Max:    stats.NullableFloat(d.Max),
		Mean:   stats.NullableFloat(d.Mean),
	})
}

// UnmarshalJSON accepts the null-quantile form, decoding null back to NaN.
func (d *Distribution) UnmarshalJSON(data []byte) error {
	var in struct {
		Min    stats.NullableFloat `json:"min"`
		P10    stats.NullableFloat `json:"p10"`
		Median stats.NullableFloat `json:"median"`
		P90    stats.NullableFloat `json:"p90"`
		Max    stats.NullableFloat `json:"max"`
		Mean   stats.NullableFloat `json:"mean"`
	}
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*d = Distribution{
		Min:    float64(in.Min),
		P10:    float64(in.P10),
		Median: float64(in.Median),
		P90:    float64(in.P90),
		Max:    float64(in.Max),
		Mean:   float64(in.Mean),
	}
	return nil
}

// FleetLive is the export shape of qoe.FleetLiveMetrics: the distribution
// of per-session mean live-edge latency, plus the fleet's resync total.
type FleetLive struct {
	LatencyS Distribution `json:"latency_s"`
	Resyncs  int64        `json:"resyncs"`
}

// CacheStats is the shared-edge accounting: hit ratios and origin offload.
type CacheStats struct {
	Requests     int64   `json:"requests"`
	Hits         int64   `json:"hits"`
	HitRatio     float64 `json:"hit_ratio"`
	ByteHitRatio float64 `json:"byte_hit_ratio"`
	BytesServed  int64   `json:"bytes_served"`
	BytesOrigin  int64   `json:"bytes_origin"`
	// OriginOffload is the fraction of served bytes the origin never saw
	// (identical to ByteHitRatio, named for the operator's perspective).
	OriginOffload float64 `json:"origin_offload"`
}

// FleetSession is one session's row in a fleet report.
type FleetSession struct {
	ID       int     `json:"id"`
	Model    string  `json:"model"`
	ArrivalS float64 `json:"arrival_s"`
	Ended    bool    `json:"ended"`
	Metrics  Metrics `json:"metrics"`
	// CacheHitRatio is the fraction of this session's requests served from
	// the shared edge cache.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
}

// FromSummary converts a stats.Summary to the export shape.
func FromSummary(s stats.Summary) Distribution {
	return Distribution{Min: s.Min, P10: s.P10, Median: s.Median, P90: s.P90, Max: s.Max, Mean: s.Mean}
}

// ApplyFleetMetrics fills the aggregate distribution fields from qoe fleet
// metrics.
func (f *Fleet) ApplyFleetMetrics(m qoe.FleetMetrics) {
	f.Sessions = m.Sessions
	f.JainVideoKbps = m.JainVideoKbps
	f.Score = FromSummary(m.Score)
	f.VideoKbps = FromSummary(m.VideoKbps)
	f.AudioKbps = FromSummary(m.AudioKbps)
	f.RebufferS = FromSummary(m.RebufferSeconds)
	f.StartupS = FromSummary(m.StartupSeconds)
	if m.Live != nil {
		f.Live = &FleetLive{LatencyS: FromSummary(m.Live.LatencySeconds), Resyncs: m.Live.Resyncs}
	}
}

// WriteJSON serializes the fleet report with indentation.
func (f *Fleet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadFleetJSON loads a fleet report document.
func ReadFleetJSON(r io.Reader) (*Fleet, error) {
	var f Fleet
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	if f.Sessions == 0 {
		return nil, fmt.Errorf("report: fleet document has no sessions")
	}
	return &f, nil
}
