package report

import (
	"bytes"
	"strings"
	"testing"

	"demuxabr/internal/abr"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/trace"
)

type fixedJoint struct {
	abr.NopObserver
	combo media.Combo
}

func (f *fixedJoint) Name() string                      { return "fixed" }
func (f *fixedJoint) SelectCombo(abr.State) media.Combo { return f.combo }

func runSession(t *testing.T) (*player.Result, *media.Content, qoe.Metrics) {
	t.Helper()
	c := media.DramaShow()
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(media.Kbps(2000)))
	combo := media.Combo{Video: c.VideoTracks[2], Audio: c.AudioTracks[1]}
	res, err := player.Run(link, player.Config{Content: c, Model: &fixedJoint{combo: combo}})
	if err != nil {
		t.Fatal(err)
	}
	return res, c, qoe.Compute(res, c, media.HSub(c), qoe.DefaultWeights())
}

func TestRoundTrip(t *testing.T) {
	res, c, m := runSession(t)
	s := FromResult(c.Name, res, m)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != "fixed" || got.Content != "drama-show" || !got.Ended {
		t.Errorf("header fields wrong: %+v", got)
	}
	if len(got.Timeline) != len(res.Timeline) {
		t.Errorf("timeline %d vs %d", len(got.Timeline), len(res.Timeline))
	}
	if len(got.Chunks) != len(res.Chunks) {
		t.Errorf("chunks %d vs %d", len(got.Chunks), len(res.Chunks))
	}
	if got.Metrics.AvgVideoKbps != m.AvgVideoBitrate.Kbps() {
		t.Errorf("avg video %v vs %v", got.Metrics.AvgVideoKbps, m.AvgVideoBitrate.Kbps())
	}
	if got.ContentDuration != 300 {
		t.Errorf("content duration = %v", got.ContentDuration)
	}
}

func TestComboTimeline(t *testing.T) {
	res, c, m := runSession(t)
	s := FromResult(c.Name, res, m)
	tl := s.ComboTimeline()
	if len(tl) != c.NumChunks() {
		t.Fatalf("timeline = %d entries, want %d", len(tl), c.NumChunks())
	}
	for i, combo := range tl {
		if combo != "V3+A2" {
			t.Fatalf("position %d = %q, want V3+A2", i, combo)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("invalid JSON should fail")
	}
	if _, err := ReadJSON(strings.NewReader("{}")); err == nil {
		t.Error("document without model should fail")
	}
}

func TestJSONFieldNamesStable(t *testing.T) {
	// The export schema is a public contract for plotting scripts; pin the
	// key names.
	res, c, m := runSession(t)
	var buf bytes.Buffer
	if err := FromResult(c.Name, res, m).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"model"`, `"qoe_score"`, `"rebuffer_s"`, `"timeline"`, `"t_s"`,
		`"vbuf_s"`, `"abuf_s"`, `"chunks"`, `"off_manifest_chunks"`,
		`"max_imbalance_s"`, `"buffer_health_p10_s"`,
	} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("missing key %s in export", key)
		}
	}
}
