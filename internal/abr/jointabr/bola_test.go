package jointabr

import (
	"testing"
	"testing/quick"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/trace"
)

func TestBolaJointSelectsFromAllowed(t *testing.T) {
	c := media.DramaShow()
	allowed := media.HSub(c)
	b := NewBolaJoint(allowed, 20*time.Second)
	inAllowed := func(cb media.Combo) bool {
		for _, a := range allowed {
			if a.String() == cb.String() {
				return true
			}
		}
		return false
	}
	for buf := time.Duration(0); buf <= 40*time.Second; buf += time.Second {
		got := b.SelectCombo(abr.State{VideoBuffer: buf, AudioBuffer: buf})
		if !inAllowed(got) {
			t.Fatalf("buffer %v: %s not allowed", buf, got)
		}
	}
}

// Property: BOLA-joint is monotone non-decreasing in the minimum buffer.
func TestBolaJointMonotoneProperty(t *testing.T) {
	c := media.DramaShow()
	b := NewBolaJoint(media.HSub(c), 25*time.Second)
	f := func(x, y uint16) bool {
		bx := time.Duration(x%60) * time.Second
		by := time.Duration(y%60) * time.Second
		if bx > by {
			bx, by = by, bx
		}
		lo := b.SelectCombo(abr.State{VideoBuffer: bx, AudioBuffer: bx})
		hi := b.SelectCombo(abr.State{VideoBuffer: by, AudioBuffer: by})
		return lo.DeclaredBitrate() <= hi.DeclaredBitrate()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBolaJointUsesMinBuffer(t *testing.T) {
	// The stalling quantity in demuxed streaming is the *minimum* of the
	// two buffers: a full audio buffer must not embolden the selection
	// when the video buffer is empty.
	c := media.DramaShow()
	b := NewBolaJoint(media.HSub(c), 20*time.Second)
	skewed := b.SelectCombo(abr.State{VideoBuffer: 0, AudioBuffer: 40 * time.Second})
	low := b.SelectCombo(abr.State{VideoBuffer: 0, AudioBuffer: 0})
	if skewed.DeclaredBitrate() != low.DeclaredBitrate() {
		t.Errorf("skewed buffers selected %s, want the empty-buffer choice %s", skewed, low)
	}
}

func TestBolaJointStreamsWithoutExcessStalls(t *testing.T) {
	c := media.DramaShow()
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(media.Kbps(900)))
	res, err := player.Run(link, player.Config{
		Content: c,
		Model:   NewBolaJoint(media.HSub(c), 20*time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ended {
		t.Fatal("did not finish")
	}
	if got := res.RebufferTime(); got > 5*time.Second {
		t.Errorf("rebuffer = %v on a steady 900 Kbps link", got)
	}
	if imb := res.MaxBufferImbalance(); imb > c.ChunkDuration {
		t.Errorf("imbalance = %v, want chunk-synced balance", imb)
	}
}

func TestBolaJointDefaults(t *testing.T) {
	c := media.DramaShow()
	b := NewBolaJoint(media.HSub(c), 0)
	if b.BufferTarget != 20*time.Second {
		t.Errorf("default buffer target = %v", b.BufferTarget)
	}
	if b.Name() != "bola-joint" {
		t.Errorf("name = %q", b.Name())
	}
	if len(b.Allowed()) != 6 {
		t.Errorf("allowed = %d", len(b.Allowed()))
	}
	defer func() {
		if recover() == nil {
			t.Error("empty allowed should panic")
		}
	}()
	NewBolaJoint(nil, 0)
}

func TestAbandonmentTriggersOnDoomedDownload(t *testing.T) {
	c := media.DramaShow()
	p := New(media.HSub(c), WithAbandonment())
	// A V6 chunk arriving at 200 Kbps with 4 s of buffer: remaining time
	// far exceeds the buffer; the player must bail to a cheaper track.
	repl := p.Abandon(abr.DownloadProgress{
		Type:       media.Video,
		Track:      c.VideoTracks[5],
		ChunkIndex: 10,
		BytesDone:  25_000, // 1 s at 200 Kbps
		BytesTotal: 1_700_000,
		Elapsed:    time.Second,
		Buffer:     4 * time.Second,
	})
	if repl == nil {
		t.Fatal("expected abandonment")
	}
	if repl.DeclaredBitrate >= c.VideoTracks[5].DeclaredBitrate {
		t.Errorf("replacement %s not cheaper than V6", repl.ID)
	}
}

func TestAbandonmentRespectsGuards(t *testing.T) {
	c := media.DramaShow()
	p := New(media.HSub(c), WithAbandonment())
	healthy := abr.DownloadProgress{
		Type:       media.Video,
		Track:      c.VideoTracks[2],
		BytesDone:  200_000,
		BytesTotal: 220_000,
		Elapsed:    time.Second,
		Buffer:     10 * time.Second,
	}
	if got := p.Abandon(healthy); got != nil {
		t.Errorf("healthy download abandoned to %s", got.ID)
	}
	doomed := abr.DownloadProgress{
		Type:       media.Video,
		Track:      c.VideoTracks[5],
		BytesDone:  25_000,
		BytesTotal: 1_700_000,
		Elapsed:    time.Second,
		Buffer:     2 * time.Second,
	}
	second := doomed
	second.Attempt = 1
	if got := p.Abandon(second); got != nil {
		t.Error("a chunk must be abandoned at most once per type")
	}
	early := doomed
	early.Elapsed = 100 * time.Millisecond
	if got := p.Abandon(early); got != nil {
		t.Error("abandonment needs a settled rate sample")
	}
	off := New(media.HSub(c))
	if got := off.Abandon(doomed); got != nil {
		t.Error("abandonment must be opt-in")
	}
}

func TestAbandonmentEndToEndReducesStalls(t *testing.T) {
	// A link that collapses mid-session: with abandonment the doomed
	// high-bitrate chunk is replaced and rebuffering shrinks.
	c := media.DramaShow()
	profile := trace.MustSteps([]trace.Step{
		{At: 0, Rate: media.Kbps(4000)},
		{At: 40 * time.Second, Rate: media.Kbps(250)},
		{At: 100 * time.Second, Rate: media.Kbps(2000)},
	}, 0)
	run := func(model abr.Algorithm) *player.Result {
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, profile)
		res, err := player.Run(link, player.Config{Content: c, Model: model})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := run(New(media.HSub(c), WithAbandonment()))
	without := run(New(media.HSub(c)))
	if !with.Ended || !without.Ended {
		t.Fatal("sessions did not finish")
	}
	if len(with.Abandonments) == 0 {
		t.Error("expected at least one abandonment on the collapsing link")
	}
	if with.RebufferTime() > without.RebufferTime() {
		t.Errorf("abandonment rebuffer %v > plain %v", with.RebufferTime(), without.RebufferTime())
	}
}
