package jointabr

import (
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/abr/estimator"
	"demuxabr/internal/media"
)

// ChunkSizer reports the size in bytes of a track's chunk at a position.
// A §4.1-compliant client has this information before playback: single-file
// HLS packaging exposes every chunk's byte range in the media playlists
// (and EXT-X-BITRATE gives per-chunk bitrates otherwise).
type ChunkSizer func(tr *media.Track, idx int) int64

// VBRAware is a joint adapter that decides on actual upcoming chunk sizes
// instead of declared average bitrates — the pitfall the paper cites from
// Qin et al. [21]: VBR-encoded tracks have chunks far above their declared
// average, so an average-based decision overcommits exactly on the
// expensive scenes. VBRAware budgets the real next-chunk bytes of each
// allowed combination against the estimated bandwidth, with the same
// damping as the best-practice player.
type VBRAware struct {
	// SafetyFactor and damping mirror the best-practice defaults.
	SafetyFactor     float64
	UpSwitchBuffer   time.Duration
	DownSwitchBuffer time.Duration

	allowed []media.Combo
	sizes   ChunkSizer
	meter   *estimator.GlobalMeter
	current media.Combo
}

// NewVBRAware creates the adapter. sizes must cover every track in allowed.
func NewVBRAware(allowed []media.Combo, sizes ChunkSizer) *VBRAware {
	if len(allowed) == 0 {
		panic("jointabr: empty allowed combination list")
	}
	if sizes == nil {
		panic("jointabr: nil chunk sizer")
	}
	sorted := make([]media.Combo, len(allowed))
	copy(sorted, allowed)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1].DeclaredBitrate() > sorted[j].DeclaredBitrate(); j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	return &VBRAware{
		SafetyFactor:     DefaultSafetyFactor,
		UpSwitchBuffer:   DefaultUpSwitchBuffer,
		DownSwitchBuffer: DefaultDownSwitchBuffer,
		allowed:          sorted,
		sizes:            sizes,
		meter:            estimator.NewGlobalMeter(),
	}
}

// Name implements abr.Algorithm.
func (v *VBRAware) Name() string { return "bestpractice-vbr" }

// Allowed exposes the combination list.
func (v *VBRAware) Allowed() []media.Combo { return v.allowed }

// OnStart implements abr.Observer.
func (v *VBRAware) OnStart(ti abr.TransferInfo) { v.meter.TransferStart(ti.At) }

// OnProgress implements abr.Observer.
func (v *VBRAware) OnProgress(ti abr.TransferInfo) { v.meter.TransferBytes(ti.Bytes) }

// OnComplete implements abr.Observer.
func (v *VBRAware) OnComplete(ti abr.TransferInfo) { v.meter.TransferEnd(ti.At) }

// BandwidthEstimate implements abr.BandwidthReporter.
func (v *VBRAware) BandwidthEstimate() (media.Bps, bool) { return v.meter.Estimate() }

// SelectCombo implements abr.JointAlgorithm: the richest allowed
// combination whose actual chunk bytes at st.ChunkIndex download within
// SafetyFactor of a chunk duration at the estimated bandwidth.
func (v *VBRAware) SelectCombo(st abr.State) media.Combo {
	est, ok := v.meter.Estimate()
	if !ok {
		v.current = v.allowed[0]
		return v.current
	}
	chunkSecs := st.ChunkDuration.Seconds()
	if chunkSecs <= 0 {
		chunkSecs = 5
	}
	budgetBytes := float64(est) * v.SafetyFactor * chunkSecs / 8
	ideal := v.allowed[0]
	for _, cb := range v.allowed {
		size := float64(v.sizes(cb.Video, st.ChunkIndex) + v.sizes(cb.Audio, st.ChunkIndex))
		if size <= budgetBytes {
			ideal = cb
		}
	}
	if v.current.Video == nil {
		v.current = ideal
		return v.current
	}
	switch {
	case ideal.DeclaredBitrate() > v.current.DeclaredBitrate():
		if st.MinBuffer() >= v.UpSwitchBuffer {
			v.current = ideal
		}
	case ideal.DeclaredBitrate() < v.current.DeclaredBitrate():
		// The per-chunk budget already reflects the actual bytes; a lower
		// ideal means this specific chunk is expensive — ride the buffer
		// only when it is deep.
		if st.MinBuffer() < v.DownSwitchBuffer {
			v.current = ideal
		}
	}
	return v.current
}
