// Package jointabr implements the paper's §4 player-side best practices as
// a concrete joint audio/video adaptation algorithm — the library's primary
// contribution. The design follows the four player-side recommendations:
//
//  1. Adopt audio rate adaptation: audio and video both adapt — audio is
//     never pinned.
//  2. Select only from allowed combinations: the server-provided pairing
//     list (manifest H_sub or equivalent) bounds every decision.
//  3. Joint adaptation: one decision selects the pair, driven by a shared
//     bandwidth estimator that observes the union of audio and video
//     downloading (so concurrent transfers do not cause underestimation),
//     with switch damping to avoid frequent track changes in either
//     component.
//  4. Balanced prefetching: the algorithm is an abr.JointAlgorithm, so the
//     player engine schedules audio and video chunk-synced — buffer levels
//     never diverge by more than one chunk.
//
// Ablation switches (separate estimators, no damping, unrestricted
// combinations) are provided to quantify each design choice.
package jointabr

import (
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/abr/estimator"
	"demuxabr/internal/media"
)

// Defaults of the best-practice player.
const (
	// DefaultSafetyFactor is the fraction of the estimate treated as
	// spendable.
	DefaultSafetyFactor = 0.8
	// DefaultUpSwitchBuffer: minimum buffered duration before increasing
	// quality.
	DefaultUpSwitchBuffer = 10 * time.Second
	// DefaultDownSwitchBuffer: above this buffered duration a transient
	// bandwidth dip is ridden out instead of switching down.
	DefaultDownSwitchBuffer = 25 * time.Second
	// DefaultMinHold is the minimum time between quality increases.
	DefaultMinHold = 8 * time.Second
	// DefaultPanicBuffer: below this buffered duration the budget is
	// halved to refill quickly.
	DefaultPanicBuffer = 4 * time.Second
)

// Player is the best-practice joint audio/video adapter.
type Player struct {
	// SafetyFactor, switch-damping and panic thresholds; see the package
	// defaults. Override before first use only.
	SafetyFactor     float64
	UpSwitchBuffer   time.Duration
	DownSwitchBuffer time.Duration
	MinHold          time.Duration
	PanicBuffer      time.Duration

	allowed []media.Combo

	// Shared estimator (recommended): one meter over both streams.
	meter *estimator.GlobalMeter
	// Ablation: per-type estimators summed, modelling players that measure
	// audio and video throughput separately.
	separate     bool
	pathAware    bool
	perType      [2]*estimator.SlidingMean
	noDamping    bool
	abandonment  bool
	current      media.Combo
	lastUpswitch time.Duration
}

// Option configures a Player (primarily for ablation benches).
type Option func(*Player)

// WithSeparateEstimators replaces the shared bandwidth meter with
// independent per-type estimators whose sum is used as the estimate —
// quantifying best practice 3's "shared estimator" clause.
func WithSeparateEstimators() Option {
	return func(p *Player) { p.separate = true }
}

// WithoutDamping disables switch hysteresis — quantifying the "avoid
// frequent changes" clause.
func WithoutDamping() Option {
	return func(p *Player) { p.noDamping = true }
}

// WithSafetyFactor overrides the bandwidth safety factor.
func WithSafetyFactor(f float64) Option {
	return func(p *Player) { p.SafetyFactor = f }
}

// WithPathAwareness makes the selection respect per-path budgets: the
// video component must fit the video path's estimate and the audio
// component the audio path's — the §4.1 case where demuxed tracks are
// served from different servers over different bottlenecks, which a single
// aggregate-bandwidth constraint cannot capture.
func WithPathAwareness() Option {
	return func(p *Player) { p.pathAware = true }
}

// WithAbandonment enables in-flight chunk abandonment: when a download's
// projected completion overshoots the buffer it is protecting, the player
// cancels it and refetches the chunk from a cheaper allowed combination.
func WithAbandonment() Option {
	return func(p *Player) { p.abandonment = true }
}

// New creates the player restricted to the given allowed combinations
// (best practice 2). Pass media.AllCombos(...) to ablate the restriction.
// The slice is re-sorted by declared bitrate.
func New(allowed []media.Combo, opts ...Option) *Player {
	if len(allowed) == 0 {
		panic("jointabr: empty allowed combination list")
	}
	p := &Player{
		SafetyFactor:     DefaultSafetyFactor,
		UpSwitchBuffer:   DefaultUpSwitchBuffer,
		DownSwitchBuffer: DefaultDownSwitchBuffer,
		MinHold:          DefaultMinHold,
		PanicBuffer:      DefaultPanicBuffer,
		allowed:          sortByDeclared(allowed),
		meter:            estimator.NewGlobalMeter(),
	}
	p.perType[media.Video] = estimator.NewSlidingMean()
	p.perType[media.Audio] = estimator.NewSlidingMean()
	for _, o := range opts {
		o(p)
	}
	return p
}

// Name implements abr.Algorithm.
func (p *Player) Name() string {
	name := "bestpractice"
	switch {
	case p.separate && p.noDamping:
		name = "bestpractice-separate-nodamping"
	case p.separate:
		name = "bestpractice-separate-est"
	case p.noDamping:
		name = "bestpractice-nodamping"
	}
	if p.pathAware {
		name += "+pathaware"
	}
	if p.abandonment {
		name += "+abandon"
	}
	return name
}

// Allowed exposes the (sorted) allowed combinations.
func (p *Player) Allowed() []media.Combo { return p.allowed }

// SetAllowed replaces the allowed combination list mid-session — e.g. the
// viewer switched audio language and the server's list for that language
// now applies. The current selection resets so the next decision starts
// from the new list.
func (p *Player) SetAllowed(allowed []media.Combo) {
	if len(allowed) == 0 {
		panic("jointabr: empty allowed combination list")
	}
	p.allowed = sortByDeclared(allowed)
	p.current = media.Combo{}
}

// sortByDeclared returns a copy of combos sorted by declared bitrate.
func sortByDeclared(combos []media.Combo) []media.Combo {
	sorted := make([]media.Combo, len(combos))
	copy(sorted, combos)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1].DeclaredBitrate() > sorted[j].DeclaredBitrate(); j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	return sorted
}

// OnStart implements abr.Observer.
func (p *Player) OnStart(ti abr.TransferInfo) { p.meter.TransferStart(ti.At) }

// OnProgress implements abr.Observer: the shared meter accounts bytes as
// they flow, from both streams.
func (p *Player) OnProgress(ti abr.TransferInfo) { p.meter.TransferBytes(ti.Bytes) }

// OnComplete implements abr.Observer.
func (p *Player) OnComplete(ti abr.TransferInfo) {
	p.meter.TransferEnd(ti.At)
	if tput := ti.Throughput(); tput > 0 {
		p.perType[ti.Type].Add(tput)
	}
}

// BandwidthEstimate implements abr.BandwidthReporter.
func (p *Player) BandwidthEstimate() (media.Bps, bool) {
	if p.separate {
		v, okV := p.perType[media.Video].Estimate()
		a, okA := p.perType[media.Audio].Estimate()
		if !okV && !okA {
			return 0, false
		}
		return v + a, true
	}
	return p.meter.Estimate()
}

// Abandon implements abr.Abandoner when WithAbandonment is set: if the
// projected remaining download time exceeds the buffered duration (playback
// would stall waiting for this chunk) and a cheaper allowed combination
// exists, switch the in-flight type to the cheaper combination's track.
// Each chunk is abandoned at most once per type.
func (p *Player) Abandon(dp abr.DownloadProgress) *media.Track {
	if !p.abandonment || dp.Attempt > 0 || dp.Elapsed < 250*time.Millisecond {
		return nil
	}
	if dp.RemainingTime() <= dp.Buffer {
		return nil
	}
	// Pick the highest allowed combination the achieved rate can sustain.
	budget := media.Bps(dp.Rate() * p.SafetyFactor)
	repl := abr.HighestAtMost(p.allowed, budget, media.Combo.DeclaredBitrate)
	var track *media.Track
	if dp.Type == media.Video {
		track = repl.Video
	} else {
		track = repl.Audio
	}
	if track == dp.Track || track.DeclaredBitrate >= dp.Track.DeclaredBitrate {
		return nil
	}
	p.current = repl
	return track
}

// SelectCombo implements abr.JointAlgorithm.
func (p *Player) SelectCombo(st abr.State) media.Combo {
	est, ok := p.BandwidthEstimate()
	if !ok {
		// Conservative fast start: lowest allowed combination.
		p.current = p.allowed[0]
		return p.current
	}
	budget := media.Bps(float64(est) * p.SafetyFactor)
	if st.MinBuffer() < p.PanicBuffer && !st.Startup {
		budget /= 2
	}
	ideal := p.idealCombo(st, budget)
	if p.current.Video == nil || p.noDamping {
		p.current = ideal
		return p.current
	}
	switch {
	case ideal.DeclaredBitrate() > p.current.DeclaredBitrate():
		// Increase only with a healthy buffer and not too soon after the
		// previous increase — stability for both components.
		if st.MinBuffer() >= p.UpSwitchBuffer && st.Now-p.lastUpswitch >= p.MinHold {
			p.current = ideal
			p.lastUpswitch = st.Now
		}
	case ideal.DeclaredBitrate() < p.current.DeclaredBitrate():
		// Hysteresis band: hold the current combination while the raw
		// estimate still covers it (up-switches needed SafetyFactor×est, so
		// small estimate wobbles never flap the selection), and while a full
		// buffer can ride out a real dip. A panicking buffer drops
		// immediately.
		holdable := est >= p.current.DeclaredBitrate() || st.MinBuffer() >= p.DownSwitchBuffer
		if st.MinBuffer() < p.PanicBuffer || !holdable {
			p.current = ideal
		}
	default:
		p.current = ideal
	}
	return p.current
}

// idealCombo picks the richest allowed combination within the budget. In
// path-aware mode each component must additionally fit its own path's
// estimated capacity.
func (p *Player) idealCombo(st abr.State, budget media.Bps) media.Combo {
	if !p.pathAware {
		return abr.HighestAtMost(p.allowed, budget, media.Combo.DeclaredBitrate)
	}
	estV, okV := p.perType[media.Video].Estimate()
	estA, okA := p.perType[media.Audio].Estimate()
	if !okV || !okA {
		return p.allowed[0]
	}
	panicking := st.MinBuffer() < p.PanicBuffer && !st.Startup
	budgetV := media.Bps(float64(estV) * p.SafetyFactor)
	budgetA := media.Bps(float64(estA) * p.SafetyFactor)
	if panicking {
		budgetV /= 2
		budgetA /= 2
	}
	best := p.allowed[0]
	for _, cb := range p.allowed {
		if cb.Video.DeclaredBitrate <= budgetV && cb.Audio.DeclaredBitrate <= budgetA {
			best = cb
		}
	}
	return best
}
