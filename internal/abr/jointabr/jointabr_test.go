package jointabr

import (
	"testing"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/abr/estimator"
	"demuxabr/internal/media"
)

func feed(p *Player, t media.Type, bps float64, n int, at time.Duration) time.Duration {
	for i := 0; i < n; i++ {
		p.OnStart(abr.TransferInfo{Type: t, At: at})
		p.OnProgress(abr.TransferInfo{Type: t, Bytes: bps / 8, Duration: time.Second})
		at += time.Second
		p.OnComplete(abr.TransferInfo{Type: t, Bytes: bps / 8, Duration: time.Second, At: at})
	}
	return at
}

func st(buf time.Duration, now time.Duration) abr.State {
	return abr.State{Now: now, VideoBuffer: buf, AudioBuffer: buf, ChunkDuration: 5 * time.Second}
}

func TestStartsAtLowestAllowed(t *testing.T) {
	c := media.DramaShow()
	p := New(media.HSub(c))
	got := p.SelectCombo(st(0, 0))
	if got.String() != "V1+A1" {
		t.Errorf("initial selection = %s, want V1+A1", got)
	}
}

func TestSelectsOnlyAllowedCombos(t *testing.T) {
	c := media.DramaShow()
	allowed := media.HSub(c)
	p := New(allowed)
	inAllowed := func(cb media.Combo) bool {
		for _, a := range allowed {
			if a.String() == cb.String() {
				return true
			}
		}
		return false
	}
	now := time.Duration(0)
	for _, rate := range []float64{200e3, 500e3, 900e3, 2e6, 5e6, 300e3} {
		now = feed(p, media.Video, rate, 5, now)
		got := p.SelectCombo(st(15*time.Second, now))
		if !inAllowed(got) {
			t.Fatalf("selected %s at %v bps: not in the allowed list", got, rate)
		}
	}
}

func TestAudioAdaptsWithBandwidth(t *testing.T) {
	// Best practice 1: the audio selection must move with bandwidth.
	c := media.DramaShow()
	p := New(media.HSub(c))
	now := feed(p, media.Video, 300e3, 6, 0)
	low := p.SelectCombo(st(15*time.Second, now))
	now = feed(p, media.Video, 6e6, 12, now)
	now += 20 * time.Second
	high := p.SelectCombo(st(20*time.Second, now))
	if low.Audio.ID == high.Audio.ID {
		t.Errorf("audio pinned at %s across a 20x bandwidth change", low.Audio.ID)
	}
	if high.Audio.ID != "A3" || high.Video.ID != "V6" {
		t.Errorf("high-bandwidth selection = %s, want V6+A3", high)
	}
}

func TestDampingPreventsFlapping(t *testing.T) {
	c := media.DramaShow()
	p := New(media.HSub(c))
	// Estimate hovers around the V2/V3 boundary; with damping the
	// selection must not change on every decision.
	now := feed(p, media.Video, 700e3, 4, 0)
	prev := p.SelectCombo(st(15*time.Second, now))
	switches := 0
	rates := []float64{850e3, 700e3, 880e3, 690e3, 860e3, 710e3, 840e3, 700e3}
	for _, r := range rates {
		now = feed(p, media.Video, r, 2, now)
		got := p.SelectCombo(st(15*time.Second, now))
		if got.String() != prev.String() {
			switches++
		}
		prev = got
	}
	if switches > 2 {
		t.Errorf("%d switches across oscillating estimates; damping should hold", switches)
	}
}

func TestNoDampingAblationFlaps(t *testing.T) {
	c := media.DramaShow()
	damped := New(media.HSub(c))
	undamped := New(media.HSub(c), WithoutDamping())
	count := func(p *Player) int {
		now := feed(p, media.Video, 700e3, 4, 0)
		prev := p.SelectCombo(st(15*time.Second, now))
		switches := 0
		for i := 0; i < 12; i++ {
			r := 500e3
			if i%2 == 0 {
				r = 1000e3
			}
			// Hard-reset the estimator to the target rate.
			p.meter = estimator.NewGlobalMeter()
			p.meter.TransferStart(now)
			p.meter.TransferBytes(r / 8)
			p.meter.TransferEnd(now + time.Second)
			now += time.Second
			got := p.SelectCombo(st(15*time.Second, now))
			if got.String() != prev.String() {
				switches++
			}
			prev = got
		}
		return switches
	}
	if d, u := count(damped), count(undamped); d >= u {
		t.Errorf("damped switches (%d) should be fewer than undamped (%d)", d, u)
	}
}

func TestPanicHalvesBudget(t *testing.T) {
	c := media.DramaShow()
	p := New(media.HSub(c), WithoutDamping())
	now := feed(p, media.Video, 2e6, 6, 0)
	healthy := p.SelectCombo(st(15*time.Second, now))
	panicked := p.SelectCombo(st(2*time.Second, now))
	if panicked.DeclaredBitrate() >= healthy.DeclaredBitrate() {
		t.Errorf("panic selection %s not below healthy %s", panicked, healthy)
	}
}

func TestSharedEstimatorSeesAggregate(t *testing.T) {
	// Two concurrent 1 s transfers, each half of a 1 Mbps link: the shared
	// meter must estimate ~1 Mbps while separate estimators sum the
	// per-type throughputs (which here also sums to 1 Mbps) — the
	// difference appears when only one type has samples.
	c := media.DramaShow()
	shared := New(media.HSub(c))
	shared.OnStart(abr.TransferInfo{Type: media.Video, At: 0})
	shared.OnStart(abr.TransferInfo{Type: media.Audio, At: 0})
	shared.OnProgress(abr.TransferInfo{Type: media.Video, Bytes: 62500, Duration: time.Second})
	shared.OnProgress(abr.TransferInfo{Type: media.Audio, Bytes: 62500, Duration: time.Second})
	shared.OnComplete(abr.TransferInfo{Type: media.Video, Bytes: 62500, Duration: time.Second, At: time.Second})
	shared.OnComplete(abr.TransferInfo{Type: media.Audio, Bytes: 62500, Duration: time.Second, At: time.Second})
	got, ok := shared.BandwidthEstimate()
	if !ok || got < media.Kbps(990) || got > media.Kbps(1010) {
		t.Errorf("shared estimate = %v,%v; want ~1 Mbps", got, ok)
	}
}

func TestSeparateEstimatorAblation(t *testing.T) {
	c := media.DramaShow()
	p := New(media.HSub(c), WithSeparateEstimators())
	if _, ok := p.BandwidthEstimate(); ok {
		t.Error("no samples yet: estimate should be absent")
	}
	// Only video samples: the sum is the video estimate alone.
	feed(p, media.Video, 800e3, 4, 0)
	got, ok := p.BandwidthEstimate()
	if !ok || got != media.Kbps(800) {
		t.Errorf("separate estimate = %v,%v; want 800 Kbps", got, ok)
	}
	feed(p, media.Audio, 200e3, 4, 0)
	got, _ = p.BandwidthEstimate()
	if got != media.Kbps(1000) {
		t.Errorf("separate estimate after audio = %v; want 1 Mbps", got)
	}
}

func TestNamesDistinguishAblations(t *testing.T) {
	c := media.DramaShow()
	names := map[string]bool{}
	for _, p := range []*Player{
		New(media.HSub(c)),
		New(media.HSub(c), WithoutDamping()),
		New(media.HSub(c), WithSeparateEstimators()),
		New(media.HSub(c), WithSeparateEstimators(), WithoutDamping()),
	} {
		if names[p.Name()] {
			t.Errorf("duplicate name %q", p.Name())
		}
		names[p.Name()] = true
	}
}

func TestEmptyAllowedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty allowed list should panic")
		}
	}()
	New(nil)
}

func TestAllowedListSorted(t *testing.T) {
	c := media.DramaShow()
	// Feed combos in reverse order; Allowed() must come back sorted.
	combos := media.HSub(c)
	rev := make([]media.Combo, len(combos))
	for i, cb := range combos {
		rev[len(combos)-1-i] = cb
	}
	p := New(rev)
	got := p.Allowed()
	for i := 1; i < len(got); i++ {
		if got[i-1].DeclaredBitrate() > got[i].DeclaredBitrate() {
			t.Fatalf("allowed list not sorted at %d: %v", i, got)
		}
	}
}
