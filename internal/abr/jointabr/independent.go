package jointabr

import (
	"demuxabr/internal/abr"
	"demuxabr/internal/media"
)

// Independent downgrades the best-practice player to dash.js-style
// free-running per-type scheduling — the ablation of best practice 4
// (balanced chunk-level prefetching). The decision logic is identical; only
// the download discipline changes, because this type implements
// abr.PerTypeAlgorithm instead of abr.JointAlgorithm.
type Independent struct {
	p *Player
}

// NewIndependent creates the scheduling-ablated best-practice player.
func NewIndependent(allowed []media.Combo, opts ...Option) *Independent {
	return &Independent{p: New(allowed, opts...)}
}

// Name implements abr.Algorithm.
func (i *Independent) Name() string { return i.p.Name() + "-independent" }

// OnStart implements abr.Observer.
func (i *Independent) OnStart(ti abr.TransferInfo) { i.p.OnStart(ti) }

// OnProgress implements abr.Observer.
func (i *Independent) OnProgress(ti abr.TransferInfo) { i.p.OnProgress(ti) }

// OnComplete implements abr.Observer.
func (i *Independent) OnComplete(ti abr.TransferInfo) { i.p.OnComplete(ti) }

// BandwidthEstimate implements abr.BandwidthReporter.
func (i *Independent) BandwidthEstimate() (media.Bps, bool) { return i.p.BandwidthEstimate() }

// SelectTrack implements abr.PerTypeAlgorithm by projecting the joint
// decision onto the requested type.
func (i *Independent) SelectTrack(t media.Type, st abr.State) *media.Track {
	combo := i.p.SelectCombo(st)
	if t == media.Video {
		return combo.Video
	}
	return combo.Audio
}
