package jointabr

import (
	"testing"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/trace"
)

func TestVBRAwareUsesActualChunkSizes(t *testing.T) {
	c := media.ActionMovie()
	sizer := func(tr *media.Track, idx int) int64 { return c.ChunkSize(tr, idx) }
	v := NewVBRAware(media.HSub(c), sizer)
	feedVBR(v, 1.2e6, 6)
	// Find a spiky position: V4's peak chunks approach 1190 Kbps while its
	// declared average-based cost is 734. The VBR-aware player must select
	// lower on the expensive chunk than on a cheap one.
	expensive, cheap := -1, -1
	v4 := c.TrackByID("V4")
	for i := 0; i < c.NumChunks(); i++ {
		rate := float64(c.ChunkSize(v4, i)) * 8 / c.ChunkDurationAt(i).Seconds()
		if rate > 1.1e6 && expensive < 0 {
			expensive = i
		}
		if rate < 0.7e6 && cheap < 0 {
			cheap = i
		}
	}
	if expensive < 0 || cheap < 0 {
		t.Skip("chunk model produced no suitable spike; recalibrate test")
	}
	st := abr.State{VideoBuffer: 15 * time.Second, AudioBuffer: 15 * time.Second, ChunkDuration: 5 * time.Second}
	st.ChunkIndex = cheap
	onCheap := v.SelectCombo(st)
	v2 := NewVBRAware(media.HSub(c), sizer)
	feedVBR(v2, 1.2e6, 6)
	st.ChunkIndex = expensive
	onExpensive := v2.SelectCombo(st)
	if onExpensive.DeclaredBitrate() > onCheap.DeclaredBitrate() {
		t.Errorf("expensive chunk selected %s vs cheap chunk %s", onExpensive, onCheap)
	}
}

func feedVBR(v *VBRAware, bps float64, n int) {
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		v.OnStart(abr.TransferInfo{At: at})
		v.OnProgress(abr.TransferInfo{Bytes: bps / 8, Duration: time.Second})
		at += time.Second
		v.OnComplete(abr.TransferInfo{Duration: time.Second, At: at})
	}
}

func TestVBRAwareEndToEndOnSpikyContent(t *testing.T) {
	// On the action movie (spiky VBR) at a tight rate, the VBR-aware player
	// must not rebuffer more than the declared-average player and must stay
	// on the allowed list.
	c := media.ActionMovie()
	sizer := func(tr *media.Track, idx int) int64 { return c.ChunkSize(tr, idx) }
	run := func(model abr.Algorithm) qoe.Metrics {
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, trace.Fixed(media.Kbps(1100)))
		res, err := player.Run(link, player.Config{Content: c, Model: model})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ended {
			t.Fatal("did not finish")
		}
		return qoe.Compute(res, c, media.HSub(c), qoe.DefaultWeights())
	}
	vbr := run(NewVBRAware(media.HSub(c), sizer))
	avg := run(New(media.HSub(c)))
	if vbr.OffManifest != 0 {
		t.Errorf("VBR-aware off-manifest = %d", vbr.OffManifest)
	}
	if vbr.RebufferTime > avg.RebufferTime+2*time.Second {
		t.Errorf("VBR-aware rebuffer %v worse than declared-average %v", vbr.RebufferTime, avg.RebufferTime)
	}
	// Exploiting per-chunk sizes must not push the session to the stall
	// boundary...
	if vbr.BufferHealth.P10 < 2 {
		t.Errorf("VBR-aware buffer health p10 %.1f s: living at the stall boundary", vbr.BufferHealth.P10)
	}
	// ...and should buy at least the declared-average player's quality.
	if vbr.AvgVideoQuality+1e-9 < avg.AvgVideoQuality {
		t.Errorf("VBR-aware video quality %.2f below declared-average %.2f",
			vbr.AvgVideoQuality, avg.AvgVideoQuality)
	}
}

func TestVBRAwareValidation(t *testing.T) {
	c := media.DramaShow()
	sizer := func(tr *media.Track, idx int) int64 { return c.ChunkSize(tr, idx) }
	defer func() {
		if recover() == nil {
			t.Error("empty allowed should panic")
		}
	}()
	_ = NewVBRAware(media.HSub(c), sizer).Name()
	NewVBRAware(nil, sizer)
}

func TestVBRAwareNilSizerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil sizer should panic")
		}
	}()
	NewVBRAware(media.HSub(media.DramaShow()), nil)
}
