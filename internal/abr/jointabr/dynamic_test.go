package jointabr

import (
	"testing"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/abr/dashjs"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/qoe"
	"demuxabr/internal/trace"
)

func TestDynamicJointSwitchover(t *testing.T) {
	c := media.DramaShow()
	d := NewDynamicJoint(media.HSub(c))
	if d.UsingBola() {
		t.Fatal("must start on THROUGHPUT")
	}
	// Feed a high estimate, then offer a deep buffer: BOLA takes over.
	at := time.Duration(0)
	for i := 0; i < 6; i++ {
		d.OnStart(abr.TransferInfo{At: at})
		d.OnProgress(abr.TransferInfo{Bytes: 250_000, Duration: time.Second})
		at += time.Second
		d.OnComplete(abr.TransferInfo{Duration: time.Second, At: at})
	}
	d.SelectCombo(abr.State{VideoBuffer: 20 * time.Second, AudioBuffer: 20 * time.Second, ChunkDuration: 5 * time.Second})
	if !d.UsingBola() {
		t.Error("expected BOLA above the enter threshold")
	}
	d.SelectCombo(abr.State{VideoBuffer: 2 * time.Second, AudioBuffer: 2 * time.Second, ChunkDuration: 5 * time.Second})
	if d.UsingBola() {
		t.Error("expected THROUGHPUT below the exit threshold")
	}
}

// TestJointnessIsolation is the controlled version of the §3.4 finding:
// the SAME rules (DYNAMIC) with the SAME thresholds, differing only in
// per-type independence, on the Fig 5 link. The joint variant must avoid
// the undesirable pairings and the buffer imbalance that define Fig 5.
func TestJointnessIsolation(t *testing.T) {
	c := media.DramaShow()
	run := func(model abr.Algorithm) qoe.Metrics {
		eng := netsim.NewEngine()
		link := netsim.NewLink(eng, trace.Fig5Bandwidth())
		res, err := player.Run(link, player.Config{Content: c, Model: model})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Ended {
			t.Fatal("did not finish")
		}
		return qoe.Compute(res, c, media.HSub(c), qoe.DefaultWeights())
	}
	joint := run(NewDynamicJoint(media.HSub(c)))
	independent := run(dashjs.New(c.VideoTracks, c.AudioTracks))

	if joint.OffManifest != 0 {
		t.Errorf("joint DYNAMIC selected %d off-manifest chunks", joint.OffManifest)
	}
	if independent.OffManifest == 0 {
		t.Error("independent DYNAMIC should stray off H_sub (it cannot know it)")
	}
	if joint.MaxImbalance > media.DramaChunkDuration+time.Second {
		t.Errorf("joint imbalance = %v, want <= one chunk", joint.MaxImbalance)
	}
	if independent.MaxImbalance <= joint.MaxImbalance {
		t.Errorf("independent imbalance %v <= joint %v",
			independent.MaxImbalance, joint.MaxImbalance)
	}
	if joint.Score <= independent.Score {
		t.Errorf("joint DYNAMIC QoE %.2f <= independent %.2f — jointness should be the winning variable",
			joint.Score, independent.Score)
	}
}

func TestDynamicJointValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty allowed should panic")
		}
	}()
	NewDynamicJoint(nil)
}
