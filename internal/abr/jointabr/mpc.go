package jointabr

import (
	"math"

	"demuxabr/internal/abr"
	"demuxabr/internal/abr/estimator"
	"demuxabr/internal/media"
)

// MPC is a model-predictive joint audio/video adapter in the style of
// Yin et al. [25 in the paper], lifted to the server-allowed combination
// list: at every chunk position it enumerates combination sequences over a
// lookahead horizon, simulates the buffer trajectory under the current
// bandwidth estimate, and commits the first step of the best sequence.
//
// The objective mirrors the QoE model: log-bitrate utility, minus a switch
// penalty on utility changes (both components move together in a
// combination switch), minus a heavy penalty on predicted rebuffering.
// Like the other players in this package it observes both streams through
// one shared meter and relies on chunk-synced scheduling.
type MPC struct {
	// Horizon is the lookahead depth in chunks (default 5).
	Horizon int
	// SwitchPenalty and RebufferPenalty weigh the objective (defaults 2
	// and 8 per second).
	SwitchPenalty   float64
	RebufferPenalty float64
	// DrainPenalty charges combinations whose predicted download time
	// exceeds the chunk duration (net buffer drain) per second of drain —
	// a sustainability bias that keeps the finite lookahead from riding an
	// unsustainable rung until the buffer collapses and oscillating.
	// Default 1.
	DrainPenalty float64

	allowed   []media.Combo
	utilities []float64
	meter     *estimator.GlobalMeter
	lastIdx   int
}

// NewMPC creates the adapter over the allowed combinations.
func NewMPC(allowed []media.Combo, horizon int) *MPC {
	if len(allowed) == 0 {
		panic("jointabr: empty allowed combination list")
	}
	if horizon <= 0 {
		horizon = 5
	}
	sorted := make([]media.Combo, len(allowed))
	copy(sorted, allowed)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1].DeclaredBitrate() > sorted[j].DeclaredBitrate(); j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	m := &MPC{
		Horizon:         horizon,
		SwitchPenalty:   2,
		RebufferPenalty: 8,
		DrainPenalty:    1,
		allowed:         sorted,
		meter:           estimator.NewGlobalMeter(),
		lastIdx:         -1,
	}
	m.utilities = make([]float64, len(sorted))
	base := math.Log(float64(sorted[0].DeclaredBitrate()))
	for i, cb := range sorted {
		m.utilities[i] = math.Log(float64(cb.DeclaredBitrate())) - base
	}
	return m
}

// Name implements abr.Algorithm.
func (m *MPC) Name() string { return "mpc-joint" }

// Allowed exposes the combination list.
func (m *MPC) Allowed() []media.Combo { return m.allowed }

// OnStart implements abr.Observer.
func (m *MPC) OnStart(ti abr.TransferInfo) { m.meter.TransferStart(ti.At) }

// OnProgress implements abr.Observer.
func (m *MPC) OnProgress(ti abr.TransferInfo) { m.meter.TransferBytes(ti.Bytes) }

// OnComplete implements abr.Observer.
func (m *MPC) OnComplete(ti abr.TransferInfo) { m.meter.TransferEnd(ti.At) }

// BandwidthEstimate implements abr.BandwidthReporter.
func (m *MPC) BandwidthEstimate() (media.Bps, bool) { return m.meter.Estimate() }

// SelectCombo implements abr.JointAlgorithm.
func (m *MPC) SelectCombo(st abr.State) media.Combo {
	est, ok := m.meter.Estimate()
	if !ok || est <= 0 {
		m.lastIdx = 0
		return m.allowed[0]
	}
	chunkSecs := st.ChunkDuration.Seconds()
	if chunkSecs <= 0 {
		chunkSecs = 5
	}
	bestIdx, _ := m.search(st.MinBuffer().Seconds(), m.lastIdx, m.Horizon, float64(est), chunkSecs)
	m.lastIdx = bestIdx
	return m.allowed[bestIdx]
}

// search enumerates combination sequences of the given depth and returns
// the best first step and its objective value.
func (m *MPC) search(buffer float64, prevIdx, depth int, est, chunkSecs float64) (int, float64) {
	bestIdx, bestVal := 0, math.Inf(-1)
	for i, cb := range m.allowed {
		downloadSecs := float64(cb.DeclaredBitrate()) * chunkSecs / est
		b := buffer - downloadSecs
		rebuffer := 0.0
		if b < 0 {
			rebuffer = -b
			b = 0
		}
		b += chunkSecs
		val := m.utilities[i] - m.RebufferPenalty*rebuffer
		if drain := downloadSecs - chunkSecs; drain > 0 {
			// Sustainability matters in proportion to how close the
			// projected buffer is to empty: with a deep buffer a transient
			// drain is exactly what the buffer is for.
			const comfort = 20.0 // seconds
			urgency := (comfort - b) / comfort
			if urgency > 0 {
				val -= m.DrainPenalty * drain * urgency
			}
		}
		if prevIdx >= 0 {
			val -= m.SwitchPenalty * math.Abs(m.utilities[i]-m.utilities[prevIdx])
		}
		if depth > 1 {
			_, future := m.search(b, i, depth-1, est, chunkSecs)
			val += future
		}
		if val > bestVal {
			bestVal = val
			bestIdx = i
		}
	}
	return bestIdx, bestVal
}

// compile-time interface checks for all adapters in this package.
var (
	_ abr.JointAlgorithm    = (*Player)(nil)
	_ abr.JointAlgorithm    = (*BolaJoint)(nil)
	_ abr.JointAlgorithm    = (*MPC)(nil)
	_ abr.PerTypeAlgorithm  = (*Independent)(nil)
	_ abr.Abandoner         = (*Player)(nil)
	_ abr.BandwidthReporter = (*Player)(nil)
	_ abr.BandwidthReporter = (*BolaJoint)(nil)
	_ abr.BandwidthReporter = (*MPC)(nil)
)
