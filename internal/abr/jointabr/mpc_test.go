package jointabr

import (
	"testing"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/player"
	"demuxabr/internal/trace"
)

func feedMPC(m *MPC, bps float64, n int) {
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		m.OnStart(abr.TransferInfo{At: at})
		m.OnProgress(abr.TransferInfo{Bytes: bps / 8, Duration: time.Second})
		at += time.Second
		m.OnComplete(abr.TransferInfo{Duration: time.Second, At: at})
	}
}

func TestMPCStartsLowWithoutEstimate(t *testing.T) {
	c := media.DramaShow()
	m := NewMPC(media.HSub(c), 5)
	got := m.SelectCombo(abr.State{ChunkDuration: 5 * time.Second})
	if got.String() != "V1+A1" {
		t.Errorf("initial selection = %s, want V1+A1", got)
	}
}

func TestMPCMatchesBandwidth(t *testing.T) {
	c := media.DramaShow()
	m := NewMPC(media.HSub(c), 5)
	feedMPC(m, 1e6, 6)
	deep := m.SelectCombo(abr.State{
		VideoBuffer: 20 * time.Second, AudioBuffer: 20 * time.Second,
		ChunkDuration: 5 * time.Second,
	})
	// With a deep buffer MPC may ride the marginally-unsustainable V4+A2
	// (that is what the buffer is for) but no higher.
	if deep.String() != "V3+A2" && deep.String() != "V4+A2" {
		t.Errorf("deep-buffer selection at 1 Mbps = %s, want V3+A2 or V4+A2", deep)
	}
	// With a thin buffer the sustainability bias must hold it at V3+A2
	// (669 Kbps), the highest rung 1 Mbps sustains.
	m2 := NewMPC(media.HSub(c), 5)
	feedMPC(m2, 1e6, 6)
	thin := m2.SelectCombo(abr.State{
		VideoBuffer: 6 * time.Second, AudioBuffer: 6 * time.Second,
		ChunkDuration: 5 * time.Second,
	})
	if thin.String() != "V3+A2" {
		t.Errorf("thin-buffer selection at 1 Mbps = %s, want V3+A2", thin)
	}
}

func TestMPCAvoidsPredictedRebuffering(t *testing.T) {
	c := media.DramaShow()
	m := NewMPC(media.HSub(c), 5)
	feedMPC(m, 3e6, 6)
	// Ample bandwidth but an empty buffer: the lookahead must not jump to
	// a combination whose first download outruns the buffer by much.
	got := m.SelectCombo(abr.State{ChunkDuration: 5 * time.Second})
	if got.DeclaredBitrate() > media.Kbps(2300) {
		t.Errorf("empty-buffer selection = %s, too aggressive", got)
	}
	// With a deep buffer it can afford the top rung.
	got = m.SelectCombo(abr.State{
		VideoBuffer: 30 * time.Second, AudioBuffer: 30 * time.Second,
		ChunkDuration: 5 * time.Second,
	})
	if got.DeclaredBitrate() < media.Kbps(2000) {
		t.Errorf("deep-buffer selection = %s, too conservative at 3 Mbps", got)
	}
}

func TestMPCSelectsOnlyAllowed(t *testing.T) {
	c := media.DramaShow()
	allowed := media.HSub(c)
	m := NewMPC(allowed, 4)
	in := func(cb media.Combo) bool {
		for _, a := range allowed {
			if a.String() == cb.String() {
				return true
			}
		}
		return false
	}
	for _, bw := range []float64{200e3, 700e3, 1.5e6, 6e6} {
		feedMPC(m, bw, 4)
		for buf := time.Duration(0); buf <= 30*time.Second; buf += 10 * time.Second {
			got := m.SelectCombo(abr.State{VideoBuffer: buf, AudioBuffer: buf, ChunkDuration: 5 * time.Second})
			if !in(got) {
				t.Fatalf("selection %s not allowed (bw %v, buf %v)", got, bw, buf)
			}
		}
	}
}

func TestMPCEndToEnd(t *testing.T) {
	c := media.DramaShow()
	eng := netsim.NewEngine()
	link := netsim.NewLink(eng, trace.Fixed(media.Kbps(1300)))
	res, err := player.Run(link, player.Config{Content: c, Model: NewMPC(media.HSub(c), 5)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ended {
		t.Fatal("did not finish")
	}
	if res.RebufferTime() > 3*time.Second {
		t.Errorf("rebuffer = %v on a steady 1.3 Mbps link", res.RebufferTime())
	}
	if res.Switches(media.Video)+res.Switches(media.Audio) > 12 {
		t.Errorf("switch churn: %d/%d", res.Switches(media.Video), res.Switches(media.Audio))
	}
}

func TestMPCDefaults(t *testing.T) {
	c := media.DramaShow()
	m := NewMPC(media.HSub(c), 0)
	if m.Horizon != 5 || m.Name() != "mpc-joint" || len(m.Allowed()) != 6 {
		t.Errorf("defaults wrong: %+v", m)
	}
	defer func() {
		if recover() == nil {
			t.Error("empty allowed should panic")
		}
	}()
	NewMPC(nil, 5)
}
