package jointabr

import (
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/abr/estimator"
	"demuxabr/internal/media"
)

// DynamicJoint is dash.js's DYNAMIC strategy (§3.4: THROUGHPUT under low
// buffer, BOLA under high buffer) applied *jointly* over the allowed
// combinations with a shared bandwidth meter — the controlled counterpart
// to the dashjs model. Comparing the two isolates exactly what the paper's
// §3.4 finding costs: same rules, same thresholds, only the per-type
// independence removed.
type DynamicJoint struct {
	// SafetyFactor is the THROUGHPUT rule's headroom (dash.js 0.9).
	SafetyFactor float64
	// EnterBuffer/ExitBuffer are the DYNAMIC switchover levels (12 s/6 s).
	EnterBuffer time.Duration
	ExitBuffer  time.Duration

	allowed   []media.Combo
	bola      *BolaJoint
	meter     *estimator.GlobalMeter
	usingBola bool
}

// NewDynamicJoint builds the adapter over the allowed combinations.
func NewDynamicJoint(allowed []media.Combo) *DynamicJoint {
	if len(allowed) == 0 {
		panic("jointabr: empty allowed combination list")
	}
	return &DynamicJoint{
		SafetyFactor: 0.9,
		EnterBuffer:  12 * time.Second,
		ExitBuffer:   6 * time.Second,
		allowed:      sortByDeclared(allowed),
		bola:         NewBolaJoint(allowed, 0),
		meter:        estimator.NewGlobalMeter(),
	}
}

// Name implements abr.Algorithm.
func (d *DynamicJoint) Name() string { return "dynamic-joint" }

// Allowed exposes the combination list.
func (d *DynamicJoint) Allowed() []media.Combo { return d.allowed }

// UsingBola reports which rule is active.
func (d *DynamicJoint) UsingBola() bool { return d.usingBola }

// OnStart implements abr.Observer.
func (d *DynamicJoint) OnStart(ti abr.TransferInfo) {
	d.meter.TransferStart(ti.At)
	d.bola.OnStart(ti)
}

// OnProgress implements abr.Observer.
func (d *DynamicJoint) OnProgress(ti abr.TransferInfo) {
	d.meter.TransferBytes(ti.Bytes)
	d.bola.OnProgress(ti)
}

// OnComplete implements abr.Observer.
func (d *DynamicJoint) OnComplete(ti abr.TransferInfo) {
	d.meter.TransferEnd(ti.At)
	d.bola.OnComplete(ti)
}

// BandwidthEstimate implements abr.BandwidthReporter.
func (d *DynamicJoint) BandwidthEstimate() (media.Bps, bool) { return d.meter.Estimate() }

// SelectCombo implements abr.JointAlgorithm with the DYNAMIC switchover the
// paper describes, over combinations instead of per-type ladders.
func (d *DynamicJoint) SelectCombo(st abr.State) media.Combo {
	tput := d.allowed[0]
	if est, ok := d.meter.Estimate(); ok {
		budget := media.Bps(float64(est) * d.SafetyFactor)
		tput = abr.HighestAtMost(d.allowed, budget, media.Combo.DeclaredBitrate)
	}
	bola := d.bola.SelectCombo(st)
	buffer := st.MinBuffer()
	if d.usingBola {
		if buffer < d.ExitBuffer && bola.DeclaredBitrate() < tput.DeclaredBitrate() {
			d.usingBola = false
		}
	} else {
		if buffer > d.EnterBuffer && bola.DeclaredBitrate() >= tput.DeclaredBitrate() {
			d.usingBola = true
		}
	}
	if d.usingBola {
		return bola
	}
	return tput
}
