package jointabr

import (
	"math"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/abr/estimator"
	"demuxabr/internal/media"
)

// BolaJoint is the rate-adaptation scheme the paper's §5 names as future
// work: a principled adapter "following the suggested practices" — here,
// BOLA's Lyapunov-utility objective lifted from single-track selection to
// the server-allowed audio/video combinations.
//
// Each allowed combination gets a utility proportional to the log of its
// aggregate declared bitrate; the selection maximizes
//
//	(Vp·(u_i + gp) − Q) / r_i
//
// where Q is the minimum of the audio and video buffer levels (the quantity
// whose underrun stalls playback in demuxed streaming). All four §4
// practices hold: audio adapts (combinations carry audio), only allowed
// combinations are considered, the decision is joint with a buffer signal
// shared across the two components, and the abr.JointAlgorithm interface
// gives chunk-synced scheduling.
type BolaJoint struct {
	// BufferTarget sizes the BOLA control parameters (default 20 s).
	BufferTarget time.Duration

	allowed   []media.Combo
	utilities []float64
	vp        float64
	gp        float64

	// BOLA-O oscillation control: up-switches are capped at the highest
	// combination the measured throughput sustains, so the utility
	// objective cannot bounce across rungs faster than the link warrants.
	meter   *estimator.GlobalMeter
	lastIdx int
}

// NewBolaJoint derives BOLA parameters over the allowed combinations.
func NewBolaJoint(allowed []media.Combo, bufferTarget time.Duration) *BolaJoint {
	if len(allowed) == 0 {
		panic("jointabr: empty allowed combination list")
	}
	if bufferTarget <= 0 {
		bufferTarget = 20 * time.Second
	}
	sorted := make([]media.Combo, len(allowed))
	copy(sorted, allowed)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1].DeclaredBitrate() > sorted[j].DeclaredBitrate(); j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	b := &BolaJoint{
		BufferTarget: bufferTarget,
		allowed:      sorted,
		meter:        estimator.NewGlobalMeter(),
		lastIdx:      -1,
	}
	b.utilities = make([]float64, len(sorted))
	l0 := math.Log(float64(sorted[0].DeclaredBitrate()))
	for i, cb := range sorted {
		b.utilities[i] = math.Log(float64(cb.DeclaredBitrate())) - l0 + 1
	}
	// The dash.js parameterization, over combinations: a minimum buffer of
	// 10 s plus headroom toward the target.
	const minimumBuffer = 10.0
	bufferSecs := math.Max(bufferTarget.Seconds(), minimumBuffer+2)
	top := b.utilities[len(b.utilities)-1]
	b.gp = (top - 1) / (bufferSecs/minimumBuffer - 1)
	b.vp = minimumBuffer / b.gp
	return b
}

// Name implements abr.Algorithm.
func (b *BolaJoint) Name() string { return "bola-joint" }

// Allowed exposes the combination list.
func (b *BolaJoint) Allowed() []media.Combo { return b.allowed }

// OnStart implements abr.Observer, feeding the BOLA-O throughput meter.
func (b *BolaJoint) OnStart(ti abr.TransferInfo) { b.meter.TransferStart(ti.At) }

// OnProgress implements abr.Observer.
func (b *BolaJoint) OnProgress(ti abr.TransferInfo) { b.meter.TransferBytes(ti.Bytes) }

// OnComplete implements abr.Observer.
func (b *BolaJoint) OnComplete(ti abr.TransferInfo) { b.meter.TransferEnd(ti.At) }

// BandwidthEstimate implements abr.BandwidthReporter.
func (b *BolaJoint) BandwidthEstimate() (media.Bps, bool) { return b.meter.Estimate() }

// SelectCombo implements abr.JointAlgorithm: the BOLA argmax with BOLA-O
// oscillation suppression on up-switches.
func (b *BolaJoint) SelectCombo(st abr.State) media.Combo {
	q := st.MinBuffer().Seconds()
	bestIdx, bestScore := 0, math.Inf(-1)
	for i, cb := range b.allowed {
		score := (b.vp*(b.utilities[i]+b.gp) - q) / float64(cb.DeclaredBitrate())
		if score > bestScore {
			bestScore = score
			bestIdx = i
		}
	}
	if b.lastIdx >= 0 && bestIdx > b.lastIdx {
		if est, ok := b.meter.Estimate(); ok {
			sustainable := 0
			for i, cb := range b.allowed {
				if cb.DeclaredBitrate() <= est {
					sustainable = i
				}
			}
			if sustainable < b.lastIdx {
				sustainable = b.lastIdx // never forces a down-switch
			}
			if bestIdx > sustainable {
				bestIdx = sustainable
			}
		}
	}
	b.lastIdx = bestIdx
	return b.allowed[bestIdx]
}
