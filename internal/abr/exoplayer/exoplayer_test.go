package exoplayer

import (
	"testing"
	"testing/quick"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/media"
)

func comboIDs(combos []media.Combo) []string {
	out := make([]string, len(combos))
	for i, c := range combos {
		out[i] = c.String()
	}
	return out
}

func assertSequence(t *testing.T, got []media.Combo, want []string) {
	t.Helper()
	ids := comboIDs(got)
	if len(ids) != len(want) {
		t.Fatalf("got %d combos %v, want %d %v", len(ids), ids, len(want), want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("combo %d = %s, want %s (full: %v)", i, ids[i], want[i], ids)
		}
	}
}

// The three predetermined-combination sequences stated in §3.2 of the paper.

func TestPredeterminedCombosTable1(t *testing.T) {
	got := PredeterminedCombos(media.DramaVideoLadder(), media.DramaAudioLadder())
	assertSequence(t, got, []string{
		"V1+A1", "V2+A1", "V2+A2", "V3+A2", "V4+A2", "V4+A3", "V5+A3", "V6+A3",
	})
}

func TestPredeterminedCombosLowAudio(t *testing.T) {
	got := PredeterminedCombos(media.DramaVideoLadder(), media.LowAudioLadder())
	assertSequence(t, got, []string{
		"V1+B1", "V2+B1", "V2+B2", "V3+B2", "V4+B2", "V5+B2", "V5+B3", "V6+B3",
	})
}

func TestPredeterminedCombosHighAudio(t *testing.T) {
	got := PredeterminedCombos(media.DramaVideoLadder(), media.HighAudioLadder())
	assertSequence(t, got, []string{
		"V1+C1", "V2+C1", "V2+C2", "V3+C2", "V4+C2", "V5+C2", "V5+C3", "V6+C3",
	})
}

func TestPredeterminedCombosSingleAudio(t *testing.T) {
	audio := media.Ladder{media.DramaAudioLadder()[0]}
	got := PredeterminedCombos(media.DramaVideoLadder(), audio)
	assertSequence(t, got, []string{
		"V1+A1", "V2+A1", "V3+A1", "V4+A1", "V5+A1", "V6+A1",
	})
}

// Property: adjacent predetermined combinations differ in exactly one
// component and both indexes are non-decreasing; count is M+N-1.
func TestPredeterminedCombosStructureProperty(t *testing.T) {
	video, audio := media.DramaVideoLadder(), media.DramaAudioLadder()
	f := func(pick uint8) bool {
		var a media.Ladder
		switch pick % 3 {
		case 0:
			a = media.DramaAudioLadder()
		case 1:
			a = media.LowAudioLadder()
		default:
			a = media.HighAudioLadder()
		}
		combos := PredeterminedCombos(video, a)
		if len(combos) != len(video)+len(a)-1 {
			return false
		}
		for i := 1; i < len(combos); i++ {
			dv := video.Index(combos[i].Video) - video.Index(combos[i-1].Video)
			da := a.Index(combos[i].Audio) - a.Index(combos[i-1].Audio)
			if dv+da != 1 || dv < 0 || da < 0 {
				return false
			}
		}
		first, last := combos[0], combos[len(combos)-1]
		return first.Video == video[0] && first.Audio == a[0] &&
			last.Video == video[len(video)-1] && last.Audio == a[len(a)-1]
	}
	_ = audio
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// feedDASH pushes one 1 s transfer of the given bytes into the model's
// byte-flow meter.
func feedDASH(d *DASH, bytes float64, at time.Duration) {
	d.OnStart(abr.TransferInfo{At: at})
	d.OnProgress(abr.TransferInfo{Bytes: bytes, Duration: time.Second})
	d.OnComplete(abr.TransferInfo{Duration: time.Second, At: at + time.Second})
}

func st(buffer time.Duration) abr.State {
	return abr.State{VideoBuffer: buffer, AudioBuffer: buffer, ChunkDuration: 5 * time.Second}
}

func TestDASHSelectsByBudget(t *testing.T) {
	d := NewDASH(media.DramaVideoLadder(), media.LowAudioLadder())
	// Default estimate 1 Mbps -> budget 750 Kbps -> V3+B2 (537) fits,
	// V4+B2 (978) does not. This is the Fig 2(a) selection.
	got := d.SelectCombo(st(20 * time.Second))
	if got.String() != "V3+B2" {
		t.Errorf("selected %s, want V3+B2", got)
	}
}

func TestDASHHighAudioPicksLowVideo(t *testing.T) {
	d := NewDASH(media.DramaVideoLadder(), media.HighAudioLadder())
	// Budget 750 Kbps -> V2+C2 (630) fits, V3+C2 (857) does not: the
	// Fig 2(b) pathology (lowest-rung video + high audio), even though
	// V3+C1 (669) would fit — it is not predetermined.
	got := d.SelectCombo(st(20 * time.Second))
	if got.String() != "V2+C2" {
		t.Errorf("selected %s, want V2+C2", got)
	}
	for _, c := range d.Combos() {
		if c.String() == "V3+C1" {
			t.Error("V3+C1 must not be predetermined")
		}
	}
}

func TestDASHHysteresisBlocksUpswitchOnLowBuffer(t *testing.T) {
	d := NewDASH(media.DramaVideoLadder(), media.DramaAudioLadder())
	// Start at a low estimate.
	feedDASH(d, 12500, 0) // 100 Kbps
	first := d.SelectCombo(st(2 * time.Second))
	if first.String() != "V1+A1" {
		t.Fatalf("low-bandwidth selection = %s, want V1+A1", first)
	}
	// Bandwidth recovers, but the buffer is still low: refuse to switch up.
	for i := 0; i < 20; i++ {
		feedDASH(d, 625000, time.Duration(i)*time.Second) // 5 Mbps
	}
	if got := d.SelectCombo(st(3 * time.Second)); got.String() != "V1+A1" {
		t.Errorf("selected %s with 3s buffer, want V1+A1 held", got)
	}
	// With ample buffer the upswitch happens.
	if got := d.SelectCombo(st(15 * time.Second)); got.DeclaredBitrate() <= first.DeclaredBitrate() {
		t.Errorf("selected %s with 15s buffer, want an upswitch", got)
	}
}

func TestDASHHysteresisBlocksDownswitchOnHighBuffer(t *testing.T) {
	d := NewDASH(media.DramaVideoLadder(), media.DramaAudioLadder())
	for i := 0; i < 20; i++ {
		feedDASH(d, 625000, time.Duration(i)*time.Second)
	}
	high := d.SelectCombo(st(20 * time.Second))
	// Bandwidth collapses; with 26s buffered ExoPlayer rides it out.
	for i := 20; i < 40; i++ {
		feedDASH(d, 6250, time.Duration(i)*time.Second) // 50 Kbps
	}
	if got := d.SelectCombo(st(26 * time.Second)); got != high {
		t.Errorf("selected %s with 26s buffer, want %s held", got, high)
	}
	// Below the threshold it finally drops.
	if got := d.SelectCombo(st(5 * time.Second)); got == high {
		t.Error("expected a downswitch with 5s buffer")
	}
}

func hsubVariants() ([]media.Combo, []*media.Track) {
	c := media.DramaShow()
	return media.HSub(c), []*media.Track{
		c.AudioTracks[2], c.AudioTracks[1], c.AudioTracks[0], // A3 listed first
	}
}

func TestHLSPinsFirstListedAudio(t *testing.T) {
	variants, order := hsubVariants()
	h := NewHLS(variants, order)
	if h.FixedAudio().ID != "A3" {
		t.Fatalf("fixed audio = %s, want A3", h.FixedAudio().ID)
	}
	// Selection must always carry A3, whatever the bandwidth.
	got := h.SelectCombo(st(20 * time.Second))
	if got.Audio.ID != "A3" {
		t.Errorf("selected audio %s, want A3", got.Audio.ID)
	}
}

func TestHLSLowestAudioFirstStaysLow(t *testing.T) {
	// Second experiment of §3.2-HLS: A1 listed first, 5 Mbps of bandwidth —
	// audio stays at A1 anyway.
	c := media.DramaShow()
	variants := media.HSub(c)
	order := []*media.Track{c.AudioTracks[0], c.AudioTracks[1], c.AudioTracks[2]}
	h := NewHLS(variants, order)
	for i := 0; i < 20; i++ {
		h.OnStart(abr.TransferInfo{At: time.Duration(i) * time.Second})
		h.OnProgress(abr.TransferInfo{Bytes: 625000, Duration: time.Second})
		h.OnComplete(abr.TransferInfo{Duration: time.Second, At: time.Duration(i+1) * time.Second}) // 5 Mbps
	}
	got := h.SelectCombo(st(20 * time.Second))
	if got.Audio.ID != "A1" {
		t.Errorf("selected audio %s, want A1 (pinned first rendition)", got.Audio.ID)
	}
}

func TestHLSOverestimatesVideoBitrates(t *testing.T) {
	variants, order := hsubVariants()
	h := NewHLS(variants, order)
	// Each video's assumed bitrate is its variant's aggregate peak: V3 in
	// H_sub appears as V3+A2 with peak 840 Kbps, not V3's declared 473.
	if got := h.AssumedVideoBitrate("V3"); got != media.Kbps(840) {
		t.Errorf("assumed V3 bitrate = %v, want 840 Kbps", got)
	}
	if got := h.AssumedVideoBitrate("V1"); got != media.Kbps(253) {
		t.Errorf("assumed V1 bitrate = %v, want 253 Kbps", got)
	}
}

func TestHLSSelectionCanLeaveManifest(t *testing.T) {
	variants, order := hsubVariants()
	h := NewHLS(variants, order)
	// Default estimate 1 Mbps -> budget 750 -> highest assumed video <=
	// 750 is V2 (395). With pinned A3, the pair V2+A3 is NOT in H_sub.
	got := h.SelectCombo(st(20 * time.Second))
	if got.String() != "V2+A3" {
		t.Fatalf("selected %s, want V2+A3", got)
	}
	for _, v := range variants {
		if v.String() == got.String() {
			t.Errorf("selection %s unexpectedly in the manifest", got)
		}
	}
}

func TestHLSFirstVariantAggregate(t *testing.T) {
	// With H_all ordered by peak bitrate, the first variant containing V1
	// is V1+A1; assumed bitrate = 253. The first containing V6 is V6+A1 ->
	// 4581.
	c := media.DramaShow()
	h := NewHLS(media.HAll(c), nil)
	if got := h.AssumedVideoBitrate("V1"); got != media.Kbps(253) {
		t.Errorf("assumed V1 = %v, want 253", got)
	}
	if got := h.AssumedVideoBitrate("V6"); got != media.Kbps(4581) {
		t.Errorf("assumed V6 = %v, want 4581", got)
	}
	// No explicit rendition order: the first variant's audio is pinned.
	if h.FixedAudio().ID != "A1" {
		t.Errorf("fixed audio = %s, want A1", h.FixedAudio().ID)
	}
}

func TestHLSRepairedAdaptsBothComponents(t *testing.T) {
	c := media.DramaShow()
	h := NewHLSRepaired(media.HSub(c))
	// Low estimate -> lowest variant.
	h.OnStart(abr.TransferInfo{At: 0})
	h.OnProgress(abr.TransferInfo{Bytes: 25_000, Duration: time.Second})
	h.OnComplete(abr.TransferInfo{Duration: time.Second, At: time.Second}) // 200 Kbps
	low := h.SelectCombo(st(2 * time.Second))
	if low.String() != "V1+A1" {
		t.Fatalf("low selection = %s, want V1+A1", low)
	}
	// High estimate with deep buffer -> top variant, audio included.
	for i := 1; i < 20; i++ {
		h.OnStart(abr.TransferInfo{At: time.Duration(i) * time.Second})
		h.OnProgress(abr.TransferInfo{Bytes: 875_000, Duration: time.Second}) // 7 Mbps
		h.OnComplete(abr.TransferInfo{Duration: time.Second, At: time.Duration(i+1) * time.Second})
	}
	high := h.SelectCombo(st(20 * time.Second))
	if high.String() != "V6+A3" {
		t.Errorf("high selection = %s, want V6+A3", high)
	}
	if low.Audio == high.Audio {
		t.Error("audio did not adapt — the repair's whole point")
	}
}

func TestHLSRepairedStaysOnVariantList(t *testing.T) {
	c := media.DramaShow()
	variants := media.HSub(c)
	h := NewHLSRepaired(variants)
	listed := map[string]bool{}
	for _, v := range variants {
		listed[v.String()] = true
	}
	for i := 0; i < 30; i++ {
		h.OnStart(abr.TransferInfo{At: time.Duration(i) * time.Second})
		bytes := float64((i%5 + 1) * 50_000)
		h.OnProgress(abr.TransferInfo{Bytes: bytes, Duration: time.Second})
		h.OnComplete(abr.TransferInfo{Duration: time.Second, At: time.Duration(i+1) * time.Second})
		got := h.SelectCombo(st(time.Duration(i%30) * time.Second))
		if !listed[got.String()] {
			t.Fatalf("selection %s not a listed variant", got)
		}
	}
	if got := len(h.Variants()); got != 6 {
		t.Errorf("variants = %d", got)
	}
	if h.Name() != "exoplayer-hls-repaired" {
		t.Errorf("name = %q", h.Name())
	}
}

func TestHLSRepairedDamping(t *testing.T) {
	c := media.DramaShow()
	h := NewHLSRepaired(media.HSub(c))
	// Establish a low selection under a low estimate.
	h.OnStart(abr.TransferInfo{At: 0})
	h.OnProgress(abr.TransferInfo{Bytes: 25_000, Duration: time.Second}) // 200 Kbps
	h.OnComplete(abr.TransferInfo{Duration: time.Second, At: time.Second})
	first := h.SelectCombo(st(2 * time.Second))
	// Bandwidth recovers; a 3 s buffer must hold the selection, a deep one
	// releases the upswitch.
	for i := 1; i < 20; i++ {
		h.OnStart(abr.TransferInfo{At: time.Duration(i) * time.Second})
		h.OnProgress(abr.TransferInfo{Bytes: 875_000, Duration: time.Second}) // 7 Mbps
		h.OnComplete(abr.TransferInfo{Duration: time.Second, At: time.Duration(i+1) * time.Second})
	}
	if held := h.SelectCombo(st(3 * time.Second)); held != first {
		t.Errorf("upswitch with 3s buffer: %s -> %s", first, held)
	}
	if up := h.SelectCombo(st(15 * time.Second)); up.DeclaredBitrate() <= first.DeclaredBitrate() {
		t.Errorf("no upswitch with 15s buffer: %s", up)
	}
}
