// Package exoplayer models ExoPlayer v2.10's audio/video adaptation as
// described in §3.2 of the paper, in both of its protocol-dependent modes:
//
//   - DASH: per-track declared bitrates are available, so the player
//     predetermines a subset of audio/video combinations (the allocation-
//     checkpoint merge reimplemented in PredeterminedCombos) and adapts only
//     within it, using a global bandwidth meter over both streams and a
//     conservative 0.75 bandwidth fraction.
//   - HLS: the top-level master playlist carries only aggregate variant
//     bandwidths, so the player assumes all audio renditions are equal
//     (pinning the first listed one) and overestimates each video track's
//     bitrate as the aggregate bandwidth of the first variant containing it.
package exoplayer

import (
	"math"
	"sort"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/abr/estimator"
	"demuxabr/internal/media"
)

// Defaults mirroring ExoPlayer v2.10.2's AdaptiveTrackSelection.
const (
	// DefaultBandwidthFraction is the fraction of the estimate assumed
	// usable ("conservatively assumes that the actual network bandwidth is
	// 75% of the estimated bandwidth", §3.2).
	DefaultBandwidthFraction = 0.75
	// DefaultInitialEstimate is used before any transfer completes.
	DefaultInitialEstimate = media.Bps(1_000_000)
	// DefaultMinDurationForQualityIncrease: don't switch up with less
	// buffered than this.
	DefaultMinDurationForQualityIncrease = 10 * time.Second
	// DefaultMaxDurationForQualityDecrease: don't switch down with more
	// buffered than this.
	DefaultMaxDurationForQualityDecrease = 25 * time.Second
)

// PredeterminedCombos reimplements ExoPlayer's allocation-checkpoint
// construction: the combinations it will adapt across when a DASH manifest
// leaves the pairing unconstrained.
//
// For each selection (video, audio) with ladder log-bitrates l_1..l_K, the
// switch point of step j is ((l_j+l_{j+1})/2 − l_1)/(l_K − l_1): switch
// points are distributed in a common [0,1] range proportionally to
// log-bitrate position. All selections' switch points are merged in
// increasing order (video first on ties) and tracks step up one at a time,
// so adjacent combinations differ in exactly one component.
//
// This reproduces the paper's three sequences exactly — e.g. for Table 1:
// V1+A1, V2+A1, V2+A2, V3+A2, V4+A2, V4+A3, V5+A3, V6+A3.
func PredeterminedCombos(video, audio media.Ladder) []media.Combo {
	type step struct {
		point float64
		typ   media.Type // which selection steps up
	}
	points := func(l media.Ladder, typ media.Type) []step {
		if len(l) < 2 {
			return nil
		}
		logs := make([]float64, len(l))
		for i, t := range l {
			logs[i] = math.Log(float64(t.DeclaredBitrate))
		}
		span := logs[len(logs)-1] - logs[0]
		out := make([]step, 0, len(l)-1)
		for j := 0; j+1 < len(logs); j++ {
			p := 0.0
			if span > 0 {
				p = ((logs[j]+logs[j+1])/2 - logs[0]) / span
			}
			out = append(out, step{point: p, typ: typ})
		}
		return out
	}
	steps := append(points(video, media.Video), points(audio, media.Audio)...)
	sort.SliceStable(steps, func(i, j int) bool {
		if steps[i].point < steps[j].point {
			return true
		}
		if steps[j].point < steps[i].point {
			return false
		}
		// Ties: video steps first (stable order of the merged lists).
		return steps[i].typ == media.Video && steps[j].typ == media.Audio
	})
	vi, ai := 0, 0
	combos := []media.Combo{{Video: video[0], Audio: audio[0]}}
	for _, st := range steps {
		if st.typ == media.Video {
			vi++
		} else {
			ai++
		}
		combos = append(combos, media.Combo{Video: video[vi], Audio: audio[ai]})
	}
	return combos
}

// hysteresis applies ExoPlayer's buffered-duration switch damping: with
// little buffer, refuse to switch up; with ample buffer, refuse to switch
// down.
type hysteresis struct {
	minForIncrease time.Duration
	maxForDecrease time.Duration
}

func (h hysteresis) apply(currentRate, idealRate media.Bps, buffered time.Duration) bool {
	switch {
	case idealRate > currentRate:
		return buffered >= h.minForIncrease
	case idealRate < currentRate:
		return buffered < h.maxForDecrease
	default:
		return true
	}
}

// DASH is ExoPlayer's joint adaptation over the predetermined combinations.
type DASH struct {
	// BandwidthFraction, InitialEstimate and the switch-damping thresholds
	// default to ExoPlayer's values; override before first use only.
	BandwidthFraction float64
	InitialEstimate   media.Bps
	Damping           hysteresis

	meter   *estimator.GlobalMeter
	combos  []media.Combo
	current media.Combo
}

// NewDASH builds the model for the given ladders, predetermining the
// combination subset exactly as ExoPlayer does.
func NewDASH(video, audio media.Ladder) *DASH {
	return &DASH{
		BandwidthFraction: DefaultBandwidthFraction,
		InitialEstimate:   DefaultInitialEstimate,
		Damping: hysteresis{
			minForIncrease: DefaultMinDurationForQualityIncrease,
			maxForDecrease: DefaultMaxDurationForQualityDecrease,
		},
		meter:  estimator.NewGlobalMeter(),
		combos: PredeterminedCombos(video, audio),
	}
}

// Name implements abr.Algorithm.
func (d *DASH) Name() string { return "exoplayer-dash" }

// Combos exposes the predetermined combinations (for tests and reports).
func (d *DASH) Combos() []media.Combo { return d.combos }

// OnStart implements abr.Observer, feeding the global bandwidth meter.
func (d *DASH) OnStart(ti abr.TransferInfo) { d.meter.TransferStart(ti.At) }

// OnProgress implements abr.Observer: like ExoPlayer's
// DefaultBandwidthMeter, bytes are accounted as they flow, from all
// concurrent transfers.
func (d *DASH) OnProgress(ti abr.TransferInfo) { d.meter.TransferBytes(ti.Bytes) }

// OnComplete implements abr.Observer: a completion closes one sampling
// window of the global meter.
func (d *DASH) OnComplete(ti abr.TransferInfo) { d.meter.TransferEnd(ti.At) }

// BandwidthEstimate implements abr.BandwidthReporter.
func (d *DASH) BandwidthEstimate() (media.Bps, bool) {
	if est, ok := d.meter.Estimate(); ok {
		return est, true
	}
	return d.InitialEstimate, true
}

// SelectCombo implements abr.JointAlgorithm: highest predetermined
// combination whose declared bitrate fits within BandwidthFraction of the
// estimate, damped by the buffered duration.
func (d *DASH) SelectCombo(st abr.State) media.Combo {
	est, _ := d.BandwidthEstimate()
	budget := media.Bps(float64(est) * d.BandwidthFraction)
	ideal := abr.HighestAtMost(d.combos, budget, media.Combo.DeclaredBitrate)
	if d.current.Video == nil {
		d.current = ideal
		return d.current
	}
	if d.Damping.apply(d.current.DeclaredBitrate(), ideal.DeclaredBitrate(), st.MinBuffer()) {
		d.current = ideal
	}
	return d.current
}

// HLS is ExoPlayer's degraded behaviour when only a top-level HLS master
// playlist is available: fixed audio (first listed rendition) and video
// adaptation against overestimated per-video bitrates.
type HLS struct {
	// Same tunables as DASH.
	BandwidthFraction float64
	InitialEstimate   media.Bps
	Damping           hysteresis

	meter        *estimator.GlobalMeter
	videos       media.Ladder
	videoBitrate map[string]media.Bps // video ID -> overestimated bitrate
	fixedAudio   *media.Track
	current      *media.Track
}

// NewHLS builds the model from the master playlist's variant list (in
// manifest order) and rendition list (in manifest order).
//
// ExoPlayer cannot see per-track bitrates in the top-level playlist, so:
// the first listed audio rendition is used for the whole session, and each
// video track's bitrate is taken as the aggregate BANDWIDTH of the first
// variant that contains it.
func NewHLS(variants []media.Combo, audioOrder []*media.Track) *HLS {
	h := &HLS{
		BandwidthFraction: DefaultBandwidthFraction,
		InitialEstimate:   DefaultInitialEstimate,
		Damping: hysteresis{
			minForIncrease: DefaultMinDurationForQualityIncrease,
			maxForDecrease: DefaultMaxDurationForQualityDecrease,
		},
		meter:        estimator.NewGlobalMeter(),
		videoBitrate: make(map[string]media.Bps),
	}
	if len(audioOrder) > 0 {
		h.fixedAudio = audioOrder[0]
	}
	seen := map[string]bool{}
	for _, v := range variants {
		if !seen[v.Video.ID] {
			seen[v.Video.ID] = true
			h.videos = append(h.videos, v.Video)
			// Aggregate peak bandwidth of the first variant containing the
			// video track: the overestimation of §3.2.
			h.videoBitrate[v.Video.ID] = v.PeakBitrate()
		}
		if h.fixedAudio == nil {
			h.fixedAudio = v.Audio
		}
	}
	sort.SliceStable(h.videos, func(i, j int) bool {
		return h.videoBitrate[h.videos[i].ID] < h.videoBitrate[h.videos[j].ID]
	})
	return h
}

// Name implements abr.Algorithm.
func (h *HLS) Name() string { return "exoplayer-hls" }

// FixedAudio exposes the pinned audio rendition.
func (h *HLS) FixedAudio() *media.Track { return h.fixedAudio }

// AssumedVideoBitrate exposes the overestimated bitrate used for a video
// track (for tests and reports).
func (h *HLS) AssumedVideoBitrate(id string) media.Bps { return h.videoBitrate[id] }

// OnStart implements abr.Observer.
func (h *HLS) OnStart(ti abr.TransferInfo) { h.meter.TransferStart(ti.At) }

// OnProgress implements abr.Observer (byte-flow accounting, as in DASH).
func (h *HLS) OnProgress(ti abr.TransferInfo) { h.meter.TransferBytes(ti.Bytes) }

// OnComplete implements abr.Observer.
func (h *HLS) OnComplete(ti abr.TransferInfo) { h.meter.TransferEnd(ti.At) }

// BandwidthEstimate implements abr.BandwidthReporter.
func (h *HLS) BandwidthEstimate() (media.Bps, bool) {
	if est, ok := h.meter.Estimate(); ok {
		return est, true
	}
	return h.InitialEstimate, true
}

// SelectCombo implements abr.JointAlgorithm. Only the video track adapts;
// the audio rendition never changes regardless of bandwidth — and the
// resulting pair may not be a variant the manifest lists.
func (h *HLS) SelectCombo(st abr.State) media.Combo {
	est, _ := h.BandwidthEstimate()
	budget := media.Bps(float64(est) * h.BandwidthFraction)
	ideal := h.videos[0]
	for _, v := range h.videos {
		if h.videoBitrate[v.ID] <= budget {
			ideal = v
		}
	}
	if h.current == nil {
		h.current = ideal
	} else if h.Damping.apply(h.videoBitrate[h.current.ID], h.videoBitrate[ideal.ID], st.MinBuffer()) {
		h.current = ideal
	}
	return media.Combo{Video: h.current, Audio: h.fixedAudio}
}
