package exoplayer

import (
	"demuxabr/internal/abr"
	"demuxabr/internal/abr/estimator"
	"demuxabr/internal/media"
)

// HLSRepaired is the §4.1 client-side fix for the HLS degradation: before
// making rate-adaptation decisions, the player downloads the second-level
// media playlists and recovers each track's bitrate (from EXT-X-BYTERANGE
// sizes or EXT-X-BITRATE tags — manifest/hls.TrackBitrate). With per-track
// bitrates in hand it adapts jointly over the variants the master playlist
// actually lists: audio adapts again, video bitrates are no longer
// overestimated, and every selection is a listed combination.
type HLSRepaired struct {
	// BandwidthFraction, InitialEstimate and the switch damping mirror the
	// ExoPlayer defaults.
	BandwidthFraction float64
	InitialEstimate   media.Bps
	Damping           hysteresis

	meter    *estimator.GlobalMeter
	variants []media.Combo // listed variants sorted by true declared bitrate
	current  media.Combo
}

// NewHLSRepaired builds the repaired model from the master playlist's
// variants. The variants' tracks must carry their true declared bitrates —
// i.e. the ladders reconstructed from the media playlists, not the
// aggregate-only view of the top-level manifest.
func NewHLSRepaired(variants []media.Combo) *HLSRepaired {
	sorted := make([]media.Combo, len(variants))
	copy(sorted, variants)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1].DeclaredBitrate() > sorted[j].DeclaredBitrate(); j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	return &HLSRepaired{
		BandwidthFraction: DefaultBandwidthFraction,
		InitialEstimate:   DefaultInitialEstimate,
		Damping: hysteresis{
			minForIncrease: DefaultMinDurationForQualityIncrease,
			maxForDecrease: DefaultMaxDurationForQualityDecrease,
		},
		meter:    estimator.NewGlobalMeter(),
		variants: sorted,
	}
}

// Name implements abr.Algorithm.
func (h *HLSRepaired) Name() string { return "exoplayer-hls-repaired" }

// Variants exposes the selectable combination list.
func (h *HLSRepaired) Variants() []media.Combo { return h.variants }

// OnStart implements abr.Observer.
func (h *HLSRepaired) OnStart(ti abr.TransferInfo) { h.meter.TransferStart(ti.At) }

// OnProgress implements abr.Observer.
func (h *HLSRepaired) OnProgress(ti abr.TransferInfo) { h.meter.TransferBytes(ti.Bytes) }

// OnComplete implements abr.Observer.
func (h *HLSRepaired) OnComplete(ti abr.TransferInfo) { h.meter.TransferEnd(ti.At) }

// BandwidthEstimate implements abr.BandwidthReporter.
func (h *HLSRepaired) BandwidthEstimate() (media.Bps, bool) {
	if est, ok := h.meter.Estimate(); ok {
		return est, true
	}
	return h.InitialEstimate, true
}

// SelectCombo implements abr.JointAlgorithm: the ExoPlayer selection logic
// over the listed variants with true per-track bitrates.
func (h *HLSRepaired) SelectCombo(st abr.State) media.Combo {
	est, _ := h.BandwidthEstimate()
	budget := media.Bps(float64(est) * h.BandwidthFraction)
	ideal := abr.HighestAtMost(h.variants, budget, media.Combo.DeclaredBitrate)
	if h.current.Video == nil {
		h.current = ideal
		return h.current
	}
	if h.Damping.apply(h.current.DeclaredBitrate(), ideal.DeclaredBitrate(), st.MinBuffer()) {
		h.current = ideal
	}
	return h.current
}
