package exoplayer

import (
	"demuxabr/internal/media"
)

// This file implements the mechanism ExoPlayer actually uses with the
// predetermined combinations: bandwidth *allocation*. The merged staircase
// becomes a list of checkpoints (total bandwidth → per-selection
// allocation); at selection time the estimate is split between the video
// and audio selections by piecewise-linear interpolation over the
// checkpoints, and each selection independently picks the highest track
// within its share. On the paper's ladders this is equivalent to picking
// the highest predetermined combination that fits (proved by
// TestAllocationEquivalence), which is why the package's DASH model uses
// the simpler combination view.

// Checkpoint is one row of the allocation table.
type Checkpoint struct {
	// Total is the aggregate bandwidth at this staircase step.
	Total media.Bps
	// Video and Audio are the per-selection allocations at the step.
	Video media.Bps
	Audio media.Bps
}

// AllocationCheckpoints derives the allocation table from the
// predetermined-combination staircase.
func AllocationCheckpoints(video, audio media.Ladder) []Checkpoint {
	combos := PredeterminedCombos(video, audio)
	out := make([]Checkpoint, len(combos))
	for i, cb := range combos {
		out[i] = Checkpoint{
			Total: cb.DeclaredBitrate(),
			Video: cb.Video.DeclaredBitrate,
			Audio: cb.Audio.DeclaredBitrate,
		}
	}
	return out
}

// Allocate splits a bandwidth budget between the video and audio selections
// by interpolating the checkpoint table, mirroring ExoPlayer's
// getAllocationCheckpoints consumers:
//
//   - below the first checkpoint the minimum allocations apply;
//   - between checkpoints the allocation interpolates linearly;
//   - beyond the last checkpoint the surplus is split proportionally to the
//     maximum allocations.
func Allocate(checkpoints []Checkpoint, budget media.Bps) (video, audio media.Bps) {
	if len(checkpoints) == 0 {
		return 0, 0
	}
	first := checkpoints[0]
	if budget <= first.Total {
		return first.Video, first.Audio
	}
	last := checkpoints[len(checkpoints)-1]
	if budget >= last.Total {
		surplus := float64(budget - last.Total)
		total := float64(last.Video + last.Audio)
		video = last.Video + media.Bps(surplus*float64(last.Video)/total)
		audio = last.Audio + media.Bps(surplus*float64(last.Audio)/total)
		return video, audio
	}
	for i := 1; i < len(checkpoints); i++ {
		lo, hi := checkpoints[i-1], checkpoints[i]
		if budget > hi.Total {
			continue
		}
		frac := float64(budget-lo.Total) / float64(hi.Total-lo.Total)
		video = lo.Video + media.Bps(frac*float64(hi.Video-lo.Video))
		audio = lo.Audio + media.Bps(frac*float64(hi.Audio-lo.Audio))
		return video, audio
	}
	return last.Video, last.Audio
}

// SelectByAllocation runs the full ExoPlayer mechanism: allocate the budget
// over the checkpoint table, then let each selection pick the highest track
// within its share.
func SelectByAllocation(video, audio media.Ladder, checkpoints []Checkpoint, budget media.Bps) media.Combo {
	av, aa := Allocate(checkpoints, budget)
	pick := func(l media.Ladder, alloc media.Bps) *media.Track {
		best := l[0]
		for _, t := range l {
			if t.DeclaredBitrate <= alloc {
				best = t
			}
		}
		return best
	}
	return media.Combo{Video: pick(video, av), Audio: pick(audio, aa)}
}
