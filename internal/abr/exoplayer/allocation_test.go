package exoplayer

import (
	"testing"
	"testing/quick"

	"demuxabr/internal/abr"
	"demuxabr/internal/media"
)

func TestAllocationCheckpointsMatchStaircase(t *testing.T) {
	video, audio := media.DramaVideoLadder(), media.DramaAudioLadder()
	cps := AllocationCheckpoints(video, audio)
	combos := PredeterminedCombos(video, audio)
	if len(cps) != len(combos) {
		t.Fatalf("checkpoints = %d, combos = %d", len(cps), len(combos))
	}
	for i, cp := range cps {
		if cp.Total != combos[i].DeclaredBitrate() ||
			cp.Video != combos[i].Video.DeclaredBitrate ||
			cp.Audio != combos[i].Audio.DeclaredBitrate {
			t.Errorf("checkpoint %d = %+v, combo %s", i, cp, combos[i])
		}
		if cp.Video+cp.Audio != cp.Total {
			t.Errorf("checkpoint %d: allocations do not sum to total", i)
		}
	}
}

func TestAllocateRegimes(t *testing.T) {
	video, audio := media.DramaVideoLadder(), media.DramaAudioLadder()
	cps := AllocationCheckpoints(video, audio)
	// Below the first checkpoint: minimum allocations.
	v, a := Allocate(cps, media.Kbps(50))
	if v != video[0].DeclaredBitrate || a != audio[0].DeclaredBitrate {
		t.Errorf("starved allocation = %v/%v", v, a)
	}
	// At a checkpoint: exactly its allocations.
	v, a = Allocate(cps, cps[3].Total)
	if v != cps[3].Video || a != cps[3].Audio {
		t.Errorf("checkpoint allocation = %v/%v, want %v/%v", v, a, cps[3].Video, cps[3].Audio)
	}
	// Beyond the top: proportional surplus, monotone in budget.
	v1, a1 := Allocate(cps, media.Kbps(5000))
	v2, a2 := Allocate(cps, media.Kbps(8000))
	if v2 <= v1 || a2 <= a1 {
		t.Errorf("surplus allocation not monotone: %v/%v then %v/%v", v1, a1, v2, a2)
	}
	// Empty table.
	if v, a := Allocate(nil, 1); v != 0 || a != 0 {
		t.Error("empty table should allocate zero")
	}
}

// TestAllocationEquivalence proves the claim the DASH model relies on: on
// the paper's ladders, ExoPlayer's allocation mechanism selects the same
// pair as "highest predetermined combination within the budget", for every
// budget.
func TestAllocationEquivalence(t *testing.T) {
	for _, audio := range []media.Ladder{
		media.DramaAudioLadder(), media.LowAudioLadder(), media.HighAudioLadder(),
	} {
		video := media.DramaVideoLadder()
		cps := AllocationCheckpoints(video, audio)
		combos := PredeterminedCombos(video, audio)
		for kbps := 50; kbps <= 6000; kbps += 10 {
			budget := media.Kbps(float64(kbps))
			byAlloc := SelectByAllocation(video, audio, cps, budget)
			byCombo := abr.HighestAtMost(combos, budget, media.Combo.DeclaredBitrate)
			if byAlloc.String() != byCombo.String() {
				t.Fatalf("budget %v: allocation picks %s, combination view picks %s",
					budget, byAlloc, byCombo)
			}
		}
	}
}

// Property: allocations always sum to at least min(budget, firstTotal) and
// are monotone in the budget.
func TestAllocateMonotoneProperty(t *testing.T) {
	video, audio := media.DramaVideoLadder(), media.DramaAudioLadder()
	cps := AllocationCheckpoints(video, audio)
	f := func(b1, b2 uint32) bool {
		x, y := media.Bps(b1%10_000_000), media.Bps(b2%10_000_000)
		if x > y {
			x, y = y, x
		}
		v1, a1 := Allocate(cps, x)
		v2, a2 := Allocate(cps, y)
		return v1 <= v2 && a1 <= a2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
