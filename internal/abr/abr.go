// Package abr defines the interfaces between the player engine and
// adaptation algorithms: decision state, download observations, and the two
// decision styles found in real players — joint audio/video selection
// (ExoPlayer, Shaka, and the paper's §4 best practice) and independent
// per-type selection (dash.js).
package abr

import (
	"time"

	"demuxabr/internal/media"
)

// State is the snapshot an algorithm sees when making a decision.
type State struct {
	// Now is the current virtual time.
	Now time.Duration
	// PlayPos is the playback position.
	PlayPos time.Duration
	// VideoBuffer and AudioBuffer are the buffered durations per type.
	VideoBuffer time.Duration
	AudioBuffer time.Duration
	// ChunkIndex is the chunk position being decided.
	ChunkIndex int
	// ChunkDuration is the nominal chunk duration of the content.
	ChunkDuration time.Duration
	// Startup is true until playback first begins.
	Startup bool
	// LastVideo and LastAudio are the previously selected tracks (nil before
	// the first decision).
	LastVideo *media.Track
	LastAudio *media.Track
	// Live-session fields; all zero for VOD sessions. Latency is the
	// live-edge latency (how far the playhead trails the stream edge),
	// LatencyTarget the configured target, and PlaybackRate the current
	// catch-up controller rate (0 means "not a live session", never
	// "paused").
	Latency       time.Duration
	LatencyTarget time.Duration
	PlaybackRate  float64
}

// Buffer returns the buffered duration for one type.
func (s State) Buffer(t media.Type) time.Duration {
	if t == media.Video {
		return s.VideoBuffer
	}
	return s.AudioBuffer
}

// MinBuffer returns the smaller of the two buffer levels — the quantity that
// determines stalls, since playback needs both streams.
func (s State) MinBuffer() time.Duration {
	if s.VideoBuffer < s.AudioBuffer {
		return s.VideoBuffer
	}
	return s.AudioBuffer
}

// LastTrack returns the previous selection for one type.
func (s State) LastTrack(t media.Type) *media.Track {
	if t == media.Video {
		return s.LastVideo
	}
	return s.LastAudio
}

// TransferInfo describes a download event delivered to observers.
type TransferInfo struct {
	// Type is the media type of the transfer.
	Type media.Type
	// Bytes moved: the whole transfer for start/complete events, or the
	// bytes within the interval for progress events.
	Bytes float64
	// Duration of the transfer (complete events) or of the sampling
	// interval (progress events); zero for start events.
	Duration time.Duration
	// At is the virtual time of the event.
	At time.Duration
	// Concurrent is the number of transfers active on the link at the event
	// (including this one).
	Concurrent int
}

// Throughput returns the event's bits/s, or 0 if Duration is zero.
func (ti TransferInfo) Throughput() float64 {
	if ti.Duration <= 0 {
		return 0
	}
	return ti.Bytes * 8 / ti.Duration.Seconds()
}

// Observer receives download lifecycle events. All algorithms embed one to
// feed their bandwidth estimators.
type Observer interface {
	// OnStart fires when a transfer's first byte moves.
	OnStart(TransferInfo)
	// OnProgress fires every sampling interval of an active transfer.
	OnProgress(TransferInfo)
	// OnComplete fires when a transfer finishes.
	OnComplete(TransferInfo)
}

// NopObserver is an Observer that ignores everything; embed it to implement
// only the hooks an algorithm needs.
type NopObserver struct{}

// OnStart implements Observer.
func (NopObserver) OnStart(TransferInfo) {}

// OnProgress implements Observer.
func (NopObserver) OnProgress(TransferInfo) {}

// OnComplete implements Observer.
func (NopObserver) OnComplete(TransferInfo) {}

// Algorithm is the base of both decision styles.
type Algorithm interface {
	Observer
	// Name identifies the algorithm in logs and results.
	Name() string
}

// JointAlgorithm decides audio and video together, one combination per chunk
// position (ExoPlayer, Shaka, best-practice joint adaptation).
type JointAlgorithm interface {
	Algorithm
	// SelectCombo picks the audio/video pair for chunk st.ChunkIndex.
	SelectCombo(st State) media.Combo
}

// PerTypeAlgorithm decides each media type independently (dash.js).
type PerTypeAlgorithm interface {
	Algorithm
	// SelectTrack picks the track of type typ for that type's next chunk.
	SelectTrack(typ media.Type, st State) *media.Track
}

// DownloadProgress describes an in-flight chunk download, offered to
// abandonment-capable algorithms on every progress sample.
type DownloadProgress struct {
	// Type and Track identify the download; ChunkIndex its position.
	Type       media.Type
	Track      *media.Track
	ChunkIndex int
	// BytesDone of BytesTotal have arrived after Elapsed.
	BytesDone  float64
	BytesTotal int64
	Elapsed    time.Duration
	// Buffer is the buffered duration of this type right now.
	Buffer time.Duration
	// Attempt counts prior abandonments of this chunk position and type
	// (0 = first attempt).
	Attempt int
}

// Rate returns the download's achieved throughput so far in bits/s.
func (p DownloadProgress) Rate() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return p.BytesDone * 8 / p.Elapsed.Seconds()
}

// RemainingTime estimates how long the rest of the chunk needs at the
// achieved rate (infinite when nothing has arrived).
func (p DownloadProgress) RemainingTime() time.Duration {
	rate := p.Rate()
	if rate <= 0 {
		return time.Duration(1<<62 - 1)
	}
	secs := (float64(p.BytesTotal) - p.BytesDone) * 8 / rate
	return time.Duration(secs * float64(time.Second))
}

// Abandoner is implemented by algorithms that can cancel an in-flight chunk
// download and restart it on a cheaper track (ExoPlayer's and dash.js's
// abandonment rules). Returning nil keeps the download; returning a
// different track of the same type cancels and refetches.
type Abandoner interface {
	Abandon(p DownloadProgress) *media.Track
}

// BandwidthReporter is implemented by algorithms that expose their internal
// bandwidth estimate; the player logs it for the figures.
type BandwidthReporter interface {
	// BandwidthEstimate returns the current estimate; ok is false when the
	// algorithm has no estimate yet.
	BandwidthEstimate() (bps media.Bps, ok bool)
}

// HighestAtMost returns the highest-bitrate combo whose declared aggregate
// bitrate is at most budget, or the lowest combo if none fits. Combos must
// be sorted by increasing bitrate.
func HighestAtMost(combos []media.Combo, budget media.Bps, bitrate func(media.Combo) media.Bps) media.Combo {
	best := combos[0]
	for _, c := range combos {
		if bitrate(c) <= budget {
			best = c
		}
	}
	return best
}

// HighestTrackAtMost returns the highest track with declared bitrate at most
// budget, or the lowest track if none fits.
func HighestTrackAtMost(ladder media.Ladder, budget media.Bps) *media.Track {
	best := ladder[0]
	for _, t := range ladder {
		if t.DeclaredBitrate <= budget {
			best = t
		}
	}
	return best
}
