package dashjs

import (
	"testing"
	"testing/quick"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/media"
)

func feed(p *Player, t media.Type, bps float64, n int) {
	for i := 0; i < n; i++ {
		p.OnComplete(abr.TransferInfo{
			Type:     t,
			Bytes:    bps / 8, // 1 s worth
			Duration: time.Second,
		})
	}
}

func st(vbuf, abuf time.Duration) abr.State {
	return abr.State{VideoBuffer: vbuf, AudioBuffer: abuf, ChunkDuration: 5 * time.Second}
}

func TestStartsAtLowestWithoutEstimate(t *testing.T) {
	c := media.DramaShow()
	p := New(c.VideoTracks, c.AudioTracks)
	if got := p.SelectTrack(media.Video, st(0, 0)); got.ID != "V1" {
		t.Errorf("initial video = %s, want V1", got.ID)
	}
	if got := p.SelectTrack(media.Audio, st(0, 0)); got.ID != "A1" {
		t.Errorf("initial audio = %s, want A1", got.ID)
	}
}

func TestThroughputRulePerType(t *testing.T) {
	c := media.DramaShow()
	p := New(c.VideoTracks, c.AudioTracks)
	// Video sees 700 Kbps: 0.9*700 = 630 -> V3 (473). Audio estimator is
	// still empty, so audio stays at A1: fully independent estimation.
	feed(p, media.Video, 700e3, 4)
	if got := p.SelectTrack(media.Video, st(3*time.Second, 3*time.Second)); got.ID != "V3" {
		t.Errorf("video = %s, want V3", got.ID)
	}
	if got := p.SelectTrack(media.Audio, st(3*time.Second, 3*time.Second)); got.ID != "A1" {
		t.Errorf("audio = %s, want A1 (no audio samples yet)", got.ID)
	}
	// Audio alone sees 700 Kbps: 630 budget -> A3 (384): the undesirable
	// high-audio pick of Fig 5 regardless of what video chose.
	feed(p, media.Audio, 700e3, 4)
	if got := p.SelectTrack(media.Audio, st(3*time.Second, 3*time.Second)); got.ID != "A3" {
		t.Errorf("audio = %s, want A3", got.ID)
	}
}

func TestIndependentDecisionsMakeUndesirableCombos(t *testing.T) {
	// The §3.4 finding distilled: video constrained by its own (shared-
	// bottleneck) throughput picks V2, audio seeing solo downloads picks
	// A3 -> V2+A3 (652 peak) although V3+A2 (840 peak but 558 average, and
	// a far better quality balance) fits the 700 Kbps link.
	c := media.DramaShow()
	p := New(c.VideoTracks, c.AudioTracks)
	feed(p, media.Video, 350e3, 4) // video shares the link with audio
	feed(p, media.Audio, 700e3, 4) // audio often downloads alone
	v := p.SelectTrack(media.Video, st(4*time.Second, 4*time.Second))
	a := p.SelectTrack(media.Audio, st(4*time.Second, 4*time.Second))
	if v.ID != "V2" || a.ID != "A3" {
		t.Errorf("selected %s+%s, want the undesirable V2+A3", v.ID, a.ID)
	}
}

func TestBolaPrefersHigherWithBiggerBuffer(t *testing.T) {
	c := media.DramaShow()
	b := NewBola(c.VideoTracks, DefaultBolaEnterBuffer)
	low := b.Select(2 * time.Second)
	high := b.Select(25 * time.Second)
	if low.DeclaredBitrate >= high.DeclaredBitrate {
		t.Errorf("BOLA: buffer 2s -> %s, 25s -> %s; want increasing quality", low.ID, high.ID)
	}
	if low.ID != "V1" {
		t.Errorf("BOLA at 2s buffer = %s, want V1", low.ID)
	}
}

// Property: BOLA's selection is monotone non-decreasing in buffer level.
func TestBolaMonotoneProperty(t *testing.T) {
	c := media.DramaShow()
	b := NewBola(c.VideoTracks, DefaultBolaEnterBuffer)
	f := func(b1, b2 uint16) bool {
		x, y := time.Duration(b1%40)*time.Second, time.Duration(b2%40)*time.Second
		if x > y {
			x, y = y, x
		}
		return b.Select(x).DeclaredBitrate <= b.Select(y).DeclaredBitrate
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicSwitchover(t *testing.T) {
	c := media.DramaShow()
	p := New(c.VideoTracks, c.AudioTracks)
	feed(p, media.Video, 3e6, 4) // tput rule would pick high
	if p.UsingBola(media.Video) {
		t.Fatal("DYNAMIC must start on THROUGHPUT")
	}
	// Above the enter threshold with BOLA at least as high: hand to BOLA.
	p.SelectTrack(media.Video, st(20*time.Second, 20*time.Second))
	if !p.UsingBola(media.Video) {
		t.Error("expected BOLA above 12 s buffer")
	}
	// Buffer collapses and throughput says higher than BOLA: revert.
	p.SelectTrack(media.Video, st(2*time.Second, 2*time.Second))
	if p.UsingBola(media.Video) {
		t.Error("expected THROUGHPUT below 6 s buffer")
	}
}

func TestDynamicPerTypeIsolation(t *testing.T) {
	c := media.DramaShow()
	p := New(c.VideoTracks, c.AudioTracks)
	feed(p, media.Video, 3e6, 4)
	feed(p, media.Audio, 3e6, 4)
	p.SelectTrack(media.Video, st(20*time.Second, 1*time.Second))
	if !p.UsingBola(media.Video) || p.UsingBola(media.Audio) {
		t.Error("video's DYNAMIC state must not leak into audio's")
	}
}

func TestEstimatesExposedPerType(t *testing.T) {
	c := media.DramaShow()
	p := New(c.VideoTracks, c.AudioTracks)
	if _, ok := p.EstimateOf(media.Audio); ok {
		t.Error("audio estimate should be absent before samples")
	}
	feed(p, media.Audio, 500e3, 4)
	got, ok := p.EstimateOf(media.Audio)
	if !ok || got != media.Kbps(500) {
		t.Errorf("audio estimate = %v,%v; want 500 Kbps", got, ok)
	}
	if _, ok := p.BandwidthEstimate(); ok {
		t.Error("video estimate should still be absent")
	}
}

func TestAbandonRule(t *testing.T) {
	c := media.DramaShow()
	p := New(c.VideoTracks, c.AudioTracks)
	doomed := abr.DownloadProgress{
		Type:       media.Video,
		Track:      c.VideoTracks[4],
		BytesDone:  25_000, // 200 Kbps achieved
		BytesTotal: 900_000,
		Elapsed:    time.Second,
		Buffer:     3 * time.Second,
	}
	repl := p.Abandon(doomed)
	if repl == nil {
		t.Fatal("doomed download not abandoned")
	}
	if repl.DeclaredBitrate >= c.VideoTracks[4].DeclaredBitrate {
		t.Errorf("replacement %s not cheaper", repl.ID)
	}
	// Guards: second attempt, early sample, healthy download.
	second := doomed
	second.Attempt = 1
	if p.Abandon(second) != nil {
		t.Error("abandoned twice")
	}
	early := doomed
	early.Elapsed = 100 * time.Millisecond
	if p.Abandon(early) != nil {
		t.Error("abandoned before a settled rate")
	}
	healthy := doomed
	healthy.BytesDone = 850_000
	if p.Abandon(healthy) != nil {
		t.Error("abandoned a nearly-finished download")
	}
}
