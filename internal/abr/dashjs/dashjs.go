// Package dashjs models the dash.js v2.9 reference player's adaptation as
// described in §3.4 of the paper.
//
// dash.js runs the DYNAMIC strategy — a switchover between the rate-based
// THROUGHPUT rule and the buffer-based BOLA rule — separately and
// independently for audio and for video. Each type has its own bandwidth
// estimator fed only by its own downloads, and its own free-running
// download loop (run this model with the player engine's independent
// scheduler, which it gets automatically by implementing
// abr.PerTypeAlgorithm). The two §3.4 pathologies follow: undesirable
// audio/video pairings (neither loop knows about the other) and unbalanced
// buffers (no cross-type synchronization).
package dashjs

import (
	"math"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/abr/estimator"
	"demuxabr/internal/media"
)

// Defaults mirroring dash.js v2.9.
const (
	// DefaultSafetyFactor is the THROUGHPUT rule's bandwidthSafetyFactor.
	DefaultSafetyFactor = 0.9
	// DefaultBolaEnterBuffer: DYNAMIC hands control to BOLA above this
	// buffer level (when BOLA agrees or selects higher).
	DefaultBolaEnterBuffer = 12 * time.Second
	// DefaultBolaExitBuffer: DYNAMIC reverts to THROUGHPUT below this
	// buffer level (when BOLA selects lower).
	DefaultBolaExitBuffer = 6 * time.Second
)

// Bola is the BOLA-E utility maximizer as parameterized by dash.js's
// BolaRule: utilities are shifted log bitrate ratios, and the control
// parameters Vp and gp are derived from a minimum buffer of 10 s plus 2 s
// per ladder rung.
type Bola struct {
	ladder    media.Ladder
	utilities []float64
	vp        float64 // seconds
	gp        float64
}

// bolaMinimumBuffer and bolaBufferPerLevel are dash.js's BolaRule constants.
const (
	bolaMinimumBuffer  = 10.0 // seconds
	bolaBufferPerLevel = 2.0  // seconds per ladder rung
)

// NewBola derives BOLA parameters for a ladder and a stable buffer target.
func NewBola(ladder media.Ladder, stableBuffer time.Duration) *Bola {
	b := &Bola{ladder: ladder}
	b.utilities = make([]float64, len(ladder))
	l0 := math.Log(float64(ladder[0].DeclaredBitrate))
	for i, t := range ladder {
		b.utilities[i] = math.Log(float64(t.DeclaredBitrate)) - l0 + 1
	}
	bufferTime := math.Max(stableBuffer.Seconds(), bolaMinimumBuffer+bolaBufferPerLevel*float64(len(ladder)))
	top := b.utilities[len(b.utilities)-1]
	b.gp = (top - 1) / (bufferTime/bolaMinimumBuffer - 1)
	b.vp = bolaMinimumBuffer / b.gp
	return b
}

// Select returns the track maximizing the BOLA objective
// (Vp·(u_i+gp) − buffer)/bitrate_i at the given buffer level.
func (b *Bola) Select(buffer time.Duration) *media.Track {
	bestIdx, bestScore := 0, math.Inf(-1)
	for i, t := range b.ladder {
		score := (b.vp*(b.utilities[i]+b.gp) - buffer.Seconds()) / float64(t.DeclaredBitrate)
		if score > bestScore {
			bestScore = score
			bestIdx = i
		}
	}
	return b.ladder[bestIdx]
}

// perTypeState is the DYNAMIC machinery of one media type.
type perTypeState struct {
	ladder    media.Ladder
	est       *estimator.SlidingMean
	bola      *Bola
	usingBola bool
}

// Player is the dash.js model: fully independent per-type DYNAMIC.
type Player struct {
	// SafetyFactor is the THROUGHPUT rule's headroom. Defaults to 0.9.
	SafetyFactor float64
	// BolaEnterBuffer/BolaExitBuffer are the DYNAMIC switchover levels.
	BolaEnterBuffer time.Duration
	BolaExitBuffer  time.Duration

	state [2]*perTypeState
}

// New builds the model for the two ladders.
func New(video, audio media.Ladder) *Player {
	mk := func(l media.Ladder) *perTypeState {
		return &perTypeState{
			ladder: l,
			est:    estimator.NewSlidingMean(),
			bola:   NewBola(l, DefaultBolaEnterBuffer),
		}
	}
	p := &Player{
		SafetyFactor:    DefaultSafetyFactor,
		BolaEnterBuffer: DefaultBolaEnterBuffer,
		BolaExitBuffer:  DefaultBolaExitBuffer,
	}
	p.state[media.Video] = mk(video)
	p.state[media.Audio] = mk(audio)
	return p
}

// Name implements abr.Algorithm.
func (p *Player) Name() string { return "dashjs" }

// OnStart implements abr.Observer.
func (p *Player) OnStart(abr.TransferInfo) {}

// OnProgress implements abr.Observer.
func (p *Player) OnProgress(abr.TransferInfo) {}

// OnComplete implements abr.Observer: each type's estimator sees only its
// own segment downloads — the per-type estimation of §3.4.
func (p *Player) OnComplete(ti abr.TransferInfo) {
	if tput := ti.Throughput(); tput > 0 {
		p.state[ti.Type].est.Add(tput)
	}
}

// BandwidthEstimate implements abr.BandwidthReporter with the video-side
// estimate (the quantity Fig. 5 tracks).
func (p *Player) BandwidthEstimate() (media.Bps, bool) {
	return p.state[media.Video].est.Estimate()
}

// EstimateOf exposes the per-type estimate.
func (p *Player) EstimateOf(t media.Type) (media.Bps, bool) { return p.state[t].est.Estimate() }

// UsingBola reports which rule DYNAMIC is currently applying for a type.
func (p *Player) UsingBola(t media.Type) bool { return p.state[t].usingBola }

// Abandon implements abr.Abandoner, modelling dash.js's
// AbandonRequestsRule: once a download has run long enough to measure and
// its projected completion overshoots the buffer it protects, re-request
// the chunk at the quality the measured rate supports. Each position is
// abandoned at most once per type.
func (p *Player) Abandon(dp abr.DownloadProgress) *media.Track {
	if dp.Attempt > 0 || dp.Elapsed < 500*time.Millisecond {
		return nil
	}
	if dp.RemainingTime() <= dp.Buffer {
		return nil
	}
	s := p.state[dp.Type]
	budget := media.Bps(dp.Rate() * p.SafetyFactor)
	repl := abr.HighestTrackAtMost(s.ladder, budget)
	if repl == dp.Track || repl.DeclaredBitrate >= dp.Track.DeclaredBitrate {
		return nil
	}
	return repl
}

// throughputRule picks the highest track with declared bitrate within the
// safety-scaled estimate; lowest track before any estimate exists.
func (p *Player) throughputRule(s *perTypeState) *media.Track {
	est, ok := s.est.Estimate()
	if !ok {
		return s.ladder[0]
	}
	return abr.HighestTrackAtMost(s.ladder, media.Bps(float64(est)*p.SafetyFactor))
}

// SelectTrack implements abr.PerTypeAlgorithm with the DYNAMIC switchover
// the paper describes: start on THROUGHPUT; hand over to BOLA when the
// buffer exceeds BolaEnterBuffer and BOLA selects at least as high; revert
// when the buffer falls below BolaExitBuffer and BOLA selects lower.
func (p *Player) SelectTrack(t media.Type, st abr.State) *media.Track {
	s := p.state[t]
	buffer := st.Buffer(t)
	tput := p.throughputRule(s)
	bola := s.bola.Select(buffer)
	if s.usingBola {
		if buffer < p.BolaExitBuffer && bola.DeclaredBitrate < tput.DeclaredBitrate {
			s.usingBola = false
		}
	} else {
		if buffer > p.BolaEnterBuffer && bola.DeclaredBitrate >= tput.DeclaredBitrate {
			s.usingBola = true
		}
	}
	if s.usingBola {
		return bola
	}
	return tput
}
