package abr

import (
	"testing"
	"testing/quick"
	"time"

	"demuxabr/internal/media"
)

func ladder() media.Ladder { return media.DramaVideoLadder() }

func TestStateHelpers(t *testing.T) {
	v := ladder()[0]
	a := media.DramaAudioLadder()[0]
	st := State{
		VideoBuffer: 10 * time.Second,
		AudioBuffer: 4 * time.Second,
		LastVideo:   v,
		LastAudio:   a,
	}
	if st.Buffer(media.Video) != 10*time.Second || st.Buffer(media.Audio) != 4*time.Second {
		t.Error("Buffer() wrong")
	}
	if st.MinBuffer() != 4*time.Second {
		t.Errorf("MinBuffer = %v", st.MinBuffer())
	}
	st.VideoBuffer, st.AudioBuffer = st.AudioBuffer, st.VideoBuffer
	if st.MinBuffer() != 4*time.Second {
		t.Errorf("MinBuffer after swap = %v", st.MinBuffer())
	}
	if st.LastTrack(media.Video) != v || st.LastTrack(media.Audio) != a {
		t.Error("LastTrack() wrong")
	}
}

func TestTransferInfoThroughput(t *testing.T) {
	ti := TransferInfo{Bytes: 125000, Duration: time.Second}
	if got := ti.Throughput(); got != 1e6 {
		t.Errorf("Throughput = %v, want 1e6", got)
	}
	if got := (TransferInfo{Bytes: 100}).Throughput(); got != 0 {
		t.Errorf("zero-duration throughput = %v", got)
	}
}

func TestDownloadProgress(t *testing.T) {
	dp := DownloadProgress{
		BytesDone:  25_000,
		BytesTotal: 100_000,
		Elapsed:    time.Second,
	}
	if got := dp.Rate(); got != 200_000 {
		t.Errorf("Rate = %v, want 200e3", got)
	}
	// 75000 bytes remain at 200 Kbps -> 3 s.
	if got := dp.RemainingTime(); got != 3*time.Second {
		t.Errorf("RemainingTime = %v, want 3s", got)
	}
	stalledDp := DownloadProgress{BytesTotal: 100, Elapsed: time.Second}
	if got := stalledDp.RemainingTime(); got < time.Hour {
		t.Errorf("zero-rate remaining = %v, want effectively infinite", got)
	}
}

func TestHighestTrackAtMost(t *testing.T) {
	l := ladder() // declared: 111, 246, 473, 914, 1852, 3746 Kbps
	cases := []struct {
		budget float64
		want   string
	}{
		{50, "V1"}, // nothing fits: lowest
		{111, "V1"},
		{500, "V3"},
		{914, "V4"},
		{10_000, "V6"},
	}
	for _, tc := range cases {
		if got := HighestTrackAtMost(l, media.Kbps(tc.budget)); got.ID != tc.want {
			t.Errorf("budget %v: got %s, want %s", tc.budget, got.ID, tc.want)
		}
	}
}

func TestHighestAtMost(t *testing.T) {
	c := media.DramaShow()
	combos := media.HSub(c) // declared: 239, 374, 669, 1110, 2236, 4130
	cases := []struct {
		budget float64
		want   string
	}{
		{100, "V1+A1"},
		{400, "V2+A1"},
		{700, "V3+A2"},
		{4130, "V6+A3"},
	}
	for _, tc := range cases {
		got := HighestAtMost(combos, media.Kbps(tc.budget), media.Combo.DeclaredBitrate)
		if got.String() != tc.want {
			t.Errorf("budget %v: got %s, want %s", tc.budget, got, tc.want)
		}
	}
}

// Property: HighestAtMost is monotone in the budget and always returns a
// member of the list.
func TestHighestAtMostMonotoneProperty(t *testing.T) {
	c := media.DramaShow()
	combos := media.HSub(c)
	member := map[string]bool{}
	for _, cb := range combos {
		member[cb.String()] = true
	}
	f := func(b1, b2 uint32) bool {
		x, y := media.Bps(b1%5_000_000), media.Bps(b2%5_000_000)
		if x > y {
			x, y = y, x
		}
		lo := HighestAtMost(combos, x, media.Combo.DeclaredBitrate)
		hi := HighestAtMost(combos, y, media.Combo.DeclaredBitrate)
		return member[lo.String()] && member[hi.String()] &&
			lo.DeclaredBitrate() <= hi.DeclaredBitrate()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNopObserver(t *testing.T) {
	var o NopObserver
	// All hooks must be callable no-ops.
	o.OnStart(TransferInfo{})
	o.OnProgress(TransferInfo{})
	o.OnComplete(TransferInfo{})
}
