package shaka

import (
	"testing"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/abr/estimator"
	"demuxabr/internal/media"
)

func feedIntervals(p *Player, bps float64, n int) {
	bytes := bps * estimator.ShakaSampleInterval.Seconds() / 8
	for i := 0; i < n; i++ {
		p.OnProgress(abr.TransferInfo{
			Bytes:    bytes,
			Duration: estimator.ShakaSampleInterval,
			At:       time.Duration(i) * estimator.ShakaSampleInterval,
		})
	}
}

func TestDefaultEstimateSelectsV2A2(t *testing.T) {
	// Fig 4(a): no accepted samples -> 500 Kbps default. Budget 475 Kbps.
	// Highest H_all variant with peak <= 475 is V2+A2 (460); V1+A3 is 510.
	c := media.DramaShow()
	p := NewHLS(media.HAll(c))
	feedIntervals(p, 1e6, 400) // 1 Mbps: 15625 B/interval, all filtered
	if p.HasValidSample() {
		t.Fatal("1 Mbps intervals must not pass the 16 KB filter")
	}
	est, _ := p.BandwidthEstimate()
	if est != media.Kbps(500) {
		t.Fatalf("estimate = %v, want the 500 Kbps default", est)
	}
	got := p.SelectCombo(abr.State{})
	if got.String() != "V2+A2" {
		t.Errorf("selected %s, want V2+A2", got)
	}
}

func TestBimodalOverestimation(t *testing.T) {
	// Fig 4(b): only 1.5 Mbps intervals pass the filter; the estimate
	// converges toward 1.5 Mbps although the true average is 600 Kbps, and
	// the selection climbs far above what the link sustains.
	c := media.DramaShow()
	p := NewHLS(media.HAll(c))
	for cycle := 0; cycle < 10; cycle++ {
		feedIntervals(p, 1.5e6, 32) // 4 s high phase
		feedIntervals(p, 150e3, 64) // 8 s low phase (filtered)
	}
	est, _ := p.BandwidthEstimate()
	if est < media.Kbps(1400) {
		t.Fatalf("estimate = %v, want ~1.5 Mbps overestimate", est)
	}
	got := p.SelectCombo(abr.State{})
	if got.PeakBitrate() < media.Kbps(1000) {
		t.Errorf("selected %s (peak %v); overestimation should pick a high variant", got, got.PeakBitrate())
	}
}

func TestFluctuationAcrossNearbyVariants(t *testing.T) {
	// §3.3: with the estimate wandering between 300 and 700 Kbps, the
	// rate-based rule visits many of the closely spaced H_all combinations:
	// V1+A2 (318), V2+A1 (395), V2+A2 (460), V1+A3 (510), V2+A3 (652).
	c := media.DramaShow()
	p := NewHLS(media.HAll(c))
	distinct := map[string]bool{}
	for est := 300; est <= 700; est += 50 {
		// Drive the estimator to the target. Samples at these low rates
		// only pass the 16 KB filter over longer intervals, so feed 1 s
		// intervals here; the selection rule under test is the same.
		p.est = estimator.NewShakaEstimator()
		bps := float64(est) * 1000 / 0.95
		for i := 0; i < 60; i++ {
			p.est.Interval(bps/8, time.Second)
		}
		if !p.HasValidSample() {
			t.Fatalf("1 s interval at %d Kbps should pass the filter", est)
		}
		distinct[p.SelectCombo(abr.State{}).String()] = true
	}
	if len(distinct) < 3 {
		t.Errorf("only %d distinct selections %v; expected fluctuation across nearby variants", len(distinct), distinct)
	}
}

func TestDASHEqualsHAll(t *testing.T) {
	c := media.DramaShow()
	d := NewDASH(c.VideoTracks, c.AudioTracks)
	h := NewHLS(media.HAll(c))
	dc, hc := d.Combos(), h.Combos()
	if len(dc) != len(hc) {
		t.Fatalf("DASH synthesizes %d combos, HLS lists %d", len(dc), len(hc))
	}
	for i := range dc {
		if dc[i].String() != hc[i].String() {
			t.Errorf("combo %d: %s vs %s", i, dc[i], hc[i])
		}
	}
}

func TestSelectionRespectsManifestSubset(t *testing.T) {
	// Given only H_sub variants, Shaka can only pick from them.
	c := media.DramaShow()
	p := NewHLS(media.HSub(c))
	feedIntervals(p, 2e6, 200)
	got := p.SelectCombo(abr.State{})
	found := false
	for _, v := range media.HSub(c) {
		if v.String() == got.String() {
			found = true
		}
	}
	if !found {
		t.Errorf("selection %s not in H_sub", got)
	}
}

func TestLowestVariantWhenNothingFits(t *testing.T) {
	c := media.DramaShow()
	p := NewHLS(media.HAll(c))
	feedIntervals(p, 2.5e6, 10) // one burst to unlock the estimator
	p.est = estimator.NewShakaEstimator()
	p.est.DefaultEstimate = media.Kbps(100) // nothing fits under 95 Kbps
	got := p.SelectCombo(abr.State{})
	if got.String() != "V1+A1" {
		t.Errorf("selected %s, want the lowest variant V1+A1", got)
	}
}
