// Package shaka models Shaka Player v2.5's audio/video adaptation as
// described in §3.3 of the paper.
//
// Shaka estimates bandwidth from δ = 0.125 s interval samples of each
// individual transfer, discards intervals that moved less than 16 KB, feeds
// the rest into fast/slow EWMAs, and reports a 500 Kbps default until a
// sample is accepted (estimator.ShakaEstimator). Selection is purely
// rate-based over the variant list — the manifest's combinations for HLS,
// or the full cross product it synthesizes for DASH — with no switch
// damping, which is why selections oscillate when many combinations have
// nearby bandwidth requirements.
package shaka

import (
	"demuxabr/internal/abr"
	"demuxabr/internal/abr/estimator"
	"demuxabr/internal/media"
)

// DefaultDowngradeTarget is Shaka's bandwidthDowngradeTarget: a variant is
// selectable while its BANDWIDTH is at most 95% of the estimate.
const DefaultDowngradeTarget = 0.95

// Player is the Shaka model. Run it with player.Config.SampleInterval set
// to estimator.ShakaSampleInterval so the interval sampler sees transfers
// the way Shaka's does.
type Player struct {
	// DowngradeTarget scales the estimate before comparing against variant
	// bandwidths. Defaults to DefaultDowngradeTarget.
	DowngradeTarget float64

	est    *estimator.ShakaEstimator
	combos []media.Combo // selectable variants, sorted by peak bitrate
}

// NewHLS builds the model from an HLS master playlist's variant list.
func NewHLS(variants []media.Combo) *Player {
	return &Player{
		DowngradeTarget: DefaultDowngradeTarget,
		est:             estimator.NewShakaEstimator(),
		combos:          sortedByPeak(variants),
	}
}

// NewDASH builds the model from DASH ladders: Shaka creates all
// combinations of video and audio tracks when parsing a DASH manifest
// (§3.3), so the result matches HLS with the full H_all variant list.
func NewDASH(video, audio media.Ladder) *Player {
	return NewHLS(media.AllCombos(video, audio))
}

func sortedByPeak(in []media.Combo) []media.Combo {
	out := make([]media.Combo, len(in))
	copy(out, in)
	for i := 1; i < len(out); i++ { // insertion sort keeps ties stable
		for j := i; j > 0 && out[j-1].PeakBitrate() > out[j].PeakBitrate(); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Name implements abr.Algorithm.
func (p *Player) Name() string { return "shaka" }

// Combos exposes the selectable variant list.
func (p *Player) Combos() []media.Combo { return p.combos }

// OnStart implements abr.Observer.
func (p *Player) OnStart(abr.TransferInfo) {}

// OnProgress implements abr.Observer: every full δ interval of every
// transfer is offered to the estimator, which applies the 16 KB validity
// filter. Partial final intervals are discarded — Shaka's timer never
// produces them.
func (p *Player) OnProgress(ti abr.TransferInfo) {
	if ti.Duration != estimator.ShakaSampleInterval {
		return
	}
	p.est.Interval(ti.Bytes, ti.Duration)
}

// OnComplete implements abr.Observer (Shaka samples by interval, not by
// request).
func (p *Player) OnComplete(abr.TransferInfo) {}

// BandwidthEstimate implements abr.BandwidthReporter.
func (p *Player) BandwidthEstimate() (media.Bps, bool) { return p.est.Estimate() }

// HasValidSample reports whether any interval passed the 16 KB filter.
func (p *Player) HasValidSample() bool { return p.est.HasValidSample() }

// SelectCombo implements abr.JointAlgorithm: the highest-bandwidth variant
// whose aggregate peak bitrate fits within DowngradeTarget of the estimate
// — re-evaluated from scratch at every chunk, with no damping.
func (p *Player) SelectCombo(abr.State) media.Combo {
	est, _ := p.est.Estimate()
	budget := media.Bps(float64(est) * p.DowngradeTarget)
	return abr.HighestAtMost(p.combos, budget, media.Combo.PeakBitrate)
}
