// Package lowlat implements the three low-latency ABR rules the live
// experiments compare, modelled on the dash.js low-latency player family:
//
//   - Default: dash.js's throughput rule run unchanged in a low-latency
//     session — sliding-mean estimate, 0.9 safety factor, no latency
//     feedback. With nothing reacting to latency error, sustained pressure
//     makes the session drift away from the target.
//   - L2A: Learn2Adapt-LowLatency. An online-learning formulation whose
//     latency constraint enters through a virtual queue: violations
//     accumulate and shrink the bitrate budget multiplicatively, so the rule
//     reacts hard (down to the lowest rung) when latency overruns, then
//     springs back to the full estimate once the queue drains. Lowest
//     latency of the trio, at the price of oscillation and extra stalls.
//   - LoLP: LoL+. A conservative low-percentile throughput estimate, a 0.8
//     safety factor, and up-switch hysteresis gated on both buffer and
//     latency headroom. Fewest stalls, latency held closest to target.
//
// All three are joint algorithms (abr.JointAlgorithm) selecting from the
// allowed combination list, so they compose with the demuxed-vs-muxed and
// transport axes the rest of the library studies.
package lowlat

import (
	"math"
	"time"

	"demuxabr/internal/abr"
	"demuxabr/internal/abr/estimator"
	"demuxabr/internal/media"
)

// Tuning of the three rules. The values follow the upstream players where
// one exists (dash.js live window, throughput-rule safety) and are otherwise
// chosen so the qualitative orderings the live experiments assert hold on
// the deterministic traces.
const (
	// LiveWindow is dash.js's live throughput-history window (3 samples,
	// versus 4 for VOD).
	LiveWindow = 3
	// DefaultSafety is the dash.js throughput-rule bandwidth safety factor.
	DefaultSafety = 0.9
	// L2AQueueGain scales how strongly the accumulated latency-violation
	// queue shrinks the budget: budget = est / (1 + gain·Q).
	L2AQueueGain = 1.5
	// L2AQueueDecay leaks the queue each decision, so steady small latency
	// errors settle at a modest budget cut instead of accumulating without
	// bound, and the post-overrun collapse recovers within a few chunks.
	L2AQueueDecay = 0.6
	// L2AQueueMax caps the virtual queue (seconds of accumulated violation)
	// so recovery after a long overrun stays bounded.
	L2AQueueMax = 8.0
	// LoLPSafety is LoL+'s bandwidth safety factor.
	LoLPSafety = 0.8
	// LoLPPercentile is the throughput percentile LoL+ trusts — deliberately
	// below the median so transient peaks never drive an up-switch.
	LoLPPercentile = 0.25
	// LoLPLatencySlack is the latency headroom above target within which
	// LoL+ still allows quality increases.
	LoLPLatencySlack = 500 * time.Millisecond
	// LoLPMinHold is LoL+'s minimum spacing between quality increases —
	// several segment durations, so one good stretch cannot ratchet the
	// session up into the next dip.
	LoLPMinHold = 15 * time.Second
)

// sortByDeclared returns a copy of combos sorted by declared bitrate.
func sortByDeclared(combos []media.Combo) []media.Combo {
	sorted := make([]media.Combo, len(combos))
	copy(sorted, combos)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j-1].DeclaredBitrate() > sorted[j].DeclaredBitrate(); j-- {
			sorted[j-1], sorted[j] = sorted[j], sorted[j-1]
		}
	}
	return sorted
}

// Default is the dash.js throughput rule in a low-latency session: the mean
// of the last LiveWindow per-segment throughput samples, a 0.9 safety
// factor, and no latency term anywhere in the decision. It is the trio's
// control: whatever latency behaviour it shows is produced entirely by the
// player's catch-up controller, which a too-optimistic selection can starve.
type Default struct {
	abr.NopObserver

	allowed []media.Combo
	hist    *estimator.SlidingMean
}

// NewDefault creates the latency-blind throughput rule over the allowed
// combination list.
func NewDefault(allowed []media.Combo) *Default {
	if len(allowed) == 0 {
		panic("lowlat: empty allowed combination list")
	}
	hist := estimator.NewSlidingMean()
	hist.Window = LiveWindow
	return &Default{allowed: sortByDeclared(allowed), hist: hist}
}

// Name implements abr.Algorithm.
func (d *Default) Name() string { return "ll-default" }

// OnComplete implements abr.Observer: one throughput sample per completed
// chunk, dash.js style.
func (d *Default) OnComplete(ti abr.TransferInfo) {
	if tput := ti.Throughput(); tput > 0 {
		d.hist.Add(tput)
	}
}

// BandwidthEstimate implements abr.BandwidthReporter.
func (d *Default) BandwidthEstimate() (media.Bps, bool) { return d.hist.Estimate() }

// SelectCombo implements abr.JointAlgorithm: richest combination within
// 0.9× the sliding mean; the lowest rung before the first sample.
func (d *Default) SelectCombo(st abr.State) media.Combo {
	est, ok := d.hist.Estimate()
	if !ok {
		return d.allowed[0]
	}
	budget := media.Bps(float64(est) * DefaultSafety)
	return abr.HighestAtMost(d.allowed, budget, media.Combo.DeclaredBitrate)
}

// L2A is the Learn2Adapt-LowLatency rule. The full algorithm is online
// convex optimization over the bitrate ladder; the behavioural core kept
// here is its constraint mechanism — a virtual queue Q that integrates
// latency violation and divides the bitrate budget:
//
//	Q ← clamp(Q + (latency − target), 0, max)
//	budget = reactive_estimate / (1 + gain·Q)
//
// With no safety factor on the estimate (the formulation optimizes bitrate
// directly), the rule runs hot while latency is on target, then collapses to
// the lowest rungs as soon as the queue grows — the low-latency /
// more-stalls trade the live experiments measure.
type L2A struct {
	abr.NopObserver

	allowed []media.Combo
	hist    *estimator.SlidingMean
	last    float64 // most recent per-chunk throughput sample
	queue   float64 // virtual latency-violation queue, seconds
}

// NewL2A creates the Learn2Adapt rule over the allowed combination list.
func NewL2A(allowed []media.Combo) *L2A {
	if len(allowed) == 0 {
		panic("lowlat: empty allowed combination list")
	}
	hist := estimator.NewSlidingMean()
	hist.Window = LiveWindow
	return &L2A{allowed: sortByDeclared(allowed), hist: hist}
}

// Name implements abr.Algorithm.
func (l *L2A) Name() string { return "ll-l2a" }

// OnComplete implements abr.Observer.
func (l *L2A) OnComplete(ti abr.TransferInfo) {
	if tput := ti.Throughput(); tput > 0 {
		l.hist.Add(tput)
		l.last = tput
	}
}

// BandwidthEstimate implements abr.BandwidthReporter: the reactive estimate
// — the last sample when it undercuts the mean, so a sudden drop is acted on
// within one chunk.
func (l *L2A) BandwidthEstimate() (media.Bps, bool) {
	mean, ok := l.hist.Estimate()
	if !ok {
		return 0, false
	}
	return media.Bps(math.Min(float64(mean), l.last)), true
}

// SelectCombo implements abr.JointAlgorithm.
func (l *L2A) SelectCombo(st abr.State) media.Combo {
	// Integrate the latency constraint into the leaky virtual queue. VOD
	// sessions (target zero) leave the queue at zero and get the plain
	// reactive rule.
	if st.LatencyTarget > 0 {
		err := (st.Latency - st.LatencyTarget).Seconds()
		l.queue = math.Min(math.Max(l.queue*L2AQueueDecay+err, 0), L2AQueueMax)
	}
	est, ok := l.BandwidthEstimate()
	if !ok {
		return l.allowed[0]
	}
	budget := media.Bps(float64(est) / (1 + L2AQueueGain*l.queue))
	return abr.HighestAtMost(l.allowed, budget, media.Combo.DeclaredBitrate)
}

// LoLP is the LoL+ rule: a low-percentile throughput estimate weighted by
// chunk size and capped by the most recent sample, a 0.8 safety factor,
// immediate down-switches, and up-switches gated three ways — a chunk of
// buffer in both streams, latency within slack of target, and a minimum
// hold since the previous increase. The conservatism is the point: it is
// the trio's fewest-stalls, closest-to-target configuration.
type LoLP struct {
	abr.NopObserver

	allowed []media.Combo
	hist    *estimator.SlidingPercentile
	last    float64 // most recent per-chunk throughput sample
	current media.Combo
	lastUp  time.Duration
}

// NewLoLP creates the LoL+ rule over the allowed combination list.
func NewLoLP(allowed []media.Combo) *LoLP {
	if len(allowed) == 0 {
		panic("lowlat: empty allowed combination list")
	}
	hist := estimator.NewSlidingPercentile()
	hist.Percentile = LoLPPercentile
	return &LoLP{allowed: sortByDeclared(allowed), hist: hist}
}

// Name implements abr.Algorithm.
func (p *LoLP) Name() string { return "ll-lolp" }

// OnComplete implements abr.Observer: samples weighted by sqrt(bytes), so
// tiny audio chunks cannot swamp the percentile.
func (p *LoLP) OnComplete(ti abr.TransferInfo) {
	if tput := ti.Throughput(); tput > 0 {
		p.hist.Add(math.Sqrt(ti.Bytes), tput)
		p.last = tput
	}
}

// BandwidthEstimate implements abr.BandwidthReporter: the percentile capped
// by the most recent sample, so a sharp dip pulls the estimate down within
// one chunk instead of waiting for the percentile window to turn over.
func (p *LoLP) BandwidthEstimate() (media.Bps, bool) {
	v, ok := p.hist.Estimate()
	if !ok {
		return 0, false
	}
	return media.Bps(math.Min(v, p.last)), true
}

// SelectCombo implements abr.JointAlgorithm.
func (p *LoLP) SelectCombo(st abr.State) media.Combo {
	est, ok := p.BandwidthEstimate()
	if !ok {
		p.current = p.allowed[0]
		return p.current
	}
	budget := media.Bps(float64(est) * LoLPSafety)
	ideal := abr.HighestAtMost(p.allowed, budget, media.Combo.DeclaredBitrate)
	if p.current.Video == nil {
		p.current = ideal
		return p.current
	}
	switch {
	case ideal.DeclaredBitrate() > p.current.DeclaredBitrate():
		// Live buffers are bounded by the latency target (a player cannot
		// hold more media than it trails the edge by), so the buffer gate
		// adapts: half the target when that is tighter than a chunk.
		gate := st.ChunkDuration
		if st.LatencyTarget > 0 && st.LatencyTarget/2 < gate {
			gate = st.LatencyTarget / 2
		}
		okBuffer := st.MinBuffer() >= gate
		okLatency := st.LatencyTarget <= 0 || st.Latency <= st.LatencyTarget+LoLPLatencySlack
		okHold := st.Now-p.lastUp >= LoLPMinHold
		if okBuffer && okLatency && okHold {
			p.current = ideal
			p.lastUp = st.Now
		}
	case ideal.DeclaredBitrate() < p.current.DeclaredBitrate():
		p.current = ideal
	}
	return p.current
}
