// Package estimator implements the bandwidth estimators of the three players
// the paper studies, plus the shared aggregate estimator its §4 best
// practices call for.
//
//   - ShakaEstimator: dual EWMA over δ-interval samples with a 16 KB validity
//     filter and a 500 Kbps default (§3.3) — the root cause of Fig. 4.
//   - GlobalMeter: ExoPlayer's DefaultBandwidthMeter — bytes from all
//     concurrent transfers over active time, into a weighted sliding
//     percentile (§3.2).
//   - SlidingMean: dash.js's per-type throughput history (§3.4).
package estimator

import (
	"math"
	"sort"
	"time"

	"demuxabr/internal/media"
)

// EWMA is an exponentially weighted moving average with a half-life measured
// in sample weight (Shaka's shaka.abr.Ewma). The zero-bias correction makes
// early estimates track the samples instead of the zero initial state.
type EWMA struct {
	halfLife    float64 // weight units (seconds of download time)
	estimate    float64
	totalWeight float64
}

// NewEWMA creates an EWMA whose estimate decays by half after halfLife
// seconds' worth of sample weight.
func NewEWMA(halfLife time.Duration) *EWMA {
	return &EWMA{halfLife: halfLife.Seconds()}
}

// Sample folds in a value observed over the given weight (seconds).
func (e *EWMA) Sample(weight float64, value float64) {
	if weight <= 0 || e.halfLife <= 0 {
		return
	}
	alpha := math.Pow(0.5, weight/e.halfLife)
	e.estimate = alpha*e.estimate + (1-alpha)*value
	e.totalWeight += weight
}

// Estimate returns the zero-bias-corrected average; ok is false before the
// first sample.
func (e *EWMA) Estimate() (float64, bool) {
	if e.totalWeight <= 0 {
		return 0, false
	}
	zeroFactor := 1 - math.Pow(0.5, e.totalWeight/e.halfLife)
	return e.estimate / zeroFactor, true
}

// ShakaEstimator models Shaka Player's EwmaBandwidthEstimator (§3.3): every
// δ = 0.125 s of an active download contributes a throughput sample only if
// at least MinBytes moved in the interval; accepted samples feed fast and
// slow EWMAs and the estimate is their minimum. Until the first accepted
// sample the estimator reports DefaultEstimate.
//
// Both failure modes the paper demonstrates fall out of this design:
// sustained rates below MinBytes/δ (≈1.05 Mbps) never produce a sample, so
// the 500 Kbps default sticks (Fig. 4(a)); under bimodal bandwidth only the
// high phase is sampled, so the estimate converges far above the true
// average (Fig. 4(b)).
type ShakaEstimator struct {
	// MinBytes is the per-interval validity threshold (default 16 KiB).
	MinBytes float64
	// DefaultEstimate is reported before any valid sample (default 500 Kbps).
	DefaultEstimate media.Bps

	fast, slow *EWMA
	hasSample  bool
}

// ShakaSampleInterval is Shaka's throughput sampling period δ.
const ShakaSampleInterval = 125 * time.Millisecond

// NewShakaEstimator creates the estimator with Shaka's defaults: 16 KiB
// minimum interval bytes, 500 Kbps default estimate, 2 s / 5 s half-lives.
func NewShakaEstimator() *ShakaEstimator {
	return &ShakaEstimator{
		MinBytes:        16 * 1024,
		DefaultEstimate: media.Kbps(500),
		fast:            NewEWMA(2 * time.Second),
		slow:            NewEWMA(5 * time.Second),
	}
}

// Interval feeds the bytes moved during one δ interval of one transfer.
// Intervals below MinBytes are discarded (the filtering rule of §3.3).
func (s *ShakaEstimator) Interval(bytes float64, interval time.Duration) {
	if bytes < s.MinBytes {
		return
	}
	bps := bytes * 8 / interval.Seconds()
	s.fast.Sample(interval.Seconds(), bps)
	s.slow.Sample(interval.Seconds(), bps)
	s.hasSample = true
}

// Estimate returns min(fast, slow), or DefaultEstimate before any valid
// sample. ok is always true: Shaka always has a number to act on.
func (s *ShakaEstimator) Estimate() (media.Bps, bool) {
	if !s.hasSample {
		return s.DefaultEstimate, true
	}
	f, _ := s.fast.Estimate()
	sl, _ := s.slow.Estimate()
	return media.Bps(math.Min(f, sl)), true
}

// HasValidSample reports whether any interval passed the filter (false for
// the entire Fig. 4(a) run).
func (s *ShakaEstimator) HasValidSample() bool { return s.hasSample }

// SlidingPercentile is ExoPlayer's weighted sliding percentile: samples carry
// weight sqrt(bytes); once total weight exceeds MaxWeight the oldest samples
// are evicted; the estimate is the weighted percentile of the rest.
type SlidingPercentile struct {
	// MaxWeight bounds the total retained weight (ExoPlayer default 2000).
	MaxWeight float64
	// Percentile in (0,1); ExoPlayer uses 0.5 (the weighted median).
	Percentile float64

	samples     []weightedSample
	totalWeight float64
}

type weightedSample struct {
	value  float64
	weight float64
}

// NewSlidingPercentile creates the percentile tracker with ExoPlayer's
// defaults (max weight 2000, percentile 0.5).
func NewSlidingPercentile() *SlidingPercentile {
	return &SlidingPercentile{MaxWeight: 2000, Percentile: 0.5}
}

// Add records a sample with the given weight.
func (p *SlidingPercentile) Add(weight, value float64) {
	if weight <= 0 {
		return
	}
	p.samples = append(p.samples, weightedSample{value: value, weight: weight})
	p.totalWeight += weight
	for p.totalWeight > p.MaxWeight && len(p.samples) > 1 {
		p.totalWeight -= p.samples[0].weight
		p.samples = p.samples[1:]
	}
}

// Estimate returns the weighted percentile; ok is false with no samples.
func (p *SlidingPercentile) Estimate() (float64, bool) {
	if len(p.samples) == 0 {
		return 0, false
	}
	sorted := make([]weightedSample, len(p.samples))
	copy(sorted, p.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].value < sorted[j].value })
	target := p.Percentile * p.totalWeight
	var acc float64
	for _, s := range sorted {
		acc += s.weight
		if acc >= target {
			return s.value, true
		}
	}
	return sorted[len(sorted)-1].value, true
}

// GlobalMeter models ExoPlayer's DefaultBandwidthMeter (§3.2): it measures
// the aggregate bytes moved by all concurrent transfers over wall time with
// at least one transfer active, and folds a sample into a sliding percentile
// whenever a transfer completes. Because it observes the union of audio and
// video downloading, it estimates the full link capacity even when the two
// streams share the bottleneck — the behaviour the paper contrasts with
// Shaka's per-transfer sampling.
type GlobalMeter struct {
	percentile *SlidingPercentile

	activeCount int
	activeSince time.Duration
	accBytes    float64
	accTime     time.Duration
}

// NewGlobalMeter creates the meter with ExoPlayer's percentile defaults.
func NewGlobalMeter() *GlobalMeter {
	return &GlobalMeter{percentile: NewSlidingPercentile()}
}

// TransferStart notes that a transfer became active at time now.
func (m *GlobalMeter) TransferStart(now time.Duration) {
	if m.activeCount == 0 {
		m.activeSince = now
	}
	m.activeCount++
}

// TransferBytes accumulates bytes moved by any transfer.
func (m *GlobalMeter) TransferBytes(bytes float64) { m.accBytes += bytes }

// TransferEnd notes a completion at time now and emits a sample covering the
// bytes accumulated since the last sample.
func (m *GlobalMeter) TransferEnd(now time.Duration) {
	if m.activeCount <= 0 {
		return
	}
	elapsed := now - m.activeSince
	m.accTime += elapsed
	if m.accTime > 0 && m.accBytes > 0 {
		bps := m.accBytes * 8 / m.accTime.Seconds()
		m.percentile.Add(math.Sqrt(m.accBytes), bps)
		m.accBytes = 0
		m.accTime = 0
	}
	m.activeCount--
	m.activeSince = now
}

// Estimate returns the sliding-percentile bandwidth; ok is false before the
// first completed transfer.
func (m *GlobalMeter) Estimate() (media.Bps, bool) {
	v, ok := m.percentile.Estimate()
	return media.Bps(v), ok
}

// SlidingMean is dash.js's ThroughputHistory: the arithmetic mean of the
// last Window per-segment throughput samples of one media type.
type SlidingMean struct {
	// Window is the number of samples averaged (dash.js VOD default 4).
	Window int

	samples []float64
}

// NewSlidingMean creates a mean estimator with dash.js's VOD window of 4.
func NewSlidingMean() *SlidingMean { return &SlidingMean{Window: 4} }

// Add records one per-segment throughput sample in bits/s.
func (s *SlidingMean) Add(bps float64) {
	s.samples = append(s.samples, bps)
	if len(s.samples) > s.Window {
		s.samples = s.samples[len(s.samples)-s.Window:]
	}
}

// Estimate returns the mean of the retained samples; ok is false with none.
func (s *SlidingMean) Estimate() (media.Bps, bool) {
	if len(s.samples) == 0 {
		return 0, false
	}
	var sum float64
	for _, v := range s.samples {
		sum += v
	}
	return media.Bps(sum / float64(len(s.samples))), true
}
