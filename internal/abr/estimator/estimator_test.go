package estimator

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"demuxabr/internal/media"
)

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(2 * time.Second)
	if _, ok := e.Estimate(); ok {
		t.Error("estimate before samples should not be ok")
	}
	for i := 0; i < 100; i++ {
		e.Sample(0.125, 1e6)
	}
	got, ok := e.Estimate()
	if !ok || math.Abs(got-1e6) > 1 {
		t.Errorf("estimate = %v,%v; want 1e6", got, ok)
	}
}

func TestEWMAZeroBiasCorrection(t *testing.T) {
	// A single sample should yield the sample value, not something diluted
	// by the zero initial state.
	e := NewEWMA(5 * time.Second)
	e.Sample(0.125, 800e3)
	got, ok := e.Estimate()
	if !ok || math.Abs(got-800e3) > 1 {
		t.Errorf("single-sample estimate = %v, want 800e3", got)
	}
}

func TestEWMAIgnoresBadWeight(t *testing.T) {
	e := NewEWMA(2 * time.Second)
	e.Sample(0, 1e6)
	e.Sample(-1, 1e6)
	if _, ok := e.Estimate(); ok {
		t.Error("zero/negative weights should not create an estimate")
	}
}

func TestEWMATracksChange(t *testing.T) {
	e := NewEWMA(time.Second)
	for i := 0; i < 50; i++ {
		e.Sample(0.125, 1e6)
	}
	for i := 0; i < 50; i++ { // 6.25 s of new level >> half-life
		e.Sample(0.125, 2e6)
	}
	got, _ := e.Estimate()
	if math.Abs(got-2e6) > 0.05e6 {
		t.Errorf("estimate = %v, want ~2e6", got)
	}
}

func TestShakaDefaultSticksUnderFilter(t *testing.T) {
	// The Fig 4(a) pathology: at 1 Mbps every 0.125 s interval moves 15625
	// bytes < 16 KiB, so no sample is accepted and the default holds.
	s := NewShakaEstimator()
	for i := 0; i < 1000; i++ {
		s.Interval(15625, ShakaSampleInterval)
	}
	got, ok := s.Estimate()
	if !ok || got != media.Kbps(500) {
		t.Errorf("estimate = %v,%v; want the 500 Kbps default", got, ok)
	}
	if s.HasValidSample() {
		t.Error("no sample should have passed the filter")
	}
}

func TestShakaOverestimatesBimodal(t *testing.T) {
	// The Fig 4(b) pathology: high-phase intervals (1.5 Mbps -> 23437 B)
	// pass the filter, low-phase intervals (150 Kbps -> 2343 B) do not.
	// The estimate converges to the high rate although the average is 600.
	s := NewShakaEstimator()
	for cycle := 0; cycle < 20; cycle++ {
		for i := 0; i < 32; i++ { // 4 s high phase
			s.Interval(1.5e6*0.125/8, ShakaSampleInterval)
		}
		for i := 0; i < 64; i++ { // 8 s low phase
			s.Interval(150e3*0.125/8, ShakaSampleInterval)
		}
	}
	got, _ := s.Estimate()
	if got < media.Kbps(1400) {
		t.Errorf("estimate = %v; want ~1.5 Mbps (overestimation)", got)
	}
	if !s.HasValidSample() {
		t.Error("high-phase samples should have passed the filter")
	}
}

func TestShakaAcceptsExactly16KiB(t *testing.T) {
	s := NewShakaEstimator()
	s.Interval(16*1024, ShakaSampleInterval)
	if !s.HasValidSample() {
		t.Error("a 16 KiB interval must be accepted (threshold is >=)")
	}
	got, _ := s.Estimate()
	want := 16.0 * 1024 * 8 / 0.125
	if math.Abs(float64(got)-want) > 1 {
		t.Errorf("estimate = %v, want %.0f", got, want)
	}
}

func TestShakaMinOfFastSlow(t *testing.T) {
	// After a drop, the fast EWMA falls quicker; min(fast, slow) must be
	// conservative (below the stale slow value).
	s := NewShakaEstimator()
	for i := 0; i < 200; i++ {
		s.Interval(2e6*0.125/8, ShakaSampleInterval) // 2 Mbps
	}
	high, _ := s.Estimate()
	for i := 0; i < 20; i++ { // 2.5 s at 1.2 Mbps (still above filter)
		s.Interval(1.2e6*0.125/8, ShakaSampleInterval)
	}
	low, _ := s.Estimate()
	if low >= high {
		t.Errorf("estimate did not fall after rate drop: %v -> %v", high, low)
	}
}

func TestSlidingPercentileMedian(t *testing.T) {
	p := NewSlidingPercentile()
	if _, ok := p.Estimate(); ok {
		t.Error("empty percentile should not be ok")
	}
	for _, v := range []float64{100, 200, 300, 400, 500} {
		p.Add(1, v)
	}
	got, ok := p.Estimate()
	if !ok || got != 300 {
		t.Errorf("median = %v,%v; want 300", got, ok)
	}
}

func TestSlidingPercentileEviction(t *testing.T) {
	p := &SlidingPercentile{MaxWeight: 3, Percentile: 0.5}
	p.Add(1, 100)
	p.Add(1, 200)
	p.Add(1, 300)
	p.Add(1, 400) // evicts 100
	got, _ := p.Estimate()
	if got != 300 {
		t.Errorf("median after eviction = %v, want 300", got)
	}
	p.Add(0, 999) // ignored
	if got, _ := p.Estimate(); got != 300 {
		t.Errorf("zero-weight sample changed estimate to %v", got)
	}
}

func TestSlidingPercentileWeighted(t *testing.T) {
	p := NewSlidingPercentile()
	p.Add(10, 100)
	p.Add(1, 1000)
	got, _ := p.Estimate()
	if got != 100 {
		t.Errorf("weighted median = %v, want 100 (heavy sample dominates)", got)
	}
}

func TestGlobalMeterSingleTransfer(t *testing.T) {
	m := NewGlobalMeter()
	if _, ok := m.Estimate(); ok {
		t.Error("estimate before transfers should not be ok")
	}
	m.TransferStart(0)
	m.TransferBytes(125000) // 1 Mbit over 1 s
	m.TransferEnd(time.Second)
	got, ok := m.Estimate()
	if !ok || math.Abs(float64(got)-1e6) > 1 {
		t.Errorf("estimate = %v,%v; want 1 Mbps", got, ok)
	}
}

func TestGlobalMeterAggregatesConcurrent(t *testing.T) {
	// Two concurrent transfers each at 500 Kbps on a 1 Mbps link: the
	// global meter must see the full 1 Mbps, not the per-transfer share.
	m := NewGlobalMeter()
	m.TransferStart(0)
	m.TransferStart(0)
	m.TransferBytes(62500) // transfer A's bytes over 1 s at 500 Kbps
	m.TransferBytes(62500) // transfer B's bytes
	m.TransferEnd(time.Second)
	m.TransferEnd(time.Second)
	got, _ := m.Estimate()
	if math.Abs(float64(got)-1e6) > 1 {
		t.Errorf("estimate = %v, want 1 Mbps (aggregate view)", got)
	}
}

func TestGlobalMeterEndWithoutStart(t *testing.T) {
	m := NewGlobalMeter()
	m.TransferEnd(time.Second) // must not panic or corrupt state
	if _, ok := m.Estimate(); ok {
		t.Error("estimate should be absent")
	}
}

func TestSlidingMeanWindow(t *testing.T) {
	s := NewSlidingMean()
	if _, ok := s.Estimate(); ok {
		t.Error("empty mean should not be ok")
	}
	for _, v := range []float64{100, 200, 300, 400} {
		s.Add(v)
	}
	got, _ := s.Estimate()
	if got != media.Bps(250) {
		t.Errorf("mean = %v, want 250", got)
	}
	s.Add(500) // evicts 100: mean of 200..500 = 350
	got, _ = s.Estimate()
	if got != media.Bps(350) {
		t.Errorf("mean after eviction = %v, want 350", got)
	}
}

// Property: the EWMA estimate always lies within [min, max] of the samples.
func TestEWMABoundedProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		e := NewEWMA(3 * time.Second)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			x := float64(v%10_000_000) + 1
			e.Sample(0.125, x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		got, ok := e.Estimate()
		return ok && got >= lo-1e-6 && got <= hi+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the sliding percentile estimate is always one of the samples
// still in the window.
func TestSlidingPercentileMembershipProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		p := NewSlidingPercentile()
		seen := map[float64]bool{}
		for _, v := range vals {
			x := float64(v) + 1
			p.Add(math.Sqrt(x), x)
			seen[x] = true
		}
		got, ok := p.Estimate()
		return ok && seen[got]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalMeterMultiplePeriods(t *testing.T) {
	// Two disjoint active periods at different rates: the sliding
	// percentile blends both; neither period is lost.
	m := NewGlobalMeter()
	m.TransferStart(0)
	m.TransferBytes(125000) // 1 Mbps for 1 s
	m.TransferEnd(time.Second)
	m.TransferStart(10 * time.Second)
	m.TransferBytes(250000) // 2 Mbps for 1 s
	m.TransferEnd(11 * time.Second)
	got, ok := m.Estimate()
	if !ok || got < media.Kbps(1000) || got > media.Kbps(2000) {
		t.Errorf("estimate = %v, want within [1,2] Mbps", got)
	}
}

func TestShakaEstimatorCustomThreshold(t *testing.T) {
	s := NewShakaEstimator()
	s.MinBytes = 1000
	s.Interval(1500, ShakaSampleInterval)
	if !s.HasValidSample() {
		t.Error("sample above custom threshold rejected")
	}
}

func TestSlidingMeanCustomWindow(t *testing.T) {
	s := &SlidingMean{Window: 2}
	s.Add(100)
	s.Add(200)
	s.Add(600)
	got, _ := s.Estimate()
	if got != media.Bps(400) {
		t.Errorf("window-2 mean = %v, want 400", got)
	}
}

func TestEWMAEstimateBeforeAndAfter(t *testing.T) {
	e := NewEWMA(0) // zero half-life: samples ignored
	e.Sample(1, 100)
	if _, ok := e.Estimate(); ok {
		t.Error("zero half-life should never estimate")
	}
}
