package runpool

import (
	"errors"
	"sync"
	"testing"
)

// TestMapCollectsInSubmissionOrder is the ordered-collection contract: jobs
// whose completion order is deliberately reversed (job i blocks until job
// i+1 has finished) must still land in the results slice by submission
// index. Run under -race this also proves the collection path publishes
// results safely.
func TestMapCollectsInSubmissionOrder(t *testing.T) {
	const n = 8
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	var mu sync.Mutex
	var completed []int
	// workers == n so every job is claimed before any can finish; the
	// channel chain then forces completion in exact reverse order.
	out, err := Map(n, n, func(i int) (int, error) {
		if i < n-1 {
			<-done[i+1]
		}
		mu.Lock()
		completed = append(completed, i)
		mu.Unlock()
		close(done[i])
		return i * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*10 {
			t.Fatalf("out[%d] = %d, want %d: results not in submission order", i, v, i*10)
		}
	}
	for i, c := range completed {
		if want := n - 1 - i; c != want {
			t.Fatalf("completion order %v: job %d completed at position %d, want %d — stagger did not reverse, test proves nothing", completed, c, i, want)
		}
	}
}

// TestMapReturnsLowestIndexError: when several concurrent jobs fail, Map
// must report the error the serial loop would have stopped at — the lowest
// failing index — not whichever failure happened to finish first.
func TestMapReturnsLowestIndexError(t *testing.T) {
	const n = 6
	errLow := errors.New("job 2 failed")
	errHigh := errors.New("job 4 failed")
	release := make(chan struct{})
	var ready sync.WaitGroup
	ready.Add(n)
	go func() {
		// Let every job be claimed before any may fail, so both failures
		// are guaranteed to be recorded.
		ready.Wait()
		close(release)
	}()
	out, err := Map(n, n, func(i int) (int, error) {
		ready.Done()
		<-release
		switch i {
		case 2:
			return 0, errLow
		case 4:
			return 0, errHigh
		}
		return i, nil
	})
	if out != nil {
		t.Fatalf("out = %v, want nil on error", out)
	}
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want the lowest-index failure %v", err, errLow)
	}
}

// TestMapSerialStopsAtFirstError: workers == 1 must be the literal serial
// loop — later jobs never run after a failure.
func TestMapSerialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	_, err := Map(1, 5, func(i int) (int, error) {
		ran = append(ran, i)
		if i == 2 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if len(ran) != 3 || ran[0] != 0 || ran[1] != 1 || ran[2] != 2 {
		t.Fatalf("ran = %v, want [0 1 2]: serial path must stop at the first error", ran)
	}
}

// TestMapPanicPropagates: a panicking job must surface on the caller, not
// kill a worker goroutine silently.
func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "job 1 exploded" {
			t.Fatalf("recovered %v, want job panic value", r)
		}
	}()
	Map(4, 4, func(i int) (int, error) {
		if i == 1 {
			panic("job 1 exploded")
		}
		return i, nil
	})
	t.Fatal("Map returned instead of panicking")
}

func TestMapZeroJobs(t *testing.T) {
	out, err := Map(4, 0, func(i int) (int, error) { return i, nil })
	if out != nil || err != nil {
		t.Fatalf("Map(_, 0, _) = %v, %v; want nil, nil", out, err)
	}
}

func TestWorkersDefault(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Fatalf("Workers(0) = %d, want >= 1", got)
	}
}

func TestCollect(t *testing.T) {
	out := Collect(0, 5, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}
