// Package runpool fans independent simulation sessions out across worker
// goroutines while keeping the fleet's output byte-identical to a serial
// run.
//
// The determinism contract (see docs/PERFORMANCE.md):
//
//   - Jobs are independent: each builds its own netsim.Engine, its own
//     player state, and any randomness from a per-job seed
//     (rand.New(rand.NewSource(seed))). Nothing mutable is shared, and no
//     job reads the wall clock — the vetabr simclock analyzer enforces
//     that for this package like any other simulation package.
//   - Results are collected in submission order, not completion order:
//     Map(workers, n, job) returns exactly what the serial loop
//     `for i := 0; i < n; i++ { out[i] = job(i) }` would, regardless of
//     worker count or scheduling.
//   - workers == 1 runs that serial loop literally, so `-parallel 1`
//     recovers the exact pre-fan-out behaviour, including stopping at the
//     first error.
package runpool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count flag: values above zero are used as
// given; zero or negative means "one worker per available CPU"
// (GOMAXPROCS), the default for every -parallel flag in the repo.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs job(0..n-1) on up to workers goroutines and returns the results
// indexed by job, i.e. in submission order. On error it returns nil and
// the error from the lowest-numbered failing job — the same error a serial
// loop would have stopped at (later jobs may or may not have run; their
// results are discarded). A panicking job is re-panicked on the calling
// goroutine.
func Map[T any](workers, n int, job func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers = Workers(workers); workers > n {
		workers = n
	}
	if workers == 1 {
		// The literal serial loop: no goroutines, stop at first error.
		out := make([]T, n)
		for i := 0; i < n; i++ {
			v, err := job(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	out := make([]T, n)
	errs := make([]error, n)
	var (
		next    atomic.Int64 // next job index to claim
		failed  atomic.Bool  // set on first error; stops claiming new jobs
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panics  []any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					panics = append(panics, r)
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				v, err := job(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if len(panics) > 0 {
		panic(panics[0])
	}
	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Collect is Map for infallible jobs: same worker fan-out, same
// submission-order collection, no error plumbing.
func Collect[T any](workers, n int, job func(i int) T) []T {
	out, _ := Map(workers, n, func(i int) (T, error) { return job(i), nil })
	return out
}
