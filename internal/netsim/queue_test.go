package netsim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// queueOp is one step of a randomized workload: schedule, cancel, step, or
// run-until.
type queueOp struct {
	kind  int // 0 schedule, 1 cancel, 2 step, 3 run-until
	delay time.Duration
	pick  int // which live event to cancel
}

// randomOps builds a workload with heavy same-timestamp collisions (delay 0
// and small quantized delays) so the seq tie-break is exercised constantly.
// RunUntil ops (often targeting a time before the next pending event, so the
// probe peeks without popping) interleave with later schedules to cover the
// persisted-peek cursor states.
func randomOps(rng *rand.Rand, n int) []queueOp {
	ops := make([]queueOp, n)
	for i := range ops {
		switch r := rng.Intn(10); {
		case r < 5:
			d := time.Duration(rng.Intn(50)) * time.Millisecond
			if rng.Intn(4) == 0 {
				d = 0
			}
			ops[i] = queueOp{kind: 0, delay: d}
		case r < 7:
			ops[i] = queueOp{kind: 1, pick: rng.Int()}
		case r < 8:
			// Small advances rarely reach the next event (delays above are up
			// to 50ms), so most of these peek a far event and leave it pending.
			ops[i] = queueOp{kind: 3, delay: time.Duration(rng.Intn(8)) * time.Millisecond}
		default:
			ops[i] = queueOp{kind: 2}
		}
	}
	return ops
}

// replay runs ops against an engine and returns the (time, tag) firing
// sequence. Tags are assigned in schedule order, so identical sequences mean
// identical event ordering, including tie-breaks.
func replay(e *Engine, ops []queueOp) []string {
	var fired []string
	live := map[int]*Event{}
	tag := 0
	for _, op := range ops {
		switch op.kind {
		case 0:
			id := tag
			tag++
			var ev *Event
			ev = e.After(op.delay, func() {
				delete(live, id)
				fired = append(fired, fmt.Sprintf("%d@%v", id, e.Now()))
			})
			live[id] = ev
		case 1:
			if len(live) == 0 {
				continue
			}
			// Deterministic pick: lowest live id >= pick mod (tag+1).
			want := op.pick % (tag + 1)
			best := -1
			for id := range live {
				if id >= want && (best == -1 || id < best) {
					best = id
				}
			}
			if best == -1 {
				for id := range live {
					if best == -1 || id < best {
						best = id
					}
				}
			}
			e.Cancel(live[best])
			delete(live, best)
		case 2:
			e.Step()
		case 3:
			e.RunUntil(e.Now() + op.delay)
		}
	}
	for e.Step() {
	}
	return fired
}

// TestCalendarMatchesHeapOrder is the equivalence proof for the calendar
// queue: on randomized schedule/cancel/step workloads with dense timestamp
// collisions, the calendar-backed engine fires exactly the same events at
// exactly the same times in exactly the same order as the reference heap.
func TestCalendarMatchesHeapOrder(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		ops := randomOps(rand.New(rand.NewSource(seed)), 2000)
		gotHeap := replay(newEngineWithQueue(&heapQueue{}), ops)
		gotCal := replay(newEngineWithQueue(newCalendarQueue()), ops)
		if len(gotHeap) != len(gotCal) {
			t.Fatalf("seed %d: heap fired %d events, calendar %d", seed, len(gotHeap), len(gotCal))
		}
		for i := range gotHeap {
			if gotHeap[i] != gotCal[i] {
				t.Fatalf("seed %d: firing %d differs: heap %s calendar %s", seed, i, gotHeap[i], gotCal[i])
			}
		}
	}
}

// TestCalendarSparseAndBurst covers the two calendar pathologies: a long
// empty gap (the direct-search fallback) and a burst of equal timestamps
// (everything in one bucket, ordered purely by seq).
func TestCalendarSparseAndBurst(t *testing.T) {
	e := NewEngine()
	var fired []int
	// Burst: 100 events at the same instant.
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { fired = append(fired, i) })
	}
	// Sparse: one event a simulated hour away.
	e.Schedule(time.Hour, func() { fired = append(fired, 100) })
	for e.Step() {
	}
	if len(fired) != 101 {
		t.Fatalf("fired %d of 101", len(fired))
	}
	for i, got := range fired {
		if got != i {
			t.Fatalf("firing %d: got event %d, want %d (seq tie-break broken)", i, got, i)
		}
	}
	if e.Now() != time.Hour {
		t.Fatalf("clock at %v, want 1h", e.Now())
	}
}

// TestCalendarResizeKeepsOrder grows the queue past several resize
// thresholds, then drains and checks global (at, seq) order.
func TestCalendarResizeKeepsOrder(t *testing.T) {
	e := NewEngine()
	rng := rand.New(rand.NewSource(7))
	type key struct {
		at  time.Duration
		ord int
	}
	var fired []key
	for i := 0; i < 5000; i++ {
		i := i
		at := time.Duration(rng.Intn(10_000)) * time.Microsecond
		e.Schedule(at, func() { fired = append(fired, key{e.Now(), i}) })
	}
	for e.Step() {
	}
	if len(fired) != 5000 {
		t.Fatalf("fired %d of 5000", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		a, b := fired[i-1], fired[i]
		if b.at < a.at || (b.at == a.at && b.ord < a.ord) {
			t.Fatalf("order violated at %d: %v then %v", i, a, b)
		}
	}
}

// TestCalendarRunUntilPeek pins RunUntil's peek path on the calendar queue:
// events at exactly t fire, events after t stay pending.
func TestCalendarRunUntilPeek(t *testing.T) {
	e := NewEngine()
	var fired []int
	e.Schedule(10*time.Millisecond, func() { fired = append(fired, 0) })
	e.Schedule(20*time.Millisecond, func() { fired = append(fired, 1) })
	e.Schedule(30*time.Millisecond, func() { fired = append(fired, 2) })
	e.RunUntil(20 * time.Millisecond)
	if len(fired) != 2 || e.Pending() != 1 {
		t.Fatalf("RunUntil(20ms): fired %v, pending %d; want [0 1], 1", fired, e.Pending())
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("clock at %v, want 20ms", e.Now())
	}
}

// TestCalendarScheduleAfterRunUntilPeek is the regression test for the
// stranded-cursor bug: RunUntil's final peek advances the cursor to the
// window of a far-future event without popping it, and a subsequent Schedule
// at an earlier time must rewind the cursor or it fires out of order.
func TestCalendarScheduleAfterRunUntilPeek(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	record := func() { fired = append(fired, e.Now()) }
	e.Schedule(50*time.Millisecond, record)
	e.RunUntil(10 * time.Millisecond) // peeks the 50ms event, advancing the cursor
	e.Schedule(15*time.Millisecond, record)
	for e.Step() {
	}
	want := []time.Duration{15 * time.Millisecond, 50 * time.Millisecond}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v (event behind the peeked cursor fired late)", fired, want)
		}
	}
}

func benchQueue(b *testing.B, mk func() eventQueue, pending int) {
	e := newEngineWithQueue(mk())
	for i := 0; i < pending; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Hold the pending count steady: every step reschedules one event.
		e.After(time.Duration(pending)*time.Millisecond, func() {})
		e.Step()
	}
}

func BenchmarkQueueHeap(b *testing.B) {
	for _, p := range []int{64, 4096} {
		b.Run(fmt.Sprintf("pending-%d", p), func(b *testing.B) {
			benchQueue(b, func() eventQueue { return &heapQueue{} }, p)
		})
	}
}

func BenchmarkQueueCalendar(b *testing.B) {
	for _, p := range []int{64, 4096} {
		b.Run(fmt.Sprintf("pending-%d", p), func(b *testing.B) {
			benchQueue(b, func() eventQueue { return newCalendarQueue() }, p)
		})
	}
}
