// Package netsim is a discrete-event network simulator with virtual time.
//
// It models the paper's testbed: an HTTP origin reached through a single
// tc-shaped bottleneck link. The link has a piecewise-constant capacity
// profile (trace.Profile) and serves any number of concurrent transfers,
// splitting capacity equally among active flows (the steady-state behaviour
// of competing TCP flows sharing one bottleneck). Transfers progress as a
// fluid; events fire at transfer activations, completions, profile
// breakpoints, and optional fixed-interval progress samples (used to model
// Shaka's 0.125 s throughput sampler).
package netsim

import (
	"fmt"
	"time"
)

// Engine is a virtual-time discrete-event scheduler. The zero value is not
// usable; create one with NewEngine.
type Engine struct {
	now     time.Duration
	q       eventQueue
	seq     uint64
	stopped bool
	// free recycles fired events: a long session schedules hundreds of
	// thousands of events but holds only a handful pending at once, so the
	// freelist caps Event allocations at the pending high-water mark.
	free []*Event
}

// NewEngine returns an engine with the clock at zero. Events are held in a
// calendar queue (see queue.go); newEngineWithQueue is the test seam that
// swaps in the reference heap to prove the orderings identical.
func NewEngine() *Engine { return newEngineWithQueue(newCalendarQueue()) }

func newEngineWithQueue(q eventQueue) *Engine { return &Engine{q: q} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Event is a scheduled callback; it can be cancelled before it fires.
type Event struct {
	at     time.Duration
	seq    uint64
	fn     func()
	idx    int // index within the heap or bucket; -1 once fired or cancelled
	bucket int // owning calendar bucket (unused by the heap queue)
}

// At returns the time the event is scheduled for.
func (ev *Event) At() time.Duration { return ev.at }

// Schedule runs fn at virtual time at. Scheduling in the past panics: it
// indicates a simulator bug, not a recoverable condition.
//
// The returned *Event is valid for Cancel until it fires. Once its
// callback has run, the Event object may be recycled by a later Schedule,
// so holders must drop their reference no later than the callback itself
// (every in-tree holder nils its field at the top of the callback).
// Cancelling during the event's own callback is still safe: recycling
// happens only after the callback returns.
func (e *Engine) Schedule(at time.Duration, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("netsim: scheduling at %v before now %v", at, e.now))
	}
	e.seq++
	var ev *Event
	if k := len(e.free); k > 0 {
		ev = e.free[k-1]
		e.free[k-1] = nil
		e.free = e.free[:k-1]
		ev.at, ev.seq, ev.fn = at, e.seq, fn
	} else {
		ev = &Event{at: at, seq: e.seq, fn: fn}
	}
	e.q.push(ev)
	return ev
}

// After runs fn d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	return e.Schedule(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.idx < 0 {
		return
	}
	e.q.remove(ev)
}

// Step fires the next event. It reports false when no events remain or the
// engine is stopped.
func (e *Engine) Step() bool {
	if e.stopped || e.q.len() == 0 {
		return false
	}
	ev := e.q.pop()
	e.now = ev.at
	fn := ev.fn
	ev.fn = nil // release the closure for GC while the Event sits pooled
	fn()
	// Recycle only after the callback: a Cancel on this event from within
	// its own callback must still be a no-op, not hit a reused event.
	// Cancelled events are never recycled — stale handles to them may
	// legitimately be double-cancelled later.
	e.free = append(e.free, ev)
	return true
}

// Run fires events until none remain, Stop is called, or the event count
// budget is exhausted (a safeguard against runaway simulations).
func (e *Engine) Run(maxEvents int) error {
	for i := 0; i < maxEvents; i++ {
		if !e.Step() {
			return nil
		}
	}
	return fmt.Errorf("netsim: event budget %d exhausted at t=%v", maxEvents, e.now)
}

// RunUntil fires events with time ≤ t, then sets the clock to t.
func (e *Engine) RunUntil(t time.Duration) {
	for !e.stopped && e.q.len() > 0 && e.q.peek().at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Stop halts Run/RunUntil after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return e.q.len() }

// eventHeap orders events by time, then by scheduling order for stability.
// See queue.go for the sift operations (pushEvent/popMin/removeAt).
type eventHeap []*Event

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
