package netsim

import (
	"testing"
	"time"

	"demuxabr/internal/media"
	"demuxabr/internal/timeline"
	"demuxabr/internal/trace"
)

// near asserts a time within 1ms of the expected value (the fluid solver
// computes completion times in float math).
func near(t *testing.T, what string, got, want time.Duration) {
	t.Helper()
	d := got - want
	if d < 0 {
		d = -d
	}
	if d > time.Millisecond {
		t.Errorf("%s = %v, want %v", what, got, want)
	}
}

// Regression test for the cancel-during-RTT activation leak. Cancelling a
// transfer that is still waiting out its pre-byte delay could never make
// it a ghost (activate() refuses cancelled transfers — the second half of
// this test documents that), but the pending activation event itself was
// left in the queue until its due time. The fix reclaims it: immediately
// after Cancel the engine queue must be empty. This test fails without
// the fix (pending == 1, and the run clock advances to the dead event's
// due time).
func TestCancelDuringRTTReclaimsActivationEvent(t *testing.T) {
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(media.Kbps(1000)))
	link.RTT = time.Second

	completed := false
	samples := 0
	tr := link.Start(1000, StartOptions{
		OnComplete:  func(*Transfer) { completed = true },
		SampleEvery: 100 * time.Millisecond,
		OnSample:    func(*Transfer, float64, time.Duration) { samples++ },
	})

	pendingAfterCancel := -1
	eng.Schedule(500*time.Millisecond, func() {
		link.Cancel(tr)
		pendingAfterCancel = eng.Pending()
	})
	if err := eng.Run(100); err != nil {
		t.Fatal(err)
	}
	if pendingAfterCancel != 0 {
		t.Errorf("pending events after cancel = %d, want 0 (activation event leaked)", pendingAfterCancel)
	}
	if eng.Now() != 500*time.Millisecond {
		t.Errorf("run clock = %v, want 500ms (dead activation event kept the engine alive)", eng.Now())
	}
	// The impossibility half: even pre-fix, the cancelled transfer never
	// activates, samples, or completes.
	if completed || samples != 0 || link.ActiveTransfers() != 0 {
		t.Errorf("cancelled transfer showed life: completed=%v samples=%d active=%d",
			completed, samples, link.ActiveTransfers())
	}
}

// 8 Mbps = 1e6 bytes/s: a 1e6-byte transfer takes exactly 1s of wire time.
func transportTestLink(eng *Engine) *Link {
	l := NewLink(eng, trace.Fixed(media.Kbps(8000)))
	l.RTT = 100 * time.Millisecond
	return l
}

func TestConnHandshakeChargesSetupRTTs(t *testing.T) {
	eng := NewEngine()
	link := transportTestLink(eng)
	rec := timeline.New(0, "test")
	c := NewConn(link, TransportConfig{Protocol: H1, HandshakeRTTs: 3, ResumeRTTs: 2, MaxStreams: 1}, "conn")
	c.SetRecorder(rec)

	var done1, done2 time.Duration
	c.Start(1_000_000, StartOptions{OnComplete: func(*Transfer) {
		done1 = eng.Now()
		// Second request on the warm connection: no setup, just RTT + wire.
		c.Start(1_000_000, StartOptions{OnComplete: func(*Transfer) { done2 = eng.Now() }})
	}})
	if err := eng.Run(10_000); err != nil {
		t.Fatal(err)
	}
	// 3 RTT handshake + 1 RTT first byte + 1s wire.
	near(t, "first completion", done1, 1400*time.Millisecond)
	near(t, "second completion", done2, 2500*time.Millisecond)

	st := c.Stats()
	if st.Handshakes != 1 || st.Resumes != 0 {
		t.Errorf("handshakes = %d, resumes = %d, want 1, 0", st.Handshakes, st.Resumes)
	}
	if st.HandshakeWait != 300*time.Millisecond {
		t.Errorf("handshake wait = %v, want 300ms", st.HandshakeWait)
	}
	evs := rec.Events()
	if len(evs) != 1 || evs[0].Kind != timeline.Handshake || evs[0].Detail != "h1" || evs[0].Dur != 300*time.Millisecond {
		t.Errorf("handshake events = %+v, want one h1 handshake of 300ms", evs)
	}
}

func TestConnIdleTimeoutPaysResume(t *testing.T) {
	eng := NewEngine()
	link := transportTestLink(eng)
	rec := timeline.New(0, "test")
	c := NewConn(link, TransportConfig{
		Protocol: H1, HandshakeRTTs: 3, ResumeRTTs: 2, MaxStreams: 1,
		IdleTimeout: time.Second,
	}, "conn")
	c.SetRecorder(rec)

	var done2 time.Duration
	c.Start(1_000_000, StartOptions{}) // completes at 1.4s
	eng.Schedule(3*time.Second, func() {
		// Idle 1.6s >= 1s: the keep-alive lapsed; this request reconnects
		// at the resume price.
		c.Start(1_000_000, StartOptions{OnComplete: func(*Transfer) { done2 = eng.Now() }})
	})
	if err := eng.Run(10_000); err != nil {
		t.Fatal(err)
	}
	near(t, "post-idle completion", done2, 4300*time.Millisecond) // 3s + 2 RTT resume + RTT + 1s
	st := c.Stats()
	if st.Handshakes != 1 || st.Resumes != 1 {
		t.Errorf("handshakes = %d, resumes = %d, want 1, 1", st.Handshakes, st.Resumes)
	}
	if st.HandshakeWait != 500*time.Millisecond {
		t.Errorf("handshake wait = %v, want 500ms", st.HandshakeWait)
	}
	evs := rec.Events()
	if len(evs) != 2 || evs[1].Detail != "h1-resume" {
		t.Fatalf("events = %+v, want handshake then h1-resume", evs)
	}
}

func TestConnZeroRTTResumeIsFreeButRecorded(t *testing.T) {
	eng := NewEngine()
	link := transportTestLink(eng)
	rec := timeline.New(0, "test")
	c := NewConn(link, TransportConfig{
		Protocol: H3, HandshakeRTTs: 1, ResumeRTTs: 0, IdleTimeout: time.Second,
	}, "conn")
	c.SetRecorder(rec)

	var done2 time.Duration
	c.Start(1_000_000, StartOptions{}) // 1 RTT handshake + RTT + 1s = 1.2s
	eng.Schedule(3*time.Second, func() {
		c.Start(1_000_000, StartOptions{OnComplete: func(*Transfer) { done2 = eng.Now() }})
	})
	if err := eng.Run(10_000); err != nil {
		t.Fatal(err)
	}
	// 0-RTT: no setup delay at all, but the resumption is on the record.
	near(t, "0-rtt completion", done2, 4100*time.Millisecond)
	st := c.Stats()
	if st.Handshakes != 1 || st.Resumes != 1 || st.HandshakeWait != 100*time.Millisecond {
		t.Errorf("stats = %+v, want 1 handshake, 1 resume, 100ms wait", st)
	}
	evs := rec.Events()
	if len(evs) != 2 || evs[1].Detail != "h3-0rtt" || evs[1].Dur != 0 {
		t.Fatalf("events = %+v, want handshake then free h3-0rtt", evs)
	}
}

// TestConnH1SerializesStreams runs two concurrent requests through a
// MaxStreams=1 connection and asserts strict serialization.
func TestConnH1SerializesStreams(t *testing.T) {
	eng := NewEngine()
	link := transportTestLink(eng)
	c := NewConn(link, TransportConfig{Protocol: H1, MaxStreams: 1}, "conn")

	var done1, done2 time.Duration
	maxActive := 0
	sample := func(*Transfer, float64, time.Duration) {
		if n := link.ActiveTransfers(); n > maxActive {
			maxActive = n
		}
	}
	c.Start(1_000_000, StartOptions{
		OnComplete:  func(*Transfer) { done1 = eng.Now() },
		SampleEvery: 50 * time.Millisecond, OnSample: sample,
	})
	c.Start(1_000_000, StartOptions{
		OnComplete:  func(*Transfer) { done2 = eng.Now() },
		SampleEvery: 50 * time.Millisecond, OnSample: sample,
	})
	if err := eng.Run(10_000); err != nil {
		t.Fatal(err)
	}
	// Zero-cost setup: request 1 runs alone (RTT + 1s), request 2 only
	// dispatches when the slot frees, then pays its own RTT.
	near(t, "first completion", done1, 1100*time.Millisecond)
	near(t, "second completion", done2, 2200*time.Millisecond)
	if maxActive > 1 {
		t.Errorf("max concurrent transfers = %d, want 1 (H1 serializes)", maxActive)
	}
}

// TestConnHoLBlastRadius pins the H2-vs-H3 difference that motivates the
// transport layer: the same loss draw freezes every multiplexed stream on
// an H2 connection (TCP head-of-line blocking) but only the stream it hit
// on H3. The seed is searched so that exactly the first of two requests
// draws a loss; H2/H3 share the label and seed, hence the draws.
func TestConnHoLBlastRadius(t *testing.T) {
	const rate = 0.5
	draw := func(seed int64, k uint64) bool {
		h := transportMix(uint64(seed) ^ transportLabelHash("conn") ^ k*0x9e3779b97f4a7c15)
		return transportUnit(h) < rate
	}
	seed := int64(-1)
	for s := int64(0); s < 1<<16; s++ {
		if draw(s, 1) && !draw(s, 2) {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no seed found where request 1 draws a loss and request 2 does not")
	}

	run := func(p Protocol) (done1, done2 time.Duration, st ConnStats) {
		eng := NewEngine()
		link := transportTestLink(eng)
		c := NewConn(link, TransportConfig{
			Protocol: p, LossRate: rate, RecoveryRTTs: 2, Seed: seed,
		}, "conn")
		// Stagger the first bytes (extra 50ms on request 1) so the strike —
		// which fires when request 1's first byte lands — finds request 2
		// already on the wire.
		c.Start(1_000_000, StartOptions{
			ExtraDelay: 50 * time.Millisecond,
			OnComplete: func(*Transfer) { done1 = eng.Now() },
		})
		c.Start(1_000_000, StartOptions{
			OnComplete: func(*Transfer) { done2 = eng.Now() },
		})
		if err := eng.Run(10_000); err != nil {
			t.Fatal(err)
		}
		return done1, done2, c.Stats()
	}

	// H2: the strike at 150ms freezes BOTH streams for 2 RTT — the link
	// sits dead for 200ms even though request 2 was unaffected.
	d1, d2, st := run(H2)
	near(t, "h2 struck stream", d1, 2300*time.Millisecond)
	near(t, "h2 innocent stream", d2, 2250*time.Millisecond)
	if st.HoLStalls != 2 || st.HoLWait != 400*time.Millisecond {
		t.Errorf("h2 stats = %+v, want 2 stalls, 400ms HoL wait", st)
	}

	// H3: only the struck stream freezes; the other absorbs the freed
	// capacity (work-conserving link), so both finish earlier than H2.
	d1, d2, st = run(H3)
	near(t, "h3 struck stream", d1, 2100*time.Millisecond)
	near(t, "h3 innocent stream", d2, 1850*time.Millisecond)
	if st.HoLStalls != 1 || st.HoLWait != 200*time.Millisecond {
		t.Errorf("h3 stats = %+v, want 1 stall, 200ms HoL wait", st)
	}
}

// TestConnZeroCostTransportMatchesBareLink pins the transport-off
// equivalence contract: an all-zero config's connection setup is free and
// unobservable, so a transfer through it is indistinguishable from a bare
// Link.Start — same completion time, same samples, no events, no stats.
func TestConnZeroCostTransportMatchesBareLink(t *testing.T) {
	type runOut struct {
		finished time.Duration
		samples  []float64
	}
	run := func(useConn bool) runOut {
		eng := NewEngine()
		link := transportTestLink(eng)
		rec := timeline.New(0, "test")
		var out runOut
		opts := StartOptions{
			SampleEvery: 100 * time.Millisecond,
			OnSample:    func(_ *Transfer, b float64, _ time.Duration) { out.samples = append(out.samples, b) },
			OnComplete:  func(*Transfer) { out.finished = eng.Now() },
		}
		if useConn {
			c := NewConn(link, TransportConfig{Protocol: H1, MaxStreams: 1}, "conn")
			c.SetRecorder(rec)
			c.Start(1_000_000, opts)
		} else {
			link.Start(1_000_000, opts)
		}
		if err := eng.Run(10_000); err != nil {
			t.Fatal(err)
		}
		if got := rec.Counters().Events; got != 0 {
			t.Errorf("zero-cost run emitted %d events, want 0", got)
		}
		return out
	}
	bare, conn := run(false), run(true)
	if bare.finished != conn.finished {
		t.Errorf("completion: bare %v, conn %v — zero-cost transport must be invisible", bare.finished, conn.finished)
	}
	if len(bare.samples) != len(conn.samples) {
		t.Fatalf("sample counts differ: bare %d, conn %d", len(bare.samples), len(conn.samples))
	}
	for i := range bare.samples {
		if bare.samples[i] != conn.samples[i] {
			t.Errorf("sample %d: bare %v, conn %v", i, bare.samples[i], conn.samples[i])
		}
	}
}

func TestConnResetPaysReconnect(t *testing.T) {
	eng := NewEngine()
	link := transportTestLink(eng)
	c := NewConn(link, TransportConfig{Protocol: H1, HandshakeRTTs: 3, ResumeRTTs: 2, MaxStreams: 1}, "conn")

	var done2 time.Duration
	c.Start(1_000_000, StartOptions{OnComplete: func(*Transfer) {
		c.Reset() // server closed the connection under us
		c.Start(1_000_000, StartOptions{OnComplete: func(*Transfer) { done2 = eng.Now() }})
	}})
	if err := eng.Run(10_000); err != nil {
		t.Fatal(err)
	}
	// 1.4s + 2 RTT resume + RTT + 1s wire.
	near(t, "post-reset completion", done2, 2700*time.Millisecond)
	st := c.Stats()
	if st.Handshakes != 1 || st.Resumes != 1 {
		t.Errorf("handshakes = %d, resumes = %d, want 1, 1", st.Handshakes, st.Resumes)
	}
	if c.Established() != true {
		t.Error("connection should be re-established after the retry")
	}
}

func TestConnFailHandshakeAndMigrate(t *testing.T) {
	eng := NewEngine()
	link := transportTestLink(eng)
	c := NewConn(link, TransportConfig{Protocol: H1, HandshakeRTTs: 3, ResumeRTTs: 2, MaxStreams: 1}, "conn")

	if d := c.FailHandshake(); d != 300*time.Millisecond {
		t.Errorf("failed handshake wasted %v, want 300ms (still the full price: never connected)", d)
	}
	if c.Stats().FailedHandshakes != 1 || c.Established() {
		t.Errorf("stats = %+v established=%v, want 1 failed handshake, cold", c.Stats(), c.Established())
	}
	// A TCP-family migration kills the connection.
	c.Start(1_000_000, StartOptions{})
	if err := eng.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if !c.Established() {
		t.Fatal("connection should be established after a successful request")
	}
	if d := c.Migrate(); d != 0 || c.Established() {
		t.Errorf("h1 migration: delay %v established %v, want 0 and torn down", d, c.Established())
	}

	// A QUIC migration revalidates the path in one RTT and survives.
	eng3 := NewEngine()
	link3 := transportTestLink(eng3)
	c3 := NewConn(link3, TransportConfig{Protocol: H3, HandshakeRTTs: 1}, "conn")
	c3.Start(1_000_000, StartOptions{})
	if err := eng3.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if d := c3.Migrate(); d != link3.RTT || !c3.Established() {
		t.Errorf("h3 migration: delay %v established %v, want 1 RTT and alive", d, c3.Established())
	}
	if c3.Stats().Migrations != 1 {
		t.Errorf("migrations = %d, want 1", c3.Stats().Migrations)
	}
}

func TestParseProtocol(t *testing.T) {
	for _, want := range []struct {
		s string
		p Protocol
	}{{"h1", H1}, {"http/1.1", H1}, {"h2", H2}, {"http/2", H2}, {"h3", H3}, {"http/3", H3}, {"quic", H3}} {
		got, err := ParseProtocol(want.s)
		if err != nil || got != want.p {
			t.Errorf("ParseProtocol(%q) = %v, %v; want %v", want.s, got, err, want.p)
		}
	}
	if _, err := ParseProtocol("spdy"); err == nil {
		t.Error("ParseProtocol(spdy) should fail")
	}
	for _, p := range []Protocol{H1, H2, H3} {
		rt, err := ParseProtocol(p.String())
		if err != nil || rt != p {
			t.Errorf("round trip %v failed: %v, %v", p, rt, err)
		}
	}
}

func TestDefaultTransportPresets(t *testing.T) {
	h1 := DefaultTransport(H1)
	if h1.MaxStreams != 1 {
		t.Errorf("h1 MaxStreams = %d, want 1 (serialized)", h1.MaxStreams)
	}
	h3 := DefaultTransport(H3)
	if h3.HandshakeRTTs >= DefaultTransport(H2).HandshakeRTTs {
		t.Error("h3 setup should be cheaper than h2")
	}
	if h3.ResumeRTTs != 0 {
		t.Errorf("h3 ResumeRTTs = %v, want 0 (0-RTT)", h3.ResumeRTTs)
	}
	if h3.RecoveryRTTs >= DefaultTransport(H2).RecoveryRTTs {
		t.Error("h3 loss recovery should be cheaper than h2")
	}
}
