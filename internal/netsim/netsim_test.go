package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"demuxabr/internal/media"
	"demuxabr/internal/trace"
)

func TestEngineOrdering(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.Schedule(3*time.Second, func() { order = append(order, 3) })
	eng.Schedule(1*time.Second, func() { order = append(order, 1) })
	eng.Schedule(2*time.Second, func() { order = append(order, 2) })
	eng.Schedule(1*time.Second, func() { order = append(order, 11) }) // same time: FIFO
	if err := eng.Run(100); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if eng.Now() != 3*time.Second {
		t.Errorf("clock = %v, want 3s", eng.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	eng := NewEngine()
	fired := false
	ev := eng.Schedule(time.Second, func() { fired = true })
	eng.Cancel(ev)
	eng.Cancel(ev) // double cancel is a no-op
	if err := eng.Run(10); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	eng := NewEngine()
	eng.Schedule(time.Second, func() {})
	eng.Step()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past should panic")
		}
	}()
	eng.Schedule(0, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	eng := NewEngine()
	count := 0
	eng.Schedule(time.Second, func() { count++ })
	eng.Schedule(3*time.Second, func() { count++ })
	eng.RunUntil(2 * time.Second)
	if count != 1 {
		t.Errorf("count = %d, want 1", count)
	}
	if eng.Now() != 2*time.Second {
		t.Errorf("clock = %v, want 2s", eng.Now())
	}
	if eng.Pending() != 1 {
		t.Errorf("pending = %d, want 1", eng.Pending())
	}
}

func TestEngineBudget(t *testing.T) {
	eng := NewEngine()
	var rearm func()
	rearm = func() { eng.After(time.Second, rearm) }
	rearm()
	if err := eng.Run(10); err == nil {
		t.Error("expected budget exhaustion error")
	}
}

func TestEngineStop(t *testing.T) {
	eng := NewEngine()
	count := 0
	eng.Schedule(time.Second, func() { count++; eng.Stop() })
	eng.Schedule(2*time.Second, func() { count++ })
	if err := eng.Run(100); err != nil {
		t.Fatal(err)
	}
	if count != 1 || !eng.Stopped() {
		t.Errorf("count = %d, stopped = %v", count, eng.Stopped())
	}
}

// transferAt runs a single transfer on a fixed link and returns its duration.
func transferAt(t *testing.T, rate media.Bps, size int64) time.Duration {
	t.Helper()
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(rate))
	var got *Transfer
	link.Start(size, StartOptions{OnComplete: func(tr *Transfer) { got = tr }})
	if err := eng.Run(1000); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("transfer did not complete")
	}
	return got.Duration()
}

func TestSingleTransferDuration(t *testing.T) {
	// 1 Mbps, 125000 bytes = 1 Mbit -> exactly 1 s.
	d := transferAt(t, media.Kbps(1000), 125000)
	if math.Abs(d.Seconds()-1.0) > 1e-6 {
		t.Errorf("duration = %v, want 1s", d)
	}
}

func TestZeroSizeTransferCompletesInstantly(t *testing.T) {
	d := transferAt(t, media.Kbps(1000), 0)
	if d != 0 {
		t.Errorf("duration = %v, want 0", d)
	}
}

func TestEqualSharing(t *testing.T) {
	// Two equal transfers start together on a 1 Mbps link: each sees 500
	// Kbps, so a 125000-byte transfer takes 2 s; both finish together.
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(media.Kbps(1000)))
	var done []time.Duration
	cb := func(tr *Transfer) { done = append(done, tr.Finished()) }
	link.Start(125000, StartOptions{OnComplete: cb})
	link.Start(125000, StartOptions{OnComplete: cb})
	if err := eng.Run(1000); err != nil {
		t.Fatal(err)
	}
	if len(done) != 2 {
		t.Fatalf("completed %d transfers, want 2", len(done))
	}
	for _, d := range done {
		if math.Abs(d.Seconds()-2.0) > 1e-6 {
			t.Errorf("finish = %v, want 2s", d)
		}
	}
}

func TestUnequalSharingReleasesCapacity(t *testing.T) {
	// Small transfer (62500 B) and large (250000 B) start together at 1 Mbps.
	// Shared phase: each at 500 Kbps; small finishes at t=1 s. Large then has
	// 187500 B left at full 1 Mbps -> 1.5 s more. Total 2.5 s.
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(media.Kbps(1000)))
	var small, large *Transfer
	link.Start(62500, StartOptions{OnComplete: func(tr *Transfer) { small = tr }})
	link.Start(250000, StartOptions{OnComplete: func(tr *Transfer) { large = tr }})
	if err := eng.Run(1000); err != nil {
		t.Fatal(err)
	}
	if small == nil || large == nil {
		t.Fatal("transfers did not complete")
	}
	if math.Abs(small.Finished().Seconds()-1.0) > 1e-6 {
		t.Errorf("small finished at %v, want 1s", small.Finished())
	}
	if math.Abs(large.Finished().Seconds()-2.5) > 1e-6 {
		t.Errorf("large finished at %v, want 2.5s", large.Finished())
	}
}

func TestProfileBreakpointMidTransfer(t *testing.T) {
	// 2 Mbps for 1 s then 500 Kbps. A 500000-byte (4 Mbit) transfer moves 2
	// Mbit in the first second, then needs 4 more seconds. Total 5 s.
	profile := trace.MustSteps([]trace.Step{
		{At: 0, Rate: media.Kbps(2000)},
		{At: time.Second, Rate: media.Kbps(500)},
	}, 0)
	eng := NewEngine()
	link := NewLink(eng, profile)
	var tr *Transfer
	link.Start(500000, StartOptions{OnComplete: func(x *Transfer) { tr = x }})
	if err := eng.Run(1000); err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		t.Fatal("did not complete")
	}
	if math.Abs(tr.Finished().Seconds()-5.0) > 1e-6 {
		t.Errorf("finished at %v, want 5s", tr.Finished())
	}
	if math.Abs(tr.Throughput()-800e3) > 1 {
		t.Errorf("throughput = %v, want 800 Kbps", tr.Throughput())
	}
}

func TestCyclicProfileTransfer(t *testing.T) {
	// Square wave 1 Mbps 1 s / 0 bps 1 s. 250000 B = 2 Mbit needs 2 s of
	// high phase: finishes at t=3 s (high 0-1, dead 1-2, high 2-3).
	profile := trace.SquareWave(media.Kbps(1000), 0, time.Second, time.Second)
	eng := NewEngine()
	link := NewLink(eng, profile)
	var tr *Transfer
	link.Start(250000, StartOptions{OnComplete: func(x *Transfer) { tr = x }})
	if err := eng.Run(10000); err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		t.Fatal("did not complete")
	}
	if math.Abs(tr.Finished().Seconds()-3.0) > 1e-6 {
		t.Errorf("finished at %v, want 3s", tr.Finished())
	}
}

func TestRTTDelaysFirstByte(t *testing.T) {
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(media.Kbps(1000)))
	link.RTT = 100 * time.Millisecond
	var tr *Transfer
	link.Start(125000, StartOptions{OnComplete: func(x *Transfer) { tr = x }})
	if err := eng.Run(1000); err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Started().Seconds()-0.1) > 1e-9 {
		t.Errorf("started at %v, want 100ms", tr.Started())
	}
	if math.Abs(tr.Finished().Seconds()-1.1) > 1e-6 {
		t.Errorf("finished at %v, want 1.1s", tr.Finished())
	}
}

func TestCancelStopsTransfer(t *testing.T) {
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(media.Kbps(1000)))
	completed := false
	tr := link.Start(125000, StartOptions{OnComplete: func(*Transfer) { completed = true }})
	eng.Schedule(500*time.Millisecond, func() { link.Cancel(tr) })
	if err := eng.Run(1000); err != nil {
		t.Fatal(err)
	}
	if completed {
		t.Error("cancelled transfer completed")
	}
	if got := tr.Done(); math.Abs(got-62500) > 1 {
		t.Errorf("done = %.0f bytes, want ~62500", got)
	}
	if link.ActiveTransfers() != 0 {
		t.Error("cancelled transfer still active")
	}
}

func TestIntervalSampling(t *testing.T) {
	// 1 Mbps solo transfer sampled every 125 ms: every sample must carry
	// exactly 15625 bytes (the Fig 4(a) "just under 16 KiB" quantity).
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(media.Kbps(1000)))
	var samples []float64
	link.Start(125000, StartOptions{
		SampleEvery: 125 * time.Millisecond,
		OnSample:    func(_ *Transfer, b float64, _ time.Duration) { samples = append(samples, b) },
		OnComplete:  func(*Transfer) {},
	})
	if err := eng.Run(1000); err != nil {
		t.Fatal(err)
	}
	if len(samples) < 7 {
		t.Fatalf("got %d samples, want >= 7", len(samples))
	}
	for i, s := range samples {
		if math.Abs(s-15625) > 1 {
			t.Errorf("sample %d = %.0f bytes, want 15625", i, s)
		}
		if s >= 16*1024 {
			t.Errorf("sample %d = %.0f would pass Shaka's 16 KiB filter; the Fig 4(a) pathology requires it not to", i, s)
		}
	}
}

func TestSamplingEmitsFinalPartialInterval(t *testing.T) {
	// A 0.1 s transfer never completes a full 0.125 s interval; the only
	// sample is the final partial one, carrying all the bytes over the
	// actual elapsed time, so byte-flow observers never lose bytes.
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(media.Kbps(1000)))
	var bytes []float64
	var intervals []time.Duration
	link.Start(12500, StartOptions{
		SampleEvery: 125 * time.Millisecond,
		OnSample: func(_ *Transfer, b float64, d time.Duration) {
			bytes = append(bytes, b)
			intervals = append(intervals, d)
		},
	})
	if err := eng.Run(1000); err != nil {
		t.Fatal(err)
	}
	if len(bytes) != 1 {
		t.Fatalf("got %d samples, want exactly the final partial one", len(bytes))
	}
	if math.Abs(bytes[0]-12500) > 1 {
		t.Errorf("final sample bytes = %.0f, want 12500", bytes[0])
	}
	if intervals[0] >= 125*time.Millisecond || intervals[0] <= 0 {
		t.Errorf("final sample interval = %v, want a positive partial interval", intervals[0])
	}
	if eng.Pending() != 0 {
		t.Errorf("pending events after completion: %d", eng.Pending())
	}
}

func TestSampleBytesSumToSize(t *testing.T) {
	// Property: across full and partial samples, bytes sum to the size.
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(media.Kbps(1000)))
	var total float64
	link.Start(100000, StartOptions{
		SampleEvery: 125 * time.Millisecond,
		OnSample:    func(_ *Transfer, b float64, _ time.Duration) { total += b },
	})
	if err := eng.Run(10000); err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-100000) > 1 {
		t.Errorf("sampled bytes sum = %.0f, want 100000", total)
	}
}

// Property: total bytes delivered over any schedule of transfers never
// exceeds the link's capacity integral, and every completed transfer
// received exactly its size.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		count := int(n)%5 + 1
		profile := trace.RandomWalk(seed, media.Kbps(200), media.Kbps(2000), time.Second, 30*time.Second)
		eng := NewEngine()
		link := NewLink(eng, profile)
		var totalDone float64
		var horizon time.Duration
		sizes := []int64{30000, 80000, 125000, 200000, 50000}
		var transfers []*Transfer
		for i := 0; i < count; i++ {
			at := time.Duration(i) * 500 * time.Millisecond
			sz := sizes[i]
			eng.Schedule(at, func() {
				transfers = append(transfers, link.Start(sz, StartOptions{}))
			})
		}
		if err := eng.Run(100000); err != nil {
			return false
		}
		horizon = eng.Now()
		for _, tr := range transfers {
			if !tr.Completed() {
				return false
			}
			if math.Abs(tr.Done()-float64(tr.Size())) > 1 {
				return false
			}
			totalDone += tr.Done()
		}
		capacity := float64(trace.Average(profile, horizon)) * horizon.Seconds() / 8
		return totalDone <= capacity+float64(count) // completionSlack per transfer
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(1))
	defer func() {
		if recover() == nil {
			t.Error("negative size should panic")
		}
	}()
	link.Start(-1, StartOptions{})
}

func TestNilProfilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil profile should panic")
		}
	}()
	NewLink(NewEngine(), nil)
}

// Property: N equal flows starting together on a fixed link finish together
// at time N*size/rate (exact fair sharing).
func TestFairSharingProperty(t *testing.T) {
	f := func(n uint8, kb uint8) bool {
		count := int(n)%6 + 2
		size := (int64(kb)%64 + 8) * 1024
		eng := NewEngine()
		link := NewLink(eng, trace.Fixed(media.Kbps(1000)))
		var finishes []time.Duration
		for i := 0; i < count; i++ {
			link.Start(size, StartOptions{OnComplete: func(tr *Transfer) {
				finishes = append(finishes, tr.Finished())
			}})
		}
		if err := eng.Run(100000); err != nil {
			return false
		}
		if len(finishes) != count {
			return false
		}
		want := float64(count) * float64(size) * 8 / 1e6
		for _, fin := range finishes {
			if math.Abs(fin.Seconds()-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRTTWithCancelBeforeActivation(t *testing.T) {
	// Cancelling during the RTT window: the transfer must never activate
	// and the link must stay clean.
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(media.Kbps(1000)))
	link.RTT = time.Second
	completed := false
	tr := link.Start(1000, StartOptions{OnComplete: func(*Transfer) { completed = true }})
	eng.Schedule(500*time.Millisecond, func() { link.Cancel(tr) })
	if err := eng.Run(100); err != nil {
		t.Fatal(err)
	}
	if completed || link.ActiveTransfers() != 0 {
		t.Errorf("cancelled-before-activation transfer ran: completed=%v active=%d",
			completed, link.ActiveTransfers())
	}
}

func TestConcurrentSamplersSeeShares(t *testing.T) {
	// Two concurrent flows on 2 Mbps: each sampler must report the 1 Mbps
	// share, not the full link (the root cause of Shaka's underestimation
	// in the paper's §3.3).
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(media.Kbps(2000)))
	var samples [][]float64 = make([][]float64, 2)
	for i := 0; i < 2; i++ {
		i := i
		link.Start(250000, StartOptions{
			SampleEvery: 125 * time.Millisecond,
			OnSample: func(_ *Transfer, b float64, d time.Duration) {
				if d == 125*time.Millisecond {
					samples[i] = append(samples[i], b)
				}
			},
		})
	}
	if err := eng.Run(10000); err != nil {
		t.Fatal(err)
	}
	for i, ss := range samples {
		if len(ss) == 0 {
			t.Fatalf("flow %d: no samples", i)
		}
		for _, b := range ss {
			want := 1e6 * 0.125 / 8 // the per-flow share
			if math.Abs(b-want) > 1 {
				t.Fatalf("flow %d: sample %.0f B, want %.0f (the share, not the link)", i, b, want)
			}
		}
	}
}

func TestZeroRatePhaseFreezesTransfers(t *testing.T) {
	profile := trace.MustSteps([]trace.Step{
		{At: 0, Rate: media.Kbps(1000)},
		{At: time.Second, Rate: 0},
		{At: 3 * time.Second, Rate: media.Kbps(1000)},
	}, 0)
	eng := NewEngine()
	link := NewLink(eng, profile)
	var tr *Transfer
	link.Start(250000, StartOptions{OnComplete: func(x *Transfer) { tr = x }}) // 2 Mbit
	if err := eng.Run(10000); err != nil {
		t.Fatal(err)
	}
	if tr == nil {
		t.Fatal("did not complete")
	}
	// 1 Mbit in [0,1), outage [1,3), remaining 1 Mbit in [3,4).
	if math.Abs(tr.Finished().Seconds()-4.0) > 1e-6 {
		t.Errorf("finished at %v, want 4s", tr.Finished())
	}
}

func TestWeightedSharing(t *testing.T) {
	// Weight-3 vs weight-1 flows on 1 Mbps: shares 750/250 Kbps. The heavy
	// 93750-byte transfer finishes at t=1s; the light 62500-byte transfer
	// then gets the full link: 31250 B remained at t=1 (250 Kbps x 1 s),
	// finishing 0.25 s later... at full rate 1 Mbps: +0.25s -> 1.25s.
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(media.Kbps(1000)))
	var heavy, light *Transfer
	link.Start(93750, StartOptions{Weight: 3, OnComplete: func(tr *Transfer) { heavy = tr }})
	link.Start(62500, StartOptions{Weight: 1, OnComplete: func(tr *Transfer) { light = tr }})
	if err := eng.Run(1000); err != nil {
		t.Fatal(err)
	}
	if heavy == nil || light == nil {
		t.Fatal("transfers incomplete")
	}
	if math.Abs(heavy.Finished().Seconds()-1.0) > 1e-6 {
		t.Errorf("heavy finished at %v, want 1s", heavy.Finished())
	}
	if math.Abs(light.Finished().Seconds()-1.25) > 1e-6 {
		t.Errorf("light finished at %v, want 1.25s", light.Finished())
	}
}

func TestCrossTrafficHalvesThroughput(t *testing.T) {
	// Equal-weight cross traffic between 0 and 10 s: a 1 s solo transfer
	// takes 2 s inside the window and 1 s after it ends.
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(media.Kbps(1000)))
	link.StartCrossTraffic(1, 0, 10*time.Second)
	var during, after *Transfer
	eng.Schedule(time.Second, func() {
		link.Start(125000, StartOptions{OnComplete: func(tr *Transfer) { during = tr }})
	})
	eng.Schedule(12*time.Second, func() {
		link.Start(125000, StartOptions{OnComplete: func(tr *Transfer) { after = tr }})
	})
	if err := eng.Run(100000); err != nil {
		t.Fatal(err)
	}
	if during == nil || after == nil {
		t.Fatal("transfers incomplete")
	}
	if math.Abs(during.Duration().Seconds()-2.0) > 1e-6 {
		t.Errorf("transfer under cross traffic took %v, want 2s", during.Duration())
	}
	if math.Abs(after.Duration().Seconds()-1.0) > 1e-6 {
		t.Errorf("transfer after cross traffic took %v, want 1s", after.Duration())
	}
}

func TestCrossTrafficNoOpInputs(t *testing.T) {
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(media.Kbps(1000)))
	link.StartCrossTraffic(0, 0, time.Second)             // zero weight
	link.StartCrossTraffic(1, time.Second, time.Second/2) // stop before start
	if err := eng.Run(100); err != nil {
		t.Fatal(err)
	}
	if link.ActiveTransfers() != 0 {
		t.Error("no-op cross traffic left active transfers")
	}
}

func TestOutageStallsTransfer(t *testing.T) {
	// 1 Mbps link with a blackout over [1s, 3s). A 250000-byte (2 Mbit)
	// transfer moves 1 Mbit in the first second, stalls for 2 s, and
	// finishes the second Mbit by t=4 s.
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(media.Kbps(1000)))
	link.AddOutage(1*time.Second, 3*time.Second)
	var got *Transfer
	link.Start(250000, StartOptions{OnComplete: func(tr *Transfer) { got = tr }})
	if err := eng.Run(1000); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("transfer did not complete")
	}
	if math.Abs(got.Finished().Seconds()-4.0) > 1e-6 {
		t.Errorf("finished at %v, want 4s", got.Finished())
	}
}

func TestOutageZeroesRateAt(t *testing.T) {
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(media.Kbps(1000)))
	link.AddOutage(2*time.Second, 5*time.Second)
	if r := link.RateAt(1 * time.Second); r <= 0 {
		t.Errorf("rate before outage = %v, want > 0", r)
	}
	if r := link.RateAt(3 * time.Second); r != 0 {
		t.Errorf("rate inside outage = %v, want 0", r)
	}
	if r := link.RateAt(5 * time.Second); r <= 0 {
		t.Errorf("rate at outage end = %v, want > 0 (half-open window)", r)
	}
}

func TestOutageInvalidWindowIgnored(t *testing.T) {
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(media.Kbps(1000)))
	link.AddOutage(3*time.Second, 3*time.Second)
	if r := link.RateAt(3 * time.Second); r <= 0 {
		t.Errorf("empty outage window changed the rate: %v", r)
	}
}

// TestStartNegativeExtraDelayClamped is the regression test for the
// ExtraDelay contract: a caller-supplied negative delay (e.g. a buggy
// OnRequest hook returning a "speedup") must clamp to zero at the network
// boundary, not schedule the activation in the engine's past and panic.
func TestStartNegativeExtraDelayClamped(t *testing.T) {
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(media.Kbps(8000)))
	link.RTT = 50 * time.Millisecond
	var done *Transfer
	tr := link.Start(1000, StartOptions{
		ExtraDelay: -200 * time.Millisecond, // more negative than the RTT covers
		OnComplete: func(tr *Transfer) { done = tr },
	})
	if err := eng.Run(1000); err != nil {
		t.Fatal(err)
	}
	if done != tr {
		t.Fatal("transfer never completed")
	}
	if tr.Started() != 0 {
		t.Errorf("first byte at %v, want 0 (clamped, not time travel)", tr.Started())
	}
}
