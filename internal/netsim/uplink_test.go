package netsim

import (
	"math"
	"testing"
	"time"

	"demuxabr/internal/media"
	"demuxabr/internal/trace"
)

// integrate computes the bytes a profile delivers over [0, horizon] by
// stepping its breakpoints — the ground truth the fluid link must conserve.
func integrate(p trace.Profile, horizon time.Duration) float64 {
	total := 0.0
	t := time.Duration(0)
	for t < horizon {
		next, ok := p.NextChange(t)
		if !ok || next > horizon {
			next = horizon
		}
		total += float64(p.RateAt(t)) * (next - t).Seconds() / 8
		t = next
	}
	return total
}

// TestLinkConservationAndWeightShares is the invariant the fleet subsystem
// leans on: K concurrent weighted transfers over a varying profile deliver,
// in total, exactly the integrated link capacity, split by weight.
func TestLinkConservationAndWeightShares(t *testing.T) {
	profile := trace.MustSteps([]trace.Step{
		{At: 0, Rate: media.Kbps(4000)},
		{At: 7 * time.Second, Rate: media.Kbps(1500)},
		{At: 12 * time.Second, Rate: media.Kbps(6000)},
		{At: 21 * time.Second, Rate: media.Kbps(800)},
		{At: 25 * time.Second, Rate: media.Kbps(3000)},
	}, 0)
	weights := []float64{1, 2, 0.5, 4, 1.5}
	const horizon = 31 * time.Second

	eng := NewEngine()
	link := NewLink(eng, profile)
	const huge = 1 << 40 // never completes within the horizon
	trs := make([]*Transfer, len(weights))
	for i, w := range weights {
		trs[i] = link.Start(huge, StartOptions{Weight: w})
	}
	eng.RunUntil(horizon)
	link.advance()

	want := integrate(profile, horizon)
	got := 0.0
	totalW := 0.0
	for i := range trs {
		got += trs[i].Done()
		totalW += weights[i]
	}
	if math.Abs(got-want) > completionSlack*float64(len(trs)) {
		t.Fatalf("total bytes %.2f, integrated capacity %.2f", got, want)
	}
	for i, tr := range trs {
		share := want * weights[i] / totalW
		if math.Abs(tr.Done()-share) > completionSlack*float64(len(trs)) {
			t.Errorf("transfer %d (weight %g): got %.2f bytes, want share %.2f",
				i, weights[i], tr.Done(), share)
		}
	}
}

// TestLinkConservationWithCompletions repeats the conservation check when
// transfers finish mid-run and capacity redistributes to the survivors.
func TestLinkConservationWithCompletions(t *testing.T) {
	profile := trace.MustSteps([]trace.Step{
		{At: 0, Rate: media.Kbps(2000)},
		{At: 10 * time.Second, Rate: media.Kbps(500)},
		{At: 20 * time.Second, Rate: media.Kbps(4000)},
	}, 0)
	eng := NewEngine()
	link := NewLink(eng, profile)
	sizes := []int64{500_000, 1_500_000, 1 << 40}
	trs := make([]*Transfer, len(sizes))
	for i, sz := range sizes {
		trs[i] = link.Start(sz, StartOptions{})
	}
	const horizon = 40 * time.Second
	eng.RunUntil(horizon)
	link.advance()

	want := integrate(profile, horizon)
	got := 0.0
	for _, tr := range trs {
		got += tr.Done()
	}
	if math.Abs(got-want) > completionSlack*float64(len(trs)) {
		t.Fatalf("total bytes %.2f, integrated capacity %.2f", got, want)
	}
	if !trs[0].Completed() || !trs[1].Completed() {
		t.Fatalf("finite transfers should have completed (done: %v %v)",
			trs[0].Completed(), trs[1].Completed())
	}
}

// TestUplinkSoloEquivalence: a single leaf behind a generous uplink must
// behave exactly like a standalone link — completion times included.
func TestUplinkSoloEquivalence(t *testing.T) {
	profile := trace.MustSteps([]trace.Step{
		{At: 0, Rate: media.Kbps(3000)},
		{At: 5 * time.Second, Rate: media.Kbps(1000)},
		{At: 10 * time.Second, Rate: media.Kbps(5000)},
	}, 0)
	const size = 4_000_000

	soloEng := NewEngine()
	solo := NewLink(soloEng, profile)
	var soloDone time.Duration
	solo.Start(size, StartOptions{OnComplete: func(tr *Transfer) { soloDone = tr.Finished() }})
	if err := soloEng.Run(1_000_000); err != nil {
		t.Fatal(err)
	}

	upEng := NewEngine()
	up := NewUplink(upEng, trace.Fixed(media.Kbps(1_000_000))) // 1 Gbps: never binds
	leaf := up.NewLeaf(profile)
	var leafDone time.Duration
	leaf.Start(size, StartOptions{OnComplete: func(tr *Transfer) { leafDone = tr.Finished() }})
	if err := upEng.Run(1_000_000); err != nil {
		t.Fatal(err)
	}

	if soloDone == 0 || leafDone == 0 {
		t.Fatalf("transfers did not complete: solo=%v leaf=%v", soloDone, leafDone)
	}
	if soloDone != leafDone {
		t.Fatalf("leaf behind generous uplink diverged from solo link: %v vs %v", leafDone, soloDone)
	}
}

// TestUplinkMaxMinAllocation pins the progressive-filling allocator against
// hand-computed weighted max-min rates in a static three-leaf tree where
// both a leaf and the uplink bind.
func TestUplinkMaxMinAllocation(t *testing.T) {
	eng := NewEngine()
	// Uplink 10 Mbps shared by three leaves: A capped at 1 Mbps (its own
	// bottleneck), B and C at 8 Mbps each. B carries two transfers with
	// weights 1 and 3.
	//
	// Progressive filling: round 1 fill = min(10/6, 1/1, 8/4, 8/1) = 1 —
	// leaf A saturates, A freezes at 1 Mbps. Round 2 over the remaining
	// 9 Mbps of uplink with weights {B1:1, B2:3, C:1}: fill = min(9/5,
	// 8/4, 8/1) = 1.8 — the uplink saturates, so B1 = 1.8, B2 = 5.4,
	// C = 1.8 Mbps (B's leaf sees 7.2 ≤ 8, not binding).
	up := NewUplink(eng, trace.Fixed(media.Kbps(10_000)))
	a := up.NewLeaf(trace.Fixed(media.Kbps(1_000)))
	b := up.NewLeaf(trace.Fixed(media.Kbps(8_000)))
	c := up.NewLeaf(trace.Fixed(media.Kbps(8_000)))

	const huge = 1 << 40
	trA := a.Start(huge, StartOptions{})
	trB1 := b.Start(huge, StartOptions{Weight: 1})
	trB2 := b.Start(huge, StartOptions{Weight: 3})
	trC := c.Start(huge, StartOptions{})

	const horizon = 10 * time.Second
	eng.RunUntil(horizon)
	up.advance()

	check := func(name string, tr *Transfer, kbps float64) {
		t.Helper()
		want := kbps * 1000 * horizon.Seconds() / 8
		if math.Abs(tr.Done()-want) > 1 {
			t.Errorf("%s: got %.1f bytes, want %.1f (rate %g kbps)", name, tr.Done(), want, kbps)
		}
	}
	check("A", trA, 1000)
	check("B1", trB1, 1800)
	check("B2", trB2, 5400)
	check("C", trC, 1800)
}

// TestUplinkConservation: when the uplink is the only binding constraint,
// total delivered bytes across all leaves equal its integrated capacity
// and split by transfer weight — the two-tier version of the conservation
// property.
func TestUplinkConservation(t *testing.T) {
	uplinkProfile := trace.MustSteps([]trace.Step{
		{At: 0, Rate: media.Kbps(9000)},
		{At: 8 * time.Second, Rate: media.Kbps(3000)},
		{At: 14 * time.Second, Rate: media.Kbps(12000)},
	}, 0)
	eng := NewEngine()
	up := NewUplink(eng, uplinkProfile)
	weights := []float64{1, 2, 1, 4}
	const huge = 1 << 40
	trs := make([]*Transfer, len(weights))
	for i, w := range weights {
		leaf := up.NewLeaf(trace.Fixed(media.Kbps(100_000))) // generous: never binds
		trs[i] = leaf.Start(huge, StartOptions{Weight: w})
	}
	const horizon = 24 * time.Second
	eng.RunUntil(horizon)
	up.advance()

	want := integrate(uplinkProfile, horizon)
	got, totalW := 0.0, 0.0
	for i := range trs {
		got += trs[i].Done()
		totalW += weights[i]
	}
	if math.Abs(got-want) > completionSlack*float64(len(trs)) {
		t.Fatalf("total bytes %.2f, integrated uplink capacity %.2f", got, want)
	}
	for i, tr := range trs {
		share := want * weights[i] / totalW
		if math.Abs(tr.Done()-share) > completionSlack*float64(len(trs)) {
			t.Errorf("transfer %d (weight %g): got %.2f, want share %.2f",
				i, weights[i], tr.Done(), share)
		}
	}
}

// TestUplinkCompletionRedistributes: after one leaf's transfer completes,
// its uplink share flows to the remaining leaves.
func TestUplinkCompletionRedistributes(t *testing.T) {
	eng := NewEngine()
	up := NewUplink(eng, trace.Fixed(media.Kbps(8_000)))
	a := up.NewLeaf(trace.Fixed(media.Kbps(100_000)))
	b := up.NewLeaf(trace.Fixed(media.Kbps(100_000)))

	// A: 2 MB at 4 Mbps (fair half) completes at t=4s. B then takes the
	// full 8 Mbps, so over 10 s it moves 4s·0.5 MB/s + 6s·1 MB/s = 8 MB.
	var aDone time.Duration
	a.Start(2_000_000, StartOptions{OnComplete: func(tr *Transfer) { aDone = tr.Finished() }})
	trB := b.Start(1<<40, StartOptions{})
	const horizon = 10 * time.Second
	eng.RunUntil(horizon)
	up.advance()

	if want := 4 * time.Second; aDone != want {
		t.Fatalf("A completed at %v, want %v", aDone, want)
	}
	if want := 8_000_000.0; math.Abs(trB.Done()-want) > 1 {
		t.Fatalf("B moved %.1f bytes, want %.1f", trB.Done(), want)
	}
}

// TestCrossTrafficRestartsBlocks is the regression test for the
// StartCrossTraffic fix: on a link fast enough to drain the 1 GiB block
// mid-window, the competing flow must restart so a probe transfer keeps
// its fair share for the whole window.
func TestCrossTrafficRestartsBlocks(t *testing.T) {
	eng := NewEngine()
	// 10 Gbps: a 1 GiB block at half share drains in ~1.7 s, so a 60 s
	// window needs ~35 restarts.
	link := NewLink(eng, trace.Fixed(media.Kbps(10_000_000)))
	const window = 60 * time.Second
	link.StartCrossTraffic(1, 0, window)

	probe := link.Start(1<<62, StartOptions{})
	eng.RunUntil(window)
	link.advance()

	// With the competing flow alive throughout, the probe gets half the
	// capacity. Without the restart fix the cross flow dies after one block
	// and the probe takes nearly everything.
	capacity := 10_000_000.0 * 1000 / 8 * window.Seconds()
	want := capacity / 2
	if got := probe.Done(); math.Abs(got-want) > capacity*0.01 {
		t.Fatalf("probe moved %.3g bytes, want fair half %.3g", got, want)
	}

	// The window must still close: past stop only the probe remains active.
	if n := link.ActiveTransfers(); n != 1 {
		t.Fatalf("after window close want 1 active transfer (probe), got %d", n)
	}
}

// TestCrossTrafficSlowLinkUnchanged pins the pre-fix behaviour on slow
// links (the regime every existing experiment runs in): one block never
// completes, and the flow still vanishes exactly at stop.
func TestCrossTrafficSlowLinkUnchanged(t *testing.T) {
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(media.Kbps(2500)))
	link.StartCrossTraffic(2, 10*time.Second, 110*time.Second)
	probe := link.Start(1<<40, StartOptions{})
	eng.RunUntil(200 * time.Second)
	link.advance()
	// 10 s alone + 100 s at 1/3 share + 90 s alone, at 312500 B/s.
	want := 312_500.0 * (10 + 100.0/3 + 90)
	if math.Abs(probe.Done()-want) > 2 {
		t.Fatalf("probe moved %.1f bytes, want %.1f", probe.Done(), want)
	}
}

// TestUplinkIdleNoWake: an uplink tree with no active transfers must not
// keep generating wake events for cyclic profiles — Run must drain.
func TestUplinkIdleNoWake(t *testing.T) {
	eng := NewEngine()
	up := NewUplink(eng, trace.SquareWave(media.Kbps(5000), media.Kbps(500), 2*time.Second, 2*time.Second))
	leaf := up.NewLeaf(trace.SquareWave(media.Kbps(4000), media.Kbps(400), 2*time.Second, time.Second))
	done := false
	leaf.Start(100_000, StartOptions{OnComplete: func(*Transfer) { done = true }})
	if err := eng.Run(1_000); err != nil {
		t.Fatalf("idle uplink kept scheduling: %v", err)
	}
	if !done {
		t.Fatal("transfer never completed")
	}
	if eng.Pending() != 0 {
		t.Fatalf("engine still has %d pending events after drain", eng.Pending())
	}
}

// TestUplinkExtraDelay: StartOptions.ExtraDelay postpones the first byte
// beyond the RTT (the CDN miss penalty path).
func TestUplinkExtraDelay(t *testing.T) {
	eng := NewEngine()
	link := NewLink(eng, trace.Fixed(media.Kbps(8000))) // 1 MB/s
	link.RTT = 50 * time.Millisecond
	var finished time.Duration
	link.Start(1_000_000, StartOptions{
		ExtraDelay: 200 * time.Millisecond,
		OnComplete: func(tr *Transfer) { finished = tr.Finished() },
	})
	if err := eng.Run(1_000); err != nil {
		t.Fatal(err)
	}
	if want := 1250 * time.Millisecond; finished != want {
		t.Fatalf("finished at %v, want %v (RTT+extra+1s transfer)", finished, want)
	}
}
