package netsim

import (
	"testing"
	"time"
)

// TestScheduleStepAllocFree pins the event freelist: once warm, a
// schedule/fire cycle must not allocate at all. Before pooling, every
// Schedule allocated one Event — across a five-minute session that is
// hundreds of thousands of allocations per fleet job.
func TestScheduleStepAllocFree(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	// Warm the freelist and the heap's backing array.
	eng.Schedule(eng.Now()+time.Millisecond, fn)
	eng.Step()
	allocs := testing.AllocsPerRun(1000, func() {
		eng.Schedule(eng.Now()+time.Millisecond, fn)
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("schedule+step steady state allocates %.2f objects per cycle, want 0 (event pooling regressed)", allocs)
	}
}

// TestCancelInOwnCallbackAfterPooling guards the recycling contract:
// cancelling the currently-firing event from inside its own callback must
// stay a no-op and must not corrupt a pending event that could otherwise
// have reused the object.
func TestCancelInOwnCallbackAfterPooling(t *testing.T) {
	eng := NewEngine()
	fired := 0
	var self *Event
	self = eng.Schedule(time.Millisecond, func() {
		// Schedule first, then cancel our own (already-fired) handle: with
		// eager recycling the new event would be cancelled instead.
		eng.Schedule(eng.Now()+time.Millisecond, func() { fired++ })
		eng.Cancel(self)
	})
	if err := eng.Run(100); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("follow-up event fired %d times, want 1: Cancel of a fired event hit a recycled one", fired)
	}
}

// TestPoolReuseKeepsOrdering re-runs a scheduling pattern long enough to
// cycle the freelist and checks events still fire in (time, seq) order.
func TestPoolReuseKeepsOrdering(t *testing.T) {
	eng := NewEngine()
	var got []int
	for round := 0; round < 50; round++ {
		r := round
		base := eng.Now()
		eng.Schedule(base+2*time.Millisecond, func() { got = append(got, r*3+1) })
		eng.Schedule(base+time.Millisecond, func() { got = append(got, r*3) })
		eng.Schedule(base+2*time.Millisecond, func() { got = append(got, r*3+2) })
		eng.RunUntil(base + 3*time.Millisecond)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("firing order broke at position %d: got %d (full order %v...)", i, v, got[:i+1])
		}
	}
}
