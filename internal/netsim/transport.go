package netsim

import (
	"fmt"
	"time"

	"demuxabr/internal/timeline"
)

// Protocol selects the HTTP version a connection speaks. The three
// generations differ in exactly the dimensions that matter once demuxed
// A/V doubles the request count: connection setup cost, how many requests
// share one connection, and whether a loss stalls one stream or all of
// them.
type Protocol uint8

const (
	// H1 is HTTP/1.1 over TCP+TLS: one request at a time per connection,
	// so concurrent audio and video fetches need two connections — each
	// paying its own handshakes and each idling out separately.
	H1 Protocol = iota
	// H2 is HTTP/2 over TCP+TLS: streams multiplex on one connection and
	// share its congestion window, so a single lost packet head-of-line
	// blocks every stream until TCP recovers.
	H2
	// H3 is HTTP/3 over QUIC: 1-RTT setup, 0-RTT resumption, and
	// independent stream delivery — a loss stalls only the stream it hit.
	H3
)

// String renders the flag spelling ("h1", "h2", "h3").
func (p Protocol) String() string {
	switch p {
	case H2:
		return "h2"
	case H3:
		return "h3"
	default:
		return "h1"
	}
}

// ParseProtocol parses the -transport flag spelling.
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "h1", "http/1.1":
		return H1, nil
	case "h2", "http/2":
		return H2, nil
	case "h3", "http/3", "quic":
		return H3, nil
	}
	return H1, fmt.Errorf("netsim: unknown transport %q (want h1, h2 or h3)", s)
}

// TransportConfig parameterizes a Conn. All costs are expressed in link
// round trips so one config scales with the path it is attached to.
// Values are taken literally — a zero field means zero, not "default";
// use DefaultTransport for the per-protocol presets.
type TransportConfig struct {
	Protocol Protocol
	// HandshakeRTTs is the setup cost of a first-ever connection
	// (TCP SYN + TLS for H1/H2, the combined QUIC handshake for H3).
	HandshakeRTTs float64
	// ResumeRTTs is the setup cost of reconnecting once a session ticket
	// exists: TLS session resumption for H1/H2, 0 for QUIC 0-RTT.
	ResumeRTTs float64
	// MaxStreams caps concurrent requests per connection (HTTP/1.1
	// serializes: 1). Zero or negative means unlimited multiplexing.
	MaxStreams int
	// IdleTimeout models the server's keep-alive window: a connection
	// idle at least this long is found closed by the next request, which
	// pays the resume cost. Zero keeps connections open forever.
	IdleTimeout time.Duration
	// LossRate is the per-request probability that a loss hits the
	// response right as its first byte lands, stalling the affected
	// stream(s) for RecoveryRTTs round trips. Draws are a pure function
	// of (Seed, connection label, request ordinal) — deterministic and
	// independent of scheduling.
	LossRate float64
	// RecoveryRTTs is the stall length charged per loss, in round trips.
	RecoveryRTTs float64
	// Seed feeds the per-request loss draws.
	Seed int64
}

// DefaultTransport returns the per-protocol preset: H1/H2 pay ~3 RTTs to
// connect (TCP + TLS) and 2 to resume, H3 pays 1 and resumes in 0-RTT;
// H1 serializes requests while H2/H3 multiplex; QUIC's loss recovery is
// modelled one RTT cheaper than TCP's RTO-flavoured stall.
func DefaultTransport(p Protocol) TransportConfig {
	switch p {
	case H2:
		return TransportConfig{Protocol: H2, HandshakeRTTs: 3, ResumeRTTs: 2, MaxStreams: 0, RecoveryRTTs: 2}
	case H3:
		return TransportConfig{Protocol: H3, HandshakeRTTs: 1, ResumeRTTs: 0, MaxStreams: 0, RecoveryRTTs: 1}
	default:
		return TransportConfig{Protocol: H1, HandshakeRTTs: 3, ResumeRTTs: 2, MaxStreams: 1, RecoveryRTTs: 2}
	}
}

// ConnStats is a connection's lifetime accounting.
type ConnStats struct {
	// Handshakes counts full (first-ever) connection setups charged.
	Handshakes int
	// Resumes counts reconnections priced at ResumeRTTs (0-RTT for H3).
	Resumes int
	// FailedHandshakes counts connection attempts that burned their
	// round trips and failed (fault-injected).
	FailedHandshakes int
	// Migrations counts network path changes observed.
	Migrations int
	// HoLStalls counts stream stalls charged by loss events; under H2 a
	// single loss contributes one stall per multiplexed stream it froze.
	HoLStalls int
	// HandshakeWait is total time requests spent waiting on setups.
	HandshakeWait time.Duration
	// HoLWait is total stream-seconds spent frozen in loss recovery.
	HoLWait time.Duration
}

// Add folds another connection's accounting into s.
func (s *ConnStats) Add(o ConnStats) {
	s.Handshakes += o.Handshakes
	s.Resumes += o.Resumes
	s.FailedHandshakes += o.FailedHandshakes
	s.Migrations += o.Migrations
	s.HoLStalls += o.HoLStalls
	s.HandshakeWait += o.HandshakeWait
	s.HoLWait += o.HoLWait
}

// Conn is one transport connection riding a Link (or an Uplink leaf). It
// layers request-level connection semantics on the fluid byte flow: setup
// round trips before the first request (and again after idle timeouts or
// teardowns), a cap on concurrent requests, and loss-driven stalls whose
// blast radius depends on the protocol.
//
// State machine: cold → handshaking → established, back to cold via
// Reset/FailHandshake/Migrate (TCP) or the lazy idle-timeout check at the
// next request. A connection that has ever completed a handshake
// reconnects at the resume price.
//
// The zero-cost contract: a config with HandshakeRTTs == 0 models
// connection setup as free and unobservable — no events, no counters, no
// extra engine events — so a session run through such a Conn is
// byte-identical to one issuing bare Link.Start calls. The transport-off
// equivalence gate in check.sh rests on this.
type Conn struct {
	link  *Link
	cfg   TransportConfig
	label string
	rec   *timeline.Recorder

	established   bool
	handshaking   bool
	everConnected bool
	lastUsed      time.Duration
	hsEv          *Event

	inflight int
	live     []*Transfer // dispatched and not yet off the wire
	queue    []*Transfer // waiting for the handshake or a stream slot

	reqSeq uint64
	stats  ConnStats
}

// NewConn attaches a connection to the link. The label tags the
// connection in timeline events and seeds its loss draws, so give the
// audio and video connections of one session distinct labels.
func NewConn(l *Link, cfg TransportConfig, label string) *Conn {
	if l == nil {
		panic("netsim: nil link")
	}
	return &Conn{link: l, cfg: cfg, label: label}
}

// SetRecorder attaches a flight recorder for handshake and HoL-stall
// events. Pass nil to detach.
func (c *Conn) SetRecorder(rec *timeline.Recorder) { c.rec = rec }

// Link returns the link this connection rides.
func (c *Conn) Link() *Link { return c.link }

// Label returns the connection's tag.
func (c *Conn) Label() string { return c.label }

// Established reports whether the connection is currently usable without
// a new setup.
func (c *Conn) Established() bool { return c.established }

// Stats returns the connection's lifetime accounting.
func (c *Conn) Stats() ConnStats { return c.stats }

// Protocol returns the configured protocol.
func (c *Conn) Protocol() Protocol { return c.cfg.Protocol }

// Start issues a request on the connection. The transfer's first byte
// moves after any pending setup completes, a stream slot frees up, and
// the usual pre-byte delay (link RTT + ExtraDelay) elapses. The returned
// transfer is live immediately for Cancel purposes, exactly like
// Link.Start.
func (c *Conn) Start(size int64, opts StartOptions) *Transfer {
	tr := c.link.prepare(size, opts)
	tr.conn = c
	// Lazy keep-alive: a connection idle past IdleTimeout was closed by
	// the server long ago; this request discovers that and reconnects.
	if c.established && c.cfg.IdleTimeout > 0 && c.inflight == 0 &&
		c.link.eng.Now()-c.lastUsed >= c.cfg.IdleTimeout {
		c.established = false
	}
	c.queue = append(c.queue, tr)
	if c.established {
		c.drain()
	} else if !c.handshaking {
		c.connect()
	}
	return tr
}

// connectCost prices the next setup: full handshake on a first-ever
// connection, resume afterwards.
func (c *Conn) connectCost() time.Duration {
	rtts := c.cfg.HandshakeRTTs
	if c.everConnected {
		rtts = c.cfg.ResumeRTTs
	}
	if rtts <= 0 {
		return 0
	}
	return time.Duration(rtts * float64(c.link.RTT))
}

// connect begins a setup and drains the queue when it completes.
func (c *Conn) connect() {
	if c.cfg.HandshakeRTTs <= 0 {
		// Free, unobservable setup — the zero-cost contract (see type doc).
		c.established = true
		c.everConnected = true
		c.drain()
		return
	}
	cost := c.connectCost()
	resumed := c.everConnected
	finish := func() {
		c.hsEv = nil
		c.handshaking = false
		c.established = true
		c.everConnected = true
		if resumed {
			c.stats.Resumes++
		} else {
			c.stats.Handshakes++
		}
		c.stats.HandshakeWait += cost
		c.emitHandshake(cost, resumed)
		c.drain()
	}
	if cost <= 0 {
		// 0-RTT (or an RTT-free link): data flows immediately, but the
		// resumption is still on the record.
		finish()
		return
	}
	c.handshaking = true
	c.hsEv = c.link.eng.After(cost, finish)
}

// drain dispatches queued requests while stream slots are free.
func (c *Conn) drain() {
	for len(c.queue) > 0 && (c.cfg.MaxStreams <= 0 || c.inflight < c.cfg.MaxStreams) {
		tr := c.queue[0]
		copy(c.queue, c.queue[1:])
		c.queue[len(c.queue)-1] = nil
		c.queue = c.queue[:len(c.queue)-1]
		c.dispatch(tr)
	}
}

// dispatch puts one request on the wire and, when the seeded draw says a
// loss hits it, schedules the stall for the instant its first byte lands.
func (c *Conn) dispatch(tr *Transfer) {
	c.inflight++
	c.live = append(c.live, tr)
	c.lastUsed = c.link.eng.Now()
	c.link.scheduleActivation(tr)
	if c.cfg.LossRate > 0 && c.lossDraw() {
		c.link.eng.After(tr.preDelay, func() { c.strike(tr) })
	}
}

// lossDraw is the per-request loss coin: a pure function of the config
// seed, the connection label, and the request ordinal on this connection.
func (c *Conn) lossDraw() bool {
	c.reqSeq++
	h := transportMix(uint64(c.cfg.Seed) ^ transportLabelHash(c.label) ^ c.reqSeq*0x9e3779b97f4a7c15)
	return transportUnit(h) < c.cfg.LossRate
}

// strike applies one loss event: the affected stream — or, under H2's
// shared congestion window, every in-flight stream on the connection —
// freezes for RecoveryRTTs round trips, then resumes. H1 and H3 stall
// only the stream the loss hit: H1 because each response owns its
// connection, H3 because QUIC delivers streams independently.
func (c *Conn) strike(tr *Transfer) {
	if tr.completed || tr.cancelled {
		return
	}
	recovery := time.Duration(c.cfg.RecoveryRTTs * float64(c.link.RTT))
	if recovery <= 0 {
		return
	}
	var hit []*Transfer
	if c.cfg.Protocol == H2 {
		for _, a := range c.live {
			if !a.completed && !a.cancelled && !a.suspended {
				hit = append(hit, a)
			}
		}
	} else if !tr.suspended {
		hit = append(hit, tr)
	}
	var stalled []*Transfer
	for _, a := range hit {
		if c.link.Suspend(a) {
			stalled = append(stalled, a)
			c.stats.HoLStalls++
			c.stats.HoLWait += recovery
			c.rec.Emit(timeline.Event{
				At:     c.link.eng.Now(),
				Dur:    recovery,
				Kind:   timeline.HoLStall,
				Type:   a.Label,
				Track:  c.label,
				Index:  -1,
				Detail: c.cfg.Protocol.String(),
			})
		}
	}
	if len(stalled) == 0 {
		return
	}
	c.link.eng.After(recovery, func() {
		for _, a := range stalled {
			c.link.Resume(a)
		}
	})
}

// onDone is the link's notification that a transfer left the wire
// (completed or cancelled): free its slot, or drop it from the queue if
// it never dispatched, then put the next queued request on the wire.
func (c *Conn) onDone(tr *Transfer) {
	for i, q := range c.queue {
		if q == tr {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
	for i, a := range c.live {
		if a == tr {
			c.live = append(c.live[:i], c.live[i+1:]...)
			c.inflight--
			c.lastUsed = c.link.eng.Now()
			break
		}
	}
	if c.established {
		c.drain()
	}
}

// Reset tears the connection down (RST, server close, stale NAT
// binding): the next request pays a fresh setup — full price on a
// first-ever connection, the resume price (0-RTT for H3) afterwards.
// In-flight sibling streams are left to finish; the caller resets the
// connection on behalf of the request that observed the failure.
func (c *Conn) Reset() {
	c.established = false
	if c.hsEv != nil {
		c.link.eng.Cancel(c.hsEv)
		c.hsEv = nil
		c.handshaking = false
	}
	if len(c.queue) > 0 && !c.handshaking {
		c.connect()
	}
}

// FailHandshake models a connection attempt that burns its round trips
// and fails (DNS, TCP or TLS/QUIC handshake failure). The connection is
// torn down; the returned duration is what the failed attempt wasted.
func (c *Conn) FailHandshake() time.Duration {
	cost := c.connectCost()
	if cost <= 0 {
		cost = c.link.RTT // even a free setup wastes the round trip that failed
	}
	c.stats.FailedHandshakes++
	c.Reset()
	return cost
}

// Migrate models a network path change (e.g. WiFi to cellular). QUIC
// connections survive migration and revalidate the new path in one round
// trip; TCP connections die with the old 4-tuple, so the next request
// reconnects. The returned duration is the extra pre-byte delay the
// in-progress request observes.
func (c *Conn) Migrate() time.Duration {
	c.stats.Migrations++
	if c.cfg.Protocol == H3 {
		if !c.established {
			return 0
		}
		return c.link.RTT
	}
	c.Reset()
	return 0
}

func (c *Conn) emitHandshake(d time.Duration, resumed bool) {
	detail := c.cfg.Protocol.String()
	if resumed {
		if c.cfg.ResumeRTTs <= 0 {
			detail += "-0rtt"
		} else {
			detail += "-resume"
		}
	}
	c.rec.Emit(timeline.Event{
		At:     c.link.eng.Now(),
		Dur:    d,
		Kind:   timeline.Handshake,
		Type:   "transport",
		Track:  c.label,
		Index:  -1,
		Detail: detail,
	})
}

// transportMix is splitmix64's finalizer: the same mixer the faults
// package uses, duplicated here because netsim sits below faults in the
// dependency order.
func transportMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// transportUnit maps a hash to [0, 1).
func transportUnit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// transportLabelHash is a deterministic FNV-1a over the label.
func transportLabelHash(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
