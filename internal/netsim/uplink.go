package netsim

import (
	"math"
	"time"

	"demuxabr/internal/timeline"
	"demuxabr/internal/trace"
)

// Uplink is the shared second tier of a two-tier topology: several access
// links (one per client) funnel into one edge uplink, so a transfer's
// throughput is bounded both by its weighted share of its own access link
// and by the fleet-wide weighted share of the uplink. Rates follow
// weighted max-min fairness via progressive filling — the steady state of
// many long-lived TCP flows crossing a shared aggregation link.
//
// Attached leaves advance and reschedule as one group: the engine sees a
// single wake event covering the earliest completion or capacity
// breakpoint anywhere in the tree.
type Uplink struct {
	eng     *Engine
	profile trace.Profile
	members []*Link

	lastUpdate time.Duration
	wake       *Event

	// Allocator scratch, reused across recomputes so steady-state event
	// handling allocates nothing.
	rates  []float64
	frozen []bool
	weight []float64
	remain []float64
	sat    []bool

	// rec, when non-nil, receives a LinkRate event each time the observed
	// uplink capacity changes while the group is being integrated.
	rec      *timeline.Recorder
	recLabel string
	lastRate float64
	rateSeen bool
}

// NewUplink creates the shared uplink constraint with the given capacity
// profile. Access leaves join via NewLeaf.
func NewUplink(eng *Engine, profile trace.Profile) *Uplink {
	if profile == nil {
		panic("netsim: nil uplink profile")
	}
	return &Uplink{eng: eng, profile: profile}
}

// Engine returns the engine driving this uplink.
func (u *Uplink) Engine() *Engine { return u.eng }

// Members returns the number of attached access leaves.
func (u *Uplink) Members() int { return len(u.members) }

// NewLeaf creates an access link behind this uplink: transfers started on
// it obey the leaf profile, the shared uplink, and weighted fairness
// against every other transfer in the tree.
func (u *Uplink) NewLeaf(profile trace.Profile) *Link {
	l := NewLink(u.eng, profile)
	l.up = u
	u.members = append(u.members, l)
	return l
}

// activeTotal counts in-flight transfers across all members.
func (u *Uplink) activeTotal() int {
	n := 0
	for _, l := range u.members {
		n += len(l.active)
	}
	return n
}

// alloc computes the weighted max-min rate (bits/s) of every active
// transfer at time t, flattened in member order. Constraint 0 is the
// uplink; constraint 1+i is member i. Progressive filling: raise every
// unfrozen transfer's per-weight rate in lockstep until some constraint
// saturates, freeze that constraint's transfers at the fill level, and
// repeat with the remaining capacity. Every transfer loads the uplink
// constraint, so the fill level is always finite, and each round freezes
// at least one transfer — the loop runs at most len(members)+1 rounds.
func (u *Uplink) alloc(t time.Duration, total int) []float64 {
	nc := len(u.members) + 1
	u.rates = growF(u.rates, total)
	u.frozen = growB(u.frozen, total)
	u.weight = growF(u.weight, nc)
	u.remain = growF(u.remain, nc)
	u.sat = growB(u.sat, nc)
	for i := range u.rates {
		u.rates[i] = 0
		u.frozen[i] = false
	}
	u.remain[0] = float64(u.profile.RateAt(t))
	for i, l := range u.members {
		u.remain[1+i] = l.rateAt(t)
	}
	for {
		for c := range u.weight {
			u.weight[c] = 0
		}
		k, unfrozen := 0, 0
		for i, l := range u.members {
			for _, tr := range l.active {
				if !u.frozen[k] {
					unfrozen++
					u.weight[0] += tr.weight
					u.weight[1+i] += tr.weight
				}
				k++
			}
		}
		if unfrozen == 0 {
			return u.rates
		}
		// Fill level: the tightest per-weight capacity among loaded
		// constraints. The uplink carries every unfrozen transfer, so the
		// minimum exists.
		fill := math.Inf(1)
		for c := range u.remain {
			if u.weight[c] > 0 {
				if r := u.remain[c] / u.weight[c]; r < fill {
					fill = r
				}
			}
		}
		if fill < 0 {
			fill = 0
		}
		// Snapshot which constraints saturate at this fill level before
		// mutating remaining capacity. The ratio comparison is exact for the
		// arg-min (same division that produced fill) and catches ties.
		for c := range u.remain {
			u.sat[c] = u.weight[c] > 0 && u.remain[c]/u.weight[c] <= fill
		}
		k = 0
		for i, l := range u.members {
			for _, tr := range l.active {
				if !u.frozen[k] && (u.sat[0] || u.sat[1+i]) {
					r := fill * tr.weight
					u.rates[k] = r
					u.frozen[k] = true
					u.remain[0] -= r
					u.remain[1+i] -= r
				}
				k++
			}
		}
		for c := range u.remain {
			if u.remain[c] < 0 {
				u.remain[c] = 0
			}
		}
	}
}

// advance integrates every member's transfers from lastUpdate to now at
// the allocation that applied over the span (group wake events at every
// completion and breakpoint guarantee the allocation was constant), then
// completes finished transfers member by member.
// SetRecorder attaches a flight recorder: the uplink emits a LinkRate
// event (labelled typ, e.g. "uplink") whenever its observed capacity
// changes during integration. Pass nil to detach.
func (u *Uplink) SetRecorder(rec *timeline.Recorder, typ string) {
	u.rec = rec
	u.recLabel = typ
	u.rateSeen = false
}

// observeRate emits a LinkRate event when the uplink capacity at now
// differs from the last observed value, then lets every member leaf do the
// same for its own access capacity.
func (u *Uplink) observeRate(now time.Duration) {
	if u.rec != nil {
		rate := float64(u.profile.RateAt(now)) / 1000 // bits/s → Kbps
		//lint:ignore floateq piecewise-constant profiles repeat exact values between breakpoints; equality deduplicates, it never gates logic
		if !u.rateSeen || rate != u.lastRate {
			u.rateSeen = true
			u.lastRate = rate
			u.rec.Emit(timeline.Event{
				At:    now,
				Kind:  timeline.LinkRate,
				Type:  u.recLabel,
				Index: -1,
				Rate:  rate,
			})
		}
	}
	for _, l := range u.members {
		l.observeRate(now)
	}
}

func (u *Uplink) advance() {
	now := u.eng.Now()
	u.observeRate(now)
	if now <= u.lastUpdate {
		u.touch(now)
		return
	}
	if total := u.activeTotal(); total > 0 {
		rates := u.alloc(u.lastUpdate, total)
		elapsed := (now - u.lastUpdate).Seconds()
		k := 0
		for _, l := range u.members {
			for _, tr := range l.active {
				tr.done += rates[k] * elapsed / 8
				if tr.done > float64(tr.size) {
					tr.done = float64(tr.size)
				}
				k++
			}
		}
	}
	u.touch(now)
	for _, l := range u.members {
		l.finishCompleted()
	}
}

// touch marks the whole tree as integrated up to now.
func (u *Uplink) touch(now time.Duration) {
	u.lastUpdate = now
	for _, l := range u.members {
		l.lastUpdate = now
	}
}

// reschedule arms one wake event for the whole tree: the earliest transfer
// completion at current allocation rates, or the next capacity breakpoint
// (uplink profile, or any loaded leaf's profile/outage edge).
func (u *Uplink) reschedule() {
	if u.wake != nil {
		u.eng.Cancel(u.wake)
		u.wake = nil
	}
	total := u.activeTotal()
	if total == 0 {
		return
	}
	now := u.eng.Now()
	next := time.Duration(math.MaxInt64)
	if bp, ok := u.profile.NextChange(now); ok && bp < next {
		next = bp
	}
	rates := u.alloc(now, total)
	k := 0
	for _, l := range u.members {
		if len(l.active) == 0 {
			continue
		}
		if bp, ok := l.nextChange(now); ok && bp < next {
			next = bp
		}
		for _, tr := range l.active {
			if r := rates[k]; r > 0 {
				remaining := float64(tr.size) - tr.done
				eta := now + time.Duration(remaining*8/r*float64(time.Second))
				if eta <= now {
					eta = now + 1 // guarantee progress
				}
				if eta < next {
					next = eta
				}
			}
			k++
		}
	}
	if next == time.Duration(math.MaxInt64) {
		return
	}
	u.wake = u.eng.Schedule(next, func() {
		u.wake = nil
		u.advance()
		u.reschedule()
	})
}

// growF returns s resized to n, reallocating only on capacity growth.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growB returns s resized to n, reallocating only on capacity growth.
func growB(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
