package netsim

import "time"

// eventQueue is the engine's pending-event set. Every implementation must
// yield events in exactly (at, seq) order — at ascending, seq breaking ties
// in scheduling order — so the engine's event ordering (and therefore every
// simulation output) is independent of the queue chosen. heapQueue is the
// reference implementation; calendarQueue is the default. The two are proven
// byte-identical on randomized schedule/cancel workloads by
// TestCalendarMatchesHeapOrder.
type eventQueue interface {
	push(*Event)
	// peek returns the minimum-(at, seq) event without removing it, or nil
	// when the queue is empty.
	peek() *Event
	// pop removes and returns the minimum-(at, seq) event, or nil when the
	// queue is empty. The popped event's idx is set to -1.
	pop() *Event
	// remove deletes a pending event (idx >= 0) and sets its idx to -1.
	remove(*Event)
	len() int
}

// heapQueue wraps the original container/heap implementation. It is kept as
// the reference ordering oracle for the calendar queue's differential tests.
type heapQueue struct{ h eventHeap }

func (q *heapQueue) push(ev *Event) { q.h.pushEvent(ev) }

func (q *heapQueue) peek() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

func (q *heapQueue) pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	ev := q.h.popMin()
	ev.idx = -1
	return ev
}

func (q *heapQueue) remove(ev *Event) {
	q.h.removeAt(ev.idx)
	ev.idx = -1
}

func (q *heapQueue) len() int { return len(q.h) }

// calendarQueue is a calendar (bucket) priority queue (Brown 1988): events
// hash into nbuckets time buckets of fixed width by (at / width) % nbuckets,
// and the queue scans forward from the bucket holding the current window,
// taking the (at, seq) minimum among events inside that window. The queue
// maintains the invariant that no pending event precedes the cursor's
// window: peek only advances the cursor to the window of the global minimum,
// and push rewinds it when a new event lands earlier (possible after a
// peek-without-pop, e.g. RunUntil probing a far-future event). Because
// equal-at events always share a bucket, the within-bucket (at, seq) scan
// reproduces the heap's global tie-break exactly.
//
// Push, pop, and remove are O(1) amortized when the bucket width tracks the
// mean event spacing; resize() re-derives the width from the live event span
// whenever the count crosses the grow/shrink thresholds. A full cycle of
// empty windows (a sparse queue whose next event is far away) falls back to
// a direct O(n) minimum search that also re-anchors the cursor.
type calendarQueue struct {
	buckets [][]*Event
	width   time.Duration
	// cur is the bucket whose window [curTop-width, curTop) the cursor is
	// scanning; floor is the last popped time, the lower bound on every
	// pending event.
	cur    int
	curTop time.Duration
	floor  time.Duration
	count  int
	// peeked caches the last peek so that a peek-then-pop pair (the Step
	// fast path) scans buckets once, not twice. Any mutation clears it.
	peeked *Event
	// spare recycles bucket slices dropped by resize so that steady-state
	// operation allocates nothing (the engine's freelist guarantee).
	spare [][]*Event
}

const (
	calMinBuckets = 8
	calInitWidth  = time.Millisecond
	calMaxBuckets = 1 << 20
)

func newCalendarQueue() *calendarQueue {
	q := &calendarQueue{width: calInitWidth}
	q.buckets = make([][]*Event, calMinBuckets)
	q.curTop = q.width
	return q
}

func (q *calendarQueue) len() int { return q.count }

func (q *calendarQueue) bucketFor(at time.Duration) int {
	return int((at / q.width) % time.Duration(len(q.buckets)))
}

func (q *calendarQueue) push(ev *Event) {
	q.peeked = nil
	// peek advances the cursor to the window of the minimum it found, even
	// when nothing is popped (RunUntil probes the queue this way). The engine
	// may then legally schedule an event earlier than that window — RunUntil
	// moves the clock forward without moving floor — so a push that precedes
	// the current window must rewind the cursor, or the event sits behind it
	// and fires a full calendar cycle late, after later-timestamped events.
	if ev.at < q.curTop-q.width {
		q.cur = q.bucketFor(ev.at)
		q.curTop = (ev.at/q.width + 1) * q.width
	}
	b := q.bucketFor(ev.at)
	ev.bucket = b
	ev.idx = len(q.buckets[b])
	q.buckets[b] = append(q.buckets[b], ev)
	q.count++
	if n := len(q.buckets); q.count > 2*n && n < calMaxBuckets {
		q.resize(2 * n)
	}
}

func (q *calendarQueue) remove(ev *Event) {
	q.peeked = nil
	b := q.buckets[ev.bucket]
	last := len(b) - 1
	moved := b[last]
	b[ev.idx] = moved
	moved.idx = ev.idx
	b[last] = nil
	q.buckets[ev.bucket] = b[:last]
	ev.idx = -1
	q.count--
	if n := len(q.buckets); n > calMinBuckets && q.count < n/2 {
		q.resize(n / 2)
	}
}

func (q *calendarQueue) peek() *Event {
	if q.count == 0 {
		return nil
	}
	if q.peeked != nil {
		return q.peeked
	}
	cur, top := q.cur, q.curTop
	for range q.buckets {
		var best *Event
		for _, ev := range q.buckets[cur] {
			if ev.at < top && (best == nil || eventLess(ev, best)) {
				best = ev
			}
		}
		if best != nil {
			q.cur, q.curTop = cur, top
			q.peeked = best
			return best
		}
		cur++
		if cur == len(q.buckets) {
			cur = 0
		}
		top += q.width
	}
	// A full cycle of empty windows: the next event is over a calendar year
	// away. Find it directly and re-anchor the cursor on its window.
	var best *Event
	for _, b := range q.buckets {
		for _, ev := range b {
			if best == nil || eventLess(ev, best) {
				best = ev
			}
		}
	}
	q.cur = best.bucket
	q.curTop = (best.at/q.width + 1) * q.width
	q.peeked = best
	return best
}

func (q *calendarQueue) pop() *Event {
	ev := q.peek()
	if ev == nil {
		return nil
	}
	q.floor = ev.at
	q.remove(ev)
	return ev
}

// resize rebuilds the calendar with nb buckets and a width re-derived from
// the live event span (roughly three mean gaps per bucket, the classic
// heuristic that keeps a handful of events per scanned window).
func (q *calendarQueue) resize(nb int) {
	var lo, hi time.Duration
	first := true
	for _, b := range q.buckets {
		for _, ev := range b {
			if first {
				lo, hi = ev.at, ev.at
				first = false
				continue
			}
			if ev.at < lo {
				lo = ev.at
			}
			if ev.at > hi {
				hi = ev.at
			}
		}
	}
	if span := hi - lo; span > 0 && q.count > 1 {
		w := span * 3 / time.Duration(q.count)
		if w < 1 {
			w = 1
		}
		q.width = w
	}
	old := q.buckets
	if cap(q.spare) >= nb {
		q.buckets = q.spare[:nb]
		q.spare = nil
	} else {
		q.buckets = make([][]*Event, nb)
	}
	for i, b := range old {
		for _, ev := range b {
			nbk := q.bucketFor(ev.at)
			ev.bucket = nbk
			ev.idx = len(q.buckets[nbk])
			q.buckets[nbk] = append(q.buckets[nbk], ev)
		}
		old[i] = b[:0]
	}
	if cap(old) > cap(q.spare) {
		q.spare = old[:0]
	}
	q.cur = q.bucketFor(q.floor)
	q.curTop = (q.floor/q.width + 1) * q.width
}

func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// pushEvent, popMin, and removeAt expose the heap operations without the
// container/heap interface boxing (heap.Pop's `any` return would allocate).
func (h *eventHeap) pushEvent(ev *Event) {
	ev.idx = len(*h)
	*h = append(*h, ev)
	h.up(ev.idx)
}

func (h *eventHeap) popMin() *Event {
	old := *h
	n := len(old) - 1
	old.Swap(0, n)
	ev := old[n]
	old[n] = nil
	*h = old[:n]
	if n > 0 {
		h.down(0)
	}
	return ev
}

func (h *eventHeap) removeAt(i int) {
	old := *h
	n := len(old) - 1
	if i != n {
		old.Swap(i, n)
	}
	old[n] = nil
	*h = old[:n]
	if i < n {
		h.down(i)
		h.up(i)
	}
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.Less(i, parent) {
			return
		}
		h.Swap(i, parent)
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && h.Less(r, l) {
			min = r
		}
		if !h.Less(min, i) {
			return
		}
		h.Swap(i, min)
		i = min
	}
}
