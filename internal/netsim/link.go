package netsim

import (
	"math"
	"time"

	"demuxabr/internal/timeline"
	"demuxabr/internal/trace"
)

// completionSlack treats a transfer as finished once less than half a byte
// remains, absorbing float rounding in the fluid integration.
const completionSlack = 0.5

// Link is a single shared bottleneck with a time-varying capacity profile.
// Concurrent transfers receive weight-proportional shares of the
// instantaneous capacity (equal shares by default).
type Link struct {
	eng     *Engine
	profile trace.Profile
	// RTT delays each transfer's first byte (request round trip). Zero by
	// default; the paper's single-server testbed had negligible RTT.
	RTT time.Duration

	active     []*Transfer
	lastUpdate time.Duration
	wake       *Event // pending recompute (completion or profile breakpoint)

	// outages are blackout windows during which capacity is zero
	// regardless of the profile (fault-injection link failures).
	outages []outageWindow

	// up, when non-nil, makes this link an access leaf behind a shared
	// Uplink: rate integration and wake scheduling are delegated to the
	// group, which allocates weighted max-min rates across the whole
	// two-tier tree (see uplink.go).
	up *Uplink

	// rec, when non-nil, receives a LinkRate event each time the observed
	// effective capacity changes while the link is being integrated.
	rec      *timeline.Recorder
	recLabel string
	lastRate float64
	rateSeen bool
}

// outageWindow is one half-open blackout interval.
type outageWindow struct {
	start, stop time.Duration
}

// NewLink creates a link driven by the engine with the given capacity
// profile.
func NewLink(eng *Engine, profile trace.Profile) *Link {
	if profile == nil {
		panic("netsim: nil profile")
	}
	return &Link{eng: eng, profile: profile}
}

// Engine returns the engine that drives this link.
func (l *Link) Engine() *Engine { return l.eng }

// ActiveTransfers returns the number of currently transferring flows.
func (l *Link) ActiveTransfers() int { return len(l.active) }

// RateAt exposes the link capacity at time t (zero inside an outage).
func (l *Link) RateAt(t time.Duration) float64 { return l.rateAt(t) }

// AddOutage blacks the link out over [start, stop): capacity drops to zero
// regardless of the profile, modelling a last-mile or radio-layer failure.
// In-flight transfers stall and resume when the window ends; pair with a
// request timeout to model clients that give up instead. Call before the
// window opens — retroactive outages do not re-integrate past traffic.
func (l *Link) AddOutage(start, stop time.Duration) {
	if stop <= start {
		return
	}
	l.outages = append(l.outages, outageWindow{start: start, stop: stop})
}

// rateAt is the effective capacity: the profile's rate, masked by outages.
func (l *Link) rateAt(t time.Duration) float64 {
	for _, w := range l.outages {
		if t >= w.start && t < w.stop {
			return 0
		}
	}
	return float64(l.profile.RateAt(t))
}

// nextChange merges the profile's next breakpoint with outage boundaries.
func (l *Link) nextChange(t time.Duration) (time.Duration, bool) {
	next, ok := l.profile.NextChange(t)
	for _, w := range l.outages {
		for _, edge := range [2]time.Duration{w.start, w.stop} {
			if edge > t && (!ok || edge < next) {
				next, ok = edge, true
			}
		}
	}
	return next, ok
}

// Transfer is one in-flight download over the link.
type Transfer struct {
	link *Link
	// conn, when non-nil, is the transport connection that dispatched this
	// transfer; the link notifies it when the transfer leaves the wire
	// (completion or cancellation) so it can free the stream slot.
	conn *Conn
	// Label tags the transfer (e.g. "video"/"audio") for observers.
	Label string
	// UserData carries caller context (e.g. chunk identity).
	UserData any
	// weight is the transfer's share weight (default 1).
	weight float64

	size       int64   // total bytes
	done       float64 // bytes transferred
	started    time.Duration
	finished   time.Duration
	completed  bool
	cancelled  bool
	suspended  bool // removed from the active set by a transport stall
	onComplete func(*Transfer)

	// preDelay is the pre-byte latency (RTT + ExtraDelay) computed when the
	// transfer was prepared; activation is scheduled this far after dispatch.
	preDelay time.Duration
	// activateEv is the pending activation wake. Cancelling a transfer that
	// is still waiting out its pre-byte delay must cancel this event too:
	// activate() already refuses cancelled transfers, but the dead event
	// would otherwise linger in the queue until its due time — at fleet
	// scale (teardown cancels two transfers per session) that is tens of
	// thousands of ghost events kept alive for up to RTT+ExtraDelay each.
	activateEv *Event

	sampleEvery  time.Duration
	onSample     func(tr *Transfer, bytes float64, interval time.Duration)
	sampleMark   float64       // bytes at last sample boundary
	lastSampleAt time.Duration // time of last sample boundary
	sampleEv     *Event
}

// Size returns the transfer's total size in bytes.
func (tr *Transfer) Size() int64 { return tr.size }

// Done returns the bytes transferred so far (fluid, fractional).
func (tr *Transfer) Done() float64 { return tr.done }

// Started returns the time the first byte moved (after RTT).
func (tr *Transfer) Started() time.Duration { return tr.started }

// Finished returns the completion time; zero if not complete.
func (tr *Transfer) Finished() time.Duration { return tr.finished }

// Completed reports whether the transfer finished.
func (tr *Transfer) Completed() bool { return tr.completed }

// Cancelled reports whether the transfer was aborted via Cancel. A
// cancelled transfer never completes and its OnComplete never fires.
func (tr *Transfer) Cancelled() bool { return tr.cancelled }

// Suspended reports whether the transfer is currently paused by a
// transport-level stall (see Link.Suspend).
func (tr *Transfer) Suspended() bool { return tr.suspended }

// Duration returns the transfer time (first byte to completion).
func (tr *Transfer) Duration() time.Duration {
	if !tr.completed {
		return 0
	}
	return tr.finished - tr.started
}

// Throughput returns the achieved goodput in bits/s; zero if not complete or
// instantaneous.
func (tr *Transfer) Throughput() float64 {
	d := tr.Duration()
	if d <= 0 {
		return 0
	}
	return float64(tr.size) * 8 / d.Seconds()
}

// StartOptions configures a transfer.
type StartOptions struct {
	// Label tags the transfer for observers ("video", "audio", ...).
	Label string
	// UserData carries caller context through to callbacks.
	UserData any
	// OnComplete fires when the last byte arrives.
	OnComplete func(*Transfer)
	// Weight scales this transfer's share of the bottleneck relative to
	// other active transfers (default 1). Use >1 to model aggressive
	// cross-traffic (e.g. several TCP flows behaving as one transfer).
	Weight float64
	// SampleEvery, when positive, fires OnSample every interval with the
	// bytes moved during that interval (Shaka's δ sampler). At completion a
	// final sample covers the remaining partial interval; observers that
	// must ignore partials (Shaka does) can test the interval argument
	// against SampleEvery.
	SampleEvery time.Duration
	OnSample    func(tr *Transfer, bytes float64, interval time.Duration)
	// ExtraDelay postpones the first byte beyond the link RTT — e.g. a CDN
	// edge-cache miss paying an origin round trip before bytes flow. A
	// negative value (e.g. a buggy OnRequest hook subtracting more than the
	// RTT covers) is clamped so the total pre-byte delay never goes below
	// zero: the discrete-event engine refuses to schedule into the past.
	ExtraDelay time.Duration
}

// Start begins a transfer of size bytes. The first byte moves after the
// link RTT. A zero-size transfer completes immediately upon activation.
func (l *Link) Start(size int64, opts StartOptions) *Transfer {
	tr := l.prepare(size, opts)
	l.scheduleActivation(tr)
	return tr
}

// prepare builds a transfer without scheduling its activation; transport
// connections use it to hold a request while a handshake or stream slot
// is pending. The pre-byte delay (RTT + ExtraDelay) is captured now and
// applied relative to whenever the transfer is actually dispatched.
func (l *Link) prepare(size int64, opts StartOptions) *Transfer {
	if size < 0 {
		panic("netsim: negative transfer size")
	}
	weight := opts.Weight
	if weight <= 0 {
		weight = 1
	}
	delay := l.RTT + opts.ExtraDelay
	if delay < 0 {
		delay = 0
	}
	return &Transfer{
		link:        l,
		Label:       opts.Label,
		UserData:    opts.UserData,
		weight:      weight,
		size:        size,
		onComplete:  opts.OnComplete,
		sampleEvery: opts.SampleEvery,
		onSample:    opts.OnSample,
		preDelay:    delay,
	}
}

// scheduleActivation arms the transfer's first-byte wake, preDelay from
// now. The event handle is retained so Cancel can reclaim it.
func (l *Link) scheduleActivation(tr *Transfer) {
	tr.activateEv = l.eng.After(tr.preDelay, func() {
		tr.activateEv = nil
		l.activate(tr)
	})
}

// SetRecorder attaches a flight recorder: the link emits a LinkRate event
// (labelled typ, e.g. "link" or "uplink") whenever its observed effective
// capacity changes during integration. Pass nil to detach.
func (l *Link) SetRecorder(rec *timeline.Recorder, typ string) {
	l.rec = rec
	l.recLabel = typ
	l.rateSeen = false
}

// observeRate emits a LinkRate event when the effective capacity at now
// differs from the last observed value. Rate changes are only observed
// while the link is actively integrating (idle links schedule no wakes).
func (l *Link) observeRate(now time.Duration) {
	if l.rec == nil {
		return
	}
	rate := l.rateAt(now) / 1000 // bits/s → Kbps
	//lint:ignore floateq piecewise-constant profiles repeat exact values between breakpoints; equality deduplicates, it never gates logic
	if l.rateSeen && rate == l.lastRate {
		return
	}
	l.rateSeen = true
	l.lastRate = rate
	l.rec.Emit(timeline.Event{
		At:    now,
		Kind:  timeline.LinkRate,
		Type:  l.recLabel,
		Index: -1,
		Rate:  rate,
	})
}

// Cancel aborts an in-flight (or not-yet-activated) transfer. Its
// OnComplete never fires.
func (l *Link) Cancel(tr *Transfer) {
	if tr.completed || tr.cancelled {
		return
	}
	l.advance() // may complete the transfer at this very instant
	if tr.completed {
		return
	}
	tr.cancelled = true
	tr.suspended = false
	if tr.activateEv != nil {
		l.eng.Cancel(tr.activateEv)
		tr.activateEv = nil
	}
	for i, a := range l.active {
		if a == tr {
			l.active = append(l.active[:i], l.active[i+1:]...)
			break
		}
	}
	if tr.sampleEv != nil {
		l.eng.Cancel(tr.sampleEv)
		tr.sampleEv = nil
	}
	l.reschedule()
	if tr.conn != nil {
		tr.conn.onDone(tr)
	}
}

// Suspend pauses an in-flight transfer: it is removed from the active set
// (so it consumes no bandwidth share) but keeps sampling — observers see a
// stalled socket delivering zero bytes, exactly what a throughput
// estimator sees during a loss-recovery stall. Only transfers that have
// activated and are still moving can be suspended; the return value
// reports whether the transfer was actually paused.
func (l *Link) Suspend(tr *Transfer) bool {
	if tr.completed || tr.cancelled || tr.suspended {
		return false
	}
	l.advance() // may complete the transfer at this very instant
	if tr.completed {
		return false
	}
	found := false
	for i, a := range l.active {
		if a == tr {
			l.active = append(l.active[:i], l.active[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return false // still waiting out its pre-byte delay
	}
	tr.suspended = true
	l.reschedule()
	return true
}

// Resume returns a suspended transfer to the active set. Transfers that
// completed impossibly or were cancelled while suspended are left alone.
func (l *Link) Resume(tr *Transfer) {
	if tr.completed || tr.cancelled || !tr.suspended {
		return
	}
	l.advance()
	tr.suspended = false
	l.active = append(l.active, tr)
	l.reschedule()
}

func (l *Link) activate(tr *Transfer) {
	if tr.cancelled {
		return
	}
	l.advance()
	tr.started = l.eng.Now()
	if tr.size == 0 {
		tr.completed = true
		tr.finished = l.eng.Now()
		if tr.onComplete != nil {
			tr.onComplete(tr)
		}
		if tr.conn != nil {
			tr.conn.onDone(tr)
		}
		return
	}
	l.active = append(l.active, tr)
	tr.lastSampleAt = tr.started
	if tr.sampleEvery > 0 && tr.onSample != nil {
		tr.scheduleSample()
	}
	l.reschedule()
}

func (tr *Transfer) scheduleSample() {
	tr.sampleEv = tr.link.eng.After(tr.sampleEvery, func() {
		tr.link.advance()
		if tr.completed || tr.cancelled {
			return
		}
		bytes := tr.done - tr.sampleMark
		tr.sampleMark = tr.done
		tr.lastSampleAt = tr.link.eng.Now()
		tr.onSample(tr, bytes, tr.sampleEvery)
		tr.scheduleSample()
	})
}

// advance integrates all active transfers from lastUpdate to now at the
// capacity that applied over that span. The link guarantees (via wake
// events at profile breakpoints) that capacity is constant over the span.
// Leaves behind a shared uplink delegate to the group, whose allocation
// couples every member's transfers.
func (l *Link) advance() {
	if l.up != nil {
		l.up.advance()
		return
	}
	l.advanceSolo()
}

func (l *Link) advanceSolo() {
	now := l.eng.Now()
	l.observeRate(now)
	if now <= l.lastUpdate {
		l.lastUpdate = now
		return
	}
	if len(l.active) > 0 {
		rate := l.rateAt(l.lastUpdate)
		totalWeight := 0.0
		for _, tr := range l.active {
			totalWeight += tr.weight
		}
		elapsed := (now - l.lastUpdate).Seconds()
		for _, tr := range l.active {
			share := rate * tr.weight / totalWeight
			tr.done += share * elapsed / 8
			if tr.done > float64(tr.size) {
				tr.done = float64(tr.size)
			}
		}
	}
	l.lastUpdate = now
	l.finishCompleted()
}

// finishCompleted removes and notifies transfers that have reached their
// full size.
func (l *Link) finishCompleted() {
	var finished []*Transfer
	remaining := l.active[:0]
	for _, tr := range l.active {
		if float64(tr.size)-tr.done < completionSlack {
			tr.done = float64(tr.size)
			tr.completed = true
			tr.finished = l.eng.Now()
			if tr.sampleEv != nil {
				l.eng.Cancel(tr.sampleEv)
				tr.sampleEv = nil
			}
			finished = append(finished, tr)
		} else {
			remaining = append(remaining, tr)
		}
	}
	l.active = remaining
	for _, tr := range finished {
		// Report the final partial sampling interval so byte-flow observers
		// account for every byte.
		if tr.onSample != nil && tr.sampleEvery > 0 {
			if bytes := tr.done - tr.sampleMark; bytes > 0 {
				tr.sampleMark = tr.done
				tr.onSample(tr, bytes, tr.finished-tr.lastSampleAt)
			}
		}
		if tr.onComplete != nil {
			tr.onComplete(tr)
		}
		if tr.conn != nil {
			tr.conn.onDone(tr)
		}
	}
}

// reschedule computes the next interesting instant (first completion or
// profile breakpoint) and arms a wake event for it. Uplink leaves share
// one group wake instead of per-link wakes.
func (l *Link) reschedule() {
	if l.up != nil {
		l.up.reschedule()
		return
	}
	l.rescheduleSolo()
}

func (l *Link) rescheduleSolo() {
	if l.wake != nil {
		l.eng.Cancel(l.wake)
		l.wake = nil
	}
	// With no active transfers there is nothing to integrate; the next
	// activation re-arms the wake. (Arming breakpoint wakes while idle would
	// keep cyclic profiles generating events forever.)
	if len(l.active) == 0 {
		return
	}
	now := l.eng.Now()
	next := time.Duration(math.MaxInt64)
	if bp, ok := l.nextChange(now); ok && bp < next {
		next = bp
	}
	{
		rate := l.rateAt(now)
		if rate > 0 {
			totalWeight := 0.0
			for _, tr := range l.active {
				totalWeight += tr.weight
			}
			for _, tr := range l.active {
				share := rate * tr.weight / totalWeight
				remaining := float64(tr.size) - tr.done
				eta := now + time.Duration(remaining*8/share*float64(time.Second))
				if eta <= now {
					eta = now + 1 // guarantee progress
				}
				if eta < next {
					next = eta
				}
			}
		}
	}
	if next == time.Duration(math.MaxInt64) {
		return
	}
	l.wake = l.eng.Schedule(next, func() {
		l.wake = nil
		l.advance()
		l.reschedule()
	})
}

// StartCrossTraffic occupies the link with a persistent competing flow of
// the given weight between start and stop — e.g. another household device
// streaming. It is implemented as a sequence of large transfers so the
// fair-sharing machinery applies unchanged.
func (l *Link) StartCrossTraffic(weight float64, start, stop time.Duration) {
	if weight <= 0 || stop <= start {
		return
	}
	const blockBytes = 1 << 30
	var tr *Transfer
	stopped := false
	var begin func()
	begin = func() {
		tr = l.Start(blockBytes, StartOptions{
			Label:  "cross-traffic",
			Weight: weight,
			OnComplete: func(*Transfer) {
				// A block drained before the window closed (fast link or long
				// window): start the next one so the flow persists to stop.
				if !stopped && l.eng.Now() < stop {
					begin()
				}
			},
		})
	}
	l.eng.Schedule(start, func() { begin() })
	l.eng.Schedule(stop, func() {
		stopped = true
		if tr != nil {
			l.Cancel(tr)
		}
	})
}
