package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randomSamples draws n values in roughly [0, hi) with occasional
// out-of-range excursions when wild is set.
func randomSamples(rng *rand.Rand, n int, hi float64, wild bool) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * hi
		if wild && rng.Intn(20) == 0 {
			xs[i] = -xs[i] // below range: must clamp into bin 0
		}
		if wild && rng.Intn(20) == 0 {
			xs[i] = hi * (1 + rng.Float64()) // above range: clamps into last bin
		}
	}
	return xs
}

// TestSketchMergeOrderIndependent is the merge-law property test: splitting
// a stream into random shards and merging the shard sketches in random
// orders must produce bit-identical state and bit-identical query answers.
func TestSketchMergeOrderIndependent(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		xs := randomSamples(rng, 500+rng.Intn(500), 100, true)

		// Reference: one sketch over the whole stream in order.
		ref := NewSketch(0, 100, 256)
		for _, x := range xs {
			ref.Add(x)
		}

		// Shard the stream: sample i goes to shard pick[i].
		nShards := 2 + rng.Intn(6)
		shards := make([]*Sketch, nShards)
		for i := range shards {
			shards[i] = NewSketch(0, 100, 256)
		}
		for _, x := range xs {
			shards[rng.Intn(nShards)].Add(x)
		}

		// Merge in a random order.
		order := rng.Perm(nShards)
		merged := NewSketch(0, 100, 256)
		for _, i := range order {
			merged.Merge(shards[i])
		}

		if !reflect.DeepEqual(ref.bins, merged.bins) || ref.n != merged.n ||
			ref.min != merged.min || ref.max != merged.max {
			t.Fatalf("seed %d: merged sketch state differs from single-stream state", seed)
		}
		if ref.Summary() != merged.Summary() {
			t.Fatalf("seed %d: merged summary %v != reference %v", seed, merged.Summary(), ref.Summary())
		}
	}
}

// TestSketchQuantileErrorBound checks the documented accuracy contract:
// for in-range samples, every sketch quantile is within ErrorBound() of the
// exact Percentile, and the mean within half a bin width.
func TestSketchQuantileErrorBound(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		xs := randomSamples(rng, 200+rng.Intn(2000), 100, false)
		s := NewSketch(0, 100, 512)
		for _, x := range xs {
			s.Add(x)
		}
		bound := s.ErrorBound()
		for _, p := range []float64{1, 10, 25, 50, 75, 90, 99} {
			exact := Percentile(xs, p)
			got := s.Quantile(p)
			if d := math.Abs(got - exact); d > bound+1e-9 {
				t.Errorf("seed %d p%.0f: sketch %.4f exact %.4f: error %.4f > bound %.4f",
					seed, p, got, exact, d, bound)
			}
		}
		if d := math.Abs(s.Mean() - Mean(xs)); d > bound/2+1e-9 {
			t.Errorf("seed %d: sketch mean %.4f exact %.4f: error %.4f > %.4f",
				seed, s.Mean(), Mean(xs), d, bound/2)
		}
	}
}

// TestSketchExactExtremes pins that Min/Max/N stay exact even for clamped
// out-of-range samples, and that the empty sketch mirrors the exact path's
// NaN convention.
func TestSketchExactExtremes(t *testing.T) {
	s := NewSketch(0, 10, 16)
	if !math.IsNaN(s.Quantile(50)) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Mean()) {
		t.Fatal("empty sketch must report NaN like the exact path")
	}
	for _, x := range []float64{-5, 3, 25, 7, math.NaN()} {
		s.Add(x)
	}
	if s.N() != 4 {
		t.Fatalf("N=%d after 4 real samples (NaN must be ignored)", s.N())
	}
	if s.Min() != -5 || s.Max() != 25 {
		t.Fatalf("extremes (%v, %v), want exact (-5, 25)", s.Min(), s.Max())
	}
	if s.Quantile(0) != -5 || s.Quantile(100) != 25 {
		t.Fatalf("p0/p100 must return exact extremes, got (%v, %v)", s.Quantile(0), s.Quantile(100))
	}
}

// TestSketchInfinities pins that infinite samples clamp into the correct
// edge bins: +Inf into the top, -Inf into the bottom. (A naive float-to-int
// bin conversion is implementation-defined for ±Inf — on amd64 +Inf converts
// to minInt and would clamp into the LOWEST bin, skewing quantiles.)
func TestSketchInfinities(t *testing.T) {
	s := NewSketch(0, 100, 10)
	s.Add(math.Inf(1))
	if q := s.Quantile(50); q < 90 || q >= 100 {
		t.Fatalf("+Inf median %v, want mass in the top bin [90, 100)", q)
	}
	if !math.IsInf(s.Max(), 1) {
		t.Fatalf("Max %v, want exact +Inf", s.Max())
	}
	s = NewSketch(0, 100, 10)
	s.Add(math.Inf(-1))
	if q := s.Quantile(50); q < 0 || q >= 10 {
		t.Fatalf("-Inf median %v, want mass in the bottom bin [0, 10)", q)
	}
	if !math.IsInf(s.Min(), -1) {
		t.Fatalf("Min %v, want exact -Inf", s.Min())
	}
}

func TestSketchIncompatibleMergePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging incompatible sketches must panic")
		}
	}()
	NewSketch(0, 10, 16).Merge(NewSketch(0, 20, 16))
}

// TestReservoirMergeMatchesSingleStream is the reservoir merge law: a
// partitioned, arbitrarily-ordered stream yields exactly the sample of the
// single full stream.
func TestReservoirMergeMatchesSingleStream(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(500)
		k := 1 + rng.Intn(20)

		full := NewReservoir[int](k, seed)
		for id := 0; id < n; id++ {
			full.Add(id, id*10)
		}

		nShards := 2 + rng.Intn(5)
		shards := make([]*Reservoir[int], nShards)
		for i := range shards {
			shards[i] = NewReservoir[int](k, seed)
		}
		for _, id := range rng.Perm(n) {
			shards[rng.Intn(nShards)].Add(id, id*10)
		}
		merged := NewReservoir[int](k, seed)
		for _, i := range rng.Perm(nShards) {
			merged.Merge(shards[i])
		}

		if !reflect.DeepEqual(full.IDs(), merged.IDs()) {
			t.Fatalf("seed %d: merged sample %v != single-stream sample %v", seed, merged.IDs(), full.IDs())
		}
		if !reflect.DeepEqual(full.Items(), merged.Items()) {
			t.Fatalf("seed %d: merged items differ", seed)
		}
	}
}

// TestReservoirUniformish sanity-checks that the seeded hash does not
// systematically favor low or high IDs.
func TestReservoirUniformish(t *testing.T) {
	const n, k = 10_000, 500
	r := NewReservoir[struct{}](k, 42)
	for id := 0; id < n; id++ {
		r.Add(id, struct{}{})
	}
	low := 0
	for _, id := range r.IDs() {
		if id < n/2 {
			low++
		}
	}
	// Binomial(500, 0.5): 5σ ≈ 56. A split worse than 194/306 means the
	// hash is biased, not unlucky.
	if low < k/2-56 || low > k/2+56 {
		t.Fatalf("sample heavily skewed: %d of %d from the low half", low, k)
	}
}

// TestSummarizeAllocs is the satellite guard: Summarize must sort one copy
// once — exactly one allocation — not once per percentile.
func TestSummarizeAllocs(t *testing.T) {
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = float64((i * 7919) % 1024)
	}
	var sink Summary
	allocs := testing.AllocsPerRun(20, func() {
		sink = Summarize(xs)
	})
	if allocs > 1 {
		t.Fatalf("Summarize allocated %.0f times per run, want ≤ 1 (single sorted copy)", allocs)
	}
	if sink.N != len(xs) {
		t.Fatal("summary discarded")
	}
}

// TestSummarizeMatchesPercentile pins that the single-sort rewrite did not
// change any statistic relative to the per-call-sort implementation.
func TestSummarizeMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 3, 17, 100} {
		xs := randomSamples(rng, n, 50, true)
		s := Summarize(xs)
		want := Summary{
			Min:    Min(xs),
			P10:    Percentile(xs, 10),
			Median: Percentile(xs, 50),
			P90:    Percentile(xs, 90),
			Max:    Max(xs),
			Mean:   Mean(xs),
			N:      len(xs),
		}
		if n == 0 {
			// NaN != NaN; compare field presence via marshaling instead.
			if s.N != 0 || !math.IsNaN(s.Median) {
				t.Fatalf("empty summary changed: %+v", s)
			}
			continue
		}
		if s != want {
			t.Fatalf("n=%d: Summarize %+v != component-wise %+v", n, s, want)
		}
	}
}

func BenchmarkSummarize(b *testing.B) {
	xs := make([]float64, 4096)
	rng := rand.New(rand.NewSource(1))
	for i := range xs {
		xs[i] = rng.Float64() * 1000
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Summarize(xs)
	}
}

func BenchmarkSketchAdd(b *testing.B) {
	s := NewSketch(0, 1000, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(float64(i % 1000))
	}
}
