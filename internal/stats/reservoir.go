package stats

import "sort"

// Reservoir is a deterministic bottom-k uniform sample over a keyed stream.
// Every item's priority is a seeded hash of its integer ID; the reservoir
// keeps the k smallest priorities. Because the priority depends only on
// (seed, id) — never on arrival order — the sample is a pure function of
// the ID set: merging reservoirs built over any partition of the stream, in
// any order, selects exactly the same items. The hash makes the selection
// uniform over IDs, so the kept items are an unbiased sample.
type Reservoir[T any] struct {
	k     int
	seed  int64
	items []reservoirItem[T]
}

type reservoirItem[T any] struct {
	pri uint64
	id  int
	v   T
}

// NewReservoir returns a reservoir keeping a k-item sample. k must be
// positive.
func NewReservoir[T any](k int, seed int64) *Reservoir[T] {
	if k <= 0 {
		panic("stats: reservoir size must be positive")
	}
	return &Reservoir[T]{k: k, seed: seed}
}

// samplePriority is a splitmix64 finalization of (seed, id) — a cheap,
// well-mixed stateless hash, so no shared RNG stream exists to make the
// sample order-dependent.
func samplePriority(seed int64, id int) uint64 {
	z := uint64(seed) ^ uint64(id)*0x9e3779b97f4a7c15
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Add offers one item. IDs are assumed unique across the stream (they are
// session IDs); priority ties are broken by ID so even colliding hashes
// stay deterministic.
func (r *Reservoir[T]) Add(id int, v T) {
	r.insert(reservoirItem[T]{pri: samplePriority(r.seed, id), id: id, v: v})
}

func (r *Reservoir[T]) insert(it reservoirItem[T]) {
	if len(r.items) < r.k {
		r.items = append(r.items, it)
		return
	}
	// Find the current worst (largest priority, then largest ID) and
	// replace it if the newcomer ranks lower. k is small; linear scan
	// beats heap bookkeeping and keeps the structure trivially mergeable.
	worst := 0
	for i := 1; i < len(r.items); i++ {
		if itemAfter(r.items[i], r.items[worst]) {
			worst = i
		}
	}
	if itemAfter(r.items[worst], it) {
		r.items[worst] = it
	}
}

func itemAfter[T any](a, b reservoirItem[T]) bool {
	if a.pri != b.pri {
		return a.pri > b.pri
	}
	return a.id > b.id
}

// Merge folds o's sample into r. Both must share seed and k for the merged
// sample to equal the single-stream sample; mismatches panic.
func (r *Reservoir[T]) Merge(o *Reservoir[T]) {
	if r.k != o.k || r.seed != o.seed {
		panic("stats: merging reservoirs with different size or seed")
	}
	for _, it := range o.items {
		r.insert(it)
	}
}

// Len returns the number of sampled items currently held.
func (r *Reservoir[T]) Len() int { return len(r.items) }

// Items returns the sampled values in ascending ID order.
func (r *Reservoir[T]) Items() []T {
	sorted := make([]reservoirItem[T], len(r.items))
	copy(sorted, r.items)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].id < sorted[j].id })
	out := make([]T, len(sorted))
	for i, it := range sorted {
		out[i] = it.v
	}
	return out
}

// IDs returns the sampled IDs in ascending order.
func (r *Reservoir[T]) IDs() []int {
	ids := make([]int, len(r.items))
	for i, it := range r.items {
		ids[i] = it.id
	}
	sort.Ints(ids)
	return ids
}
