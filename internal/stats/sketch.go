package stats

import (
	"fmt"
	"math"
)

// Sketch is a mergeable fixed-resolution histogram for streaming quantile
// estimation over a known value range. It exists so fleet aggregation can
// run in O(bins) memory per shard instead of retaining every sample, while
// staying exactly merge-order independent:
//
//   - bin counts are integers, so Add and Merge commute and associate;
//   - min/max are tracked exactly (commutative);
//   - Mean is computed at query time from bin centers in fixed bin order,
//     never from a running float sum whose value would depend on arrival
//     order.
//
// Merging any partition of a sample stream, in any order, therefore yields
// a Sketch whose every query answer is bit-identical.
//
// Accuracy: for samples inside [lo, hi), Quantile differs from the exact
// Percentile of the same samples by at most ErrorBound() (one bin width):
// each sample is displaced at most one bin width from its true value, and
// percentile interpolation is 1-Lipschitz in the order statistics. Mean is
// within half a bin width. Samples outside [lo, hi) are clamped into the
// edge bins: N, Min, and Max remain exact, but quantile and mean error for
// the clamped mass is bounded only by its distance to the range edge —
// choose the range to cover the metric's physical domain.
type Sketch struct {
	lo, hi float64
	width  float64
	bins   []int64
	n      int64
	min    float64
	max    float64
}

// NewSketch returns a sketch over [lo, hi) with the given bin count.
func NewSketch(lo, hi float64, bins int) *Sketch {
	if !(hi > lo) || bins <= 0 {
		panic(fmt.Sprintf("stats: invalid sketch range [%v, %v) with %d bins", lo, hi, bins))
	}
	return &Sketch{
		lo:    lo,
		hi:    hi,
		width: (hi - lo) / float64(bins),
		bins:  make([]int64, bins),
		min:   math.Inf(1),
		max:   math.Inf(-1),
	}
}

// Add records one sample. NaN samples are ignored (they carry no order
// information; the exact path drops them from quantiles the same way).
func (s *Sketch) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	// Branch on the range before converting: float-to-int conversion of an
	// out-of-range value (±Inf in particular) is implementation-defined in
	// Go, and on amd64 +Inf converts to minInt — which would clamp +Inf mass
	// into the LOWEST bin. The explicit comparisons route +Inf (and any
	// x ≥ hi) to the top edge bin and -Inf (and any x < lo) to the bottom.
	var i int
	switch {
	case x < s.lo:
		i = 0
	case x >= s.hi:
		i = len(s.bins) - 1
	default:
		i = int((x - s.lo) / s.width)
		if i >= len(s.bins) { // width rounding can land x==hi-ε on the edge
			i = len(s.bins) - 1
		}
	}
	s.bins[i]++
	s.n++
}

// Merge folds o into s. The sketches must share a configuration; merging
// differently-shaped sketches panics (it is a programming error, never a
// data condition).
func (s *Sketch) Merge(o *Sketch) {
	//lint:ignore floateq sketch bounds are configuration constants compared for identity, not computed values
	if s.lo != o.lo || s.hi != o.hi || len(s.bins) != len(o.bins) {
		panic(fmt.Sprintf("stats: merging incompatible sketches [%v,%v)x%d and [%v,%v)x%d",
			s.lo, s.hi, len(s.bins), o.lo, o.hi, len(o.bins)))
	}
	for i, c := range o.bins {
		s.bins[i] += c
	}
	s.n += o.n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}

// N returns the number of samples recorded.
func (s *Sketch) N() int64 { return s.n }

// Min returns the exact minimum sample; NaN when empty.
func (s *Sketch) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the exact maximum sample; NaN when empty.
func (s *Sketch) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// ErrorBound returns the documented worst-case quantile error for in-range
// samples: one bin width.
func (s *Sketch) ErrorBound() float64 { return s.width }

// orderStat reconstructs the k-th (0-based) order statistic, spreading each
// bin's samples uniformly across the bin.
func (s *Sketch) orderStat(k int64) float64 {
	var cum int64
	for i, c := range s.bins {
		if k < cum+c {
			within := float64(k-cum) + 0.5
			return s.lo + s.width*(float64(i)+within/float64(c))
		}
		cum += c
	}
	return s.max
}

// Quantile returns the p-th percentile (0 ≤ p ≤ 100) with the same
// closest-rank interpolation convention as Percentile. The extremes return
// the exact Min/Max; interior quantiles are within ErrorBound of the exact
// Percentile over the same in-range samples. Empty sketches return NaN.
func (s *Sketch) Quantile(p float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return s.Min()
	}
	if p >= 100 {
		return s.Max()
	}
	rank := p / 100 * float64(s.n-1)
	lo := int64(math.Floor(rank))
	hi := int64(math.Ceil(rank))
	v := s.orderStat(lo)
	if hi != lo {
		frac := rank - float64(lo)
		v = v*(1-frac) + s.orderStat(hi)*frac
	}
	return v
}

// Mean returns the histogram mean: bin centers weighted by counts, summed
// in fixed bin order so the result is independent of merge order. It is
// within half a bin width of the exact mean for in-range samples; NaN when
// empty.
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	var sum float64
	for i, c := range s.bins {
		if c == 0 {
			continue
		}
		center := s.lo + s.width*(float64(i)+0.5)
		sum += center * float64(c)
	}
	return sum / float64(s.n)
}

// Summary renders the sketch as the standard five-number summary. N is the
// exact count, Min/Max the exact extremes, the interior quantiles and mean
// sketch estimates within the documented bounds.
func (s *Sketch) Summary() Summary {
	return Summary{
		Min:    s.Min(),
		P10:    s.Quantile(10),
		Median: s.Quantile(50),
		P90:    s.Quantile(90),
		Max:    s.Max(),
		Mean:   s.Mean(),
		N:      int(s.n),
	}
}
