package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {110, 5},
	}
	for _, tc := range cases {
		if got := Percentile(xs, tc.p); got != tc.want {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Interpolation: p90 of [0..4] = 3.6.
	if got := Percentile([]float64{0, 1, 2, 3, 4}, 90); math.Abs(got-3.6) > 1e-9 {
		t.Errorf("p90 = %v, want 3.6", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 50)) || !math.IsNaN(Mean(nil)) ||
		!math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty inputs must yield NaN")
	}
	s := Summarize(nil)
	if s.N != 0 || !math.IsNaN(s.Median) {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.Min != 1 || s.Max != 10 || s.Mean != 5.5 || s.N != 10 {
		t.Errorf("summary = %+v", s)
	}
	if s.Median != 5.5 {
		t.Errorf("median = %v, want 5.5", s.Median)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

// Properties: percentiles are monotone in p, bounded by min/max, and do not
// mutate the input.
func TestPercentileProperties(t *testing.T) {
	f := func(raw []uint16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		orig := make([]float64, len(xs))
		copy(orig, xs)
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := Percentile(xs, pa), Percentile(xs, pb)
		for i := range xs {
			if xs[i] != orig[i] {
				return false
			}
		}
		return va <= vb && va >= Min(xs)-1e-9 && vb <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSummarizeEmptyMarshals is the regression test for the NaN export bug:
// an empty distribution summarizes to NaN fields, which encoding/json
// rejects outright — the whole report export died on the first aborted-only
// fleet. NaN must marshal as null (and null must round-trip back to NaN).
func TestSummarizeEmptyMarshals(t *testing.T) {
	s := Summarize(nil)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("empty summary does not marshal: %v", err)
	}
	if !strings.Contains(string(data), `"median":null`) {
		t.Errorf("NaN median not exported as null: %s", data)
	}
	if !strings.Contains(string(data), `"n":0`) {
		t.Errorf("count missing: %s", data)
	}
	var back struct {
		Median NullableFloat `json:"median"`
		Mean   NullableFloat `json:"mean"`
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(back.Median)) || !math.IsNaN(float64(back.Mean)) {
		t.Errorf("null did not round-trip to NaN: %+v", back)
	}
}

func TestNullableFloatFinite(t *testing.T) {
	for _, v := range []float64{0, -3.5, 1e12} {
		data, err := json.Marshal(NullableFloat(v))
		if err != nil {
			t.Fatal(err)
		}
		var back NullableFloat
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if float64(back) != v {
			t.Errorf("round-trip %g -> %s -> %g", v, data, float64(back))
		}
	}
	for _, v := range []float64{math.Inf(1), math.Inf(-1)} {
		data, err := json.Marshal(NullableFloat(v))
		if err != nil || string(data) != "null" {
			t.Errorf("Inf marshal = %s, %v; want null", data, err)
		}
	}
}
