// Package stats provides the small summary-statistics helpers the QoE and
// experiment layers share: percentiles, means, and distribution summaries
// over float64 samples.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It returns NaN for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return Min(xs)
	}
	if p >= 100 {
		return Max(xs)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean; NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the smallest value; NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value; NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary is a five-number distribution sketch.
type Summary struct {
	Min, P10, Median, P90, Max float64
	Mean                       float64
	N                          int
}

// Summarize computes a Summary over the samples.
func Summarize(xs []float64) Summary {
	return Summary{
		Min:    Min(xs),
		P10:    Percentile(xs, 10),
		Median: Percentile(xs, 50),
		P90:    Percentile(xs, 90),
		Max:    Max(xs),
		Mean:   Mean(xs),
		N:      len(xs),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.2f p10=%.2f med=%.2f p90=%.2f max=%.2f mean=%.2f",
		s.N, s.Min, s.P10, s.Median, s.P90, s.Max, s.Mean)
}
