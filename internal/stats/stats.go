// Package stats provides the small summary-statistics helpers the QoE and
// experiment layers share: percentiles, means, and distribution summaries
// over float64 samples.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. It returns NaN for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return Min(xs)
	}
	if p >= 100 {
		return Max(xs)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return sortedPercentile(sorted, p)
}

// sortedPercentile is Percentile's interpolation over an already-sorted
// slice, shared by Summarize so one sort serves every quantile.
func sortedPercentile(sorted []float64, p float64) float64 {
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean; NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the smallest value; NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value; NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary is a five-number distribution sketch.
type Summary struct {
	Min, P10, Median, P90, Max float64
	Mean                       float64
	N                          int
}

// Summarize computes a Summary over the samples. It copies and sorts the
// samples exactly once (one allocation), then reads every order statistic
// off the sorted copy — TestSummarizeAllocs pins the allocation count so
// the per-Percentile re-sorts this replaced cannot creep back.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{Min: nan, P10: nan, Median: nan, P90: nan, Max: nan, Mean: nan}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	// Sum in the caller's order, not sorted order: float addition is not
	// associative, and the mean must stay bit-identical to what Mean(xs)
	// returned before the single-sort rewrite (golden JSON pins it).
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return Summary{
		Min:    sorted[0],
		P10:    sortedPercentile(sorted, 10),
		Median: sortedPercentile(sorted, 50),
		P90:    sortedPercentile(sorted, 90),
		Max:    sorted[len(sorted)-1],
		Mean:   sum / float64(len(sorted)),
		N:      len(sorted),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.2f p10=%.2f med=%.2f p90=%.2f max=%.2f mean=%.2f",
		s.N, s.Min, s.P10, s.Median, s.P90, s.Max, s.Mean)
}

// NullableFloat marshals a float64 as JSON, emitting null for NaN and ±Inf
// — values encoding/json rejects outright. The empty distribution's NaN
// quantiles would otherwise make any document embedding a Summary fail to
// serialize.
type NullableFloat float64

// MarshalJSON implements json.Marshaler.
func (f NullableFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler; null decodes to NaN, matching
// what Summarize reports for an empty distribution.
func (f *NullableFloat) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*f = NullableFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*f = NullableFloat(v)
	return nil
}

// MarshalJSON serializes the summary with NaN/Inf statistics (the empty
// distribution) rendered as null, so documents embedding a Summary always
// marshal cleanly.
func (s Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Min    NullableFloat `json:"min"`
		P10    NullableFloat `json:"p10"`
		Median NullableFloat `json:"median"`
		P90    NullableFloat `json:"p90"`
		Max    NullableFloat `json:"max"`
		Mean   NullableFloat `json:"mean"`
		N      int           `json:"n"`
	}{
		Min:    NullableFloat(s.Min),
		P10:    NullableFloat(s.P10),
		Median: NullableFloat(s.Median),
		P90:    NullableFloat(s.P90),
		Max:    NullableFloat(s.Max),
		Mean:   NullableFloat(s.Mean),
		N:      s.N,
	})
}
