package originserver

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"demuxabr/internal/faults"
	"demuxabr/internal/manifest/dash"
	"demuxabr/internal/manifest/hls"
	"demuxabr/internal/media"
)

// tinyContent builds a fast-to-serve asset for HTTP tests.
func tinyContent() *media.Content {
	return media.MustNewContent(media.ContentSpec{
		Name:          "tiny",
		Duration:      8 * time.Second,
		ChunkDuration: time.Second,
		VideoTracks:   media.DramaVideoLadder(),
		AudioTracks:   media.DramaAudioLadder(),
		Model:         media.CBRChunkModel(),
	})
}

func TestServesMPD(t *testing.T) {
	srv := httptest.NewServer(New(tinyContent(), Options{}).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/manifest.mpd")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	mpd, err := dash.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	video, audio, err := dash.Ladders(mpd)
	if err != nil {
		t.Fatal(err)
	}
	if len(video) != 6 || len(audio) != 3 {
		t.Errorf("ladders %d/%d, want 6/3", len(video), len(audio))
	}
}

func TestServesMasterAndMediaPlaylists(t *testing.T) {
	content := tinyContent()
	srv := httptest.NewServer(New(content, Options{}).Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/master.m3u8")
	if err != nil {
		t.Fatal(err)
	}
	master, err := hls.ParseMaster(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(master.Variants) != 6 {
		t.Errorf("variants = %d, want 6 (H_sub default)", len(master.Variants))
	}

	resp, err = http.Get(srv.URL + "/video/V2.m3u8")
	if err != nil {
		t.Fatal(err)
	}
	pl, err := hls.ParseMedia(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Segments) != content.NumChunks() {
		t.Errorf("segments = %d, want %d", len(pl.Segments), content.NumChunks())
	}
	// The media playlist must expose per-chunk bitrates (§4.1).
	if _, _, err := hls.TrackBitrate(pl); err != nil {
		t.Errorf("TrackBitrate: %v", err)
	}
}

func TestServesSegmentsWithExactSizes(t *testing.T) {
	content := tinyContent()
	srv := httptest.NewServer(New(content, Options{}).Handler())
	defer srv.Close()
	tr := content.TrackByID("V3")
	resp, err := http.Get(srv.URL + "/video/V3/seg-2.m4s")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(body)) != content.ChunkSize(tr, 2) {
		t.Errorf("segment size = %d, want %d", len(body), content.ChunkSize(tr, 2))
	}
}

func TestSegment404s(t *testing.T) {
	srv := httptest.NewServer(New(tinyContent(), Options{}).Handler())
	defer srv.Close()
	for _, path := range []string{
		"/video/V9/seg-0.m4s",  // unknown track
		"/video/V1/seg-99.m4s", // out of range
		"/video/A1/seg-0.m4s",  // type mismatch
		"/audio/V1/seg-0.m4s",  // type mismatch
		"/video/V1/seg-x.m4s",  // bad index
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestTokenBucketRate(t *testing.T) {
	// 800 Kbps = 100 KB/s. Taking 50 KB beyond the 4 KB burst should take
	// roughly 0.46 s.
	b := NewTokenBucket(media.Kbps(800), 4*1024)
	start := time.Now()
	b.Take(50 * 1024)
	elapsed := time.Since(start).Seconds()
	want := float64(50*1024-4*1024) / (100 * 1000)
	if math.Abs(elapsed-want) > 0.25 {
		t.Errorf("50 KB at 800 Kbps took %.2fs, want ~%.2fs", elapsed, want)
	}
}

func TestTokenBucketNilUnlimited(t *testing.T) {
	var b *TokenBucket
	start := time.Now()
	b.Take(10 << 20)
	if time.Since(start) > 50*time.Millisecond {
		t.Error("nil bucket must not block")
	}
}

func TestShapedSegmentDelivery(t *testing.T) {
	content := tinyContent()
	// 2 Mbps shaping: V3's ~45 KB one-second chunk should take ~0.18 s.
	shaper := NewTokenBucket(media.Kbps(2000), 8*1024)
	srv := httptest.NewServer(New(content, Options{Shaper: shaper}).Handler())
	defer srv.Close()
	tr := content.TrackByID("V3")
	size := content.ChunkSize(tr, 0)
	start := time.Now()
	resp, err := http.Get(srv.URL + "/video/V3/seg-0.m4s")
	if err != nil {
		t.Fatal(err)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	if n != size {
		t.Fatalf("got %d bytes, want %d", n, size)
	}
	wantMin := float64(size-8*1024) * 8 / 2_000_000 * 0.5
	if elapsed < wantMin {
		t.Errorf("shaped transfer took %.3fs, want >= %.3fs", elapsed, wantMin)
	}
}

// --- Fault injection ------------------------------------------------------

// faultedServer serves tinyContent with the given plan.
func faultedServer(t *testing.T, plan *faults.Plan, hold time.Duration) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(tinyContent(), Options{Faults: plan, FaultHold: hold}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func TestFaultHTTP404(t *testing.T) {
	srv := faultedServer(t, &faults.Plan{Seed: 1, Rate: 1, Kinds: []faults.Kind{faults.HTTP404}}, 0)
	resp, err := http.Get(srv.URL + "/video/V1/seg-0.m4s")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

func TestFaultResetDropsConnection(t *testing.T) {
	srv := faultedServer(t, &faults.Plan{Seed: 1, Rate: 1, Kinds: []faults.Kind{faults.Reset}}, 0)
	resp, err := http.Get(srv.URL + "/video/V1/seg-0.m4s")
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.Fatal("reset fault produced a clean response")
	}
}

func TestFaultTruncateCutsBodyShort(t *testing.T) {
	srv := faultedServer(t, &faults.Plan{Seed: 1, Rate: 1, Kinds: []faults.Kind{faults.Truncate}}, 0)
	resp, err := http.Get(srv.URL + "/video/V1/seg-0.m4s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n, rerr := io.Copy(io.Discard, resp.Body)
	if rerr == nil && n >= resp.ContentLength {
		t.Fatalf("truncate fault delivered the full body (%d of %d bytes, err=%v)", n, resp.ContentLength, rerr)
	}
	if n <= 0 {
		t.Fatalf("truncate fault delivered no bytes at all")
	}
}

func TestFaultTimeoutHoldsThenDrops(t *testing.T) {
	srv := faultedServer(t, &faults.Plan{Seed: 1, Rate: 1, Kinds: []faults.Kind{faults.Timeout}}, 50*time.Millisecond)
	begin := time.Now()
	resp, err := http.Get(srv.URL + "/video/V1/seg-0.m4s")
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		t.Fatal("timeout fault produced a clean response")
	}
	if elapsed := time.Since(begin); elapsed < 40*time.Millisecond {
		t.Fatalf("connection dropped after %v, want the fault hold (~50ms)", elapsed)
	}
}

func TestFaultPersistenceClearsOnRetry(t *testing.T) {
	// Rate 1 with persistence 1: the first request to each segment fails,
	// the second succeeds — the attempt counter must make retries work.
	srv := faultedServer(t, &faults.Plan{Seed: 1, Rate: 1, Kinds: []faults.Kind{faults.HTTP503}, MaxPersistence: 1}, 0)
	url := srv.URL + "/audio/A1/seg-2.m4s"
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("first attempt status = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second attempt status = %d, want 200", resp.StatusCode)
	}
	if n, _ := io.Copy(io.Discard, resp.Body); n == 0 {
		t.Fatal("recovered segment has no body")
	}
}

func TestNoFaultPlanServesCleanly(t *testing.T) {
	srv := faultedServer(t, nil, 0)
	resp, err := http.Get(srv.URL + "/video/V1/seg-0.m4s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
}
