// Package originserver is a real net/http origin for demuxed ABR content:
// it serves a generated DASH MPD, HLS master and media playlists, and
// synthetic chunk payloads of the content's exact per-chunk sizes, with an
// optional shared token-bucket bandwidth shaper standing in for the
// tc-shaped bottleneck of the paper's testbed.
//
// Together with package httpclient it forms the end-to-end integration
// path: the same ABR models that run in the discrete-event simulator can
// stream from this server over real TCP connections.
package originserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"demuxabr/internal/faults"
	"demuxabr/internal/manifest/dash"
	"demuxabr/internal/manifest/hls"
	"demuxabr/internal/media"
)

// TokenBucket is a blocking byte-rate limiter shared by all responses —
// one bottleneck link, like tc on the server's egress.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewTokenBucket creates a limiter at rate bits/s with the given burst in
// bytes. A nil *TokenBucket is unlimited.
func NewTokenBucket(rate media.Bps, burstBytes int) *TokenBucket {
	if rate <= 0 {
		panic("originserver: non-positive shaping rate")
	}
	if burstBytes <= 0 {
		burstBytes = 16 * 1024
	}
	return &TokenBucket{
		rate:   float64(rate) / 8,
		burst:  float64(burstBytes),
		tokens: float64(burstBytes),
		last:   time.Now(),
	}
}

// Take blocks until n bytes' worth of tokens are available. Tokens are
// reserved immediately (the balance may go negative) and the caller sleeps
// off the deficit, so concurrent takers share the configured rate.
func (b *TokenBucket) Take(n int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	b.tokens -= float64(n)
	var wait time.Duration
	if b.tokens < 0 {
		wait = time.Duration(-b.tokens / b.rate * float64(time.Second))
	}
	b.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}

// Options configures the origin.
type Options struct {
	// Shaper limits egress; nil serves at full speed.
	Shaper *TokenBucket
	// Combos is the variant list for the HLS master playlist (default
	// H_sub pairing).
	Combos []media.Combo
	// AudioOrder is the HLS rendition order (default ladder order).
	AudioOrder []*media.Track
	// WriteQuantum is the shaped write size (default 8 KiB).
	WriteQuantum int
	// Faults makes the origin misbehave on segment requests according to
	// the plan: 404/503 responses, connection resets, response timeouts,
	// truncated bodies. Nil serves faithfully. The per-segment attempt
	// counter feeds the plan's persistence, so a client that retries
	// eventually succeeds on transient faults.
	Faults *faults.Plan
	// FaultHold is how long a Timeout fault keeps the connection open
	// without responding before dropping it (default 30 s; tests use
	// small values so a timeout-less client eventually errors).
	FaultHold time.Duration
}

// Server serves one content asset.
type Server struct {
	content *media.Content
	opts    Options
	mux     *http.ServeMux

	mu       sync.Mutex
	attempts map[string]int // per (track,idx) segment request count
}

// New creates the origin for a content asset.
func New(content *media.Content, opts Options) *Server {
	if opts.Combos == nil {
		opts.Combos = media.HSub(content)
	}
	if opts.WriteQuantum <= 0 {
		opts.WriteQuantum = 8 * 1024
	}
	if opts.FaultHold <= 0 {
		opts.FaultHold = 30 * time.Second
	}
	s := &Server{content: content, opts: opts, mux: http.NewServeMux(), attempts: make(map[string]int)}
	s.mux.HandleFunc("GET /manifest.mpd", s.handleMPD)
	s.mux.HandleFunc("GET /master.m3u8", s.handleMaster)
	s.mux.HandleFunc("GET /combinations.json", s.handleCombinations)
	s.mux.HandleFunc("GET /video/", s.handleMedia(media.Video))
	s.mux.HandleFunc("GET /audio/", s.handleMedia(media.Audio))
	return s
}

// handleMedia dispatches /<type>/<track>.m3u8 (media playlist) and
// /<type>/<track>/seg-<idx>.m4s (segment) requests.
func (s *Server) handleMedia(typ media.Type) http.HandlerFunc {
	prefix := "/" + typ.String() + "/"
	return func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, prefix)
		if name, ok := strings.CutSuffix(rest, ".m3u8"); ok && !strings.Contains(name, "/") {
			s.serveMediaPlaylist(w, r, typ, name)
			return
		}
		if track, seg, ok := strings.Cut(rest, "/"); ok {
			idxStr, ok := strings.CutSuffix(strings.TrimPrefix(seg, "seg-"), ".m4s")
			if ok && strings.HasPrefix(seg, "seg-") {
				s.serveSegment(w, r, typ, track, idxStr)
				return
			}
		}
		http.NotFound(w, r)
	}
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) handleMPD(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/dash+xml")
	if err := dash.Generate(s.content).Encode(w); err != nil {
		// Response already started; nothing to do but drop the connection.
		return
	}
}

// CombinationEntry is one allowed audio/video pairing in the out-of-band
// combination document — the §4.1 "short term workaround" for DASH's
// missing pairing mechanism: since an MPD cannot restrict combinations,
// the server publishes the allowed list over plain HTTP for clients that
// ask.
type CombinationEntry struct {
	Video string `json:"video"`
	Audio string `json:"audio"`
}

func (s *Server) handleCombinations(w http.ResponseWriter, r *http.Request) {
	entries := make([]CombinationEntry, len(s.opts.Combos))
	for i, cb := range s.opts.Combos {
		entries[i] = CombinationEntry{Video: cb.Video.ID, Audio: cb.Audio.ID}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(entries)
}

func (s *Server) handleMaster(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/vnd.apple.mpegurl")
	m := hls.GenerateMaster(s.content, s.opts.Combos, s.opts.AudioOrder)
	_ = m.Encode(w)
}

func (s *Server) serveMediaPlaylist(w http.ResponseWriter, r *http.Request, typ media.Type, name string) {
	tr := s.content.TrackByID(name)
	if tr == nil || tr.Type != typ {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/vnd.apple.mpegurl")
	pl := hls.GenerateMedia(s.content, tr, hls.SegmentFiles, true)
	_ = pl.Encode(w)
}

func (s *Server) serveSegment(w http.ResponseWriter, r *http.Request, typ media.Type, track, idxStr string) {
	tr := s.content.TrackByID(track)
	if tr == nil || tr.Type != typ {
		http.NotFound(w, r)
		return
	}
	idx, err := strconv.Atoi(idxStr)
	if err != nil || idx < 0 || idx >= s.content.NumChunksOf(tr.Type) {
		http.NotFound(w, r)
		return
	}
	size := s.content.ChunkSize(tr, idx)
	if s.opts.Faults != nil {
		attempt := s.nextAttempt(tr.ID, idx)
		if f, ok := s.opts.Faults.SegmentFault(tr.ID, idx, attempt); ok {
			s.serveFault(w, r, f, tr, idx, size)
			return
		}
	}
	w.Header().Set("Content-Type", "video/iso.segment")
	w.Header().Set("Content-Length", fmt.Sprintf("%d", size))
	s.writeShaped(w, r, tr, idx, size)
}

// nextAttempt returns, and advances, the request count for one segment —
// the attempt number the fault plan's persistence is evaluated against.
func (s *Server) nextAttempt(trackID string, idx int) int {
	key := trackID + "/" + strconv.Itoa(idx)
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.attempts[key]
	s.attempts[key] = n + 1
	return n
}

// serveFault realizes one planned fault on a live connection.
func (s *Server) serveFault(w http.ResponseWriter, r *http.Request, f faults.Fault, tr *media.Track, idx int, size int64) {
	switch f.Kind {
	case faults.HTTP404:
		http.Error(w, "injected fault: not found", http.StatusNotFound)
	case faults.HTTP503:
		http.Error(w, "injected fault: service unavailable", http.StatusServiceUnavailable)
	case faults.Reset:
		// Abort before any body bytes: net/http resets the connection.
		panic(http.ErrAbortHandler)
	case faults.Timeout:
		// Hold the connection silently until the client gives up (or the
		// hold expires), then reset — a response that never arrives.
		select {
		case <-r.Context().Done():
		case <-time.After(s.opts.FaultHold):
		}
		panic(http.ErrAbortHandler)
	case faults.Truncate:
		// Promise the full length, deliver a fraction, then kill the
		// connection mid-body.
		w.Header().Set("Content-Type", "video/iso.segment")
		w.Header().Set("Content-Length", fmt.Sprintf("%d", size))
		partial := int64(float64(size) * f.Fraction)
		s.writeShaped(w, r, tr, idx, partial)
		panic(http.ErrAbortHandler)
	default:
		http.Error(w, "injected fault: unknown kind", http.StatusInternalServerError)
	}
}

// writeShaped streams size bytes of deterministic payload through the
// shared shaper in quanta, respecting client cancellation.
func (s *Server) writeShaped(w http.ResponseWriter, r *http.Request, tr *media.Track, idx int, size int64) {
	quantum := s.opts.WriteQuantum
	buf := make([]byte, quantum)
	fill := byte(len(tr.ID) + idx) // deterministic, content-free payload
	for i := range buf {
		buf[i] = fill
	}
	flusher, _ := w.(http.Flusher)
	remaining := size
	for remaining > 0 {
		n := int64(quantum)
		if n > remaining {
			n = remaining
		}
		select {
		case <-r.Context().Done():
			return
		default:
		}
		s.opts.Shaper.Take(int(n))
		if _, err := w.Write(buf[:n]); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		remaining -= n
	}
}
