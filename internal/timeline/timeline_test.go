package timeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestKindStrings(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(0); k < numKinds; k++ {
		s := k.String()
		if s == "unknown" || s == "" {
			t.Errorf("kind %d has no name", k)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, s)
		}
		seen[s] = k
	}
	if numKinds.String() != "unknown" {
		t.Errorf("out-of-range kind named %q", numKinds.String())
	}
}

func TestCountersTrackEvents(t *testing.T) {
	r := New(0, "s0")
	r.Emit(Event{Kind: Decision})
	r.Emit(Event{Kind: Request})
	r.Emit(Event{Kind: RequestDone, Bytes: 1000})
	r.Emit(Event{Kind: RequestDone, Bytes: 500})
	r.Emit(Event{Kind: Retry})
	r.Emit(Event{Kind: RequestTimeout})
	r.Emit(Event{Kind: Blacklist})
	r.Emit(Event{Kind: Failover})
	r.Emit(Event{Kind: FaultInjected})
	r.Emit(Event{Kind: StallStart})
	r.Emit(Event{Kind: CacheHit})
	r.Emit(Event{Kind: CacheMiss})
	c := r.Counters()
	want := Counters{
		Events: 12, Decisions: 1, Requests: 1, Retries: 1, Timeouts: 1,
		Blacklists: 1, Failovers: 1, Faults: 1, Stalls: 1,
		CacheHits: 1, CacheMisses: 1, BytesDownloaded: 1500,
	}
	if c != want {
		t.Errorf("counters = %+v, want %+v", c, want)
	}
	merged := c.Merge(c)
	if merged.Events != 24 || merged.BytesDownloaded != 3000 {
		t.Errorf("merge = %+v", merged)
	}
	if len(r.Events()) != 12 {
		t.Errorf("events = %d, want 12", len(r.Events()))
	}
}

func TestNilRecorderIsDisabled(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	r.Emit(Event{Kind: Decision}) // must not panic
	if r.Session() != -1 {
		t.Errorf("nil session = %d, want -1", r.Session())
	}
	if r.Label() != "" || r.Events() != nil {
		t.Error("nil recorder leaked state")
	}
	if (r.Counters() != Counters{}) {
		t.Error("nil recorder has nonzero counters")
	}
}

// TestTimelineDisabledAllocs pins the zero-overhead-when-disabled contract:
// emitting through a nil recorder must not allocate.
func TestTimelineDisabledAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		if r.Enabled() {
			t.Fatal("nil recorder enabled")
		}
		r.Emit(Event{At: time.Second, Kind: Buffer, Index: -1})
	})
	if allocs > 0 {
		t.Errorf("disabled recorder allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestWriteJSONLSkipsOptionalFields(t *testing.T) {
	r := New(3, "s3")
	r.Emit(Event{At: 2 * time.Second, Kind: StallStart, Index: -1})
	r.Emit(Event{At: 4 * time.Second, Dur: 2 * time.Second, Kind: StallEnd, Index: -1})
	r.Emit(Event{At: 5 * time.Second, Kind: Request, Type: "video", Track: "V1", Index: 0, Bytes: 100})
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, []*Recorder{nil, r}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3 (nil recorder skipped):\n%s", len(lines), buf.String())
	}
	if strings.Contains(lines[0], `"index"`) {
		t.Errorf("stall event exported an index: %s", lines[0])
	}
	// Index 0 is meaningful and must survive omitempty.
	if !strings.Contains(lines[2], `"index":0`) && !strings.Contains(lines[2], `"index": 0`) {
		t.Errorf("request event lost chunk index 0: %s", lines[2])
	}
	for _, ln := range lines {
		if !json.Valid([]byte(ln)) {
			t.Errorf("invalid JSONL line: %s", ln)
		}
		if !strings.Contains(ln, `"session":3`) {
			t.Errorf("line missing session: %s", ln)
		}
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	r := New(0, "s0")
	r.Emit(Event{At: time.Second, Kind: Decision, Type: "combo", Track: "V2+A2", Index: 0})
	r.Emit(Event{At: 3 * time.Second, Dur: 2 * time.Second, Kind: RequestDone, Type: "video", Track: "V2", Index: 0, Bytes: 900})
	r.Emit(Event{At: 4 * time.Second, Kind: Buffer, Index: -1, VideoBuf: 8 * time.Second, AudioBuf: 6 * time.Second})
	r.Emit(Event{At: 5 * time.Second, Kind: LinkRate, Type: "link", Index: -1, Rate: 600})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*Recorder{r}); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("chrome trace is not valid JSON:\n%s", buf.String())
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Ts  int64  `json:"ts"`
			Dur int64  `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev.Ph]++
		if ev.Ph == "X" {
			// The span is laid back from its closing instant.
			if ev.Ts != (3*time.Second - 2*time.Second).Microseconds() {
				t.Errorf("X span starts at %d us", ev.Ts)
			}
			if ev.Dur != (2 * time.Second).Microseconds() {
				t.Errorf("X span lasts %d us", ev.Dur)
			}
		}
	}
	if phases["M"] == 0 || phases["X"] != 1 || phases["C"] != 2 || phases["i"] != 1 {
		t.Errorf("phase histogram = %v", phases)
	}
}
