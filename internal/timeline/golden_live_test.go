package timeline_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"demuxabr/internal/core"
	"demuxabr/internal/media"
	"demuxabr/internal/player"
	"demuxabr/internal/timeline"
	"demuxabr/internal/trace"
)

// recordGoldenLiveSession plays the live reference session: the golden
// asset in latency-target mode over a square wave whose trough is deep
// enough to overrun the resync threshold, so the recording exercises the
// full live vocabulary — latency samples, catch-up rate changes, and a
// live-edge resync.
func recordGoldenLiveSession(t *testing.T) *timeline.Recorder {
	t.Helper()
	rec := timeline.New(0, "golden live bestpractice")
	sess, err := core.Play(core.Spec{
		Content:  goldenContent(),
		Profile:  trace.SquareWave(media.Kbps(2000), media.Kbps(50), 30*time.Second, 12*time.Second),
		Player:   core.BestPractice,
		Recorder: rec,
		Live: &player.LiveConfig{
			LatencyTarget:   3 * time.Second,
			PartTarget:      500 * time.Millisecond,
			EdgeAtJoin:      30 * time.Second,
			ResyncThreshold: 8 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Result.Aborted {
		t.Fatalf("golden live session aborted: %s", sess.Result.AbortReason)
	}
	if sess.Result.Live == nil {
		t.Fatal("golden live session carried no live stats")
	}
	return rec
}

// TestTimelineGoldenLiveExport pins the live event vocabulary and its JSONL
// shape against testdata/golden_live_session.jsonl (regenerate with
// -update): latency samples, rate changes, and at least one live-edge
// resync must all appear, and the export may not drift a byte.
func TestTimelineGoldenLiveExport(t *testing.T) {
	rec := recordGoldenLiveSession(t)

	got := map[timeline.Kind]int{}
	for _, ev := range rec.Events() {
		got[ev.Kind]++
	}
	for _, kind := range []timeline.Kind{
		timeline.LatencySample, timeline.RateChange, timeline.LiveResync,
		timeline.StallStart, timeline.StallEnd, timeline.SessionEnd,
	} {
		if got[kind] == 0 {
			t.Errorf("golden live session recorded no %s events", kind)
		}
	}

	counters := rec.Counters()
	if counters.LatencySamples == 0 || counters.RateChanges == 0 || counters.LiveResyncs == 0 {
		t.Errorf("live counters not populated: %+v", counters)
	}

	data := exportJSONL(t, rec)
	golden := filepath.Join("testdata", "golden_live_session.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("JSONL export differs from %s (run with -update if the change is intended)", golden)
	}
}

// TestTimelineGoldenLiveRepeatByteIdentical replays the live reference
// session and demands byte-equal exports.
func TestTimelineGoldenLiveRepeatByteIdentical(t *testing.T) {
	first := recordGoldenLiveSession(t)
	second := recordGoldenLiveSession(t)
	if !bytes.Equal(exportJSONL(t, first), exportJSONL(t, second)) {
		t.Error("live JSONL export differs between two identical runs")
	}
}
