package timeline

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// jsonEvent is the JSONL export shape. Timestamps and durations are
// microseconds of engine time; zero-valued optional fields are omitted so a
// buffer sample stays one short line.
type jsonEvent struct {
	Session int     `json:"session"`
	Label   string  `json:"label,omitempty"`
	AtUS    int64   `json:"t_us"`
	DurUS   int64   `json:"dur_us,omitempty"`
	Kind    string  `json:"kind"`
	Type    string  `json:"type,omitempty"`
	Track   string  `json:"track,omitempty"`
	Index   *int    `json:"index,omitempty"`
	Attempt int     `json:"attempt,omitempty"`
	Detail  string  `json:"detail,omitempty"`
	Bytes   int64   `json:"bytes,omitempty"`
	Rate    float64 `json:"rate_kbps,omitempty"`
	VBufUS  int64   `json:"vbuf_us,omitempty"`
	ABufUS  int64   `json:"abuf_us,omitempty"`
}

// WriteJSONL exports the recorders' events as JSON Lines, one event per
// line, session-major (all of recorder 0, then recorder 1, ...). Within a
// recorder events keep emission order, which is engine event order — so the
// output is a deterministic function of the simulated run.
func WriteJSONL(w io.Writer, recs []*Recorder) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range recs {
		if r == nil {
			continue
		}
		for i := range r.events {
			ev := &r.events[i]
			je := jsonEvent{
				Session: r.session,
				Label:   r.label,
				AtUS:    ev.At.Microseconds(),
				DurUS:   ev.Dur.Microseconds(),
				Kind:    ev.Kind.String(),
				Type:    ev.Type,
				Track:   ev.Track,
				Attempt: ev.Attempt,
				Detail:  ev.Detail,
				Bytes:   ev.Bytes,
				Rate:    ev.Rate,
				VBufUS:  ev.VideoBuf.Microseconds(),
				ABufUS:  ev.AudioBuf.Microseconds(),
			}
			if ev.Index >= 0 {
				idx := ev.Index
				je.Index = &idx
			}
			if err := enc.Encode(&je); err != nil {
				return fmt.Errorf("timeline: %w", err)
			}
		}
	}
	return bw.Flush()
}

// traceEvent is one entry of the Chrome trace-event format ("JSON object
// format"), the schema chrome://tracing and https://ui.perfetto.dev accept.
// Each recorder becomes one process (pid = session index), named by its
// label via a metadata event; requests render as spans on per-type threads,
// buffers and rates as counter tracks, everything else as instants.
type traceEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	TsUS int64  `json:"ts"`
	DurUS int64 `json:"dur,omitempty"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	Cat  string `json:"cat,omitempty"`
	S    string `json:"s,omitempty"`
	Args any    `json:"args,omitempty"`
}

// traceDoc is the top-level Chrome trace document.
type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
	// DisplayTimeUnit selects millisecond display; timestamps stay µs.
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// Thread IDs within one session's process: spans for each media type plus a
// lane for everything else.
const (
	tidSession = 0
	tidVideo   = 1
	tidAudio   = 2
)

func tidFor(typ string) int {
	switch typ {
	case "video":
		return tidVideo
	case "audio", "muxed":
		return tidAudio
	default:
		return tidSession
	}
}

// WriteChromeTrace exports the recorders as one Chrome trace-event document
// with one track (process) per recorder. Open it at https://ui.perfetto.dev
// or chrome://tracing.
func WriteChromeTrace(w io.Writer, recs []*Recorder) error {
	doc := traceDoc{DisplayTimeUnit: "ms"}
	for _, r := range recs {
		if r == nil {
			continue
		}
		doc.TraceEvents = append(doc.TraceEvents,
			traceEvent{Name: "process_name", Ph: "M", Pid: r.session, Tid: tidSession,
				Args: map[string]string{"name": r.label}},
			traceEvent{Name: "thread_name", Ph: "M", Pid: r.session, Tid: tidSession,
				Args: map[string]string{"name": "session"}},
			traceEvent{Name: "thread_name", Ph: "M", Pid: r.session, Tid: tidVideo,
				Args: map[string]string{"name": "video requests"}},
			traceEvent{Name: "thread_name", Ph: "M", Pid: r.session, Tid: tidAudio,
				Args: map[string]string{"name": "audio requests"}},
		)
		for i := range r.events {
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent(r, &r.events[i]))
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&doc); err != nil {
		return fmt.Errorf("timeline: %w", err)
	}
	return nil
}

// chromeEvent converts one recorded event to its trace-event rendering.
func chromeEvent(r *Recorder, ev *Event) traceEvent {
	te := traceEvent{
		Pid:  r.session,
		Tid:  tidFor(ev.Type),
		Cat:  ev.Kind.String(),
		TsUS: ev.At.Microseconds(),
	}
	switch ev.Kind {
	case RequestDone, StallEnd:
		// Spans: lay the duration back from the closing instant.
		te.Ph = "X"
		te.TsUS = (ev.At - ev.Dur).Microseconds()
		te.DurUS = ev.Dur.Microseconds()
		if ev.Kind == StallEnd {
			te.Name = "stall"
			te.Tid = tidSession
		} else {
			te.Name = fmt.Sprintf("%s #%d %s", ev.Type, ev.Index, ev.Track)
			te.Args = map[string]int64{"bytes": ev.Bytes, "attempt": int64(ev.Attempt)}
		}
	case Buffer:
		te.Ph = "C"
		te.Name = "buffer_s"
		te.Tid = tidSession
		args := map[string]float64{
			"video": ev.VideoBuf.Seconds(),
			"audio": ev.AudioBuf.Seconds(),
		}
		te.Args = args
	case LinkRate:
		te.Ph = "C"
		te.Name = "rate_kbps"
		te.Tid = tidSession
		te.Args = map[string]float64{"rate": ev.Rate}
	default:
		te.Ph = "i"
		te.S = "t"
		te.Name = ev.Kind.String()
		if ev.Track != "" {
			te.Name = ev.Kind.String() + " " + ev.Track
		}
		if ev.Detail != "" {
			te.Args = map[string]string{"detail": ev.Detail}
		}
	}
	return te
}

// WriteFiles exports the recorders under dir as <base>.jsonl and
// <base>.trace.json, creating the directory if needed.
func WriteFiles(dir, base string, recs []*Recorder) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("timeline: %w", err)
	}
	jf, err := os.Create(filepath.Join(dir, base+".jsonl"))
	if err != nil {
		return fmt.Errorf("timeline: %w", err)
	}
	if err := WriteJSONL(jf, recs); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return fmt.Errorf("timeline: %w", err)
	}
	cf, err := os.Create(filepath.Join(dir, base+".trace.json"))
	if err != nil {
		return fmt.Errorf("timeline: %w", err)
	}
	if err := WriteChromeTrace(cf, recs); err != nil {
		cf.Close()
		return err
	}
	if err := cf.Close(); err != nil {
		return fmt.Errorf("timeline: %w", err)
	}
	return nil
}
