package timeline_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"demuxabr/internal/core"
	"demuxabr/internal/faults"
	"demuxabr/internal/media"
	"demuxabr/internal/netsim"
	"demuxabr/internal/timeline"
	"demuxabr/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden timeline export")

// goldenContent is a short synthetic asset (96 s, 2 s chunks, 2x2 ladder)
// so the golden export stays small while still exercising adaptation.
func goldenContent() *media.Content {
	return media.MustNewContent(media.ContentSpec{
		Name:          "golden",
		Duration:      96 * time.Second,
		ChunkDuration: 2 * time.Second,
		VideoTracks: media.Ladder{
			{ID: "V1", Type: media.Video, AvgBitrate: media.Kbps(300), PeakBitrate: media.Kbps(450), DeclaredBitrate: media.Kbps(450), Resolution: "360p"},
			{ID: "V2", Type: media.Video, AvgBitrate: media.Kbps(700), PeakBitrate: media.Kbps(1000), DeclaredBitrate: media.Kbps(1000), Resolution: "480p"},
		},
		AudioTracks: media.Ladder{
			{ID: "A1", Type: media.Audio, AvgBitrate: media.Kbps(64), PeakBitrate: media.Kbps(72), DeclaredBitrate: media.Kbps(72), Channels: 2, SampleRateHz: 44100},
			{ID: "A2", Type: media.Audio, AvgBitrate: media.Kbps(160), PeakBitrate: media.Kbps(176), DeclaredBitrate: media.Kbps(176), Channels: 2, SampleRateHz: 48000},
		},
		Model: media.ChunkModel{Seed: 7, Spread: 0.2, PeakEvery: 4},
	})
}

// recordGoldenSession plays the reference session — faults injected, retries
// on, a low-bandwidth phase deep enough to stall — with a recorder attached.
func recordGoldenSession(t *testing.T) *timeline.Recorder {
	t.Helper()
	pol := faults.DefaultPolicy()
	rec := timeline.New(0, "golden bestpractice")
	sess, err := core.Play(core.Spec{
		Content:    goldenContent(),
		Profile:    trace.Fig3VaryingAvg600(),
		Player:     core.BestPractice,
		Faults:     &faults.Plan{Seed: 7, Rate: 0.06},
		Robustness: &pol,
		Recorder:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Result.Aborted {
		t.Fatalf("golden session aborted: %s", sess.Result.AbortReason)
	}
	return rec
}

func exportJSONL(t *testing.T, rec *timeline.Recorder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := timeline.WriteJSONL(&buf, []*timeline.Recorder{rec}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTimelineGoldenExport pins the JSONL schema and the recording itself:
// any change to event emission order, field names, or formatting shows up as
// a diff against testdata/golden_session.jsonl (regenerate with -update).
func TestTimelineGoldenExport(t *testing.T) {
	rec := recordGoldenSession(t)

	// The reference session must exercise the recorder's full single-session
	// vocabulary before it is worth pinning.
	got := map[timeline.Kind]int{}
	for _, ev := range rec.Events() {
		got[ev.Kind]++
	}
	for _, kind := range []timeline.Kind{
		timeline.Decision, timeline.Request, timeline.RequestDone,
		timeline.RequestFailed, timeline.Retry, timeline.FaultInjected,
		timeline.Buffer, timeline.StallStart, timeline.StallEnd,
		timeline.Startup, timeline.SessionEnd, timeline.LinkRate,
	} {
		if got[kind] == 0 {
			t.Errorf("golden session recorded no %s events", kind)
		}
	}

	data := exportJSONL(t, rec)
	golden := filepath.Join("testdata", "golden_session.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("JSONL export differs from %s (run with -update if the change is intended)", golden)
	}
}

// TestTimelineRepeatRunsByteIdentical replays the same seeded session and
// demands byte-equal exports — the determinism contract the whole recorder
// rests on.
func TestTimelineRepeatRunsByteIdentical(t *testing.T) {
	first := recordGoldenSession(t)
	second := recordGoldenSession(t)
	if !bytes.Equal(exportJSONL(t, first), exportJSONL(t, second)) {
		t.Error("JSONL export differs between two identical runs")
	}
	var a, b bytes.Buffer
	if err := timeline.WriteChromeTrace(&a, []*timeline.Recorder{first}); err != nil {
		t.Fatal(err)
	}
	if err := timeline.WriteChromeTrace(&b, []*timeline.Recorder{second}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Chrome trace differs between two identical runs")
	}
	if !json.Valid(a.Bytes()) {
		t.Error("Chrome trace is not valid JSON")
	}
}

// TestTimelineWriteFiles drives the directory exporter end to end.
func TestTimelineWriteFiles(t *testing.T) {
	rec := recordGoldenSession(t)
	dir := filepath.Join(t.TempDir(), "timelines")
	if err := timeline.WriteFiles(dir, "session", []*timeline.Recorder{rec}); err != nil {
		t.Fatal(err)
	}
	jsonl, err := os.ReadFile(filepath.Join(dir, "session.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonl, exportJSONL(t, rec)) {
		t.Error("session.jsonl differs from the in-memory export")
	}
	traceJSON, err := os.ReadFile(filepath.Join(dir, "session.trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(traceJSON) {
		t.Error("session.trace.json is not valid JSON")
	}
}

// TestTimelineZeroCostTransportMatchesGolden is the timeline half of the
// transport-off contract: replaying the golden session through an
// all-zero-cost H1 transport (free setup, no keep-alive expiry, no loss)
// must export byte-identically to testdata/golden_session.jsonl — the
// inert transport may not emit events, perturb timing, or reorder
// anything.
func TestTimelineZeroCostTransportMatchesGolden(t *testing.T) {
	pol := faults.DefaultPolicy()
	rec := timeline.New(0, "golden bestpractice")
	sess, err := core.Play(core.Spec{
		Content:    goldenContent(),
		Profile:    trace.Fig3VaryingAvg600(),
		Player:     core.BestPractice,
		Faults:     &faults.Plan{Seed: 7, Rate: 0.06},
		Robustness: &pol,
		Recorder:   rec,
		Transport:  &netsim.TransportConfig{Protocol: netsim.H1, MaxStreams: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Result.Aborted {
		t.Fatalf("golden session aborted: %s", sess.Result.AbortReason)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_session.jsonl"))
	if err != nil {
		t.Fatalf("%v (run TestTimelineGoldenExport with -update first)", err)
	}
	if !bytes.Equal(exportJSONL(t, rec), want) {
		t.Error("zero-cost transport session diverged from the golden export")
	}
}
