// Package timeline is the simulator's flight recorder: a per-session log of
// structured events — ABR decisions, request lifecycle steps, buffer levels,
// stalls, faults, cache outcomes, link-rate changes — timestamped in engine
// time, never wall clock.
//
// The recorder is zero-overhead when disabled: a nil *Recorder is a valid
// no-op receiver, and every call site that must build strings or look up
// sizes for an event guards with Enabled() first, so a session running
// without observability allocates nothing extra on the hot path.
//
// Events are collected per session (one Recorder per session, plus one for
// shared infrastructure such as the fleet uplink), and every event is
// appended from inside the discrete-event engine's single-threaded run loop
// — so a fleet fanned out across runpool workers produces byte-identical
// exports at any -parallel setting. Export formats are JSONL (one event per
// line, session-major) and the Chrome trace-event format viewable in
// Perfetto (see export.go).
package timeline

import "time"

// Kind classifies one flight-recorder event.
type Kind uint8

// The event kinds, roughly in lifecycle order.
const (
	// Decision is an ABR selection: the chosen track (or combination) plus
	// the buffer levels and bandwidth estimate that drove it.
	Decision Kind = iota
	// Request is a chunk request put on the wire.
	Request
	// RequestDone is a completed download; Dur spans first byte to last.
	RequestDone
	// RequestFailed is a failed download attempt (injected fault, timeout,
	// truncated body); Detail names the failure mode.
	RequestFailed
	// RequestTimeout is the client-side timeout policy cancelling a request.
	RequestTimeout
	// Retry is a scheduled re-attempt after a failure.
	Retry
	// Blacklist is a track crossing the consecutive-failure threshold.
	Blacklist
	// Failover is a substitution of a failing track; Detail names the track
	// failed away from.
	Failover
	// FaultInjected is the fault plan deciding a request fails (emitted by
	// internal/faults at the decision point).
	FaultInjected
	// Abandon is an in-flight download cancelled by the model's
	// abandonment rule; Detail names the abandoned track.
	Abandon
	// Buffer is a periodic buffer-level sample (both types, plus the
	// model's bandwidth estimate when it reports one).
	Buffer
	// StallStart marks playback halting on an empty buffer.
	StallStart
	// StallEnd marks playback resuming; Dur is the stall length.
	StallEnd
	// Startup marks the first frame; Dur is the startup delay.
	Startup
	// AudioReset is a mid-session audio stream reset (language switch).
	AudioReset
	// SessionEnd marks the session finishing or aborting; Detail carries
	// the abort reason for aborts.
	SessionEnd
	// CacheHit is a request served from the shared edge cache.
	CacheHit
	// CacheMiss is a request the edge had to fetch from the origin.
	CacheMiss
	// LinkRate is an observed change of a link's (or uplink's) effective
	// capacity; Rate is the new capacity in Kbps.
	LinkRate
	// Handshake marks a transport connection setup completing; Dur is the
	// time it cost, Detail the protocol (suffixed -resume/-0rtt when the
	// connection reconnected on a session ticket).
	Handshake
	// HoLStall marks one stream frozen by transport loss recovery; Dur is
	// the stall length, Type the stream's label, Detail the protocol. An
	// H2 loss emits one HoLStall per stream it head-of-line blocked.
	HoLStall
	// LatencySample is a periodic live-edge latency measurement; Dur is the
	// latency (live edge minus playback position), Rate the current
	// playback rate.
	LatencySample
	// RateChange is the live catch-up controller adjusting playback speed;
	// Rate is the new playback rate, Detail the previous one.
	RateChange
	// LiveResync is the player jumping forward to re-acquire the live edge
	// after latency overran the resync threshold; Dur is the media time
	// skipped.
	LiveResync

	numKinds
)

// String names the kind for exports and logs.
func (k Kind) String() string {
	switch k {
	case Decision:
		return "decision"
	case Request:
		return "request"
	case RequestDone:
		return "request-done"
	case RequestFailed:
		return "request-failed"
	case RequestTimeout:
		return "request-timeout"
	case Retry:
		return "retry"
	case Blacklist:
		return "blacklist"
	case Failover:
		return "failover"
	case FaultInjected:
		return "fault-injected"
	case Abandon:
		return "abandon"
	case Buffer:
		return "buffer"
	case StallStart:
		return "stall-start"
	case StallEnd:
		return "stall-end"
	case Startup:
		return "startup"
	case AudioReset:
		return "audio-reset"
	case SessionEnd:
		return "session-end"
	case CacheHit:
		return "cache-hit"
	case CacheMiss:
		return "cache-miss"
	case LinkRate:
		return "link-rate"
	case Handshake:
		return "handshake"
	case HoLStall:
		return "hol-stall"
	case LatencySample:
		return "latency-sample"
	case RateChange:
		return "rate-change"
	case LiveResync:
		return "live-resync"
	default:
		return "unknown"
	}
}

// Event is one flight-recorder entry. Fields beyond At and Kind are
// kind-specific; unused ones stay at their zero values and are omitted from
// exports. All times are engine time (absolute within the run), so events
// from different sessions of one fleet interleave on a common axis.
type Event struct {
	// At is the engine time of the event.
	At time.Duration
	// Dur is the span the event closes (transfer time for RequestDone,
	// stall length for StallEnd, startup delay for Startup).
	Dur time.Duration
	// Kind classifies the event.
	Kind Kind
	// Type is the media type or subsystem ("video", "audio", "muxed",
	// "combo", "link", "uplink").
	Type string
	// Track is the track or combination the event concerns.
	Track string
	// Index is the chunk position, -1 when not applicable.
	Index int
	// Attempt counts retries of the chunk on the track, from 0.
	Attempt int
	// Detail carries kind-specific context (fault kind, failed-from track,
	// abort reason).
	Detail string
	// Bytes is the payload size the event accounts for.
	Bytes int64
	// Rate is a rate in Kbps (bandwidth estimate, link capacity).
	Rate float64
	// VideoBuf and AudioBuf are the buffer levels at the event.
	VideoBuf time.Duration
	// AudioBuf is documented with VideoBuf.
	AudioBuf time.Duration
}

// Counters is the small metrics registry a recorder maintains alongside the
// event log — the numbers a report surfaces without shipping the full
// timeline.
type Counters struct {
	// Events is the total number of recorded events.
	Events int64 `json:"events"`
	// Decisions counts ABR selections.
	Decisions int64 `json:"decisions"`
	// Requests counts wire requests issued.
	Requests int64 `json:"requests"`
	// Retries counts scheduled re-attempts.
	Retries int64 `json:"retries"`
	// Timeouts counts client-side request timeouts.
	Timeouts int64 `json:"timeouts"`
	// Blacklists counts tracks exiled by the failure threshold.
	Blacklists int64 `json:"blacklists"`
	// Failovers counts track substitutions.
	Failovers int64 `json:"failovers"`
	// Faults counts injected fault decisions.
	Faults int64 `json:"faults"`
	// Stalls counts rebuffering events.
	Stalls int64 `json:"stalls"`
	// CacheHits and CacheMisses count shared-edge outcomes.
	CacheHits int64 `json:"cache_hits"`
	// CacheMisses is documented with CacheHits.
	CacheMisses int64 `json:"cache_misses"`
	// BytesDownloaded sums completed downloads' payloads.
	BytesDownloaded int64 `json:"bytes_downloaded"`
	// Handshakes and HoLStalls count transport connection setups and
	// loss-recovery stream stalls. Both are omitempty so documents from
	// transport-free runs keep their exact pre-transport shape.
	Handshakes int64 `json:"handshakes,omitempty"`
	// HoLStalls is documented with Handshakes.
	HoLStalls int64 `json:"hol_stalls,omitempty"`
	// LatencySamples, RateChanges, and LiveResyncs count live-session
	// events. All omitempty so documents from VOD runs keep their exact
	// pre-live shape.
	LatencySamples int64 `json:"latency_samples,omitempty"`
	// RateChanges is documented with LatencySamples.
	RateChanges int64 `json:"rate_changes,omitempty"`
	// LiveResyncs is documented with LatencySamples.
	LiveResyncs int64 `json:"live_resyncs,omitempty"`
}

// add folds one event into the counters.
func (c *Counters) add(ev Event) {
	c.Events++
	switch ev.Kind {
	case Decision:
		c.Decisions++
	case Request:
		c.Requests++
	case RequestDone:
		c.BytesDownloaded += ev.Bytes
	case Retry:
		c.Retries++
	case RequestTimeout:
		c.Timeouts++
	case Blacklist:
		c.Blacklists++
	case Failover:
		c.Failovers++
	case FaultInjected:
		c.Faults++
	case StallStart:
		c.Stalls++
	case CacheHit:
		c.CacheHits++
	case CacheMiss:
		c.CacheMisses++
	case Handshake:
		c.Handshakes++
	case HoLStall:
		c.HoLStalls++
	case LatencySample:
		c.LatencySamples++
	case RateChange:
		c.RateChanges++
	case LiveResync:
		c.LiveResyncs++
	}
}

// Merge returns the field-wise sum of two counter sets.
func (c Counters) Merge(o Counters) Counters {
	return Counters{
		Events:          c.Events + o.Events,
		Decisions:       c.Decisions + o.Decisions,
		Requests:        c.Requests + o.Requests,
		Retries:         c.Retries + o.Retries,
		Timeouts:        c.Timeouts + o.Timeouts,
		Blacklists:      c.Blacklists + o.Blacklists,
		Failovers:       c.Failovers + o.Failovers,
		Faults:          c.Faults + o.Faults,
		Stalls:          c.Stalls + o.Stalls,
		CacheHits:       c.CacheHits + o.CacheHits,
		CacheMisses:     c.CacheMisses + o.CacheMisses,
		BytesDownloaded: c.BytesDownloaded + o.BytesDownloaded,
		Handshakes:      c.Handshakes + o.Handshakes,
		HoLStalls:       c.HoLStalls + o.HoLStalls,
		LatencySamples:  c.LatencySamples + o.LatencySamples,
		RateChanges:     c.RateChanges + o.RateChanges,
		LiveResyncs:     c.LiveResyncs + o.LiveResyncs,
	}
}

// Recorder collects one session's (or one shared component's) events. The
// nil recorder is the disabled recorder: Enabled reports false and Emit is
// a no-op, so instrumented code needs no conditional wiring — only call
// sites that build event fields eagerly should guard with Enabled.
type Recorder struct {
	session int
	label   string
	events  []Event
	c       Counters
}

// New creates a recorder for the given session index. The label names the
// session in exports (e.g. "s0 bestpractice" or "uplink").
func New(session int, label string) *Recorder {
	return &Recorder{session: session, label: label}
}

// Enabled reports whether events will actually be recorded. Call it before
// building an event whose fields require allocation (string concatenation,
// size lookups); Emit itself is already nil-safe.
func (r *Recorder) Enabled() bool { return r != nil }

// Emit appends one event and updates the counters. No-op on nil.
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	r.events = append(r.events, ev)
	r.c.add(ev)
}

// Session returns the session index the recorder was created with.
func (r *Recorder) Session() int {
	if r == nil {
		return -1
	}
	return r.session
}

// Label returns the recorder's export label.
func (r *Recorder) Label() string {
	if r == nil {
		return ""
	}
	return r.label
}

// Events returns the recorded events in emission order. The slice is the
// recorder's own backing store; callers must not mutate it.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Counters returns the running totals.
func (r *Recorder) Counters() Counters {
	if r == nil {
		return Counters{}
	}
	return r.c
}
