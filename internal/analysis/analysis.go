// Package analysis is a stdlib-only static-analysis engine (go/parser +
// go/ast + go/types) with project-specific analyzers that guard the
// simulator invariants every regenerated figure depends on:
//
//   - simclock: no wall clock in simulation packages (replay determinism);
//   - globalrand: no global math/rand source and no time-seeded generators
//     in simulation packages (same-seed replay);
//   - maporder: no map-iteration-ordered output (report reproducibility);
//   - rangeleak: no map-range values escaping through assignment chains
//     into returns without a sort (the dataflow generalization of
//     maporder's unconditional-return rule);
//   - sharedcapture: no runpool job closures writing shared captured state
//     (serial-vs-parallel equivalence);
//   - recmut: no timeline recorder mutation from worker closures (export
//     determinism);
//   - floateq: no ==/!= between floats (silent metric drift);
//   - units: no arithmetic mixing bits/bytes or sec/ms identifiers without
//     an explicit conversion (the silent unit bugs measurement
//     reproductions die from).
//
// Packages are parsed and type-checked module-wide in import order over a
// shared TypeGraph, so analyzers can resolve identities across package
// boundaries (is this a *timeline.Recorder? does this call land in
// runpool?) rather than guessing from single ASTs.
//
// Findings mirror the Severity/Rule/Finding shape of
// internal/manifest/lint and render as "file:line: [rule] message".
// A finding is suppressed by a rule-scoped directive comment on its line
// or the line above:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// The reason is mandatory: an unexplained suppression is itself a
// finding, and so is the legacy "all" wildcard — a suppression must name
// the exact rules it silences.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Severity grades a finding, mirroring internal/manifest/lint.
type Severity int

const (
	// Warning marks an invariant violation; the suite (and TestVetABR)
	// fails on any unsuppressed Warning.
	Warning Severity = iota
	// Info marks an observation worth reviewing.
	Info
)

// String names the severity.
func (s Severity) String() string {
	if s == Warning {
		return "WARN"
	}
	return "INFO"
}

// TextEdit is one mechanical source rewrite attached to a finding:
// replace the [Start, End) byte range of Filename with NewText
// (End == Start inserts). Offsets are resolved against the analyzed
// source, so appliers need no access to the engine's FileSet.
type TextEdit struct {
	Filename   string
	Start, End int
	NewText    string
}

// Edit is the unresolved form analyzers hand to ReportFixf, addressed by
// token positions; the engine resolves it to a TextEdit.
type Edit struct {
	Pos, End token.Pos
	NewText  string
}

// Finding is one analyzer result.
type Finding struct {
	// Pos locates the finding (filename + line are what the renderers use).
	Pos token.Position
	// Severity grades the finding.
	Severity Severity
	// Rule is the short stable analyzer name (e.g. "simclock").
	Rule string
	// Message explains the finding.
	Message string
	// Fixes, when non-empty, are mechanical rewrites (vetabr -fix) that
	// make the finding go away without changing observable behaviour
	// beyond restoring determinism.
	Fixes []TextEdit
	// End, when valid, closes the source range the finding covers (SARIF
	// regions); findings reported with Reportf leave it unset.
	End token.Position
}

// String renders "file:line: [rule] message".
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the rule identifier used in findings and suppressions.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// Pass hands one package to an analyzer.
type Pass struct {
	// Fset positions every node of Files.
	Fset *token.FileSet
	// Files are the package's parsed (non-test) files.
	Files []*ast.File
	// Path is the package import path (e.g. "demuxabr/internal/netsim").
	Path string
	// Pkg is the type-checked package (may be incomplete on type errors).
	Pkg *types.Package
	// Info carries expression types and identifier uses. Analyzers must
	// tolerate missing entries: type checking is best-effort so the suite
	// still runs when an import cannot be resolved.
	Info *types.Info
	// Graph is the cross-package type graph: every module package checked
	// before (and including) this one, for identity queries across
	// package boundaries.
	Graph *TypeGraph

	rule     string
	findings *[]Finding
}

// Reportf records a finding at pos under the running analyzer's name.
func (p *Pass) Reportf(pos token.Pos, sev Severity, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Severity: sev,
		Rule:     p.rule,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFixf records a finding carrying mechanical rewrites for -fix. The
// end position bounds the flagged construct for SARIF regions.
func (p *Pass) ReportFixf(pos, end token.Pos, sev Severity, fixes []Edit, format string, args ...any) {
	resolved := make([]TextEdit, 0, len(fixes))
	for _, e := range fixes {
		start := p.Fset.Position(e.Pos)
		stop := p.Fset.Position(e.End)
		resolved = append(resolved, TextEdit{
			Filename: start.Filename,
			Start:    start.Offset,
			End:      stop.Offset,
			NewText:  e.NewText,
		})
	}
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		End:      p.Fset.Position(end),
		Severity: sev,
		Rule:     p.rule,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    resolved,
	})
}

// PkgName resolves a selector base identifier to the import path of the
// package it names, or "" if it does not name an imported package. It
// prefers type information and falls back to matching the file's import
// table, so it works even when type checking was incomplete.
func (p *Pass) PkgName(file *ast.File, id *ast.Ident) string {
	if obj, ok := p.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return ""
	}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == id.Name {
			return path
		}
	}
	return ""
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t, ok := p.Info.Types[e]; ok {
		return t.Type
	}
	return nil
}

// suppressions maps file -> line -> set of suppressed rules ("" = all).
type suppressions map[string]map[int]map[string]bool

// ignoreDirective is the suppression comment prefix.
const ignoreDirective = "//lint:ignore "

// collectSuppressions scans a file's comments for ignore directives. A
// directive without a reason is reported as a bad-suppression warning so
// silent blanket ignores cannot accumulate.
func collectSuppressions(fset *token.FileSet, file *ast.File, sup suppressions, findings *[]Finding) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignoreDirective) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, ignoreDirective)
			rules, reason, _ := strings.Cut(rest, " ")
			pos := fset.Position(c.Pos())
			if strings.TrimSpace(reason) == "" {
				*findings = append(*findings, Finding{
					Pos:      pos,
					Severity: Warning,
					Rule:     "bad-suppression",
					Message:  "//lint:ignore directive needs a rule and a justifying reason",
				})
				continue
			}
			// Suppressions are rule-scoped: a directive must name the exact
			// rules it silences. The old "all" wildcard silenced rules that
			// did not exist yet, so a later analyzer could be muted by a
			// comment written before it was.
			if hasWildcard(rules) {
				*findings = append(*findings, Finding{
					Pos:      pos,
					Severity: Warning,
					Rule:     "bad-suppression",
					Message:  "//lint:ignore must name specific rules; the \"all\" wildcard is not accepted (it would silence analyzers added later)",
				})
				continue
			}
			byLine := sup[pos.Filename]
			if byLine == nil {
				byLine = map[int]map[string]bool{}
				sup[pos.Filename] = byLine
			}
			set := byLine[pos.Line]
			if set == nil {
				set = map[string]bool{}
				byLine[pos.Line] = set
			}
			for _, r := range strings.Split(rules, ",") {
				set[strings.TrimSpace(r)] = true
			}
		}
	}
}

// hasWildcard reports whether a comma-separated rule list contains the
// banned blanket wildcard.
func hasWildcard(rules string) bool {
	for _, r := range strings.Split(rules, ",") {
		if strings.TrimSpace(r) == "all" {
			return true
		}
	}
	return false
}

// suppressed reports whether a finding is covered by a directive naming
// its rule on its own line or the line directly above.
func (s suppressions) suppressed(f Finding) bool {
	byLine := s[f.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if set := byLine[line]; set != nil && set[f.Rule] {
			return true
		}
	}
	return false
}

// pkgSrc is one parsed package awaiting type check.
type pkgSrc struct {
	path    string
	dir     string
	files   []*ast.File
	imports []string // module-internal imports only
}

// RunDir discovers, parses and type-checks every non-test package under
// root (the module directory) and runs the analyzers over each, returning
// unsuppressed findings sorted by position. Type checking is best-effort:
// unresolvable imports degrade type information but never abort the run.
func RunDir(root string, analyzers []*Analyzer) ([]Finding, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	pkgs, err := parseTree(fset, root, modPath)
	if err != nil {
		return nil, err
	}
	order, err := topoOrder(pkgs)
	if err != nil {
		return nil, err
	}
	return runOrder(fset, order, analyzers), nil
}

// runOrder type-checks packages in topological order over one shared type
// graph and applies the analyzers to each.
func runOrder(fset *token.FileSet, order []*pkgSrc, analyzers []*Analyzer) []Finding {
	graph := newTypeGraph(fset)
	checked := map[string]*types.Package{}
	imp := &moduleImporter{
		checked:  checked,
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	var findings []Finding
	sup := suppressions{}
	for _, p := range order {
		pass := checkPackage(fset, p, imp)
		pass.Graph = graph
		checked[p.path] = pass.Pkg
		graph.add(p.path, pass.Pkg)
		for _, f := range pass.Files {
			collectSuppressions(fset, f, sup, &findings)
		}
		runAnalyzers(pass, analyzers, &findings)
	}
	return finish(findings, sup)
}

// RunSource type-checks a single synthetic package (filename -> source)
// and runs the analyzers — the entry point analyzer tests use.
func RunSource(pkgPath string, files map[string]string, analyzers []*Analyzer) ([]Finding, error) {
	return RunPackages(map[string]map[string]string{pkgPath: files}, analyzers)
}

// RunPackages type-checks a set of synthetic packages (import path ->
// filename -> source), resolving imports between them, and runs the
// analyzers over each — the entry point cross-package fixture tests use
// to mimic module packages such as runpool or timeline without touching
// the real tree.
func RunPackages(pkgs map[string]map[string]string, analyzers []*Analyzer) ([]Finding, error) {
	fset := token.NewFileSet()
	srcs := map[string]*pkgSrc{}
	var paths []string
	for path := range pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		files := pkgs[path]
		var names []string
		for name := range files {
			names = append(names, name)
		}
		sort.Strings(names)
		p := &pkgSrc{path: path}
		for _, name := range names {
			f, err := parser.ParseFile(fset, name, files[name], parser.ParseComments)
			if err != nil {
				return nil, err
			}
			p.files = append(p.files, f)
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if ip != path {
					if _, ok := pkgs[ip]; ok {
						p.imports = append(p.imports, ip)
					}
				}
			}
		}
		srcs[path] = p
	}
	order, err := topoOrder(srcs)
	if err != nil {
		return nil, err
	}
	return runOrder(fset, order, analyzers), nil
}

// finish filters suppressed findings and orders the rest.
func finish(findings []Finding, sup suppressions) []Finding {
	out := findings[:0]
	for _, f := range findings {
		if !sup.suppressed(f) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// runAnalyzers applies each analyzer to one checked package.
func runAnalyzers(pass *Pass, analyzers []*Analyzer, findings *[]Finding) {
	pass.findings = findings
	for _, a := range analyzers {
		pass.rule = a.Name
		a.Run(pass)
	}
}

// checkPackage type-checks one parsed package, tolerating errors.
func checkPackage(fset *token.FileSet, p *pkgSrc, imp types.Importer) *Pass {
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // best effort: keep checking past errors
	}
	name := p.path
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	pkg, _ := conf.Check(p.path, fset, p.files, info)
	if pkg == nil {
		pkg = types.NewPackage(p.path, name)
	}
	return &Pass{Fset: fset, Files: p.files, Path: p.path, Pkg: pkg, Info: info}
}

// moduleImporter serves already-checked module packages and falls back to
// the stdlib source importer for everything else.
type moduleImporter struct {
	checked  map[string]*types.Package
	fallback types.Importer
}

// Import resolves one import path.
func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.checked[path]; ok {
		return p, nil
	}
	return m.fallback.Import(path)
}

// modulePath reads the module path from root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// parseTree walks root and parses every directory holding non-test .go
// files into a pkgSrc keyed by import path.
func parseTree(fset *token.FileSet, root, modPath string) (map[string]*pkgSrc, error) {
	pkgs := map[string]*pkgSrc{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("analysis: %w", err)
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		p := pkgs[pkgPath]
		if p == nil {
			p = &pkgSrc{path: pkgPath, dir: dir}
			pkgs[pkgPath] = p
		}
		p.files = append(p.files, file)
		for _, imp := range file.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if ip == pkgPath || !strings.HasPrefix(ip, modPath+"/") {
				continue
			}
			p.imports = append(p.imports, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pkgs, nil
}

// topoOrder sorts packages so every module-internal import is checked
// before its importer.
func topoOrder(pkgs map[string]*pkgSrc) ([]*pkgSrc, error) {
	var order []*pkgSrc
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		p, ok := pkgs[path]
		if !ok {
			return nil
		}
		switch state[path] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		for _, dep := range p.imports {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = 2
		order = append(order, p)
		return nil
	}
	var paths []string
	for path := range pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}
